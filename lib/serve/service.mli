(** The analysis service behind petitd: turns decoded protocol requests
    into responses over a shared, long-lived solver state.

    The Omega solver stack meters work through ambient, domain-local
    state (see {!Omega.Budget}), so requests need no global solver lock:
    each request's solver work runs as one task on a pool of worker
    domains, and sessions landing on distinct workers analyze
    concurrently.  The verdict cache ({!Depend.Analyses.Memo}) persists
    across requests and clients — that sharing is the daemon's whole
    point — and every response reports its telemetry, both lifetime and
    per-request (attributed per worker domain, so concurrent sessions
    don't pollute each other's figures).

    Per-client fairness is budget governance, not preemption: each
    request's limits are clamped to the service quota
    ({!Protocol.clamp_budget}), so a pathological query burns its own
    budget, degrades to [Gave_up] conservatively, and the next request
    (any tenant's) starts with a fresh meter. *)

type t

val create :
  ?memo_capacity:int ->
  ?quota:Omega.Budget.limits ->
  ?domains:int ->
  ?max_inflight:int ->
  unit ->
  t
(** Fresh service state: resets the verdict cache (and bounds it at
    [memo_capacity] when given); [quota] is the per-request budget
    ceiling (default {!Omega.Budget.default}); [domains] sizes the
    worker-domain pool that runs solver work (default 1 — requests are
    then still serialized, but off the session threads).

    [max_inflight] is the admission gate: at most that many work-bearing
    requests solving (or queued on the pool) at once; beyond it requests
    are shed with a typed [Overloaded] error carrying a [retry_after_ms]
    hint instead of queueing unboundedly (default: unbounded).  Requests
    carrying a [deadline_ms] have the remainder folded into the solver's
    wall deadline, so a request admitted late gets a correspondingly
    smaller time budget; one whose deadline passed before any work could
    start is refused with [Gave_up]. *)

val quota : t -> Omega.Budget.limits

val domains : t -> int
(** Worker domains serving solver work. *)

val shutdown : t -> unit
(** Join the worker-domain pool.  Call once no request can arrive —
    the server does this after draining its sessions. *)

val handle :
  t -> peer:string -> id:int -> Protocol.request ->
  Protocol.response * [ `Continue | `Shutdown ]
(** Serve one request.  Never raises: program/problem errors and blown
    calculator budgets come back as protocol errors.  [`Shutdown] is
    returned exactly for a shutdown request (whose response still must
    be written). *)

val note_connect : t -> unit
val note_disconnect : t -> unit
(** Connection accounting for the stats payload; called by the server. *)

val note_shed_conn : t -> unit
(** A connection was refused by the server's connection cap. *)

val note_reaped : t -> unit
(** A stalled connection was closed by a read/write deadline. *)

(** {1 Deterministic payloads}

    Exposed so the CLI's [--json] mode and the serving bench's
    fresh-in-process cross-check build byte-identical answers through
    the very functions the daemon uses.  Both run the analysis
    themselves; they only read ambient budget limits, so wrap them in
    {!Omega.Budget.with_limits} to reproduce a request's budget. *)

val analyze_payload : in_bounds:bool -> Lang.Ir.program -> Json.t
val parallelize_payload : in_bounds:bool -> Lang.Ir.program -> Json.t

val governance_json : unit -> Json.t
(** Current solver telemetry + quick-screen counters, as attached to
    responses.  Not part of the deterministic payload: a warm cache
    legitimately answers with fewer solver queries than a cold one. *)

val memo_report : req_hits:int -> req_misses:int -> Protocol.memo_report
(** Lifetime memo counters paired with the given per-request deltas. *)
