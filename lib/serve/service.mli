(** The analysis service behind petitd: turns decoded protocol requests
    into responses over a shared, long-lived solver state.

    The Omega solver stack meters work through ambient, dynamically
    scoped state (see {!Omega.Budget}), so analytical work is serialized
    behind one solver lock; connection threads overlap only on I/O.
    The verdict cache ({!Depend.Analyses.Memo}) persists across requests
    and clients — that sharing is the daemon's whole point — and every
    response reports its telemetry, both lifetime and per-request.

    Per-client fairness is budget governance, not preemption: each
    request's limits are clamped to the service quota
    ({!Protocol.clamp_budget}), so a pathological query burns its own
    budget, degrades to [Gave_up] conservatively, and the next request
    (any tenant's) starts with a fresh meter. *)

type t

val create :
  ?memo_capacity:int -> ?quota:Omega.Budget.limits -> unit -> t
(** Fresh service state: resets the verdict cache (and bounds it at
    [memo_capacity] when given); [quota] is the per-request budget
    ceiling (default {!Omega.Budget.default}). *)

val quota : t -> Omega.Budget.limits

val handle :
  t -> peer:string -> id:int -> Protocol.request ->
  Protocol.response * [ `Continue | `Shutdown ]
(** Serve one request.  Never raises: program/problem errors and blown
    calculator budgets come back as protocol errors.  [`Shutdown] is
    returned exactly for a shutdown request (whose response still must
    be written). *)

val note_connect : t -> unit
val note_disconnect : t -> unit
(** Connection accounting for the stats payload; called by the server. *)

(** {1 Deterministic payloads}

    Exposed so the CLI's [--json] mode and the serving bench's
    fresh-in-process cross-check build byte-identical answers through
    the very functions the daemon uses.  Both run the analysis
    themselves; they only read ambient budget limits, so wrap them in
    {!Omega.Budget.with_limits} to reproduce a request's budget. *)

val analyze_payload : in_bounds:bool -> Lang.Ir.program -> Json.t
val parallelize_payload : in_bounds:bool -> Lang.Ir.program -> Json.t

val governance_json : unit -> Json.t
(** Current solver telemetry + quick-screen counters, as attached to
    responses.  Not part of the deterministic payload: a warm cache
    legitimately answers with fewer solver queries than a cold one. *)

val memo_report : req_hits:int -> req_misses:int -> Protocol.memo_report
(** Lifetime memo counters paired with the given per-request deltas. *)
