(* One JSON value type and one (emit, parse) pair for the whole repo:
   the wire protocol, the CLI --json modes and the bench artifacts all
   format through here, so string escaping and float rendering cannot
   drift between producers. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest of %.12g / %.17g that round-trips, so parse (emit f) = f on
   finite floats; JSON has no spelling for nan/inf, which emit as null. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* "1e3" and "5" are valid JSON but would parse back as our Int or a
       differently-typed number; force a marker so Float stays Float *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> add_escaped buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let pretty v =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Int _ | Float _ | Str _) as v -> to_buffer buf v
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          add_escaped buf k;
          Buffer.add_string buf ": ";
          go (depth + 1) v)
        fields;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string * int

let parse ?(max_depth = 512) (src : string) : (t, string) result =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub src !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* encode a Unicode scalar as UTF-8; lone surrogates become U+FFFD *)
  let add_utf8 buf cp =
    let cp = if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD else cp in
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub src !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = src.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = src.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            let hi = hex4 () in
            let cp =
              if
                hi >= 0xD800 && hi <= 0xDBFF
                && !pos + 6 <= n
                && src.[!pos] = '\\'
                && src.[!pos + 1] = 'u'
              then begin
                let save = !pos in
                pos := !pos + 2;
                let lo = hex4 () in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
                else begin
                  pos := save;
                  hi
                end
              end
              else hi
            in
            add_utf8 buf cp
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ())
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      let rec go () =
        match peek () with
        | Some ('0' .. '9') ->
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let s = String.sub src start (!pos - start) in
    if !is_float then Float (float_of_string s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> Float (float_of_string s)
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, p) ->
    Error (Printf.sprintf "json error at offset %d: %s" p msg)
  | exception Failure msg -> Error ("json error: " ^ msg)

(* ------------------------------------------------------------------ *)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k, v) (k', v') -> String.equal k k' && equal v v')
         xs ys
  | _ -> false

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function Int n -> Some n | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
