(* Accept loop and per-connection sessions.  The threads here only do
   socket I/O and framing; analytical work is shipped by Service to its
   worker-domain pool, so slow readers never hold up the solver and
   concurrent sessions analyze in parallel up to [c_domains]. *)

type config = {
  c_addr : Protocol.addr;
  c_max_frame : int;
  c_memo_capacity : int option;
  c_quota : Omega.Budget.limits;
  c_backlog : int;
  c_domains : int;
}

let default_config addr =
  {
    c_addr = addr;
    c_max_frame = Protocol.default_max_frame;
    c_memo_capacity = None;
    c_quota = Omega.Budget.default;
    c_backlog = 16;
    c_domains = max 1 (Domain.recommended_domain_count () - 1);
  }

type t = {
  config : config;
  service : Service.t;
  listen_fd : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  lock : Mutex.t;
  mutable stopping : bool;
  mutable sessions : Thread.t list;
}

let service t = t.service
let addr t = t.config.c_addr

let sockaddr_of = function
  | Protocol.Unix_path p -> Unix.ADDR_UNIX p
  | Protocol.Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } ->
          failwith (Printf.sprintf "cannot resolve %s" host)
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found ->
          failwith (Printf.sprintf "cannot resolve %s" host))
    in
    Unix.ADDR_INET (ip, port)

let write_response fd resp =
  match Protocol.write_frame fd (Json.to_string (Protocol.encode_response resp)) with
  | () -> true
  | exception Unix.Unix_error _ -> false
  | exception Sys_error _ -> false

let stop t =
  Mutex.lock t.lock;
  let was = t.stopping in
  t.stopping <- true;
  Mutex.unlock t.lock;
  if not was then (
    (* Unblock the accept loop.  shutdown works for TCP; for Unix
       sockets close is what interrupts accept. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

(* One connection: read frames until EOF, a poisoned frame, or a
   shutdown request.  Frame-level failures that leave the stream in
   sync (oversized, bad JSON, bad request shape) earn an error response
   and the loop continues. *)
let session t fd peer =
  Service.note_connect t.service;
  let stop_server = ref false in
  let rec loop () =
    match Protocol.read_frame ~max:t.config.c_max_frame fd with
    | Error Protocol.Closed | Error Protocol.Truncated -> ()
    | Error (Protocol.Poisoned n) ->
      ignore
        (write_response fd
           (Protocol.Error_
              {
                id = 0;
                code = Protocol.Frame_too_large;
                message =
                  Printf.sprintf
                    "frame of %d bytes is beyond recovery; closing" n;
              }))
    | Error (Protocol.Oversized n) ->
      let ok =
        write_response fd
          (Protocol.Error_
             {
               id = 0;
               code = Protocol.Frame_too_large;
               message =
                 Printf.sprintf "frame of %d bytes exceeds the %d-byte limit"
                   n t.config.c_max_frame;
             })
      in
      if ok then loop ()
    | Ok payload -> (
      match Json.parse payload with
      | Error msg ->
        let ok =
          write_response fd
            (Protocol.Error_
               {
                 id = 0;
                 code = Protocol.Bad_request;
                 message = "invalid JSON: " ^ msg;
               })
        in
        if ok then loop ()
      | Ok json -> (
        match Protocol.decode_request json with
        | Error msg ->
          let id =
            match Json.member "id" json with
            | Some j -> Option.value (Json.to_int_opt j) ~default:0
            | None -> 0
          in
          let ok =
            write_response fd
              (Protocol.Error_
                 { id; code = Protocol.Bad_request; message = msg })
          in
          if ok then loop ()
        | Ok (id, req) ->
          let resp, verdict = Service.handle t.service ~peer ~id req in
          let ok = write_response fd resp in
          (match verdict with
          | `Shutdown -> stop_server := true
          | `Continue -> if ok then loop ())))
  in
  (try loop () with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Service.note_disconnect t.service;
  if !stop_server then stop t

let accept_loop t =
  let rec go () =
    let accepted =
      try `Conn (Unix.accept t.listen_fd)
      with Unix.Unix_error (e, _, _) -> (
        match e with
        | Unix.EBADF | Unix.EINVAL -> `Stop
        | Unix.ECONNABORTED | Unix.EINTR when not t.stopping -> `Retry
        | _ -> `Stop)
    in
    match accepted with
    | `Stop -> ()
    | `Retry -> go ()
    | `Conn (fd, peer_addr) ->
      if t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        let peer =
          match peer_addr with
          | Unix.ADDR_UNIX _ -> "unix"
          | Unix.ADDR_INET (ip, port) ->
            Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
        in
        let th = Thread.create (fun () -> session t fd peer) () in
        Mutex.lock t.lock;
        t.sessions <- th :: t.sessions;
        Mutex.unlock t.lock;
        go ()
      end
  in
  go ()

let start config =
  (* A peer vanishing mid-write must surface as EPIPE, not kill the
     daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let sockaddr = sockaddr_of config.c_addr in
  (match config.c_addr with
  | Protocol.Unix_path p ->
    (* A stale socket file from a dead daemon would make bind fail. *)
    (try if (Unix.lstat p).Unix.st_kind = Unix.S_SOCK then Unix.unlink p
     with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ());
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     if domain <> Unix.PF_UNIX then Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd sockaddr;
     Unix.listen fd config.c_backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let service =
    Service.create ?memo_capacity:config.c_memo_capacity
      ~quota:config.c_quota ~domains:config.c_domains ()
  in
  let t =
    {
      config;
      service;
      listen_fd = fd;
      accept_thread = None;
      lock = Mutex.create ();
      stopping = false;
      sessions = [];
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (* Sessions can still be spawned only before the accept loop exits,
     so the list is now stable modulo completed threads. *)
  let rec drain () =
    Mutex.lock t.lock;
    let ss = t.sessions in
    t.sessions <- [];
    Mutex.unlock t.lock;
    match ss with
    | [] -> ()
    | _ ->
      List.iter Thread.join ss;
      drain ()
  in
  drain ();
  (* Every session is joined, so no request can reach the pool. *)
  Service.shutdown t.service;
  match t.config.c_addr with
  | Protocol.Unix_path p ->
    (try Unix.unlink p with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ()

let run config =
  let t = start config in
  wait t
