(* Accept loop and per-connection sessions.  The threads here only do
   socket I/O and framing; analytical work is shipped by Service to its
   worker-domain pool, so slow readers never hold up the solver and
   concurrent sessions analyze in parallel up to [c_domains].

   Overload posture: every read and write of a frame runs under a
   select-guarded deadline, so a slowloris peer (or a reader that stops
   draining responses) is reaped instead of pinning a session thread
   forever; the accept loop refuses connections beyond
   [c_max_connections] with a typed [Overloaded] shed; and the Service's
   admission gate bounds in-flight solver work.  Shutdown drains: stop
   accepting, let in-flight requests finish under [c_drain_ms], then
   force-close the laggards. *)

type config = {
  c_addr : Protocol.addr;
  c_max_frame : int;
  c_memo_capacity : int option;
  c_quota : Omega.Budget.limits;
  c_backlog : int;
  c_domains : int;
  c_max_connections : int;
  c_max_inflight : int option;
  c_read_timeout_ms : float option;
  c_drain_ms : float;
}

let default_config addr =
  let domains = max 1 (Domain.recommended_domain_count () - 1) in
  {
    c_addr = addr;
    c_max_frame = Protocol.default_max_frame;
    c_memo_capacity = None;
    c_quota = Omega.Budget.default;
    c_backlog = 16;
    c_domains = domains;
    c_max_connections = 64;
    (* admission-gate shedding is opt-in at this layer: embedded
       servers (tests, benches) expect lossless service; the petitd
       binary turns the gate on with its own 2*domains default *)
    c_max_inflight = None;
    c_read_timeout_ms = Some 10_000.;
    c_drain_ms = 5_000.;
  }

(* One live connection.  Slots are registered before the session thread
   starts and pruned by the session itself on exit, so [sessions] holds
   exactly the live connections — a long-lived daemon no longer leaks
   one entry per connection ever served. *)
type slot = {
  sl_fd : Unix.file_descr;
  mutable sl_thread : Thread.t option;
  mutable sl_busy : bool;  (* a request is being solved or answered *)
}

type t = {
  config : config;
  service : Service.t;
  listen_fd : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  lock : Mutex.t;
  stopping : bool Atomic.t;
  mutable sessions : slot list;  (* live connections only *)
}

let service t = t.service
let addr t = t.config.c_addr

let sockaddr_of = function
  | Protocol.Unix_path p -> Unix.ADDR_UNIX p
  | Protocol.Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } ->
          failwith (Printf.sprintf "cannot resolve %s" host)
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found ->
          failwith (Printf.sprintf "cannot resolve %s" host))
    in
    Unix.ADDR_INET (ip, port)

let live_sessions t =
  Mutex.lock t.lock;
  let ss = t.sessions in
  Mutex.unlock t.lock;
  ss

let io_deadline t =
  Option.map
    (fun ms -> Unix.gettimeofday () +. (ms /. 1000.))
    t.config.c_read_timeout_ms

(* [`Timeout] is a peer that stopped draining its responses: the write
   deadline fired with bytes still queued — reap it like a stalled
   reader. *)
let write_response ?deadline fd resp =
  match
    Protocol.write_frame ?deadline fd
      (Json.to_string (Protocol.encode_response resp))
  with
  | () -> `Ok
  | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) -> `Timeout
  | exception Unix.Unix_error _ -> `Error
  | exception Sys_error _ -> `Error

let stop t =
  if not (Atomic.exchange t.stopping true) then (
    (* Unblock the accept loop.  shutdown works for TCP; for Unix
       sockets close is what interrupts accept. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

(* One connection: read frames until EOF, a poisoned frame, a blown
   read deadline, or a shutdown request.  Frame-level failures that
   leave the stream in sync (oversized, bad JSON, bad request shape)
   earn an error response and the loop continues. *)
let session t slot peer =
  Service.note_connect t.service;
  let fd = slot.sl_fd in
  let stop_server = ref false in
  let reaped = ref false in
  let respond resp =
    match write_response ?deadline:(io_deadline t) fd resp with
    | `Ok -> true
    | `Timeout ->
      reaped := true;
      false
    | `Error -> false
  in
  let rec loop () =
    (* draining: finish the request already in flight elsewhere in this
       loop, but accept no further frames on this connection *)
    if Atomic.get t.stopping then ()
    else
      match
        Protocol.read_frame ?deadline:(io_deadline t)
          ~max:t.config.c_max_frame fd
      with
      | Error Protocol.Closed | Error Protocol.Truncated -> ()
      | Error Protocol.Timed_out ->
        (* stalled or trickling peer: the stream is desynced, close *)
        reaped := true
      | Error (Protocol.Poisoned n) ->
        ignore
          (respond
             (Protocol.Error_
                {
                  id = 0;
                  code = Protocol.Frame_too_large;
                  message =
                    Printf.sprintf
                      "frame of %d bytes is beyond recovery; closing" n;
                  retry_after_ms = None;
                }))
      | Error (Protocol.Oversized n) ->
        let ok =
          respond
            (Protocol.Error_
               {
                 id = 0;
                 code = Protocol.Frame_too_large;
                 message =
                   Printf.sprintf "frame of %d bytes exceeds the %d-byte limit"
                     n t.config.c_max_frame;
                 retry_after_ms = None;
               })
        in
        if ok then loop ()
      | Ok payload -> (
        match Json.parse payload with
        | Error msg ->
          let ok =
            respond
              (Protocol.Error_
                 {
                   id = 0;
                   code = Protocol.Bad_request;
                   message = "invalid JSON: " ^ msg;
                   retry_after_ms = None;
                 })
          in
          if ok then loop ()
        | Ok json -> (
          match Protocol.decode_request json with
          | Error msg ->
            let id =
              match Json.member "id" json with
              | Some j -> Option.value (Json.to_int_opt j) ~default:0
              | None -> 0
            in
            let ok =
              respond
                (Protocol.Error_
                   {
                     id;
                     code = Protocol.Bad_request;
                     message = msg;
                     retry_after_ms = None;
                   })
            in
            if ok then loop ()
          | Ok (id, req) ->
            slot.sl_busy <- true;
            let resp, verdict = Service.handle t.service ~peer ~id req in
            let ok = respond resp in
            slot.sl_busy <- false;
            (match verdict with
            | `Shutdown -> stop_server := true
            | `Continue -> if ok then loop ())))
  in
  (try loop () with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  if !reaped then Service.note_reaped t.service;
  Service.note_disconnect t.service;
  (* prune this connection's slot — the one fix for the unbounded
     session list a long-lived daemon used to accumulate *)
  Mutex.lock t.lock;
  t.sessions <- List.filter (fun s -> s != slot) t.sessions;
  Mutex.unlock t.lock;
  if !stop_server then stop t

(* Over-cap connections get a typed shed, not a silent close: one
   unsolicited [Overloaded] response (id 0, which clients accept for
   any request) with a backoff hint, then the socket closes.  The
   write is deadline-guarded so a hostile peer cannot stall the accept
   loop with a full socket buffer. *)
let shed_connection t fd =
  Service.note_shed_conn t.service;
  ignore
    (write_response
       ~deadline:(Unix.gettimeofday () +. 1.)
       fd
       (Protocol.Error_
          {
            id = 0;
            code = Protocol.Overloaded;
            message =
              Printf.sprintf "connection limit (%d) reached"
                t.config.c_max_connections;
            retry_after_ms = Some 100.;
          }));
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec go () =
    let accepted =
      try `Conn (Unix.accept t.listen_fd)
      with Unix.Unix_error (e, _, _) -> (
        match e with
        | Unix.EBADF | Unix.EINVAL -> `Stop
        | (Unix.ECONNABORTED | Unix.EINTR) when not (Atomic.get t.stopping)
          ->
          `Retry
        | _ -> `Stop)
    in
    match accepted with
    | `Stop -> ()
    | `Retry -> go ()
    | `Conn (fd, peer_addr) ->
      if Atomic.get t.stopping then (
        (try Unix.close fd with Unix.Unix_error _ -> ());
        go ())
      else begin
        let peer =
          match peer_addr with
          | Unix.ADDR_UNIX _ -> "unix"
          | Unix.ADDR_INET (ip, port) ->
            Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
        in
        Mutex.lock t.lock;
        let over = List.length t.sessions >= t.config.c_max_connections in
        let slot =
          if over then None
          else begin
            let slot = { sl_fd = fd; sl_thread = None; sl_busy = false } in
            t.sessions <- slot :: t.sessions;
            Some slot
          end
        in
        Mutex.unlock t.lock;
        (match slot with
        | None -> shed_connection t fd
        | Some slot ->
          slot.sl_thread <- Some (Thread.create (fun () -> session t slot peer) ()));
        go ()
      end
  in
  go ()

let start config =
  (* A peer vanishing mid-write must surface as EPIPE, not kill the
     daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let sockaddr = sockaddr_of config.c_addr in
  (match config.c_addr with
  | Protocol.Unix_path p ->
    (* A stale socket file from a dead daemon would make bind fail. *)
    (try if (Unix.lstat p).Unix.st_kind = Unix.S_SOCK then Unix.unlink p
     with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ());
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     if domain <> Unix.PF_UNIX then Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd sockaddr;
     Unix.listen fd config.c_backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let service =
    Service.create ?memo_capacity:config.c_memo_capacity
      ~quota:config.c_quota ~domains:config.c_domains
      ?max_inflight:config.c_max_inflight ()
  in
  let t =
    {
      config;
      service;
      listen_fd = fd;
      accept_thread = None;
      lock = Mutex.create ();
      stopping = Atomic.make false;
      sessions = [];
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

(* Graceful drain.  By the time this runs the accept loop has exited and
   [stopping] is set, so session loops take no further frames.  Sessions
   idle between requests are disconnected immediately (they have no
   in-flight work); busy ones get until the drain deadline to finish and
   write their response; whatever is left is force-closed, which wakes
   any blocked read/select with EOF. *)
let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  Atomic.set t.stopping true;
  let force_close slot =
    try Unix.shutdown slot.sl_fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()
  in
  List.iter
    (fun slot -> if not slot.sl_busy then force_close slot)
    (live_sessions t);
  let deadline = Unix.gettimeofday () +. (t.config.c_drain_ms /. 1000.) in
  let rec drain () =
    match live_sessions t with
    | [] -> ()
    | live ->
      if Unix.gettimeofday () >= deadline then List.iter force_close live
      else begin
        Thread.delay 0.01;
        drain ()
      end
  in
  drain ();
  (* No new sessions can appear (the accept loop is gone), so one
     snapshot joins everything still running; each exiting session has
     pruned — or is about to prune — its own slot. *)
  List.iter
    (fun slot ->
      match slot.sl_thread with Some th -> Thread.join th | None -> ())
    (live_sessions t);
  (* Every session is joined, so no request can reach the pool. *)
  Service.shutdown t.service;
  match t.config.c_addr with
  | Protocol.Unix_path p ->
    (try Unix.unlink p with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ()

let run config =
  let t = start config in
  wait t
