(* The request-to-response core of petitd.

   Threading model: the solver stack keeps its ambient state (budget
   meter, variable allocator, tuning counters) in domain-local storage,
   so requests no longer serialize behind a single solver lock.  Each
   request ships its solver work — parsing included, since sema and the
   dependence context mint variables — as one task to a pool of worker
   domains; sessions landing on distinct workers analyze in parallel.
   Session threads themselves never run solver work: they are systhreads
   sharing the main domain's storage, where in-place solving would race.
   The verdict memo is the one deliberately shared piece: mutex-guarded,
   warm across requests and clients, with per-domain hit/miss counters
   so each response reports exactly how much of the cache this request
   hit, unpolluted by concurrent sessions. *)

open Omega
module D = Depend

exception Calc_error of string

type stats = {
  mutable s_analyze : int;
  mutable s_parallelize : int;
  mutable s_calc : int;
  mutable s_stats : int;
  mutable s_health : int;
  mutable s_errors : int;
  mutable s_conns : int;  (* currently open *)
  mutable s_conns_total : int;
  mutable s_inflight : int;  (* work-bearing requests being solved *)
  mutable s_shed_requests : int;  (* refused by the admission gate *)
  mutable s_shed_conns : int;  (* refused by the connection cap *)
  mutable s_reaped : int;  (* stalled connections closed by a deadline *)
  mutable s_deadline_refused : int;  (* wall deadline gone at admission *)
}

type t = {
  pool : Taskpool.t;
  quota : Budget.limits;
  max_inflight : int option;  (* admission-gate width; None = unbounded *)
  started : float;  (* Unix.gettimeofday at create, for uptime *)
  stats_lock : Mutex.t;
  stats : stats;
  (* lifetime portfolio-tier totals across every request, merged from
     each request's domain-local record under [stats_lock] *)
  tiers : Portfolio.Stats.t;
}

let create ?memo_capacity ?(quota = Budget.default) ?(domains = 1)
    ?max_inflight () =
  (match memo_capacity with
  | Some cap -> D.Analyses.Memo.capacity := max 1 cap
  | None -> ());
  D.Analyses.Memo.reset ();
  {
    pool = Taskpool.create ~workers:(max 1 domains);
    quota;
    max_inflight = Option.map (max 1) max_inflight;
    started = Unix.gettimeofday ();
    stats_lock = Mutex.create ();
    stats =
      {
        s_analyze = 0;
        s_parallelize = 0;
        s_calc = 0;
        s_stats = 0;
        s_health = 0;
        s_errors = 0;
        s_conns = 0;
        s_conns_total = 0;
        s_inflight = 0;
        s_shed_requests = 0;
        s_shed_conns = 0;
        s_reaped = 0;
        s_deadline_refused = 0;
      };
    tiers = Portfolio.Stats.make ();
  }

let quota t = t.quota
let domains t = Taskpool.workers t.pool
let shutdown t = Taskpool.shutdown t.pool

let bump t f =
  Mutex.lock t.stats_lock;
  f t.stats;
  Mutex.unlock t.stats_lock

let note_connect t =
  bump t (fun s ->
      s.s_conns <- s.s_conns + 1;
      s.s_conns_total <- s.s_conns_total + 1)

let note_disconnect t = bump t (fun s -> s.s_conns <- s.s_conns - 1)
let note_shed_conn t = bump t (fun s -> s.s_shed_conns <- s.s_shed_conns + 1)
let note_reaped t = bump t (fun s -> s.s_reaped <- s.s_reaped + 1)

(* The admission gate: at most [max_inflight] work-bearing requests may
   be solving (or queued on the worker pool) at once; beyond that the
   request is shed with a backoff hint instead of queueing unboundedly.
   The hint scales with the overload: each excess waiter suggests
   another quantum of patience. *)
let try_admit t =
  match t.max_inflight with
  | None -> `Admitted
  | Some cap ->
    Mutex.lock t.stats_lock;
    let inflight = t.stats.s_inflight in
    let decision =
      if inflight < cap then begin
        t.stats.s_inflight <- inflight + 1;
        `Admitted
      end
      else begin
        t.stats.s_shed_requests <- t.stats.s_shed_requests + 1;
        `Shed (25. *. float_of_int (inflight - cap + 1))
      end
    in
    Mutex.unlock t.stats_lock;
    decision

let release t = bump t (fun s -> s.s_inflight <- s.s_inflight - 1)

(* ------------------------------------------------------------------ *)
(* Deterministic payloads                                              *)
(* ------------------------------------------------------------------ *)

let strs xs = Json.List (List.map (fun s -> Json.Str s) xs)
let ints xs = Json.List (List.map (fun i -> Json.Int i) xs)

let vectors_json vs = strs (List.map D.Dirvec.to_string vs)

let access_fields prefix (a : Lang.Ir.access) =
  [ (prefix, Json.Str a.Lang.Ir.label) ]

let dep_json (d : D.Deps.dep) =
  Json.Obj
    (access_fields "src" d.D.Deps.src
    @ access_fields "dst" d.D.Deps.dst
    @ [
        ("array", Json.Str d.D.Deps.src.Lang.Ir.array);
        ("kind", Json.Str (D.Deps.kind_to_string d.D.Deps.kind));
        ("vectors", vectors_json d.D.Deps.vectors);
        ("levels", ints d.D.Deps.levels);
        ("assumed", Json.Bool d.D.Deps.assumed);
      ])

let flow_json (fr : D.Driver.flow_result) =
  let dead =
    match fr.D.Driver.dead with
    | None -> Json.Null
    | Some (D.Driver.Killed k) ->
      Json.Obj
        [ ("reason", Json.Str "killed"); ("by", Json.Str k.Lang.Ir.label) ]
    | Some (D.Driver.Covered c) ->
      Json.Obj
        [ ("reason", Json.Str "covered"); ("by", Json.Str c.Lang.Ir.label) ]
  in
  let refined =
    match fr.D.Driver.refined with
    | None -> Json.Null
    | Some vs -> vectors_json vs
  in
  Json.Obj
    [
      ("dep", dep_json fr.D.Driver.dep);
      ("refined", refined);
      ("covers", Json.Bool fr.D.Driver.covers);
      ("dead", dead);
    ]

let analyze_payload ~in_bounds (prog : Lang.Ir.program) =
  let r = D.Driver.analyze ~in_bounds prog in
  Json.Obj
    [
      ( "live_flows",
        Json.List (List.map flow_json (D.Driver.live_flows r)) );
      ( "dead_flows",
        Json.List (List.map flow_json (D.Driver.dead_flows r)) );
      ("antis", Json.List (List.map dep_json r.D.Driver.antis));
      ("outputs", Json.List (List.map dep_json r.D.Driver.outputs));
    ]

let priv_json (p : Xform.Privatize.priv) =
  Json.Obj
    [
      ("array", Json.Str p.Xform.Privatize.p_array);
      ("copy_in", Json.Bool p.Xform.Privatize.p_copy_in);
      ("finalize", Json.Bool p.Xform.Privatize.p_finalize);
    ]

let parallelize_payload ~in_bounds (prog : Lang.Ir.program) =
  let g = Xform.Graph.build ~in_bounds prog in
  let vs = Xform.Parallel.analyze g in
  let std, ext = Xform.Parallel.count_doall vs in
  let verdict (v : Xform.Parallel.verdict) =
    Json.Obj
      [
        ("loop", Json.Str (Xform.Parallel.loop_path v.Xform.Parallel.v_loop));
        ("std_doall", Json.Bool v.Xform.Parallel.v_std_doall);
        ("ext_doall", Json.Bool v.Xform.Parallel.v_ext_doall);
        ( "std_blockers",
          strs
            (List.map Xform.Parallel.blocker_string
               v.Xform.Parallel.v_std_blockers) );
        ( "ext_blockers",
          strs
            (List.map Xform.Parallel.blocker_string
               v.Xform.Parallel.v_ext_blockers) );
        ( "privatized",
          Json.List (List.map priv_json v.Xform.Parallel.v_private) );
      ]
  in
  Json.Obj
    [
      ("loops", Json.List (List.map verdict vs));
      ("std_doall", Json.Int std);
      ("ext_doall", Json.Int ext);
      ("annotated", Json.Str (Xform.Emit.annotate g vs));
    ]

let tier_row (r : Portfolio.Stats.row) =
  Json.Obj
    [
      ("attempts", Json.Int r.Portfolio.Stats.attempts);
      ("decides", Json.Int r.Portfolio.Stats.decides);
      ("ms", Json.Float (r.Portfolio.Stats.elapsed *. 1000.));
    ]

let tiers_json (s : Portfolio.Stats.t) =
  Json.Obj
    [
      ("quick", tier_row s.Portfolio.Stats.quick);
      ("screen", tier_row s.Portfolio.Stats.screen);
      ("fast", tier_row s.Portfolio.Stats.fast);
      ("complete", tier_row s.Portfolio.Stats.complete);
    ]

let governance_json () =
  let t = Budget.Telemetry.current () in
  Json.Obj
    [
      ("queries", Json.Int t.Budget.Telemetry.queries);
      ( "gave_up",
        Json.Obj
          [
            ("fuel", Json.Int t.Budget.Telemetry.gave_up_fuel);
            ("splinters", Json.Int t.Budget.Telemetry.gave_up_splinters);
            ("disjuncts", Json.Int t.Budget.Telemetry.gave_up_disjuncts);
            ("deadline", Json.Int t.Budget.Telemetry.gave_up_deadline);
            ("injected", Json.Int t.Budget.Telemetry.gave_up_injected);
            ("incomplete", Json.Int t.Budget.Telemetry.gave_up_incomplete);
          ] );
      ("peak_fuel", Json.Int t.Budget.Telemetry.peak_fuel);
      ("peak_splinters", Json.Int t.Budget.Telemetry.peak_splinters);
      ("worst_query", Json.Str t.Budget.Telemetry.worst_label);
      ("worst_fuel", Json.Int t.Budget.Telemetry.worst_fuel);
      ("backend", Json.Str (Portfolio.backend_to_string !Portfolio.backend));
      ("tiers", tiers_json (Portfolio.Stats.current ()));
    ]

let memo_report ~req_hits ~req_misses =
  let m = D.Analyses.Memo.stats in
  {
    Protocol.mr_req_hits = req_hits;
    mr_req_misses = req_misses;
    mr_hits = m.D.Analyses.Memo.hits;
    mr_misses = m.D.Analyses.Memo.misses;
    mr_size = D.Analyses.Memo.size ();
    mr_capacity = !D.Analyses.Memo.capacity;
    mr_evictions = m.D.Analyses.Memo.evictions;
  }

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

(* One governed unit of solver work, shipped to a worker domain: fresh
   per-request telemetry and memo attribution in that domain's local
   storage, the clamped budget, and the memo hit/miss deltas for the
   response.  A worker runs one task at a time, so the domain-local
   counters are exact per-request figures even with other sessions in
   flight on sibling workers.  The task traps its own exceptions, and
   run_batch's lock hands the result back to the session thread.

   [wall] is the request's absolute deadline, installed as the worker
   domain's wall deadline: every solver meter inside enforces it, so a
   request that waited in the pool queue gets a correspondingly smaller
   time budget, and one whose deadline passed while queued is refused
   before any solver work runs. *)
let solve t budget ~wall (f : unit -> Json.t) :
    (Json.t * Protocol.memo_report * Json.t, exn) result =
  let result = ref (Error (Failure "petitd: request task never ran")) in
  let task () =
    result :=
      try
        Budget.Telemetry.reset ();
        Portfolio.Stats.reset ();
        D.Analyses.Memo.local_reset ();
        let payload =
          Budget.with_wall_deadline wall (fun () ->
              if Budget.wall_expired () then
                raise (Budget.Exhausted Budget.Deadline);
              Budget.with_limits (Protocol.clamp_budget budget t.quota) f)
        in
        let req_hits, req_misses = D.Analyses.Memo.local_counts () in
        let response =
          Ok (payload, memo_report ~req_hits ~req_misses, governance_json ())
        in
        (* fold this request's tier traffic into the service lifetime
           totals (the worker runs one task at a time, so the
           domain-local record is exactly this request's) *)
        Mutex.lock t.stats_lock;
        Portfolio.Stats.merge_into t.tiers (Portfolio.Stats.current ());
        Mutex.unlock t.stats_lock;
        response
      with e -> Error e
  in
  Taskpool.run_batch ~participate:false t.pool [ task ];
  !result

let err ?retry_after_ms t ~id code message =
  bump t (fun s -> s.s_errors <- s.s_errors + 1);
  (Protocol.Error_ { id; code; message; retry_after_ms }, `Continue)

(* Admission for work-bearing requests: shed on an over-full gate, and
   refuse outright a request whose wall deadline has already passed —
   running it could only burn a worker to produce [Gave_up] anyway. *)
let admitted t ~id ~wall k =
  match try_admit t with
  | `Shed retry_after_ms ->
    err ~retry_after_ms t ~id Protocol.Overloaded
      "in-flight limit reached; retry after backing off"
  | `Admitted ->
    Fun.protect
      ~finally:(fun () -> release t)
      (fun () ->
        match wall with
        | Some d when Unix.gettimeofday () >= d ->
          bump t (fun s ->
              s.s_deadline_refused <- s.s_deadline_refused + 1);
          err t ~id Protocol.Gave_up
            "request deadline expired before work started"
        | _ -> k ())

let wall_of ~now deadline_ms =
  Option.map (fun ms -> now +. (ms /. 1000.)) deadline_ms

let program_request t ~id ~program ~in_bounds ~budget ~wall payload_of =
  match
    solve t budget ~wall (fun () ->
        let prog = Lang.Sema.analyze (Lang.Parser.parse_string program) in
        payload_of ~in_bounds prog)
  with
  | Ok (payload, memo, governance) ->
    ( Protocol.Result
        { id; payload; memo = Some memo; governance = Some governance },
      `Continue )
  | Error (Lang.Parser.Error (msg, pos)) ->
    err t ~id Protocol.Parse_error
      (Printf.sprintf "line %d, column %d: %s" pos.Lang.Ast.line
         pos.Lang.Ast.col msg)
  | Error (Lang.Sema.Error msg) -> err t ~id Protocol.Semantic_error msg
  | Error (Invalid_argument msg) -> err t ~id Protocol.Semantic_error msg
  | Error (Budget.Exhausted r) ->
    err t ~id Protocol.Gave_up
      (Printf.sprintf "budget exhausted (%s)" (Budget.reason_to_string r))
  | Error e -> err t ~id Protocol.Server_error (Printexc.to_string e)

(* Snapshot the lifetime tier totals under the lock. *)
let snapshot_tiers t =
  let copy = Portfolio.Stats.make () in
  Mutex.lock t.stats_lock;
  Portfolio.Stats.merge_into copy t.tiers;
  Mutex.unlock t.stats_lock;
  copy

let stats_payload t =
  let s = t.stats in
  let m = memo_report ~req_hits:0 ~req_misses:0 in
  let total = m.Protocol.mr_hits + m.Protocol.mr_misses in
  let tiers = snapshot_tiers t in
  Json.Obj
    [
      ( "requests",
        Json.Obj
          [
            ("analyze", Json.Int s.s_analyze);
            ("parallelize", Json.Int s.s_parallelize);
            ("omega_calc", Json.Int s.s_calc);
            ("stats", Json.Int s.s_stats);
            ("errors", Json.Int s.s_errors);
          ] );
      ( "connections",
        Json.Obj
          [
            ("open", Json.Int s.s_conns); ("total", Json.Int s.s_conns_total);
          ] );
      ("memo", Protocol.memo_json m);
      ( "memo_hit_rate",
        Json.Float
          (if total = 0 then 0.
           else float_of_int m.Protocol.mr_hits /. float_of_int total) );
      ("backend", Json.Str (Portfolio.backend_to_string !Portfolio.backend));
      ("tiers", tiers_json tiers);
      ( "quota",
        Json.Obj
          [
            ("fuel", Json.Int t.quota.Budget.fuel);
            ("splinters", Json.Int t.quota.Budget.splinters);
            ("disjuncts", Json.Int t.quota.Budget.disjuncts);
            ( "deadline_ms",
              match t.quota.Budget.deadline_ms with
              | Some d -> Json.Float d
              | None -> Json.Null );
          ] );
    ]

(* The server's overload posture: everything an operator (or a load
   balancer) needs to see whether the protections are firing.  Served
   on the session thread — never queued behind solver work — so it
   answers even when every worker is busy. *)
let health_payload t =
  Mutex.lock t.stats_lock;
  let s = t.stats in
  let snap =
    [
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
      ("in_flight", Json.Int s.s_inflight);
      ( "max_inflight",
        match t.max_inflight with
        | Some n -> Json.Int n
        | None -> Json.Null );
      ( "shed",
        Json.Obj
          [
            ("requests", Json.Int s.s_shed_requests);
            ("connections", Json.Int s.s_shed_conns);
          ] );
      ("reaped", Json.Int s.s_reaped);
      ("deadline_refused", Json.Int s.s_deadline_refused);
      ( "connections",
        Json.Obj
          [
            ("open", Json.Int s.s_conns); ("total", Json.Int s.s_conns_total);
          ] );
      ( "served",
        Json.Int (s.s_analyze + s.s_parallelize + s.s_calc + s.s_stats
                  + s.s_health) );
      ("errors", Json.Int s.s_errors);
    ]
  in
  Mutex.unlock t.stats_lock;
  let m = memo_report ~req_hits:0 ~req_misses:0 in
  Json.Obj
    (snap
    @ [
        ("domains", Json.Int (Taskpool.workers t.pool));
        ("memo", Protocol.memo_json m);
        ("backend", Json.Str (Portfolio.backend_to_string !Portfolio.backend));
        ("tiers", tiers_json (snapshot_tiers t));
      ])

let handle t ~peer:_ ~id (req : Protocol.request) =
  let now = Unix.gettimeofday () in
  match req with
  | Protocol.Analyze { program; in_bounds; budget; deadline_ms } ->
    bump t (fun s -> s.s_analyze <- s.s_analyze + 1);
    let wall = wall_of ~now deadline_ms in
    admitted t ~id ~wall (fun () ->
        program_request t ~id ~program ~in_bounds ~budget ~wall
          analyze_payload)
  | Protocol.Parallelize { program; in_bounds; budget; deadline_ms } ->
    bump t (fun s -> s.s_parallelize <- s.s_parallelize + 1);
    let wall = wall_of ~now deadline_ms in
    admitted t ~id ~wall (fun () ->
        program_request t ~id ~program ~in_bounds ~budget ~wall
          parallelize_payload)
  | Protocol.Omega_calc { op; budget; deadline_ms } ->
    bump t (fun s -> s.s_calc <- s.s_calc + 1);
    let wall = wall_of ~now deadline_ms in
    admitted t ~id ~wall (fun () ->
        match
          solve t budget ~wall (fun () ->
              match Calc.eval op with
              | Ok r -> Calc.result_json r
              | Error msg -> raise (Calc_error msg))
        with
        | Ok (payload, memo, governance) ->
          ( Protocol.Result
              { id; payload; memo = Some memo; governance = Some governance },
            `Continue )
        | Error (Budget.Exhausted r) ->
          err t ~id Protocol.Gave_up
            (Printf.sprintf "budget exhausted (%s)"
               (Budget.reason_to_string r))
        | Error (Calc_error msg) -> err t ~id Protocol.Parse_error msg
        | Error e -> err t ~id Protocol.Server_error (Printexc.to_string e))
  | Protocol.Stats ->
    bump t (fun s -> s.s_stats <- s.s_stats + 1);
    ( Protocol.Result
        { id; payload = stats_payload t; memo = None; governance = None },
      `Continue )
  | Protocol.Health ->
    bump t (fun s -> s.s_health <- s.s_health + 1);
    ( Protocol.Result
        { id; payload = health_payload t; memo = None; governance = None },
      `Continue )
  | Protocol.Shutdown ->
    ( Protocol.Result
        { id; payload = Json.Obj [ ("shutdown", Json.Bool true) ];
          memo = None; governance = None },
      `Shutdown )
