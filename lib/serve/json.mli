(** Minimal JSON values: the one serialization path shared by the wire
    protocol, the CLI [--json] modes and every bench artifact, so
    escaping and number formatting are decided exactly once.

    Numbers: integers stay [Int]; floats print with the shortest
    [%.12g]/[%.17g] representation that parses back to the same value,
    so emit-then-parse is the identity on finite floats.  Non-finite
    floats have no JSON spelling and emit as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

val pretty : t -> string
(** Two-space indented rendering, for human-facing [--json] output. *)

val parse : ?max_depth:int -> string -> (t, string) result
(** Total parser: never raises, rejects trailing garbage, and bounds
    nesting at [max_depth] (default 512) so adversarial frames cannot
    blow the stack. *)

val equal : t -> t -> bool
(** Structural equality; floats compare with {!Float.equal} (bit-level
    up to NaN folding), object fields in order. *)

(** {1 Accessors} (for clients decoding responses) *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on a missing field or a non-object. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] widens to float. *)

val to_str_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
