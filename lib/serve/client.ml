type t = {
  fd : Unix.file_descr;
  max_frame : int;
  mutable next_id : int;
  mutable closed : bool;
}

let connect ?(max_frame = Protocol.default_max_frame) addr =
  let sockaddr =
    match addr with
    | Protocol.Unix_path p -> Ok (Unix.ADDR_UNIX p)
    | Protocol.Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | ip -> Ok (Unix.ADDR_INET (ip, port))
      | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } ->
          Error (Printf.sprintf "cannot resolve %s" host)
        | exception Not_found ->
          Error (Printf.sprintf "cannot resolve %s" host)
        | h -> Ok (Unix.ADDR_INET (h.Unix.h_addr_list.(0), port))))
  in
  match sockaddr with
  | Error _ as e -> e
  | Ok sa -> (
    let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () -> Ok { fd; max_frame; next_id = 1; closed = false }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s"
           (Protocol.addr_to_string addr) (Unix.error_message e)))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let request t req =
  if t.closed then Error "connection is closed"
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let frame = Json.to_string (Protocol.encode_request ~id req) in
    match Protocol.write_frame t.fd frame with
    | exception Unix.Unix_error (e, _, _) ->
      Error ("write failed: " ^ Unix.error_message e)
    | () -> (
      match Protocol.read_frame ~max:t.max_frame t.fd with
      | Error Protocol.Closed -> Error "server closed the connection"
      | Error Protocol.Truncated -> Error "truncated response frame"
      | Error (Protocol.Oversized n | Protocol.Poisoned n) ->
        Error (Printf.sprintf "response frame of %d bytes is too large" n)
      | Ok payload -> (
        match Json.parse payload with
        | Error msg -> Error ("invalid response JSON: " ^ msg)
        | Ok json -> (
          match Protocol.decode_response json with
          | Error msg -> Error ("invalid response: " ^ msg)
          | Ok resp ->
            let rid =
              match resp with
              | Protocol.Result { id; _ } | Protocol.Error_ { id; _ } -> id
            in
            (* id 0 marks server-side failures decoding the request id *)
            if rid = id || rid = 0 then Ok resp
            else
              Error
                (Printf.sprintf "response id %d does not match request %d"
                   rid id))))
  end

let result_payload = function
  | Protocol.Result { payload; memo; _ } -> Ok (payload, memo)
  | Protocol.Error_ { code; message; _ } ->
    Error (Protocol.error_code_to_string code ^ ": " ^ message)
