(* Typed client for the petitd wire protocol, in two layers:

   - [t]: one connection, one outstanding request, with bounded connect
     and per-request deadlines so a blackholed address or a stalled
     daemon surfaces as an error instead of a hang.
   - [session]: a reconnecting, retrying handle.  Retries happen only on
     provably idempotent outcomes — an [Overloaded] shed, a connect
     failure, a clean close before any response byte — with jittered
     exponential backoff under a total retry budget.  Once any byte of a
     response has arrived (including a read timeout mid-response), the
     call fails instead of resending: the server may have executed the
     request, and a second answer could interleave with the first. *)

type t = {
  fd : Unix.file_descr;
  max_frame : int;
  request_timeout_ms : float option;
  mutable next_id : int;
  mutable closed : bool;
}

let sockaddr_of addr =
  match addr with
  | Protocol.Unix_path p -> Ok (Unix.ADDR_UNIX p)
  | Protocol.Tcp (host, port) -> (
    match Unix.inet_addr_of_string host with
    | ip -> Ok (Unix.ADDR_INET (ip, port))
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
        Error (Printf.sprintf "cannot resolve %s" host)
      | exception Not_found ->
        Error (Printf.sprintf "cannot resolve %s" host)
      | h -> Ok (Unix.ADDR_INET (h.Unix.h_addr_list.(0), port))))

(* TCP connect with a bounded wait: non-blocking connect, select on
   writability under the remaining time, then read the socket error back
   so a refused connection is distinguished from an established one.  A
   blackholed address (SYN never answered) times out instead of hanging
   for the kernel's minutes-long default.  Unix-domain connects are
   local and never hang; they go through the plain blocking path. *)
let connect_sockaddr ?connect_timeout_ms sa fd =
  match (sa, connect_timeout_ms) with
  | Unix.ADDR_UNIX _, _ | _, None -> Unix.connect fd sa
  | Unix.ADDR_INET _, Some ms -> (
    Unix.set_nonblock fd;
    let finish () = Unix.clear_nonblock fd in
    match Unix.connect fd sa with
    | () -> finish ()
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
      let deadline = Unix.gettimeofday () +. (ms /. 1000.) in
      let rec wait () =
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then
          raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
        else
          match Unix.select [] [ fd ] [] remaining with
          | _, [ _ ], _ -> (
            match Unix.getsockopt_error fd with
            | None -> finish ()
            | Some err -> raise (Unix.Unix_error (err, "connect", "")))
          | _ -> wait ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      wait ()
    | exception e ->
      finish ();
      raise e)

let connect ?(max_frame = Protocol.default_max_frame) ?connect_timeout_ms
    ?request_timeout_ms addr =
  match sockaddr_of addr with
  | Error _ as e -> e
  | Ok sa -> (
    let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
    match connect_sockaddr ?connect_timeout_ms sa fd with
    | () -> Ok { fd; max_frame; request_timeout_ms; next_id = 1; closed = false }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s"
           (Protocol.addr_to_string addr) (Unix.error_message e)))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* [`Retry]: the request provably did not produce any response byte —
   safe to resend on a fresh connection.  [`Fatal]: a response may have
   been (partially) produced or the transport is confused; resending
   risks a duplicate or interleaved answer. *)
type failure = [ `Retry of string | `Fatal of string ]

let failure_message = function `Retry m | `Fatal m -> m

let request_classified t req : (Protocol.response, failure) result =
  if t.closed then Error (`Fatal "connection is closed")
  else begin
    let deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (ms /. 1000.))
        t.request_timeout_ms
    in
    let id = t.next_id in
    t.next_id <- id + 1;
    let frame = Json.to_string (Protocol.encode_request ~id req) in
    match Protocol.write_frame ?deadline t.fd frame with
    | exception Unix.Unix_error (e, _, _) ->
      (* The server dropped us (or stalled) before a response could
         exist; nothing of this request has been answered.  If the drop
         was an over-cap shed, the unsolicited Overloaded response is
         sitting in our receive buffer — surface it (and its
         retry_after hint) instead of a bare write error. *)
      let write_err = Error (`Retry ("write failed: " ^ Unix.error_message e)) in
      (match
         Protocol.read_frame
           ~deadline:(Unix.gettimeofday () +. 0.05)
           ~max:t.max_frame t.fd
       with
      | Ok payload -> (
        match Json.parse payload with
        | Ok json -> (
          match Protocol.decode_response json with
          | Ok (Protocol.Error_ { id = 0; _ } as resp) -> Ok resp
          | Ok _ | Error _ -> write_err)
        | Error _ -> write_err)
      | Error _ -> write_err
      | exception Unix.Unix_error _ -> write_err)
    | () -> (
      match Protocol.read_frame ?deadline ~max:t.max_frame t.fd with
      | Error Protocol.Closed -> Error (`Retry "server closed the connection")
      | Error Protocol.Truncated -> Error (`Fatal "truncated response frame")
      | Error Protocol.Timed_out ->
        Error (`Fatal "timed out waiting for the response")
      | Error (Protocol.Oversized n | Protocol.Poisoned n) ->
        Error (`Fatal (Printf.sprintf "response frame of %d bytes is too large" n))
      | Ok payload -> (
        match Json.parse payload with
        | Error msg -> Error (`Fatal ("invalid response JSON: " ^ msg))
        | Ok json -> (
          match Protocol.decode_response json with
          | Error msg -> Error (`Fatal ("invalid response: " ^ msg))
          | Ok resp ->
            let rid =
              match resp with
              | Protocol.Result { id; _ } | Protocol.Error_ { id; _ } -> id
            in
            (* id 0 marks server-side failures decoding the request id *)
            if rid = id || rid = 0 then Ok resp
            else
              Error
                (`Fatal
                   (Printf.sprintf "response id %d does not match request %d"
                      rid id)))))
  end

let request t req =
  Result.map_error failure_message (request_classified t req)

let result_payload = function
  | Protocol.Result { payload; memo; _ } -> Ok (payload, memo)
  | Protocol.Error_ { code; message; _ } ->
    Error (Protocol.error_code_to_string code ^ ": " ^ message)

(* ------------------------------------------------------------------ *)
(* Retrying sessions                                                   *)
(* ------------------------------------------------------------------ *)

type policy = {
  p_attempts : int;
  p_base_ms : float;
  p_max_ms : float;
  p_retry_budget_ms : float;
  p_connect_timeout_ms : float option;
  p_request_timeout_ms : float option;
  p_seed : int;
  p_sleep : float -> unit;
}

let default_policy =
  {
    p_attempts = 5;
    p_base_ms = 25.;
    p_max_ms = 2_000.;
    p_retry_budget_ms = 30_000.;
    p_connect_timeout_ms = Some 5_000.;
    p_request_timeout_ms = Some 60_000.;
    p_seed = 1;
    p_sleep = (fun ms -> Thread.delay (ms /. 1000.));
  }

type session = {
  s_addr : Protocol.addr;
  s_max_frame : int;
  s_policy : policy;
  mutable s_conn : t option;
  mutable s_rng : int64;
  mutable s_retries : int;
}

let open_session ?(policy = default_policy)
    ?(max_frame = Protocol.default_max_frame) addr =
  {
    s_addr = addr;
    s_max_frame = max_frame;
    s_policy = policy;
    s_conn = None;
    s_rng = Int64.of_int ((policy.p_seed * 2) + 1);
    s_retries = 0;
  }

let session_retries s = s.s_retries

let drop_conn s =
  match s.s_conn with
  | Some c ->
    close c;
    s.s_conn <- None
  | None -> ()

let close_session = drop_conn

(* splitmix64 step: the jitter stream is a pure function of the policy
   seed, so a test can pin the whole backoff schedule. *)
let next_unit s =
  let z = Int64.add s.s_rng 0x9E3779B97F4A7C15L in
  s.s_rng <- z;
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.

(* Exponential backoff for attempt [k] (1-based), jittered to [0.5,1.5)
   of the nominal step, floored at the server's retry_after hint. *)
let backoff_ms s ~attempt ~hint =
  let p = s.s_policy in
  let nominal =
    Float.min p.p_max_ms (p.p_base_ms *. (2. ** float_of_int (attempt - 1)))
  in
  let jittered = nominal *. (0.5 +. next_unit s) in
  match hint with Some h -> Float.max h jittered | None -> jittered

let ensure_conn s =
  match s.s_conn with
  | Some c when not c.closed -> Ok c
  | _ ->
    s.s_conn <- None;
    (match
       connect ~max_frame:s.s_max_frame
         ?connect_timeout_ms:s.s_policy.p_connect_timeout_ms
         ?request_timeout_ms:s.s_policy.p_request_timeout_ms s.s_addr
     with
    | Ok c ->
      s.s_conn <- Some c;
      Ok c
    | Error _ as e -> e)

let call s req =
  let p = s.s_policy in
  let give_up_at = Unix.gettimeofday () +. (p.p_retry_budget_ms /. 1000.) in
  let rec attempt k =
    let retry_or ~hint msg =
      if k >= p.p_attempts then
        Error (Printf.sprintf "after %d attempt(s): %s" k msg)
      else
        let delay = backoff_ms s ~attempt:k ~hint in
        if Unix.gettimeofday () +. (delay /. 1000.) > give_up_at then
          Error (Printf.sprintf "retry budget exhausted after %d attempt(s): %s" k msg)
        else begin
          s.s_retries <- s.s_retries + 1;
          p.p_sleep delay;
          attempt (k + 1)
        end
    in
    match ensure_conn s with
    | Error msg -> retry_or ~hint:None ("connect: " ^ msg)
    | Ok c -> (
      match request_classified c req with
      | Ok (Protocol.Error_ { id; code = Protocol.Overloaded; message; retry_after_ms; _ })
        when k < p.p_attempts ->
        (* An admission-gate shed answers our request id and leaves the
           connection usable.  An unsolicited shed (id 0) is the
           over-cap kind: the server closes the connection right after
           sending it, so keeping it would burn the next attempt on a
           broken pipe. *)
        if id = 0 then drop_conn s;
        retry_or ~hint:retry_after_ms ("overloaded: " ^ message)
      | Ok resp -> Ok resp
      | Error (`Retry msg) ->
        drop_conn s;
        retry_or ~hint:None msg
      | Error (`Fatal msg) ->
        drop_conn s;
        Error msg)
  in
  attempt 1
