(** Typed client for the petitd wire protocol: one connection, one
    outstanding request at a time, ids managed internally. *)

type t

val connect : ?max_frame:int -> Protocol.addr -> (t, string) result
val close : t -> unit

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request and block for its response.  [Error] means the
    transport or the response decoding failed (the connection should be
    abandoned); protocol-level failures come back as
    [Ok (Protocol.Error_ ...)].  A response whose id does not match the
    request is a transport error. *)

val result_payload :
  Protocol.response -> (Json.t * Protocol.memo_report option, string) result
(** Collapse a response into its payload (and memo telemetry),
    rendering protocol errors as ["code: message"] strings. *)
