(** Typed client for the petitd wire protocol.

    Two layers: a bare connection ({!t}) with bounded connect and
    per-request deadlines, and a reconnecting, retrying {!session} that
    resends only provably idempotent failures — an [Overloaded] shed, a
    connect failure, a clean close before any response byte — with
    jittered exponential backoff under a total retry budget.  A request
    that may have produced any response byte is never resent. *)

(** {1 Bare connections} *)

type t

val connect :
  ?max_frame:int ->
  ?connect_timeout_ms:float ->
  ?request_timeout_ms:float ->
  Protocol.addr ->
  (t, string) result
(** [connect_timeout_ms] bounds TCP connection establishment (a
    blackholed address errors instead of hanging for the kernel default;
    Unix-socket connects are local and never wait).  [request_timeout_ms]
    bounds each subsequent {!request} end to end. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request and block for its response.  [Error] covers
    transport and protocol failures (including the request deadline
    passing); a server-reported failure is [Ok (Error_ ...)].  A
    response whose id does not match the request is a transport error.
    After a timeout or truncation the stream is desynced — close the
    connection. *)

val result_payload :
  Protocol.response -> (Json.t * Protocol.memo_report option, string) result
(** Collapse a response into its payload (and memo telemetry),
    rendering protocol errors as ["code: message"] strings. *)

val close : t -> unit

(** {1 Retrying sessions} *)

type policy = {
  p_attempts : int;  (** total attempts, including the first *)
  p_base_ms : float;  (** backoff base; attempt [k] waits [base * 2^(k-1)] *)
  p_max_ms : float;  (** cap on a single backoff step *)
  p_retry_budget_ms : float;
      (** total wall budget for a {!call} across all attempts and
          backoffs; exceeding it fails fast instead of sleeping *)
  p_connect_timeout_ms : float option;
  p_request_timeout_ms : float option;
  p_seed : int;  (** seeds the jitter stream — same seed, same schedule *)
  p_sleep : float -> unit;
      (** sleep hook (milliseconds); tests substitute a recorder *)
}

val default_policy : policy
(** 5 attempts, 25 ms base doubling to a 2 s cap, 30 s retry budget,
    5 s connect / 60 s request timeouts, [Thread.delay] sleeps. *)

type session

val open_session : ?policy:policy -> ?max_frame:int -> Protocol.addr -> session
(** No I/O happens until the first {!call}; the connection is (re)made
    lazily and dropped on any transport failure. *)

val call : session -> Protocol.request -> (Protocol.response, string) result
(** Like {!request}, but reconnects and retries idempotent failures:
    connect errors, transport failures before any response byte, and
    [Overloaded] sheds (waiting at least the server's [retry_after_ms]
    hint, jittered exponential backoff otherwise).  Non-idempotent
    failures — timeout or truncation once the response may have
    started — fail immediately.  When attempts run out on overload the
    last [Overloaded] response is returned as [Ok (Error_ ...)]. *)

val session_retries : session -> int
(** Retries performed over the session's lifetime (0 = every call
    succeeded first try). *)

val close_session : session -> unit
