(** The omega_calc operations as one shared evaluation path: the
    [omega_calc] CLI (plain and [--json]) and the daemon's [omega_calc]
    requests all answer through {!eval}, so their results are
    structurally identical by construction. *)

type result =
  | R_sat of bool
  | R_implies of bool
  | R_project of string list
      (** rendered disjuncts of the projection; [[]] means FALSE *)
  | R_gist of [ `Tautology | `False | `Gist of string ]
  | R_opt of [ `Val of string | `Unsat | `Unbounded ]

val eval : Protocol.calc_op -> (result, string) Stdlib.result
(** [Error msg] covers parse failures and unknown variables.  A blown
    budget escapes as {!Omega.Budget.Exhausted} (the calculator talks to
    the solver without a query boundary); callers map it to their
    gave-up surface. *)

val result_json : result -> Json.t
val result_plain : result -> string
(** The CLI's historical one-answer-per-line rendering. *)
