(** The petitd socket server: an accept loop over a Unix-domain or TCP
    socket, one session thread per connection, all requests served by a
    shared {!Service.t}.

    Connection failures are contained: a malformed or oversized frame
    earns an error response on the same connection, a truncated frame or
    dropped peer closes only that session.  A [shutdown] request (or
    {!stop}) closes the listening socket, lets in-flight sessions
    finish, and {!wait} returns. *)

type config = {
  c_addr : Protocol.addr;
  c_max_frame : int;  (** per-frame payload cap, bytes *)
  c_memo_capacity : int option;  (** verdict-cache bound; [None] keeps the default *)
  c_quota : Omega.Budget.limits;  (** per-request budget ceiling *)
  c_backlog : int;
  c_domains : int;
      (** worker domains running solver work; concurrent sessions
          analyze in parallel up to this width (default: the machine's
          recommended domain count minus the accept/session side) *)
}

val default_config : Protocol.addr -> config

type t

val start : config -> t
(** Bind, listen, and return with the accept loop running in a
    background thread.  Raises [Unix.Unix_error] if the address cannot
    be bound. *)

val service : t -> Service.t
val addr : t -> Protocol.addr

val wait : t -> unit
(** Block until the server shuts down (via a [shutdown] request or
    {!stop}) and every session thread has been joined. *)

val stop : t -> unit
(** Ask the server to stop accepting; idempotent. *)

val run : config -> unit
(** [start] + [wait]: the blocking entry point used by the petitd
    binary. *)
