(** The petitd socket server: an accept loop over a Unix-domain or TCP
    socket, one session thread per connection, all requests served by a
    shared {!Service.t}.

    Connection failures are contained: a malformed or oversized frame
    earns an error response on the same connection, a truncated frame or
    dropped peer closes only that session.  Hostile peers are bounded:
    frame reads and writes run under {!c_read_timeout_ms}-guarded
    deadlines (a slowloris or a non-draining reader is reaped),
    connections beyond {!c_max_connections} are shed with a typed
    [Overloaded] response, and the Service's admission gate caps
    in-flight solver work at {!c_max_inflight}.

    A [shutdown] request (or {!stop}) drains gracefully: the listening
    socket closes, idle connections are dropped at once, in-flight
    requests get {!c_drain_ms} to finish, then laggards are
    force-closed and {!wait} returns. *)

type config = {
  c_addr : Protocol.addr;
  c_max_frame : int;  (** per-frame payload cap, bytes *)
  c_memo_capacity : int option;  (** verdict-cache bound; [None] keeps the default *)
  c_quota : Omega.Budget.limits;  (** per-request budget ceiling *)
  c_backlog : int;
  c_domains : int;
      (** worker domains running solver work; concurrent sessions
          analyze in parallel up to this width (default: the machine's
          recommended domain count minus the accept/session side) *)
  c_max_connections : int;
      (** open-connection cap; excess connections receive one
          [Overloaded] response and are closed (default 64) *)
  c_max_inflight : int option;
      (** admission gate: work-bearing requests solving or queued at
          once before sheds begin; [None] (the default) disables
          shedding — embedded servers expect lossless service, and the
          petitd binary opts in with its own [2 * domains] default *)
  c_read_timeout_ms : float option;
      (** per-frame I/O deadline: a whole request frame must arrive —
          and a whole response frame must drain — within this window or
          the connection is reaped (default 10s); [None] disables *)
  c_drain_ms : float;
      (** shutdown grace: how long in-flight requests may finish before
          their connections are force-closed (default 5s) *)
}

val default_config : Protocol.addr -> config

type t

val start : config -> t
(** Bind, listen, and return with the accept loop running in a
    background thread.  Raises [Unix.Unix_error] if the address cannot
    be bound. *)

val service : t -> Service.t
val addr : t -> Protocol.addr

val wait : t -> unit
(** Block until the server shuts down (via a [shutdown] request or
    {!stop}), then drain: idle sessions drop immediately, in-flight
    requests get [c_drain_ms] to finish, laggards are force-closed, and
    every session thread is joined. *)

val stop : t -> unit
(** Ask the server to stop accepting; idempotent. *)

val run : config -> unit
(** [start] + [wait]: the blocking entry point used by the petitd
    binary. *)
