(* Length-prefixed JSON frames and the request/response vocabulary of
   petitd.  Encoding and decoding both go through Json, so the client
   library, the server and the tests share one formatting path. *)

type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  match String.rindex_opt s ':' with
  | Some i when not (String.contains s '/') -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 ->
      Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
    | _ -> Error (Printf.sprintf "bad port in %S" s))
  | _ -> if s = "" then Error "empty address" else Ok (Unix_path s)

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type budget_spec = {
  b_fuel : int option;
  b_splinters : int option;
  b_disjuncts : int option;
  b_deadline_ms : float option;
}

let no_budget =
  { b_fuel = None; b_splinters = None; b_disjuncts = None; b_deadline_ms = None }

(* The request may ask for less than the quota, never for more; an
   absent dimension means "whatever the quota allows". *)
let clamp_budget spec (quota : Omega.Budget.limits) : Omega.Budget.limits =
  let dim req q = match req with Some r -> min r q | None -> q in
  {
    Omega.Budget.fuel = dim spec.b_fuel quota.Omega.Budget.fuel;
    splinters = dim spec.b_splinters quota.Omega.Budget.splinters;
    disjuncts = dim spec.b_disjuncts quota.Omega.Budget.disjuncts;
    deadline_ms =
      (match (spec.b_deadline_ms, quota.Omega.Budget.deadline_ms) with
      | Some r, Some q -> Some (Float.min r q)
      | Some r, None -> Some r
      | None, q -> q);
  }

type calc_op =
  | Sat of string
  | Implies of string * string
  | Project of {
      mode : [ `Exact | `Dark | `Real ];
      onto : string list;
      problem : string;
    }
  | Gist of { problem : string; given : string }
  | Optimize of { dir : [ `Min | `Max ]; var : string; problem : string }

type request =
  | Analyze of {
      program : string;
      in_bounds : bool;
      budget : budget_spec;
      deadline_ms : float option;
    }
  | Parallelize of {
      program : string;
      in_bounds : bool;
      budget : budget_spec;
      deadline_ms : float option;
    }
  | Omega_calc of {
      op : calc_op;
      budget : budget_spec;
      deadline_ms : float option;
    }
  | Stats
  | Health
  | Shutdown

let budget_json b =
  let f k v = Option.map (fun x -> (k, Json.Int x)) v in
  let fields =
    List.filter_map Fun.id
      [
        f "fuel" b.b_fuel;
        f "splinters" b.b_splinters;
        f "disjuncts" b.b_disjuncts;
        Option.map (fun x -> ("deadline_ms", Json.Float x)) b.b_deadline_ms;
      ]
  in
  if fields = [] then None else Some (Json.Obj fields)

let calc_op_json = function
  | Sat p -> Json.Obj [ ("calc", Json.Str "sat"); ("problem", Json.Str p) ]
  | Implies (p, q) ->
    Json.Obj
      [ ("calc", Json.Str "implies"); ("p", Json.Str p); ("q", Json.Str q) ]
  | Project { mode; onto; problem } ->
    Json.Obj
      [
        ( "calc",
          Json.Str
            (match mode with
            | `Exact -> "project"
            | `Dark -> "dark"
            | `Real -> "real") );
        ("onto", Json.List (List.map (fun v -> Json.Str v) onto));
        ("problem", Json.Str problem);
      ]
  | Gist { problem; given } ->
    Json.Obj
      [
        ("calc", Json.Str "gist");
        ("problem", Json.Str problem);
        ("given", Json.Str given);
      ]
  | Optimize { dir; var; problem } ->
    Json.Obj
      [
        ("calc", Json.Str (match dir with `Min -> "min" | `Max -> "max"));
        ("var", Json.Str var);
        ("problem", Json.Str problem);
      ]

let encode_request ~id req =
  let base op rest = Json.Obj (("id", Json.Int id) :: ("op", Json.Str op) :: rest) in
  let with_budget b rest =
    match budget_json b with Some j -> rest @ [ ("budget", j) ] | None -> rest
  in
  let with_deadline d rest =
    match d with
    | Some ms -> rest @ [ ("deadline_ms", Json.Float ms) ]
    | None -> rest
  in
  match req with
  | Analyze { program; in_bounds; budget; deadline_ms } ->
    base "analyze"
      (with_deadline deadline_ms
         (with_budget budget
            [ ("program", Json.Str program); ("in_bounds", Json.Bool in_bounds) ]))
  | Parallelize { program; in_bounds; budget; deadline_ms } ->
    base "parallelize"
      (with_deadline deadline_ms
         (with_budget budget
            [ ("program", Json.Str program); ("in_bounds", Json.Bool in_bounds) ]))
  | Omega_calc { op; budget; deadline_ms } ->
    base "omega_calc"
      (with_deadline deadline_ms
         (with_budget budget [ ("query", calc_op_json op) ]))
  | Stats -> base "stats" []
  | Health -> base "health" []
  | Shutdown -> base "shutdown" []

let ( let* ) = Result.bind

let field_str name j =
  match Json.member name j with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S is not a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let field_bool ?(default = false) name j =
  match Json.member name j with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S is not a bool" name)
  | None -> Ok default

let decode_budget j =
  match Json.member "budget" j with
  | None -> Ok no_budget
  | Some b ->
    let int_field name =
      match Json.member name b with
      | Some (Json.Int n) when n > 0 -> Ok (Some n)
      | Some _ -> Error (Printf.sprintf "budget field %S must be a positive integer" name)
      | None -> Ok None
    in
    let* b_fuel = int_field "fuel" in
    let* b_splinters = int_field "splinters" in
    let* b_disjuncts = int_field "disjuncts" in
    let* b_deadline_ms =
      match Json.member "deadline_ms" b with
      | Some v -> (
        match Json.to_float_opt v with
        | Some f when f > 0. -> Ok (Some f)
        | _ -> Error "budget field \"deadline_ms\" must be a positive number")
      | None -> Ok None
    in
    Ok { b_fuel; b_splinters; b_disjuncts; b_deadline_ms }

(* The whole-request wall deadline, distinct from the per-query budget
   deadline inside [budget]. *)
let decode_deadline j =
  match Json.member "deadline_ms" j with
  | None -> Ok None
  | Some v -> (
    match Json.to_float_opt v with
    | Some f when f > 0. -> Ok (Some f)
    | _ -> Error "field \"deadline_ms\" must be a positive number")

let decode_calc_op j =
  match Json.member "query" j with
  | None -> Error "missing field \"query\""
  | Some q -> (
    let* calc = field_str "calc" q in
    match calc with
    | "sat" ->
      let* p = field_str "problem" q in
      Ok (Sat p)
    | "implies" ->
      let* p = field_str "p" q in
      let* qq = field_str "q" q in
      Ok (Implies (p, qq))
    | "project" | "dark" | "real" ->
      let mode =
        match calc with
        | "project" -> `Exact
        | "dark" -> `Dark
        | _ -> `Real
      in
      let* problem = field_str "problem" q in
      let* onto =
        match Json.member "onto" q with
        | Some (Json.List xs) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | Json.Str s :: rest -> go (s :: acc) rest
            | _ -> Error "field \"onto\" must be a list of strings"
          in
          go [] xs
        | _ -> Error "missing field \"onto\""
      in
      Ok (Project { mode; onto; problem })
    | "gist" ->
      let* problem = field_str "problem" q in
      let* given = field_str "given" q in
      Ok (Gist { problem; given })
    | "min" | "max" ->
      let* var = field_str "var" q in
      let* problem = field_str "problem" q in
      Ok (Optimize { dir = (if calc = "min" then `Min else `Max); var; problem })
    | other -> Error (Printf.sprintf "unknown calc op %S" other))

let decode_request j =
  let res =
    let* id =
      match Json.member "id" j with
      | Some (Json.Int n) -> Ok n
      | Some _ -> Error "field \"id\" must be an integer"
      | None -> Error "missing field \"id\""
    in
    let* op = field_str "op" j in
    let* r =
      match op with
      | "analyze" | "parallelize" ->
        let* program = field_str "program" j in
        let* in_bounds = field_bool "in_bounds" j in
        let* budget = decode_budget j in
        let* deadline_ms = decode_deadline j in
        Ok
          (if op = "analyze" then
             Analyze { program; in_bounds; budget; deadline_ms }
           else Parallelize { program; in_bounds; budget; deadline_ms })
      | "omega_calc" ->
        let* op = decode_calc_op j in
        let* budget = decode_budget j in
        let* deadline_ms = decode_deadline j in
        Ok (Omega_calc { op; budget; deadline_ms })
      | "stats" -> Ok Stats
      | "health" -> Ok Health
      | "shutdown" -> Ok Shutdown
      | other -> Error (Printf.sprintf "unknown op %S" other)
    in
    Ok (id, r)
  in
  res

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type memo_report = {
  mr_req_hits : int;
  mr_req_misses : int;
  mr_hits : int;
  mr_misses : int;
  mr_size : int;
  mr_capacity : int;
  mr_evictions : int;
}

type error_code =
  | Parse_error
  | Semantic_error
  | Bad_request
  | Frame_too_large
  | Gave_up
  | Overloaded
  | Server_error

let error_code_to_string = function
  | Parse_error -> "parse_error"
  | Semantic_error -> "semantic_error"
  | Bad_request -> "bad_request"
  | Frame_too_large -> "frame_too_large"
  | Gave_up -> "gave_up"
  | Overloaded -> "overloaded"
  | Server_error -> "server_error"

let error_code_of_string = function
  | "parse_error" -> Some Parse_error
  | "semantic_error" -> Some Semantic_error
  | "bad_request" -> Some Bad_request
  | "frame_too_large" -> Some Frame_too_large
  | "gave_up" -> Some Gave_up
  | "overloaded" -> Some Overloaded
  | "server_error" -> Some Server_error
  | _ -> None

type response =
  | Result of {
      id : int;
      payload : Json.t;
      memo : memo_report option;
      governance : Json.t option;
    }
  | Error_ of {
      id : int;
      code : error_code;
      message : string;
      retry_after_ms : float option;
    }

let memo_json m =
  Json.Obj
    [
      ("req_hits", Json.Int m.mr_req_hits);
      ("req_misses", Json.Int m.mr_req_misses);
      ("hits", Json.Int m.mr_hits);
      ("misses", Json.Int m.mr_misses);
      ("size", Json.Int m.mr_size);
      ("capacity", Json.Int m.mr_capacity);
      ("evictions", Json.Int m.mr_evictions);
    ]

let encode_response = function
  | Result { id; payload; memo; governance } ->
    Json.Obj
      ([
         ("id", Json.Int id);
         ("ok", Json.Bool true);
         ("result", payload);
       ]
      @ (match memo with Some m -> [ ("memo", memo_json m) ] | None -> [])
      @
      match governance with
      | Some g -> [ ("governance", g) ]
      | None -> [])
  | Error_ { id; code; message; retry_after_ms } ->
    Json.Obj
      [
        ("id", Json.Int id);
        ("ok", Json.Bool false);
        ( "error",
          Json.Obj
            ([
               ("code", Json.Str (error_code_to_string code));
               ("message", Json.Str message);
             ]
            @
            match retry_after_ms with
            | Some ms -> [ ("retry_after_ms", Json.Float ms) ]
            | None -> []) );
      ]

let decode_memo j =
  let i name = Option.bind (Json.member name j) Json.to_int_opt in
  match (i "req_hits", i "req_misses", i "hits", i "misses", i "size",
         i "capacity", i "evictions")
  with
  | ( Some mr_req_hits,
      Some mr_req_misses,
      Some mr_hits,
      Some mr_misses,
      Some mr_size,
      Some mr_capacity,
      Some mr_evictions ) ->
    Some
      {
        mr_req_hits;
        mr_req_misses;
        mr_hits;
        mr_misses;
        mr_size;
        mr_capacity;
        mr_evictions;
      }
  | _ -> None

let decode_response j =
  let id = match Json.member "id" j with Some (Json.Int n) -> n | _ -> 0 in
  match Json.member "ok" j with
  | Some (Json.Bool true) -> (
    match Json.member "result" j with
    | Some payload ->
      Ok
        (Result
           {
             id;
             payload;
             memo = Option.bind (Json.member "memo" j) decode_memo;
             governance = Json.member "governance" j;
           })
    | None -> Error "ok response without \"result\"")
  | Some (Json.Bool false) -> (
    match Json.member "error" j with
    | Some e -> (
      let* code = field_str "code" e in
      let* message = field_str "message" e in
      let retry_after_ms =
        Option.bind (Json.member "retry_after_ms" e) Json.to_float_opt
      in
      match error_code_of_string code with
      | Some code -> Ok (Error_ { id; code; message; retry_after_ms })
      | None -> Error (Printf.sprintf "unknown error code %S" code))
    | None -> Error "error response without \"error\"")
  | _ -> Error "response without boolean \"ok\""

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let default_max_frame = 16 * 1024 * 1024

(* Absolute ceiling on a length prefix we are willing to drain to keep
   the stream in sync; anything larger poisons the connection. *)
let drain_cap = 256 * 1024 * 1024

(* Deadline-guarded I/O.  [deadline] is an absolute [Unix.gettimeofday]
   instant by which the whole frame must have moved; every read/write is
   preceded by a [select] bounded by the remaining time, so a peer that
   trickles one byte per interval cannot hold the call open forever.
   Timeouts surface as [Frame_timeout] (reads, mapped to [Timed_out]) or
   [Unix.ETIMEDOUT] (writes, mapped by callers alongside EPIPE). *)

exception Frame_timeout

let await dir fd deadline =
  match deadline with
  | None -> ()
  | Some d ->
    let rec go () =
      let remaining = d -. Unix.gettimeofday () in
      if remaining <= 0. then raise Frame_timeout
      else
        let r, w =
          match dir with `Read -> ([ fd ], []) | `Write -> ([], [ fd ])
        in
        match Unix.select r w [] remaining with
        | [], [], _ -> go ()
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()

let rec write_all ?deadline fd buf off len =
  if len > 0 then begin
    (match await `Write fd deadline with
    | () -> ()
    | exception Frame_timeout ->
      raise (Unix.Unix_error (Unix.ETIMEDOUT, "write_frame", "")));
    let n = Unix.write fd buf off len in
    write_all ?deadline fd buf (off + n) (len - n)
  end

let write_frame ?deadline fd payload =
  let len = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set hdr 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set hdr 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set hdr 3 (Char.chr (len land 0xFF));
  write_all ?deadline fd hdr 0 4;
  write_all ?deadline fd (Bytes.of_string payload) 0 len

type frame_error =
  | Closed
  | Truncated
  | Oversized of int
  | Poisoned of int
  | Timed_out

(* Read exactly [len] bytes; [`Eof k] reports how many arrived first. *)
let read_exactly ?deadline fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then `Ok buf
    else begin
      await `Read fd deadline;
      match Unix.read fd buf off (len - off) with
      | 0 -> `Eof off
      | n -> go (off + n)
    end
  in
  go 0

let discard ?deadline fd len =
  let chunk = Bytes.create 65536 in
  let rec go remaining =
    if remaining = 0 then `Ok
    else begin
      await `Read fd deadline;
      match Unix.read fd chunk 0 (min remaining 65536) with
      | 0 -> `Eof
      | n -> go (remaining - n)
    end
  in
  go len

let read_frame ?deadline ~max fd =
  try
    match read_exactly ?deadline fd 4 with
    | `Eof 0 -> Error Closed
    | `Eof _ -> Error Truncated
    | `Ok hdr ->
      let b i = Char.code (Bytes.get hdr i) in
      let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if len > max then
        if len > drain_cap then Error (Poisoned len)
        else begin
          match discard ?deadline fd len with
          | `Ok -> Error (Oversized len)
          | `Eof -> Error Truncated
        end
      else begin
        match read_exactly ?deadline fd len with
        | `Ok payload -> Ok (Bytes.to_string payload)
        | `Eof _ -> Error Truncated
      end
  with Frame_timeout -> Error Timed_out
