(* Evaluation of the calculator operations, shared by the omega_calc
   binary and the petitd service.  Problems are conjunctions of chained
   linear comparisons over named integer variables, parsed with the
   petit condition grammar. *)

open Omega

(* Translate parsed conditions to Problems, one fresh variable per
   name (shared across the problems of one evaluation). *)
let build_problem (conds : Lang.Ast.cond list list) :
    Problem.t list * (string * Var.t) list =
  let env : (string * Var.t) list ref = ref [] in
  let var name =
    match List.assoc_opt name !env with
    | Some v -> v
    | None ->
      let v = Var.fresh name in
      env := (name, v) :: !env;
      v
  in
  let rec expr (e : Lang.Ast.expr) : Linexpr.t =
    match e with
    | Lang.Ast.Int n -> Linexpr.of_int n
    | Lang.Ast.Name s -> Linexpr.var (var s)
    | Lang.Ast.Neg a -> Linexpr.neg (expr a)
    | Lang.Ast.Add (a, b) -> Linexpr.add (expr a) (expr b)
    | Lang.Ast.Sub (a, b) -> Linexpr.sub (expr a) (expr b)
    | Lang.Ast.Mul (a, b) -> (
      let ea = expr a and eb = expr b in
      if Linexpr.is_const ea then Linexpr.scale (Linexpr.constant ea) eb
      else if Linexpr.is_const eb then Linexpr.scale (Linexpr.constant eb) ea
      else failwith "non-linear product")
    | Lang.Ast.Max _ | Lang.Ast.Min _ | Lang.Ast.Ref _ ->
      failwith "max/min/array references are not allowed here"
  in
  let constr (c : Lang.Ast.cond) : Constr.t =
    let l = expr c.Lang.Ast.left and r = expr c.Lang.Ast.right in
    match c.Lang.Ast.op with
    | Lang.Ast.Eq -> Constr.eq2 l r
    | Lang.Ast.Le -> Constr.le l r
    | Lang.Ast.Lt -> Constr.lt l r
    | Lang.Ast.Ge -> Constr.ge l r
    | Lang.Ast.Gt -> Constr.gt l r
    | Lang.Ast.Ne -> failwith "!= is a disjunction; not allowed here"
  in
  let problems =
    List.map (fun cs -> Problem.of_list (List.map constr cs)) conds
  in
  (problems, !env)

let parse_problems (srcs : string list) =
  build_problem (List.map Lang.Parser.parse_conds_string srcs)

let lookup_vars env names =
  List.map
    (fun n ->
      match List.assoc_opt n env with
      | Some v -> v
      | None -> failwith (Printf.sprintf "variable %s not in the problem" n))
    names

type result =
  | R_sat of bool
  | R_implies of bool
  | R_project of string list
  | R_gist of [ `Tautology | `False | `Gist of string ]
  | R_opt of [ `Val of string | `Unsat | `Unbounded ]

(* The boolean operations (sat, implies) go through the portfolio
   cascade like analysis queries: under the default [Cascade] backend
   the tier-0 screen answers the easy instances, [Screen] runs it alone
   (raising [Exhausted Incomplete] on the rest — surfaced by the callers
   as a structured give-up), and [Omega] is the direct procedure.  The
   non-boolean operations (project, gist, optimize) have no screen tier
   and always run the full machinery. *)

let portfolio_bool ~label ?screen ~complete () =
  let to_answer f () = if f () then Screen.Proved else Screen.Disproved in
  let tiers = Portfolio.plan ?screen ~complete:(to_answer complete) () in
  match Portfolio.decide ~label tiers with
  | Budget.Proved, _ -> true
  | Budget.Disproved, _ -> false
  | Budget.Gave_up r, _ -> raise (Budget.Exhausted r)

let eval (op : Protocol.calc_op) : (result, string) Stdlib.result =
  try
    match op with
    | Protocol.Sat src ->
      let ps, _ = parse_problems [ src ] in
      let p = List.hd ps in
      let screen () =
        match Screen.decide p with
        | `Sat -> Screen.Proved
        | `Unsat -> Screen.Disproved
        | `Unknown -> Screen.Unknown
      in
      Ok
        (R_sat
           (portfolio_bool ~label:"calc/sat" ~screen
              ~complete:(fun () -> Elim.satisfiable p)
              ()))
    | Protocol.Implies (src1, src2) -> (
      let ps, _ = parse_problems [ src1; src2 ] in
      match ps with
      | [ p; q ] ->
        let screen () = Screen.implies_problem p q in
        Ok
          (R_implies
             (portfolio_bool ~label:"calc/implies" ~screen
                ~complete:(fun () -> Gist.implies p q)
                ()))
      | _ -> assert false)
    | Protocol.Project { mode; onto; problem } -> (
      let ps, env = parse_problems [ problem ] in
      let p = List.hd ps in
      let vars = lookup_vars env onto in
      let keep v = List.exists (Var.equal v) vars in
      match mode with
      | `Exact ->
        Ok (R_project (List.map Problem.to_string (Elim.project ~keep p)))
      | (`Dark | `Real) as m -> (
        let f =
          match m with
          | `Dark -> Elim.project_dark
          | `Real -> Elim.project_real
        in
        match f ~keep p with
        | `Contra -> Ok (R_project [])
        | `Ok q -> Ok (R_project [ Problem.to_string q ])))
    | Protocol.Gist { problem; given } -> (
      let ps, _ = parse_problems [ problem; given ] in
      match ps with
      | [ p; q ] ->
        Ok
          (R_gist
             (match Gist.gist p ~given:q with
             | Gist.Tautology -> `Tautology
             | Gist.False -> `False
             | Gist.Gist g -> `Gist (Problem.to_string g)))
      | _ -> assert false)
    | Protocol.Optimize { dir; var; problem } ->
      let ps, env = parse_problems [ problem ] in
      let p = List.hd ps in
      let v = List.hd (lookup_vars env [ var ]) in
      let r =
        match dir with
        | `Min -> (
          match Omega.minimize p v with
          | `Min x -> `Val (Zint.to_string x)
          | `Unsat -> `Unsat
          | `Unbounded -> `Unbounded)
        | `Max -> (
          match Omega.maximize p v with
          | `Max x -> `Val (Zint.to_string x)
          | `Unsat -> `Unsat
          | `Unbounded -> `Unbounded)
      in
      Ok (R_opt r)
  with
  | Failure msg -> Error msg
  | Lang.Parser.Error (msg, pos) ->
    Error (Printf.sprintf "parse error at column %d: %s" pos.Lang.Ast.col msg)

let result_json = function
  | R_sat b -> Json.Obj [ ("sat", Json.Bool b) ]
  | R_implies b -> Json.Obj [ ("implies", Json.Bool b) ]
  | R_project pieces ->
    Json.Obj
      [
        ("satisfiable", Json.Bool (pieces <> []));
        ("pieces", Json.List (List.map (fun s -> Json.Str s) pieces));
      ]
  | R_gist `Tautology -> Json.Obj [ ("gist", Json.Str "TRUE") ]
  | R_gist `False -> Json.Obj [ ("gist", Json.Str "FALSE") ]
  | R_gist (`Gist g) -> Json.Obj [ ("gist", Json.Str g) ]
  | R_opt (`Val x) -> Json.Obj [ ("value", Json.Str x) ]
  | R_opt `Unsat -> Json.Obj [ ("value", Json.Str "unsatisfiable") ]
  | R_opt `Unbounded -> Json.Obj [ ("value", Json.Str "unbounded") ]

let result_plain = function
  | R_sat b -> if b then "satisfiable" else "unsatisfiable"
  | R_implies b -> if b then "tautology" else "not a tautology"
  | R_project [] -> "FALSE"
  | R_project pieces ->
    String.concat "\n"
      (List.mapi (fun i q -> (if i > 0 then "union " else "") ^ q) pieces)
  | R_gist `Tautology -> "TRUE (implied by the given)"
  | R_gist `False -> "FALSE (inconsistent with the given)"
  | R_gist (`Gist g) -> g
  | R_opt (`Val x) -> x
  | R_opt `Unsat -> "unsatisfiable"
  | R_opt `Unbounded -> "unbounded"
