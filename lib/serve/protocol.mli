(** The petitd wire protocol: length-prefixed JSON frames.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON.  Requests carry a client-chosen [id] echoed in
    the response, an operation tag, and an optional per-request budget;
    the server clamps budgets to the per-client quota.  Every
    successful response surfaces the shared verdict-cache telemetry
    (both lifetime and this-request counters) and the solver governance
    telemetry of the request. *)

type addr = Unix_path of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["host:port"] parses as TCP, anything else as a Unix-socket path. *)

val addr_to_string : addr -> string

(** {1 Requests} *)

type budget_spec = {
  b_fuel : int option;
  b_splinters : int option;
  b_disjuncts : int option;
  b_deadline_ms : float option;
}

val no_budget : budget_spec

val clamp_budget : budget_spec -> Omega.Budget.limits -> Omega.Budget.limits
(** Effective limits of a request under a per-client quota: each
    requested dimension is honored up to the quota; unspecified
    dimensions take the quota's value.  The result is always
    [Budget.le]-below the quota, so no tenant can out-spend it. *)

type calc_op =
  | Sat of string
  | Implies of string * string
  | Project of {
      mode : [ `Exact | `Dark | `Real ];
      onto : string list;
      problem : string;
    }
  | Gist of { problem : string; given : string }
  | Optimize of { dir : [ `Min | `Max ]; var : string; problem : string }

(** Work-bearing requests carry an optional [deadline_ms]: a wall-clock
    budget for the {e whole request}, counted from the instant the
    server finishes reading the frame.  The server folds the remainder
    into the solver's budget world, so a request admitted late gets a
    correspondingly smaller solver budget, and one whose deadline has
    already passed at admission is refused with a [Gave_up] error
    instead of burning a worker.  [Health] reports the server's overload
    posture (uptime, in-flight, shed/reap counts) next to the service
    stats; it is never queued behind solver work. *)
type request =
  | Analyze of {
      program : string;
      in_bounds : bool;
      budget : budget_spec;
      deadline_ms : float option;
    }
  | Parallelize of {
      program : string;
      in_bounds : bool;
      budget : budget_spec;
      deadline_ms : float option;
    }
  | Omega_calc of {
      op : calc_op;
      budget : budget_spec;
      deadline_ms : float option;
    }
  | Stats
  | Health
  | Shutdown

val encode_request : id:int -> request -> Json.t
val decode_request : Json.t -> (int * request, string) result

(** {1 Responses} *)

(** Verdict-cache telemetry attached to a successful response:
    [mr_req_*] count this request only, the rest are daemon-lifetime. *)
type memo_report = {
  mr_req_hits : int;
  mr_req_misses : int;
  mr_hits : int;
  mr_misses : int;
  mr_size : int;
  mr_capacity : int;
  mr_evictions : int;
}

type error_code =
  | Parse_error  (** program or problem text did not parse *)
  | Semantic_error  (** sema rejected the program *)
  | Bad_request  (** malformed or unknown request JSON *)
  | Frame_too_large
  | Gave_up
      (** budget exhausted outside a query boundary, or the request's
          wall deadline passed before any work could start *)
  | Overloaded
      (** shed by the admission gate (in-flight cap) or the connection
          cap; carries [retry_after_ms] — idempotent, safe to retry
          after backing off *)
  | Server_error

val error_code_to_string : error_code -> string

val memo_json : memo_report -> Json.t
(** The memo block as embedded in responses and the stats payload. *)

type response =
  | Result of {
      id : int;
      payload : Json.t;
      memo : memo_report option;
      governance : Json.t option;
    }
  | Error_ of {
      id : int;
      code : error_code;
      message : string;
      retry_after_ms : float option;
          (** backoff hint attached to [Overloaded] sheds *)
    }

val encode_response : response -> Json.t
val decode_response : Json.t -> (response, string) result

(** {1 Frames}

    Frame I/O optionally runs under an absolute deadline (a
    [Unix.gettimeofday] instant): every read/write is [select]-guarded
    by the remaining time, so a stalled or trickling peer cannot pin the
    caller — the whole frame must move before the deadline.  Reads
    report [Timed_out]; writes raise [Unix.ETIMEDOUT]. *)

val default_max_frame : int
(** 16 MiB. *)

val write_frame : ?deadline:float -> Unix.file_descr -> string -> unit
(** Raises [Unix.Unix_error (ETIMEDOUT, _, _)] if the deadline passes
    with bytes still unwritten. *)

type frame_error =
  | Closed  (** EOF before any byte of the frame *)
  | Truncated  (** EOF inside the length prefix or payload *)
  | Oversized of int
      (** announced length exceeded [max]; the payload has been drained,
          the stream is still in sync and the connection is usable *)
  | Poisoned of int
      (** announced length too absurd to drain; close the connection *)
  | Timed_out
      (** the deadline passed before the frame completed; the stream is
          desynced — close the connection *)

val read_frame :
  ?deadline:float -> max:int -> Unix.file_descr -> (string, frame_error) result
