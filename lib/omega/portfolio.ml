(* Tiered decision portfolio: screen -> fast path -> complete.

   The cascade is a pure dispatch layer: each tier is a sound closure
   returning a [Screen.answer], the first definite answer wins, and the
   whole run sits inside a [Budget] query boundary so resource blowups
   and incomplete-plan give-ups surface as structured verdicts.  The
   per-tier accounting lives in a per-domain record like the other hot
   counters (Budget.Telemetry, Tuning.Stats). *)

type backend = Omega | Screen | Cascade

let backend = ref Cascade

let backend_to_string = function
  | Omega -> "omega"
  | Screen -> "screen"
  | Cascade -> "cascade"

let backend_of_string = function
  | "omega" -> Some Omega
  | "screen" -> Some Screen
  | "cascade" -> Some Cascade
  | _ -> None

type tier = Tier_screen | Tier_fast | Tier_complete

let tier_to_string = function
  | Tier_screen -> "screen"
  | Tier_fast -> "fast"
  | Tier_complete -> "complete"

let tier_of_string = function
  | "screen" -> Some Tier_screen
  | "fast" -> Some Tier_fast
  | "complete" -> Some Tier_complete
  | _ -> None

module Stats = struct
  type row = {
    mutable attempts : int;
    mutable decides : int;
    mutable elapsed : float;
  }

  type t = { quick : row; screen : row; fast : row; complete : row }

  let make_row () = { attempts = 0; decides = 0; elapsed = 0. }

  let make () =
    {
      quick = make_row ();
      screen = make_row ();
      fast = make_row ();
      complete = make_row ();
    }

  let key = Domain.DLS.new_key make
  let current () = Domain.DLS.get key
  let reset () = Domain.DLS.set key (make ())

  let exchange fresh =
    let old = current () in
    Domain.DLS.set key fresh;
    old

  let merge_row dst src =
    dst.attempts <- dst.attempts + src.attempts;
    dst.decides <- dst.decides + src.decides;
    dst.elapsed <- dst.elapsed +. src.elapsed

  let merge_into dst src =
    merge_row dst.quick src.quick;
    merge_row dst.screen src.screen;
    merge_row dst.fast src.fast;
    merge_row dst.complete src.complete

  let row_of t = function
    | Tier_screen -> t.screen
    | Tier_fast -> t.fast
    | Tier_complete -> t.complete

  let summary () =
    let s = current () in
    let tier name r =
      Printf.sprintf "%s %d/%d (%.1fms)" name r.attempts r.decides
        (r.elapsed *. 1000.)
    in
    Printf.sprintf "quick %d/%d, %s, %s, %s" s.quick.attempts s.quick.decides
      (tier "screen" s.screen) (tier "fast" s.fast)
      (tier "complete" s.complete)
end

module Oracle = struct
  type divergence = { label : string; tier : tier; got : bool; want : bool }

  let lock = Mutex.create ()
  let enabled = ref false
  let n_checks = ref 0
  let found : divergence list ref = ref []

  let enable () =
    Mutex.lock lock;
    enabled := true;
    n_checks := 0;
    found := [];
    Mutex.unlock lock

  let disable () =
    Mutex.lock lock;
    enabled := false;
    Mutex.unlock lock

  let active () = !enabled

  let checks () =
    Mutex.lock lock;
    let n = !n_checks in
    Mutex.unlock lock;
    n

  let divergences () =
    Mutex.lock lock;
    let d = List.rev !found in
    Mutex.unlock lock;
    d

  let record label tier got want =
    Mutex.lock lock;
    incr n_checks;
    if got <> want then found := { label; tier; got; want } :: !found;
    Mutex.unlock lock
end

let plan ?screen ?fast ~complete () =
  let maybe tier closure plan =
    match closure with None -> plan | Some f -> (tier, f) :: plan
  in
  let upper = maybe Tier_fast fast [ (Tier_complete, complete) ] in
  match !backend with
  | Omega -> upper
  | Screen -> maybe Tier_screen screen []
  | Cascade ->
      if !Tuning.screen then maybe Tier_screen screen upper else upper

let timed row f =
  row.Stats.attempts <- row.Stats.attempts + 1;
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      row.Stats.elapsed <-
        row.Stats.elapsed +. (Unix.gettimeofday () -. t0))
    f

let decide ?label ?fault_key tiers =
  let decided = ref None in
  let result =
    Budget.run ?label ?fault_key (fun () ->
        let stats = Stats.current () in
        let rec go = function
          | [] -> raise (Budget.Exhausted Budget.Incomplete)
          | (tier, f) :: rest -> (
              let row = Stats.row_of stats tier in
              match timed row f with
              | Screen.Unknown -> go rest
              | answer ->
                  let v = answer = Screen.Proved in
                  row.Stats.decides <- row.Stats.decides + 1;
                  decided := Some tier;
                  (if tier <> Tier_complete && Oracle.active () then
                     match
                       List.find_opt (fun (t, _) -> t = Tier_complete) rest
                     with
                     | Some (_, comp) ->
                         let want =
                           match timed (Stats.row_of stats Tier_complete) comp
                           with
                           | Screen.Proved -> true
                           | Screen.Disproved -> false
                           | Screen.Unknown ->
                               (* the complete tier never passes *)
                               assert false
                         in
                         Oracle.record
                           (match label with Some l -> l | None -> "?")
                           tier v want
                     | None -> ());
                  v)
        in
        go tiers)
  in
  match result with
  | Ok true -> (Budget.Proved, !decided)
  | Ok false -> (Budget.Disproved, !decided)
  | Error r -> (Budget.Gave_up r, None)
