(* Resource governance for the solver stack.

   Every entry into the Omega test (projection, satisfiability, the
   Presburger decision procedure) runs under a *meter* charged against
   the current limits: elimination steps draw fuel, splinter
   constructions and DNF expansion draw their own counters, and an
   optional wall-clock deadline bounds the whole query.  Exhausting any
   limit raises [Exhausted], which the query boundary ([run] / [decide])
   turns into a structured [Gave_up] verdict - never an escaping
   exception.

   Clients map [Gave_up] to the sound conservative answer for their
   question (a dependence is assumed live, a kill/cover/refinement is
   not proved, a doall is illegal).  Because the solver is deterministic
   and limits only truncate its work, a query that *completes* under a
   tight budget returns the same verdict under any looser budget with no
   deadline: tightening budgets can only turn [Proved]/[Disproved] into
   [Gave_up], never flip them.

   Fault injection ([set_fault_injection]) deterministically forces a
   seeded fraction of query boundaries to [Gave_up Injected] before any
   work happens, which lets a differential harness check that the
   conservative mappings above are actually wired in everywhere.  The
   fault decision for a query is a pure function of (seed, query key):
   there is no mutable stream state, so the same query faults the same
   way no matter which domain runs it or in what order — the property
   the parallel-fault soundness tests lean on.  Queries that supply no
   [fault_key] never fault.

   All of this state — limits, the active meter, telemetry — lives in a
   per-domain *world* (Domain.DLS), so any domain can run queries
   without a lock.  Nested entries within one domain (e.g.
   [Gist.implies] calling [Elim.project]) share the outermost query's
   meter exactly as before.  Telemetry merges across domains with the
   commutative [Telemetry.merge_into] at query-set boundaries (see
   Depend.Par); the fault-injection configuration is an immutable
   process-wide setting read by every domain (publish it before
   spawning parallel work). *)

type reason = Fuel | Splinters | Disjuncts | Deadline | Injected | Incomplete

let reason_to_string = function
  | Fuel -> "fuel"
  | Splinters -> "splinters"
  | Disjuncts -> "disjuncts"
  | Deadline -> "deadline"
  | Injected -> "injected"
  | Incomplete -> "incomplete"

type verdict = Proved | Disproved | Gave_up of reason

let verdict_to_string = function
  | Proved -> "proved"
  | Disproved -> "disproved"
  | Gave_up r -> "gave up (" ^ reason_to_string r ^ ")"

exception Exhausted of reason

(* ------------------------------------------------------------------ *)
(* Limits                                                              *)
(* ------------------------------------------------------------------ *)

type limits = {
  fuel : int;
  splinters : int;
  disjuncts : int;
  deadline_ms : float option;
}

let default =
  { fuel = 100_000; splinters = 100_000; disjuncts = 2048; deadline_ms = None }

(* [le a b]: budget [a] is no larger than [b] in every dimension (a
   query that gives up under [b] would also give up under [a]).  A
   finite deadline is tighter than none. *)
let le a b =
  a.fuel <= b.fuel && a.splinters <= b.splinters && a.disjuncts <= b.disjuncts
  &&
  match (a.deadline_ms, b.deadline_ms) with
  | _, None -> true
  | None, Some _ -> false
  | Some x, Some y -> x <= y

(* ------------------------------------------------------------------ *)
(* The meter                                                           *)
(* ------------------------------------------------------------------ *)

type meter = {
  m_limits : limits;
  mutable m_fuel : int;
  mutable m_splinters : int;
  m_deadline : float option; (* absolute, seconds *)
}

(* The earlier of two optional absolute deadlines. *)
let min_deadline a b =
  match (a, b) with
  | None, d | d, None -> d
  | Some x, Some y -> Some (Float.min x y)

(* [wall] is the ambient absolute request deadline (if any): the meter
   enforces whichever of the per-query deadline and the wall deadline
   comes first, so a query started late inside a deadlined request gets
   a correspondingly smaller time budget. *)
let make_meter ?wall l =
  {
    m_limits = l;
    m_fuel = 0;
    m_splinters = 0;
    m_deadline =
      min_deadline wall
        (Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.)) l.deadline_ms);
  }

let check_deadline m =
  match m.m_deadline with
  | Some t when Unix.gettimeofday () > t -> raise (Exhausted Deadline)
  | _ -> ()

let tick m =
  m.m_fuel <- m.m_fuel + 1;
  if m.m_fuel > m.m_limits.fuel then raise (Exhausted Fuel);
  (* the clock is off the per-step hot path *)
  if m.m_fuel land 255 = 0 then check_deadline m

let add_splinters m n =
  m.m_splinters <- m.m_splinters + n;
  if m.m_splinters > m.m_limits.splinters then raise (Exhausted Splinters)

(* ------------------------------------------------------------------ *)
(* Telemetry records                                                   *)
(* ------------------------------------------------------------------ *)

module Telemetry0 = struct
  type t = {
    mutable queries : int;
    mutable gave_up_fuel : int;
    mutable gave_up_splinters : int;
    mutable gave_up_disjuncts : int;
    mutable gave_up_deadline : int;
    mutable gave_up_injected : int;
    mutable gave_up_incomplete : int;
    mutable peak_fuel : int;
    mutable peak_splinters : int;
    mutable worst_label : string;
    mutable worst_fuel : int;
  }

  let make () =
    {
      queries = 0;
      gave_up_fuel = 0;
      gave_up_splinters = 0;
      gave_up_disjuncts = 0;
      gave_up_deadline = 0;
      gave_up_injected = 0;
      gave_up_incomplete = 0;
      peak_fuel = 0;
      peak_splinters = 0;
      worst_label = "";
      worst_fuel = 0;
    }

  (* The worst-query cell is a commutative, associative join — (higher
     fuel, then lexicographically-least label) with ("", 0) as identity
     — so folding per-domain records in any order gives one answer, and
     the serial accumulation below agrees with any parallel merge. *)
  let note_worst t ~fuel ~label =
    if fuel > t.worst_fuel then begin
      t.worst_fuel <- fuel;
      t.worst_label <- label
    end
    else if fuel = t.worst_fuel && fuel > 0 && label < t.worst_label then
      t.worst_label <- label

  let merge_into dst src =
    dst.queries <- dst.queries + src.queries;
    dst.gave_up_fuel <- dst.gave_up_fuel + src.gave_up_fuel;
    dst.gave_up_splinters <- dst.gave_up_splinters + src.gave_up_splinters;
    dst.gave_up_disjuncts <- dst.gave_up_disjuncts + src.gave_up_disjuncts;
    dst.gave_up_deadline <- dst.gave_up_deadline + src.gave_up_deadline;
    dst.gave_up_injected <- dst.gave_up_injected + src.gave_up_injected;
    dst.gave_up_incomplete <- dst.gave_up_incomplete + src.gave_up_incomplete;
    dst.peak_fuel <- max dst.peak_fuel src.peak_fuel;
    dst.peak_splinters <- max dst.peak_splinters src.peak_splinters;
    note_worst dst ~fuel:src.worst_fuel ~label:src.worst_label
end

(* ------------------------------------------------------------------ *)
(* The per-domain world                                                *)
(* ------------------------------------------------------------------ *)

type world = {
  mutable w_limits : limits;
  mutable w_active : meter option;
  mutable w_stats : Telemetry0.t;
  mutable w_wall_deadline : float option;
      (* absolute request-level deadline, folded into every meter *)
}

let world_key =
  Domain.DLS.new_key (fun () ->
      {
        w_limits = default;
        w_active = None;
        w_stats = Telemetry0.make ();
        w_wall_deadline = None;
      })

let world () = Domain.DLS.get world_key

let current_limits () = (world ()).w_limits

let with_limits l f =
  let w = world () in
  let saved = w.w_limits in
  w.w_limits <- l;
  Fun.protect ~finally:(fun () -> w.w_limits <- saved) f

let with_wall_deadline d f =
  let w = world () in
  let saved = w.w_wall_deadline in
  w.w_wall_deadline <- d;
  Fun.protect ~finally:(fun () -> w.w_wall_deadline <- saved) f

let wall_deadline () = (world ()).w_wall_deadline

let wall_expired () =
  match (world ()).w_wall_deadline with
  | Some d -> Unix.gettimeofday () >= d
  | None -> false

let disjunct_limit () =
  let w = world () in
  match w.w_active with
  | Some m -> m.m_limits.disjuncts
  | None -> w.w_limits.disjuncts

(* Solver entry points call this: reuse the ambient meter when already
   inside a query, otherwise install a fresh one for the duration. *)
let with_meter f =
  let w = world () in
  match w.w_active with
  | Some m -> f m
  | None ->
    let m = make_meter ?wall:w.w_wall_deadline w.w_limits in
    w.w_active <- Some m;
    Fun.protect ~finally:(fun () -> w.w_active <- None) (fun () -> f m)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

type fault = { f_seed : int; f_rate : float }

(* Immutable once set; read (not written) by worker domains.  The
   happens-before edge is the task-queue mutex of the pool that ships
   work to them, so configure faults before fanning out. *)
let fault_cfg : fault option ref = ref None

let set_fault_injection ~seed ~rate =
  if rate <= 0. then fault_cfg := None
  else fault_cfg := Some { f_seed = seed; f_rate = rate }

let clear_fault_injection () = fault_cfg := None
let fault_injection_active () = !fault_cfg <> None

(* FNV-1a over the key, mixed with the seed, finished with the
   splitmix64 finalizer: a pure, well-spread hash of (seed, key). *)
let fnv64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

let keyed_fault f key =
  let z =
    Int64.add (fnv64 key)
      (Int64.mul (Int64.of_int (f.f_seed + 1)) 0x9E3779B97F4A7C15L)
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let u = Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992. in
  u < f.f_rate

let draw_fault fault_key =
  match !fault_cfg with
  | None -> false
  | Some f -> ( match fault_key with None -> false | Some k -> keyed_fault f (k ()))

(* ------------------------------------------------------------------ *)
(* Telemetry (of the current world)                                    *)
(* ------------------------------------------------------------------ *)

module Telemetry = struct
  include Telemetry0

  let current () = (world ()).w_stats
  let reset () = (world ()).w_stats <- make ()

  (* Swap in a fresh record and return the previous one: the scoping
     primitive Depend.Par uses to give each parallel task its own
     telemetry before merging it back. *)
  let exchange fresh =
    let w = world () in
    let old = w.w_stats in
    w.w_stats <- fresh;
    old

  let record_gave_up t = function
    | Fuel -> t.gave_up_fuel <- t.gave_up_fuel + 1
    | Splinters -> t.gave_up_splinters <- t.gave_up_splinters + 1
    | Disjuncts -> t.gave_up_disjuncts <- t.gave_up_disjuncts + 1
    | Deadline -> t.gave_up_deadline <- t.gave_up_deadline + 1
    | Injected -> t.gave_up_injected <- t.gave_up_injected + 1
    | Incomplete -> t.gave_up_incomplete <- t.gave_up_incomplete + 1

  let total_of t =
    t.gave_up_fuel + t.gave_up_splinters + t.gave_up_disjuncts
    + t.gave_up_deadline + t.gave_up_injected + t.gave_up_incomplete

  let gave_up_total () = total_of (current ())

  let summary () =
    let stats = current () in
    Printf.sprintf
      "%d solver queries, %d gave up (fuel %d, splinters %d, disjuncts %d, \
       deadline %d, injected %d, incomplete %d); peak fuel %d, peak \
       splinters %d%s"
      stats.queries (total_of stats) stats.gave_up_fuel stats.gave_up_splinters
      stats.gave_up_disjuncts stats.gave_up_deadline stats.gave_up_injected
      stats.gave_up_incomplete stats.peak_fuel stats.peak_splinters
      (if stats.worst_label = "" then ""
       else
         Printf.sprintf "; worst query %s (fuel %d)" stats.worst_label
           stats.worst_fuel)

  let to_json () =
    let stats = current () in
    Printf.sprintf
      "{ \"queries\": %d, \"gave_up\": { \"fuel\": %d, \"splinters\": %d, \
       \"disjuncts\": %d, \"deadline\": %d, \"injected\": %d, \
       \"incomplete\": %d }, \"peak_fuel\": %d, \"peak_splinters\": %d, \
       \"worst_query\": \"%s\", \"worst_fuel\": %d }"
      stats.queries stats.gave_up_fuel stats.gave_up_splinters
      stats.gave_up_disjuncts stats.gave_up_deadline stats.gave_up_injected
      stats.gave_up_incomplete stats.peak_fuel stats.peak_splinters
      (String.escaped stats.worst_label) stats.worst_fuel
end

(* ------------------------------------------------------------------ *)
(* Scoped worlds (parallel tasks)                                      *)
(* ------------------------------------------------------------------ *)

let scoped ~limits f =
  let w = world () in
  let saved_limits = w.w_limits and saved_active = w.w_active in
  let saved_stats = Telemetry.exchange (Telemetry0.make ()) in
  w.w_limits <- limits;
  w.w_active <- None;
  let restore () =
    let mine = w.w_stats in
    w.w_limits <- saved_limits;
    w.w_active <- saved_active;
    w.w_stats <- saved_stats;
    mine
  in
  match f () with
  | v -> (v, restore ())
  | exception e ->
    ignore (restore ());
    raise e

(* ------------------------------------------------------------------ *)
(* Query boundaries                                                    *)
(* ------------------------------------------------------------------ *)

let run ?(label = "query") ?fault_key (f : unit -> 'a) : ('a, reason) result =
  let w = world () in
  match w.w_active with
  (* nested boundary inside an already-metered query: share the meter,
     just structure the outcome *)
  | Some _ -> ( try Ok (f ()) with Exhausted r -> Error r)
  | None ->
    let t = w.w_stats in
    t.Telemetry0.queries <- t.Telemetry0.queries + 1;
    if draw_fault fault_key then begin
      Telemetry.record_gave_up t Injected;
      Error Injected
    end
    else begin
      let m = make_meter ?wall:w.w_wall_deadline w.w_limits in
      w.w_active <- Some m;
      let finish () =
        w.w_active <- None;
        if m.m_fuel > t.Telemetry0.peak_fuel then
          t.Telemetry0.peak_fuel <- m.m_fuel;
        if m.m_splinters > t.Telemetry0.peak_splinters then
          t.Telemetry0.peak_splinters <- m.m_splinters;
        Telemetry0.note_worst t ~fuel:m.m_fuel ~label
      in
      match f () with
      | v ->
        finish ();
        Ok v
      | exception Exhausted r ->
        finish ();
        Telemetry.record_gave_up t r;
        Error r
      | exception e ->
        finish ();
        raise e
    end

let decide ?label ?fault_key (f : unit -> bool) : verdict =
  match run ?label ?fault_key f with
  | Ok true -> Proved
  | Ok false -> Disproved
  | Error r -> Gave_up r
