(* Resource governance for the solver stack.

   Every entry into the Omega test (projection, satisfiability, the
   Presburger decision procedure) runs under a *meter* charged against
   the ambient [limits]: elimination steps draw fuel, splinter
   constructions and DNF expansion draw their own counters, and an
   optional wall-clock deadline bounds the whole query.  Exhausting any
   limit raises [Exhausted], which the query boundary ([run] / [decide])
   turns into a structured [Gave_up] verdict - never an escaping
   exception.

   Clients map [Gave_up] to the sound conservative answer for their
   question (a dependence is assumed live, a kill/cover/refinement is
   not proved, a doall is illegal).  Because the solver is deterministic
   and limits only truncate its work, a query that *completes* under a
   tight budget returns the same verdict under any looser budget with no
   deadline: tightening budgets can only turn [Proved]/[Disproved] into
   [Gave_up], never flip them.

   Fault injection ([set_fault_injection]) deterministically forces a
   seeded fraction of query boundaries to [Gave_up Injected] before any
   work happens, which lets a differential harness check that the
   conservative mappings above are actually wired in everywhere.

   The meter is ambient, dynamically-scoped state: the solver stack is
   single-domain, and nested entries (e.g. [Gist.implies] calling
   [Elim.project]) share the outermost query's meter. *)

type reason = Fuel | Splinters | Disjuncts | Deadline | Injected

let reason_to_string = function
  | Fuel -> "fuel"
  | Splinters -> "splinters"
  | Disjuncts -> "disjuncts"
  | Deadline -> "deadline"
  | Injected -> "injected"

type verdict = Proved | Disproved | Gave_up of reason

let verdict_to_string = function
  | Proved -> "proved"
  | Disproved -> "disproved"
  | Gave_up r -> "gave up (" ^ reason_to_string r ^ ")"

exception Exhausted of reason

(* ------------------------------------------------------------------ *)
(* Limits                                                              *)
(* ------------------------------------------------------------------ *)

type limits = {
  fuel : int;
  splinters : int;
  disjuncts : int;
  deadline_ms : float option;
}

let default =
  { fuel = 100_000; splinters = 100_000; disjuncts = 2048; deadline_ms = None }

let limits = ref default

(* [le a b]: budget [a] is no larger than [b] in every dimension (a
   query that gives up under [b] would also give up under [a]).  A
   finite deadline is tighter than none. *)
let le a b =
  a.fuel <= b.fuel && a.splinters <= b.splinters && a.disjuncts <= b.disjuncts
  &&
  match (a.deadline_ms, b.deadline_ms) with
  | _, None -> true
  | None, Some _ -> false
  | Some x, Some y -> x <= y

let with_limits l f =
  let saved = !limits in
  limits := l;
  Fun.protect ~finally:(fun () -> limits := saved) f

(* ------------------------------------------------------------------ *)
(* The meter                                                           *)
(* ------------------------------------------------------------------ *)

type meter = {
  m_limits : limits;
  mutable m_fuel : int;
  mutable m_splinters : int;
  m_deadline : float option; (* absolute, seconds *)
}

let active : meter option ref = ref None

let make_meter l =
  {
    m_limits = l;
    m_fuel = 0;
    m_splinters = 0;
    m_deadline =
      Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.)) l.deadline_ms;
  }

let check_deadline m =
  match m.m_deadline with
  | Some t when Unix.gettimeofday () > t -> raise (Exhausted Deadline)
  | _ -> ()

let tick m =
  m.m_fuel <- m.m_fuel + 1;
  if m.m_fuel > m.m_limits.fuel then raise (Exhausted Fuel);
  (* the clock is off the per-step hot path *)
  if m.m_fuel land 255 = 0 then check_deadline m

let add_splinters m n =
  m.m_splinters <- m.m_splinters + n;
  if m.m_splinters > m.m_limits.splinters then raise (Exhausted Splinters)

let disjunct_limit () =
  match !active with Some m -> m.m_limits.disjuncts | None -> !limits.disjuncts

(* Solver entry points call this: reuse the ambient meter when already
   inside a query, otherwise install a fresh one for the duration. *)
let with_meter f =
  match !active with
  | Some m -> f m
  | None ->
    let m = make_meter !limits in
    active := Some m;
    Fun.protect ~finally:(fun () -> active := None) (fun () -> f m)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

(* splitmix64: tiny, deterministic, and good enough to spread faults
   over the query stream. *)
type fault = { rate : float; mutable state : int64 }

let fault_state : fault option ref = ref None

let set_fault_injection ~seed ~rate =
  if rate <= 0. then fault_state := None
  else
    fault_state :=
      Some { rate; state = Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L }

let clear_fault_injection () = fault_state := None
let fault_injection_active () = !fault_state <> None

let draw_fault () =
  match !fault_state with
  | None -> false
  | Some f ->
    f.state <- Int64.add f.state 0x9E3779B97F4A7C15L;
    let z = f.state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let u =
      Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.
    in
    u < f.rate

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

module Telemetry = struct
  type t = {
    mutable queries : int;
    mutable gave_up_fuel : int;
    mutable gave_up_splinters : int;
    mutable gave_up_disjuncts : int;
    mutable gave_up_deadline : int;
    mutable gave_up_injected : int;
    mutable peak_fuel : int;
    mutable peak_splinters : int;
    mutable worst_label : string;
    mutable worst_fuel : int;
  }

  let stats =
    {
      queries = 0;
      gave_up_fuel = 0;
      gave_up_splinters = 0;
      gave_up_disjuncts = 0;
      gave_up_deadline = 0;
      gave_up_injected = 0;
      peak_fuel = 0;
      peak_splinters = 0;
      worst_label = "";
      worst_fuel = 0;
    }

  let reset () =
    stats.queries <- 0;
    stats.gave_up_fuel <- 0;
    stats.gave_up_splinters <- 0;
    stats.gave_up_disjuncts <- 0;
    stats.gave_up_deadline <- 0;
    stats.gave_up_injected <- 0;
    stats.peak_fuel <- 0;
    stats.peak_splinters <- 0;
    stats.worst_label <- "";
    stats.worst_fuel <- 0

  let record_gave_up = function
    | Fuel -> stats.gave_up_fuel <- stats.gave_up_fuel + 1
    | Splinters -> stats.gave_up_splinters <- stats.gave_up_splinters + 1
    | Disjuncts -> stats.gave_up_disjuncts <- stats.gave_up_disjuncts + 1
    | Deadline -> stats.gave_up_deadline <- stats.gave_up_deadline + 1
    | Injected -> stats.gave_up_injected <- stats.gave_up_injected + 1

  let gave_up_total () =
    stats.gave_up_fuel + stats.gave_up_splinters + stats.gave_up_disjuncts
    + stats.gave_up_deadline + stats.gave_up_injected

  let summary () =
    Printf.sprintf
      "%d solver queries, %d gave up (fuel %d, splinters %d, disjuncts %d, \
       deadline %d, injected %d); peak fuel %d, peak splinters %d%s"
      stats.queries (gave_up_total ()) stats.gave_up_fuel stats.gave_up_splinters
      stats.gave_up_disjuncts stats.gave_up_deadline stats.gave_up_injected
      stats.peak_fuel stats.peak_splinters
      (if stats.worst_label = "" then ""
       else
         Printf.sprintf "; worst query %s (fuel %d)" stats.worst_label
           stats.worst_fuel)

  let to_json () =
    Printf.sprintf
      "{ \"queries\": %d, \"gave_up\": { \"fuel\": %d, \"splinters\": %d, \
       \"disjuncts\": %d, \"deadline\": %d, \"injected\": %d }, \
       \"peak_fuel\": %d, \"peak_splinters\": %d, \"worst_query\": \"%s\", \
       \"worst_fuel\": %d }"
      stats.queries stats.gave_up_fuel stats.gave_up_splinters
      stats.gave_up_disjuncts stats.gave_up_deadline stats.gave_up_injected
      stats.peak_fuel stats.peak_splinters (String.escaped stats.worst_label)
      stats.worst_fuel
end

(* ------------------------------------------------------------------ *)
(* Query boundaries                                                    *)
(* ------------------------------------------------------------------ *)

let run ?(label = "query") (f : unit -> 'a) : ('a, reason) result =
  match !active with
  (* nested boundary inside an already-metered query: share the meter,
     just structure the outcome *)
  | Some _ -> ( try Ok (f ()) with Exhausted r -> Error r)
  | None ->
    let t = Telemetry.stats in
    t.Telemetry.queries <- t.Telemetry.queries + 1;
    if draw_fault () then begin
      Telemetry.record_gave_up Injected;
      Error Injected
    end
    else begin
      let m = make_meter !limits in
      active := Some m;
      let finish () =
        active := None;
        if m.m_fuel > t.Telemetry.peak_fuel then
          t.Telemetry.peak_fuel <- m.m_fuel;
        if m.m_splinters > t.Telemetry.peak_splinters then
          t.Telemetry.peak_splinters <- m.m_splinters;
        if m.m_fuel > t.Telemetry.worst_fuel then begin
          t.Telemetry.worst_fuel <- m.m_fuel;
          t.Telemetry.worst_label <- label
        end
      in
      match f () with
      | v ->
        finish ();
        Ok v
      | exception Exhausted r ->
        finish ();
        Telemetry.record_gave_up r;
        Error r
      | exception e ->
        finish ();
        raise e
    end

let decide ?label (f : unit -> bool) : verdict =
  match run ?label f with
  | Ok true -> Proved
  | Ok false -> Disproved
  | Error r -> Gave_up r
