(* The Omega test engine: exact elimination of variables from conjunctions
   of linear constraints.

   Two phases per problem:

   1. Equality elimination.  Equalities involving eliminable variables are
      removed exactly: a variable with a unit coefficient is substituted
      away; otherwise Pugh's "mod-hat" step introduces a fresh wildcard and
      shrinks the equality's coefficients until a unit coefficient appears.
      Equalities whose eliminable variables occur nowhere else collapse into
      congruences (a single wildcard with coefficient >= 2) or disappear.

   2. Fourier-Motzkin elimination of the remaining eliminable variables,
      which by then occur only in inequalities.  Each pair of a lower and an
      upper bound combines into a *real shadow* constraint; the *dark
      shadow* tightens it by (a-1)(b-1), guaranteeing an integer witness.
      When the two differ, the exact projection is the dark shadow together
      with finitely many *splinters* (copies of the problem with the
      variable pinned near a lower bound), per [Pug91]. *)

type keep = Var.t -> bool

exception Contradiction

(* ------------------------------------------------------------------ *)
(* Equality elimination                                                *)
(* ------------------------------------------------------------------ *)

(* Solve an equality for a variable [v] with coefficient +-1: returns the
   defining expression for [v]. *)
let solve_for v (e : Linexpr.t) =
  let c = Linexpr.coeff e v in
  assert (Zint.is_one (Zint.abs c));
  let rest = Linexpr.set_coeff e v Zint.zero in
  if Zint.is_one c then Linexpr.neg rest else rest

(* An equality is an inert congruence when its only eliminable variable is
   a wildcard with |coeff| >= 2 occurring nowhere else in the problem. *)
let eliminable_vars ~(keep : keep) e =
  Var.Set.filter (fun v -> Var.is_wild v || not (keep v)) (Linexpr.vars e)

let occurrences_excluding p c v =
  List.fold_left
    (fun n c' -> if c' != c && Constr.mentions c' v then n + 1 else n)
    0 (Problem.constraints p)

let is_inert ~keep p (c : Constr.t) =
  Constr.kind c = Constr.Eq
  &&
  let e = Constr.expr c in
  match Var.Set.elements (eliminable_vars ~keep e) with
  | [ v ] ->
    Var.is_wild v
    && Zint.(Zint.abs (Linexpr.coeff e v) >= Zint.two)
    && occurrences_excluding p c v = 0
  | _ -> false

(* mod-hat reduction step on equality [c]: used when the equality entangles
   at least two eliminable variables, none with a unit coefficient.
   Introduces a fresh wildcard [sigma] via Pugh's symmetric-residue
   equation; the target variable [k] (the eliminable variable with the
   smallest coefficient) has a unit coefficient there, so it can be
   substituted away globally.  Repetition shrinks the eliminable
   coefficients, guaranteeing termination [Pug91]. *)
let mod_hat_step ~keep p (c : Constr.t) =
  let e = Constr.expr c in
  let eliminable v = Var.is_wild v || not (keep v) in
  (* k = eliminable variable with the smallest |coefficient| *)
  let k, ak =
    Linexpr.fold_terms
      (fun v cv acc ->
        if not (eliminable v) then acc
        else
          match acc with
          | Some (_, best) when Zint.(Zint.abs best <= Zint.abs cv) -> acc
          | _ -> Some (v, cv))
      e None
    |> Option.get
  in
  let m = Zint.succ (Zint.abs ak) in
  let sigma = Var.fresh_wild () in
  (* star: sum_i mod_hat(a_i, m) x_i + mod_hat(const, m) - m sigma = 0;
     the coefficient of k in star is -sign(ak), a unit. *)
  let star_expr =
    let base = Linexpr.map_coeffs (fun a -> Zint.mod_hat a m) e in
    Linexpr.add_term base (Zint.neg m) sigma
  in
  let def = solve_for k star_expr in
  Problem.subst_colored k def (Constr.color c) p

(* Scale-out step: equality [c] reads [m*v + r = 0] where [v] is its only
   eliminable variable (with [r] over kept variables and the constant).
   Any other constraint [a*v + s >= 0] can be multiplied by |m| > 0 (exact
   for inequalities and equalities alike) and [m*v] replaced by [-r],
   eliminating [v] from it without touching integrality.  Afterwards [v] is
   local to [c], which then collapses to a congruence. *)
let scale_out_step p (c : Constr.t) v =
  let e = Constr.expr c in
  let m = Linexpr.coeff e v in
  let r = Linexpr.set_coeff e v Zint.zero in
  let am = Zint.abs m in
  let sm = Zint.of_int (Zint.sign m) in
  Problem.map_constraints
    (fun c' ->
      if c' == c || not (Constr.mentions c' v) then c'
      else begin
        let e' = Constr.expr c' in
        let a = Linexpr.coeff e' v in
        let s = Linexpr.set_coeff e' v Zint.zero in
        let expr =
          Linexpr.add (Linexpr.scale am s)
            (Linexpr.scale (Zint.neg (Zint.mul a sm)) r)
        in
        Constr.make
          ~color:(Constr.combine_colors (Constr.color c) (Constr.color c'))
          (Constr.kind c') expr
      end)
    p

(* One pass of the equality phase; raises [Contradiction].  Returns
   [`Progress p] when a step was taken, [`Done p] when every equality is
   either purely over kept variables or an inert congruence. *)
let eq_step ~keep (p : Problem.t) =
  let cs = Problem.constraints p in
  let rec find = function
    | [] -> `Done p
    | c :: rest when Constr.kind c <> Constr.Eq -> find rest
    | c :: rest ->
      let e = Constr.expr c in
      let elims = eliminable_vars ~keep e in
      if Var.Set.is_empty elims then find rest
      else if is_inert ~keep p c then find rest
      else begin
        (* 1: substitute through a unit-coefficient eliminable variable *)
        let unit_var =
          let candidates =
            Var.Set.filter
              (fun v -> Zint.is_one (Zint.abs (Linexpr.coeff e v)))
              elims
          in
          (* prefer wildcards to keep problems small *)
          match Var.Set.elements (Var.Set.filter Var.is_wild candidates) with
          | v :: _ -> Some v
          | [] -> (
            match Var.Set.elements candidates with
            | v :: _ -> Some v
            | [] -> None)
        in
        match unit_var with
        | Some v ->
          let def = solve_for v e in
          let p' =
            Problem.filter (fun c' -> c' != c) p
            |> Problem.subst_colored v def (Constr.color c)
          in
          `Progress p'
        | None ->
          (* 2: all eliminable vars occur only in this equality: collapse
             them into a congruence (or drop / refute) *)
          let all_local =
            Var.Set.for_all (fun v -> occurrences_excluding p c v = 0) elims
          in
          if all_local then begin
            let g =
              Var.Set.fold
                (fun v acc -> Zint.gcd acc (Linexpr.coeff e v))
                elims Zint.zero
            in
            let kept_part =
              Var.Set.fold (fun v e -> Linexpr.set_coeff e v Zint.zero) elims e
            in
            let p_rest = Problem.filter (fun c' -> c' != c) p in
            if Zint.is_one g then `Progress p_rest
            else if Linexpr.is_const kept_part then
              if Zint.divisible (Linexpr.constant kept_part) g then
                `Progress p_rest
              else raise Contradiction
            else begin
              (* kept_part + g * sigma = 0 for a fresh wildcard sigma *)
              let sigma = Var.fresh_wild () in
              let cong = Linexpr.add_term kept_part g sigma in
              `Progress
                (Problem.add (Constr.eq ~color:(Constr.color c) cong) p_rest)
            end
          end
          else if Var.Set.cardinal elims = 1 then
            (* 3: a single eliminable variable entangled with other
               constraints: scale it out of them, making it local *)
            `Progress (scale_out_step p c (Var.Set.choose elims))
          else
            (* 4: several entangled eliminable variables: mod-hat *)
            `Progress (mod_hat_step ~keep p c)
      end
  in
  find cs

(* Run simplification and the equality phase to a fixed point, charging
   the meter one tick per step. *)
let rec eq_phase ~keep m (p : Problem.t) : Problem.t =
  Budget.tick m;
  match Problem.simplify p with
  | Problem.Contra -> raise Contradiction
  | Problem.Ok p -> (
    match eq_step ~keep p with
    | `Done p -> p
    | `Progress p -> eq_phase ~keep m p)

(* ------------------------------------------------------------------ *)
(* Fourier-Motzkin elimination of one variable from the inequalities   *)
(* ------------------------------------------------------------------ *)

type fm_result =
  | Eliminated of Problem.t (* exact *)
  | Split of {
      dark : Problem.t;
      real : Problem.t;
      splinters : Problem.t list; (* each still contains the variable, with
                                     an added equality pinning it *)
    }

(* Split the constraints of [p] around variable [v].
   Lower bounds: cl*v + rl >= 0 with cl > 0.
   Upper bounds: -cu*v + ru >= 0 with cu > 0 (stored as (cu, ru)). *)
let bounds_on p v =
  List.fold_left
    (fun (lows, ups, others) c ->
      if Constr.kind c = Constr.Eq || not (Constr.mentions c v) then
        (lows, ups, c :: others)
      else begin
        let e = Constr.expr c in
        let cv = Linexpr.coeff e v in
        let rest = Linexpr.set_coeff e v Zint.zero in
        if Zint.sign cv > 0 then ((cv, rest, c) :: lows, ups, others)
        else ((lows, (Zint.neg cv, rest, c) :: ups, others))
      end)
    ([], [], []) (Problem.constraints p)

(* Exactness of eliminating v: every lower/upper pair must have a unit
   coefficient on at least one side. *)
let fm_exact lows ups =
  List.for_all (fun (cl, _, _) -> Zint.is_one cl) lows
  || List.for_all (fun (cu, _, _) -> Zint.is_one cu) ups

(* Number of splinter problems an inexact elimination would create (used
   by the pre-ordering scoring, kept as the [Tuning.order] ablation
   baseline). *)
let splinter_count lows ups =
  let amax =
    List.fold_left (fun acc (cu, _, _) -> Zint.max acc cu) Zint.one ups
  in
  List.fold_left
    (fun acc (cl, _, _) ->
      (* floor((amax*cl - amax - cl) / amax) + 1 splinters for this bound *)
      let kmax =
        Zint.fdiv (Zint.sub (Zint.mul amax cl) (Zint.add amax cl)) amax
      in
      if Zint.sign kmax < 0 then acc else acc + Zint.to_int kmax + 1)
    0 lows

let fm_combine ~dark lows ups others =
  let combos =
    List.concat_map
      (fun (cl, rl, lc) ->
        List.map
          (fun (cu, ru, uc) ->
            (* cl*v >= -rl and cu*v <= ru:
               real: cl*ru + cu*rl >= 0
               dark: cl*ru + cu*rl - (cl-1)(cu-1) >= 0 *)
            let e =
              Linexpr.add (Linexpr.scale cl ru) (Linexpr.scale cu rl)
            in
            let e =
              if dark then
                Linexpr.add_const e
                  (Zint.neg (Zint.mul (Zint.pred cl) (Zint.pred cu)))
              else e
            in
            Constr.geq
              ~color:(Constr.combine_colors (Constr.color lc) (Constr.color uc))
              e)
          ups)
      lows
  in
  Problem.of_list (combos @ others)

(* Pugh's splinter construction: an integer solution outside the dark
   shadow must satisfy [cl*v + rl = k] for some lower bound and some
   [0 <= k <= (amax*cl - amax - cl) / amax], where [amax] is the largest
   upper-bound coefficient of [v]. *)
let make_splinters v p lows ups =
  let amax =
    List.fold_left (fun acc (cu, _, _) -> Zint.max acc cu) Zint.one ups
  in
  List.concat_map
    (fun (cl, rl, _) ->
      let kmax =
        Zint.fdiv (Zint.sub (Zint.mul amax cl) (Zint.add amax cl)) amax
      in
      let rec go k acc =
        if Zint.(k > kmax) then List.rev acc
        else begin
          (* pin cl*v + rl - k = 0 *)
          let pin_expr =
            Linexpr.add_term (Linexpr.add_const rl (Zint.neg k)) cl v
          in
          go (Zint.succ k) (Problem.add (Constr.eq pin_expr) p :: acc)
        end
      in
      go Zint.zero [])
    lows

let fm_eliminate p v : fm_result =
  let s = Tuning.Stats.current () in
  s.Tuning.Stats.fm_eliminations <- s.Tuning.Stats.fm_eliminations + 1;
  let lows, ups, others = bounds_on p v in
  match lows, ups with
  | [], _ | _, [] ->
    s.Tuning.Stats.fm_exact <- s.Tuning.Stats.fm_exact + 1;
    Eliminated (Problem.of_list others)
  | _ ->
    (* the cross product multiplies the inequality count only when both
       sides have several bounds; flag those results so [simplify] runs
       the interval screen on them *)
    let grown p =
      (match lows, ups with
      | _ :: _ :: _, _ :: _ :: _ -> Problem.mark_grown p
      | _ -> ());
      p
    in
    if fm_exact lows ups then begin
      s.Tuning.Stats.fm_exact <- s.Tuning.Stats.fm_exact + 1;
      Eliminated (grown (fm_combine ~dark:true lows ups others))
    end
    else begin
      s.Tuning.Stats.fm_split <- s.Tuning.Stats.fm_split + 1;
      let dark = grown (fm_combine ~dark:true lows ups others) in
      let real = grown (fm_combine ~dark:false lows ups others) in
      Split { dark; real; splinters = make_splinters v p lows ups }
    end

(* ------------------------------------------------------------------ *)
(* Variable choice                                                     *)
(* ------------------------------------------------------------------ *)

(* Per-candidate tallies for Pugh's elimination-ordering heuristic,
   gathered in ONE pass over the constraints (the previous version
   rescanned the whole constraint list per candidate). *)
type vinfo = {
  vi_var : Var.t;
  mutable vi_lows : int;  (* inequalities bounding the var from below *)
  mutable vi_ups : int;  (* ... from above *)
  mutable vi_low_unit : bool;  (* every lower coefficient is 1 *)
  mutable vi_up_unit : bool;  (* every upper coefficient is 1 (in abs) *)
  mutable vi_in_eq : bool;  (* still occurs in an equality: skip *)
}

(* Pick the eliminable variable whose elimination is cheapest, per Pugh:
   free variables (one-sided bounds, no combinations at all) first, then
   exact eliminations (some side all-unit), then inexact ones, in each
   class minimizing the #lower-bounds x #upper-bounds product of new
   constraints, with a deterministic id tie-break.  Ids increase in
   allocation order within a domain, and the variables of one problem
   are always minted by one domain, so the choice — like constraint
   emission order and canonical memo keys — depends only on relative
   allocation order, which is identical in serial and sharded runs.
   (A name-based tie-break would not be: wildcard names embed ids from
   the allocating domain's slot.)  With [Tuning.order]
   off, [pick_var_rescan] below — the previous implementation, which
   rescans the constraint list per candidate — is used instead. *)
let pick_var_rescan ~keep p =
  let candidates =
    Var.Set.filter (fun v -> Var.is_wild v || not (keep v)) (Problem.vars p)
  in
  let in_eq v =
    List.exists
      (fun c -> Constr.kind c = Constr.Eq && Constr.mentions c v)
      (Problem.constraints p)
  in
  let score v =
    if in_eq v then None
    else begin
      let lows, ups, _ = bounds_on p v in
      match lows, ups with
      | [], [] -> None
      | [], _ | _, [] -> Some (v, 0)
      | _ ->
        if fm_exact lows ups then
          Some (v, 1 + (List.length lows * List.length ups))
        else Some (v, 1000 + splinter_count lows ups)
    end
  in
  Var.Set.fold
    (fun v best ->
      match score v with
      | None -> best
      | Some (_, s) as cand -> (
        match best with Some (_, s') when s' <= s -> best | _ -> cand))
    candidates None
  |> Option.map fst

let pick_var ~keep p =
  if not !Tuning.order then pick_var_rescan ~keep p
  else
  let tbl : (int, vinfo) Hashtbl.t = Hashtbl.create 16 in
  let info v =
    match Hashtbl.find_opt tbl (Var.id v) with
    | Some i -> i
    | None ->
      let i =
        {
          vi_var = v;
          vi_lows = 0;
          vi_ups = 0;
          vi_low_unit = true;
          vi_up_unit = true;
          vi_in_eq = false;
        }
      in
      Hashtbl.add tbl (Var.id v) i;
      i
  in
  List.iter
    (fun c ->
      let is_eq = Constr.kind c = Constr.Eq in
      Linexpr.iter_terms
        (fun v cv ->
          if Var.is_wild v || not (keep v) then begin
            let i = info v in
            if is_eq then i.vi_in_eq <- true
            else if Zint.sign cv > 0 then begin
              i.vi_lows <- i.vi_lows + 1;
              if not (Zint.is_one cv) then i.vi_low_unit <- false
            end
            else begin
              i.vi_ups <- i.vi_ups + 1;
              if not (Zint.is_one (Zint.neg cv)) then i.vi_up_unit <- false
            end
          end)
        (Constr.expr c))
    (Problem.constraints p);
  (* (class, product) score; lower is better *)
  let score i =
    if i.vi_in_eq || (i.vi_lows = 0 && i.vi_ups = 0) then None
    else if i.vi_lows = 0 || i.vi_ups = 0 then Some (0, 0)
    else if i.vi_low_unit || i.vi_up_unit then
      Some (1, i.vi_lows * i.vi_ups)
    else Some (2, i.vi_lows * i.vi_ups)
  in
  Hashtbl.fold
    (fun _ i best ->
      match score i with
      | None -> best
      | Some (cls, prod) -> (
        match best with
        | Some (cls', prod', v') ->
          let c = Stdlib.compare (cls, prod) (cls', prod') in
          let better =
            c < 0
            || (c = 0
                &&
                Var.id i.vi_var < Var.id v')
          in
          if better then Some (cls, prod, i.vi_var) else best
        | None -> Some (cls, prod, i.vi_var)))
    tbl None
  |> Option.map (fun (_, _, v) -> v)

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

(* Exact projection: returns a list of problems whose union (reading
   wildcards existentially) equals the projection of [p] onto the kept
   variables.  An empty list means the problem is unsatisfiable.
   [splintered] (when provided) is set when any elimination was not exact
   (so the result may rest on dark shadows even if a single problem comes
   back). *)
let rec project_list ~keep m ?splintered (p : Problem.t) : Problem.t list =
  Budget.tick m;
  match eq_phase ~keep m p with
  | exception Contradiction -> []
  | p -> (
    match pick_var ~keep p with
    | None -> [ p ]
    | Some v -> (
      match fm_eliminate p v with
      | Eliminated p' -> project_list ~keep m ?splintered p'
      | Split { dark; splinters; _ } ->
        (match splintered with Some r -> r := true | None -> ());
        Budget.add_splinters m (List.length splinters);
        project_list ~keep m ?splintered dark
        @ List.concat_map (project_list ~keep m ?splintered) splinters))

let project ?splintered ~keep p =
  Budget.with_meter (fun m -> project_list ~keep m ?splintered p)

(* Approximate projection: single problem.  [`Dark] under-approximates
   (every point of the result is in the true projection), [`Real]
   over-approximates. *)
let rec project_approx ~mode ~keep m (p : Problem.t) :
    [ `Contra | `Ok of Problem.t ] =
  Budget.tick m;
  match eq_phase ~keep m p with
  | exception Contradiction -> `Contra
  | p -> (
    match pick_var ~keep p with
    | None -> `Ok p
    | Some v -> (
      match fm_eliminate p v with
      | Eliminated p' -> project_approx ~mode ~keep m p'
      | Split { dark; real; _ } ->
        let next = match mode with `Dark -> dark | `Real -> real in
        project_approx ~mode ~keep m next))

let project_dark ~keep p =
  Budget.with_meter (fun m -> project_approx ~mode:`Dark ~keep m p)

let project_real ~keep p =
  Budget.with_meter (fun m -> project_approx ~mode:`Real ~keep m p)

let keep_none : keep = fun _ -> false

(* Conservative satisfiability via real shadows only: [false] is definite,
   [true] is "maybe". *)
let sat_real p =
  match project_real ~keep:keep_none p with `Contra -> false | `Ok _ -> true

(* Exact integer satisfiability. *)
let rec sat_meter m (p : Problem.t) : bool =
  Budget.tick m;
  match eq_phase ~keep:keep_none m p with
  | exception Contradiction -> false
  | p -> (
    match pick_var ~keep:keep_none p with
    | None -> true
    | Some v -> (
      match fm_eliminate p v with
      | Eliminated p' -> sat_meter m p'
      | Split { dark; real; splinters } ->
        Budget.add_splinters m (List.length splinters);
        sat_meter m dark
        || (sat_real real && List.exists (sat_meter m) splinters)))

let satisfiable p = Budget.with_meter (fun m -> sat_meter m p)
