(* Ablation switches and counters for the solver's hot paths.

   Each switch gates one of the inner-loop optimizations described in
   DESIGN.md section 9; all default to [true].  The `bench analysis`
   suite flips them off to measure each optimization's contribution and
   to cross-check that results are identical either way (every gated
   transform is equivalence-preserving, so only time may change). *)

(* Pugh's elimination-variable ordering: prefer exact (unit-coefficient)
   eliminations, then minimize the #lower-bounds x #upper-bounds product.
   Off: eliminate the first candidate in variable-id order. *)
let order = ref true

(* Redundancy pruning in [Problem.simplify]: besides the always-on
   parallel-constraint dedup, drop inequalities implied by the interval
   box of the single-variable bounds. *)
let redundancy = ref true

(* Caching/interning: precomputed structural hashes and canonical
   coefficient keys on [Linexpr], the normalized flag on [Constr],
   interning of normalized expressions, and the small-integer string
   cache of the verdict-memo key serializer. *)
let hashcons = ref true

(* Tier-0 screen of the decision portfolio (Portfolio / Screen): when
   off, a [Cascade] backend skips the incomplete screen and starts at
   the dark-shadow fast path, which is exactly the [Omega] backend.
   Like the switches above this only moves work between (sound)
   procedures, never changes a verdict. *)
let screen = ref true

let set ~order:o ~redundancy:r ~hashcons:h =
  order := o;
  redundancy := r;
  hashcons := h

let all_on () =
  set ~order:true ~redundancy:true ~hashcons:true;
  screen := true

module Stats = struct
  type t = {
    mutable fm_eliminations : int;  (* variables eliminated by FM *)
    mutable fm_exact : int;  (* of which exact (incl. one-sided) *)
    mutable fm_split : int;  (* of which dark-shadow + splinters *)
    mutable pruned_interval : int;  (* constraints dropped by the screen *)
    mutable intern_hits : int;
    mutable intern_misses : int;
  }

  let make () =
    {
      fm_eliminations = 0;
      fm_exact = 0;
      fm_split = 0;
      pruned_interval = 0;
      intern_hits = 0;
      intern_misses = 0;
    }

  (* Per-domain record, like Budget's world: hot-path increments stay
     plain unsynchronized stores, and parallel tasks merge their record
     back at batch boundaries (Depend.Par). *)
  let key = Domain.DLS.new_key make

  let current () = Domain.DLS.get key
  let reset () = Domain.DLS.set key (make ())

  let exchange fresh =
    let old = current () in
    Domain.DLS.set key fresh;
    old

  let merge_into dst src =
    dst.fm_eliminations <- dst.fm_eliminations + src.fm_eliminations;
    dst.fm_exact <- dst.fm_exact + src.fm_exact;
    dst.fm_split <- dst.fm_split + src.fm_split;
    dst.pruned_interval <- dst.pruned_interval + src.pruned_interval;
    dst.intern_hits <- dst.intern_hits + src.intern_hits;
    dst.intern_misses <- dst.intern_misses + src.intern_misses

  let summary () =
    let stats = current () in
    Printf.sprintf
      "%d FM eliminations (%d exact, %d split), %d constraints \
       interval-pruned, intern %d hits / %d misses"
      stats.fm_eliminations stats.fm_exact stats.fm_split
      stats.pruned_interval stats.intern_hits stats.intern_misses
end
