(* Ablation switches and counters for the solver's hot paths.

   Each switch gates one of the inner-loop optimizations described in
   DESIGN.md section 9; all default to [true].  The `bench analysis`
   suite flips them off to measure each optimization's contribution and
   to cross-check that results are identical either way (every gated
   transform is equivalence-preserving, so only time may change). *)

(* Pugh's elimination-variable ordering: prefer exact (unit-coefficient)
   eliminations, then minimize the #lower-bounds x #upper-bounds product.
   Off: eliminate the first candidate in variable-id order. *)
let order = ref true

(* Redundancy pruning in [Problem.simplify]: besides the always-on
   parallel-constraint dedup, drop inequalities implied by the interval
   box of the single-variable bounds. *)
let redundancy = ref true

(* Caching/interning: precomputed structural hashes and canonical
   coefficient keys on [Linexpr], the normalized flag on [Constr],
   interning of normalized expressions, and the small-integer string
   cache of the verdict-memo key serializer. *)
let hashcons = ref true

let set ~order:o ~redundancy:r ~hashcons:h =
  order := o;
  redundancy := r;
  hashcons := h

let all_on () = set ~order:true ~redundancy:true ~hashcons:true

module Stats = struct
  type t = {
    mutable fm_eliminations : int;  (* variables eliminated by FM *)
    mutable fm_exact : int;  (* of which exact (incl. one-sided) *)
    mutable fm_split : int;  (* of which dark-shadow + splinters *)
    mutable pruned_interval : int;  (* constraints dropped by the screen *)
    mutable intern_hits : int;
    mutable intern_misses : int;
  }

  let stats =
    {
      fm_eliminations = 0;
      fm_exact = 0;
      fm_split = 0;
      pruned_interval = 0;
      intern_hits = 0;
      intern_misses = 0;
    }

  let reset () =
    stats.fm_eliminations <- 0;
    stats.fm_exact <- 0;
    stats.fm_split <- 0;
    stats.pruned_interval <- 0;
    stats.intern_hits <- 0;
    stats.intern_misses <- 0

  let summary () =
    Printf.sprintf
      "%d FM eliminations (%d exact, %d split), %d constraints \
       interval-pruned, intern %d hits / %d misses"
      stats.fm_eliminations stats.fm_exact stats.fm_split
      stats.pruned_interval stats.intern_hits stats.intern_misses
end
