(** Tier-0 of the decision portfolio: an {e incomplete but sound}
    screening backend in the spirit of the cheap dependence tests the
    Omega test was designed to back up (GCD/Banerjee).

    Every entry point answers in O(constraints) work — a gcd and
    divisibility screen per equality, interval/box propagation over the
    inequalities (a Banerjee-style bound check), and exact
    single-occurrence / unit-coefficient variable elimination.  There is
    no DNF expansion, no splintering, and no fuel consumption beyond the
    fixed {!charge} drawn at each entry.

    Soundness contract: a definite answer ([`Sat]/[`Unsat],
    [Proved]/[Disproved]) is always correct — the complete procedure
    would return the same one.  When the screens cannot tell, the answer
    is [`Unknown]/[Unknown] and a later portfolio tier must decide. *)

type answer = Proved | Disproved | Unknown

val answer_to_string : answer -> string

val charge : int
(** Fuel ticks drawn from the ambient {!Budget} meter per entry point —
    the screen's entire budget footprint. *)

val decide : Problem.t -> [ `Sat | `Unsat | `Unknown ]
(** Definite integer satisfiability of a conjunction, when the screens
    can tell.  [`Unsat] comes from normalization contradictions (the
    equality GCD test among them) and empty interval boxes; [`Sat] from
    an explicit witness found by clamping each variable into its box. *)

val implies_problem : Problem.t -> Problem.t -> answer
(** [implies_problem p q]: is [p => q] a tautology?  Proves via
    constraint-wise and box implication; disproves via a [p]-witness
    falsifying [q]. *)

val implies_exists :
  hyp:Constr.t list ->
  Problem.t list ->
  evars:Var.t list ->
  Problem.t list ->
  answer
(** The screen's take on the analyses' query shape
    [hyp => (lhs => exists evars. rhs)] (disjunction over each list).
    Proves a disjunct vacuous (its conjunction with [hyp] is definitely
    unsatisfiable) or discharged (some RHS disjunct, with the
    existentials eliminated exactly, is subsumed by it); disproves when
    some LHS disjunct is definitely satisfiable while its conjunction
    with {e every} RHS disjunct is definitely unsatisfiable. *)
