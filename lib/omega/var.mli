(** Variables of Omega problems.

    Three kinds mirror the roles in the paper: [Input] for iteration and
    other named problem variables, [Sym] for symbolic constants (the [Sym]
    set of the paper's notation), and [Wild] for existentially quantified
    wildcards introduced by exact equality elimination and splintering
    (never visible to clients). *)

type kind = Input | Sym | Wild

type t

val fresh : ?kind:kind -> string -> t
(** A fresh variable (identity is by allocation, not by name).
    Allocation is domain-local and lock-free: each domain draws ids
    from its own disjoint slot of the id space (the main domain owns
    slot 0), and ids increase in allocation order within a domain. *)

val fresh_wild : unit -> t

val id : t -> int
val name : t -> string
val kind : t -> kind
val is_wild : t -> bool
val is_sym : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
