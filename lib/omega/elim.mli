(** The Omega test engine: exact elimination of variables from
    conjunctions of linear constraints [Pug91], extended with exact
    projection as used by the PLDI'92 paper.

    Equalities are eliminated exactly (unit-coefficient substitution,
    collapse to congruences, scale-out of a lone entangled variable, or
    Pugh's mod-hat reduction).  Remaining variables are eliminated by
    Fourier-Motzkin: each lower/upper bound pair combines into a {e real
    shadow} constraint, tightened by [(a-1)(b-1)] into the {e dark
    shadow}; when the two differ, the exact projection is the dark shadow
    together with finitely many {e splinters}. *)

type keep = Var.t -> bool
(** Which variables to keep (protect) during projection.  Wildcards are
    always eliminable regardless of [keep]. *)

exception Contradiction

(** Every entry point below meters its work against the ambient
    {!Budget} limits and raises {!Budget.Exhausted} when a limit blows.
    Callers reach them through a {!Budget.run} query boundary (or catch
    the exception themselves) and degrade conservatively on a give-up
    (assume the dependence, refuse the refinement). *)

val satisfiable : Problem.t -> bool
(** Exact integer satisfiability. *)

val project : ?splintered:bool ref -> keep:keep -> Problem.t -> Problem.t list
(** Exact projection: the union of the returned problems (reading their
    wildcards existentially) has exactly the same integer solutions for
    the kept variables as the input.  The empty list means the input is
    unsatisfiable.  [splintered] is set when some elimination was inexact
    (the union then mixes dark-shadow pieces and pinned copies). *)

val project_dark : keep:keep -> Problem.t -> [ `Contra | `Ok of Problem.t ]
(** Dark-shadow projection: a single problem under-approximating the true
    projection (every point of the result has an integer witness). *)

val project_real : keep:keep -> Problem.t -> [ `Contra | `Ok of Problem.t ]
(** Real-shadow projection: a single problem over-approximating the true
    projection. *)
