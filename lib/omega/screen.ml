(* Tier-0 of the decision portfolio: incomplete, sound, O(constraints).

   The screens here are the classical cheap dependence tests the Omega
   test was built to back up, recast over our constraint representation:

   - GCD / divisibility per equality and the single- and two-constraint
     contradiction checks, via [Constr.normalize] / [Problem.simplify];
   - interval ("box") propagation over the inequalities — each
     constraint [e >= 0] refutes when the box maximum of [e] is
     negative, and yields necessary bounds on each of its variables from
     the box extrema of the remaining terms (a Banerjee-style check);
   - exact variable elimination only: substitution through
     unit-coefficient equalities and dropping of constraints whose
     eliminable variable occurs nowhere else (one-sided projection).

   A definite answer is always correct; everything uncertain is
   [Unknown].  There is no DNF expansion and no splintering, and the
   whole entry draws a fixed [charge] from the ambient budget meter. *)

type answer = Proved | Disproved | Unknown

let answer_to_string = function
  | Proved -> "proved"
  | Disproved -> "disproved"
  | Unknown -> "unknown"

let charge = 8

let pay () =
  Budget.with_meter (fun m ->
      for _ = 1 to charge do
        Budget.tick m
      done)

(* ---------- exact elimination ---------- *)

(* Gaussian substitution through unit-coefficient equalities: from
   [c*v + rest = 0] with [c = +-1] and [v] eliminable, define
   [v = -c * rest] and substitute everywhere.  Equisatisfiable, and an
   equivalence over the kept variables. *)
let rec subst_pass ~may_elim p =
  let cs = Problem.constraints p in
  let pick =
    List.find_map
      (fun c ->
        if Constr.kind c <> Constr.Eq then None
        else
          let e = Constr.expr c in
          let hit = ref None in
          Linexpr.iter_terms
            (fun v cv ->
              if
                !hit = None && may_elim v
                && Zint.(cv = one || cv = minus_one)
              then hit := Some (v, cv))
            e;
          Option.map (fun (v, cv) -> (c, v, cv)) !hit)
      cs
  in
  match pick with
  | None -> p
  | Some (c, v, cv) ->
      let rest = Linexpr.set_coeff (Constr.expr c) v Zint.zero in
      let def = Linexpr.scale (Zint.neg cv) rest in
      let p' =
        Problem.of_list (List.filter (fun c' -> not (Constr.equal c' c)) cs)
      in
      subst_pass ~may_elim (Problem.subst v def p')

(* Drop inequalities whose eliminable variable occurs in no other
   constraint: [exists v. e + c*v >= 0] is a tautology over the rest
   (pick v past the bound), so deleting the constraint is an exact
   projection.  Unit-coefficient single-occurrence equalities were
   already removed by [subst_pass]. *)
let rec drop_pass ~may_elim p =
  let deletable c =
    Constr.kind c = Constr.Geq
    && Linexpr.exists_term
         (fun v _ -> may_elim v && Problem.occurrences p v = 1)
         (Constr.expr c)
  in
  if List.exists deletable (Problem.constraints p) then
    drop_pass ~may_elim (Problem.filter (fun c -> not (deletable c)) p)
  else p

(* Simplify (gcd screen, contradiction checks), eliminate exactly,
   simplify again. *)
let prepare ~may_elim p =
  match Problem.simplify p with
  | Problem.Contra -> `Contra
  | Problem.Ok p -> (
      let p = drop_pass ~may_elim (subst_pass ~may_elim p) in
      match Problem.simplify p with
      | Problem.Contra -> `Contra
      | Problem.Ok p -> `Ok p)

(* ---------- interval / box propagation ---------- *)

(* A box maps each variable to known [lo, hi] bounds (either side may be
   open).  It over-approximates the solution set: every solution lies in
   the box, so an empty box refutes and box extrema of an expression
   bound its value over all solutions. *)
let bounds_of box v =
  match Var.Map.find_opt v box with Some b -> b | None -> (None, None)

(* Max of [e] over the box; [None] = unbounded above. *)
let maxval box e =
  Linexpr.fold_terms
    (fun v cv acc ->
      match acc with
      | None -> None
      | Some m -> (
          let lo, hi = bounds_of box v in
          let side = if Zint.sign cv > 0 then hi else lo in
          match side with
          | None -> None
          | Some x -> Some Zint.(m + (cv * x))))
    e
    (Some (Linexpr.constant e))

let minval box e = Option.map Zint.neg (maxval box (Linexpr.neg e))

exception Empty

(* Fixpoint rounds (bounded) of bound derivation: treat every constraint
   as [e >= 0] (both directions for an equality).  For each variable
   [v] with coefficient [a] in [e], over any solution
   [a*v >= -(max of the remaining terms)], giving a necessary lower
   (upper) bound for positive (negative) [a]. *)
let propagate cs =
  let box = ref Var.Map.empty in
  let changed = ref true in
  let set_lo v x =
    let lo, hi = bounds_of !box v in
    let tighter = match lo with None -> true | Some l -> Zint.(x > l) in
    if tighter then (
      (match hi with Some h when Zint.(x > h) -> raise Empty | _ -> ());
      box := Var.Map.add v (Some x, hi) !box;
      changed := true)
  in
  let set_hi v x =
    let lo, hi = bounds_of !box v in
    let tighter = match hi with None -> true | Some h -> Zint.(x < h) in
    if tighter then (
      (match lo with Some l when Zint.(x < l) -> raise Empty | _ -> ());
      box := Var.Map.add v (lo, Some x) !box;
      changed := true)
  in
  let derive e =
    (match maxval !box e with
    | Some m when Zint.(m < zero) -> raise Empty
    | _ -> ());
    Linexpr.iter_terms
      (fun v cv ->
        let rest = Linexpr.set_coeff e v Zint.zero in
        match maxval !box rest with
        | None -> ()
        | Some m ->
            if Zint.sign cv > 0 then set_lo v (Zint.cdiv (Zint.neg m) cv)
            else set_hi v (Zint.fdiv m (Zint.neg cv)))
      e
  in
  try
    let rounds = ref 0 in
    while !changed && !rounds < 4 do
      changed := false;
      incr rounds;
      List.iter
        (fun c ->
          let e = Constr.expr c in
          derive e;
          if Constr.kind c = Constr.Eq then derive (Linexpr.neg e))
        cs
    done;
    `Box !box
  with Empty -> `Empty

(* A candidate witness: clamp 0 into each variable's interval.  The box
   is only necessary, not sufficient, so the point must be checked by
   evaluation before concluding satisfiability. *)
let witness_env box p =
  Var.Set.fold
    (fun v env ->
      let lo, hi = bounds_of box v in
      let x =
        match (lo, hi) with
        | Some l, _ when Zint.(l > zero) -> l
        | _, Some h when Zint.(h < zero) -> h
        | _ -> Zint.zero
      in
      Var.Map.add v x env)
    (Problem.vars p) Var.Map.empty

let definitely_sat box p =
  let env = witness_env box p in
  Problem.eval (fun v -> Var.Map.find v env) p

(* ---------- entry points ---------- *)

let all_vars _ = true

let decide p =
  pay ();
  match prepare ~may_elim:all_vars p with
  | `Contra -> `Unsat
  | `Ok p -> (
      match propagate (Problem.constraints p) with
      | `Empty -> `Unsat
      | `Box box -> if definitely_sat box p then `Sat else `Unknown)

(* [q]'s constraint [c] holds over all of [lp] when some constraint of
   [lp] implies it (parallel screen) or the box extrema of its
   expression already satisfy it — the box over-approximates [lp], so a
   bound valid over the box is valid over every solution. *)
let subsumes ~lbox lp q =
  let lcs = Problem.constraints lp in
  List.for_all
    (fun c ->
      List.exists (fun l -> Constr.implies l c) lcs
      ||
      let e = Constr.expr c in
      match Constr.kind c with
      | Constr.Geq -> (
          match minval lbox e with
          | Some m -> Zint.(m >= zero)
          | None -> false)
      | Constr.Eq -> (
          match (minval lbox e, maxval lbox e) with
          | Some m, Some x -> Zint.(m >= zero) && Zint.(x <= zero)
          | _ -> false))
    (Problem.constraints q)

(* Definite unsatisfiability of a conjunction of two problems, sharing
   the screens of [decide] minus the witness search. *)
let conj_unsat p q =
  match prepare ~may_elim:all_vars (Problem.conj p q) with
  | `Contra -> true
  | `Ok pq -> (
      match propagate (Problem.constraints pq) with
      | `Empty -> true
      | `Box _ -> false)

let implies_problem p q =
  pay ();
  match prepare ~may_elim:Var.is_wild p with
  | `Contra -> Proved (* vacuous *)
  | `Ok lp -> (
      match propagate (Problem.constraints lp) with
      | `Empty -> Proved
      | `Box lbox -> (
          match Problem.simplify q with
          | Problem.Contra ->
              (* p => false: holds iff p is unsatisfiable, which the
                 screens above could not show.  A p-witness disproves. *)
              if definitely_sat lbox lp then Disproved else Unknown
          | Problem.Ok q ->
              if subsumes ~lbox lp q then Proved
              else
                (* Try the witness of [lp] as a counterexample; only
                   valid if it covers every variable of [q], and [q] has
                   no wildcards (those are existential within [q], so
                   falsifying one instantiation proves nothing). *)
                let env = witness_env lbox lp in
                let covered =
                  Var.Set.for_all
                    (fun v -> (not (Var.is_wild v)) && Var.Map.mem v env)
                    (Problem.vars q)
                in
                if
                  covered
                  && Problem.eval (fun v -> Var.Map.find v env) lp
                  && not (Problem.eval (fun v -> Var.Map.find v env) q)
                then Disproved
                else Unknown))

let implies_exists ~hyp lhs ~evars rhs =
  pay ();
  let is_elim v =
    Var.is_wild v || List.exists (fun e -> Var.equal e v) evars
  in
  (* Each RHS disjunct with [hyp] conjoined, in two forms: the original
     (for the refutation path, where the existentials are just ordinary
     variables of a satisfiability question) and, when the exact
     eliminations remove every existential, an evar-free version usable
     for subsumption proofs. *)
  let rhs_orig = List.map (fun r -> Problem.add_list hyp r) rhs in
  let rhs_prep =
    List.filter_map
      (fun r ->
        match prepare ~may_elim:is_elim r with
        | `Contra -> None
        | `Ok p ->
            if Var.Set.exists is_elim (Problem.vars p) then None else Some p)
      rhs_orig
  in
  let status l =
    match prepare ~may_elim:Var.is_wild (Problem.add_list hyp l) with
    | `Contra -> `Ok (* vacuous disjunct *)
    | `Ok lp -> (
        match propagate (Problem.constraints lp) with
        | `Empty -> `Ok
        | `Box lbox ->
            if List.exists (fun q -> subsumes ~lbox lp q) rhs_prep then `Ok
            else if
              (* Some point satisfies [hyp /\ l] while [hyp /\ l /\ r]
                 is definitely empty for every r: that point has no
                 witness for any RHS disjunct, so the implication is
                 definitely false. *)
              definitely_sat lbox lp
              && List.for_all (fun r -> conj_unsat lp r) rhs_orig
            then `Refuted
            else `Unknown)
  in
  let statuses = List.map status lhs in
  if List.exists (fun s -> s = `Refuted) statuses then Disproved
  else if List.for_all (fun s -> s = `Ok) statuses then Proved
  else Unknown
