(* Affine expressions: a constant plus a linear combination of variables
   with exact integer coefficients.  The term map never stores zero
   coefficients, so structural equality of the map coincides with equality
   of the linear part.

   Each expression lazily caches (when [Tuning.hashcons] is on) a
   structural hash and the canonical coefficient-vector key used by
   [Problem.simplify] to bucket parallel constraints, so the hot loops
   stop re-walking coefficient lists.  Normalized expressions can also be
   interned, making physical equality a useful fast path. *)

type cache = {
  c_hash : int;  (* structural hash of constant + terms *)
  c_key : (Var.t * Zint.t) list;
      (* linear part in ascending variable order, leading coeff > 0 *)
  c_flipped : bool;  (* whether the key negated the coefficients *)
  c_khash : int;  (* hash of [c_key] alone *)
}

type t = { const : Zint.t; terms : Zint.t Var.Map.t; mutable cache : cache option }

let mk const terms = { const; terms; cache = None }

let zero = mk Zint.zero Var.Map.empty
let const c = mk c Var.Map.empty
let of_int n = const (Zint.of_int n)

let term c v =
  if Zint.is_zero c then zero else mk Zint.zero (Var.Map.singleton v c)

let var v = term Zint.one v

let coeff e v =
  match Var.Map.find_opt v e.terms with Some c -> c | None -> Zint.zero

let constant e = e.const
let mem e v = Var.Map.mem v e.terms
let is_const e = Var.Map.is_empty e.terms

let set_coeff e v c =
  let terms =
    if Zint.is_zero c then Var.Map.remove v e.terms
    else Var.Map.add v c e.terms
  in
  mk e.const terms

let add_term e c v = set_coeff e v (Zint.add (coeff e v) c)
let add_const e c = mk (Zint.add e.const c) e.terms

let add a b =
  let terms =
    Var.Map.union
      (fun _ c1 c2 ->
        let c = Zint.add c1 c2 in
        if Zint.is_zero c then None else Some c)
      a.terms b.terms
  in
  mk (Zint.add a.const b.const) terms

let neg e = mk (Zint.neg e.const) (Var.Map.map Zint.neg e.terms)

let sub a b = add a (neg b)

let scale c e =
  if Zint.is_zero c then zero
  else if Zint.is_one c then e
  else mk (Zint.mul c e.const) (Var.Map.map (Zint.mul c) e.terms)

let scale_int n e = scale (Zint.of_int n) e

(* Substitute [v := def] in [e]. *)
let subst e v def =
  let c = coeff e v in
  if Zint.is_zero c then e
  else add (set_coeff e v Zint.zero) (scale c def)

let vars e = Var.Map.fold (fun v _ acc -> Var.Set.add v acc) e.terms Var.Set.empty

let iter_terms f e = Var.Map.iter f e.terms
let fold_terms f e acc = Var.Map.fold f e.terms acc
let num_terms e = Var.Map.cardinal e.terms

let exists_term p e = Var.Map.exists p e.terms

(* Gcd of the variable coefficients (not the constant); zero for a constant
   expression. *)
let content e =
  Var.Map.fold (fun _ c acc -> Zint.gcd (Zint.abs c) acc) e.terms Zint.zero

(* Divide all coefficients and the constant exactly by [d]. *)
let divexact e d =
  mk (Zint.divexact e.const d) (Var.Map.map (fun c -> Zint.divexact c d) e.terms)

let map_coeffs f e =
  let terms =
    Var.Map.filter_map
      (fun _ c ->
        let c' = f c in
        if Zint.is_zero c' then None else Some c')
      e.terms
  in
  mk (f e.const) terms

let eval env e =
  Var.Map.fold
    (fun v c acc -> Zint.add acc (Zint.mul c (env v)))
    e.terms e.const

(* ------------------------------------------------------------------ *)
(* Cached hash / canonical key                                         *)
(* ------------------------------------------------------------------ *)

let mix h x = (((h * 65599) + x) lxor (h lsr 17)) land max_int

let compute_cache e =
  (* one walk in ascending variable order; [Var.Map.fold] already
     iterates in increasing key order, so no sort is needed *)
  let rev_key, khash, h =
    Var.Map.fold
      (fun v c (key, kh, h) ->
        let hv = Var.hash v and hc = Zint.hash c in
        ((v, c) :: key, mix (mix kh hv) hc, mix (mix h hv) hc))
      e.terms
      ([], 0x9dc5, mix 0x811c (Zint.hash e.const))
  in
  let bindings = List.rev rev_key in
  let flipped =
    match bindings with (_, c0) :: _ -> Zint.sign c0 < 0 | [] -> false
  in
  let key, khash =
    if not flipped then (bindings, khash)
    else
      List.fold_left
        (fun (key, kh) (v, c) ->
          let c = Zint.neg c in
          ((v, c) :: key, mix (mix kh (Var.hash v)) (Zint.hash c)))
        ([], 0x9dc5) bindings
      |> fun (rk, kh) -> (List.rev rk, kh)
  in
  { c_hash = h; c_key = key; c_flipped = flipped; c_khash = khash }

let cached e =
  match e.cache with
  | Some c when !Tuning.hashcons -> c
  | _ ->
    let c = compute_cache e in
    if !Tuning.hashcons then e.cache <- Some c;
    c

let hash e = (cached e).c_hash

let canon e =
  let c = cached e in
  (c.c_key, c.c_flipped, c.c_khash)

(* Structural comparison, constant included. *)
let compare a b =
  if a == b then 0
  else
    let c = Zint.compare a.const b.const in
    if c <> 0 then c else Var.Map.compare Zint.compare a.terms b.terms

(* Comparison of the linear parts only (ignoring constants): used to detect
   parallel constraints. *)
let compare_terms a b =
  if a == b then 0 else Var.Map.compare Zint.compare a.terms b.terms

let equal a b =
  a == b
  ||
  match a.cache, b.cache with
  | Some ca, Some cb when ca.c_hash <> cb.c_hash -> false
  | _ -> compare a b = 0

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

(* Hash -> expressions with that hash.  The table is an optimization
   only (equality never depends on it), so when it fills up it is simply
   cleared: sharing restarts, correctness is untouched.  One table per
   domain: interning from several domains into one Hashtbl would corrupt
   it, and sharing expressions across domains buys nothing (problems
   never cross domains mid-query). *)
type interner = { tbl : (int, t list) Hashtbl.t; mutable count : int }

let intern_cap = 1 lsl 16

let intern_key =
  Domain.DLS.new_key (fun () -> { tbl = Hashtbl.create 4096; count = 0 })

let intern e =
  if not !Tuning.hashcons then e
  else begin
    let s = Tuning.Stats.current () in
    let it = Domain.DLS.get intern_key in
    let h = hash e in
    let bucket =
      match Hashtbl.find_opt it.tbl h with Some es -> es | None -> []
    in
    match List.find_opt (fun e' -> equal e' e) bucket with
    | Some e' ->
      s.Tuning.Stats.intern_hits <- s.Tuning.Stats.intern_hits + 1;
      e'
    | None ->
      s.Tuning.Stats.intern_misses <- s.Tuning.Stats.intern_misses + 1;
      if it.count >= intern_cap then begin
        Hashtbl.reset it.tbl;
        it.count <- 0
      end;
      Hashtbl.replace it.tbl h (e :: bucket);
      it.count <- it.count + 1;
      e
  end

(* Inner product of the coefficient vectors of two expressions, used by the
   gist fast checks ("normals with positive inner product"). *)
let dot a b =
  Var.Map.fold
    (fun v c acc ->
      match Var.Map.find_opt v b.terms with
      | Some c' -> Zint.add acc (Zint.mul c c')
      | None -> acc)
    a.terms Zint.zero

let pp fmt e =
  let open Format in
  if is_const e then Zint.pp fmt e.const
  else begin
    let first = ref true in
    Var.Map.iter
      (fun v c ->
        let s = Zint.sign c in
        if !first then begin
          first := false;
          if Zint.is_one c then pp_print_string fmt (Var.name v)
          else if Zint.equal c Zint.minus_one then fprintf fmt "-%s" (Var.name v)
          else fprintf fmt "%a%s" Zint.pp c (Var.name v)
        end
        else begin
          let a = Zint.abs c in
          fprintf fmt " %s " (if s >= 0 then "+" else "-");
          if Zint.is_one a then pp_print_string fmt (Var.name v)
          else fprintf fmt "%a%s" Zint.pp a (Var.name v)
        end)
      e.terms;
    if not (Zint.is_zero e.const) then
      if Zint.sign e.const > 0 then fprintf fmt " + %a" Zint.pp e.const
      else fprintf fmt " - %a" Zint.pp (Zint.abs e.const)
  end

let to_string e = Format.asprintf "%a" pp e
