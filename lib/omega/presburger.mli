(** A decision procedure for Presburger formulas (section 3.2).

    Quantifier elimination by exact projection over a DNF; congruence
    atoms ([m] divides [e]) close the language under negation of projected
    formulas, so the procedure is complete for all of Presburger
    arithmetic (with the usual worst-case blowup).  The dependence
    analyses use it as the fallback behind the paper's efficient special
    cases (dark-shadow implication and gists). *)

(** DNF expansion and projection are metered against the ambient
    {!Budget} limits; exceeding the disjunct limit raises
    [Budget.Exhausted Disjuncts].  Callers using the procedure to
    {e prove} a fact treat a give-up as "not proved" (conservative for
    elimination queries). *)

type t =
  | True
  | False
  | Atom of Constr.t
  | Cong of Zint.t * Linexpr.t  (** [Cong (m, e)]: [m] divides [e]. *)
  | And of t list
  | Or of t list
  | Not of t
  | Exists of Var.t list * t
  | Forall of Var.t list * t

(** {1 Smart constructors} (they simplify on the fly) *)

val tt : t
val ff : t
val atom : Constr.t -> t
val ge : Linexpr.t -> Linexpr.t -> t
val gt : Linexpr.t -> Linexpr.t -> t
val le : Linexpr.t -> Linexpr.t -> t
val lt : Linexpr.t -> Linexpr.t -> t
val eq : Linexpr.t -> Linexpr.t -> t
val geq0 : Linexpr.t -> t
val eq0 : Linexpr.t -> t
val and_ : t list -> t
val or_ : t list -> t
val not_ : t -> t
val exists : Var.t list -> t -> t
val forall : Var.t list -> t -> t
val implies_ : t -> t -> t
val cong : Zint.t -> Linexpr.t -> t

(** {1 Conversions} *)

val of_constr : Constr.t -> t
(** Inert congruence equalities become [Cong] atoms, so the formula layer
    never sees wildcards. *)

val of_problem : Problem.t -> t

val problem_of_conjuncts : t list -> Problem.t
(** The atoms (and only atoms) of one DNF disjunct as a problem;
    congruences become fresh-wildcard equalities.
    @raise Invalid_argument on non-atoms. *)

val neg_qf : t -> t
(** Negation of a quantifier-free formula, staying quantifier-free.
    @raise Invalid_argument on quantified formulas. *)

val dnf : t -> t list list
(** Disjunctive normal form of a quantifier-free formula: a list of
    conjunctions of atoms, with contradictory disjuncts pruned. *)

val problems_of_qf : t -> Problem.t list

(** {1 Decision} *)

val qe : t -> t
(** Quantifier elimination: the result is quantifier-free over the free
    variables (plus [Cong] atoms). *)

val satisfiable : t -> bool
(** Satisfiability, free variables read existentially. *)

val valid : t -> bool
(** Validity, free variables read universally. *)

val implies : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
