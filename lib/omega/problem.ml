(* A problem is a conjunction of constraints, the basic object the Omega
   test manipulates.

   Semantics: a problem denotes the set of assignments to its non-wildcard
   variables for which there exist integer values of the wildcard variables
   satisfying every constraint.  After simplification and elimination,
   wildcards appear only in "inert congruence" position: a wildcard [s]
   occurring in exactly one equality [e + g*s = 0], which denotes the
   congruence [e = 0 (mod g)]. *)

(* [simp] remembers that [simplify] already returned this very problem
   (simplification is idempotent, so the flag is only ever a cache; like
   [Constr.norm] it is consulted only while [Tuning.hashcons] is on).
   [grown] marks a problem that just came out of a multiplicative
   Fourier-Motzkin step (>= 2 lower and >= 2 upper bounds crossed): the
   interval screen in [simplify] runs only on those, because that cross
   product is the one place the constraint set actually grows
   quadratically — screening every construction costs more than the
   pruning saves. *)
type t = { cs : Constr.t list; mutable simp : bool; mutable grown : bool }

type simplified = Contra | Ok of t

let mk cs = { cs; simp = false; grown = false }
let mark_grown t = t.grown <- true
let trivial = mk []
let of_list cs = mk cs
let constraints t = t.cs
let is_trivial t = t.cs = []

let add c t = mk (c :: t.cs)
let add_list cs t = mk (cs @ t.cs)
let conj a b = mk (a.cs @ b.cs)

let eqs t = List.filter (fun c -> Constr.kind c = Constr.Eq) t.cs
let geqs t = List.filter (fun c -> Constr.kind c = Constr.Geq) t.cs

let vars t =
  List.fold_left (fun acc c -> Var.Set.union acc (Constr.vars c)) Var.Set.empty t.cs

let map_constraints f t = mk (List.map f t.cs)
let filter f t = mk (List.filter f t.cs)
let exists f t = List.exists f t.cs
let for_all f t = List.for_all f t.cs

let subst v def t = mk (List.map (fun c -> Constr.subst c v def) t.cs)

(* Substitution driven by an equality of the given color: constraints that
   actually mention the variable absorb that color (supports the red/black
   combined projection + gist of section 3.3.2). *)
let subst_colored v def color t =
  mk
    (List.map
       (fun c ->
         if Constr.mentions c v then
           Constr.with_color
             (Constr.combine_colors color (Constr.color c))
             (Constr.subst c v def)
         else c)
       t.cs)

(* Number of constraints mentioning [v]. *)
let occurrences t v =
  List.fold_left (fun n c -> if Constr.mentions c v then n + 1 else n) 0 t.cs

let eval env t = List.for_all (Constr.eval env) t.cs

(* ------------------------------------------------------------------ *)
(* Simplification                                                      *)
(* ------------------------------------------------------------------ *)

(* Key for grouping constraints with parallel linear parts.  Two exprs get
   the same key iff their linear parts are equal or opposite; [flipped]
   tells which.  The key itself (linear part in ascending variable order,
   leading coefficient positive) is computed — and cached — by
   [Linexpr.canon]. *)
module Termkey = struct
  type key = (Var.t * Zint.t) list

  let compare_key (a : key) (b : key) =
    let cmp (va, ca) (vb, cb) =
      let c = Var.compare va vb in
      if c <> 0 then c else Zint.compare ca cb
    in
    List.compare cmp a b
end

module KeyMap = Map.Make (struct
  type t = Termkey.key

  let compare = Termkey.compare_key
end)

(* Merge the constraints sharing a linear direction:
   after canonicalization every constraint is [dir + c >= 0] (lower bound on
   -dir), [-dir + c >= 0] (upper bound), or [dir + c = 0].  We keep the
   tightest bounds, detect contradictions, and promote touching opposite
   inequalities to equalities. *)
type bucket = {
  (* smallest c with dir + c >= 0 *)
  mutable lo : (Zint.t * Constr.t) option;
  (* smallest c with -dir + c >= 0 *)
  mutable hi : (Zint.t * Constr.t) option;
  (* equality dir + c = 0 *)
  mutable eq : (Zint.t * Constr.t) option;
  mutable contra : bool;
}

(* Drop multi-term inequalities already implied by the interval box of
   the single-variable bounds (an equivalence-preserving screen: the box
   constraints stay in the output, and box /\ rest => dropped).  The
   bucket invariants make this cheap: after normalization every
   single-variable constraint has coefficient one, so each variable's
   box is read straight off its own bucket, and a candidate [dir + c >= 0]
   is redundant when the minimum of [dir] over the box is at least [-c].
   Skipped when any constraint is red: dropping an implied constraint is
   sound there too, but it would perturb which red constraints the
   red/black gists report, and the screen's value is in the black-only
   kill/cover hot path anyway. *)
let interval_screen (iter_buckets : (Termkey.key -> bucket -> unit) -> unit) =
  let bounds : (int, Zint.t option ref * Zint.t option ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let tighten r better x =
    match !r with
    | None -> r := Some x
    | Some y -> if better x y then r := Some x
  in
  iter_buckets
    (fun key b ->
      match key with
      | [ (v, c1) ] when Zint.is_one c1 ->
        let lo, hi =
          match Hashtbl.find_opt bounds (Var.id v) with
          | Some cell -> cell
          | None ->
            let cell = (ref None, ref None) in
            Hashtbl.add bounds (Var.id v) cell;
            cell
        in
        (* key direction is [v]: lo slot (clo) reads v >= -clo, hi slot
           (chi) reads v <= chi, eq slot (ceq) pins v = -ceq *)
        (match b.eq with
         | Some (ceq, _) ->
           tighten lo Zint.( > ) (Zint.neg ceq);
           tighten hi Zint.( < ) (Zint.neg ceq)
         | None -> ());
        (match b.lo with
         | Some (clo, _) -> tighten lo Zint.( > ) (Zint.neg clo)
         | None -> ());
        (match b.hi with
         | Some (chi, _) -> tighten hi Zint.( < ) chi
         | None -> ())
      | _ -> ());
  let bound_for v sign_pos =
    match Hashtbl.find_opt bounds (Var.id v) with
    | None -> None
    | Some (lo, hi) -> if sign_pos then !lo else !hi
  in
  (* minimum of [sign * dir] over the box, [None] when unbounded below *)
  let box_min key sign =
    List.fold_left
      (fun acc (v, c) ->
        match acc with
        | None -> None
        | Some m ->
          let q = if sign then c else Zint.neg c in
          (match bound_for v (Zint.sign q > 0) with
           | None -> None
           | Some b -> Some (Zint.add m (Zint.mul q b))))
      (Some Zint.zero) key
  in
  let stats = Tuning.Stats.current () in
  iter_buckets
    (fun key b ->
      if b.eq = None && not b.contra && List.length key > 1 then begin
        (match b.lo with
         | Some (clo, _) ->
           (* dir + clo >= 0 redundant when min(dir) + clo >= 0 *)
           (match box_min key true with
            | Some m when Zint.(Zint.add m clo >= Zint.zero) ->
              b.lo <- None;
              stats.Tuning.Stats.pruned_interval <-
                stats.Tuning.Stats.pruned_interval + 1
            | _ -> ())
         | None -> ());
        match b.hi with
        | Some (chi, _) ->
          (* -dir + chi >= 0 redundant when min(-dir) + chi >= 0 *)
          (match box_min key false with
           | Some m when Zint.(Zint.add m chi >= Zint.zero) ->
             b.hi <- None;
             stats.Tuning.Stats.pruned_interval <-
               stats.Tuning.Stats.pruned_interval + 1
           | _ -> ())
        | None -> ()
      end)

(* Below this many constraints the screen's bookkeeping costs more than
   the pruning saves; Fourier-Motzkin growth only bites on larger
   systems, so small problems skip straight to emission. *)
let interval_screen_threshold = 10

let simplify (t : t) : simplified =
  if t.simp && !Tuning.hashcons then Ok t
  else begin
  let exception Bail in
  let has_red = ref false in
  (* Bucket store.  With [Tuning.hashcons] on, buckets live in a list
     probed by the precomputed canonical-key hash (an int compare; the
     full key comparison runs only on a hash match) — at the handful of
     distinct directions a problem carries, a linear scan of unboxed int
     hashes beats both a hash table (allocation-heavy for tiny problems)
     and the ablated path's balanced map over coefficient-vector keys,
     whose every probe walks O(log n) full list comparisons.  Emission
     sorts the few resulting buckets back into key order so both paths
     produce identical output, down to constraint order. *)
  let use_h = !Tuning.hashcons in
  let kmap : bucket KeyMap.t ref = ref KeyMap.empty in
  let hlist : (int * Termkey.key * bucket) list ref = ref [] in
  let new_bucket () = { lo = None; hi = None; eq = None; contra = false } in
  let get_bucket key khash =
    if use_h then begin
      let rec find = function
        | [] ->
          let b = new_bucket () in
          hlist := (khash, key, b) :: !hlist;
          b
        | (h, k, b) :: rest ->
          if h = khash && Termkey.compare_key k key = 0 then b
          else find rest
      in
      find !hlist
    end
    else
      match KeyMap.find_opt key !kmap with
      | Some b -> b
      | None ->
        let b = new_bucket () in
        kmap := KeyMap.add key b !kmap;
        b
  in
  let sorted = ref None in
  let iter_buckets f =
    if use_h then begin
      let l =
        match !sorted with
        | Some l -> l
        | None ->
          let l =
            List.sort
              (fun (_, a, _) (_, b, _) -> Termkey.compare_key a b)
              !hlist
          in
          sorted := Some l;
          l
      in
      List.iter (fun (_, k, b) -> f k b) l
    end
    else KeyMap.iter f !kmap
  in
  let consider c0 =
    match Constr.normalize c0 with
    | Constr.Tauto -> ()
    | Constr.Contra -> raise Bail
    | Constr.Ok c ->
      if Constr.is_red c then has_red := true;
      let e = Constr.expr c in
      let key, flipped, khash = Linexpr.canon e in
      let b = get_bucket key khash in
      let cst = Linexpr.constant e in
      (match Constr.kind c with
       | Constr.Eq ->
         (* normalize equality constant to the unflipped direction *)
         let cst = if flipped then Zint.neg cst else cst in
         (match b.eq with
          | Some (c', _) when not (Zint.equal c' cst) -> b.contra <- true
          | Some _ -> ()
          | None -> b.eq <- Some (cst, c))
       | Constr.Geq ->
         let slot_is_lo = not flipped in
         let update slot =
           match slot with
           | Some (c', _) when Zint.(cst < c') -> Some (cst, c)
           | None -> Some (cst, c)
           | some -> some
         in
         if slot_is_lo then b.lo <- update b.lo else b.hi <- update b.hi)
  in
  match List.iter consider t.cs with
  | exception Bail -> Contra
  | () ->
    if
      !Tuning.redundancy && t.grown && (not !has_red)
      && List.length t.cs >= interval_screen_threshold
    then interval_screen iter_buckets;
    let out = ref [] in
    let emit c = out := c :: !out in
    let check_bucket _key b =
      if b.contra then raise Bail;
      match b.eq with
      | Some (ceq, c) ->
        (* equality dir = -ceq; bounds dir >= -clo, dir <= chi must agree *)
        (match b.lo with
         | Some (clo, _) when Zint.(Zint.neg ceq < Zint.neg clo) -> raise Bail
         | _ -> ());
        (match b.hi with
         | Some (chi, _) when Zint.(Zint.neg ceq > chi) -> raise Bail
         | _ -> ());
        emit c
      | None ->
        (match b.lo, b.hi with
         | Some (clo, cl), Some (chi, ch) ->
           (* -clo <= dir <= chi *)
           if Zint.(chi < Zint.neg clo) then raise Bail
           else if Zint.equal chi (Zint.neg clo) then
             (* touching bounds: dir = chi, an equality *)
             emit
               (Constr.eq
                  ~color:(Constr.combine_colors (Constr.color cl) (Constr.color ch))
                  (Constr.expr cl))
           else begin
             emit cl;
             emit ch
           end
         | Some (_, cl), None -> emit cl
         | None, Some (_, ch) -> emit ch
         | None, None -> ())
    in
    (match iter_buckets check_bucket with
     | exception Bail -> Contra
     | () ->
       let r = mk (List.rev !out) in
       r.simp <- true;
       Ok r)
  end

let pp fmt t =
  let open Format in
  if t.cs = [] then pp_print_string fmt "TRUE"
  else begin
    pp_print_string fmt "{ ";
    let first = ref true in
    List.iter
      (fun c ->
        if not !first then pp_print_string fmt " && ";
        first := false;
        Constr.pp fmt c)
      t.cs;
    pp_print_string fmt " }"
  end

let to_string t = Format.asprintf "%a" pp t
