(** Affine expressions: a constant plus a linear combination of variables
    with exact integer coefficients. *)

type t

val zero : t
val const : Zint.t -> t
val of_int : int -> t

val term : Zint.t -> Var.t -> t
(** [term c v] is [c * v]. *)

val var : Var.t -> t

val coeff : t -> Var.t -> Zint.t
(** Zero when the variable does not occur. *)

val constant : t -> Zint.t
val mem : t -> Var.t -> bool
val is_const : t -> bool

val set_coeff : t -> Var.t -> Zint.t -> t
val add_term : t -> Zint.t -> Var.t -> t
val add_const : t -> Zint.t -> t

val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val scale : Zint.t -> t -> t
val scale_int : int -> t -> t

val subst : t -> Var.t -> t -> t
(** [subst e v def] replaces [v] by [def] in [e]. *)

val vars : t -> Var.Set.t
val iter_terms : (Var.t -> Zint.t -> unit) -> t -> unit
val fold_terms : (Var.t -> Zint.t -> 'a -> 'a) -> t -> 'a -> 'a
val num_terms : t -> int
val exists_term : (Var.t -> Zint.t -> bool) -> t -> bool

val content : t -> Zint.t
(** Gcd of the variable coefficients (not the constant); zero for a
    constant expression. *)

val divexact : t -> Zint.t -> t
val map_coeffs : (Zint.t -> Zint.t) -> t -> t
(** Applies to the coefficients {e and} the constant. *)

val eval : (Var.t -> Zint.t) -> t -> Zint.t

val compare : t -> t -> int
val compare_terms : t -> t -> int
(** Linear parts only (ignoring the constants): equal iff parallel with
    the same scale. *)

val equal : t -> t -> bool

val hash : t -> int
(** Structural hash (constant included).  Cached on the expression while
    {!Tuning.hashcons} is on. *)

val canon : t -> (Var.t * Zint.t) list * bool * int
(** [canon e] is [(key, flipped, khash)]: the linear part in ascending
    variable order with the leading coefficient made positive, whether
    the sign was flipped to achieve that, and a hash of the key.  Two
    expressions share a key iff their linear parts are equal or
    opposite.  Cached while {!Tuning.hashcons} is on. *)

val intern : t -> t
(** Return a physically shared representative of a structurally equal
    expression seen before (identity when {!Tuning.hashcons} is off).
    Purely an optimization: [equal] never depends on interning. *)

val dot : t -> t -> Zint.t
(** Inner product of the coefficient vectors (used by the gist fast
    checks). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
