(** Conjunctions of linear constraints: the basic object the Omega test
    manipulates.

    A problem denotes the set of assignments to its non-wildcard variables
    for which integer values of the wildcard variables exist satisfying
    every constraint.  After simplification and elimination, wildcards
    appear only in "inert congruence" position: a wildcard [s] occurring
    in exactly one equality [e + g*s = 0], denoting [e = 0 (mod g)]. *)

type t

type simplified = Contra | Ok of t

val trivial : t
(** The empty conjunction (all integer assignments). *)

val of_list : Constr.t list -> t
val constraints : t -> Constr.t list
val is_trivial : t -> bool

val add : Constr.t -> t -> t
val add_list : Constr.t list -> t -> t
val conj : t -> t -> t

val mark_grown : t -> unit
(** Hint that this problem just came out of a multiplicative
    Fourier-Motzkin step (the lower x upper cross product multiplied the
    inequality count): the next {!simplify} additionally runs the
    interval-redundancy screen on it.  Purely a performance hint — the
    screen is equivalence-preserving either way. *)

val eqs : t -> Constr.t list
val geqs : t -> Constr.t list
val vars : t -> Var.Set.t

val map_constraints : (Constr.t -> Constr.t) -> t -> t
val filter : (Constr.t -> bool) -> t -> t
val exists : (Constr.t -> bool) -> t -> bool
val for_all : (Constr.t -> bool) -> t -> bool

val subst : Var.t -> Linexpr.t -> t -> t
(** [subst v def t] replaces [v] by the affine expression [def] in every
    constraint. *)

val subst_colored : Var.t -> Linexpr.t -> Constr.color -> t -> t
(** Like {!subst}, but constraints mentioning the variable absorb the
    color of the equality driving the substitution (section 3.3.2's
    red/black tracking). *)

val occurrences : t -> Var.t -> int
(** Number of constraints mentioning the variable. *)

val eval : (Var.t -> Zint.t) -> t -> bool
(** Evaluate under an assignment (which must cover every variable,
    including wildcards). *)

val simplify : t -> simplified
(** Normalize every constraint (gcd reduction with integer tightening),
    drop tautologies and duplicates, keep only the tightest parallel
    bounds, promote touching opposite inequalities to equalities, and
    detect single- and two-constraint contradictions. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
