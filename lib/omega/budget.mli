(** Resource governance for the solver stack.

    Solver entry points run under an ambient {e meter} charged against
    the current {!limits}: elimination steps draw fuel, splinter
    construction and DNF expansion draw their own counters, and an
    optional wall-clock deadline bounds the whole query.  Exhausting any
    limit raises {!Exhausted}; the query boundary ({!run} / {!decide})
    turns that into a structured {!verdict} so no resource blowup ever
    escapes as an exception.

    Clients must map [Gave_up] to their sound conservative answer: a
    dependence is assumed live, a kill/cover/refinement is not proved, a
    doall is illegal, privatization is refused.  The solver is
    deterministic, so a query that completes under a tight budget
    returns the same verdict under any looser deadline-free budget:
    tightening can only turn [Proved]/[Disproved] into [Gave_up], never
    flip them.

    The meter is dynamically scoped and single-domain: solver queries
    must not be issued concurrently from several domains. *)

type reason = Fuel | Splinters | Disjuncts | Deadline | Injected

val reason_to_string : reason -> string

type verdict = Proved | Disproved | Gave_up of reason

val verdict_to_string : verdict -> string

exception Exhausted of reason
(** Raised inside the solver when the ambient meter blows a limit.
    Always caught by {!run}/{!decide}; escapes only code that enters the
    solver without a query boundary. *)

type limits = {
  fuel : int;  (** elimination / decision steps per query *)
  splinters : int;  (** splinter problems constructed per query *)
  disjuncts : int;  (** DNF clauses per formula *)
  deadline_ms : float option;  (** wall-clock bound per query *)
}

val default : limits
val limits : limits ref

val le : limits -> limits -> bool
(** [le a b]: [a] is no larger than [b] in every dimension, i.e. any
    query that completes under [a] completes under [b].  A finite
    deadline is tighter than none. *)

val with_limits : limits -> (unit -> 'a) -> 'a
(** Run with {!limits} temporarily replaced. *)

(** {1 Metering (solver internals)} *)

type meter

val with_meter : (meter -> 'a) -> 'a
(** Reuse the ambient meter when already inside a query, otherwise
    install a fresh one for the duration of the call.  Solver entry
    points wrap their body in this. *)

val tick : meter -> unit
(** Charge one step of work; raises {!Exhausted} on a blown limit. *)

val add_splinters : meter -> int -> unit
val disjunct_limit : unit -> int

(** {1 Query boundaries (clients)} *)

val run : ?label:string -> (unit -> 'a) -> ('a, reason) result
(** Run [f] as one governed query: counts it, draws a fault when
    injection is active, meters the work, and maps {!Exhausted} to
    [Error].  Nested inside another [run] it shares the outer meter and
    adds no telemetry. *)

val decide : ?label:string -> (unit -> bool) -> verdict

(** {1 Fault injection} *)

val set_fault_injection : seed:int -> rate:float -> unit
(** Force a deterministic pseudo-random fraction [rate] of query
    boundaries to [Gave_up Injected] before any solver work runs.
    Verdict caches must be bypassed while active. *)

val clear_fault_injection : unit -> unit
val fault_injection_active : unit -> bool

(** {1 Telemetry} *)

module Telemetry : sig
  type t = {
    mutable queries : int;
    mutable gave_up_fuel : int;
    mutable gave_up_splinters : int;
    mutable gave_up_disjuncts : int;
    mutable gave_up_deadline : int;
    mutable gave_up_injected : int;
    mutable peak_fuel : int;
    mutable peak_splinters : int;
    mutable worst_label : string;
    mutable worst_fuel : int;
  }

  val stats : t
  val reset : unit -> unit
  val gave_up_total : unit -> int

  val summary : unit -> string
  (** One human-readable line for CLI output. *)

  val to_json : unit -> string
end
