(** Resource governance for the solver stack.

    Solver entry points run under an ambient {e meter} charged against
    the current limits: elimination steps draw fuel, splinter
    construction and DNF expansion draw their own counters, and an
    optional wall-clock deadline bounds the whole query.  Exhausting any
    limit raises {!Exhausted}; the query boundary ({!run} / {!decide})
    turns that into a structured {!verdict} so no resource blowup ever
    escapes as an exception.

    Clients must map [Gave_up] to their sound conservative answer: a
    dependence is assumed live, a kill/cover/refinement is not proved, a
    doall is illegal, privatization is refused.  The solver is
    deterministic, so a query that completes under a tight budget
    returns the same verdict under any looser deadline-free budget:
    tightening can only turn [Proved]/[Disproved] into [Gave_up], never
    flip them.

    Limits, the meter and telemetry live in a {e per-domain world}
    (Domain.DLS): every domain can run queries concurrently without a
    lock, and nested entries within one domain share the outermost
    query's meter.  Per-domain telemetry merges deterministically with
    {!Telemetry.merge_into} ({!Depend.Par} does this at every
    query-set boundary).  Note that systhreads share their domain's
    world — petitd session threads must ship solver work to worker
    domains rather than run it in place. *)

type reason = Fuel | Splinters | Disjuncts | Deadline | Injected | Incomplete
(** [Incomplete]: the query ran only incomplete backends (e.g. the
    screen-only portfolio) and none of them could decide it.  Unlike the
    resource reasons it signals a capability gap, not an exhausted
    meter, but clients degrade identically: map it to the sound
    conservative answer. *)

val reason_to_string : reason -> string

type verdict = Proved | Disproved | Gave_up of reason

val verdict_to_string : verdict -> string

exception Exhausted of reason
(** Raised inside the solver when the ambient meter blows a limit.
    Always caught by {!run}/{!decide}; escapes only code that enters the
    solver without a query boundary. *)

type limits = {
  fuel : int;  (** elimination / decision steps per query *)
  splinters : int;  (** splinter problems constructed per query *)
  disjuncts : int;  (** DNF clauses per formula *)
  deadline_ms : float option;  (** wall-clock bound per query *)
}

val default : limits

val current_limits : unit -> limits
(** The current domain's limits. *)

val le : limits -> limits -> bool
(** [le a b]: [a] is no larger than [b] in every dimension, i.e. any
    query that completes under [a] completes under [b].  A finite
    deadline is tighter than none. *)

val with_limits : limits -> (unit -> 'a) -> 'a
(** Run with the current domain's limits temporarily replaced. *)

val with_wall_deadline : float option -> (unit -> 'a) -> 'a
(** Run with the current domain's {e wall deadline} — an absolute
    [Unix.gettimeofday] instant bounding a whole request — temporarily
    replaced.  Every meter created inside enforces whichever of the
    per-query deadline and the wall deadline comes first, so a query
    started late inside a deadlined request gets a correspondingly
    smaller time budget and degrades to [Gave_up Deadline] like any
    other blown limit.  petitd installs the per-request [deadline_ms]
    here before solving. *)

val wall_deadline : unit -> float option
(** The current domain's wall deadline, if any. *)

val wall_expired : unit -> bool
(** Whether the current domain's wall deadline has already passed
    ([false] when none is set).  Checked at admission points that want
    to refuse work outright rather than degrade query by query. *)

(** {1 Metering (solver internals)} *)

type meter

val with_meter : (meter -> 'a) -> 'a
(** Reuse the ambient meter when already inside a query, otherwise
    install a fresh one for the duration of the call.  Solver entry
    points wrap their body in this. *)

val tick : meter -> unit
(** Charge one step of work; raises {!Exhausted} on a blown limit. *)

val add_splinters : meter -> int -> unit
val disjunct_limit : unit -> int

(** {1 Query boundaries (clients)} *)

val run :
  ?label:string -> ?fault_key:(unit -> string) -> (unit -> 'a) ->
  ('a, reason) result
(** Run [f] as one governed query: counts it, draws a fault when
    injection is active and [fault_key] is given, meters the work, and
    maps {!Exhausted} to [Error].  Nested inside another [run] it shares
    the outer meter and adds no telemetry.

    [fault_key] (forced only while injection is active) must identify
    the query by {e content} — e.g. a canonical serialization of the
    problems — so the fault decision is a pure function of (seed, key),
    independent of scheduling and of which domain runs the query.
    Queries without a key never fault. *)

val decide :
  ?label:string -> ?fault_key:(unit -> string) -> (unit -> bool) -> verdict

(** {1 Fault injection} *)

val set_fault_injection : seed:int -> rate:float -> unit
(** Force a deterministic pseudo-random fraction [rate] of keyed query
    boundaries to [Gave_up Injected] before any solver work runs.
    Verdict caches must be bypassed while active.  The configuration is
    process-wide and read-only once parallel work is in flight: set it
    before fanning out. *)

val clear_fault_injection : unit -> unit
val fault_injection_active : unit -> bool

(** {1 Telemetry} *)

module Telemetry : sig
  type t = {
    mutable queries : int;
    mutable gave_up_fuel : int;
    mutable gave_up_splinters : int;
    mutable gave_up_disjuncts : int;
    mutable gave_up_deadline : int;
    mutable gave_up_injected : int;
    mutable gave_up_incomplete : int;
    mutable peak_fuel : int;
    mutable peak_splinters : int;
    mutable worst_label : string;
    mutable worst_fuel : int;
  }

  val make : unit -> t
  (** A fresh all-zero record. *)

  val current : unit -> t
  (** The current domain's telemetry record. *)

  val reset : unit -> unit
  (** Replace the current domain's record with a fresh one. *)

  val exchange : t -> t
  (** Swap the current domain's record for the given one and return the
      previous record (the scoping primitive behind [Depend.Par]). *)

  val merge_into : t -> t -> unit
  (** [merge_into dst src]: fold [src] into [dst].  Counters add, peaks
      max, and the worst-query cell joins by (higher fuel, then least
      label) — a commutative, associative combine, so per-domain records
      merge to the same totals in any order. *)

  val total_of : t -> int
  val gave_up_total : unit -> int

  val summary : unit -> string
  (** One human-readable line for CLI output (current domain). *)

  val to_json : unit -> string
end

(** {1 Scoped worlds (parallel tasks)} *)

val scoped : limits:limits -> (unit -> 'a) -> 'a * Telemetry.t
(** Run [f] under the given limits with a fresh meter slot and a fresh
    telemetry record, restoring the previous world state afterwards;
    returns [f]'s result and the telemetry the scope accumulated.  This
    is how a parallel task adopts its submitter's budget on whatever
    domain it lands on, and how its telemetry is harvested for the
    deterministic merge. *)
