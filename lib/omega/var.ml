(* Variables of Omega problems.

   Three kinds, mirroring the roles in the paper:
   - [Input]: iteration variables and other named problem variables.
   - [Sym]: symbolic constants (loop-invariant scalars, the [Sym] set of the
     paper's notation table).
   - [Wild]: existentially quantified wildcards introduced by exact equality
     elimination and splintering; never visible to clients. *)

type kind = Input | Sym | Wild

type t = { id : int; name : string; kind : kind }

(* Allocation is domain-local so that any domain can mint variables
   without a lock: each domain draws ids from its own 2^40-wide slot
   ([slot lsl 40 + 1 ..]), claimed once per domain from an atomic slot
   counter.  The main domain is pinned to slot 0 at module
   initialization, so a single-domain run allocates exactly the ids the
   global-counter implementation did.

   Two variables minted on different domains therefore never collide,
   and within one domain ids still increase in allocation order — the
   property everything downstream leans on (constraint emission order,
   canonical memo keys, the elimination tie-break all depend only on
   the {e relative} id order of variables that co-occur in a problem,
   and co-occurring variables are minted by one domain). *)

let slot_bits = 40

type alloc = { mutable next : int }

let next_slot = Atomic.make 0

let alloc_key =
  Domain.DLS.new_key (fun () ->
      { next = Atomic.fetch_and_add next_slot 1 lsl slot_bits })
(* i.e. (slot) lsl slot_bits: application binds tighter than [lsl] *)

(* Pin the main domain to slot 0. *)
let () = ignore (Domain.DLS.get alloc_key)

let next_id () =
  let a = Domain.DLS.get alloc_key in
  a.next <- a.next + 1;
  a.next

let fresh ?(kind = Input) name = { id = next_id (); name; kind }

let fresh_wild () =
  let id = next_id () in
  (* name from the slot-local ordinal: stable, small, and identical to
     the pre-domain-local numbering on the main domain *)
  { id; name = Printf.sprintf "_w%d" (id land ((1 lsl slot_bits) - 1)); kind = Wild }

let id t = t.id
let name t = t.name
let kind t = t.kind
let is_wild t = t.kind = Wild
let is_sym t = t.kind = Sym

let compare a b = compare a.id b.id
let equal a b = a.id = b.id
let hash t = t.id

let pp fmt t = Format.pp_print_string fmt t.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
