(* Public API of the Omega test library.

   The Omega test [Pug91] is an exact integer programming algorithm based
   on Fourier-Motzkin variable elimination; this library adds the PLDI'92
   extensions: exact projection with splintering, gists, implication
   testing, and a Presburger formula layer. *)

module Var = Var
module Linexpr = Linexpr
module Constr = Constr
module Problem = Problem
module Budget = Budget
module Tuning = Tuning
module Elim = Elim
module Gist = Gist
module Presburger = Presburger
module Screen = Screen
module Portfolio = Portfolio

(* Does the conjunction have an integer solution? *)
let satisfiable = Elim.satisfiable

(* Exact projection onto the variables satisfying [keep]: the union of the
   returned problems (reading their wildcards existentially) has exactly
   the same integer solutions for the kept variables as the input. *)
let project = Elim.project

(* Approximate projections: the dark shadow under-approximates, the real
   shadow over-approximates (section 3 of the paper). *)
let project_dark = Elim.project_dark
let project_real = Elim.project_real

(* Is [p => q] a tautology? *)
let implies = Gist.implies

(* [gist p ~given:q]: minimal subset of [p]'s constraints carrying the
   information not already in [q]. *)
let gist = Gist.gist

let simplify = Problem.simplify

(* Per-piece summary of a problem projected onto a single variable [v]:
   strongest lower/upper bounds plus congruence constraints. *)
type piece = {
  lo : Zint.t option;
  hi : Zint.t option;



  sat_at : Zint.t -> bool;
  cong_lcm : Zint.t;
}

let analyze_piece v (q : Problem.t) : piece =
  let lo = ref None and hi = ref None in
  let congs = ref [] in
  List.iter
    (fun c ->
      let e = Constr.expr c in
      let cv = Linexpr.coeff e v in
      match Constr.kind c with
      | Constr.Eq ->
        if Var.Set.exists Var.is_wild (Linexpr.vars e) then
          congs := e :: !congs
        else if not (Zint.is_zero cv) then begin
          (* cv * v + const = 0; after normalization cv is +-1 *)
          let x = Zint.divexact (Zint.neg (Linexpr.constant e)) cv in
          lo := Some (match !lo with None -> x | Some l -> Zint.max l x);
          hi := Some (match !hi with None -> x | Some h -> Zint.min h x)
        end
      | Constr.Geq ->
        if Zint.sign cv > 0 then begin
          let b = Zint.cdiv (Zint.neg (Linexpr.constant e)) cv in
          lo := Some (match !lo with None -> b | Some l -> Zint.max l b)
        end
        else if Zint.sign cv < 0 then begin
          let b = Zint.fdiv (Linexpr.constant e) (Zint.neg cv) in
          hi := Some (match !hi with None -> b | Some h -> Zint.min h b)
        end)
    (Problem.constraints q);
  let wild_gcd e =
    Var.Set.fold
      (fun w acc -> if Var.is_wild w then Zint.gcd acc (Linexpr.coeff e w) else acc)
      (Linexpr.vars e) Zint.zero
  in
  let sat_at x =
    List.for_all
      (fun e ->
        let residual =
          Linexpr.constant
            (Var.Set.fold
               (fun w acc -> Linexpr.set_coeff acc w Zint.zero)
               (Var.Set.filter Var.is_wild (Linexpr.vars e))
               (Linexpr.subst e v (Linexpr.const x)))
        in
        Zint.divisible residual (wild_gcd e))
      !congs
  in
  let cong_lcm =
    List.fold_left (fun acc e -> Zint.lcm acc (wild_gcd e)) Zint.one !congs
  in
  { lo = !lo; hi = !hi; sat_at; cong_lcm }

(* Smallest value of [v] subject to [p]. *)
let minimize (p : Problem.t) (v : Var.t) :
    [ `Unsat | `Unbounded | `Min of Zint.t ] =
  let keep u = Var.equal u v in
  let pieces = List.map (analyze_piece v) (Elim.project ~keep p) in
  (* a piece with no lower bound is nonempty (congruences have arbitrarily
     small solutions), hence unbounded below *)
  if List.exists (fun pc -> pc.lo = None) pieces then `Unbounded
  else begin
    let piece_min pc =
      match pc.lo with
      | None -> assert false
      | Some l ->
        (* scan at most lcm-of-moduli values upward from the lower bound *)
        let rec scan x n =
          if Zint.(n > pc.cong_lcm) then None
          else if (match pc.hi with Some h -> Zint.(x > h) | None -> false)
          then None (* piece empty below hi *)
          else if pc.sat_at x then Some x
          else scan (Zint.succ x) (Zint.succ n)
        in
        scan l Zint.one
    in
    match List.filter_map piece_min pieces with
    | [] -> `Unsat
    | x :: rest -> `Min (List.fold_left Zint.min x rest)
  end

let maximize (p : Problem.t) (v : Var.t) :
    [ `Unsat | `Unbounded | `Max of Zint.t ] =
  (* maximize v = -(minimize -v): substitute v := -v' *)
  let v' = Var.fresh (Var.name v ^ "_negated") in
  let p' = Problem.subst v (Linexpr.term Zint.minus_one v') p in
  match minimize p' v' with
  | `Unsat -> `Unsat
  | `Unbounded -> `Unbounded
  | `Min x -> `Max (Zint.neg x)
