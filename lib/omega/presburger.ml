(* A decision procedure for Presburger formulas (section 3.2).

   The paper combines projection (existential elimination), satisfiability
   and implication tests to decide the formulas dependence analysis needs.
   We implement the general recursive procedure: quantifier elimination by
   exact projection over a DNF, with congruence atoms ([m] divides [e])
   closing the language under negation of projected formulas.  This decides
   all of Presburger arithmetic (with the usual non-elementary worst case);
   the dependence analyses mostly go through the efficient special cases
   (dark-shadow implication, gists), falling back to this when needed. *)

(* DNF expansion is charged against the ambient Budget limits: growing
   past the disjunct limit raises [Budget.Exhausted Disjuncts], which
   the query boundary ([Budget.run]) turns into a [Gave_up] verdict.
   Callers that use the procedure to *prove* facts (kill/cover/
   refinement tests) treat a give-up as "not proved". *)

type t =
  | True
  | False
  | Atom of Constr.t
  | Cong of Zint.t * Linexpr.t (* m | e, with m >= 2 *)
  | And of t list
  | Or of t list
  | Not of t
  | Exists of Var.t list * t
  | Forall of Var.t list * t

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let tt = True
let ff = False
let atom c = Atom c
let ge e1 e2 = Atom (Constr.ge e1 e2)
let gt e1 e2 = Atom (Constr.gt e1 e2)
let le e1 e2 = Atom (Constr.le e1 e2)
let lt e1 e2 = Atom (Constr.lt e1 e2)
let eq e1 e2 = Atom (Constr.eq2 e1 e2)
let geq0 e = Atom (Constr.geq e)
let eq0 e = Atom (Constr.eq e)

let and_ fs =
  let fs =
    List.concat_map (function And gs -> gs | True -> [] | f -> [ f ]) fs
  in
  if List.mem False fs then False
  else match fs with [] -> True | [ f ] -> f | fs -> And fs

let or_ fs =
  let fs =
    List.concat_map (function Or gs -> gs | False -> [] | f -> [ f ]) fs
  in
  if List.mem True fs then True
  else match fs with [] -> False | [ f ] -> f | fs -> Or fs

let not_ = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let exists vs f =
  match vs, f with
  | [], _ -> f
  | _, True -> True
  | _, False -> False
  | _ -> Exists (vs, f)

let forall vs f =
  match vs, f with
  | [], _ -> f
  | _, True -> True
  | _, False -> False
  | _ -> Forall (vs, f)

let implies_ f g = or_ [ not_ f; g ]

let cong m e =
  let m = Zint.abs m in
  if Zint.is_zero m then eq0 e
  else if Zint.is_one m then True
  else Cong (m, e)

(* ------------------------------------------------------------------ *)
(* Problem <-> formula                                                 *)
(* ------------------------------------------------------------------ *)

(* Inert congruence equalities come back from projection as equalities
   mentioning a wildcard; convert them to [Cong] atoms so the formula layer
   never sees wildcards. *)
let of_constr (c : Constr.t) : t =
  match Constr.kind c with
  | Constr.Geq -> Atom c
  | Constr.Eq -> (
    let e = Constr.expr c in
    match
      Var.Set.choose_opt (Var.Set.filter Var.is_wild (Linexpr.vars e))
    with
    | None -> Atom c
    | Some w ->
      let g = Zint.abs (Linexpr.coeff e w) in
      let rest = Linexpr.set_coeff e w Zint.zero in
      cong g rest)

let of_problem (p : Problem.t) : t =
  and_ (List.map of_constr (Problem.constraints p))

let problem_of_conjuncts (atoms : t list) : Problem.t =
  let constr_of = function
    | Atom c -> c
    | Cong (m, e) ->
      let sigma = Var.fresh_wild () in
      Constr.eq (Linexpr.add_term e m sigma)
    | _ -> invalid_arg "Presburger.problem_of_conjuncts: not an atom"
  in
  Problem.of_list (List.map constr_of atoms)

(* ------------------------------------------------------------------ *)
(* Negation of quantifier-free formulas                                *)
(* ------------------------------------------------------------------ *)

let rec neg_qf = function
  | True -> False
  | False -> True
  | Atom c -> (
    match Constr.kind c with
    | Constr.Geq -> Atom (Constr.negate_geq c)
    | Constr.Eq ->
      let e = Constr.expr c in
      or_
        [
          geq0 (Linexpr.add_const (Linexpr.neg e) Zint.minus_one);
          geq0 (Linexpr.add_const e Zint.minus_one);
        ])
  | Cong (m, e) ->
    (* not (m | e)  ==  m | e - r for some 1 <= r < m *)
    let rec residues r acc =
      if Zint.(r >= m) then acc
      else
        residues (Zint.succ r)
          (cong m (Linexpr.add_const e (Zint.neg r)) :: acc)
    in
    or_ (residues Zint.one [])
  | And fs -> or_ (List.map neg_qf fs)
  | Or fs -> and_ (List.map neg_qf fs)
  | Not f -> f
  | Exists _ | Forall _ ->
    invalid_arg "Presburger.neg_qf: quantified formula"

(* ------------------------------------------------------------------ *)
(* DNF of quantifier-free formulas                                     *)
(* ------------------------------------------------------------------ *)

(* DNF expansion, producing each satisfiable-so-far disjunct as an
   already-simplified problem.  Carrying problems (rather than atom
   lists) through the [And] cross product means the per-level
   contradiction pruning builds on the previous level's normalization
   instead of re-deriving every disjunct from scratch; the constraints'
   cached normal forms and canonical keys then make the per-level
   resimplification cheap.  Congruence atoms materialize their wildcard
   once, at the leaf. *)
let dnf_problems (f : t) : Problem.t list =
  let simp p =
    match Problem.simplify p with
    | Problem.Contra -> None
    | Problem.Ok p -> Some p
  in
  let rec go f : Problem.t list =
    match f with
    | True -> [ Problem.trivial ]
    | False -> []
    | Atom _ | Cong _ ->
      Option.to_list (simp (problem_of_conjuncts [ f ]))
    | Not g -> go (neg_qf g)
    | Or fs -> List.concat_map go fs
    | And fs ->
      List.fold_left
        (fun acc g ->
          let dg = go g in
          (* prune contradictory conjuncts as we go and keep the expansion
             bounded *)
          let next =
            List.concat_map
              (fun p -> List.filter_map (fun p' -> simp (Problem.conj p p')) dg)
              acc
          in
          if List.length next > Budget.disjunct_limit () then
            raise (Budget.Exhausted Budget.Disjuncts);
          next)
        [ Problem.trivial ] fs
    | Exists _ | Forall _ -> invalid_arg "Presburger.dnf: quantified formula"
  in
  go f

(* Each disjunct as its list of atoms (wildcard equalities folding back
   into [Cong]); kept for callers that inspect the expansion. *)
let dnf (f : t) : t list list =
  List.map
    (fun p -> List.map of_constr (Problem.constraints p))
    (dnf_problems f)

let problems_of_qf (f : t) : Problem.t list = dnf_problems f

(* ------------------------------------------------------------------ *)
(* Quantifier elimination and decision                                 *)
(* ------------------------------------------------------------------ *)

(* Eliminate the quantifiers of [f]; the result is quantifier-free over the
   free variables of [f] (plus [Cong] atoms). *)
let rec qe (f : t) : t =
  match f with
  | True | False | Atom _ | Cong _ -> f
  | And fs -> and_ (List.map qe fs)
  | Or fs -> or_ (List.map qe fs)
  | Not g -> neg_qf (qe g)
  | Exists (vs, g) ->
    let g = qe g in
    let keep v = not (List.exists (Var.equal v) vs) in
    (* drop integer-unsatisfiable disjuncts before projecting: pruning here
       prevents the negation of the projected result from exploding *)
    let problems =
      List.filter Elim.satisfiable (problems_of_qf g)
    in
    let pieces =
      List.concat_map (fun p -> Elim.project ~keep p) problems
    in
    if List.length pieces > Budget.disjunct_limit () then
      raise (Budget.Exhausted Budget.Disjuncts);
    or_ (List.map of_problem pieces)
  | Forall (vs, g) -> neg_qf (qe (Exists (vs, neg_qf (qe g))))

let satisfiable (f : t) : bool =
  List.exists Elim.satisfiable (problems_of_qf (qe f))

let valid (f : t) : bool = not (satisfiable (not_ f))

let implies f g = valid (implies_ f g)

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "TRUE"
  | False -> Format.pp_print_string fmt "FALSE"
  | Atom c -> Constr.pp fmt c
  | Cong (m, e) -> Format.fprintf fmt "%a | (%a)" Zint.pp m Linexpr.pp e
  | And fs -> pp_list fmt "&&" fs
  | Or fs -> pp_list fmt "||" fs
  | Not f -> Format.fprintf fmt "!(%a)" pp f
  | Exists (vs, f) ->
    Format.fprintf fmt "(exists %s: %a)"
      (String.concat ", " (List.map Var.name vs))
      pp f
  | Forall (vs, f) ->
    Format.fprintf fmt "(forall %s: %a)"
      (String.concat ", " (List.map Var.name vs))
      pp f

and pp_list fmt op fs =
  Format.pp_print_string fmt "(";
  List.iteri
    (fun i f ->
      if i > 0 then Format.fprintf fmt " %s " op;
      pp fmt f)
    fs;
  Format.pp_print_string fmt ")"

let to_string f = Format.asprintf "%a" pp f
