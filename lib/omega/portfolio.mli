(** The tiered decision portfolio: per-query cascade of backends.

    A query is posed as a list of {e tiers}, each an attempt that may
    answer [Proved]/[Disproved] or pass with [Unknown]; the first
    definite answer wins.  The standard plan cascades the incomplete
    O(constraints) {!Screen} (tier 0) into the dark-shadow fast path
    (tier 1) and finally the complete Presburger procedure (tier 2).
    Because every tier is sound, the cascade changes which procedure
    decides a query — never the verdict.

    The cascade runs inside a {!Budget} query boundary; when the plan
    runs out of tiers with no definite answer (the screen-only backend
    on a query beyond its screens), the query gives up with
    {!Budget.Incomplete}, flowing through the same conservative
    degradation paths as a blown fuel limit. *)

type backend = Omega | Screen | Cascade
(** [Omega]: the status-quo pipeline (fast path + complete procedure).
    [Screen]: tier 0 alone — incomplete; undecided queries give up.
    [Cascade]: screen first, then the [Omega] tiers (the default). *)

val backend : backend ref
(** Process-wide backend selection (the [--backend] CLI knob).  Set
    before fanning out parallel work; worker domains read it freely. *)

val backend_to_string : backend -> string
val backend_of_string : string -> backend option

type tier = Tier_screen | Tier_fast | Tier_complete

val tier_to_string : tier -> string
(** ["screen"], ["fast"], ["complete"]. *)

val tier_of_string : string -> tier option

(** Per-domain tier telemetry, following the [Tuning.Stats] world
    discipline: hot-path increments are plain stores on the current
    domain's record; parallel scopes exchange in a fresh record and
    merge it back ({!Depend.Par}). *)
module Stats : sig
  type row = {
    mutable attempts : int;  (** times the tier was consulted *)
    mutable decides : int;  (** times it returned a definite answer *)
    mutable elapsed : float;  (** seconds spent inside the tier *)
  }

  type t = {
    quick : row;
        (** the driver's structural section-4.5 screens — consulted
            before any solver query is even built *)
    screen : row;  (** tier 0: the incomplete {!Screen} backend *)
    fast : row;  (** tier 1: dark-shadow implication fast path *)
    complete : row;  (** tier 2: complete Presburger procedure *)
  }

  val make : unit -> t
  val current : unit -> t
  val reset : unit -> unit

  val exchange : t -> t
  (** Swap the current domain's record, returning the previous one. *)

  val merge_into : t -> t -> unit
  (** Fold [src] into [dst] (all sums — commutative). *)

  val row_of : t -> tier -> row

  val summary : unit -> string
  (** One human-readable per-tier breakdown line (current domain). *)
end

(** Cross-backend differential oracle.  While enabled, every query an
    incomplete tier decides is replayed through the complete tier of the
    same plan and the verdicts compared; contradictions are recorded
    (thread-safe) for the bench to assert empty.  Expensive — bench use
    only. *)
module Oracle : sig
  type divergence = {
    label : string;
    tier : tier;  (** the incomplete tier that answered *)
    got : bool;  (** its verdict *)
    want : bool;  (** the complete procedure's verdict *)
  }

  val enable : unit -> unit
  val disable : unit -> unit
  val active : unit -> bool

  val checks : unit -> int
  (** Verdict pairs compared since the last {!enable}. *)

  val divergences : unit -> divergence list
end

val plan :
  ?screen:(unit -> Screen.answer) ->
  ?fast:(unit -> Screen.answer) ->
  complete:(unit -> Screen.answer) ->
  unit ->
  (tier * (unit -> Screen.answer)) list
(** Assemble the tier list for the current {!backend}: [Omega] takes
    fast + complete, [Screen] the screen alone, [Cascade] all three.
    The screen tier is additionally gated by {!Tuning.screen}, the fast
    tier by the caller passing one (analyses gate it on their own
    [use_fast_path] switch).  A [Screen] backend with no screen closure
    yields an empty plan, i.e. an immediate [Gave_up Incomplete]. *)

val decide :
  ?label:string ->
  ?fault_key:(unit -> string) ->
  (tier * (unit -> Screen.answer)) list ->
  Budget.verdict * tier option
(** Run the tiers in order inside a {!Budget} query boundary, returning
    the verdict and the tier that decided ([None] for [Gave_up]).  Tier
    attempts/decides/elapsed are recorded in {!Stats}; an exhausted plan
    raises — and the boundary catches — [Exhausted Incomplete]. *)
