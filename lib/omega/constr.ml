(* Individual constraints: [expr = 0] or [expr >= 0].

   The [color] field supports the paper's red/black scheme (section 3.3.2):
   when computing [gist p given q] combined with projection, constraints
   from [p] are tagged [Red] and constraints from [q] are tagged [Black];
   derived constraints are red iff any parent is red.

   [norm] remembers that [normalize] already returned this very
   constraint unchanged, so the simplifier's repeated passes stop
   recomputing gcds over untouched constraints (used while
   [Tuning.hashcons] is on; normalization is idempotent, so the flag is
   only ever a cache). *)

type kind = Eq | Geq
type color = Black | Red

type t = { kind : kind; expr : Linexpr.t; color : color; mutable norm : bool }

let make ?(color = Black) kind expr = { kind; expr; color; norm = false }
let eq ?color e = make ?color Eq e
let geq ?color e = make ?color Geq e

(* e1 >= e2 *)
let ge ?color e1 e2 = geq ?color (Linexpr.sub e1 e2)
let le ?color e1 e2 = geq ?color (Linexpr.sub e2 e1)
let gt ?color e1 e2 = geq ?color (Linexpr.add_const (Linexpr.sub e1 e2) Zint.minus_one)
let lt ?color e1 e2 = gt ?color e2 e1
let eq2 ?color e1 e2 = eq ?color (Linexpr.sub e1 e2)

let kind t = t.kind
let expr t = t.expr
let color t = t.color
let is_red t = t.color = Red
let with_color color t = { t with color }

let combine_colors a b = if a = Red || b = Red then Red else Black

(* Negation of a [Geq]: not (e >= 0) is (-e - 1 >= 0).  Equalities have no
   single-constraint negation (it is a disjunction); the Presburger layer
   handles them.  Negation preserves the coefficient gcd and (at gcd 1)
   the tightened constant, so normalization status carries over. *)
let negate_geq t =
  assert (t.kind = Geq);
  { t with expr = Linexpr.add_const (Linexpr.neg t.expr) Zint.minus_one }

type norm_result = Tauto | Contra | Ok of t

(* Normalize: divide by the gcd of the coefficients; for inequalities the
   constant is tightened with floor division (an integer-only step); for
   equalities a non-divisible constant is a contradiction. *)
let normalize t =
  if t.norm && !Tuning.hashcons then Ok t
  else begin
    let e = t.expr in
    if Linexpr.is_const e then begin
      let c = Linexpr.constant e in
      match t.kind with
      | Eq -> if Zint.is_zero c then Tauto else Contra
      | Geq -> if Zint.sign c >= 0 then Tauto else Contra
    end
    else begin
      let g = Linexpr.content e in
      let reduced =
        if Zint.is_one g then Some t
        else
          let c = Linexpr.constant e in
          match t.kind with
          | Eq ->
            if Zint.divisible c g then
              Some { t with expr = Linexpr.divexact e g }
            else None
          | Geq ->
            let e' =
              Linexpr.map_coeffs (fun x -> Zint.fdiv x g) e
              (* map_coeffs applies to the constant too: floor is exactly
                 the integer tightening we want for the constant, and is
                 exact for the coefficients *)
            in
            Some { t with expr = e' }
      in
      match reduced with
      | None -> Contra
      | Some t' ->
        (* Interning every normalized expression was measured to cost
           more than the sharing bought back; the hash-consing that pays
           here is the cached canonical key plus this flag, which makes
           the simplifier's repeated passes O(1) on untouched
           constraints. *)
        t'.norm <- true;
        Ok t'
    end
  end

let subst t v def =
  { t with expr = Linexpr.subst t.expr v def; norm = false }

let vars t = Linexpr.vars t.expr
let mentions t v = Linexpr.mem t.expr v

let eval env t =
  let v = Linexpr.eval env t.expr in
  match t.kind with Eq -> Zint.is_zero v | Geq -> Zint.sign v >= 0

(* [implies a b]: does constraint [a] alone imply [b]?  Only detects the
   parallel case (identical linear parts): [e + c1 >= 0] implies
   [e + c2 >= 0] iff [c2 >= c1]; an equality implies anything its two
   component inequalities imply. *)
let implies a b =
  let ca = Linexpr.constant a.expr and cb = Linexpr.constant b.expr in
  let same = Linexpr.compare_terms a.expr b.expr = 0 in
  let opposite =
    Linexpr.compare_terms (Linexpr.neg a.expr) b.expr = 0
  in
  match a.kind, b.kind with
  | Eq, Eq -> same && Zint.equal ca cb
  | Eq, Geq ->
    (same && Zint.(cb >= ca)) || (opposite && Zint.(cb >= Zint.neg ca))
  | Geq, Geq -> same && Zint.(cb >= ca)
  | Geq, Eq -> false

let compare a b =
  if a == b then 0
  else
    let c = compare a.kind b.kind in
    if c <> 0 then c else Linexpr.compare a.expr b.expr

let equal a b = compare a b = 0

let pp fmt t =
  match t.kind with
  | Eq -> Format.fprintf fmt "%a = 0" Linexpr.pp t.expr
  | Geq -> Format.fprintf fmt "%a >= 0" Linexpr.pp t.expr

let to_string t = Format.asprintf "%a" pp t
