(** Ablation switches and counters for the solver's hot paths (DESIGN.md
    section 9).  Every gated transform is equivalence-preserving: flipping
    a switch changes time, never results. *)

val order : bool ref
(** Pugh's elimination-variable ordering heuristic (exact eliminations
    first, then the smallest lower-bounds x upper-bounds product).  Off:
    the first eliminable variable in id order. *)

val redundancy : bool ref
(** Interval-subsumption pruning in {!Problem.simplify}. *)

val hashcons : bool ref
(** Cached hashes / canonical keys on expressions, cached normalization
    on constraints, interning, and memo-key serialization caches. *)

val screen : bool ref
(** Tier-0 incomplete screen of the decision portfolio: when [false], a
    [Cascade] backend degenerates to the plain Omega path (fast path +
    complete procedure).  Verdict-preserving either way. *)

val set : order:bool -> redundancy:bool -> hashcons:bool -> unit
(** Sets the three solver-core switches; {!screen} is independent. *)

val all_on : unit -> unit
(** All four switches on (the production configuration). *)

module Stats : sig
  type t = {
    mutable fm_eliminations : int;
    mutable fm_exact : int;
    mutable fm_split : int;
    mutable pruned_interval : int;
    mutable intern_hits : int;
    mutable intern_misses : int;
  }

  val make : unit -> t

  val current : unit -> t
  (** The current domain's counter record (hot-path increments are
      plain stores; cross-domain totals come from {!merge_into}). *)

  val reset : unit -> unit

  val exchange : t -> t
  (** Swap the current domain's record, returning the previous one. *)

  val merge_into : t -> t -> unit
  (** Fold [src] counters into [dst] (all sums — commutative). *)

  val summary : unit -> string
  (** One human-readable line for CLI output (current domain). *)
end
