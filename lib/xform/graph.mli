(** Statement-level dependence graph over the driver's live/dead
    classification: the bridge from analysis results to transformations.

    Nodes are the assignment statements of the program; edges are the
    apparent dependences of all three kinds (flow, anti, output), each
    annotated with its live/dead status, its direction vectors under the
    standard and the extended analysis, and the levels at which it can be
    carried.  The graph also exposes the loop tree (each loop with its
    AST node id), which is what the parallelization legality tests are
    phrased over, and DOT / JSON emitters for external tooling. *)

type status = Live | Dead of Driver.dead_reason

type edge = {
  e_src : Ir.access;
  e_dst : Ir.access;
  e_kind : Deps.kind;
  e_status : status;
      (** flow status from {!Driver.analyze}; anti/output status from
          {!Driver.classify_kind} (always [Live] via {!of_result}) *)
  e_std_vectors : Dirvec.t list;  (** vectors of the standard analysis *)
  e_vectors : Dirvec.t list;
      (** vectors after extended refinement (= [e_std_vectors] when
          refinement did not change them) *)
  e_std_levels : int list;
      (** levels the dependence can be carried at under the standard
          vectors; 0 = loop-independent *)
  e_levels : int list;  (** same, under the refined vectors *)
  e_loops : int list;
      (** AST node ids of the loops common to both endpoints,
          outermost first; level [k] is carried by [List.nth e_loops (k-1)] *)
}

type node = {
  n_stmt : int;  (** statement id *)
  n_label : string;
  n_array : string;  (** array written by the statement *)
  n_loops : int list;  (** enclosing loop AST node ids, outermost first *)
}

(** A loop of the program, as the unit of parallelization legality. *)
type loop_info = {
  l_node : int;  (** AST node id (the key used in [e_loops]) *)
  l_var : string;
  l_depth : int;  (** 1-based nesting depth *)
  l_outer : string list;  (** enclosing loop variables, outermost first *)
  l_stmts : string list;  (** labels of the statements inside, in order *)
}

type t = {
  prog : Ir.program;
  nodes : node list;  (** in textual order *)
  edges : edge list;
  loops : loop_info list;  (** in textual order *)
}

val build : ?in_bounds:bool -> ?quick:bool -> Ir.program -> t
(** Run {!Driver.analyze} for the flow dependences and
    {!Driver.classify_kind} for the anti and output dependences, and
    assemble the graph. *)

val of_result : Ir.program -> Driver.result -> t
(** Assemble a graph from an existing analysis result; anti and output
    dependences are taken unclassified (all live). *)

val carried_levels : Dirvec.t list -> int list
(** Levels a dependence with the given vectors can be carried at: level
    [k >= 1] when some vector admits zero distance at every level before
    [k] and a positive distance at [k]; level 0 when some vector admits
    the all-zero distance (loop-independent). *)

val carrier : edge -> int -> int option
(** [carrier e node] is the level (1-based) at which loop [node] could
    carry [e], or [None] when [node] is not a common loop of the
    endpoints. *)

val carried_at : use_std:bool -> edge -> int -> bool
(** Can the edge be carried by the loop with the given AST node id, under
    the standard ([use_std:true]) or extended vectors? *)

val under_loop : Ir.access -> int -> bool
(** Is the access nested (directly or transitively) inside the loop with
    the given AST node id? *)

val live : edge -> bool
val kind_edges : t -> Deps.kind -> edge list
val kind_string : Deps.kind -> string
val vectors_string : Dirvec.t list -> string

val status_label : status -> string
(** [""], [" killed by X"], [" covered by X"]. *)

val common_loop_nodes : Ir.access -> Ir.access -> int list
(** AST node ids of the loops common to two accesses, outermost first. *)

val to_dot : t -> string
(** GraphViz rendering: one box per statement, clustered by loop nest;
    flow edges solid, anti dashed, output dotted; dead edges gray and
    labeled with their killer/cover. *)

val to_json : t -> string
(** Machine-readable rendering of nodes, loops and edges. *)
