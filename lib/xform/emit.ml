(* Annotated re-rendering: the IR statement tree (which carries the loop
   node ids the verdicts are keyed by) printed back in surface syntax,
   with doall / private / serial annotations. *)

let find_verdict (vs : Parallel.verdict list) node_id =
  List.find_opt
    (fun (v : Parallel.verdict) -> v.Parallel.v_loop.Graph.l_node = node_id)
    vs

let expr_string e = Format.asprintf "%a" Ast.pp_expr e

let annotate (g : Graph.t) (vs : Parallel.verdict list) : string =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* declarations, via the AST printer *)
  Buffer.add_string buf
    (Ast.program_to_string { g.Graph.prog.Ir.source with Ast.stmts = [] });
  let rec emit indent (s : Ir.istmt) =
    let pad = String.make indent ' ' in
    match s with
    | Ir.IFor { node_id; var; lo; hi; step; body; _ } ->
      let head =
        Printf.sprintf "%s %s := %s to %s%s do"
          (match find_verdict vs node_id with
           | Some v when v.Parallel.v_ext_doall -> "doall"
           | _ -> "for")
          var (expr_string lo) (expr_string hi)
          (if step = 1 then "" else Printf.sprintf " by %d" step)
      in
      (* directive comment carrying the executor's plan for this loop in
         machine-readable clauses; a comment so the program re-parses *)
      (match find_verdict vs node_id with
      | Some v when v.Parallel.v_ext_doall && v.Parallel.v_private <> [] ->
        let clauses =
          List.concat_map
            (fun (p : Privatize.priv) ->
              (Printf.sprintf "private(%s)" p.Privatize.p_array
              :: (if p.Privatize.p_copy_in then
                    [ Printf.sprintf "copyin(%s)" p.Privatize.p_array ]
                  else []))
              @
              if p.Privatize.p_finalize then
                [ Printf.sprintf "lastprivate(%s)" p.Privatize.p_array ]
              else [])
            v.Parallel.v_private
        in
        pf "%s// !$ doall %s\n" pad (String.concat " " clauses)
      | _ -> ());
      let note =
        match find_verdict vs node_id with
        | Some v when v.Parallel.v_ext_doall ->
          if v.Parallel.v_private = [] then ""
          else
            Printf.sprintf "  // private(%s)"
              (String.concat "; "
                 (List.map Privatize.to_string v.Parallel.v_private))
        | Some v ->
          let shown = ref [] in
          List.iter
            (fun (b : Parallel.blocker) ->
              if List.length !shown < 3 then
                shown := Parallel.blocker_string b :: !shown)
            v.Parallel.v_ext_blockers;
          let extra =
            List.length v.Parallel.v_ext_blockers - List.length !shown
          in
          Printf.sprintf "  // serial: %s%s"
            (String.concat "; " (List.rev !shown))
            (if extra > 0 then Printf.sprintf "; +%d more" extra else "")
        | None -> ""
      in
      pf "%s%s%s\n" pad head note;
      List.iter (emit (indent + 2)) body;
      pf "%sendfor\n" pad
    | Ir.IAssign { label; lhs = array, subs; rhs; _ } ->
      pf "%s%s: %s := %s;\n" pad label
        (expr_string (Ast.Ref (array, subs)))
        (expr_string rhs)
  in
  List.iter (emit 0) g.Graph.prog.Ir.stmts;
  Buffer.contents buf
