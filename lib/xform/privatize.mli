(** Array privatization (the paper's section-1 motivation for eliminating
    false dependences): an array is privatizable in a loop when every
    flow dependence on it carried by that loop is dead (killed/covered)
    under the extended analysis - no value actually flows between
    iterations through the array, so each iteration can work on its own
    copy.  Privatization removes the array's loop-carried storage (anti
    and output) dependences, which is what unlocks [doall]
    parallelization of loops the standard analysis must run serially.

    Privatization here means array expansion with per-element last-write
    finalization: each iteration writes a private copy, reads not
    produced by the iteration come from the original array (copy-in),
    and after the loop each element written by any iteration takes the
    value of the textually-last iteration that wrote it (finalize) -
    which equals the sequential result exactly because no value crosses
    iterations. *)

type priv = {
  p_array : string;
  p_loop : Graph.loop_info;
  p_dead_carried : Graph.edge list;
      (** the carried flow dependences the extended analysis killed -
          the evidence that privatization is sound *)
  p_copy_in : bool;
      (** some read of the array inside the loop may be upward-exposed
          (fed from outside the loop or uninitialized) *)
  p_finalize : bool;
      (** the array's final values may be observed after the loop, so the
          per-element last write must be copied out *)
}

val privatizable : Graph.t -> Graph.loop_info -> string -> bool
(** Is the array written inside the loop with no {e live} flow dependence
    on it carried by the loop (under the extended analysis)? *)

val analyze : Graph.t -> Graph.loop_info -> priv list
(** The privatizable arrays of one loop that actually need privatization:
    they have at least one dependence carried by the loop.  Arrays with a
    live carried flow dependence are never returned (the value genuinely
    crosses iterations); arrays without carried dependences need no
    privatization. *)

val to_string : priv -> string
