(* Array privatization over the dependence graph.

   Soundness: "no live flow dependence on [a] carried by [L]" is exactly
   "no value flows between two different iterations of [L] through [a]"
   (the e2e property tests check live flows cover all dynamic value
   flows).  So each iteration's reads of [a] are produced inside the same
   iteration or come from before the loop; a per-iteration private copy
   with copy-in preserves every read, and per-element last-write
   finalization reproduces the sequential final state. *)

type priv = {
  p_array : string;
  p_loop : Graph.loop_info;
  p_dead_carried : Graph.edge list;
  p_copy_in : bool;
  p_finalize : bool;
}

let accesses_of_array (g : Graph.t) array =
  Array.to_list g.Graph.prog.Ir.accesses
  |> List.filter (fun (a : Ir.access) -> a.Ir.array = array)

let written_in (g : Graph.t) (l : Graph.loop_info) array =
  List.exists
    (fun (a : Ir.access) ->
      a.Ir.kind = Ir.Write && Graph.under_loop a l.Graph.l_node)
    (accesses_of_array g array)

let carried_edges_on (g : Graph.t) (l : Graph.loop_info) array =
  List.filter
    (fun (e : Graph.edge) ->
      e.Graph.e_src.Ir.array = array
      && Graph.carried_at ~use_std:false e l.Graph.l_node)
    g.Graph.edges

let privatizable (g : Graph.t) (l : Graph.loop_info) array =
  written_in g l array
  && not
       (List.exists
          (fun (e : Graph.edge) ->
            e.Graph.e_kind = Deps.Flow && Graph.live e)
          (carried_edges_on g l array))

(* A read is upward-exposed when no write covers it from inside the loop:
   approximated as "fed by a live flow dependence whose source is outside
   the loop, or fed by no flow dependence at all" (the latter covers
   reads of never-written elements). *)
let copy_in_needed (g : Graph.t) (l : Graph.loop_info) array =
  let reads =
    List.filter
      (fun (a : Ir.access) ->
        a.Ir.kind = Ir.Read && Graph.under_loop a l.Graph.l_node)
      (accesses_of_array g array)
  in
  List.exists
    (fun (r : Ir.access) ->
      let feeders =
        List.filter
          (fun (e : Graph.edge) ->
            e.Graph.e_kind = Deps.Flow
            && e.Graph.e_dst.Ir.acc_id = r.Ir.acc_id
            && Graph.live e)
          g.Graph.edges
      in
      feeders = []
      || List.exists
           (fun (e : Graph.edge) ->
             not (Graph.under_loop e.Graph.e_src l.Graph.l_node))
           feeders)
    reads

(* The loop's values of the array may be observed later when something
   after the loop reads it, or when nothing after the loop redefines it
   (its final state then escapes the program). *)
let finalize_needed (g : Graph.t) (l : Graph.loop_info) array =
  let inside_writes =
    List.filter
      (fun (a : Ir.access) ->
        a.Ir.kind = Ir.Write && Graph.under_loop a l.Graph.l_node)
      (accesses_of_array g array)
  in
  let after (a : Ir.access) =
    (not (Graph.under_loop a l.Graph.l_node))
    && List.exists (fun w -> Ir.textually_before w a) inside_writes
  in
  let accs = accesses_of_array g array in
  let reads_after =
    List.exists (fun (a : Ir.access) -> a.Ir.kind = Ir.Read && after a) accs
  in
  let writes_after =
    List.exists (fun (a : Ir.access) -> a.Ir.kind = Ir.Write && after a) accs
  in
  reads_after || not writes_after

let analyze (g : Graph.t) (l : Graph.loop_info) : priv list =
  let arrays =
    List.filter_map
      (fun (e : Graph.edge) ->
        if Graph.carried_at ~use_std:false e l.Graph.l_node then
          Some e.Graph.e_src.Ir.array
        else None)
      g.Graph.edges
    |> List.sort_uniq Stdlib.compare
  in
  List.filter_map
    (fun array ->
      if not (privatizable g l array) then None
      else
        Some
          {
            p_array = array;
            p_loop = l;
            p_dead_carried =
              List.filter
                (fun (e : Graph.edge) ->
                  e.Graph.e_kind = Deps.Flow && not (Graph.live e))
                (carried_edges_on g l array);
            p_copy_in = copy_in_needed g l array;
            p_finalize = finalize_needed g l array;
          })
    arrays

let to_string p =
  let flags =
    (if p.p_copy_in then [ "copy-in" ] else [])
    @ if p.p_finalize then [ "finalize" ] else []
  in
  p.p_array
  ^ match flags with [] -> "" | fs -> ": " ^ String.concat ", " fs
