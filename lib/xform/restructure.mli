(** Dependence-licensed source restructuring: the IR-level half of the
    optimizer (DESIGN.md section 14; the bytecode half is [Lang.Opt]).

    Three transformations, each licensed by the dependence graph the
    Omega-test driver produces — never by syntax alone:

    - {b loop fusion} (gated by [Opt.restructure]): adjacent sibling
      loops with syntactically equal bounds and step fuse after
      alpha-renaming the second loop's variable.  Legality is checked on
      the {e trial-fused} program's own graph: the fusion is refused if
      any dependence (any kind, live or dead) runs from a second-loop
      statement to a first-loop statement — exactly the dependences the
      original order forbids to reverse.
    - {b loop interchange} (gated by [Opt.restructure]): a perfect
      2-nest with rectangular inner bounds interchanges when no refined
      direction vector is [(+, -)] at the two levels under an all-zero
      prefix (the classic permutation hazard), and a profit heuristic
      agrees: interchange hoists a [doall] inner loop outward (chunk
      coarsening), or improves last-subscript locality.
    - {b write-kill deletion} (gated by [Opt.writekill]): an assignment
      is deleted when every flow dependence out of its write is dead
      (no read observes its values) and some other write {e terminates}
      it ([Analyses.terminates], section 4.3 — every cell it writes is
      overwritten later), so the final store is unchanged.

    All passes re-run semantic analysis and the dependence driver on
    each trial, so a transformation is only committed with a fresh
    graph as witness.  Statements are pre-labeled so identities survive
    restructuring. *)

type report = {
  x_fused : int;  (** loop pairs fused *)
  x_interchanged : int;  (** nests interchanged *)
  x_killed : int;  (** assignments deleted *)
}

val empty_report : report

val prelabel : Ast.program -> Ast.program
(** Give every unlabeled assignment an explicit fresh label (so the
    labels survive restructuring instead of being renumbered by
    [Sema]).  Idempotent; user labels are kept. *)

val optimize : Ast.program -> Ast.program * report
(** Apply the enabled passes (fusion, then interchange, then
    write-kill) to a fixpoint with bounded rounds.  A program [Sema]
    cannot analyze is returned unchanged.  The result is always
    observably equivalent: same interpreter trace modulo deleted dead
    stores, same final store. *)

val interchange_hazard : Graph.t -> outer:int -> inner:int -> bool
(** The permutation test, exposed for the refusal unit tests: is there
    any direction vector (refined, over any edge of any kind or status)
    with an all-zeros-allowed prefix, a [+]-allowed entry at [outer]'s
    level and a [-]-allowed entry at [inner]'s level?  [outer]/[inner]
    are AST loop node ids that must sit at adjacent levels. *)
