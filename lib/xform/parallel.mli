(** Per-loop [doall] legality, side by side for the standard and the
    extended analysis - the paper's headline claim made executable.

    A loop can run its iterations in parallel ([doall]) when no
    dependence forces an order between two different iterations, i.e. no
    dependence is {e carried} by the loop:

    - under the {b standard} analysis every apparent dependence (flow,
      anti, output) must be respected, carried at the levels its
      unrefined direction vectors admit;
    - under the {b extended} analysis only {e live} dependences
      constrain the loop (dead flow dependences carry no value, and dead
      storage dependences are transitively enforced through their
      killers), carried at the levels the {e refined} vectors admit; a
      carried {e storage} (anti/output) dependence on a privatizable
      array is discharged by privatizing that array
      (see {!Privatize}). *)

type blocker = {
  b_edge : Graph.edge;
  b_level : int;  (** the level at which the loop carries the edge *)
}

type verdict = {
  v_loop : Graph.loop_info;
  v_std_doall : bool;
  v_std_blockers : blocker list;  (** apparent dependences carried *)
  v_ext_doall : bool;
  v_ext_blockers : blocker list;
      (** live carried dependences not discharged by privatization *)
  v_private : Privatize.priv list;
      (** privatizations used to reach the extended verdict *)
}

val analyze : Graph.t -> verdict list
(** One verdict per loop of the program, in textual order. *)

val count_doall : verdict list -> int * int
(** [(standard, extended)] numbers of parallelizable loops. *)

val render_report : verdict list -> string
(** The side-by-side table, with blocker details for serial loops. *)

val loop_path : Graph.loop_info -> string
val blocker_string : blocker -> string
