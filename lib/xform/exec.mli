(** Parallel [doall] execution over OCaml 5 domains — the paper's payoff
    actually run: loops the analysis marks [doall] execute their
    iterations across a fixed domain pool, and the final array state
    must be bit-identical to serial execution (checked by the
    differential harness in [test/test_exec.ml] and by the [speedup]
    bench suite).

    Each parallel region cuts the loop's iteration range into chunks
    claimed dynamically by the pool.  A chunk executes against an
    overlay store: writes go to a chunk-private table, reads fall
    through to the (frozen) global state — the runtime {e copy-in} of a
    privatized array's first-read-before-written elements.  After the
    region the chunk tables merge back in iteration order, giving each
    element its sequentially-last writer ({e finalization}). *)

(** {1 Plans} *)

type side = Std | Ext

type plan = {
  pl_side : side;
  pl_doall : (int * string list) list;
      (** loop AST node of each legal doall -> arrays its verdict
          privatizes (always empty on the [Std] side) *)
}

val plan : side -> Parallel.verdict list -> plan
(** The loops one analysis side may run in parallel.  At execution time
    the {e outermost} dynamically-reached plan loops become parallel
    regions; plan loops nested inside them run serially within a
    chunk. *)

val doall_count : plan -> int

(** {1 Domain pool} *)

type pool

val create_pool : ?size:int -> unit -> pool
(** A fixed pool of [size] workers ([Domain.recommended_domain_count]
    by default, minimum 1): [size - 1] spawned domains plus the calling
    domain, which participates in every region. *)

val pool_size : pool -> int

val shutdown : pool -> unit
(** Park no more: join the spawned domains.  The pool is unusable
    afterwards. *)

val with_pool : ?size:int -> (pool -> 'a) -> 'a

(** {1 Execution} *)

type mem = (Interp.loc * int) list
(** Final array state: every written location with its value, sorted —
    directly comparable across executions ([init] supplies unwritten
    locations identically on all sides). *)

type stats = {
  x_domains : int;
  x_regions : int;  (** dynamic parallel-region entries *)
  x_chunks : int;  (** chunks executed across all regions *)
  x_inline : int;
      (** regions run serially because their static work estimate fell
          below the parallelism threshold (VM backend only) *)
  x_fallbacks : int;
      (** regions re-executed serially after a worker raised: the first
          exception is captured, the remaining chunks cancelled, the
          chunk-private state discarded, and the region re-run serially
          on the submitting thread *)
}

val run_serial :
  ?init:(string -> int list -> int) ->
  Ir.program ->
  syms:(string * int) list ->
  mem
(** The baseline: the program executed by {!Interp.exec_stmt} with a
    single hash-table store and no tracing. *)

val run_parallel :
  ?pool:pool ->
  ?chunks_per_worker:int ->
  ?init:(string -> int list -> int) ->
  ?no_copy_in:bool ->
  ?chunk_fault:(int -> unit) ->
  plan ->
  Ir.program ->
  syms:(string * int) list ->
  mem * stats
(** Execute with the plan's doall loops parallelized over the pool (a
    private pool is created and shut down when none is passed).
    [chunks_per_worker] (default 4) controls how finely each region is
    cut for dynamic load balancing.  [no_copy_in] disables the global
    fall-through for privatized arrays — {b testing only}, it breaks
    first-read-before-write iterations by design.

    A worker exception never deadlocks the pool: the first exception is
    captured, remaining chunks are cancelled, the chunk overlays (which
    never touched the global store) are discarded, and the region is
    re-executed serially on the submitting thread ([x_fallbacks] counts
    these), so deterministic program faults re-raise there with exact
    serial semantics.  [chunk_fault] is a {b testing-only} hook called
    with each chunk index before the chunk runs; raising from it
    simulates a faulting worker.
    @raise Interp.Runtime_error as serial execution would. *)

(** {1 Compiled (VM) backend}

    The same execution model over bytecode and flat memory
    ({!Lang.Compile} / {!Lang.Vm}) instead of the interpreter and
    overlay hashtables: no hashing, boxing or [loc] allocation on the
    hot path.  Chunk slabs subsume the overlay stores — copy-in is a
    blit prologue into the slab, finalization merges written slab cells
    back in chunk order.  Programs with opaque (non-affine) subscripts
    or bounds raise {!Lang.Compile.Unsupported}; fall back to the
    interpreter paths above. *)

val default_par_threshold : int

val compile_plan : plan -> Ir.program -> syms:(string * int) list -> Compile.unit_
(** Compile with the plan's doall loops as parallel regions.
    @raise Lang.Compile.Unsupported on non-affine programs. *)

val run_serial_vm :
  ?init:(string -> int list -> int) ->
  Ir.program ->
  syms:(string * int) list ->
  Vm.t
(** Compile without a plan and run to completion on one domain. *)

val run_compiled_vm :
  ?pool:pool ->
  ?chunks_per_worker:int ->
  ?par_threshold:int ->
  ?init:(string -> int list -> int) ->
  ?no_copy_in:bool ->
  ?chunk_fault:(int -> unit) ->
  Compile.unit_ ->
  Vm.t * stats
(** Execute an already-compiled unit (fresh VM each call); regions
    dispatch over the pool as below.  This is the timed entry point of
    the [speedup] bench — compilation stays out of the measured run.
    On a worker fault the region's chunk slabs are discarded (they
    never merged into VM memory) and the VM runs the region serially in
    place, counted in [x_fallbacks].  [chunk_fault] as in
    {!run_parallel} — {b testing only}. *)

val run_parallel_vm :
  ?pool:pool ->
  ?chunks_per_worker:int ->
  ?par_threshold:int ->
  ?init:(string -> int list -> int) ->
  ?no_copy_in:bool ->
  ?chunk_fault:(int -> unit) ->
  plan ->
  Ir.program ->
  syms:(string * int) list ->
  Vm.t * stats
(** Execute compiled code with the plan's doall loops chunked over the
    pool.  A dynamic region whose static work estimate
    [trip * instructions-per-iteration] is below [par_threshold]
    (default {!default_par_threshold}) runs serially in place, counted
    in [x_inline] — this is what keeps hundreds of tiny regions
    (example6, wavefront2) from re-synchronizing the pool.
    [no_copy_in] skips the slab copy-in blit — {b testing only}. *)

(** {1 Differential comparison} *)

val equal_mem : mem -> mem -> bool

val diff_mem :
  mem -> mem -> (Interp.loc * int option * int option) list
(** Locations whose values differ (or exist on one side only). *)

val diff_string : (Interp.loc * int option * int option) list -> string

val loc_string : Interp.loc -> string
