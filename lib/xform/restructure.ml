(* Dependence-licensed fusion, interchange and write-kill deletion.
   See restructure.mli for the legality arguments. *)

type report = { x_fused : int; x_interchanged : int; x_killed : int }

let empty_report = { x_fused = 0; x_interchanged = 0; x_killed = 0 }

(* ------------------------------------------------------------------ *)
(* AST helpers                                                         *)
(* ------------------------------------------------------------------ *)

let rec labels_of_stmt acc (s : Ast.stmt) =
  match s with
  | Ast.Assign { label; _ } -> (
    match label with Some l -> l :: acc | None -> acc)
  | Ast.For { body; _ } -> List.fold_left labels_of_stmt acc body

let labels_of_stmts stmts = List.rev (List.fold_left labels_of_stmt [] stmts)

let rec expr_mentions v (e : Ast.expr) =
  match e with
  | Ast.Int _ -> false
  | Ast.Name s -> s = v
  | Ast.Neg a -> expr_mentions v a
  | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b) | Ast.Max (a, b)
  | Ast.Min (a, b) ->
    expr_mentions v a || expr_mentions v b
  | Ast.Ref (_, subs) -> List.exists (expr_mentions v) subs

(* [v] is mentioned (or re-bound, which we also refuse) in a statement *)
let rec stmt_mentions v (s : Ast.stmt) =
  match s with
  | Ast.Assign { lhs = _, subs; rhs; _ } ->
    List.exists (expr_mentions v) subs || expr_mentions v rhs
  | Ast.For { var; lo; hi; body; _ } ->
    var = v || expr_mentions v lo || expr_mentions v hi
    || List.exists (stmt_mentions v) body

let rec rename_expr v v' (e : Ast.expr) =
  match e with
  | Ast.Int _ -> e
  | Ast.Name s -> if s = v then Ast.Name v' else e
  | Ast.Neg a -> Ast.Neg (rename_expr v v' a)
  | Ast.Add (a, b) -> Ast.Add (rename_expr v v' a, rename_expr v v' b)
  | Ast.Sub (a, b) -> Ast.Sub (rename_expr v v' a, rename_expr v v' b)
  | Ast.Mul (a, b) -> Ast.Mul (rename_expr v v' a, rename_expr v v' b)
  | Ast.Max (a, b) -> Ast.Max (rename_expr v v' a, rename_expr v v' b)
  | Ast.Min (a, b) -> Ast.Min (rename_expr v v' a, rename_expr v v' b)
  | Ast.Ref (a, subs) -> Ast.Ref (a, List.map (rename_expr v v') subs)

let rec rename_stmt v v' (s : Ast.stmt) =
  match s with
  | Ast.Assign a ->
    let arr, subs = a.lhs in
    Ast.Assign
      {
        a with
        lhs = (arr, List.map (rename_expr v v') subs);
        rhs = rename_expr v v' a.rhs;
      }
  | Ast.For f ->
    (* candidate bodies that re-bind [v] are refused before renaming *)
    Ast.For
      {
        f with
        lo = rename_expr v v' f.lo;
        hi = rename_expr v v' f.hi;
        body = List.map (rename_stmt v v') f.body;
      }

let prelabel (p : Ast.program) =
  let used = Hashtbl.create 16 in
  let rec collect (s : Ast.stmt) =
    match s with
    | Ast.Assign { label = Some l; _ } -> Hashtbl.replace used l ()
    | Ast.Assign _ -> ()
    | Ast.For { body; _ } -> List.iter collect body
  in
  List.iter collect p.Ast.stmts;
  let ctr = ref 0 in
  let fresh () =
    let rec next () =
      incr ctr;
      let l = Printf.sprintf "s%d" !ctr in
      if Hashtbl.mem used l then next () else (Hashtbl.replace used l (); l)
    in
    next ()
  in
  let rec fill (s : Ast.stmt) =
    match s with
    | Ast.Assign ({ label = None; _ } as a) ->
      Ast.Assign { a with label = Some (fresh ()) }
    | Ast.Assign _ -> s
    | Ast.For f -> Ast.For { f with body = List.map fill f.body }
  in
  { p with Ast.stmts = List.map fill p.Ast.stmts }

let try_graph (p : Ast.program) : Graph.t option =
  match Graph.build (Sema.analyze p) with
  | g -> Some g
  | exception _ -> None

(* ------------------------------------------------------------------ *)
(* Fusion                                                              *)
(* ------------------------------------------------------------------ *)

let fusable (f1 : Ast.stmt) (f2 : Ast.stmt) =
  match (f1, f2) with
  | Ast.For a, Ast.For b -> a.step = b.step && a.lo = b.lo && a.hi = b.hi
  | _ -> false

(* Build the fused loop, or None when renaming is unsafe. *)
let mk_fused (f1 : Ast.stmt) (f2 : Ast.stmt) =
  match (f1, f2) with
  | Ast.For a, Ast.For b ->
    let rebinds var body =
      let rec binds (s : Ast.stmt) =
        match s with
        | Ast.Assign _ -> false
        | Ast.For f -> f.var = var || List.exists binds f.body
      in
      List.exists binds body
    in
    if rebinds a.var a.body || rebinds b.var b.body then None
    else if a.var = b.var then
      Some (Ast.For { a with body = a.body @ b.body })
    else if
      List.exists (stmt_mentions a.var) b.body
      (* a.var free in the second body would be captured *)
    then None
    else
      let body2 = List.map (rename_stmt b.var a.var) b.body in
      Some (Ast.For { a with body = a.body @ body2 })
  | _ -> None

(* Find the first non-refused fusable adjacent pair, returning the
   rewritten program plus the two bodies' labels (for the legality
   check) and a stable key naming the site. *)
let find_fusion ~refused (p : Ast.program) =
  let found = ref None in
  let rec scan stmts =
    match stmts with
    | (Ast.For a as s1) :: (Ast.For b as s2) :: rest
      when !found = None && fusable s1 s2 ->
      let key =
        "fuse:"
        ^ String.concat "," (labels_of_stmts [ s1 ])
        ^ "|"
        ^ String.concat "," (labels_of_stmts [ s2 ])
      in
      if Hashtbl.mem refused key then s1 :: scan (s2 :: rest)
      else begin
        match mk_fused s1 s2 with
        | Some fused ->
          found :=
            Some (key, labels_of_stmts a.body, labels_of_stmts b.body);
          fused :: rest
        | None ->
          Hashtbl.replace refused key ();
          s1 :: scan (s2 :: rest)
      end
    | Ast.For f :: rest when !found = None ->
      let body' = scan f.body in
      let s' = Ast.For { f with body = body' } in
      if !found <> None then s' :: rest else s' :: scan rest
    | s :: rest -> s :: scan rest
    | [] -> []
  in
  let stmts' = scan p.Ast.stmts in
  match !found with
  | None -> None
  | Some (key, ls1, ls2) -> Some ({ p with Ast.stmts = stmts' }, key, ls1, ls2)

(* Legal iff the trial program's graph has no dependence (any kind, any
   status) from a second-body statement to a first-body statement: in
   the original program every first-body instance ran before every
   second-body instance, so such an edge is an order reversal. *)
let fusion_legal (g : Graph.t) ~ls1 ~ls2 =
  let in_l1 = Hashtbl.create 8 and in_l2 = Hashtbl.create 8 in
  List.iter (fun l -> Hashtbl.replace in_l1 l ()) ls1;
  List.iter (fun l -> Hashtbl.replace in_l2 l ()) ls2;
  not
    (List.exists
       (fun (e : Graph.edge) ->
         Hashtbl.mem in_l2 e.e_src.Ir.label
         && Hashtbl.mem in_l1 e.e_dst.Ir.label)
       g.edges)

let fusion_pass p =
  let refused = Hashtbl.create 8 in
  let fused = ref 0 in
  let rec go p =
    match find_fusion ~refused p with
    | None -> p
    | Some (p_trial, key, ls1, ls2) -> (
      match try_graph p_trial with
      | Some g when fusion_legal g ~ls1 ~ls2 ->
        incr fused;
        go p_trial
      | _ ->
        Hashtbl.replace refused key ();
        go p)
  in
  let p = go p in
  (p, !fused)

(* ------------------------------------------------------------------ *)
(* Interchange                                                         *)
(* ------------------------------------------------------------------ *)

let allows_pos (e : Dirvec.entry) =
  (match e.Dirvec.sign with
  | Dirvec.Pos | Dirvec.NonNeg | Dirvec.Any -> true
  | _ -> false)
  && match e.Dirvec.hi with Some h -> h > 0 | None -> true

let allows_neg (e : Dirvec.entry) =
  (match e.Dirvec.sign with
  | Dirvec.Neg | Dirvec.NonPos | Dirvec.Any -> true
  | _ -> false)
  && match e.Dirvec.lo with Some l -> l < 0 | None -> true

let index_of x l =
  let rec go i = function
    | [] -> None
    | y :: rest -> if y = x then Some i else go (i + 1) rest
  in
  go 0 l

let interchange_hazard (g : Graph.t) ~outer ~inner =
  List.exists
    (fun (e : Graph.edge) ->
      match (index_of outer e.e_loops, index_of inner e.e_loops) with
      | Some k, Some k' when k' = k + 1 ->
        List.exists
          (fun (v : Dirvec.t) ->
            let arr = Array.of_list v in
            Array.length arr > k'
            &&
            let zero_prefix = ref true in
            for j = 0 to k - 1 do
              if not (Dirvec.entry_allows_zero arr.(j)) then
                zero_prefix := false
            done;
            !zero_prefix && allows_pos arr.(k) && allows_neg arr.(k'))
          e.e_vectors
      | _ -> false)
    g.edges

(* Locality: after interchange the old outer variable becomes the
   fastest-varying one, so count accesses whose last (stride-1)
   subscript tracks each variable. *)
let locality_gain (body : Ast.stmt list) ~outer_var ~inner_var =
  let cur = ref 0 and after = ref 0 in
  let last_sub subs =
    match List.rev subs with [] -> None | s :: _ -> Some s
  in
  let count subs =
    match last_sub subs with
    | None -> ()
    | Some s ->
      if expr_mentions inner_var s then incr cur;
      if expr_mentions outer_var s then incr after
  in
  let rec walk (s : Ast.stmt) =
    match s with
    | Ast.Assign { lhs = _, subs; rhs; _ } ->
      count subs;
      let rec exprs (e : Ast.expr) =
        match e with
        | Ast.Ref (_, rsubs) ->
          count rsubs;
          List.iter exprs rsubs
        | Ast.Neg a -> exprs a
        | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b) | Ast.Max (a, b)
        | Ast.Min (a, b) ->
          exprs a;
          exprs b
        | Ast.Int _ | Ast.Name _ -> ()
      in
      exprs rhs
    | Ast.For f -> List.iter walk f.body
  in
  List.iter walk body;
  !after > !cur

(* Find the first non-refused profitable-and-legal perfect 2-nest. *)
let find_interchange ~refused (g : Graph.t) verdicts (p : Ast.program) =
  let doall node =
    List.exists
      (fun (v : Parallel.verdict) ->
        v.v_loop.Graph.l_node = node && v.v_ext_doall)
      verdicts
  in
  let loop_node ~var ~labels =
    List.find_opt
      (fun (li : Graph.loop_info) -> li.l_var = var && li.l_stmts = labels)
      g.loops
  in
  let found = ref None in
  let rec scan stmts =
    match stmts with
    | Ast.For ({ body = [ Ast.For inner ]; _ } as outer) :: rest
      when !found = None ->
      let labels = labels_of_stmts inner.body in
      let key = "swap:" ^ outer.var ^ ":" ^ inner.var ^ ":"
                ^ String.concat "," labels
      in
      let rectangular =
        (not (expr_mentions outer.var inner.lo))
        && (not (expr_mentions outer.var inner.hi))
        && outer.var <> inner.var && labels <> []
      in
      let attempt =
        if Hashtbl.mem refused key || not rectangular then None
        else
          match (loop_node ~var:outer.var ~labels,
                 loop_node ~var:inner.var ~labels)
          with
          | Some lo_, Some li_
            when li_.Graph.l_depth = lo_.Graph.l_depth + 1 ->
            let onode = lo_.Graph.l_node and inode = li_.Graph.l_node in
            let profitable =
              (doall inode && not (doall onode))
              || ((not (doall onode && not (doall inode)))
                 && locality_gain inner.body ~outer_var:outer.var
                      ~inner_var:inner.var)
            in
            if profitable && not (interchange_hazard g ~outer:onode ~inner:inode)
            then
              Some
                (Ast.For
                   {
                     inner with
                     body = [ Ast.For { outer with body = inner.body } ];
                   })
            else None
          | _ -> None
      in
      (match attempt with
      | Some swapped ->
        found := Some key;
        swapped :: rest
      | None ->
        Hashtbl.replace refused key ();
        Ast.For outer :: scan rest)
    | Ast.For f :: rest when !found = None ->
      let body' = scan f.body in
      let s' = Ast.For { f with body = body' } in
      if !found <> None then s' :: rest else s' :: scan rest
    | s :: rest -> s :: scan rest
    | [] -> []
  in
  let stmts' = scan p.Ast.stmts in
  match !found with
  | None -> None
  | Some key -> Some ({ p with Ast.stmts = stmts' }, key)

let interchange_pass p =
  let refused = Hashtbl.create 8 in
  let swapped = ref 0 in
  let rec go p rounds =
    if rounds = 0 then p
    else
      match try_graph p with
      | None -> p
      | Some g -> (
        let verdicts = Parallel.analyze g in
        match find_interchange ~refused g verdicts p with
        | None -> p
        | Some (p', key) ->
          Hashtbl.replace refused key ();
          incr swapped;
          go p' (rounds - 1))
  in
  let p = go p 8 in
  (p, !swapped)

(* ------------------------------------------------------------------ *)
(* Write-kill deletion                                                 *)
(* ------------------------------------------------------------------ *)

let rec delete_labeled l stmts =
  match stmts with
  | [] -> []
  | Ast.Assign { label = Some l'; _ } :: rest when l' = l -> rest
  | Ast.For f :: rest ->
    let body' = delete_labeled l f.body in
    (* dropping a now-empty loop is sound: it had no other effect *)
    if body' = [] then delete_labeled l rest
    else Ast.For { f with body = body' } :: delete_labeled l rest
  | s :: rest -> s :: delete_labeled l rest

(* One deletion: a write none of whose values are observed (all flow
   edges out are dead) and which a later write terminates (section 4.3:
   every cell it writes is overwritten afterwards). *)
let find_kill (p : Ast.program) =
  match Sema.analyze p with
  | exception _ -> None
  | ir -> (
    match Graph.build ir with
    | exception _ -> None
    | g ->
      let ctx = Depend.Depctx.create ir in
      let writes = Ir.writes ir in
      let deletable (w : Ir.access) =
        let flows_live =
          List.exists
            (fun (e : Graph.edge) ->
              e.e_kind = Depend.Deps.Flow
              && e.e_src.Ir.acc_id = w.Ir.acc_id
              && Graph.live e)
            g.edges
        in
        (not flows_live)
        && List.exists
             (fun (w' : Ir.access) ->
               w'.Ir.stmt_id <> w.Ir.stmt_id
               && (match Depend.Analyses.terminates ctx ~src:w ~dst:w' with
                  | r -> r
                  | exception _ -> false))
             writes
      in
      List.find_map
        (fun (w : Ir.access) -> if deletable w then Some w.Ir.label else None)
        writes)

let writekill_pass p =
  let killed = ref 0 in
  let rec go p rounds =
    if rounds = 0 then p
    else
      match find_kill p with
      | None -> p
      | Some label ->
        incr killed;
        go { p with Ast.stmts = delete_labeled label p.Ast.stmts } (rounds - 1)
  in
  let p = go p 8 in
  (p, !killed)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let optimize (p : Ast.program) =
  let p = prelabel p in
  match try_graph p with
  | None -> (p, empty_report)
  | Some _ ->
    let p, fused, swapped =
      if !Opt.restructure then begin
        let p, fused = fusion_pass p in
        let p, swapped = interchange_pass p in
        (p, fused, swapped)
      end
      else (p, 0, 0)
    in
    let p, killed = if !Opt.writekill then writekill_pass p else (p, 0) in
    (p, { x_fused = fused; x_interchanged = swapped; x_killed = killed })
