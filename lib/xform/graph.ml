(* Statement-level dependence graph over the driver's classification.

   The driver ends at a printed table; everything downstream (doall
   legality, privatization, annotated emission) wants the same data as a
   graph: statements as nodes, apparent dependences as edges tagged
   live/dead, with the levels each edge can be carried at under the
   standard vectors (what a conventional analyzer knows) and under the
   refined vectors (what the extended analysis knows).  The gap between
   those two level sets - plus the dead edges - is exactly the paper's
   payoff, made consumable by transformations. *)

type status = Live | Dead of Driver.dead_reason

type edge = {
  e_src : Ir.access;
  e_dst : Ir.access;
  e_kind : Deps.kind;
  e_status : status;
  e_std_vectors : Dirvec.t list;
  e_vectors : Dirvec.t list;
  e_std_levels : int list;
  e_levels : int list;
  e_loops : int list;
}

type node = {
  n_stmt : int;
  n_label : string;
  n_array : string;
  n_loops : int list;
}

type loop_info = {
  l_node : int;
  l_var : string;
  l_depth : int;
  l_outer : string list;
  l_stmts : string list;
}

type t = {
  prog : Ir.program;
  nodes : node list;
  edges : edge list;
  loops : loop_info list;
}

(* ------------------------------------------------------------------ *)
(* Carried levels                                                      *)
(* ------------------------------------------------------------------ *)

let entry_allows_zero (e : Dirvec.entry) =
  Dirvec.entry_allows_zero e
  && (match e.Dirvec.lo with Some l -> l <= 0 | None -> true)
  && match e.Dirvec.hi with Some h -> h >= 0 | None -> true

let entry_allows_pos (e : Dirvec.entry) =
  (match e.Dirvec.sign with
   | Dirvec.Pos | Dirvec.NonNeg | Dirvec.Any -> true
   | Dirvec.Zero | Dirvec.Neg | Dirvec.NonPos -> false)
  && match e.Dirvec.hi with Some h -> h >= 1 | None -> true

let carried_levels (vecs : Dirvec.t list) : int list =
  let of_vec (v : Dirvec.t) =
    let rec go level prefix_zero acc = function
      | [] -> if prefix_zero then 0 :: acc else acc
      | e :: rest ->
        let acc =
          if prefix_zero && entry_allows_pos e then level :: acc else acc
        in
        go (level + 1) (prefix_zero && entry_allows_zero e) acc rest
    in
    go 1 true [] v
  in
  List.concat_map of_vec vecs |> List.sort_uniq Stdlib.compare

let common_loop_nodes (a : Ir.access) (b : Ir.access) =
  let rec go xs ys =
    match (xs, ys) with
    | x :: xs', y :: ys' when x = y -> x :: go xs' ys'
    | _ -> []
  in
  go a.Ir.loop_nodes b.Ir.loop_nodes

let carrier (e : edge) (node : int) : int option =
  let rec index i = function
    | [] -> None
    | x :: rest -> if x = node then Some i else index (i + 1) rest
  in
  index 1 e.e_loops

let carried_at ~use_std (e : edge) (node : int) =
  match carrier e node with
  | None -> false
  | Some k -> List.mem k (if use_std then e.e_std_levels else e.e_levels)

let under_loop (a : Ir.access) (node : int) = List.mem node a.Ir.loop_nodes
let live e = e.e_status = Live
let kind_edges g kind = List.filter (fun e -> e.e_kind = kind) g.edges

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let edge_of_flow_result (kind : Deps.kind) (fr : Driver.flow_result) : edge =
  let dep = fr.Driver.dep in
  let std_vecs = dep.Deps.vectors in
  let ext_vecs =
    match fr.Driver.refined with Some v -> v | None -> std_vecs
  in
  (* the standard analysis computes exact per-level satisfiability, so
     prefer [dep.levels] to the vector-derived approximation for the
     unrefined side *)
  let std_levels = dep.Deps.levels in
  let ext_levels =
    match fr.Driver.refined with
    | Some v -> carried_levels v
    | None -> std_levels
  in
  {
    e_src = dep.Deps.src;
    e_dst = dep.Deps.dst;
    e_kind = kind;
    e_status =
      (match fr.Driver.dead with None -> Live | Some r -> Dead r);
    e_std_vectors = std_vecs;
    e_vectors = ext_vecs;
    e_std_levels = std_levels;
    e_levels = ext_levels;
    e_loops = common_loop_nodes dep.Deps.src dep.Deps.dst;
  }

(* Nodes and the loop tree come from one walk of the IR statement tree. *)
let structure (prog : Ir.program) : node list * loop_info list =
  let nodes = ref [] and loops = ref [] in
  let rec labels_of = function
    | Ir.IFor { body; _ } -> List.concat_map labels_of body
    | Ir.IAssign { label; _ } -> [ label ]
  in
  let rec walk outer = function
    | Ir.IFor { node_id; var; body; _ } ->
      loops :=
        {
          l_node = node_id;
          l_var = var;
          l_depth = List.length outer + 1;
          l_outer = List.rev outer;
          l_stmts = List.concat_map labels_of body;
        }
        :: !loops;
      List.iter (walk (var :: outer)) body
    | Ir.IAssign { stmt_id; label; write; _ } ->
      nodes :=
        {
          n_stmt = stmt_id;
          n_label = label;
          n_array = write.Ir.array;
          n_loops = write.Ir.loop_nodes;
        }
        :: !nodes
  in
  List.iter (walk []) prog.Ir.stmts;
  (List.rev !nodes, List.rev !loops)

let assemble prog ~(flows : Driver.flow_result list)
    ~(antis : Driver.flow_result list)
    ~(outputs : Driver.flow_result list) : t =
  let nodes, loops = structure prog in
  let edges =
    List.map (edge_of_flow_result Deps.Flow) flows
    @ List.map (edge_of_flow_result Deps.Anti) antis
    @ List.map (edge_of_flow_result Deps.Output) outputs
  in
  { prog; nodes; edges; loops }

let build ?(in_bounds = false) ?(quick = true) (prog : Ir.program) : t =
  let res = Driver.analyze ~in_bounds ~quick prog in
  let antis = Driver.classify_kind ~in_bounds ~quick prog Deps.Anti in
  let outputs = Driver.classify_kind ~in_bounds ~quick prog Deps.Output in
  assemble prog ~flows:res.Driver.flows ~antis ~outputs

let of_result (prog : Ir.program) (res : Driver.result) : t =
  let unclassified (d : Deps.dep) =
    { Driver.dep = d; refined = None; covers = false; dead = None }
  in
  assemble prog ~flows:res.Driver.flows
    ~antis:(List.map unclassified res.Driver.antis)
    ~outputs:(List.map unclassified res.Driver.outputs)

(* ------------------------------------------------------------------ *)
(* DOT                                                                 *)
(* ------------------------------------------------------------------ *)

let kind_string = function
  | Deps.Flow -> "flow"
  | Deps.Anti -> "anti"
  | Deps.Output -> "output"

let status_label = function
  | Live -> ""
  | Dead (Driver.Killed k) -> Printf.sprintf " killed by %s" k.Ir.label
  | Dead (Driver.Covered c) -> Printf.sprintf " covered by %s" c.Ir.label

let vectors_string vecs = String.concat " " (List.map Dirvec.to_string vecs)

let dot_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot (g : t) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph dependences {\n";
  pf "  rankdir=TB;\n";
  pf "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";
  pf "  edge [fontname=\"monospace\", fontsize=9];\n";
  (* statement nodes, clustered by the loop nest *)
  let rec emit indent (s : Ir.istmt) =
    let pad = String.make indent ' ' in
    match s with
    | Ir.IFor { node_id; var; body; _ } ->
      pf "%ssubgraph cluster_loop%d {\n" pad node_id;
      pf "%s  label=\"for %s\";\n" pad (dot_escape var);
      pf "%s  style=rounded;\n" pad;
      List.iter (emit (indent + 2)) body;
      pf "%s}\n" pad
    | Ir.IAssign { stmt_id; write; _ } ->
      pf "%ss%d [label=\"%s\"];\n" pad stmt_id
        (dot_escape (Ir.access_to_string write))
  in
  List.iter (emit 2) g.prog.Ir.stmts;
  (* dependence edges *)
  List.iter
    (fun e ->
      let style =
        match e.e_kind with
        | Deps.Flow -> "solid"
        | Deps.Anti -> "dashed"
        | Deps.Output -> "dotted"
      in
      let color, fontcolor =
        match e.e_status with
        | Live -> (
          ( (match e.e_kind with
             | Deps.Flow -> "black"
             | Deps.Anti -> "darkorange3"
             | Deps.Output -> "red3"),
            "black" ))
        | Dead _ -> ("gray60", "gray60")
      in
      pf "  s%d -> s%d [label=\"%s %s%s\", style=%s, color=%s, fontcolor=%s];\n"
        e.e_src.Ir.stmt_id e.e_dst.Ir.stmt_id (kind_string e.e_kind)
        (dot_escape (vectors_string e.e_vectors))
        (dot_escape (status_label e.e_status))
        style color fontcolor)
    g.edges;
  pf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""
let jlist f l = "[" ^ String.concat "," (List.map f l) ^ "]"
let jint = string_of_int

let to_json (g : t) : string =
  let buf = Buffer.create 1024 in
  let node_json n =
    Printf.sprintf "{\"stmt\":%d,\"label\":%s,\"array\":%s,\"loops\":%s}"
      n.n_stmt (jstr n.n_label) (jstr n.n_array) (jlist jint n.n_loops)
  in
  let loop_json l =
    Printf.sprintf
      "{\"node\":%d,\"var\":%s,\"depth\":%d,\"outer\":%s,\"stmts\":%s}"
      l.l_node (jstr l.l_var) l.l_depth (jlist jstr l.l_outer)
      (jlist jstr l.l_stmts)
  in
  let edge_json e =
    let status, by =
      match e.e_status with
      | Live -> ("live", None)
      | Dead (Driver.Killed k) -> ("killed", Some k.Ir.label)
      | Dead (Driver.Covered c) -> ("covered", Some c.Ir.label)
    in
    Printf.sprintf
      "{\"src\":%s,\"dst\":%s,\"src_stmt\":%d,\"dst_stmt\":%d,\"kind\":%s,\
       \"status\":%s%s,\"array\":%s,\"std_vectors\":%s,\"vectors\":%s,\
       \"std_levels\":%s,\"levels\":%s,\"loops\":%s}"
      (jstr e.e_src.Ir.label) (jstr e.e_dst.Ir.label) e.e_src.Ir.stmt_id
      e.e_dst.Ir.stmt_id
      (jstr (kind_string e.e_kind))
      (jstr status)
      (match by with Some l -> ",\"by\":" ^ jstr l | None -> "")
      (jstr e.e_src.Ir.array)
      (jstr (vectors_string e.e_std_vectors))
      (jstr (vectors_string e.e_vectors))
      (jlist jint e.e_std_levels) (jlist jint e.e_levels)
      (jlist jint e.e_loops)
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "\"nodes\":%s,\n" (jlist node_json g.nodes));
  Buffer.add_string buf
    (Printf.sprintf "\"loops\":%s,\n" (jlist loop_json g.loops));
  Buffer.add_string buf
    (Printf.sprintf "\"edges\":%s\n" (jlist edge_json g.edges));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
