(** Re-render a program with the parallelization verdicts as
    annotations: parallel loops become [doall], with their privatized
    arrays in a [// private(...)] comment; serial loops keep [for] and
    carry a comment naming what blocks them. *)

val annotate : Graph.t -> Parallel.verdict list -> string
(** The full program (declarations included).  Comments use the
    language's [//] syntax, so stripping the [doall] keyword back to
    [for] yields a parseable program. *)
