(* Parallel doall executor over OCaml 5 domains.

   Takes a plan derived from Parallel verdicts (which loops are legal
   doalls, which arrays each one privatizes) and runs the program with
   the chosen loops' iterations spread over a fixed domain pool.  The
   evaluation code is Interp's, reached through its pluggable store.

   Execution model of one parallel region (one dynamic instance of a
   plan doall loop):

   - the normalized iteration range is cut into contiguous chunks,
     claimed dynamically by the pool's workers through an atomic
     counter (so triangular inner work still balances);
   - each chunk runs against an overlay store: writes land in a
     chunk-private table, reads check the private table first and fall
     through to the global store, which is frozen (read-only) for the
     duration of the region.  For privatized arrays the fall-through IS
     the runtime copy-in of first-read-before-write iterations; for
     every other array the analysis guarantees no iteration reads
     another iteration's write, so the overlay is a plain write buffer;
   - after the region, chunk tables merge into the global store in
     increasing iteration order, so each element ends with its
     sequentially-last writer's value (last-writer finalization).

   Soundness rests on the extended analysis: a read may cross chunks
   only along a live carried flow, which doall legality excludes.  The
   differential harness (test/test_exec.ml) checks the resulting final
   state bit-for-bit against serial execution on the whole corpus and
   on random programs. *)

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

type side = Std | Ext

type plan = {
  pl_side : side;
  pl_doall : (int * string list) list;
      (* doall loop AST node -> arrays its verdict privatizes *)
}

let plan side (vs : Parallel.verdict list) : plan =
  let doall (v : Parallel.verdict) =
    match side with
    | Std -> v.Parallel.v_std_doall
    | Ext -> v.Parallel.v_ext_doall
  in
  {
    pl_side = side;
    pl_doall =
      List.filter_map
        (fun (v : Parallel.verdict) ->
          if doall v then
            Some
              ( v.Parallel.v_loop.Graph.l_node,
                (* the standard analysis has no privatization story *)
                match side with
                | Std -> []
                | Ext ->
                  List.map
                    (fun p -> p.Privatize.p_array)
                    v.Parallel.v_private )
          else None)
        vs;
  }

let doall_count pl = List.length pl.pl_doall

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

(* A fixed pool of [size] execution slots: [size - 1] worker domains
   from the shared Taskpool machinery plus the calling domain, which
   participates in every region.  A region publishes [size] copies of a
   re-entrant job closure; copies claim chunks from an atomic counter,
   so a copy that runs late (or two copies draining on the same domain)
   just finds the counter exhausted and returns. *)

type pool = { p_size : int; p_tp : Taskpool.t }

let create_pool ?size () =
  let size =
    match size with
    | Some s -> max 1 s
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  { p_size = size; p_tp = Taskpool.create ~workers:(size - 1) }

let pool_size pool = pool.p_size

let shutdown pool = Taskpool.shutdown pool.p_tp

let with_pool ?size f =
  let pool = create_pool ?size () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Run [job] on every pool slot (the calling domain included) and wait
   until all copies have drained.  [job] must be re-entrant and must
   return only when no work is left (chunk claiming via an atomic
   counter gives both); it must not raise — region bodies capture their
   own faults for the serial-fallback path. *)
let run_region pool job =
  Taskpool.run_batch ~participate:true pool.p_tp
    (List.init pool.p_size (fun _ -> job))

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type mem = (Interp.loc * int) list

type stats = {
  x_domains : int;
  x_regions : int;  (* dynamic parallel-region entries *)
  x_chunks : int;  (* chunks executed across all regions *)
  x_inline : int;  (* regions run serially because they were under the
                      parallelism threshold (VM backend only) *)
  x_fallbacks : int;  (* regions re-run serially after a worker fault *)
}

let zero_init _ _ = 0

let final tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare

let run_serial ?(init = zero_init) (prog : Ir.program) ~syms : mem =
  let tbl = Hashtbl.create 256 in
  let env =
    Interp.make_env ~store:(Interp.hashtbl_store ~init tbl) ~syms
  in
  List.iter (Interp.exec_stmt env) prog.Ir.stmts;
  final tbl

let iteration_count l h step =
  if step > 0 then if l > h then 0 else ((h - l) / step) + 1
  else if l < h then 0
  else ((l - h) / -step) + 1

let run_parallel ?pool ?(chunks_per_worker = 4) ?(init = zero_init)
    ?(no_copy_in = false) ?(chunk_fault = fun _ -> ()) (pl : plan)
    (prog : Ir.program) ~syms : mem * stats =
  let owned, pool =
    match pool with Some p -> (None, p) | None ->
      let p = create_pool () in
      (Some p, p)
  in
  let global = Hashtbl.create 256 in
  let gstore = Interp.hashtbl_store ~init global in
  let regions = ref 0 and chunks = ref 0 and fallbacks = ref 0 in
  let genv = Interp.make_env ~store:gstore ~syms in
  (* one parallel region: the iterations of [var] in [l..h by step], with
     [body] run serially inside each iteration *)
  let parallel_region var l h step body privs =
    let niters = iteration_count l h step in
    let nchunks = min niters (pool.p_size * chunks_per_worker) in
    incr regions;
    chunks := !chunks + nchunks;
    let locals = Array.init nchunks (fun _ -> Hashtbl.create 64) in
    let next = Atomic.make 0 in
    let err_lock = Mutex.create () in
    let err = ref None in
    let outer = genv.Interp.e_loops in
    let process c =
      chunk_fault c;
      let local = locals.(c) in
      let ld loc =
        match Hashtbl.find_opt local loc with
        | Some v -> v
        | None ->
          (* fall-through to the frozen global state: runtime copy-in
             for privatized arrays.  [no_copy_in] exists only so the
             tests can show copy-in is load-bearing. *)
          if no_copy_in && List.mem (fst loc) privs then
            init (fst loc) (snd loc)
          else gstore.Interp.ld loc
      in
      let store =
        { Interp.ld; st = (fun loc v -> Hashtbl.replace local loc v) }
      in
      let cenv =
        { Interp.e_syms = genv.Interp.e_syms; e_loops = outer; e_mem = store }
      in
      (* chunk c covers normalized iterations [k0, k1) *)
      let k0 = c * niters / nchunks and k1 = (c + 1) * niters / nchunks in
      for k = k0 to k1 - 1 do
        cenv.Interp.e_loops <- (var, (l + (k * step), k)) :: outer;
        List.iter (Interp.exec_stmt cenv) body
      done
    in
    let job () =
      let rec go () =
        let c = Atomic.fetch_and_add next 1 in
        if c < nchunks then begin
          (if !err = None then
             try process c
             with e ->
               Mutex.lock err_lock;
               (if !err = None then err := Some e);
               Mutex.unlock err_lock);
          go ()
        end
      in
      go ()
    in
    run_region pool job;
    match !err with
    | Some _ ->
      (* A worker faulted.  The first exception was captured and the
         remaining chunks cancelled (workers skip once [err] is set), so
         the pool drains and never deadlocks.  The chunk overlays never
         touched the global store, so discard them wholesale and re-run
         the whole region serially against it: a deterministic program
         fault then re-raises here, on the submitting thread, at the
         exact iteration serial execution would reach — and a transient
         (injected) fault simply yields the serial result. *)
      incr fallbacks;
      for k = 0 to niters - 1 do
        genv.Interp.e_loops <- (var, (l + (k * step), k)) :: outer;
        List.iter (Interp.exec_stmt genv) body
      done;
      genv.Interp.e_loops <- outer
    | None ->
      (* last-writer finalization: chunks merge in iteration order, so a
         later chunk's write to an element overrides an earlier chunk's *)
      Array.iter
        (fun local ->
          Hashtbl.iter (fun k v -> Hashtbl.replace global k v) local)
        locals
  in
  let rec walk (s : Ir.istmt) =
    match s with
    | Ir.IAssign _ -> Interp.exec_stmt genv s
    | Ir.IFor { node_id; var; lo; hi; step; body; _ } -> (
      let l = Interp.eval_expr genv lo and h = Interp.eval_expr genv hi in
      match List.assoc_opt node_id pl.pl_doall with
      | Some privs when iteration_count l h step > 1 ->
        parallel_region var l h step body privs
      | _ ->
        (* serial loop; inner plan doalls still become parallel regions *)
        let continue_ v = if step > 0 then v <= h else v >= h in
        let saved = genv.Interp.e_loops in
        let rec iterate v k =
          if continue_ v then begin
            genv.Interp.e_loops <- (var, (v, k)) :: saved;
            List.iter walk body;
            iterate (v + step) (k + 1)
          end
        in
        iterate l 0;
        genv.Interp.e_loops <- saved)
  in
  Fun.protect
    ~finally:(fun () -> Option.iter shutdown owned)
    (fun () -> List.iter walk prog.Ir.stmts);
  ( final global,
    {
      x_domains = pool.p_size;
      x_regions = !regions;
      x_chunks = !chunks;
      x_inline = 0;
      x_fallbacks = !fallbacks;
    } )

(* ------------------------------------------------------------------ *)
(* Compiled (VM) backend                                               *)
(* ------------------------------------------------------------------ *)

(* The same execution model as [run_parallel], but over bytecode and
   flat memory (Lang.Compile / Lang.Vm) instead of the interpreter and
   overlay hashtables.  The VM surfaces each dynamic doall instance
   through its [on_region] callback; we cut it into chunks claimed from
   the pool exactly as above.  Chunk slabs subsume the overlay stores:
   copy-in is an [Array.blit] prologue, finalization merges written
   slab cells in chunk order.

   [par_threshold] (satellite of the region-overhead pathology): a
   region whose static work estimate [trip * rg_cost] falls below the
   threshold is run serially in place by the VM — hundreds of tiny
   inner-loop regions (example6, wavefront2) then cost nothing but a
   compare, instead of a pool wake-up and join each. *)

let default_par_threshold = 4096

let compile_plan (pl : plan) (prog : Ir.program) ~syms =
  Compile.program ~plan:pl.pl_doall prog ~syms

let run_serial_vm ?init (prog : Ir.program) ~syms : Vm.t =
  let t = Vm.create ?init (Compile.program prog ~syms) in
  Vm.run t;
  t

let run_compiled_vm ?pool ?(chunks_per_worker = 4)
    ?(par_threshold = default_par_threshold) ?init ?(no_copy_in = false)
    ?(chunk_fault = fun _ -> ()) (u : Compile.unit_) : Vm.t * stats =
  let owned, pool =
    match pool with
    | Some p -> (None, p)
    | None ->
      let p = create_pool () in
      (Some p, p)
  in
  let t = Vm.create ?init u in
  let regions = ref 0 and chunks = ref 0 and inline = ref 0 in
  let fallbacks = ref 0 in
  let on_region vt (r : Compile.region) ~lo ~hi =
    let niters = Vm.region_trip r ~lo ~hi in
    if niters <= 1 || niters * max 1 r.Compile.rg_cost < par_threshold then begin
      if niters > 0 then incr inline;
      false (* the VM runs the region serially in place *)
    end
    else begin
      incr regions;
      let nchunks = min niters (pool.p_size * chunks_per_worker) in
      chunks := !chunks + nchunks;
      let cks = Array.make nchunks None in
      let next = Atomic.make 0 in
      let err_lock = Mutex.create () in
      let err = ref None in
      let job () =
        let rec go () =
          let c = Atomic.fetch_and_add next 1 in
          if c < nchunks then begin
            (if !err = None then
               try
                 chunk_fault c;
                 let ck = Vm.make_chunk ~copy_in:(not no_copy_in) vt r in
                 cks.(c) <- Some ck;
                 let k0 = c * niters / nchunks
                 and k1 = (c + 1) * niters / nchunks in
                 Vm.run_chunk vt r ck ~lo ~k0 ~k1
               with e ->
                 Mutex.lock err_lock;
                 (if !err = None then err := Some e);
                 Mutex.unlock err_lock);
            go ()
          end
        in
        go ()
      in
      run_region pool job;
      match !err with
      | Some _ ->
        (* A worker faulted: the first exception was captured, the
           remaining chunks cancelled, and the pool drained.  The chunk
           slabs never merged into VM memory, so discard them and
           return [false]: the VM runs this region serially in place,
           re-raising any deterministic program fault on the submitting
           thread with exact serial semantics. *)
        incr fallbacks;
        false
      | None ->
        (* last-writer finalization: merge in increasing iteration order *)
        Array.iter
          (function Some ck -> Vm.merge_chunk vt r ck | None -> ())
          cks;
        true
    end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter shutdown owned)
    (fun () -> Vm.run ~on_region t);
  ( t,
    {
      x_domains = pool.p_size;
      x_regions = !regions;
      x_chunks = !chunks;
      x_inline = !inline;
      x_fallbacks = !fallbacks;
    } )

let run_parallel_vm ?pool ?chunks_per_worker ?par_threshold ?init ?no_copy_in
    ?chunk_fault (pl : plan) (prog : Ir.program) ~syms : Vm.t * stats =
  run_compiled_vm ?pool ?chunks_per_worker ?par_threshold ?init ?no_copy_in
    ?chunk_fault
    (compile_plan pl prog ~syms)

(* ------------------------------------------------------------------ *)
(* Differential comparison                                             *)
(* ------------------------------------------------------------------ *)

let equal_mem (a : mem) (b : mem) = a = b

let diff_mem (a : mem) (b : mem) =
  let rec go a b acc =
    match (a, b) with
    | [], [] -> List.rev acc
    | (l, v) :: a', [] -> go a' [] ((l, Some v, None) :: acc)
    | [], (l, v) :: b' -> go [] b' ((l, None, Some v) :: acc)
    | (la, va) :: a', (lb, vb) :: b' ->
      let c = compare la lb in
      if c = 0 then
        go a' b' (if va = vb then acc else (la, Some va, Some vb) :: acc)
      else if c < 0 then go a' b ((la, Some va, None) :: acc)
      else go a b' ((lb, None, Some vb) :: acc)
  in
  go a b []

let loc_string ((name, idx) : Interp.loc) =
  Printf.sprintf "%s(%s)" name (String.concat "," (List.map string_of_int idx))

let diff_string diffs =
  String.concat "; "
    (List.map
       (fun (l, a, b) ->
         let v = function Some x -> string_of_int x | None -> "_" in
         Printf.sprintf "%s: serial=%s parallel=%s" (loc_string l) (v a) (v b))
       diffs)
