(* Dynamic confirmation of doall claims via the reference interpreter.

   A loop marked doall (with privatization set P) is dynamically valid
   for a given execution when no value-based flow dependence is carried
   by the loop, and every carried memory conflict is on an array in P.
   The first condition is the fundamental one: data never flows between
   iterations.  The second pins the storage reuse the claim discharges
   to exactly the arrays the transformation would privatize. *)

type violation = { o_loop : Graph.loop_info; o_what : string }

type report = {
  o_syms : (string * int) list;
  o_events : int;
  o_checked : int;
  o_violations : violation list;
}

(* ------------------------------------------------------------------ *)
(* Choosing symbolic-constant values                                   *)
(* ------------------------------------------------------------------ *)

let eval_affine env (a : Ir.affine) : int option =
  List.fold_left
    (fun acc (v, c) ->
      match (acc, v) with
      | Some s, Ir.Symc name -> (
        match List.assoc_opt name env with
        | Some x -> Some (s + (c * x))
        | None -> None)
      | _ -> None)
    (Some a.Ir.const) a.Ir.terms

let eval_relop (op : Ast.relop) l r =
  match op with
  | Ast.Eq -> l = r
  | Ast.Ne -> l <> r
  | Ast.Le -> l <= r
  | Ast.Lt -> l < r
  | Ast.Ge -> l >= r
  | Ast.Gt -> l > r

(* Conditions mentioning still-unassigned constants (or opaque terms,
   which never appear in corpus assumes) are deferred/ignored. *)
let conds_hold env (conds : Ir.sym_cond list) =
  List.for_all
    (fun (c : Ir.sym_cond) ->
      match (eval_affine env c.Ir.sc_left, eval_affine env c.Ir.sc_right) with
      | Some l, Some r -> eval_relop c.Ir.sc_op l r
      | _ -> true)
    conds

let pick_syms ?(candidates = [ 3; 4; 2; 5; 6; 1; 10; 50; 100; 0 ])
    (prog : Ir.program) : (string * int) list option =
  let rec go env = function
    | [] -> if conds_hold env prog.Ir.assumes then Some (List.rev env) else None
    | s :: rest ->
      List.find_map
        (fun v ->
          let env' = (s, v) :: env in
          if conds_hold env' prog.Ir.assumes then go env' rest else None)
        candidates
  in
  go [] prog.Ir.symbolics

(* ------------------------------------------------------------------ *)
(* Dynamic carried-ness                                                *)
(* ------------------------------------------------------------------ *)

(* Is the dynamic dependence carried by the loop with AST node [node]?
   I.e. is [node] a common loop of the two accesses, with zero distance
   on every outer common loop and nonzero distance on [node] itself. *)
let dyn_carried_by (node : int) (d : Interp.dep) : bool =
  let common =
    Graph.common_loop_nodes d.Interp.src.Interp.acc d.Interp.dst.Interp.acc
  in
  let rec index i = function
    | [] -> None
    | x :: rest -> if x = node then Some i else index (i + 1) rest
  in
  match index 0 common with
  | None -> false
  | Some j ->
    let dist = Interp.distance d in
    let rec go i = function
      | [] -> false
      | x :: rest -> if i = j then x <> 0 else x = 0 && go (i + 1) rest
    in
    go 0 dist

let dep_string prefix (d : Interp.dep) =
  Format.asprintf "%s %a" prefix Interp.pp_dep d

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Report of report
  | No_assignment
  | Not_executable of string

let check ?syms (g : Graph.t) (vs : Parallel.verdict list) : outcome =
  let syms =
    match syms with Some s -> Some s | None -> pick_syms g.Graph.prog
  in
  match syms with
  | None -> No_assignment
  | Some syms ->
    (match Interp.run g.Graph.prog ~syms with
    | exception Interp.Runtime_error msg -> Not_executable msg
    | trace ->
    let value_flows = Interp.value_flow_deps trace in
    let memory =
      List.concat_map
        (fun (kind, name) ->
          List.map (fun d -> (name, d)) (Interp.memory_deps trace kind))
        [ (`Flow, "flow"); (`Anti, "anti"); (`Output, "output") ]
    in
    let claims = List.filter (fun v -> v.Parallel.v_ext_doall) vs in
    let violations =
      List.concat_map
        (fun (v : Parallel.verdict) ->
          let node = v.Parallel.v_loop.Graph.l_node in
          let private_arrays =
            List.map (fun p -> p.Privatize.p_array) v.Parallel.v_private
          in
          let value_violations =
            List.filter_map
              (fun (d : Interp.dep) ->
                if dyn_carried_by node d then
                  Some
                    {
                      o_loop = v.Parallel.v_loop;
                      o_what = dep_string "carried value flow" d;
                    }
                else None)
              value_flows
          in
          let memory_violations =
            List.filter_map
              (fun (kind_name, (d : Interp.dep)) ->
                let array = d.Interp.src.Interp.acc.Ir.array in
                if dyn_carried_by node d && not (List.mem array private_arrays)
                then
                  Some
                    {
                      o_loop = v.Parallel.v_loop;
                      o_what =
                        dep_string
                          (Printf.sprintf
                             "carried memory %s on unprivatized %s" kind_name
                             array)
                          d;
                    }
                else None)
              memory
          in
          value_violations @ memory_violations)
        claims
    in
      Report
        {
          o_syms = syms;
          o_events = List.length trace.Interp.events;
          o_checked = List.length claims;
          o_violations = violations;
        })
