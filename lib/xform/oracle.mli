(** Interpreter-based validation of [doall] claims.

    The program is executed with concrete symbolic-constant values (found
    automatically so the user's [assume] assertions hold) and its dynamic
    dependences checked against every loop marked [doall] by the extended
    analysis:

    - no dynamic {e value-based} flow dependence may be carried by the
      loop (values never cross iterations);
    - every dynamic {e memory-based} conflict (flow, anti or output)
      carried by the loop must be on an array the verdict privatizes
      (the conflict is storage reuse, removed by the private copy). *)

type violation = {
  o_loop : Graph.loop_info;
  o_what : string;  (** human-readable description of the offense *)
}

type report = {
  o_syms : (string * int) list;
  o_events : int;  (** trace length *)
  o_checked : int;  (** number of doall claims examined *)
  o_violations : violation list;
}

val pick_syms :
  ?candidates:int list -> Ir.program -> (string * int) list option
(** Small values for the program's symbolic constants satisfying its
    [assume] conditions, by backtracking search over [candidates]
    (default: small positive values, then 10/50/100 for assertions such
    as [50 <= n]).  [None] when no assignment in the grid works. *)

type outcome =
  | Report of report
  | No_assignment  (** no symbolic-constant values satisfy the assumptions *)
  | Not_executable of string
      (** the interpreter cannot run the program (e.g. opaque index-array
          reads in loop bounds) *)

val check :
  ?syms:(string * int) list -> Graph.t -> Parallel.verdict list -> outcome
(** Run the program and check every extended-analysis [doall] claim. *)
