(* doall legality per loop, standard vs extended.

   Standard side: every apparent dependence carried at the loop (under
   its unrefined vectors) serializes it.

   Extended side, in order of application:
   - refinement can shrink the carried levels (a (0+,1) vector refined to
     (0,1) no longer lets the outer loop carry the dependence);
   - dead flow dependences (killed/covered) carry no value between
     iterations and never block;
   - live storage dependences on a privatizable array are discharged by
     giving each iteration a private copy;
   - everything else blocks. *)

type blocker = { b_edge : Graph.edge; b_level : int }

type verdict = {
  v_loop : Graph.loop_info;
  v_std_doall : bool;
  v_std_blockers : blocker list;
  v_ext_doall : bool;
  v_ext_blockers : blocker list;
  v_private : Privatize.priv list;
}

let verdict_of_loop (g : Graph.t) (l : Graph.loop_info) : verdict =
  let node = l.Graph.l_node in
  let carried use_std =
    List.filter_map
      (fun (e : Graph.edge) ->
        match Graph.carrier e node with
        | Some k
          when List.mem k
                 (if use_std then e.Graph.e_std_levels else e.Graph.e_levels)
          -> Some { b_edge = e; b_level = k }
        | _ -> None)
      g.Graph.edges
  in
  let std_blockers = carried true in
  let privs = Privatize.analyze g l in
  let priv_arrays = List.map (fun p -> p.Privatize.p_array) privs in
  let discharged (e : Graph.edge) =
    let on_private = List.mem e.Graph.e_src.Ir.array priv_arrays in
    match (e.Graph.e_status, e.Graph.e_kind) with
    | Graph.Live, Deps.Flow -> false
    | Graph.Live, (Deps.Anti | Deps.Output) -> on_private
    | Graph.Dead _, _ ->
      (* dead dependences carry no value; the dynamic memory conflict
         they still denote must be removed by privatizing the array
         (always possible here: a dead carried flow means no live
         carried flow on the array, unless another live flow edge blocks
         the loop anyway) *)
      on_private || Privatize.privatizable g l e.Graph.e_src.Ir.array
  in
  let ext_blockers =
    List.filter (fun b -> not (discharged b.b_edge)) (carried false)
  in
  (* privatizations count only when they discharge something *)
  let used =
    List.filter
      (fun p ->
        List.exists
          (fun (e : Graph.edge) ->
            e.Graph.e_src.Ir.array = p.Privatize.p_array
            && Graph.carried_at ~use_std:false e node)
          g.Graph.edges)
      privs
  in
  {
    v_loop = l;
    v_std_doall = std_blockers = [];
    v_std_blockers = std_blockers;
    v_ext_doall = ext_blockers = [];
    v_ext_blockers = ext_blockers;
    v_private = used;
  }

let analyze (g : Graph.t) : verdict list =
  List.map (verdict_of_loop g) g.Graph.loops

let count_doall (vs : verdict list) =
  let n f = List.length (List.filter f vs) in
  (n (fun v -> v.v_std_doall), n (fun v -> v.v_ext_doall))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let loop_path (l : Graph.loop_info) =
  String.concat "/" (l.Graph.l_outer @ [ l.Graph.l_var ])

let blocker_string (b : blocker) =
  let e = b.b_edge in
  Printf.sprintf "%s %s->%s %s@%d%s"
    (Graph.kind_string e.Graph.e_kind)
    e.Graph.e_src.Ir.label e.Graph.e_dst.Ir.label
    (Graph.vectors_string e.Graph.e_vectors)
    b.b_level
    (Graph.status_label e.Graph.e_status)

let render_report (vs : verdict list) : string =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "%-18s %-6s %-22s %-22s %s\n" "loop" "depth" "standard" "extended"
    "private";
  List.iter
    (fun v ->
      let side doall blockers =
        if doall then "doall"
        else Printf.sprintf "serial (%d carried)" (List.length blockers)
      in
      pf "%-18s %-6d %-22s %-22s %s\n" (loop_path v.v_loop)
        v.v_loop.Graph.l_depth
        (side v.v_std_doall v.v_std_blockers)
        (side v.v_ext_doall v.v_ext_blockers)
        (String.concat ", " (List.map Privatize.to_string v.v_private)))
    vs;
  let serial_ext = List.filter (fun v -> not v.v_ext_doall) vs in
  if serial_ext <> [] then begin
    pf "\nblockers (extended analysis):\n";
    List.iter
      (fun v ->
        pf "  %s:\n" (loop_path v.v_loop);
        List.iter
          (fun b -> pf "    %s\n" (blocker_string b))
          v.v_ext_blockers)
      serial_ext
  end;
  Buffer.contents buf
