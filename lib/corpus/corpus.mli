(** The bundled program corpus: the paper's Examples 1-11, the CHOLSKY
    kernel of Figure 2 (translated statement-for-statement, with the
    paper's own forward-substitution and loop normalization), and
    tiny-distribution-style kernels (Cholesky, LU, wavefronts, stencils,
    contrived kill/cover programs) used by the tests, examples and the
    Figure 6/7 timing population. *)

val example1 : string
val example1m : assert_m:bool -> string
(** The [a(m)] variant of Example 1; with [assert_m] the program carries
    the assertion [n <= m <= n+10] that makes the kill verifiable. *)

val example2 : string
val example3 : string
val example4 : string
val example5 : string
val example6 : string

val example7 : ?assumes:string -> unit -> string
(** Symbolic analysis example; [assumes] defaults to the paper's
    [50 <= n <= 100]. *)

val example8 : string
val example9 : string
val example10 : string
val example11 : string
val cholsky : string

val copyin : string
(** A [temp_reuse] variant whose temporary has one element written
    before the loop and only read inside it: privatization is legal only
    with copy-in. *)

val row_dot_private : string
(** Row dot products accumulated in a one-cell temporary that every
    outer iteration reinitializes: the outer loop is an extended doall
    with the accumulator privatized. *)

val all : (string * string) list
(** Every corpus program, by name. *)

val find : string -> string
(** @raise Invalid_argument on an unknown name. *)

val timing_population : string list
(** The programs swept by the Figure 6/7 benches. *)

val stress : (string * string) list
(** Adversarial analysis-stress nests (coupled large-coefficient
    subscripts, splinter-heavy strides, DNF-wide kill chains, max/min
    bound case splits).  Not part of {!all}: they exist to exhaust
    solver budgets, and the execution harnesses that sweep [all] have
    nothing to learn from them. *)
