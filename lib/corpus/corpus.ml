(* The program corpus used by the tests, examples and benches:

   - Examples 1-11 from the paper (section 4's boxed examples and the
     section 5 symbolic-analysis examples);
   - CHOLSKY: the NAS kernel of Figure 2, translated statement-for-
     statement (with the paper's own modifications: MAX(-M,-J) forward-
     substituted and the second K loop normalized);
   - the kind of programs distributed with Wolfe's tiny tool (Cholesky, LU
     decomposition, wavefront variants) plus a few contrived kill/cover
     stress programs, standing in for the rest of the paper's corpus. *)

let example1 =
  {|
symbolic n;
real a[-1000:1000], x[-1000:1000];
A: a(n) := 0;
for L1 := n to n+10 do
  B: a(L1) := 1;
endfor
for L1 := n to n+20 do
  C: x(L1) := a(L1);
endfor
|}

(* The variant where the first write is to a(m): the kill cannot be
   verified without the assertion n <= m <= n+10. *)
let example1m ~assert_m =
  Printf.sprintf
    {|
symbolic n, m;
real a[-1000:1000], x[-1000:1000];
%s
A: a(m) := 0;
for L1 := n to n+10 do
  B: a(L1) := 1;
endfor
for L1 := n to n+20 do
  C: x(L1) := a(L1);
endfor
|}
    (if assert_m then "assume n <= m <= n+10;" else "")

let example2 =
  {|
symbolic n;
real a[-1000:1000], x[-1000:1000];
A: a(n) := 0;
for L1 := 1 to 100 do
  B: a(L1) := 1;
  for L2 := 1 to n do
    C: a(L2) := 2;
    D: a(L2-1) := 3;
  endfor
  for L2 := 2 to n-1 do
    E: x(L2) := a(L2);
  endfor
endfor
|}

let example3 =
  {|
symbolic n, m;
real a[-1000:1000];
for L1 := 1 to n do
  for L2 := 2 to m do
    s: a(L2) := a(L2-1);
  endfor
endfor
|}

let example4 =
  {|
symbolic n, m;
real a[-1000:1000];
for L1 := 1 to n do
  for L2 := n+2-L1 to m do
    s: a(L2) := a(L2-1);
  endfor
endfor
|}

let example5 =
  {|
symbolic n, m;
real a[-1000:1000];
for L1 := 1 to n do
  for L2 := L1 to m do
    s: a(L2) := a(L2-1);
  endfor
endfor
|}

let example6 =
  {|
symbolic n, m;
real a[-1000:1000];
for L1 := 1 to n do
  for L2 := 2 to m do
    s: a(L1-L2) := a(L1-L2);
  endfor
endfor
|}

let example7 ?(assumes = "assume 50 <= n <= 100;") () =
  Printf.sprintf
    {|
symbolic x, y, n, m;
real a[1:n, 1:m], c[1:n, 1:m];
%s
for L1 := x to n do
  for L2 := 1 to m do
    s: a(L1, L2) := a(L1-x, y) + c(L1, L2);
  endfor
endfor
|}
    assumes

let example8 =
  {|
symbolic n;
real a[1:n], c[1:n], q[1:n];
for L1 := 1 to n do
  s: a(q(L1)) := a(q(L1+1)-1) + c(L1);
endfor
|}

let example9 =
  {|
symbolic maxb;
real a[1:maxb, 1:1000], b[1:1000];
for i := 1 to maxb do
  for j := b(i) to b(i+1)-1 do
    s: a(i, j) := 0;
  endfor
endfor
|}

let example10 =
  {|
symbolic n;
real a[1:1000000];
for i := 1 to n do
  for j := i to n do
    s: a(i*j) := 0;
  endfor
endfor
|}

(* s141 from [LCD91]: a scalar accumulator indexes the array; its reads in
   subscript position become opaque terms, and induction recognition
   proves it strictly increasing (Example 11). *)
let example11 =
  {|
symbolic n;
real a[1:1000000], bb[1:1000, 1:1000], k;
for j := 1 to n do
  for i := j to n do
    s: a(k) := a(k) + bb(i, j);
    t: k := k + j;
  endfor
endfor
|}

(* ------------------------------------------------------------------ *)
(* CHOLSKY (Figure 2)                                                  *)
(* ------------------------------------------------------------------ *)

let cholsky =
  {|
symbolic ida, nmat, m, n, nrhs, idb;
real a[0:ida, -1000:0, 0:1000], b[0:nrhs, 0:idb, 0:1000], epss[0:256];

// Cholesky decomposition
for J := 0 to n do
  // off diagonal elements
  for I := max(-m, -J) to -1 do
    for JJ := max(-m, -J) - I to -1 do
      for L := 0 to nmat do
        3: a(L, I, J) := a(L, I, J) - a(L, JJ, I+J) * a(L, I+JJ, J);
      endfor
    endfor
    for L := 0 to nmat do
      2: a(L, I, J) := a(L, I, J) * a(L, 0, I+J);
    endfor
  endfor
  // store inverse of diagonal elements
  for L := 0 to nmat do
    4: epss(L) := a(L, 0, J);
  endfor
  for JJ := max(-m, -J) to -1 do
    for L := 0 to nmat do
      5: a(L, 0, J) := a(L, 0, J) - a(L, JJ, J);
    endfor
  endfor
  for L := 0 to nmat do
    1: a(L, 0, J) := epss(L) + a(L, 0, J);
  endfor
endfor

// solution (second K loop normalized, as in the paper's version)
for I := 0 to nrhs do
  for K := 0 to n do
    for L := 0 to nmat do
      8: b(I, L, K) := b(I, L, K) * a(L, 0, K);
    endfor
    for JJ := 1 to min(m, n-K) do
      for L := 0 to nmat do
        7: b(I, L, K+JJ) := b(I, L, K+JJ) - a(L, -JJ, K+JJ) * b(I, L, K);
      endfor
    endfor
  endfor
  for K := 0 to n do
    for L := 0 to nmat do
      9: b(I, L, n-K) := b(I, L, n-K) * a(L, 0, n-K);
    endfor
    for JJ := 1 to min(m, n-K) do
      for L := 0 to nmat do
        6: b(I, L, n-K-JJ) := b(I, L, n-K-JJ) - a(L, -JJ, n-K) * b(I, L, n-K);
      endfor
    endfor
  endfor
endfor
|}

(* ------------------------------------------------------------------ *)
(* tiny-distribution-style programs                                    *)
(* ------------------------------------------------------------------ *)

let cholesky_tiny =
  {|
symbolic n;
real a[1:200, 1:200];
for k := 1 to n do
  d: a(k, k) := a(k, k);
  for i := k+1 to n do
    c: a(i, k) := a(i, k) + a(k, k);
  endfor
  for j := k+1 to n do
    for i := j to n do
      u: a(i, j) := a(i, j) - a(i, k) * a(j, k);
    endfor
  endfor
endfor
|}

let lu =
  {|
symbolic n;
real a[1:200, 1:200];
for k := 1 to n do
  for i := k+1 to n do
    p: a(i, k) := a(i, k) + a(k, k);
  endfor
  for i := k+1 to n do
    for j := k+1 to n do
      u: a(i, j) := a(i, j) - a(i, k) * a(k, j);
    endfor
  endfor
endfor
|}

let wavefront1 =
  {|
symbolic n, m;
real a[0:200, 0:200];
for i := 1 to n do
  for j := 1 to m do
    w: a(i, j) := a(i-1, j) + a(i, j-1);
  endfor
endfor
|}

let wavefront2 =
  {|
symbolic n, m;
real a[-200:200, -200:200];
for i := 1 to n do
  for j := 1 to m do
    w: a(i, j) := a(i-1, j+1) + a(i-1, j-1);
  endfor
endfor
|}

let wavefront3 =
  {|
symbolic n;
real a[0:200, 0:200];
for i := 1 to n do
  for j := i to n do
    w: a(i, j) := a(i-1, j-1) + a(j, i);
  endfor
endfor
|}

let sor =
  {|
symbolic n, t;
real a[0:200, 0:200];
for it := 1 to t do
  for i := 1 to n do
    s: a(it, i) := a(it-1, i-1) + a(it-1, i) + a(it-1, i+1);
  endfor
endfor
|}

let matmul =
  {|
symbolic n;
real a[1:100, 1:100], bm[1:100, 1:100], cm[1:100, 1:100];
for i := 1 to n do
  for j := 1 to n do
    for k := 1 to n do
      s: cm(i, j) := cm(i, j) + a(i, k) * bm(k, j);
    endfor
  endfor
endfor
|}

let transpose_sum =
  {|
symbolic n;
real a[1:100, 1:100], s[1:100];
for i := 1 to n do
  for j := 1 to n do
    t: s(i) := s(i) + a(j, i);
  endfor
endfor
|}

(* Contrived: a chain of writes where each kills the previous. *)
let kill_chain =
  {|
symbolic n;
real a[0:300], x[0:300];
for i := 1 to n do
  w1: a(i) := 1;
endfor
for i := 1 to n do
  w2: a(i) := 2;
endfor
for i := 1 to n do
  r: x(i) := a(i);
endfor
|}

(* Contrived: a partial second write kills only half the dependences. *)
let partial_kill =
  {|
symbolic n;
real a[0:300], x[0:300];
for i := 1 to n do
  w1: a(i) := 1;
endfor
for i := 1 to n do
  w2: a(2*i) := 2;
endfor
for i := 1 to n do
  r: x(i) := a(i);
endfor
|}

(* Contrived: triangular cover. *)
let triangle_cover =
  {|
symbolic n;
real a[0:300], x[0:300, 0:300];
for i := 1 to n do
  for j := 1 to i do
    w: a(j) := i;
  endfor
  for j := 1 to i do
    r: x(i, j) := a(j);
  endfor
endfor
|}

(* Contrived: imperfect nest with loop-independent kill. *)
let independent_kill =
  {|
symbolic n, m;
real a[0:300], x[0:300, 0:300];
for i := 1 to n do
  w1: a(i) := 0;
  w2: a(i) := 1;
  for j := 1 to m do
    r: x(i, j) := a(i);
  endfor
endfor
|}

(* Stencil with a temporary that gets fully overwritten each iteration. *)
let temp_reuse =
  {|
symbolic n, m;
real t[0:300], a[0:300, 0:300], x[0:300, 0:300];
for i := 1 to n do
  for j := 1 to m do
    w: t(j) := a(i, j);
  endfor
  for j := 1 to m do
    r: x(i, j) := t(j);
  endfor
endfor
|}

(* Like temp_reuse, but one element of the temporary is written before
   the loop and only read inside it: privatizing t is legal only with
   copy-in (each iteration reads t(0) before ever writing it). *)
let copyin =
  {|
symbolic n, m;
real t[0:300], a[0:300, 0:300], x[0:300, 0:300];
b: t(0) := 1;
for i := 1 to n do
  for j := 1 to m do
    w: t(j) := a(i, j) + t(0);
  endfor
  for j := 1 to m do
    r: x(i, j) := t(j) + t(0);
  endfor
endfor
|}

(* Further tiny-style kernels, used to widen the Figure 6/7 timing
   population. *)

let gauss_seidel =
  {|
symbolic n, m;
real a[0:200, 0:200];
for i := 1 to n do
  for j := 1 to m do
    g: a(i, j) := a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1);
  endfor
endfor
|}

let red_black =
  {|
symbolic n;
real a[0:300];
for i := 1 to n do
  r: a(2*i) := a(2*i - 1) + a(2*i + 1);
endfor
for i := 1 to n do
  b: a(2*i + 1) := a(2*i) + a(2*i + 2);
endfor
|}

let fib_like =
  {|
symbolic n;
real a[0:300];
for i := 2 to n do
  f: a(i) := a(i-1) + a(i-2);
endfor
|}

let running_sum =
  {|
symbolic n;
real s[0:300], a[0:300];
for i := 1 to n do
  r: s(i) := s(i-1) + a(i);
endfor
for i := 1 to n do
  o: a(i) := s(i) + s(n);
endfor
|}

let copy_shift =
  {|
symbolic n;
real a[0:300], b[0:300], c[0:300];
for i := 1 to n do
  p: b(i) := a(i);
endfor
for i := 1 to n do
  q: c(i) := b(i+1);
endfor
|}

let stencil9 =
  {|
symbolic n, m;
real a[0:200, 0:200], o[0:200, 0:200];
for i := 1 to n do
  for j := 1 to m do
    s: o(i, j) := a(i-1, j-1) + a(i-1, j) + a(i-1, j+1)
                + a(i, j-1) + a(i, j) + a(i, j+1)
                + a(i+1, j-1) + a(i+1, j) + a(i+1, j+1);
  endfor
endfor
|}

let overwrite_rows =
  {|
symbolic n, m;
real a[0:200, 0:200], o[0:200, 0:200];
for i := 1 to n do
  for j := 1 to m do
    w1: a(i, j) := 0;
  endfor
  for j := 1 to m do
    w2: a(i, j) := 1;
  endfor
  for j := 1 to m do
    r: o(i, j) := a(i, j);
  endfor
endfor
|}

let diag_init =
  {|
symbolic n;
real a[1:200, 1:200], o[1:200, 1:200];
for i := 1 to n do
  d: a(i, i) := 1;
endfor
for i := 1 to n do
  for j := 1 to n do
    r: o(i, j) := a(i, j);
  endfor
endfor
|}

let strided =
  {|
symbolic n;
real a[0:400], o[0:400];
for i := 1 to n do
  e: a(2*i) := 0;
endfor
for i := 1 to n do
  d: a(2*i + 1) := 1;
endfor
for i := 2 to 2*n do
  r: o(i) := a(i);
endfor
|}

let reverse_copy =
  {|
symbolic n;
real a[0:300], b[0:300];
for i := 0 to n do
  w: a(i) := i;
endfor
for i := 0 to n do
  r: b(i) := a(n-i);
endfor
|}

let multi_kill =
  {|
symbolic n;
real a[0:300], o[0:300];
for i := 1 to n do
  w1: a(i) := 1;
  w2: a(i-1) := 2;
  w3: a(i) := 3;
endfor
for i := 1 to n do
  r: o(i) := a(i);
endfor
|}

let triangular_update =
  {|
symbolic n;
real a[1:200, 1:200];
for k := 1 to n do
  for i := k to n do
    t: a(i, k) := a(i, k) + a(k, k);
  endfor
endfor
|}

(* Kernels exercising stepped loops and scalar accumulators. *)

let even_odd_phases =
  {|
symbolic n;
real a[0:400], o[0:400];
for i := 0 to 2*n by 2 do
  e: a(i) := i;
endfor
for i := 1 to 2*n + 1 by 2 do
  d: a(i) := a(i - 1);
endfor
for i := 0 to 2*n do
  r: o(i) := a(i);
endfor
|}

let countdown_copy =
  {|
symbolic n;
real a[0:200], b[0:200];
for i := 100 to 1 by -1 do
  w: a(i) := i;
endfor
for i := 1 to 100 do
  r: b(i) := a(i);
endfor
|}

let prefix_sum_scalar =
  {|
symbolic n;
real s, a[0:300], p[0:300];
s := 0;
for i := 1 to n do
  t: s := s + a(i);
  u: p(i) := s;
endfor
|}

let banded =
  {|
symbolic n, w;
real a[1:200, -10:10];
assume 1 <= w <= 10;
for i := 1 to n do
  for j := max(-w, 1 - i) to min(w, n - i) do
    s: a(i, j) := a(i - 1, j) + a(i, j - 1);
  endfor
endfor
|}

(* Dense row-dot products accumulated through a privatized prefix
   array: each outer iteration zeroes s(0), builds the running sums
   s(j) = s(j-1) + a(i,j)*b(j), and stores the total s(m).  Every read
   of [s] takes its value from the same outer iteration, so refinement
   pins the carried flow to distance 0 and the outer loop is an
   extended-analysis doall with [s] privatized — the
   reduction-into-a-temporary shape the compiled backend's per-chunk
   slabs exist for. *)
let row_dot_private =
  {|
symbolic n, m;
real s[0:300], a[0:300, 0:300], b[0:300], c[0:300];
for i := 1 to n do
  z: s(0) := 0;
  for j := 1 to m do
    t: s(j) := s(j-1) + a(i, j) * b(j);
  endfor
  w: c(i) := s(m);
endfor
|}

let all : (string * string) list =
  [
    ("example1", example1);
    ("example1m", example1m ~assert_m:false);
    ("example1m_assert", example1m ~assert_m:true);
    ("example2", example2);
    ("example3", example3);
    ("example4", example4);
    ("example5", example5);
    ("example6", example6);
    ("example7", example7 ());
    ("example8", example8);
    ("example9", example9);
    ("example10", example10);
    ("example11", example11);
    ("cholsky", cholsky);
    ("cholesky_tiny", cholesky_tiny);
    ("lu", lu);
    ("wavefront1", wavefront1);
    ("wavefront2", wavefront2);
    ("wavefront3", wavefront3);
    ("sor", sor);
    ("matmul", matmul);
    ("transpose_sum", transpose_sum);
    ("kill_chain", kill_chain);
    ("partial_kill", partial_kill);
    ("triangle_cover", triangle_cover);
    ("independent_kill", independent_kill);
    ("temp_reuse", temp_reuse);
    ("copyin", copyin);
    ("gauss_seidel", gauss_seidel);
    ("red_black", red_black);
    ("fib_like", fib_like);
    ("running_sum", running_sum);
    ("copy_shift", copy_shift);
    ("stencil9", stencil9);
    ("overwrite_rows", overwrite_rows);
    ("diag_init", diag_init);
    ("strided", strided);
    ("reverse_copy", reverse_copy);
    ("multi_kill", multi_kill);
    ("triangular_update", triangular_update);
    ("even_odd_phases", even_odd_phases);
    ("countdown_copy", countdown_copy);
    ("prefix_sum_scalar", prefix_sum_scalar);
    ("banded", banded);
    ("row_dot_private", row_dot_private);
  ]

let find name =
  match List.assoc_opt name all with
  | Some src -> src
  | None -> invalid_arg (Printf.sprintf "Corpus.find: unknown program %s" name)

(* Programs suitable for the Figure 6/7 timing population (analyzable
   end-to-end; the symbolic examples 8-11 are exercised separately). *)
let timing_population =
  [
    "example1"; "example1m"; "example2"; "example3"; "example4"; "example5";
    "example6"; "cholsky"; "cholesky_tiny"; "lu"; "wavefront1"; "wavefront2";
    "wavefront3"; "sor"; "matmul"; "transpose_sum"; "kill_chain";
    "partial_kill"; "triangle_cover"; "independent_kill"; "temp_reuse";
    "copyin"; "gauss_seidel"; "red_black"; "fib_like"; "running_sum"; "copy_shift";
    "stencil9"; "overwrite_rows"; "diag_init"; "strided"; "reverse_copy";
    "multi_kill"; "triangular_update"; "even_odd_phases"; "countdown_copy";
    "prefix_sum_scalar"; "banded"; "row_dot_private";
  ]

(* ------------------------------------------------------------------ *)
(* Adversarial stress corpus                                           *)
(* ------------------------------------------------------------------ *)

(* Programs built to spend solver resources, not to model real kernels:
   they drive the budget machinery (fuel, splinters, DNF disjuncts)
   toward its limits so the governed verdicts - not crashes - are what
   tight budgets produce.  Deliberately kept OUT of [all]: the
   differential execution harnesses iterate [all] and these nests exist
   to stress analysis, not execution. *)

(* Deeply coupled subscripts with pairwise-coprime-ish coefficients
   {6, 10, 15}: every dependence problem couples i and j through
   several large-coefficient equalities, so Fourier-Motzkin elimination
   multiplies coefficients at each step and burns fuel fast. *)
let stress_coupled =
  {|
symbolic n;
real a[0:4000], x[0:4000];
assume 1 <= n <= 40;
for i := 1 to n do
  for j := 1 to n do
    w1: a(6*i + 10*j) := i + j;
    w2: a(10*i + 15*j) := i - j;
    r: x(6*i + 15*j) := a(15*i + 6*j);
  endfor
endfor
|}

(* Non-unit-stride writes against non-unit-stride reads (2 vs 3, 5/3
   vs 7): exact projection must splinter on the non-dark part of each
   shadow, so the splinter counter is the limit that binds. *)
let stress_splinter =
  {|
symbolic n;
real a[0:2000], x[0:2000];
assume 1 <= n <= 60;
for i := 1 to n do
  for j := i to min(n, i + 13) do
    w1: a(5*i + 3*j) := i;
  endfor
endfor
for i := 1 to n do
  w2: a(2*i) := i;
endfor
for k := 1 to n do
  r: x(k) := a(7*k + 2);
endfor
|}

(* A four-writer kill chain over strided, shifted subscripts: each kill
   test negates a conjunction of equalities per candidate killer, and
   the resulting quantified formula expands into wide DNF. *)
let stress_kill_dnf =
  {|
symbolic n, m;
real a[0:900], x[0:900];
assume 1 <= m <= n;
assume n <= 200;
for i := 1 to n do
  w1: a(2*i) := 1;
endfor
for i := 1 to n do
  w2: a(2*i + 2) := 2;
endfor
for i := 1 to n do
  w3: a(3*i) := 3;
endfor
for i := 1 to n do
  w4: a(2*i + 4) := 4;
endfor
for i := 1 to m do
  r: x(i) := a(2*i + 4);
endfor
|}

(* max/min loop bounds: every bound contributes a case split, so the
   dependence problems carry the cross product of bound cases on top of
   a two-distance stencil body. *)
let stress_maxmin =
  {|
symbolic n, w;
real a[0:300, -20:20];
assume 2 <= w <= 12;
assume w <= n;
assume n <= 150;
for i := 3 to n do
  for j := max(1 - i, -w) to min(w, n - i) do
    s: a(i, j) := a(i - 1, j + 1) + a(i - 2, j - 1);
  endfor
endfor
|}

let stress =
  [
    ("stress_coupled", stress_coupled);
    ("stress_splinter", stress_splinter);
    ("stress_kill_dnf", stress_kill_dnf);
    ("stress_maxmin", stress_maxmin);
  ]
