(** Bytecode compiler: petit programs lowered to a register machine over
    flat memory.

    Every array (and scalar — a 0-dimensional array) is laid out in one
    contiguous integer arena.  Extents come from interval analysis of
    the actual accesses under the given symbolic-constant values, so the
    arena is sized by what the program touches, not by the (routinely
    exceeded) declared ranges.  Subscripts must be affine in the loop
    variables; their addresses compile to strength-reduced [Muladd]
    chains with every symbolic constant folded at compile time.  Loops
    become counted back-edges; expression trees become three-address
    code with constant folding.  Nothing on the hot path hashes, boxes
    or allocates.

    When a [plan] is supplied (doall loop node -> privatized arrays, as
    produced by [Xform.Exec.plan]), each plan loop reached outside any
    other plan loop compiles to a {e parallel region}: the main code
    evaluates the loop bounds into registers and issues a single
    {!constructor:Region} instruction; the region carries two compiled
    bodies for one iteration — [rg_serial] addressing the shared arena
    directly, and [rg_par] addressing each privatized array inside a
    per-chunk scratch slab ([LdS]/[StS]).  How iterations are driven
    (serially or chunked over domains) is the VM driver's choice.

    Programs using opaque (non-affine) subscripts or loop bounds — index
    arrays, products of variables — raise {!Unsupported}; callers fall
    back to the tracing interpreter. *)

exception Unsupported of string

(** {1 Instructions}

    Registers are integers into a flat register file; [rd] first.
    Address operands index the arena ([Ld]/[St]) or the current chunk's
    slab ([LdS]/[StS]). *)

type instr =
  | Li of int * int  (** rd <- imm *)
  | Mov of int * int  (** rd <- rs *)
  | Add of int * int * int  (** rd <- rs + rt *)
  | Sub of int * int * int
  | Mul of int * int * int
  | Maxr of int * int * int
  | Minr of int * int * int
  | Addi of int * int * int  (** rd <- rs + imm *)
  | Muli of int * int * int  (** rd <- rs * imm *)
  | Muladd of int * int * int * int  (** rd <- rs + imm * rt *)
  | Ld of int * int  (** rd <- arena(rs) *)
  | Ldi of int * int  (** rd <- arena(imm) *)
  | St of int * int  (** arena(rd) <- rs *)
  | Sti of int * int  (** arena(imm) <- rs *)
  | LdS of int * int  (** rd <- slab(rs) *)
  | LdSi of int * int
  | StS of int * int  (** slab(rd) <- rs, marks the cell written *)
  | StSi of int * int
  | Bgt of int * int * int  (** if rs > rt then pc <- target *)
  | Blt of int * int * int
  | LoopUp of int * int * int * int
      (** var += step; if var <= limit-reg then pc <- target *)
  | LoopDown of int * int * int * int  (** same with >= (negative step) *)
  | Region of int  (** enter parallel region by id, then fall through *)
  | Halt
  (* {2 Optimizer opcodes}

     The compiler itself never emits anything below; {!Opt} introduces
     them.  [..u] variants access the arena {e unchecked} — each
     occurrence is justified by a recorded interval proof (see
     {!Opt.proof}); the fused ([MuladdLd], [AddSt], ...) variants
     collapse an address-compute or arithmetic producer into its memory
     consumer when the intermediate register is provably dead. *)
  | Ldu of int * int  (** rd <- arena(rs), unchecked *)
  | Ldui of int * int  (** rd <- arena(imm), unchecked *)
  | Stu of int * int  (** arena(rd) <- rs, unchecked *)
  | Stui of int * int  (** arena(imm) <- rs, unchecked *)
  | MuladdLd of int * int * int * int  (** rd <- arena(rs + imm*rt) *)
  | MuladdLdu of int * int * int * int
  | MuladdSt of int * int * int * int  (** arena(rs + imm*rt) <- rv *)
  | MuladdStu of int * int * int * int
  | AddiLd of int * int * int  (** rd <- arena(rs + imm) *)
  | AddiLdu of int * int * int
  | AddiSt of int * int * int  (** arena(rs + imm) <- rv *)
  | AddiStu of int * int * int
  | AddSt of int * int * int  (** arena(ra) <- rb + rc *)
  | AddStu of int * int * int
  | SubSt of int * int * int  (** arena(ra) <- rb - rc *)
  | SubStu of int * int * int
  | MulSt of int * int * int  (** arena(ra) <- rb * rc *)
  | MulStu of int * int * int
  | LoopUpi of int * int * int * int
      (** var += step; if var <= limit-imm then pc <- target *)
  | LoopDowni of int * int * int * int
  | AssertRange of int * int * int
      (** paranoid re-check: raise {!Vm.Proof_failure} unless
          lo <= reg <= hi (debug mode only, never on the fast path) *)

(** {1 Layout} *)

type dim = { d_lo : int; d_hi : int; d_stride : int }

type arr = {
  a_name : string;
  a_base : int;  (** arena offset of element [(d_lo, d_lo, ...)] *)
  a_dims : dim list;  (** outermost subscript first; [] for a scalar *)
  a_size : int;  (** total cells *)
}

(** {1 Parallel regions} *)

type priv_copy = {
  pc_array : string;
  pc_arena : int;  (** the array's arena base *)
  pc_slab : int;  (** its offset inside a chunk slab *)
  pc_len : int;
}

type region = {
  rg_id : int;
  rg_node : int;  (** source loop AST node id *)
  rg_var : string;  (** surface loop variable, for reports *)
  rg_vreg : int;  (** register the driver sets to the iteration value *)
  rg_lo : int;  (** register holding the evaluated lower bound *)
  rg_hi : int;
  rg_step : int;
  rg_serial : instr array;  (** one iteration, direct arena addressing *)
  rg_par : instr array;  (** one iteration, privatized arrays in the slab *)
  rg_privs : priv_copy list;
  rg_slab : int;  (** slab size in cells (0 when nothing is privatized) *)
  rg_cost : int;  (** static instruction count of one iteration (work proxy) *)
}

type unit_ = {
  u_main : instr array;
  u_regions : region array;
  u_nregs : int;  (** register file size *)
  u_arena : int;  (** arena size in cells *)
  u_arrays : arr list;
}

val program :
  ?plan:(int * string list) list ->
  Ir.program ->
  syms:(string * int) list ->
  unit_
(** Compile under the given symbolic-constant values (all symbols the
    program mentions must be bound).  [plan] maps doall loop node ids to
    the arrays their verdicts privatize.
    @raise Unsupported on non-affine subscripts or bounds. *)

(** {1 Addressing helpers} (for initialization and differential checks) *)

val addr : unit_ -> string * int list -> int option
(** Arena offset of a location, or [None] if the array is unknown, the
    arity differs, or an index falls outside the computed extent. *)

val iter_cells : unit_ -> (string -> int list -> int -> unit) -> unit
(** Enumerate every arena cell as [(array, index, offset)], in layout
    order. *)

val instr_string : instr -> string
(** One instruction, rendered as in {!disasm}. *)

val disasm : unit_ -> string
(** Human-readable listing of the main code and each region's bodies. *)
