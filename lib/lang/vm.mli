(** Executor for compiled petit bytecode ({!Compile}).

    A VM instance owns the flat arena and the register file.  [run]
    interprets the main code; when it meets a {!Compile.Region}
    instruction it offers the region to the [on_region] callback — the
    hook through which [Xform.Exec] schedules chunks over its domain
    pool.  A callback that declines (or its absence) runs the region's
    iterations serially in place, so the VM itself stays free of any
    threading.

    Parallel execution happens through {e chunks}: a chunk carries a
    private copy of the register file plus a scratch {e slab} holding
    the region's privatized arrays, copied in from the arena on creation
    (the compiled copy-in prologue of first-read-before-write
    iterations).  Writes through [StS] mark a written-bitmap;
    {!merge_chunk} folds exactly the written cells back into the arena,
    so merging chunks in increasing iteration order reproduces
    sequential last-writer finalization.  Non-privatized arrays are read
    and written directly in the shared arena — sound because doall
    legality leaves them no cross-iteration memory conflicts. *)

exception Proof_failure of string
(** An {!Compile.AssertRange} re-check failed: an elision proof recorded
    by {!Opt} was violated at run time (only raised in paranoid debug
    mode — the production unchecked opcodes carry no re-check). *)

type t

val create : ?init:(string -> int list -> int) -> Compile.unit_ -> t
(** Fresh VM: arena cells filled from [init] (default all zero),
    registers zeroed. *)

val unit_ : t -> Compile.unit_
val arena : t -> int array

val run :
  ?on_region:(t -> Compile.region -> lo:int -> hi:int -> bool) -> t -> unit
(** Interpret the main code to [Halt].  [on_region] is called with the
    evaluated bounds of each dynamic region entry; returning [true]
    means the callback executed the whole region (e.g. in parallel),
    [false] falls back to {!run_region_serial}. *)

val run_count : t -> int
(** Like {!run} with every region serial, returning the number of
    dynamically dispatched instructions.  A separate (slower) counting
    twin of the dispatch loop — use it to {e explain} measured speedups
    (the bench artifact's dynamic instruction counts), never to time. *)

val region_trip : Compile.region -> lo:int -> hi:int -> int
(** Number of iterations of a region instance. *)

val run_region_serial : t -> Compile.region -> lo:int -> hi:int -> unit
(** All iterations in order, on the shared arena ([rg_serial] body). *)

(** {1 Chunks} *)

type chunk

val make_chunk : ?copy_in:bool -> t -> Compile.region -> chunk
(** Private register-file copy + slab with privatized arrays copied in.
    Create only while the region's bounds registers are live (i.e.
    during the [on_region] callback).  [~copy_in:false] leaves the slab
    zeroed — {b testing only}, it breaks first-read-before-write
    iterations by design. *)

val run_chunk :
  t -> Compile.region -> chunk -> lo:int -> k0:int -> k1:int -> unit
(** Execute normalized iterations [k0, k1) of the region ([rg_par]
    body): iteration [k] runs with the loop variable at [lo + k*step].
    Safe to call from any domain; distinct chunks may run
    concurrently. *)

val merge_chunk : t -> Compile.region -> chunk -> unit
(** Fold the chunk's written slab cells back into the arena.  Merge
    chunks in increasing iteration order for last-writer semantics. *)

(** {1 Differential comparison} *)

type diff = (string * int list) * int option * int option
(** location, interpreter value (if any), VM value (if any) *)

val check_against :
  ?init:(string -> int list -> int) ->
  t ->
  ((string * int list) * int) list ->
  diff list
(** Compare the VM's final arena with an interpreter run's final state
    (as produced by [Xform.Exec.run_serial]): every written location
    must hold the same value, and every arena cell the interpreter
    never wrote must still hold its [init] value.  Returns the
    mismatches ([[]] = bit-identical). *)

val equal_state : t -> t -> bool
(** Arena equality between two VMs compiled from the same program and
    symbols (the layout is plan-independent). *)

val diff_string : diff list -> string
