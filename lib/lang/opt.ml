(* Bytecode optimizer: bounds-check elision and superinstruction fusion
   over compiled units (see opt.mli and DESIGN.md section 14).  Both
   passes rewrite instructions only — registers, regions and the arena
   layout never change, so an optimized unit is differentially
   comparable (Vm.equal_state) with the unit it came from. *)

open Compile

(* ------------------------------------------------------------------ *)
(* Flags                                                               *)
(* ------------------------------------------------------------------ *)

let restructure = ref true
let superinst = ref true
let elide = ref true
let writekill = ref true

let set ~restructure:r ~superinst:s ~elide:e ~writekill:w =
  restructure := r;
  superinst := s;
  elide := e;
  writekill := w

let all_on () = set ~restructure:true ~superinst:true ~elide:true ~writekill:true

let all_off () =
  set ~restructure:false ~superinst:false ~elide:false ~writekill:false

let flags () =
  [
    ("restructure", restructure);
    ("superinst", superinst);
    ("elide", elide);
    ("writekill", writekill);
  ]

(* ------------------------------------------------------------------ *)
(* Proofs and reports                                                  *)
(* ------------------------------------------------------------------ *)

type proof = {
  p_where : string;
  p_pc : int;
  p_reg : int option;
  p_lo : int;
  p_hi : int;
  p_arena : int;
}

let proof_string p =
  Printf.sprintf "%s pc %d: %s in [%d, %d] < arena %d" p.p_where p.p_pc
    (match p.p_reg with Some r -> Printf.sprintf "r%d" r | None -> "imm")
    p.p_lo p.p_hi p.p_arena

type report = {
  r_elided : int;
  r_fused : int;
  r_loopi : int;
  r_proofs : proof list;
}

let empty_report = { r_elided = 0; r_fused = 0; r_loopi = 0; r_proofs = [] }

(* ------------------------------------------------------------------ *)
(* Register read/write sets                                            *)
(* ------------------------------------------------------------------ *)

(* [Region] reports no registers here: the driver's descriptor reads
   (rg_lo/rg_hi) and body effects are accounted for explicitly by each
   pass, because they live outside the instruction stream. *)
let reads_of (i : instr) : int list =
  match i with
  | Li _ | Ldi _ | Ldui _ | LdSi _ | Region _ | Halt -> []
  | Mov (_, s) | Addi (_, s, _) | Muli (_, s, _) -> [ s ]
  | Add (_, a, b) | Sub (_, a, b) | Mul (_, a, b) | Maxr (_, a, b)
  | Minr (_, a, b) ->
    [ a; b ]
  | Muladd (_, s, _, t) -> [ s; t ]
  | Ld (_, a) | Ldu (_, a) | LdS (_, a) -> [ a ]
  | St (a, s) | Stu (a, s) | StS (a, s) -> [ a; s ]
  | Sti (_, s) | Stui (_, s) | StSi (_, s) -> [ s ]
  | Bgt (a, b, _) | Blt (a, b, _) -> [ a; b ]
  | LoopUp (v, _, lim, _) | LoopDown (v, _, lim, _) -> [ v; lim ]
  | LoopUpi (v, _, _, _) | LoopDowni (v, _, _, _) -> [ v ]
  | MuladdLd (_, s, _, t) | MuladdLdu (_, s, _, t) -> [ s; t ]
  | MuladdSt (s, _, t, v) | MuladdStu (s, _, t, v) -> [ s; t; v ]
  | AddiLd (_, s, _) | AddiLdu (_, s, _) -> [ s ]
  | AddiSt (s, _, v) | AddiStu (s, _, v) -> [ s; v ]
  | AddSt (a, b, c) | AddStu (a, b, c) | SubSt (a, b, c) | SubStu (a, b, c)
  | MulSt (a, b, c) | MulStu (a, b, c) ->
    [ a; b; c ]
  | AssertRange (r, _, _) -> [ r ]

let writes_of (i : instr) : int list =
  match i with
  | Li (d, _) | Mov (d, _) | Add (d, _, _) | Sub (d, _, _) | Mul (d, _, _)
  | Maxr (d, _, _) | Minr (d, _, _) | Addi (d, _, _) | Muli (d, _, _)
  | Muladd (d, _, _, _) | Ld (d, _) | Ldi (d, _) | Ldu (d, _) | Ldui (d, _)
  | LdS (d, _) | LdSi (d, _) | MuladdLd (d, _, _, _) | MuladdLdu (d, _, _, _)
  | AddiLd (d, _, _) | AddiLdu (d, _, _) ->
    [ d ]
  | LoopUp (v, _, _, _) | LoopDown (v, _, _, _) | LoopUpi (v, _, _, _)
  | LoopDowni (v, _, _, _) ->
    [ v ]
  | St _ | Sti _ | Stu _ | Stui _ | StS _ | StSi _ | MuladdSt _ | MuladdStu _
  | AddiSt _ | AddiStu _ | AddSt _ | AddStu _ | SubSt _ | SubStu _ | MulSt _
  | MulStu _ | Bgt _ | Blt _ | AssertRange _ | Region _ | Halt ->
    []

let branch_target = function
  | Bgt (_, _, t) | Blt (_, _, t)
  | LoopUp (_, _, _, t) | LoopDown (_, _, _, t)
  | LoopUpi (_, _, _, t) | LoopDowni (_, _, _, t) ->
    Some t
  | _ -> None

let remap_target map = function
  | Bgt (a, b, t) -> Bgt (a, b, map.(t))
  | Blt (a, b, t) -> Blt (a, b, map.(t))
  | LoopUp (v, s, l, t) -> LoopUp (v, s, l, map.(t))
  | LoopDown (v, s, l, t) -> LoopDown (v, s, l, map.(t))
  | LoopUpi (v, s, l, t) -> LoopUpi (v, s, l, map.(t))
  | LoopDowni (v, s, l, t) -> LoopDowni (v, s, l, map.(t))
  | i -> i

(* ------------------------------------------------------------------ *)
(* Intervals                                                           *)
(* ------------------------------------------------------------------ *)

(* Conservative integer intervals with an explicit top.  [big] bounds
   every representable endpoint so the arithmetic below cannot
   overflow OCaml's 63-bit ints; anything escaping the bound widens to
   [Top] (sound: Top never licenses an elision). *)
type iv = Top | I of int * int

let big = 1 lsl 40
let small = 1 lsl 31
let norm l h = if l < -big || h > big then Top else I (l, h)

let ivadd a b =
  match (a, b) with
  | I (l1, h1), I (l2, h2) -> norm (l1 + l2) (h1 + h2)
  | _ -> Top

let ivneg = function I (l, h) -> I (-h, -l) | Top -> Top
let ivsub a b = ivadd a (ivneg b)

let ivmulk a k =
  match a with
  | I (l, h) when abs k <= small && max (abs l) (abs h) <= small ->
    let p1 = l * k and p2 = h * k in
    norm (min p1 p2) (max p1 p2)
  | _ -> Top

let ivmul a b =
  match (a, b) with
  | I (l1, h1), I (l2, h2)
    when max (abs l1) (abs h1) <= small && max (abs l2) (abs h2) <= small ->
    let ps = [ l1 * l2; l1 * h2; h1 * l2; h1 * h2 ] in
    norm (List.fold_left min max_int ps) (List.fold_left max min_int ps)
  | _ -> Top

let ivmax a b =
  match (a, b) with
  | I (l1, h1), I (l2, h2) -> I (max l1 l2, max h1 h2)
  | _ -> Top

let ivmin a b =
  match (a, b) with
  | I (l1, h1), I (l2, h2) -> I (min l1 l2, min h1 h2)
  | _ -> Top

let ivjoin a b =
  match (a, b) with
  | I (l1, h1), I (l2, h2) -> I (min l1 l2, max h1 h2)
  | _ -> Top

(* Transfer function of one instruction (Region handled by callers). *)
let effect st (i : instr) =
  let g r = st.(r) in
  match i with
  | Li (d, n) -> st.(d) <- I (n, n)
  | Mov (d, s) -> st.(d) <- g s
  | Add (d, a, b) -> st.(d) <- ivadd (g a) (g b)
  | Sub (d, a, b) -> st.(d) <- ivsub (g a) (g b)
  | Mul (d, a, b) -> st.(d) <- ivmul (g a) (g b)
  | Maxr (d, a, b) -> st.(d) <- ivmax (g a) (g b)
  | Minr (d, a, b) -> st.(d) <- ivmin (g a) (g b)
  | Addi (d, s, n) -> st.(d) <- ivadd (g s) (I (n, n))
  | Muli (d, s, n) -> st.(d) <- ivmulk (g s) n
  | Muladd (d, s, n, t) -> st.(d) <- ivadd (g s) (ivmulk (g t) n)
  | Ld (d, _) | Ldi (d, _) | Ldu (d, _) | Ldui (d, _) | LdS (d, _)
  | LdSi (d, _) | MuladdLd (d, _, _, _) | MuladdLdu (d, _, _, _)
  | AddiLd (d, _, _) | AddiLdu (d, _, _) ->
    st.(d) <- Top
  | LoopUp (v, stp, _, _) | LoopDown (v, stp, _, _) | LoopUpi (v, stp, _, _)
  | LoopDowni (v, stp, _, _) ->
    st.(v) <- ivadd (g v) (I (stp, stp))
  | St _ | Sti _ | Stu _ | Stui _ | StS _ | StSi _ | MuladdSt _ | MuladdStu _
  | AddiSt _ | AddiStu _ | AddSt _ | AddStu _ | SubSt _ | SubStu _ | MulSt _
  | MulStu _ | Bgt _ | Blt _ | AssertRange _ | Region _ | Halt ->
    ()

(* ------------------------------------------------------------------ *)
(* Linear abstract interpretation of one code body                     *)
(* ------------------------------------------------------------------ *)

(* The compiled control flow is structured: loops are single back-edges
   (LoopUp/LoopDown to their top), the only other branches are forward
   entry guards (Bgt/Blt past the loop).  One linear pass is therefore
   a sound fixpoint provided that, at each loop top, (a) the loop
   variable widens to the full iteration range [init, limit] and (b)
   any register whose value can flow around the back edge (read in the
   body before the body writes it) drops to Top.  Forward branches
   contribute a pending join at their target (the zero-trip path).
   Any shape outside this grammar flips [sound] off and the caller
   elides nothing. *)

type rw = { rw_reads : int -> int list; rw_writes : int -> int list }
(* reads/writes attributed to a [Region rid] instruction: descriptor
   registers plus everything its bodies touch (the serial body shares
   the register file with main code). *)

let scan ~(rw : rw) ~seed (code : instr array) ~at : bool =
  let n = Array.length code in
  let st = Array.copy seed in
  let sound = ref true in
  let ireads = function
    | Region rid -> rw.rw_reads rid
    | i -> reads_of i
  and iwrites = function
    | Region rid -> rw.rw_writes rid
    | i -> writes_of i
  in
  (* back edges: top -> (var, step, limit, end) *)
  let tops = Hashtbl.create 8 in
  Array.iteri
    (fun pc i ->
      match i with
      | LoopUp (v, stp, lim, top) | LoopDown (v, stp, lim, top) ->
        if top <= pc then Hashtbl.replace tops top (v, stp, `Reg lim, pc)
        else sound := false
      | LoopUpi (v, stp, n, top) | LoopDowni (v, stp, n, top) ->
        if top <= pc then Hashtbl.replace tops top (v, stp, `Imm n, pc)
        else sound := false
      | Bgt (_, _, t) | Blt (_, _, t) -> if t <= pc then sound := false
      | _ -> ())
    code;
  (* registers carried around each back edge: read in [top, end] before
     the body's first {e definite} write of them.  A write sitting in a
     forward-branch skip range (a guarded inner loop) is conditional —
     it may not execute on a given iteration, so it cannot kill the
     carried value. *)
  let conditional =
    let c = Array.make (n + 1) false in
    Array.iteri
      (fun pc i ->
        match i with
        | Bgt (_, _, t) | Blt (_, _, t) when t > pc ->
          for p = pc + 1 to min (t - 1) (n - 1) do
            c.(p) <- true
          done
        | _ -> ())
      code;
    c
  in
  let carried = Hashtbl.create 8 in
  Hashtbl.iter
    (fun top (v, _, lim, endpc) ->
      let first_w = Hashtbl.create 8
      and first_dw = Hashtbl.create 8
      and first_r = Hashtbl.create 8 in
      for pc = top to endpc do
        List.iter
          (fun r ->
            if not (Hashtbl.mem first_r r) then Hashtbl.replace first_r r pc)
          (ireads code.(pc));
        List.iter
          (fun r ->
            if not (Hashtbl.mem first_w r) then Hashtbl.replace first_w r pc;
            if (not conditional.(pc)) && not (Hashtbl.mem first_dw r) then
              Hashtbl.replace first_dw r pc)
          (iwrites code.(pc))
      done;
      let regs = ref [] in
      Hashtbl.iter
        (fun r _ ->
          if r <> v then
            let dw =
              match Hashtbl.find_opt first_dw r with
              | Some w -> w
              | None -> max_int
            in
            match Hashtbl.find_opt first_r r with
            | Some rpc when rpc <= dw -> regs := r :: !regs
            | _ -> ())
        first_w;
      (* the loop variable itself must be written only by its own
         back edge inside the body, and the limit register not at all;
         otherwise the widening below would be wrong — drop them *)
      let v_ok =
        match Hashtbl.find_opt first_w v with
        | Some wpc -> wpc = endpc
        | None -> true
      and lim_ok =
        match lim with
        | `Imm _ -> true
        | `Reg r -> not (Hashtbl.mem first_w r)
      in
      Hashtbl.replace carried top (!regs, v_ok && lim_ok))
    tops;
  let pending : (int, iv array) Hashtbl.t = Hashtbl.create 8 in
  let join_pending pc =
    match Hashtbl.find_opt pending pc with
    | None -> ()
    | Some other ->
      Array.iteri (fun r v -> st.(r) <- ivjoin v st.(r)) other;
      Hashtbl.remove pending pc
  in
  let add_pending pc =
    match Hashtbl.find_opt pending pc with
    | None -> Hashtbl.replace pending pc (Array.copy st)
    | Some other -> Array.iteri (fun r v -> other.(r) <- ivjoin v st.(r)) other
  in
  for pc = 0 to n - 1 do
    join_pending pc;
    (match Hashtbl.find_opt tops pc with
    | None -> ()
    | Some (v, stp, lim, _) ->
      let regs, ok = Hashtbl.find carried pc in
      List.iter (fun r -> st.(r) <- Top) regs;
      if not ok then st.(v) <- Top
      else begin
        let limit =
          match lim with `Imm n -> I (n, n) | `Reg r -> st.(r)
        in
        match (stp > 0, st.(v), limit) with
        | true, I (l0, _), I (_, lh) ->
          st.(v) <- (if l0 > lh then I (l0, l0) else norm l0 lh)
        | false, I (_, h0), I (ll, _) ->
          st.(v) <- (if ll > h0 then I (h0, h0) else norm ll h0)
        | _ -> st.(v) <- Top
      end);
    at pc st;
    (match code.(pc) with
    | Bgt (_, _, t) | Blt (_, _, t) -> if t > pc then add_pending t
    | Region rid -> List.iter (fun r -> st.(r) <- Top) (rw.rw_writes rid)
    | _ -> ());
    effect st code.(pc)
  done;
  !sound

(* ------------------------------------------------------------------ *)
(* Region read/write attribution                                       *)
(* ------------------------------------------------------------------ *)

let region_rw (u : unit_) : rw =
  let nr = Array.length u.u_regions in
  let reads = Array.make (max nr 1) [] and writes = Array.make (max nr 1) [] in
  Array.iteri
    (fun i (r : region) ->
      let rd = ref [ r.rg_lo; r.rg_hi ] and wr = ref [ r.rg_vreg ] in
      let body code =
        Array.iter
          (fun ins ->
            rd := reads_of ins @ !rd;
            wr := writes_of ins @ !wr)
          code
      in
      body r.rg_serial;
      body r.rg_par;
      reads.(i) <- !rd;
      writes.(i) <- !wr)
    u.u_regions;
  {
    rw_reads = (fun rid -> reads.(rid));
    rw_writes = (fun rid -> writes.(rid));
  }

(* ------------------------------------------------------------------ *)
(* Bounds-check elision                                                *)
(* ------------------------------------------------------------------ *)

(* Rewrite the provable accesses of one code body; also snapshot the
   abstract state at each [Region] instruction (the body seeds).  When
   the scan judged the shape unsound, nothing is rewritten and the
   snapshots must not be trusted. *)
let elide_code ~rw ~arena ~seed ~where code =
  let rewritten = Array.copy code in
  let proofs = ref [] in
  let snaps = Hashtbl.create 4 in
  let decide pc (st : iv array) =
    let in_range r =
      match st.(r) with
      | I (l, h) when l >= 0 && h < arena -> Some (l, h)
      | _ -> None
    in
    let prf reg lo hi =
      proofs :=
        {
          p_where = where;
          p_pc = pc;
          p_reg = reg;
          p_lo = lo;
          p_hi = hi;
          p_arena = arena;
        }
        :: !proofs
    in
    match code.(pc) with
    | Ld (d, a) -> (
      match in_range a with
      | Some (l, h) ->
        rewritten.(pc) <- Ldu (d, a);
        prf (Some a) l h
      | None -> ())
    | St (a, s) -> (
      match in_range a with
      | Some (l, h) ->
        rewritten.(pc) <- Stu (a, s);
        prf (Some a) l h
      | None -> ())
    | Ldi (d, a) ->
      if a >= 0 && a < arena then begin
        rewritten.(pc) <- Ldui (d, a);
        prf None a a
      end
    | Sti (a, s) ->
      if a >= 0 && a < arena then begin
        rewritten.(pc) <- Stui (a, s);
        prf None a a
      end
    | Region rid -> Hashtbl.replace snaps rid (Array.copy st)
    | _ -> ()
  in
  let sound = scan ~rw ~seed code ~at:decide in
  if sound then (rewritten, List.rev !proofs, snaps, true)
  else (Array.copy code, [], snaps, false)

(* Paranoid mode: one [AssertRange] in front of each register-addressed
   unchecked access, so a wrong proof raises instead of reading wild.
   Branch targets are remapped; a target pointing at a checked access
   lands on its assert so every iteration re-checks. *)
let insert_asserts code proofs =
  let extra = Hashtbl.create 8 in
  List.iter
    (fun p ->
      match p.p_reg with
      | Some r -> Hashtbl.replace extra p.p_pc (AssertRange (r, p.p_lo, p.p_hi))
      | None -> ())
    proofs;
  if Hashtbl.length extra = 0 then code
  else begin
    let n = Array.length code in
    let map = Array.make (n + 1) 0 in
    let out = ref [] and len = ref 0 in
    let push i =
      out := i :: !out;
      incr len
    in
    for pc = 0 to n - 1 do
      map.(pc) <- !len;
      (match Hashtbl.find_opt extra pc with
      | Some a -> push a
      | None -> ());
      push code.(pc)
    done;
    map.(n) <- !len;
    let arr = Array.of_list (List.rev !out) in
    Array.map (remap_target map) arr
  end

let top_state n = Array.make (max n 1) Top

let elide_unit ~paranoid (u : unit_) =
  let rw = region_rw u in
  let nregs = max u.u_nregs 1 in
  (* registers are zeroed at Vm.create *)
  let seed0 = Array.make nregs (I (0, 0)) in
  let main', proofs_m, snaps, sound =
    elide_code ~rw ~arena:u.u_arena ~seed:seed0 ~where:"main" u.u_main
  in
  let all_proofs = ref proofs_m in
  (* Body seed: the main-scan state at the Region instruction, with
     every body-written register dropped to Top (registers persist
     across iterations) and the iteration register covering the whole
     evaluated bound range. *)
  let seed_for (r : region) body =
    let st =
      if sound then
        match Hashtbl.find_opt snaps r.rg_id with
        | Some s -> Array.copy s
        | None -> top_state nregs
      else top_state nregs
    in
    let vrange = ivjoin st.(r.rg_lo) st.(r.rg_hi) in
    Array.iter
      (fun ins -> List.iter (fun w -> st.(w) <- Top) (writes_of ins))
      body;
    st.(r.rg_vreg) <- vrange;
    st
  in
  let do_body (r : region) ~tag body =
    let seed = seed_for r body in
    let code', proofs, _, _ =
      elide_code ~rw ~arena:u.u_arena ~seed
        ~where:(Printf.sprintf "region %d %s" r.rg_id tag)
        body
    in
    all_proofs := !all_proofs @ proofs;
    if paranoid then insert_asserts code' proofs else code'
  in
  let main' = if paranoid then insert_asserts main' proofs_m else main' in
  let regions' =
    Array.map
      (fun r ->
        {
          r with
          rg_serial = do_body r ~tag:"serial" r.rg_serial;
          rg_par = do_body r ~tag:"par" r.rg_par;
        })
      u.u_regions
  in
  ({ u with u_main = main'; u_regions = regions' }, !all_proofs)

(* ------------------------------------------------------------------ *)
(* Superinstruction fusion                                             *)
(* ------------------------------------------------------------------ *)

exception Escape

(* Can any read observe the value the producer wrote to [d], walking
   all paths from [start]?  A write of [d] kills the value on that
   path; forward branches and loop back-edges fan the walk out.  A
   back edge always passes the producer (which rewrites [d]) before
   reaching the consumer again, so the walk terminates soundly on the
   visited set. *)
let value_escapes ~rw code start d =
  let n = Array.length code in
  let visited = Array.make (n + 1) false in
  let rec visit p =
    if p < n && not visited.(p) then begin
      visited.(p) <- true;
      let ins = code.(p) in
      let reads =
        match ins with Region rid -> rw.rw_reads rid | i -> reads_of i
      in
      if List.mem d reads then raise Escape;
      let writes =
        match ins with Region rid -> rw.rw_writes rid | i -> writes_of i
      in
      if not (List.mem d writes) then
        match ins with
        | Halt -> ()
        | Bgt (_, _, t) | Blt (_, _, t)
        | LoopUp (_, _, _, t) | LoopDown (_, _, _, t)
        | LoopUpi (_, _, _, t) | LoopDowni (_, _, _, t) ->
          visit t;
          visit (p + 1)
        | _ -> visit (p + 1)
    end
  in
  try
    visit start;
    false
  with Escape -> true

(* One left-to-right fusion pass over a code body.  [ok_intermediate]
   refuses registers that outlive the body (region descriptors, or
   registers read by other code bodies). *)
let fuse_pass ~rw ~ok_intermediate code =
  let n = Array.length code in
  let target = Array.make (n + 1) false in
  Array.iter
    (fun i ->
      match branch_target i with Some t -> target.(t) <- true | None -> ())
    code;
  let pair pc =
    if pc + 1 >= n || target.(pc + 1) then None
    else
      let fuse d ~kills mk =
        if
          ok_intermediate d
          && (kills || not (value_escapes ~rw code (pc + 2) d))
        then Some (mk ())
        else None
      in
      match (code.(pc), code.(pc + 1)) with
      | Muladd (d, s, k, t), Ld (x, a) when a = d ->
        fuse d ~kills:(x = d) (fun () -> MuladdLd (x, s, k, t))
      | Muladd (d, s, k, t), Ldu (x, a) when a = d ->
        fuse d ~kills:(x = d) (fun () -> MuladdLdu (x, s, k, t))
      | Muladd (d, s, k, t), St (a, v) when a = d && v <> d ->
        fuse d ~kills:false (fun () -> MuladdSt (s, k, t, v))
      | Muladd (d, s, k, t), Stu (a, v) when a = d && v <> d ->
        fuse d ~kills:false (fun () -> MuladdStu (s, k, t, v))
      | Addi (d, s, k), Ld (x, a) when a = d ->
        fuse d ~kills:(x = d) (fun () -> AddiLd (x, s, k))
      | Addi (d, s, k), Ldu (x, a) when a = d ->
        fuse d ~kills:(x = d) (fun () -> AddiLdu (x, s, k))
      | Addi (d, s, k), St (a, v) when a = d && v <> d ->
        fuse d ~kills:false (fun () -> AddiSt (s, k, v))
      | Addi (d, s, k), Stu (a, v) when a = d && v <> d ->
        fuse d ~kills:false (fun () -> AddiStu (s, k, v))
      | Add (d, a, b), St (ra, v) when v = d && ra <> d ->
        fuse d ~kills:false (fun () -> AddSt (ra, a, b))
      | Add (d, a, b), Stu (ra, v) when v = d && ra <> d ->
        fuse d ~kills:false (fun () -> AddStu (ra, a, b))
      | Sub (d, a, b), St (ra, v) when v = d && ra <> d ->
        fuse d ~kills:false (fun () -> SubSt (ra, a, b))
      | Sub (d, a, b), Stu (ra, v) when v = d && ra <> d ->
        fuse d ~kills:false (fun () -> SubStu (ra, a, b))
      | Mul (d, a, b), St (ra, v) when v = d && ra <> d ->
        fuse d ~kills:false (fun () -> MulSt (ra, a, b))
      | Mul (d, a, b), Stu (ra, v) when v = d && ra <> d ->
        fuse d ~kills:false (fun () -> MulStu (ra, a, b))
      | Mov (d, s), Ld (x, a) when a = d ->
        fuse d ~kills:(x = d) (fun () -> Ld (x, s))
      | Mov (d, s), Ldu (x, a) when a = d ->
        fuse d ~kills:(x = d) (fun () -> Ldu (x, s))
      | _ -> None
  in
  let map = Array.make (n + 1) 0 in
  let out = ref [] and len = ref 0 in
  let push i =
    out := i :: !out;
    incr len
  in
  let pc = ref 0 in
  while !pc < n do
    map.(!pc) <- !len;
    match pair !pc with
    | Some fused ->
      map.(!pc + 1) <- !len;
      push fused;
      pc := !pc + 2
    | None ->
      push code.(!pc);
      incr pc
  done;
  map.(n) <- !len;
  let arr = Array.of_list (List.rev !out) in
  Array.map (remap_target map) arr

let fuse_unit (u : unit_) =
  let rw = region_rw u in
  let protected = Hashtbl.create 8 in
  Array.iter
    (fun (r : region) ->
      Hashtbl.replace protected r.rg_vreg ();
      Hashtbl.replace protected r.rg_lo ();
      Hashtbl.replace protected r.rg_hi ())
    u.u_regions;
  let nr = Array.length u.u_regions in
  let codes = Array.make (1 + (2 * nr)) [||] in
  codes.(0) <- u.u_main;
  Array.iteri
    (fun i (r : region) ->
      codes.(1 + (2 * i)) <- r.rg_serial;
      codes.(2 + (2 * i)) <- r.rg_par)
    u.u_regions;
  let eliminated = ref 0 in
  (* Iterate to a fixpoint: a fused instruction can become adjacent to a
     new producer.  Each round strictly shrinks some body, so this is
     bounded. *)
  let changed = ref true in
  while !changed do
    changed := false;
    (* registers each body reads (a Region instruction reads only its
       descriptor registers here — body reads live in their own rows) *)
    let rsets =
      Array.map
        (fun code ->
          let h = Hashtbl.create 16 in
          Array.iter
            (fun ins ->
              let rs =
                match ins with
                | Region rid ->
                  let r = u.u_regions.(rid) in
                  [ r.rg_lo; r.rg_hi ]
                | i -> reads_of i
              in
              List.iter (fun x -> Hashtbl.replace h x ()) rs)
            code;
          h)
        codes
    in
    Array.iteri
      (fun k code ->
        let ok_intermediate d =
          (not (Hashtbl.mem protected d))
          &&
          let elsewhere = ref false in
          Array.iteri
            (fun j h -> if j <> k && Hashtbl.mem h d then elsewhere := true)
            rsets;
          not !elsewhere
        in
        let code' = fuse_pass ~rw ~ok_intermediate code in
        if Array.length code' < Array.length code then begin
          eliminated := !eliminated + (Array.length code - Array.length code');
          codes.(k) <- code';
          changed := true
        end)
      codes
  done;
  (* Loop back-edges whose limit register has a unique [Li] definition
     (dominating the top, since the only entry to a top is linear fall-
     through past it) take the immediate form. *)
  let loopi = ref 0 in
  let wcount = Hashtbl.create 16 in
  let bump r =
    Hashtbl.replace wcount r
      (1 + Option.value ~default:0 (Hashtbl.find_opt wcount r))
  in
  Array.iter
    (fun code -> Array.iter (fun ins -> List.iter bump (writes_of ins)) code)
    codes;
  Array.iter (fun (r : region) -> bump r.rg_vreg) u.u_regions;
  Array.iteri
    (fun k code ->
      let imm_limit lim top =
        if Hashtbl.find_opt wcount lim = Some 1 then begin
          let found = ref None in
          for j = 0 to top - 1 do
            match code.(j) with
            | Li (r, v) when r = lim -> found := Some v
            | _ -> ()
          done;
          !found
        end
        else None
      in
      codes.(k) <-
        Array.map
          (fun ins ->
            match ins with
            | LoopUp (v, stp, lim, top) -> (
              match imm_limit lim top with
              | Some c ->
                incr loopi;
                LoopUpi (v, stp, c, top)
              | None -> ins)
            | LoopDown (v, stp, lim, top) -> (
              match imm_limit lim top with
              | Some c ->
                incr loopi;
                LoopDowni (v, stp, c, top)
              | None -> ins)
            | _ -> ins)
          code)
    codes;
  let regions' =
    Array.mapi
      (fun i (r : region) ->
        { r with rg_serial = codes.(1 + (2 * i)); rg_par = codes.(2 + (2 * i)) })
      u.u_regions
  in
  ({ u with u_main = codes.(0); u_regions = regions' }, !eliminated, !loopi)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let optimize ?(paranoid = false) (u : unit_) =
  let u, proofs = if !elide then elide_unit ~paranoid u else (u, []) in
  let u, fused, loopi = if !superinst then fuse_unit u else (u, 0, 0) in
  (* keep the inline-threshold work proxy in sync with rewritten bodies *)
  let regions =
    Array.map
      (fun (r : region) -> { r with rg_cost = Array.length r.rg_serial })
      u.u_regions
  in
  ( { u with u_regions = regions },
    {
      r_elided = List.length proofs;
      r_fused = fused;
      r_loopi = loopi;
      r_proofs = proofs;
    } )

let check_proofs (u : unit_) (rep : report) =
  List.filter_map
    (fun p ->
      if p.p_arena <> u.u_arena then
        Some
          (Printf.sprintf "%s: proof arena %d <> unit arena %d"
             (proof_string p) p.p_arena u.u_arena)
      else if not (0 <= p.p_lo && p.p_lo <= p.p_hi && p.p_hi < u.u_arena) then
        Some (Printf.sprintf "%s: range escapes the arena" (proof_string p))
      else None)
    rep.r_proofs

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let opcode_name (i : instr) =
  let s = instr_string i in
  match String.index_opt s ' ' with
  | Some j -> String.sub s 0 j
  | None -> s

let static_counts (u : unit_) =
  let h = Hashtbl.create 32 in
  let tally code =
    Array.iter
      (fun i ->
        let k = opcode_name i in
        Hashtbl.replace h k
          (1 + Option.value ~default:0 (Hashtbl.find_opt h k)))
      code
  in
  tally u.u_main;
  Array.iter
    (fun (r : region) ->
      tally r.rg_serial;
      tally r.rg_par)
    u.u_regions;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []
  |> List.sort (fun (k1, v1) (k2, v2) ->
         if v1 <> v2 then compare v2 v1 else compare k1 k2)
