(** Reference interpreter for petit programs.

    Executes the loop nest with concrete symbolic-constant values and
    records every array read and write, instance by instance.  From the
    trace come the {e dynamic} dependences used as a testing oracle:
    value-based flow dependences (each read paired with its last writer -
    the dependences along which data actually flows) and memory-based
    dependences (what standard dependence analysis reports).  Their
    difference is exactly the set of dead dependences the paper
    eliminates. *)

type loc = string * int list

type instance = {
  acc : Ir.access;
  iters : int list;  (** enclosing loop variable values, outermost first *)
}

type event = { ev_instance : instance; ev_loc : loc; ev_write : bool }
type trace = { events : event list (** in execution order *) }

exception Runtime_error of string

(** {1 Pluggable stores}

    Memory sits behind a [store] so the tracing interpreter, the plain
    serial executor and the parallel doall executor ({!Xform.Exec})
    share one evaluator and differ only in where reads and writes
    land. *)

type store = {
  ld : loc -> int;  (** read one element *)
  st : loc -> int -> unit;  (** write one element *)
}

val hashtbl_store :
  ?init:(string -> int list -> int) -> (loc, int) Hashtbl.t -> store
(** A store over one hash table; reads of unwritten locations fall back
    to [init] (default all zero) without populating the table. *)

type env = {
  e_syms : (string * int) list;  (** symbolic-constant values *)
  mutable e_loops : (string * (int * int)) list;
      (** active loop bindings, innermost first:
          variable -> (surface value, normalized counter) *)
  e_mem : store;
}

val make_env : store:store -> syms:(string * int) list -> env

val eval_expr : env -> Ast.expr -> int
(** Evaluate an expression (array references read through the store);
    no events are recorded. *)

val exec_stmt : env -> Ir.istmt -> unit
(** Execute a statement tree fully serially against the environment's
    store; no events are recorded.  Mutates [env.e_loops] only
    transiently (restored on return). *)

val run :
  ?init:(string -> int list -> int) -> Ir.program -> syms:(string * int) list -> trace
(** Execute with the given symbolic-constant values; [init] supplies the
    initial array contents (default all zero) - used to seed index
    arrays. *)

type dep = { src : instance; dst : instance }

val value_flow_deps : trace -> dep list
val memory_deps : trace -> [ `Flow | `Anti | `Output ] -> dep list

val distance : dep -> int list
(** Dependence distance on the common loops of the two accesses. *)

val pp_instance : Format.formatter -> instance -> unit
val pp_dep : Format.formatter -> dep -> unit
