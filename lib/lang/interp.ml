(* Reference interpreter for petit programs.

   Executes the loop nest with concrete symbolic-constant values and
   records every array read and write, instance by instance.  From the
   trace we derive the *dynamic* dependences:

   - value-based flow dependences (read <- its last writer): the ground
     truth that the paper's live flow dependences must cover;
   - memory-based flow/anti/output dependences (all ordered pairs touching
     the same location): what standard dependence analysis reports.

   The difference between memory-based and value-based flow dependences is
   exactly the set of dead dependences the paper's techniques eliminate.

   Memory is behind a pluggable [store] so the tracing interpreter, the
   plain serial executor and the parallel doall executor (Xform.Exec)
   share one evaluator and differ only in where reads and writes land. *)

type loc = string * int list

type instance = {
  acc : Ir.access;
  iters : int list; (* values of the enclosing loop variables, outermost first *)
}

type event = { ev_instance : instance; ev_loc : loc; ev_write : bool }

type trace = { events : event list (* in execution order *) }

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Stores                                                              *)
(* ------------------------------------------------------------------ *)

type store = { ld : loc -> int; st : loc -> int -> unit }

let hashtbl_store ?(init = fun _ _ -> 0) tbl =
  {
    ld =
      (fun loc ->
        match Hashtbl.find_opt tbl loc with
        | Some v -> v
        | None -> init (fst loc) (snd loc));
    st = (fun loc v -> Hashtbl.replace tbl loc v);
  }

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

type env = {
  e_syms : (string * int) list;
  (* innermost first: variable -> (surface value, normalized counter) *)
  mutable e_loops : (string * (int * int)) list;
  e_mem : store;
}

let make_env ~store ~syms = { e_syms = syms; e_loops = []; e_mem = store }

(* Event recording, present only in tracing runs. *)
type tracing = {
  mutable rev_events : event list;
  (* read accesses of the current statement, queued in evaluation order *)
  mutable pending_reads : Ir.access list;
}

type state = { env : env; tracing : tracing option }

let lookup st name =
  match List.assoc_opt name st.env.e_loops with
  | Some (v, _) -> v
  | None -> (
    match List.assoc_opt name st.env.e_syms with
    | Some v -> v
    | None -> error "unbound variable %s at run time" name)

let current_iters st (a : Ir.access) =
  (* normalized counters of a's enclosing loops, outermost first (these are
     what the static analysis's iteration variables denote) *)
  List.map
    (fun (l : Ir.loop) ->
      match List.assoc_opt l.Ir.lvar st.env.e_loops with
      | Some (_, k) -> k
      | None -> error "loop variable %s not active" l.Ir.lvar)
    a.Ir.loops

(* Binary nodes evaluate left before right (explicit lets: OCaml's operator
   argument order is right-to-left, which would desynchronize the queued
   read accesses). *)
let rec eval st (e : Ast.expr) : int =
  match e with
  | Ast.Int n -> n
  | Ast.Name s -> lookup st s
  | Ast.Neg a -> -eval st a
  | Ast.Add (a, b) ->
    let x = eval st a in
    let y = eval st b in
    x + y
  | Ast.Sub (a, b) ->
    let x = eval st a in
    let y = eval st b in
    x - y
  | Ast.Mul (a, b) ->
    let x = eval st a in
    let y = eval st b in
    x * y
  | Ast.Max (a, b) ->
    let x = eval st a in
    let y = eval st b in
    max x y
  | Ast.Min (a, b) ->
    let x = eval st a in
    let y = eval st b in
    min x y
  | Ast.Ref (name, subs) ->
    let idx =
      List.fold_left (fun acc s -> eval st s :: acc) [] subs |> List.rev
    in
    let loc = (name, idx) in
    let v = st.env.e_mem.ld loc in
    (* pop the matching queued read access and log the event *)
    (match st.tracing with
     | None -> ()
     | Some t -> (
       match t.pending_reads with
       | acc :: rest ->
         assert (acc.Ir.array = name);
         t.pending_reads <- rest;
         t.rev_events <-
           { ev_instance = { acc; iters = current_iters st acc }; ev_loc = loc;
             ev_write = false }
           :: t.rev_events
       | [] -> error "interpreter out of sync: unexpected read of %s" name));
    v

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

let rec exec st (s : Ir.istmt) =
  match s with
  | Ir.IFor { var; lo; hi; step; body; _ } ->
    let l = eval st lo and h = eval st hi in
    let continue_ v = if step > 0 then v <= h else v >= h in
    let rec iterate v k =
      if continue_ v then begin
        st.env.e_loops <- (var, (v, k)) :: st.env.e_loops;
        List.iter (exec st) body;
        st.env.e_loops <- List.tl st.env.e_loops;
        iterate (v + step) (k + 1)
      end
    in
    iterate l 0
  | Ir.IAssign { write; reads; lhs = array, subs_ast; rhs; _ } -> (
    match st.tracing with
    | None ->
      (* lean path: evaluate and write, no event bookkeeping *)
      let value = eval st rhs in
      let idx =
        List.fold_left (fun acc s -> eval st s :: acc) [] subs_ast |> List.rev
      in
      st.env.e_mem.st (array, idx) value
    | Some t ->
      (* reads fire in evaluation order: RHS first, then LHS subscripts *)
      let rhs_read_count =
        List.length (List.rev (Sema.collect_reads rhs []))
      in
      let rhs_reads, lhs_reads =
        let rec split n l =
          if n = 0 then ([], l)
          else
            match l with
            | x :: r ->
              let a, b = split (n - 1) r in
              (x :: a, b)
            | [] -> ([], [])
        in
        split rhs_read_count reads
      in
      t.pending_reads <- rhs_reads;
      let value = eval st rhs in
      (if t.pending_reads <> [] then
         error "interpreter out of sync: leftover RHS reads");
      t.pending_reads <- lhs_reads;
      let idx =
        List.fold_left (fun acc s -> eval st s :: acc) [] subs_ast |> List.rev
      in
      (if t.pending_reads <> [] then
         error "interpreter out of sync: leftover LHS reads");
      let loc = (array, idx) in
      st.env.e_mem.st loc value;
      t.rev_events <-
        { ev_instance = { acc = write; iters = current_iters st write };
          ev_loc = loc; ev_write = true }
        :: t.rev_events)

(* Untraced entry points, used by Xform.Exec for both the serial baseline
   and the per-chunk bodies of parallel regions. *)
let eval_expr env e = eval { env; tracing = None } e
let exec_stmt env s = exec { env; tracing = None } s

let run ?(init = fun _ _ -> 0) (p : Ir.program) ~syms : trace =
  let env =
    make_env ~store:(hashtbl_store ~init (Hashtbl.create 64)) ~syms
  in
  let tracing = { rev_events = []; pending_reads = [] } in
  let st = { env; tracing = Some tracing } in
  List.iter (exec st) p.Ir.stmts;
  { events = List.rev tracing.rev_events }

(* ------------------------------------------------------------------ *)
(* Dynamic dependences                                                 *)
(* ------------------------------------------------------------------ *)

type dep = { src : instance; dst : instance }

(* Value-based flow dependences: each read paired with its most recent
   writer.  These are the dependences along which data actually flows. *)
let value_flow_deps (t : trace) : dep list =
  let last_writer : (loc, instance) Hashtbl.t = Hashtbl.create 64 in
  List.fold_left
    (fun acc ev ->
      if ev.ev_write then begin
        Hashtbl.replace last_writer ev.ev_loc ev.ev_instance;
        acc
      end
      else
        match Hashtbl.find_opt last_writer ev.ev_loc with
        | Some w -> { src = w; dst = ev.ev_instance } :: acc
        | None -> acc)
    [] t.events
  |> List.rev

(* Memory-based dependences: every ordered pair of accesses to the same
   location where at least one is a write.  [`Flow]: write then read;
   [`Anti]: read then write; [`Output]: write then write. *)
let memory_deps (t : trace) (kind : [ `Flow | `Anti | `Output ]) : dep list =
  let writers : (loc, instance list) Hashtbl.t = Hashtbl.create 64 in
  let readers : (loc, instance list) Hashtbl.t = Hashtbl.create 64 in
  let get tbl loc = Option.value (Hashtbl.find_opt tbl loc) ~default:[] in
  List.fold_left
    (fun acc ev ->
      let loc = ev.ev_loc and me = ev.ev_instance in
      let acc =
        if ev.ev_write then begin
          let acc =
            match kind with
            | `Output ->
              List.fold_left
                (fun acc w -> { src = w; dst = me } :: acc)
                acc (get writers loc)
            | `Anti ->
              List.fold_left
                (fun acc r -> { src = r; dst = me } :: acc)
                acc (get readers loc)
            | `Flow -> acc
          in
          Hashtbl.replace writers loc (me :: get writers loc);
          acc
        end
        else begin
          let acc =
            match kind with
            | `Flow ->
              List.fold_left
                (fun acc w -> { src = w; dst = me } :: acc)
                acc (get writers loc)
            | `Anti | `Output -> acc
          in
          Hashtbl.replace readers loc (me :: get readers loc);
          acc
        end
      in
      acc)
    [] t.events
  |> List.rev

(* Dependence distance on the common loops of the two accesses. *)
let distance (d : dep) : int list =
  let c = Ir.common_loops d.src.acc d.dst.acc in
  let rec take n l = if n = 0 then [] else match l with [] -> [] | x :: r -> x :: take (n - 1) r in
  let a = take c d.src.iters and b = take c d.dst.iters in
  List.map2 (fun x y -> y - x) a b

let pp_instance fmt i =
  Format.fprintf fmt "%s@@(%s)" (Ir.access_to_string i.acc)
    (String.concat "," (List.map string_of_int i.iters))

let pp_dep fmt d =
  Format.fprintf fmt "%a -> %a" pp_instance d.src pp_instance d.dst
