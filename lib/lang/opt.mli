(** Bytecode optimizer: the stage between {!Compile} and {!Vm}
    (DESIGN.md section 14).

    Two bytecode-level passes run here, both gated behind ablation
    flags in the style of [Omega.Tuning] (every pass is
    equivalence-preserving — flipping a flag changes time, never
    results, and the [speedup] bench enforces bit-identity over every
    flag subset):

    - {b bounds-check elision} ({!elide}): a linear interval analysis
      over each code body proves the address range of an arena access
      inside [[0, arena)]; proven accesses lower to the unchecked
      ([..u]) opcodes.  Every elision is justified by a recorded
      {!proof}; [optimize ~paranoid:true] additionally plants an
      {!Compile.AssertRange} re-check in front of each register-
      addressed unchecked access (debug mode — the production fast
      path carries no check at all).
    - {b superinstruction fusion} ({!superinst}): adjacent
      producer/consumer pairs on the corpus's hot decode chains
      collapse into single opcodes — address-compute + load/store
      ([MuladdLd], [AddiSt], ...), arithmetic + store ([AddSt], ...) —
      when the intermediate register is provably dead (a worklist walk
      over linear successors, forward branches and loop back-edges
      shows no other read can observe the value); counted-loop
      back-edges whose limit register has a unique [Li] definition
      take the immediate form ([LoopUpi]/[LoopDowni]).

    The other two optimizer flags are consumed by [Xform.Restructure]
    (IR-level, dependence-licensed): {!restructure} gates loop
    interchange and fusion, {!writekill} gates redundant-store
    deletion.  They live here so one module governs the whole
    optimizer surface. *)

(** {1 Flags} *)

val restructure : bool ref
(** Loop interchange + fusion in [Xform.Restructure], licensed by the
    dependence graph's refined direction vectors. *)

val superinst : bool ref
(** Superinstruction fusion + immediate-limit loop back-edges. *)

val elide : bool ref
(** Bounds-check elision on proven-in-range arena accesses. *)

val writekill : bool ref
(** Deletion of stores provably overwritten before any use
    ([Xform.Restructure], justified by [Core.Analyses.terminates]). *)

val set :
  restructure:bool -> superinst:bool -> elide:bool -> writekill:bool -> unit

val all_on : unit -> unit
(** The production configuration. *)

val all_off : unit -> unit
(** The unoptimized baseline. *)

val flags : unit -> (string * bool ref) list
(** The four switches with their artifact names, in canonical order
    (restructure, superinst, elide, writekill). *)

(** {1 Proof obligations} *)

type proof = {
  p_where : string;  (** ["main"], ["region 3 serial"], ["region 3 par"] *)
  p_pc : int;  (** pc in the elision-stage code (before fusion shifts) *)
  p_reg : int option;  (** address register; [None] for an immediate *)
  p_lo : int;  (** proven inclusive address range ... *)
  p_hi : int;  (** ... [p_lo <= addr <= p_hi] *)
  p_arena : int;  (** arena extent the range was checked against *)
}

val proof_string : proof -> string

type report = {
  r_elided : int;  (** arena accesses lowered to unchecked opcodes *)
  r_fused : int;  (** instructions eliminated by superinstruction fusion *)
  r_loopi : int;  (** loop back-edges rewritten to immediate limits *)
  r_proofs : proof list;  (** one per elision, in code order *)
}

val empty_report : report

(** {1 Entry points} *)

val optimize : ?paranoid:bool -> Compile.unit_ -> Compile.unit_ * report
(** Apply the enabled bytecode passes ({!elide}, then {!superinst}).
    Registers, regions and the arena layout are untouched — only
    instructions change, so [Vm.equal_state] remains valid between
    optimized and unoptimized runs of the same compile.
    [paranoid] plants {!Compile.AssertRange} re-checks for every
    register-addressed elision (and, by interposing them, keeps
    unchecked accesses out of fused opcodes), so a wrong proof
    surfaces as {!Vm.Proof_failure} instead of a wild access. *)

val check_proofs : Compile.unit_ -> report -> string list
(** Static re-verification of a report against the {e unoptimized}
    unit it was produced from: every proof's range must lie inside the
    arena.  Returns human-readable violations ([[]] = all hold). *)

(** {1 Inspection} *)

val opcode_name : Compile.instr -> string
(** Short mnemonic, the key of {!static_counts}. *)

val static_counts : Compile.unit_ -> (string * int) list
(** Static per-opcode instruction counts over the main code and every
    region body, sorted descending. *)
