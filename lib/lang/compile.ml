(* Bytecode compiler for petit: flat arena memory, three-address code,
   affine addresses resolved at compile time.  See compile.mli for the
   model.  The compiler runs under concrete symbolic-constant values, so
   every symbol folds to an immediate and array extents can be computed
   exactly by interval analysis over the accesses. *)

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type instr =
  | Li of int * int
  | Mov of int * int
  | Add of int * int * int
  | Sub of int * int * int
  | Mul of int * int * int
  | Maxr of int * int * int
  | Minr of int * int * int
  | Addi of int * int * int
  | Muli of int * int * int
  | Muladd of int * int * int * int
  | Ld of int * int
  | Ldi of int * int
  | St of int * int
  | Sti of int * int
  | LdS of int * int
  | LdSi of int * int
  | StS of int * int
  | StSi of int * int
  | Bgt of int * int * int
  | Blt of int * int * int
  | LoopUp of int * int * int * int
  | LoopDown of int * int * int * int
  | Region of int
  | Halt
  (* Optimizer-only opcodes below: the compiler never emits these; they
     are introduced by [Opt] (bounds-check elision, superinstruction
     fusion, proof re-checking).  Unchecked ([..u]) memory opcodes skip
     the arena bounds check — every occurrence is justified by a
     recorded interval proof. *)
  | Ldu of int * int
  | Ldui of int * int
  | Stu of int * int
  | Stui of int * int
  | MuladdLd of int * int * int * int
  | MuladdLdu of int * int * int * int
  | MuladdSt of int * int * int * int
  | MuladdStu of int * int * int * int
  | AddiLd of int * int * int
  | AddiLdu of int * int * int
  | AddiSt of int * int * int
  | AddiStu of int * int * int
  | AddSt of int * int * int
  | AddStu of int * int * int
  | SubSt of int * int * int
  | SubStu of int * int * int
  | MulSt of int * int * int
  | MulStu of int * int * int
  | LoopUpi of int * int * int * int
  | LoopDowni of int * int * int * int
  | AssertRange of int * int * int

type dim = { d_lo : int; d_hi : int; d_stride : int }

type arr = {
  a_name : string;
  a_base : int;
  a_dims : dim list;
  a_size : int;
}

type priv_copy = {
  pc_array : string;
  pc_arena : int;
  pc_slab : int;
  pc_len : int;
}

type region = {
  rg_id : int;
  rg_node : int;
  rg_var : string;
  rg_vreg : int;
  rg_lo : int;
  rg_hi : int;
  rg_step : int;
  rg_serial : instr array;
  rg_par : instr array;
  rg_privs : priv_copy list;
  rg_slab : int;
  rg_cost : int;
}

type unit_ = {
  u_main : instr array;
  u_regions : region array;
  u_nregs : int;
  u_arena : int;
  u_arrays : arr list;
}

(* ------------------------------------------------------------------ *)
(* Interval analysis: array extents from the accesses                  *)
(* ------------------------------------------------------------------ *)

(* Evaluate an expression to a conservative [lo, hi] interval under
   concrete symbols and loop-variable intervals.  Anything involving an
   array read is opaque and unsupported (index arrays in subscripts or
   bounds cannot be sized at compile time). *)
let rec ival syms env (e : Ast.expr) : int * int =
  match e with
  | Ast.Int n -> (n, n)
  | Ast.Name s -> (
    match List.assoc_opt s env with
    | Some iv -> iv
    | None -> (
      match List.assoc_opt s syms with
      | Some v -> (v, v)
      | None -> unsupported "unbound name %s" s))
  | Ast.Neg a ->
    let l, h = ival syms env a in
    (-h, -l)
  | Ast.Add (a, b) ->
    let la, ha = ival syms env a and lb, hb = ival syms env b in
    (la + lb, ha + hb)
  | Ast.Sub (a, b) ->
    let la, ha = ival syms env a and lb, hb = ival syms env b in
    (la - hb, ha - lb)
  | Ast.Mul (a, b) ->
    let la, ha = ival syms env a and lb, hb = ival syms env b in
    let ps = [ la * lb; la * hb; ha * lb; ha * hb ] in
    (List.fold_left min max_int ps, List.fold_left max min_int ps)
  | Ast.Max (a, b) ->
    let la, ha = ival syms env a and lb, hb = ival syms env b in
    (max la lb, max ha hb)
  | Ast.Min (a, b) ->
    let la, ha = ival syms env a and lb, hb = ival syms env b in
    (min la lb, min ha hb)
  | Ast.Ref (name, _) ->
    unsupported "opaque term (read of %s) in subscript or bound" name

(* Loop-variable interval covering every iteration, both step signs; an
   interval that is empty everywhere still gets a 1-point placeholder so
   the (never-executed) body scans cleanly. *)
let loop_interval syms env ~lo ~hi ~step =
  let llo, lhi = ival syms env lo and hlo, hhi = ival syms env hi in
  let a, b = if step > 0 then (llo, hhi) else (hlo, lhi) in
  if a > b then (a, a) else (a, b)

type extents = (string, (int * int) array) Hashtbl.t

let record_access (ext : extents) syms env name (subs : Ast.expr list) =
  let ivs = Array.of_list (List.map (ival syms env) subs) in
  match Hashtbl.find_opt ext name with
  | None -> Hashtbl.replace ext name ivs
  | Some old ->
    if Array.length old <> Array.length ivs then
      unsupported "array %s used with inconsistent arity" name;
    Array.iteri
      (fun i (l, h) ->
        let ol, oh = old.(i) in
        old.(i) <- (min ol l, max oh h))
      ivs

let rec record_expr ext syms env (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Name _ -> ()
  | Ast.Neg a -> record_expr ext syms env a
  | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b)
  | Ast.Max (a, b) | Ast.Min (a, b) ->
    record_expr ext syms env a;
    record_expr ext syms env b
  | Ast.Ref (name, subs) ->
    List.iter (record_expr ext syms env) subs;
    record_access ext syms env name subs

let rec scan_stmt ext syms env (s : Ir.istmt) =
  match s with
  | Ir.IAssign { lhs = name, subs; rhs; _ } ->
    List.iter (record_expr ext syms env) subs;
    record_access ext syms env name subs;
    record_expr ext syms env rhs
  | Ir.IFor { var; lo; hi; step; body; _ } ->
    let iv = loop_interval syms env ~lo ~hi ~step in
    List.iter (scan_stmt ext syms ((var, iv) :: env)) body

(* Row-major layout of all extents into one arena. *)
let layout_arrays (ext : extents) : (string, arr) Hashtbl.t * int =
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) ext [] |> List.sort compare
  in
  let tbl = Hashtbl.create 16 in
  let base = ref 0 in
  List.iter
    (fun name ->
      let ivs = Hashtbl.find ext name in
      let n = Array.length ivs in
      let strides = Array.make n 1 in
      for i = n - 2 downto 0 do
        let l, h = ivs.(i + 1) in
        strides.(i) <- strides.(i + 1) * (h - l + 1)
      done;
      let size =
        if n = 0 then 1
        else
          let l, h = ivs.(0) in
          strides.(0) * (h - l + 1)
      in
      if size < 0 || !base + size > 1 lsl 28 then
        unsupported "arena too large (array %s)" name;
      let dims =
        List.init n (fun i ->
            let l, h = ivs.(i) in
            { d_lo = l; d_hi = h; d_stride = strides.(i) })
      in
      Hashtbl.replace tbl name
        { a_name = name; a_base = !base; a_dims = dims; a_size = size };
      base := !base + size)
    names;
  (tbl, !base)

(* ------------------------------------------------------------------ *)
(* Code buffers                                                        *)
(* ------------------------------------------------------------------ *)

type buf = { mutable b_code : instr array; mutable b_len : int }

let new_buf () = { b_code = Array.make 64 Halt; b_len = 0 }

let emit b i =
  if b.b_len = Array.length b.b_code then begin
    let c = Array.make (2 * b.b_len) Halt in
    Array.blit b.b_code 0 c 0 b.b_len;
    b.b_code <- c
  end;
  b.b_code.(b.b_len) <- i;
  b.b_len <- b.b_len + 1

let here b = b.b_len
let patch b pc i = b.b_code.(pc) <- i
let finish b = Array.sub b.b_code 0 b.b_len

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

(* A compiled value: a known constant (foldable into consumers) or a
   register. *)
type rv = Imm of int | Reg of int

type st = {
  c_syms : (string * int) list;
  mutable c_next : int;  (* register allocator *)
  c_arrs : (string, arr) Hashtbl.t;
  mutable c_regions : region list;  (* reversed *)
  mutable c_nregions : int;
}

let fresh st =
  let r = st.c_next in
  st.c_next <- r + 1;
  r

let materialize st buf = function
  | Reg r -> r
  | Imm n ->
    let r = fresh st in
    emit buf (Li (r, n));
    r

(* Affine form of a subscript over loop-variable registers:
   constant + sum of coeff * reg. *)
type aff = { ac : int; at : (int * int) list }

let aff_add a b =
  let at =
    List.fold_left
      (fun acc (r, c) ->
        match List.assoc_opt r acc with
        | None -> (r, c) :: acc
        | Some c0 ->
          let acc = List.remove_assoc r acc in
          if c0 + c = 0 then acc else (r, c0 + c) :: acc)
      a.at b.at
  in
  { ac = a.ac + b.ac; at }

let aff_scale k a =
  if k = 0 then { ac = 0; at = [] }
  else { ac = k * a.ac; at = List.map (fun (r, c) -> (r, k * c)) a.at }

let rec affx st env (e : Ast.expr) : aff =
  match e with
  | Ast.Int n -> { ac = n; at = [] }
  | Ast.Name s -> (
    match List.assoc_opt s env with
    | Some r -> { ac = 0; at = [ (r, 1) ] }
    | None -> (
      match List.assoc_opt s st.c_syms with
      | Some v -> { ac = v; at = [] }
      | None -> unsupported "unbound name %s" s))
  | Ast.Neg a -> aff_scale (-1) (affx st env a)
  | Ast.Add (a, b) -> aff_add (affx st env a) (affx st env b)
  | Ast.Sub (a, b) -> aff_add (affx st env a) (aff_scale (-1) (affx st env b))
  | Ast.Mul (a, b) -> (
    let fa = affx st env a and fb = affx st env b in
    match (fa.at, fb.at) with
    | [], _ -> aff_scale fa.ac fb
    | _, [] -> aff_scale fb.ac fa
    | _ -> unsupported "non-affine subscript (product of variables)")
  | Ast.Max (a, b) | Ast.Min (a, b) -> (
    let fa = affx st env a and fb = affx st env b in
    match (fa.at, fb.at) with
    | [], [] ->
      let f = match e with Ast.Max _ -> max | _ -> min in
      { ac = f fa.ac fb.ac; at = [] }
    | _ -> unsupported "max/min in subscript")
  | Ast.Ref (name, _) ->
    unsupported "opaque subscript (read of index array %s)" name

(* Emit the affine value into a register chain: one Muladd per extra
   term, the constant folded into the first instruction or appended. *)
let gen_affine st buf (a : aff) : rv =
  match a.at with
  | [] -> Imm a.ac
  | (r0, c0) :: rest ->
    let sorted = List.sort compare rest in
    if sorted = [] && c0 = 1 && a.ac = 0 then Reg r0
    else begin
      let d = fresh st in
      (if c0 = 1 then
         if a.ac = 0 then emit buf (Mov (d, r0))
         else emit buf (Addi (d, r0, a.ac))
       else begin
         emit buf (Muli (d, r0, c0));
         if a.ac <> 0 then emit buf (Addi (d, d, a.ac))
       end);
      (* constant already folded in *)
      List.iter (fun (r, c) -> emit buf (Muladd (d, d, c, r))) sorted;
      Reg d
    end

(* The arena (or slab) address of [name] at the given subscripts.
   [slabs] maps privatized arrays to their slab base; membership also
   selects the slab-addressed load/store opcodes at the call sites. *)
let addr_rv st buf env ~slabs name (subs : Ast.expr list) : rv =
  let arr =
    match Hashtbl.find_opt st.c_arrs name with
    | Some a -> a
    | None -> unsupported "array %s has no layout" name
  in
  if List.length subs <> List.length arr.a_dims then
    unsupported "array %s used with inconsistent arity" name;
  let base =
    match slabs with
    | Some tbl -> (
      match Hashtbl.find_opt tbl name with
      | Some slab_base -> slab_base
      | None -> arr.a_base)
    | None -> arr.a_base
  in
  let a =
    List.fold_left2
      (fun acc sub d ->
        let f = affx st env sub in
        aff_add acc
          (aff_scale d.d_stride { f with ac = f.ac - d.d_lo }))
      { ac = base; at = [] }
      subs arr.a_dims
  in
  gen_affine st buf a

let in_slab ~slabs name =
  match slabs with Some tbl -> Hashtbl.mem tbl name | None -> false

let rec cexpr st buf env ~slabs (e : Ast.expr) : rv =
  let bin a b fold big imm_r =
    let ra = cexpr st buf env ~slabs a and rb = cexpr st buf env ~slabs b in
    match (ra, rb) with
    | Imm x, Imm y -> Imm (fold x y)
    | _ -> (
      match imm_r (ra, rb) with
      | Some i -> i
      | None ->
        let x = materialize st buf ra and y = materialize st buf rb in
        let d = fresh st in
        emit buf (big d x y);
        Reg d)
  in
  match e with
  | Ast.Int n -> Imm n
  | Ast.Name s -> (
    match List.assoc_opt s env with
    | Some r -> Reg r
    | None -> (
      match List.assoc_opt s st.c_syms with
      | Some v -> Imm v
      | None -> unsupported "unbound name %s" s))
  | Ast.Neg a -> (
    match cexpr st buf env ~slabs a with
    | Imm n -> Imm (-n)
    | Reg r ->
      let d = fresh st in
      emit buf (Muli (d, r, -1));
      Reg d)
  | Ast.Add (a, b) ->
    bin a b ( + )
      (fun d x y -> Add (d, x, y))
      (fun (ra, rb) ->
        match (ra, rb) with
        | Reg r, Imm n | Imm n, Reg r ->
          if n = 0 then Some (Reg r)
          else begin
            let d = fresh st in
            emit buf (Addi (d, r, n));
            Some (Reg d)
          end
        | _ -> None)
  | Ast.Sub (a, b) ->
    bin a b ( - )
      (fun d x y -> Sub (d, x, y))
      (fun (ra, rb) ->
        match (ra, rb) with
        | Reg r, Imm n ->
          if n = 0 then Some (Reg r)
          else begin
            let d = fresh st in
            emit buf (Addi (d, r, -n));
            Some (Reg d)
          end
        | Imm n, Reg r ->
          let d = fresh st in
          emit buf (Muli (d, r, -1));
          if n <> 0 then emit buf (Addi (d, d, n));
          Some (Reg d)
        | _ -> None)
  | Ast.Mul (a, b) ->
    bin a b ( * )
      (fun d x y -> Mul (d, x, y))
      (fun (ra, rb) ->
        match (ra, rb) with
        | Reg r, Imm n | Imm n, Reg r ->
          if n = 1 then Some (Reg r)
          else begin
            let d = fresh st in
            emit buf (Muli (d, r, n));
            Some (Reg d)
          end
        | _ -> None)
  | Ast.Max (a, b) ->
    bin a b max (fun d x y -> Maxr (d, x, y)) (fun _ -> None)
  | Ast.Min (a, b) ->
    bin a b min (fun d x y -> Minr (d, x, y)) (fun _ -> None)
  | Ast.Ref (name, subs) ->
    let slab = in_slab ~slabs name in
    let addr = addr_rv st buf env ~slabs name subs in
    let d = fresh st in
    (match addr with
    | Imm a -> emit buf (if slab then LdSi (d, a) else Ldi (d, a))
    | Reg r -> emit buf (if slab then LdS (d, r) else Ld (d, r)));
    Reg d

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

let trip l h step =
  if step > 0 then if l > h then 0 else ((h - l) / step) + 1
  else if l < h then 0
  else ((l - h) / -step) + 1

let rec cstmt st buf env ~plan ~slabs (s : Ir.istmt) =
  match s with
  | Ir.IAssign { lhs = name, subs; rhs; _ } ->
    let v = cexpr st buf env ~slabs rhs in
    let r = materialize st buf v in
    let slab = in_slab ~slabs name in
    (match addr_rv st buf env ~slabs name subs with
    | Imm a -> emit buf (if slab then StSi (a, r) else Sti (a, r))
    | Reg ra -> emit buf (if slab then StS (ra, r) else St (ra, r)))
  | Ir.IFor { node_id; var; lo; hi; step; body; _ } -> (
    match
      match plan with
      | Some pl -> List.assoc_opt node_id pl
      | None -> None
    with
    | Some privs -> cregion st buf env node_id var lo hi step body privs
    | None -> (
      let lo_rv = cexpr st buf env ~slabs lo in
      let hi_rv = cexpr st buf env ~slabs hi in
      match (lo_rv, hi_rv) with
      | Imm l, Imm h when trip l h step = 0 -> ()
      | _ ->
        let v = fresh st in
        (match lo_rv with
        | Imm n -> emit buf (Li (v, n))
        | Reg r -> emit buf (Mov (v, r)));
        let hreg = materialize st buf hi_rv in
        let statically_nonempty =
          match (lo_rv, hi_rv) with
          | Imm l, Imm h -> trip l h step > 0
          | _ -> false
        in
        let guard =
          if statically_nonempty then None
          else begin
            let pc = here buf in
            emit buf Halt;
            (* placeholder *)
            Some pc
          end
        in
        let top = here buf in
        List.iter (cstmt st buf ((var, v) :: env) ~plan ~slabs) body;
        emit buf
          (if step > 0 then LoopUp (v, step, hreg, top)
           else LoopDown (v, step, hreg, top));
        Option.iter
          (fun pc ->
            patch buf pc
              (if step > 0 then Bgt (v, hreg, here buf)
               else Blt (v, hreg, here buf)))
          guard))

(* A plan doall loop reached in main code: evaluate the bounds, record a
   region with serial and parallel one-iteration bodies, emit [Region].
   Plan loops inside the body run serially within an iteration (the
   dynamically-outermost doall wins), so bodies compile with no plan. *)
and cregion st buf env node_id var lo hi step body privs =
  let lo_reg = materialize st buf (cexpr st buf env ~slabs:None lo) in
  let hi_reg = materialize st buf (cexpr st buf env ~slabs:None hi) in
  let vreg = fresh st in
  let env' = (var, vreg) :: env in
  let rg_privs, rg_slab =
    List.fold_left
      (fun (acc, off) name ->
        match Hashtbl.find_opt st.c_arrs name with
        | None -> (acc, off)  (* never-accessed array: nothing to copy *)
        | Some a ->
          ( { pc_array = name; pc_arena = a.a_base; pc_slab = off;
              pc_len = a.a_size }
            :: acc,
            off + a.a_size ))
      ([], 0) privs
  in
  let rg_privs = List.rev rg_privs in
  let compile_body ~slabs =
    let b = new_buf () in
    List.iter (cstmt st b env' ~plan:None ~slabs) body;
    emit b Halt;
    finish b
  in
  let rg_serial = compile_body ~slabs:None in
  let slab_tbl = Hashtbl.create 4 in
  List.iter (fun p -> Hashtbl.replace slab_tbl p.pc_array p.pc_slab) rg_privs;
  let rg_par = compile_body ~slabs:(Some slab_tbl) in
  let rid = st.c_nregions in
  st.c_nregions <- rid + 1;
  st.c_regions <-
    {
      rg_id = rid;
      rg_node = node_id;
      rg_var = var;
      rg_vreg = vreg;
      rg_lo = lo_reg;
      rg_hi = hi_reg;
      rg_step = step;
      rg_serial;
      rg_par;
      rg_privs;
      rg_slab;
      rg_cost = Array.length rg_serial;
    }
    :: st.c_regions;
  emit buf (Region rid)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let program ?plan (prog : Ir.program) ~syms : unit_ =
  let ext : extents = Hashtbl.create 16 in
  List.iter (scan_stmt ext syms []) prog.Ir.stmts;
  let arrs, arena = layout_arrays ext in
  let st =
    { c_syms = syms; c_next = 0; c_arrs = arrs; c_regions = []; c_nregions = 0 }
  in
  let buf = new_buf () in
  List.iter (cstmt st buf [] ~plan ~slabs:None) prog.Ir.stmts;
  emit buf Halt;
  let arrays =
    Hashtbl.fold (fun _ a acc -> a :: acc) arrs []
    |> List.sort (fun a b -> compare a.a_base b.a_base)
  in
  {
    u_main = finish buf;
    u_regions = Array.of_list (List.rev st.c_regions);
    u_nregs = st.c_next;
    u_arena = arena;
    u_arrays = arrays;
  }

(* ------------------------------------------------------------------ *)
(* Addressing helpers                                                  *)
(* ------------------------------------------------------------------ *)

let addr (u : unit_) ((name, idx) : string * int list) : int option =
  match List.find_opt (fun a -> a.a_name = name) u.u_arrays with
  | None -> None
  | Some a ->
    if List.length idx <> List.length a.a_dims then None
    else begin
      let ok = ref true in
      let off =
        List.fold_left2
          (fun acc i d ->
            if i < d.d_lo || i > d.d_hi then ok := false;
            acc + ((i - d.d_lo) * d.d_stride))
          a.a_base idx a.a_dims
      in
      if !ok then Some off else None
    end

let iter_cells (u : unit_) f =
  List.iter
    (fun a ->
      let rec go dims idx_rev off =
        match dims with
        | [] -> f a.a_name (List.rev idx_rev) off
        | d :: rest ->
          for i = d.d_lo to d.d_hi do
            go rest (i :: idx_rev) (off + ((i - d.d_lo) * d.d_stride))
          done
      in
      go a.a_dims [] a.a_base)
    u.u_arrays

(* ------------------------------------------------------------------ *)
(* Disassembly                                                         *)
(* ------------------------------------------------------------------ *)

let instr_string = function
  | Li (d, n) -> Printf.sprintf "li    r%d, %d" d n
  | Mov (d, s) -> Printf.sprintf "mov   r%d, r%d" d s
  | Add (d, a, b) -> Printf.sprintf "add   r%d, r%d, r%d" d a b
  | Sub (d, a, b) -> Printf.sprintf "sub   r%d, r%d, r%d" d a b
  | Mul (d, a, b) -> Printf.sprintf "mul   r%d, r%d, r%d" d a b
  | Maxr (d, a, b) -> Printf.sprintf "max   r%d, r%d, r%d" d a b
  | Minr (d, a, b) -> Printf.sprintf "min   r%d, r%d, r%d" d a b
  | Addi (d, s, n) -> Printf.sprintf "addi  r%d, r%d, %d" d s n
  | Muli (d, s, n) -> Printf.sprintf "muli  r%d, r%d, %d" d s n
  | Muladd (d, s, n, t) -> Printf.sprintf "mulad r%d, r%d, %d*r%d" d s n t
  | Ld (d, a) -> Printf.sprintf "ld    r%d, [r%d]" d a
  | Ldi (d, a) -> Printf.sprintf "ld    r%d, [%d]" d a
  | St (a, s) -> Printf.sprintf "st    [r%d], r%d" a s
  | Sti (a, s) -> Printf.sprintf "st    [%d], r%d" a s
  | LdS (d, a) -> Printf.sprintf "lds   r%d, [r%d]" d a
  | LdSi (d, a) -> Printf.sprintf "lds   r%d, [%d]" d a
  | StS (a, s) -> Printf.sprintf "sts   [r%d], r%d" a s
  | StSi (a, s) -> Printf.sprintf "sts   [%d], r%d" a s
  | Bgt (a, b, t) -> Printf.sprintf "bgt   r%d, r%d, %d" a b t
  | Blt (a, b, t) -> Printf.sprintf "blt   r%d, r%d, %d" a b t
  | LoopUp (v, s, l, t) -> Printf.sprintf "loop+ r%d += %d <= r%d -> %d" v s l t
  | LoopDown (v, s, l, t) ->
    Printf.sprintf "loop- r%d += %d >= r%d -> %d" v s l t
  | Region r -> Printf.sprintf "region %d" r
  | Halt -> "halt"
  | Ldu (d, a) -> Printf.sprintf "ld.u  r%d, [r%d]" d a
  | Ldui (d, a) -> Printf.sprintf "ld.u  r%d, [%d]" d a
  | Stu (a, s) -> Printf.sprintf "st.u  [r%d], r%d" a s
  | Stui (a, s) -> Printf.sprintf "st.u  [%d], r%d" a s
  | MuladdLd (d, s, n, t) -> Printf.sprintf "mald  r%d, [r%d + %d*r%d]" d s n t
  | MuladdLdu (d, s, n, t) ->
    Printf.sprintf "mald.u r%d, [r%d + %d*r%d]" d s n t
  | MuladdSt (s, n, t, v) -> Printf.sprintf "mast  [r%d + %d*r%d], r%d" s n t v
  | MuladdStu (s, n, t, v) ->
    Printf.sprintf "mast.u [r%d + %d*r%d], r%d" s n t v
  | AddiLd (d, s, n) -> Printf.sprintf "aild  r%d, [r%d + %d]" d s n
  | AddiLdu (d, s, n) -> Printf.sprintf "aild.u r%d, [r%d + %d]" d s n
  | AddiSt (s, n, v) -> Printf.sprintf "aist  [r%d + %d], r%d" s n v
  | AddiStu (s, n, v) -> Printf.sprintf "aist.u [r%d + %d], r%d" s n v
  | AddSt (a, b, c) -> Printf.sprintf "addst [r%d], r%d + r%d" a b c
  | AddStu (a, b, c) -> Printf.sprintf "addst.u [r%d], r%d + r%d" a b c
  | SubSt (a, b, c) -> Printf.sprintf "subst [r%d], r%d - r%d" a b c
  | SubStu (a, b, c) -> Printf.sprintf "subst.u [r%d], r%d - r%d" a b c
  | MulSt (a, b, c) -> Printf.sprintf "mulst [r%d], r%d * r%d" a b c
  | MulStu (a, b, c) -> Printf.sprintf "mulst.u [r%d], r%d * r%d" a b c
  | LoopUpi (v, s, l, t) -> Printf.sprintf "loop+ r%d += %d <= %d -> %d" v s l t
  | LoopDowni (v, s, l, t) ->
    Printf.sprintf "loop- r%d += %d >= %d -> %d" v s l t
  | AssertRange (r, lo, hi) ->
    Printf.sprintf "arng  %d <= r%d <= %d" lo r hi

let disasm (u : unit_) : string =
  let b = Buffer.create 1024 in
  let code name c =
    Buffer.add_string b (name ^ ":\n");
    Array.iteri
      (fun i ins ->
        Buffer.add_string b (Printf.sprintf "  %3d  %s\n" i (instr_string ins)))
      c
  in
  List.iter
    (fun a ->
      Buffer.add_string b
        (Printf.sprintf "array %s @%d size %d [%s]\n" a.a_name a.a_base a.a_size
           (String.concat ","
              (List.map
                 (fun d -> Printf.sprintf "%d:%d/%d" d.d_lo d.d_hi d.d_stride)
                 a.a_dims))))
    u.u_arrays;
  code "main" u.u_main;
  Array.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "region %d (loop %s, node %d, step %d, slab %d)\n"
           r.rg_id r.rg_var r.rg_node r.rg_step r.rg_slab);
      code "  serial" r.rg_serial;
      code "  par" r.rg_par)
    u.u_regions;
  Buffer.contents b
