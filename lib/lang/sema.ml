(* Semantic analysis: surface AST -> IR.

   - resolves names to loop variables (by nest position) or declared
     symbolic constants;
   - extracts affine forms of subscripts and loop bounds, demoting
     non-affine subexpressions (products of variables, index-array reads)
     to opaque terms;
   - flattens every array access into the program-wide access table;
   - records assume-conditions over symbolic constants. *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type env = {
  symbolics : string list;
  (* innermost LAST; each loop variable maps to its value as an affine
     form over the normalized counters (identity for step-1 loops,
     [lo + step*counter] otherwise) *)
  loop_vars : (string * Ir.affine) list;
  scalars : string list; (* declared zero-dimensional arrays *)
  opaques : Ir.opaque list ref;
  next_opaque : int ref;
}

let lookup_var env name =
  match List.assoc_opt name env.loop_vars with
  | Some aff -> Some aff
  | None ->
    if List.mem name env.symbolics then Some (Ir.aff_var (Ir.Symc name))
    else None

let fresh_opaque env (repr : Ast.expr) ~base ~args : Ir.affine =
  let id = !(env.next_opaque) in
  incr env.next_opaque;
  env.opaques := { Ir.opq_id = id; repr; base; args } :: !(env.opaques);
  Ir.aff_var (Ir.Opq id)

(* Affine extraction.  [allow_minmax] is [`No] inside subscripts, [`Max]
   in lower bounds, [`Min] in upper bounds (returning the list of arms). *)
let rec to_affine env (e : Ast.expr) : Ir.affine =
  match e with
  | Ast.Int n -> Ir.aff_const n
  | Ast.Name name -> (
    match lookup_var env name with
    | Some aff -> aff
    | None ->
      if List.mem name env.scalars then
        (* a scalar read in affine position: an opaque term *)
        fresh_opaque env (Ast.Ref (name, [])) ~base:(Some name) ~args:[]
      else error "undeclared name %s (declare it as symbolic)" name)
  | Ast.Neg e -> Ir.aff_neg (to_affine env e)
  | Ast.Add (a, b) -> Ir.aff_add (to_affine env a) (to_affine env b)
  | Ast.Sub (a, b) -> Ir.aff_sub (to_affine env a) (to_affine env b)
  | Ast.Mul (a, b) -> (
    let fa = to_affine env a and fb = to_affine env b in
    if Ir.aff_is_const fa then Ir.aff_scale fa.Ir.const fb
    else if Ir.aff_is_const fb then Ir.aff_scale fb.Ir.const fa
    else
      (* non-linear term: opaque (section 5 treats i*j as an "array"
         indexed by its variables) *)
      fresh_opaque env e ~base:None ~args:[ fa; fb ])
  | Ast.Max _ | Ast.Min _ ->
    error "max/min are only allowed at the top of loop bounds"
  | Ast.Ref (name, subs) ->
    (* an array read in subscript/bound position: opaque term *)
    let args = List.map (to_affine env) subs in
    fresh_opaque env e ~base:(Some name) ~args

(* Bound decomposition.  A lower bound [v >= e] is equivalent to one
   constraint per arm of the max-decomposition of [e]; max distributes
   through +, through - on the left (turning into the min-decomposition on
   the right), and through scaling by non-negative literals.  Upper bounds
   are dual. *)
let cross f xs ys =
  List.concat_map (fun x -> List.map (fun y -> f x y) ys) xs

let rec lo_arms env (e : Ast.expr) : Ir.bound =
  match e with
  | Ast.Max (a, b) -> lo_arms env a @ lo_arms env b
  | Ast.Add (a, b) -> cross Ir.aff_add (lo_arms env a) (lo_arms env b)
  | Ast.Sub (a, b) ->
    cross Ir.aff_add (lo_arms env a) (List.map Ir.aff_neg (hi_arms env b))
  | Ast.Neg a -> List.map Ir.aff_neg (hi_arms env a)
  | Ast.Mul (Ast.Int k, a) | Ast.Mul (a, Ast.Int k) ->
    if k >= 0 then List.map (Ir.aff_scale k) (lo_arms env a)
    else List.map (Ir.aff_scale k) (hi_arms env a)
  | Ast.Min _ ->
    error "min cannot appear in a lower bound (it would be a disjunction)"
  | Ast.Int _ | Ast.Name _ | Ast.Mul _ | Ast.Ref _ -> [ to_affine env e ]

and hi_arms env (e : Ast.expr) : Ir.bound =
  match e with
  | Ast.Min (a, b) -> hi_arms env a @ hi_arms env b
  | Ast.Add (a, b) -> cross Ir.aff_add (hi_arms env a) (hi_arms env b)
  | Ast.Sub (a, b) ->
    cross Ir.aff_add (hi_arms env a) (List.map Ir.aff_neg (lo_arms env b))
  | Ast.Neg a -> List.map Ir.aff_neg (lo_arms env a)
  | Ast.Mul (Ast.Int k, a) | Ast.Mul (a, Ast.Int k) ->
    if k >= 0 then List.map (Ir.aff_scale k) (hi_arms env a)
    else List.map (Ir.aff_scale k) (lo_arms env a)
  | Ast.Max _ ->
    error "max cannot appear in an upper bound (it would be a disjunction)"
  | Ast.Int _ | Ast.Name _ | Ast.Mul _ | Ast.Ref _ -> [ to_affine env e ]

let to_lower = lo_arms
let to_upper = hi_arms

(* Collect every array read inside an expression, in evaluation order
   (left to right, subscripts before the enclosing read). *)
let rec collect_reads (e : Ast.expr) acc =
  match e with
  | Ast.Int _ | Ast.Name _ -> acc
  | Ast.Neg a -> collect_reads a acc
  | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b)
  | Ast.Max (a, b) | Ast.Min (a, b) ->
    collect_reads b (collect_reads a acc)
  | Ast.Ref (name, subs) ->
    let acc = List.fold_left (fun acc s -> collect_reads s acc) acc subs in
    (name, subs) :: acc

(* Rewrite reads of declared scalars ([Name k] where [k] is a
   zero-dimensional array) into explicit [Ref (k, [])] nodes, so read
   collection and the interpreter treat them as memory accesses. *)
let rec scalarize ~scalars ~shadowed (e : Ast.expr) : Ast.expr =
  let go e = scalarize ~scalars ~shadowed e in
  match e with
  | Ast.Int _ -> e
  | Ast.Name n ->
    if (not (List.mem n shadowed)) && List.mem n scalars then Ast.Ref (n, [])
    else e
  | Ast.Neg a -> Ast.Neg (go a)
  | Ast.Add (a, b) -> Ast.Add (go a, go b)
  | Ast.Sub (a, b) -> Ast.Sub (go a, go b)
  | Ast.Mul (a, b) -> Ast.Mul (go a, go b)
  | Ast.Max (a, b) -> Ast.Max (go a, go b)
  | Ast.Min (a, b) -> Ast.Min (go a, go b)
  | Ast.Ref (n, subs) -> Ast.Ref (n, List.map go subs)

let analyze (ast : Ast.program) : Ir.program =
  let symbolics =
    List.concat_map
      (function Ast.Symbolic ns -> ns | Ast.Array _ | Ast.Assume _ -> [])
      ast.Ast.decls
  in
  let scalars =
    List.concat_map
      (function
        | Ast.Array arrs ->
          List.filter_map
            (fun (name, ranges) -> if ranges = [] then Some name else None)
            arrs
        | Ast.Symbolic _ | Ast.Assume _ -> [])
      ast.Ast.decls
  in
  let sym_env =
    {
      symbolics;
      loop_vars = [];
      scalars;
      opaques = ref [];
      next_opaque = ref 0;
    }
  in
  let arrays =
    List.concat_map
      (function
        | Ast.Array arrs ->
          List.map
            (fun (name, ranges) ->
              ( name,
                List.map
                  (fun (lo, hi) ->
                    (to_affine sym_env lo, to_affine sym_env hi))
                  ranges ))
            arrs
        | Ast.Symbolic _ | Ast.Assume _ -> [])
      ast.Ast.decls
  in
  let assumes =
    List.concat_map
      (function
        | Ast.Assume conds ->
          List.map
            (fun (c : Ast.cond) ->
              {
                Ir.sc_left = to_affine sym_env c.Ast.left;
                sc_op = c.Ast.op;
                sc_right = to_affine sym_env c.Ast.right;
              })
            conds
        | Ast.Symbolic _ | Ast.Array _ -> [])
      ast.Ast.decls
  in
  let accesses = ref [] in
  let next_acc = ref 0 in
  let next_stmt = ref 0 in
  let next_node = ref 0 in
  let add_access ~stmt_id ~label ~array ~kind ~env ~loops ~loop_nodes ~path
      ~subs_ast =
    (* each access gets its own opaque table slice: reset per statement is
       not needed since ids are global, but subscript extraction must use
       the statement's env *)
    let before = !(env.opaques) in
    let subs = List.map (to_affine env) subs_ast in
    let new_opaques =
      (* opaques created while translating these subscripts *)
      let rec take l =
        if l == before then [] else match l with [] -> [] | x :: r -> x :: take r
      in
      take !(env.opaques)
    in
    (* opaque terms in the enclosing loop bounds (index-array bounds like
       b(i) in example 9) belong to the access's constraint system too:
       the dependence domain mentions them, so Depctx must be able to
       instantiate them.  Close transitively over opaque arguments. *)
    let bound_opaques =
      let opq_ids_of (a : Ir.affine) =
        List.filter_map
          (function Ir.Opq id, _ -> Some id | _ -> None)
          a.Ir.terms
      in
      let seed =
        List.concat_map
          (fun (l : Ir.loop) -> List.concat_map opq_ids_of (l.Ir.lo @ l.Ir.hi))
          loops
      in
      let table = !(env.opaques) in
      let rec close acc frontier =
        match frontier with
        | [] -> acc
        | id :: rest when List.mem id acc -> close acc rest
        | id :: rest -> (
          match List.find_opt (fun o -> o.Ir.opq_id = id) table with
          | None -> close acc rest
          | Some o ->
            close (id :: acc) (List.concat_map opq_ids_of o.Ir.args @ rest))
      in
      let wanted = close [] seed in
      List.filter
        (fun (o : Ir.opaque) ->
          List.mem o.Ir.opq_id wanted
          && not (List.exists (fun n -> n.Ir.opq_id = o.Ir.opq_id) new_opaques))
        table
    in
    let new_opaques = new_opaques @ bound_opaques in
    let id = !next_acc in
    incr next_acc;
    let a =
      {
        Ir.acc_id = id;
        stmt_id;
        label;
        array;
        kind;
        subs;
        loops;
        loop_nodes;
        path;
        opaques = new_opaques;
      }
    in
    accesses := a :: !accesses;
    a
  in
  let rec walk_stmts env loops loop_nodes path_prefix stmts =
    List.mapi
      (fun i s -> walk_stmt env loops loop_nodes (path_prefix @ [ i ]) s)
      stmts
  and walk_stmt env loops loop_nodes path (s : Ast.stmt) : Ir.istmt =
    match s with
    | Ast.For { var; lo; hi; step; body; _ } ->
      let lo = scalarize ~scalars:env.scalars ~shadowed:(List.map fst env.loop_vars) lo in
      let hi = scalarize ~scalars:env.scalars ~shadowed:(List.map fst env.loop_vars) hi in
      let lo_b = to_lower env lo in
      let hi_b = to_upper env hi in
      let node_id = !next_node in
      incr next_node;
      let depth = List.length env.loop_vars in
      let counter = Ir.aff_var (Ir.Loop depth) in
      let value_aff =
        if step = 1 then counter
        else begin
          (* the surface variable is lo + step * counter; requires single
             bound arms so the congruence anchor is well defined *)
          match lo_b with
          | [ l ] -> Ir.aff_add l (Ir.aff_scale step counter)
          | _ -> error "loop %s: a stepped loop needs a single lower bound" var
        end
      in
      (if step <> 1 && List.length hi_b <> 1 then
         error "loop %s: a stepped loop needs a single upper bound" var);
      let env' =
        { env with loop_vars = env.loop_vars @ [ (var, value_aff) ] }
      in
      let loop = { Ir.lvar = var; lo = lo_b; hi = hi_b; step } in
      let body' =
        walk_stmts env' (loops @ [ loop ]) (loop_nodes @ [ node_id ]) path body
      in
      Ir.IFor { node_id; var; lo; hi; step; body = body' }
    | Ast.Assign { label; lhs = array, subs; rhs; _ } ->
      let shadowed = List.map fst env.loop_vars in
      let rhs = scalarize ~scalars:env.scalars ~shadowed rhs in
      let subs =
        List.map (scalarize ~scalars:env.scalars ~shadowed) subs
      in
      let stmt_id = !next_stmt in
      incr next_stmt;
      let label =
        match label with Some l -> l | None -> Printf.sprintf "s%d" stmt_id
      in
      (* reads first (evaluation order), then the write *)
      let read_refs = List.rev (collect_reads rhs []) in
      (* reads buried in the LHS subscripts too (index arrays on the left) *)
      let lhs_reads =
        List.rev
          (List.fold_left (fun acc s -> collect_reads s acc) [] subs)
      in
      let mk_read (name, rsubs) =
        add_access ~stmt_id ~label ~array:name ~kind:Ir.Read ~env ~loops
          ~loop_nodes ~path ~subs_ast:rsubs
      in
      let reads = List.map mk_read (read_refs @ lhs_reads) in
      let write =
        add_access ~stmt_id ~label ~array ~kind:Ir.Write ~env ~loops
          ~loop_nodes ~path ~subs_ast:subs
      in
      Ir.IAssign { stmt_id; label; write; reads; lhs = (array, subs); rhs }
  in
  (* thread a single opaque counter through all statements *)
  let stmts =
    walk_stmts
      {
        symbolics;
        loop_vars = [];
        scalars;
        opaques = ref [];
        next_opaque = sym_env.next_opaque;
      }
      [] [] [] ast.Ast.stmts
  in
  let accesses =
    List.rev !accesses |> Array.of_list
  in
  Array.iteri
    (fun i a -> assert (a.Ir.acc_id = i))
    accesses;
  {
    Ir.source = ast;
    symbolics;
    arrays;
    assumes;
    accesses;
    stmts;
  }

let parse_and_analyze src = analyze (Parser.parse_string src)
