(* Hand-written lexer for the petit language. *)

type token =
  | IDENT of string
  | INT of int
  | KW_FOR
  | KW_TO
  | KW_DO
  | KW_BY
  | KW_ENDFOR
  | KW_SYMBOLIC
  | KW_REAL
  | KW_ASSUME
  | KW_MAX
  | KW_MIN
  | KW_AND
  | ASSIGN (* := *)
  | COLON
  | SEMI
  | COMMA
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | PLUS
  | MINUS
  | STAR
  | EQ
  | NE
  | LE
  | LT
  | GE
  | GT
  | EOF

exception Error of string * Ast.pos

type t = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
  mutable peeked : (token * Ast.pos) option;
}

let create src = { src; off = 0; line = 1; bol = 0; peeked = None }

let pos lx : Ast.pos = { line = lx.line; col = lx.off - lx.bol + 1 }

let error lx msg = raise (Error (msg, pos lx))

let keyword = function
  | "for" | "doall" -> Some KW_FOR
  | "to" -> Some KW_TO
  | "do" -> Some KW_DO
  | "by" -> Some KW_BY
  | "endfor" | "end" -> Some KW_ENDFOR
  | "symbolic" -> Some KW_SYMBOLIC
  | "real" | "int" | "array" -> Some KW_REAL
  | "assume" | "assert" -> Some KW_ASSUME
  | "max" -> Some KW_MAX
  | "min" -> Some KW_MIN
  | "and" -> Some KW_AND
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws lx =
  let n = String.length lx.src in
  if lx.off >= n then ()
  else
    match lx.src.[lx.off] with
    | ' ' | '\t' | '\r' ->
      lx.off <- lx.off + 1;
      skip_ws lx
    | '\n' ->
      lx.off <- lx.off + 1;
      lx.line <- lx.line + 1;
      lx.bol <- lx.off;
      skip_ws lx
    | '/' when lx.off + 1 < n && lx.src.[lx.off + 1] = '/' ->
      while lx.off < n && lx.src.[lx.off] <> '\n' do
        lx.off <- lx.off + 1
      done;
      skip_ws lx
    | _ -> ()

let lex_token lx : token * Ast.pos =
  skip_ws lx;
  let p = pos lx in
  let n = String.length lx.src in
  if lx.off >= n then (EOF, p)
  else begin
    let c = lx.src.[lx.off] in
    let two what =
      lx.off <- lx.off + 2;
      what
    in
    let one what =
      lx.off <- lx.off + 1;
      what
    in
    let tok =
      if is_ident_start c then begin
        let start = lx.off in
        while lx.off < n && is_ident_char lx.src.[lx.off] do
          lx.off <- lx.off + 1
        done;
        let word = String.sub lx.src start (lx.off - start) in
        match keyword word with Some k -> k | None -> IDENT word
      end
      else if is_digit c then begin
        let start = lx.off in
        while lx.off < n && is_digit lx.src.[lx.off] do
          lx.off <- lx.off + 1
        done;
        INT (int_of_string (String.sub lx.src start (lx.off - start)))
      end
      else begin
        let next = if lx.off + 1 < n then Some lx.src.[lx.off + 1] else None in
        match c, next with
        | ':', Some '=' -> two ASSIGN
        | ':', _ -> one COLON
        | ';', _ -> one SEMI
        | ',', _ -> one COMMA
        | '(', _ -> one LPAREN
        | ')', _ -> one RPAREN
        | '[', _ -> one LBRACK
        | ']', _ -> one RBRACK
        | '+', _ -> one PLUS
        | '-', _ -> one MINUS
        | '*', _ -> one STAR
        | '=', _ -> one EQ
        | '!', Some '=' -> two NE
        | '<', Some '>' -> two NE
        | '<', Some '=' -> two LE
        | '<', _ -> one LT
        | '>', Some '=' -> two GE
        | '>', _ -> one GT
        | '&', Some '&' -> two KW_AND
        | _ -> error lx (Printf.sprintf "unexpected character %C" c)
      end
    in
    (tok, p)
  end

let next lx =
  match lx.peeked with
  | Some tp ->
    lx.peeked <- None;
    tp
  | None -> lex_token lx

let peek lx =
  match lx.peeked with
  | Some tp -> tp
  | None ->
    let tp = lex_token lx in
    lx.peeked <- Some tp;
    tp

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | KW_FOR -> "'for'"
  | KW_TO -> "'to'"
  | KW_DO -> "'do'"
  | KW_BY -> "'by'"
  | KW_ENDFOR -> "'endfor'"
  | KW_SYMBOLIC -> "'symbolic'"
  | KW_REAL -> "'real'"
  | KW_ASSUME -> "'assume'"
  | KW_MAX -> "'max'"
  | KW_MIN -> "'min'"
  | KW_AND -> "'and'"
  | ASSIGN -> "':='"
  | COLON -> "':'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACK -> "'['"
  | RBRACK -> "']'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | EQ -> "'='"
  | NE -> "'!='"
  | LE -> "'<='"
  | LT -> "'<'"
  | GE -> "'>='"
  | GT -> "'>'"
  | EOF -> "end of input"
