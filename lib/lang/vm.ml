(* Bytecode VM: one tight tail-recursive dispatch loop over the compiled
   instruction array.  Registers and the arena are plain int arrays; the
   only bounds checks on the hot path are the arena accesses (kept safe:
   a compiler bug must surface as an exception, not a silent wild
   write).  Slab accesses appear only in parallel region bodies. *)

exception Proof_failure of string

type t = {
  u : Compile.unit_;
  t_arena : int array;
  t_regs : int array;
}

let unit_ t = t.u
let arena t = t.t_arena

let create ?(init = fun _ _ -> 0) (u : Compile.unit_) : t =
  let a = Array.make (max 1 u.Compile.u_arena) 0 in
  Compile.iter_cells u (fun name idx off -> a.(off) <- init name idx);
  { u; t_arena = a; t_regs = Array.make (max 1 u.Compile.u_nregs) 0 }

let region_trip (r : Compile.region) ~lo ~hi =
  let step = r.Compile.rg_step in
  if step > 0 then if lo > hi then 0 else ((hi - lo) / step) + 1
  else if lo < hi then 0
  else ((lo - hi) / -step) + 1

(* The dispatch loop.  [regs]/[slab]/[written] vary per chunk; [arena]
   is shared.  [on_region] only ever fires from main code (region
   bodies are compiled without nested regions). *)
let rec exec t regs slab written (code : Compile.instr array) on_region pc =
  let arena = t.t_arena in
  match Array.unsafe_get code pc with
  | Compile.Li (d, n) ->
    Array.unsafe_set regs d n;
    exec t regs slab written code on_region (pc + 1)
  | Compile.Mov (d, s) ->
    Array.unsafe_set regs d (Array.unsafe_get regs s);
    exec t regs slab written code on_region (pc + 1)
  | Compile.Add (d, a, b) ->
    Array.unsafe_set regs d (Array.unsafe_get regs a + Array.unsafe_get regs b);
    exec t regs slab written code on_region (pc + 1)
  | Compile.Sub (d, a, b) ->
    Array.unsafe_set regs d (Array.unsafe_get regs a - Array.unsafe_get regs b);
    exec t regs slab written code on_region (pc + 1)
  | Compile.Mul (d, a, b) ->
    Array.unsafe_set regs d (Array.unsafe_get regs a * Array.unsafe_get regs b);
    exec t regs slab written code on_region (pc + 1)
  | Compile.Maxr (d, a, b) ->
    Array.unsafe_set regs d
      (max (Array.unsafe_get regs a) (Array.unsafe_get regs b));
    exec t regs slab written code on_region (pc + 1)
  | Compile.Minr (d, a, b) ->
    Array.unsafe_set regs d
      (min (Array.unsafe_get regs a) (Array.unsafe_get regs b));
    exec t regs slab written code on_region (pc + 1)
  | Compile.Addi (d, s, n) ->
    Array.unsafe_set regs d (Array.unsafe_get regs s + n);
    exec t regs slab written code on_region (pc + 1)
  | Compile.Muli (d, s, n) ->
    Array.unsafe_set regs d (Array.unsafe_get regs s * n);
    exec t regs slab written code on_region (pc + 1)
  | Compile.Muladd (d, s, n, r) ->
    Array.unsafe_set regs d
      (Array.unsafe_get regs s + (n * Array.unsafe_get regs r));
    exec t regs slab written code on_region (pc + 1)
  | Compile.Ld (d, a) ->
    Array.unsafe_set regs d arena.(Array.unsafe_get regs a);
    exec t regs slab written code on_region (pc + 1)
  | Compile.Ldi (d, a) ->
    Array.unsafe_set regs d arena.(a);
    exec t regs slab written code on_region (pc + 1)
  | Compile.St (a, s) ->
    arena.(Array.unsafe_get regs a) <- Array.unsafe_get regs s;
    exec t regs slab written code on_region (pc + 1)
  | Compile.Sti (a, s) ->
    arena.(a) <- Array.unsafe_get regs s;
    exec t regs slab written code on_region (pc + 1)
  | Compile.LdS (d, a) ->
    Array.unsafe_set regs d slab.(Array.unsafe_get regs a);
    exec t regs slab written code on_region (pc + 1)
  | Compile.LdSi (d, a) ->
    Array.unsafe_set regs d slab.(a);
    exec t regs slab written code on_region (pc + 1)
  | Compile.StS (a, s) ->
    let i = Array.unsafe_get regs a in
    slab.(i) <- Array.unsafe_get regs s;
    Bytes.unsafe_set written i '\001';
    exec t regs slab written code on_region (pc + 1)
  | Compile.StSi (a, s) ->
    slab.(a) <- Array.unsafe_get regs s;
    Bytes.unsafe_set written a '\001';
    exec t regs slab written code on_region (pc + 1)
  | Compile.Bgt (a, b, tgt) ->
    if Array.unsafe_get regs a > Array.unsafe_get regs b then
      exec t regs slab written code on_region tgt
    else exec t regs slab written code on_region (pc + 1)
  | Compile.Blt (a, b, tgt) ->
    if Array.unsafe_get regs a < Array.unsafe_get regs b then
      exec t regs slab written code on_region tgt
    else exec t regs slab written code on_region (pc + 1)
  | Compile.LoopUp (v, step, lim, top) ->
    let x = Array.unsafe_get regs v + step in
    Array.unsafe_set regs v x;
    if x <= Array.unsafe_get regs lim then
      exec t regs slab written code on_region top
    else exec t regs slab written code on_region (pc + 1)
  | Compile.LoopDown (v, step, lim, top) ->
    let x = Array.unsafe_get regs v + step in
    Array.unsafe_set regs v x;
    if x >= Array.unsafe_get regs lim then
      exec t regs slab written code on_region top
    else exec t regs slab written code on_region (pc + 1)
  | Compile.Region rid ->
    let r = t.u.Compile.u_regions.(rid) in
    let lo = regs.(r.Compile.rg_lo) and hi = regs.(r.Compile.rg_hi) in
    let handled = on_region t r ~lo ~hi in
    if not handled then region_serial t r ~lo ~hi;
    exec t regs slab written code on_region (pc + 1)
  | Compile.Ldu (d, a) ->
    Array.unsafe_set regs d
      (Array.unsafe_get arena (Array.unsafe_get regs a));
    exec t regs slab written code on_region (pc + 1)
  | Compile.Ldui (d, a) ->
    Array.unsafe_set regs d (Array.unsafe_get arena a);
    exec t regs slab written code on_region (pc + 1)
  | Compile.Stu (a, s) ->
    Array.unsafe_set arena (Array.unsafe_get regs a) (Array.unsafe_get regs s);
    exec t regs slab written code on_region (pc + 1)
  | Compile.Stui (a, s) ->
    Array.unsafe_set arena a (Array.unsafe_get regs s);
    exec t regs slab written code on_region (pc + 1)
  | Compile.MuladdLd (d, s, n, r) ->
    Array.unsafe_set regs d
      arena.(Array.unsafe_get regs s + (n * Array.unsafe_get regs r));
    exec t regs slab written code on_region (pc + 1)
  | Compile.MuladdLdu (d, s, n, r) ->
    Array.unsafe_set regs d
      (Array.unsafe_get arena
         (Array.unsafe_get regs s + (n * Array.unsafe_get regs r)));
    exec t regs slab written code on_region (pc + 1)
  | Compile.MuladdSt (s, n, r, v) ->
    arena.(Array.unsafe_get regs s + (n * Array.unsafe_get regs r)) <-
      Array.unsafe_get regs v;
    exec t regs slab written code on_region (pc + 1)
  | Compile.MuladdStu (s, n, r, v) ->
    Array.unsafe_set arena
      (Array.unsafe_get regs s + (n * Array.unsafe_get regs r))
      (Array.unsafe_get regs v);
    exec t regs slab written code on_region (pc + 1)
  | Compile.AddiLd (d, s, n) ->
    Array.unsafe_set regs d arena.(Array.unsafe_get regs s + n);
    exec t regs slab written code on_region (pc + 1)
  | Compile.AddiLdu (d, s, n) ->
    Array.unsafe_set regs d
      (Array.unsafe_get arena (Array.unsafe_get regs s + n));
    exec t regs slab written code on_region (pc + 1)
  | Compile.AddiSt (s, n, v) ->
    arena.(Array.unsafe_get regs s + n) <- Array.unsafe_get regs v;
    exec t regs slab written code on_region (pc + 1)
  | Compile.AddiStu (s, n, v) ->
    Array.unsafe_set arena
      (Array.unsafe_get regs s + n)
      (Array.unsafe_get regs v);
    exec t regs slab written code on_region (pc + 1)
  | Compile.AddSt (a, b, c) ->
    arena.(Array.unsafe_get regs a) <-
      Array.unsafe_get regs b + Array.unsafe_get regs c;
    exec t regs slab written code on_region (pc + 1)
  | Compile.AddStu (a, b, c) ->
    Array.unsafe_set arena
      (Array.unsafe_get regs a)
      (Array.unsafe_get regs b + Array.unsafe_get regs c);
    exec t regs slab written code on_region (pc + 1)
  | Compile.SubSt (a, b, c) ->
    arena.(Array.unsafe_get regs a) <-
      Array.unsafe_get regs b - Array.unsafe_get regs c;
    exec t regs slab written code on_region (pc + 1)
  | Compile.SubStu (a, b, c) ->
    Array.unsafe_set arena
      (Array.unsafe_get regs a)
      (Array.unsafe_get regs b - Array.unsafe_get regs c);
    exec t regs slab written code on_region (pc + 1)
  | Compile.MulSt (a, b, c) ->
    arena.(Array.unsafe_get regs a) <-
      Array.unsafe_get regs b * Array.unsafe_get regs c;
    exec t regs slab written code on_region (pc + 1)
  | Compile.MulStu (a, b, c) ->
    Array.unsafe_set arena
      (Array.unsafe_get regs a)
      (Array.unsafe_get regs b * Array.unsafe_get regs c);
    exec t regs slab written code on_region (pc + 1)
  | Compile.LoopUpi (v, step, lim, top) ->
    let x = Array.unsafe_get regs v + step in
    Array.unsafe_set regs v x;
    if x <= lim then exec t regs slab written code on_region top
    else exec t regs slab written code on_region (pc + 1)
  | Compile.LoopDowni (v, step, lim, top) ->
    let x = Array.unsafe_get regs v + step in
    Array.unsafe_set regs v x;
    if x >= lim then exec t regs slab written code on_region top
    else exec t regs slab written code on_region (pc + 1)
  | Compile.AssertRange (r, lo, hi) ->
    let x = Array.unsafe_get regs r in
    if x < lo || x > hi then
      raise
        (Proof_failure
           (Printf.sprintf
              "elision proof violated at pc %d: r%d = %d outside [%d, %d]" pc r
              x lo hi));
    exec t regs slab written code on_region (pc + 1)
  | Compile.Halt -> ()

and region_serial t (r : Compile.region) ~lo ~hi =
  let step = r.Compile.rg_step in
  let continue_ v = if step > 0 then v <= hi else v >= hi in
  let regs = t.t_regs in
  let body = r.Compile.rg_serial in
  let rec go v =
    if continue_ v then begin
      regs.(r.Compile.rg_vreg) <- v;
      exec t regs [||] Bytes.empty body no_region 0;
      go (v + step)
    end
  in
  go lo

and no_region _ _ ~lo:_ ~hi:_ = false

let run_region_serial = region_serial

let run ?(on_region = no_region) t =
  exec t t.t_regs [||] Bytes.empty t.u.Compile.u_main on_region 0

(* Counting twin of [exec]: same semantics (regions run serially), one
   counter increment per dispatched instruction.  A separate function so
   the hot loop above stays branch-free; this one is only used to
   explain speedups (dynamic instruction counts in the bench artifact),
   never to time them. *)
let run_count t : int =
  let n = ref 0 in
  let arena = t.t_arena in
  let regs = t.t_regs in
  let rec go (code : Compile.instr array) pc =
    incr n;
    match code.(pc) with
    | Compile.Li (d, x) ->
      regs.(d) <- x;
      go code (pc + 1)
    | Compile.Mov (d, s) ->
      regs.(d) <- regs.(s);
      go code (pc + 1)
    | Compile.Add (d, a, b) ->
      regs.(d) <- regs.(a) + regs.(b);
      go code (pc + 1)
    | Compile.Sub (d, a, b) ->
      regs.(d) <- regs.(a) - regs.(b);
      go code (pc + 1)
    | Compile.Mul (d, a, b) ->
      regs.(d) <- regs.(a) * regs.(b);
      go code (pc + 1)
    | Compile.Maxr (d, a, b) ->
      regs.(d) <- max regs.(a) regs.(b);
      go code (pc + 1)
    | Compile.Minr (d, a, b) ->
      regs.(d) <- min regs.(a) regs.(b);
      go code (pc + 1)
    | Compile.Addi (d, s, x) ->
      regs.(d) <- regs.(s) + x;
      go code (pc + 1)
    | Compile.Muli (d, s, x) ->
      regs.(d) <- regs.(s) * x;
      go code (pc + 1)
    | Compile.Muladd (d, s, x, r) ->
      regs.(d) <- regs.(s) + (x * regs.(r));
      go code (pc + 1)
    | Compile.Ld (d, a) | Compile.Ldu (d, a) ->
      regs.(d) <- arena.(regs.(a));
      go code (pc + 1)
    | Compile.Ldi (d, a) | Compile.Ldui (d, a) ->
      regs.(d) <- arena.(a);
      go code (pc + 1)
    | Compile.St (a, s) | Compile.Stu (a, s) ->
      arena.(regs.(a)) <- regs.(s);
      go code (pc + 1)
    | Compile.Sti (a, s) | Compile.Stui (a, s) ->
      arena.(a) <- regs.(s);
      go code (pc + 1)
    | Compile.MuladdLd (d, s, x, r) | Compile.MuladdLdu (d, s, x, r) ->
      regs.(d) <- arena.(regs.(s) + (x * regs.(r)));
      go code (pc + 1)
    | Compile.MuladdSt (s, x, r, v) | Compile.MuladdStu (s, x, r, v) ->
      arena.(regs.(s) + (x * regs.(r))) <- regs.(v);
      go code (pc + 1)
    | Compile.AddiLd (d, s, x) | Compile.AddiLdu (d, s, x) ->
      regs.(d) <- arena.(regs.(s) + x);
      go code (pc + 1)
    | Compile.AddiSt (s, x, v) | Compile.AddiStu (s, x, v) ->
      arena.(regs.(s) + x) <- regs.(v);
      go code (pc + 1)
    | Compile.AddSt (a, b, c) | Compile.AddStu (a, b, c) ->
      arena.(regs.(a)) <- regs.(b) + regs.(c);
      go code (pc + 1)
    | Compile.SubSt (a, b, c) | Compile.SubStu (a, b, c) ->
      arena.(regs.(a)) <- regs.(b) - regs.(c);
      go code (pc + 1)
    | Compile.MulSt (a, b, c) | Compile.MulStu (a, b, c) ->
      arena.(regs.(a)) <- regs.(b) * regs.(c);
      go code (pc + 1)
    | Compile.LdS _ | Compile.LdSi _ | Compile.StS _ | Compile.StSi _ ->
      invalid_arg "Vm.run_count: slab access outside a parallel chunk"
    | Compile.Bgt (a, b, tgt) ->
      go code (if regs.(a) > regs.(b) then tgt else pc + 1)
    | Compile.Blt (a, b, tgt) ->
      go code (if regs.(a) < regs.(b) then tgt else pc + 1)
    | Compile.LoopUp (v, step, lim, top) ->
      let x = regs.(v) + step in
      regs.(v) <- x;
      go code (if x <= regs.(lim) then top else pc + 1)
    | Compile.LoopDown (v, step, lim, top) ->
      let x = regs.(v) + step in
      regs.(v) <- x;
      go code (if x >= regs.(lim) then top else pc + 1)
    | Compile.LoopUpi (v, step, lim, top) ->
      let x = regs.(v) + step in
      regs.(v) <- x;
      go code (if x <= lim then top else pc + 1)
    | Compile.LoopDowni (v, step, lim, top) ->
      let x = regs.(v) + step in
      regs.(v) <- x;
      go code (if x >= lim then top else pc + 1)
    | Compile.AssertRange (r, lo, hi) ->
      let x = regs.(r) in
      if x < lo || x > hi then
        raise
          (Proof_failure
             (Printf.sprintf
                "elision proof violated at pc %d: r%d = %d outside [%d, %d]"
                pc r x lo hi));
      go code (pc + 1)
    | Compile.Region rid ->
      let r = t.u.Compile.u_regions.(rid) in
      let lo = regs.(r.Compile.rg_lo) and hi = regs.(r.Compile.rg_hi) in
      let step = r.Compile.rg_step in
      let rec iter v =
        if (if step > 0 then v <= hi else v >= hi) then begin
          regs.(r.Compile.rg_vreg) <- v;
          go r.Compile.rg_serial 0;
          iter (v + step)
        end
      in
      iter lo;
      go code (pc + 1)
    | Compile.Halt -> ()
  in
  go t.u.Compile.u_main 0;
  !n

(* ------------------------------------------------------------------ *)
(* Chunks                                                              *)
(* ------------------------------------------------------------------ *)

type chunk = {
  ck_regs : int array;
  ck_slab : int array;
  ck_written : Bytes.t;
}

let make_chunk ?(copy_in = true) t (r : Compile.region) : chunk =
  let slab = Array.make (max 1 r.Compile.rg_slab) 0 in
  if copy_in then
    List.iter
      (fun (p : Compile.priv_copy) ->
        Array.blit t.t_arena p.Compile.pc_arena slab p.Compile.pc_slab
          p.Compile.pc_len)
      r.Compile.rg_privs;
  {
    ck_regs = Array.copy t.t_regs;
    ck_slab = slab;
    ck_written = Bytes.make (max 1 r.Compile.rg_slab) '\000';
  }

let run_chunk t (r : Compile.region) (c : chunk) ~lo ~k0 ~k1 =
  let step = r.Compile.rg_step in
  let vreg = r.Compile.rg_vreg in
  let body = r.Compile.rg_par in
  for k = k0 to k1 - 1 do
    c.ck_regs.(vreg) <- lo + (k * step);
    exec t c.ck_regs c.ck_slab c.ck_written body no_region 0
  done

let merge_chunk t (r : Compile.region) (c : chunk) =
  List.iter
    (fun (p : Compile.priv_copy) ->
      for j = 0 to p.Compile.pc_len - 1 do
        if Bytes.get c.ck_written (p.Compile.pc_slab + j) <> '\000' then
          t.t_arena.(p.Compile.pc_arena + j) <- c.ck_slab.(p.Compile.pc_slab + j)
      done)
    r.Compile.rg_privs

(* ------------------------------------------------------------------ *)
(* Differential comparison                                             *)
(* ------------------------------------------------------------------ *)

type diff = (string * int list) * int option * int option

let check_against ?(init = fun _ _ -> 0) t
    (mem : ((string * int list) * int) list) : diff list =
  let written = Hashtbl.create (List.length mem * 2) in
  List.iter (fun (loc, v) -> Hashtbl.replace written loc v) mem;
  let diffs = ref [] in
  (* every interpreter-written location must match the arena *)
  List.iter
    (fun (loc, v) ->
      match Compile.addr t.u loc with
      | None -> diffs := (loc, Some v, None) :: !diffs
      | Some off ->
        if t.t_arena.(off) <> v then
          diffs := (loc, Some v, Some t.t_arena.(off)) :: !diffs)
    mem;
  (* every cell the interpreter never wrote must still be initial *)
  Compile.iter_cells t.u (fun name idx off ->
      let loc = (name, idx) in
      if not (Hashtbl.mem written loc) then begin
        let v0 = init name idx in
        if t.t_arena.(off) <> v0 then
          diffs := (loc, Some v0, Some t.t_arena.(off)) :: !diffs
      end);
  List.rev !diffs

let equal_state a b = a.t_arena = b.t_arena

let diff_string (diffs : diff list) =
  String.concat "; "
    (List.map
       (fun ((name, idx), a, b) ->
         let v = function Some x -> string_of_int x | None -> "_" in
         Printf.sprintf "%s(%s): interp=%s vm=%s" name
           (String.concat "," (List.map string_of_int idx))
           (v a) (v b))
       diffs)
