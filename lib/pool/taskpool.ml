(* A fixed pool of worker domains executing queued thunks.

   One mutex/condition pair guards the task queue; each batch carries
   its own mutex/condition so that concurrent [run_batch] callers (the
   petitd session threads) wait only on their own work.  Workers park on
   the queue condition and exit once [stop] is set and the queue has
   drained, so a shutdown never abandons an in-flight batch. *)

type batch = {
  b_lock : Mutex.t;
  b_done : Condition.t;
  mutable b_pending : int;
  mutable b_exn : (exn * Printexc.raw_backtrace) option;
}

type task = { t_run : unit -> unit; t_batch : batch }

type t = {
  lock : Mutex.t;
  work : Condition.t;
  queue : task Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  n_workers : int;
}

let workers t = t.n_workers

(* Set for the lifetime of every pool worker domain (and around tasks a
   participating caller drains), so nested [run_batch] goes inline. *)
let worker_key = Domain.DLS.new_key (fun () -> false)
let on_worker () = Domain.DLS.get worker_key

let finish_task tk res =
  let b = tk.t_batch in
  Mutex.lock b.b_lock;
  (match res with
  | None -> ()
  | Some _ when b.b_exn <> None -> ()
  | Some _ -> b.b_exn <- res);
  b.b_pending <- b.b_pending - 1;
  if b.b_pending = 0 then Condition.broadcast b.b_done;
  Mutex.unlock b.b_lock

let exec_task tk =
  let res =
    try
      tk.t_run ();
      None
    with e -> Some (e, Printexc.get_raw_backtrace ())
  in
  finish_task tk res

let worker pool () =
  Domain.DLS.set worker_key true;
  let rec loop () =
    Mutex.lock pool.lock;
    let rec next () =
      match Queue.take_opt pool.queue with
      | Some tk ->
        Mutex.unlock pool.lock;
        Some tk
      | None ->
        if pool.stop then begin
          Mutex.unlock pool.lock;
          None
        end
        else begin
          Condition.wait pool.work pool.lock;
          next ()
        end
    in
    match next () with
    | Some tk ->
      exec_task tk;
      loop ()
    | None -> ()
  in
  loop ()

let create ~workers =
  let pool =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
      n_workers = max 0 workers;
    }
  in
  pool.domains <- List.init pool.n_workers (fun _ -> Domain.spawn (worker pool));
  pool

(* Inline fallback: used on worker domains (nested batches), on pools
   with no workers, and by shutdown-racing callers.  Mirrors the pool
   semantics: every thunk runs, first exception wins. *)
let run_inline thunks =
  let first = ref None in
  List.iter
    (fun f ->
      try f ()
      with e ->
        if !first = None then first := Some (e, Printexc.get_raw_backtrace ()))
    thunks;
  match !first with
  | None -> ()
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt

let run_batch ?(participate = true) t thunks =
  if thunks <> [] then
    if on_worker () || t.n_workers = 0 then run_inline thunks
    else begin
      let b =
        {
          b_lock = Mutex.create ();
          b_done = Condition.create ();
          b_pending = List.length thunks;
          b_exn = None;
        }
      in
      let tasks = List.map (fun f -> { t_run = f; t_batch = b }) thunks in
      Mutex.lock t.lock;
      if t.stop then begin
        (* racing a shutdown: don't enqueue work the workers may never
           see; run it here instead *)
        Mutex.unlock t.lock;
        run_inline thunks
      end
      else begin
        List.iter (fun tk -> Queue.add tk t.queue) tasks;
        Condition.broadcast t.work;
        Mutex.unlock t.lock;
        if participate then begin
          (* drain alongside the workers; tasks we pick up may belong to
             other batches, which only helps global progress *)
          Domain.DLS.set worker_key true;
          let rec drain () =
            Mutex.lock t.lock;
            match Queue.take_opt t.queue with
            | Some tk ->
              Mutex.unlock t.lock;
              exec_task tk;
              drain ()
            | None -> Mutex.unlock t.lock
          in
          Fun.protect ~finally:(fun () -> Domain.DLS.set worker_key false) drain
        end;
        Mutex.lock b.b_lock;
        while b.b_pending > 0 do
          Condition.wait b.b_done b.b_lock
        done;
        let exn = b.b_exn in
        Mutex.unlock b.b_lock;
        match exn with
        | None -> ()
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      end
    end

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []
