(** A fixed pool of worker domains executing queued thunks.

    This is the one domain pool in the tree: the parallel doall executor
    ({!Xform.Exec}), the sharded dependence analysis ({!Depend.Par}) and
    the petitd service ({!Serve.Service}) all dispatch through it.  A
    pool owns [workers] spawned domains; {!run_batch} enqueues a batch
    of thunks and blocks until every one of them has run, optionally
    having the calling domain participate by draining the queue itself.

    Tasks must expect to run on an arbitrary domain: anything they need
    from the submitter's domain-local state (solver worlds, budgets)
    must be captured explicitly — see {!Depend.Par} for the scoping
    discipline.  Exceptions raised by tasks never deadlock the pool: the
    batch completes, and the first exception re-raises in the caller of
    {!run_batch}. *)

type t

val create : workers:int -> t
(** Spawn [max 0 workers] worker domains (the pool is usable with zero
    workers: batches then run inline in the caller). *)

val workers : t -> int
(** Number of spawned worker domains. *)

val on_worker : unit -> bool
(** True on a domain spawned by any pool ({!run_batch} from inside a
    task runs its batch inline rather than re-entering the queue, so
    nested parallelism cannot deadlock). *)

val run_batch : ?participate:bool -> t -> (unit -> unit) list -> unit
(** Run every thunk to completion and return.  With [participate]
    (default [true]) the calling domain drains queued tasks alongside
    the workers; with [~participate:false] it only blocks — use this
    when the caller's domain-local state must not be visible to the
    tasks (e.g. petitd session threads, which all share the main
    domain).  Re-raises the first exception any thunk raised, after the
    whole batch has drained. *)

val shutdown : t -> unit
(** Drain remaining tasks, then join the worker domains.  The pool is
    unusable afterwards; idempotent. *)
