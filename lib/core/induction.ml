(* Induction-variable recognition for scalar accumulators (section 5).

   The paper closes with Example 11 (loop s141 of the vectorizing-compiler
   study): a scalar [k] accumulating a loop-varying, provably-positive
   increment indexes an array, so consecutive references never collide -
   but no compiler in that study could prove it.  The paper's recipe:
   treat the scalar's appearances as symbolic variables and supply the
   analysis with the monotonicity facts that induction recognition
   provides.

   A scalar [x] (a zero-dimensional array) is a {e strictly increasing
   accumulator} when every write to it has the shape [x := x + e] with
   [e >= 1] provable (by the Omega test) under the write's loop bounds and
   the user's assumptions.  The resulting fact - instances of [x]'s value
   strictly increase across any intervening increment - feeds the symbolic
   dependence machinery as an [Accumulator] property. *)

open Omega

type accumulator = {
  scalar : string;
  increment : Ir.access; (* the write access of the x := x + e statement *)
}

(* [rhs] as [x + e]: find exactly one positive top-level additive
   occurrence of the scalar read and return the rest. *)
let split_increment (scalar : string) (rhs : Ast.expr) : Ast.expr option =
  (* decompose into (number of +x occurrences, rest-expression) *)
  let rec go (e : Ast.expr) (sign : int) : (int * Ast.expr) option =
    match e with
    | Ast.Ref (s, []) when s = scalar ->
      if sign = 1 then Some (1, Ast.Int 0) else None
    | Ast.Add (a, b) -> (
      match go a sign, go b sign with
      | Some (na, ra), Some (nb, rb) -> Some (na + nb, Ast.Add (ra, rb))
      | _ -> None)
    | Ast.Sub (a, b) -> (
      match go a sign, go b (-sign) with
      | Some (na, ra), Some (nb, rb) -> Some (na + nb, Ast.Sub (ra, rb))
      | _ -> None)
    | Ast.Int _ | Ast.Name _ -> Some (0, e)
    | Ast.Neg a -> (
      match go a (-sign) with
      | Some (n, r) -> Some (n, Ast.Neg r)
      | None -> None)
    | Ast.Mul _ | Ast.Max _ | Ast.Min _ | Ast.Ref _ ->
      (* the scalar must not occur inside *)
      let rec mentions = function
        | Ast.Ref (s, subs) ->
          s = scalar || List.exists mentions subs
        | Ast.Int _ | Ast.Name _ -> false
        | Ast.Neg a -> mentions a
        | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b)
        | Ast.Max (a, b) | Ast.Min (a, b) ->
          mentions a || mentions b
      in
      if mentions e then None else Some (0, e)
  in
  match go rhs 1 with Some (1, rest) -> Some rest | _ -> None

(* The real translation works against an instantiation, so loop variables
   become that instance's iteration variables. *)
let affine_of_inst ctx (inst : Depctx.inst) (e : Ast.expr) : Linexpr.t option
    =
  let lookup name =
    let rec find d = function
      | [] -> None
      | (l : Ir.loop) :: rest ->
        if l.Ir.lvar = name then
          if l.Ir.step = 1 then Some (Linexpr.var inst.Depctx.ivars.(d))
          else None
        else find (d + 1) rest
    in
    match find 0 inst.Depctx.access.Ir.loops with
    | Some x -> Some x
    | None ->
      if List.mem name ctx.Depctx.prog.Ir.symbolics then
        Some (Linexpr.var (Depctx.sym_var ctx name))
      else None
  in
  let rec go e =
    match e with
    | Ast.Int n -> Some (Linexpr.of_int n)
    | Ast.Name name -> lookup name
    | Ast.Neg a -> Option.map Linexpr.neg (go a)
    | Ast.Add (a, b) -> (
      match go a, go b with
      | Some x, Some y -> Some (Linexpr.add x y)
      | _ -> None)
    | Ast.Sub (a, b) -> (
      match go a, go b with
      | Some x, Some y -> Some (Linexpr.sub x y)
      | _ -> None)
    | Ast.Mul (Ast.Int k, a) | Ast.Mul (a, Ast.Int k) ->
      Option.map (Linexpr.scale (Zint.of_int k)) (go a)
    | Ast.Mul _ | Ast.Max _ | Ast.Min _ | Ast.Ref _ -> None
  in
  go e

(* Is [e >= 1] whenever the write executes? *)
let increment_positive ctx (write : Ir.access) (e : Ast.expr) : bool =
  let inst = Depctx.instantiate ctx write ~tag:"i" in
  match affine_of_inst ctx inst e with
  | None -> false
  | Some le ->
    (* unsat(domain && e <= 0) *)
    let p =
      Problem.of_list
        (Depctx.domain ctx inst
        @ Depctx.assumes ctx
        @ [ Constr.le le (Linexpr.of_int 0) ])
    in
    (match
       Budget.run ~label:"induction/positive" (fun () -> Elim.satisfiable p)
     with
    | Ok sat -> not sat
    | Error _ -> false (* cannot prove positivity: not an accumulator *))

(* All strictly-increasing accumulators of a program. *)
let detect (ctx : Depctx.t) : accumulator list =
  let prog = ctx.Depctx.prog in
  let scalars =
    List.filter_map
      (fun (name, ranges) -> if ranges = [] then Some name else None)
      prog.Ir.arrays
  in
  let rec assigns_of (s : Ir.istmt) : Ir.istmt list =
    match s with
    | Ir.IFor { body; _ } -> List.concat_map assigns_of body
    | Ir.IAssign _ -> [ s ]
  in
  let assigns = List.concat_map assigns_of prog.Ir.stmts in
  List.filter_map
    (fun scalar ->
      let writes =
        List.filter_map
          (function
            | Ir.IAssign { write; lhs = name, []; rhs; _ }
              when name = scalar ->
              Some (write, rhs)
            | Ir.IAssign _ | Ir.IFor _ -> None)
          assigns
      in
      match writes with
      | [ (write, rhs) ] -> (
        match split_increment scalar rhs with
        | Some e when increment_positive ctx write e ->
          Some { scalar; increment = write }
        | Some _ | None -> None)
      | _ -> None (* several writes (or none): not a recognized accumulator *))
    scalars
