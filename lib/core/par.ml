(* Sharding solver work across domains.

   [map] fans an array of independent items over the process-wide worker
   pool: [domains ()] chunk-claiming tasks (the calling domain counts as
   one and participates) pull items off a shared atomic cursor, so load
   balances dynamically while the result array keeps input order.

   Every task body runs inside the registered *scope hooks*.  A hook is
   captured once per batch on the submitting domain and wraps each task
   on whatever domain executes it; this is how ambient per-domain state
   follows the work: the Budget hook re-installs the submitter's limits
   and gives the task a fresh telemetry record that merges back (with
   the commutative [Budget.Telemetry.merge_into]) when it finishes, and
   the Tuning/Analyses stats hooks do the same for their counters.
   Because the merges are commutative and every per-query quantity is
   deterministic, the merged telemetry equals the serial run's up to the
   memo-race caveat below.

   Verdicts are bit-identical to the serial run by construction: item
   results depend only on each item's own problems, whose variables are
   minted by one domain in the same relative order as serially (see
   Var), and the shared [Analyses.Memo] is keyed canonically so a hit
   from any domain replays the same deterministic verdict.  The only
   nondeterminism parallelism adds is *who computes*: two domains racing
   a fresh memo key both compute the same verdict, so memo hit/miss
   counts (and nothing else) may differ run to run.

   The default width is 1: [map] is then exactly [Array.map], no pool,
   no scoping — existing single-domain behaviour, bit for bit. *)

type wrap = { wrap : 'a. (unit -> 'a) -> 'a }

let hooks : (unit -> wrap) list ref = ref []
let register_scope_hook h = hooks := h :: !hooks

let width = ref 1
let set_domains n = width := max 1 n
let domains () = !width

let pool : Taskpool.t option ref = ref None

(* Grow-only shared pool; resized (never shrunk) when a wider map runs.
   Only the main domain mutates it (petitd worker tasks see
   [Taskpool.on_worker] and stay inline). *)
let ensure_pool workers =
  match !pool with
  | Some p when Taskpool.workers p >= workers -> p
  | prev ->
    (match prev with Some p -> Taskpool.shutdown p | None -> ());
    let p = Taskpool.create ~workers in
    pool := Some p;
    p

let map (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  let w = min !width n in
  if w <= 1 || Taskpool.on_worker () then Array.map f xs
  else begin
    let p = ensure_pool (w - 1) in
    let out : 'b option array = Array.make n None in
    let next = Atomic.make 0 in
    let wraps = List.map (fun h -> h ()) !hooks in
    let task () =
      let body () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            out.(i) <- Some (f xs.(i));
            loop ()
          end
        in
        loop ()
      in
      (List.fold_left (fun acc w () -> w.wrap acc) body wraps) ()
    in
    Taskpool.run_batch ~participate:true p (List.init w (fun _ -> task));
    Array.map
      (function Some v -> v | None -> assert false (* batch drained *))
      out
  end

let map_list f xs = Array.to_list (map f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* Scope hooks for the solver's ambient worlds                         *)
(* ------------------------------------------------------------------ *)

(* Budget: tasks adopt the submitter's limits and merge their telemetry
   into the submitter's record.  (The fault-injection configuration
   needs no capture: it is process-wide and immutable while parallel
   work is in flight, and the fault stream itself is keyed by query
   content, not by domain.) *)
let () =
  register_scope_hook (fun () ->
      let limits = Omega.Budget.current_limits () in
      let target = Omega.Budget.Telemetry.current () in
      let lock = Mutex.create () in
      {
        wrap =
          (fun f ->
            let v, tel = Omega.Budget.scoped ~limits f in
            Mutex.lock lock;
            Omega.Budget.Telemetry.merge_into target tel;
            Mutex.unlock lock;
            v);
      })

(* Tuning.Stats: same exchange-and-merge discipline. *)
let () =
  register_scope_hook (fun () ->
      let target = Omega.Tuning.Stats.current () in
      let lock = Mutex.create () in
      {
        wrap =
          (fun f ->
            let saved = Omega.Tuning.Stats.exchange (Omega.Tuning.Stats.make ()) in
            let finish () =
              let mine = Omega.Tuning.Stats.exchange saved in
              Mutex.lock lock;
              Omega.Tuning.Stats.merge_into target mine;
              Mutex.unlock lock
            in
            Fun.protect ~finally:finish f);
      })

(* Portfolio.Stats (per-tier attempts/decides/time): same discipline. *)
let () =
  register_scope_hook (fun () ->
      let target = Omega.Portfolio.Stats.current () in
      let lock = Mutex.create () in
      {
        wrap =
          (fun f ->
            let saved =
              Omega.Portfolio.Stats.exchange (Omega.Portfolio.Stats.make ())
            in
            let finish () =
              let mine = Omega.Portfolio.Stats.exchange saved in
              Mutex.lock lock;
              Omega.Portfolio.Stats.merge_into target mine;
              Mutex.unlock lock
            in
            Fun.protect ~finally:finish f);
      })
