(** The four section-4 analyses - killing (4.1), covering (4.2),
    terminating (4.3) and refinement (4.4) - each phrased as the validity
    of a Presburger formula [forall (p => exists q)].

    Queries run through the tiered {!Omega.Portfolio}: the incomplete
    O(constraints) {!Omega.Screen} first, then the paper's efficient
    route (project the existential side with the dark shadow, check the
    implication with gists), and only when both pass does the complete
    Presburger decision procedure run.  Per-tier attempts / decides /
    time are recorded in {!Omega.Portfolio.Stats} (merged across domains
    by a {!Par} scope hook, so sharded analyses report the same totals
    as serial ones). *)

open Omega

val use_fast_path : bool ref
(** Ablation switch: when [false], the portfolio plan omits the
    dark-shadow fast path (tier 1). *)

module Memo : sig
  type t = {
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
    mutable hits_screen : int;
        (** hits whose cached verdict was decided by tier 0 *)
    mutable hits_fast : int;  (** ... by the dark-shadow fast path *)
    mutable hits_complete : int;  (** ... by the complete procedure *)
  }

  val enabled : bool ref
  (** Verdict cache for {!implies_exists}, keyed on a canonical
      (alpha-renamed) serialization of the query ({!Canon.key}) — which
      also erases variable-id slots, so verdicts are shareable across
      allocating domains.  Sound because validity is invariant under
      variable renaming.  Entries record the
      {!Budget.current_limits} they were computed under: completed verdicts
      replay at any budget, a [Gave_up] only while the current budget is
      no larger than the recorded one.  Fault-injected runs bypass the
      cache.  Disable in timing benches that reproduce per-query
      figures — a hit would measure a hash lookup, not an
      elimination. *)

  val capacity : int ref
  (** Maximum number of cached verdicts; beyond it the oldest entries
      are evicted first-in-first-out, so long-running sessions hold a
      bounded table instead of growing without limit. *)

  val size : unit -> int
  (** Entries currently cached. *)

  val stats : t
  val reset : unit -> unit
  (** Clears the table, the eviction queue, and all counters. *)

  val hit_rate : unit -> float
  (** Hits over total queries since the last [reset]; [0.] when no
      query ran. *)

  (** {2 Concurrency}

      The table, the eviction queue, and the counters are guarded by an
      internal mutex, so the cache is safe to share across threads (the
      petitd daemon keeps one warm across every connection).  The lock
      covers lookups and insertions only — never solver work — and the
      counter fields of {!stats} must be read, not written, by
      clients. *)

  val find : string -> (Budget.verdict * Portfolio.tier option) option
  (** Replayable cached verdict under the current domain's
      {!Budget.current_limits}, with the tier that computed it; counts a
      hit or a miss. *)

  val add : string -> Budget.verdict -> Portfolio.tier option -> unit
  (** Record a verdict computed under the current domain's
      {!Budget.current_limits}, tagged with the deciding tier, evicting
      FIFO beyond {!capacity}. *)

  (** {2 Traffic attribution} *)

  val local_reset : unit -> unit
  (** Zero the calling domain's private hit/miss counters.  A client
      whose solver work runs on one domain (a petitd request dispatched
      to a worker) brackets it with [local_reset]/[local_counts] to get
      an exact per-request memo report, unaffected by concurrent
      sessions. *)

  val local_counts : unit -> int * int
  (** The calling domain's private (hits, misses) since
      {!local_reset}. *)

  val domain_stats : unit -> (int * t) list
  (** Lifetime cache traffic per domain id, sorted ([evictions] is
      global and repeated in every row). *)
end

val implies_exists_decide :
  ?label:string ->
  hyp:Constr.t list ->
  Problem.t list ->
  evars:Var.t list ->
  Problem.t list ->
  Budget.verdict * Portfolio.tier option
(** [implies_exists_decide ~hyp lhs ~evars rhs]: is
    [hyp => (lhs => exists evars. rhs)] valid (disjunction over each
    list)?  One governed portfolio query: a blown budget (or an injected
    fault, or an exhausted screen-only plan) surfaces as [Gave_up],
    never as an exception.  Also returns the tier that decided ([None]
    for give-ups).  [label] names the query in governance telemetry. *)

val implies_exists_verdict :
  ?label:string ->
  hyp:Constr.t list ->
  Problem.t list ->
  evars:Var.t list ->
  Problem.t list ->
  Budget.verdict
(** {!implies_exists_decide} without the tier attribution. *)

val implies_exists :
  ?label:string ->
  hyp:Constr.t list ->
  Problem.t list ->
  evars:Var.t list ->
  Problem.t list ->
  bool
(** {!implies_exists_verdict} collapsed to a boolean: [Gave_up] maps to
    [false], which is conservative because every caller uses a positive
    answer to eliminate or refine a dependence. *)

val dep_problems :
  ?in_bounds:bool -> Depctx.t -> Depctx.inst -> Depctx.inst -> Problem.t list
(** The dependence problems from one instance to another, one per
    ordering level. *)

val covers_verdict :
  ?in_bounds:bool ->
  Depctx.t ->
  src:Ir.access ->
  dst:Ir.access ->
  Budget.verdict

val covers :
  ?in_bounds:bool -> Depctx.t -> src:Ir.access -> dst:Ir.access -> bool
(** Does the write [src] cover [dst] (write every element [dst] accesses,
    earlier)?  Section 4.2.  [Gave_up] maps to [false]. *)

val terminates_verdict :
  ?in_bounds:bool ->
  Depctx.t ->
  src:Ir.access ->
  dst:Ir.access ->
  Budget.verdict

val terminates :
  ?in_bounds:bool -> Depctx.t -> src:Ir.access -> dst:Ir.access -> bool
(** Does the write [dst] terminate [src] (overwrite every element [src]
    accesses, later)?  Section 4.3.  [Gave_up] maps to [false]. *)

val kills_verdict :
  ?in_bounds:bool ->
  Depctx.t ->
  src:Ir.access ->
  killer:Ir.access ->
  dst:Ir.access ->
  Budget.verdict

val kills :
  ?in_bounds:bool ->
  Depctx.t ->
  src:Ir.access ->
  killer:Ir.access ->
  dst:Ir.access ->
  bool
(** Is the dependence from [src] to [dst] killed by the intervening write
    [killer]?  Section 4.1.  [Gave_up] maps to [false]. *)

type candidate = (int option * int option) list
(** A candidate refinement: per common loop, an optional inclusive
    distance range. *)

val check_refinement :
  ?in_bounds:bool ->
  Depctx.t ->
  src:Ir.access ->
  dst:Ir.access ->
  candidate ->
  bool
(** The general refinement test of section 4.4: every instance of [dst]
    receiving the dependence also receives it from an instance of [src]
    within the candidate distance. *)

val refine :
  ?in_bounds:bool -> Depctx.t -> src:Ir.access -> dst:Ir.access -> int list
(** The paper's candidate generator: pin the distance of each common
    loop, outermost first, to its minimum possible value, stopping at the
    first failure.  Returns the pinned distances. *)

val refined_vectors :
  ?in_bounds:bool ->
  Depctx.t ->
  src:Ir.access ->
  dst:Ir.access ->
  int list ->
  Dirvec.t list
(** Direction vectors of the dependence under the pinned distances.  A
    level whose vector analysis gives up contributes its weakest
    (conservative) vectors instead. *)

val set_fault_injection : seed:int -> rate:float -> unit
(** Deterministically force a pseudo-random fraction [rate] of solver
    queries to [Gave_up Injected] (see {!Budget.set_fault_injection}).
    While active the verdict cache is bypassed.  For the differential
    soundness harness: fault-injected analyses must only ever {e lose}
    precision relative to clean runs. *)

val clear_fault_injection : unit -> unit
