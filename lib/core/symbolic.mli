(** Symbolic dependence analysis (section 5).

    A dependence may exist only for particular values of symbolic
    constants or of opaque terms (index arrays, non-linear expressions).
    The exact condition is the projection of the dependence problem onto
    those variables; the {e new} information relative to what is already
    known (assumptions, bounds) is computed with a gist - that is the
    concise query to put to the user. *)

open Omega

type restraint = Dirvec.sign list
(** A restraint vector (section 2.1.2): per common loop, a constraint on
    the sign of the dependence distance, chosen so the conjunction forces
    lexicographically forward dependences. *)

val restraint_constraints :
  Depctx.inst -> Depctx.inst -> restraint -> Constr.t list

type condition =
  | Always  (** the gist was a tautology: no extra condition *)
  | Never  (** the dependence cannot exist *)
  | When of Problem.t  (** the new information *)
  | Unknown of Budget.reason
      (** the analysis gave up within its resource budget; the
          dependence must conservatively be assumed to exist *)

type analysis = {
  cond : condition;
  known : Problem.t;
      (** what is already known, projected onto the same variables: the
          "such that" part of a rendered query *)
  inst_a : Depctx.inst;
  inst_b : Depctx.inst;
  ctx : Depctx.t;
}

val analyze :
  ?in_bounds:bool ->
  ?gist_fast:bool ->
  Depctx.t ->
  src:Ir.access ->
  dst:Ir.access ->
  restraint:restraint ->
  ?hide:string list ->
  unit ->
  analysis
(** The condition under which a dependence from [src] to [dst] with the
    given restraint vector exists.  [hide] lists symbolic constants to
    project away (those with known ranges, as with [n] in Example 7). *)

val render_query : analysis -> string
(** The user query, in the paper's style: opaque index-array terms render
    as [q\[a\]] with fresh letters for their subscript positions. *)

type array_property =
  | Injective  (** distinct subscripts give distinct values *)
  | Strictly_increasing
  | Accumulator of Ir.access
      (** a scalar written only by [x := x + e] with [e >= 1] (the given
          increment access): its values never decrease over time and
          strictly increase across an intervening increment.  Produced by
          {!Induction.detect}. *)

val dependence_exists_with :
  ?in_bounds:bool ->
  Depctx.t ->
  src:Ir.access ->
  dst:Ir.access ->
  props:(string * array_property) list ->
  bool
(** Does a dependence survive once the user asserts [props] about the
    named (index) arrays?  Properties are instantiated pairwise over the
    opaque occurrences and the query decided by the Presburger engine. *)
