(* The four section-4 analyses: killing, covering, terminating, and
   refinement of dependence distances.  Each is phrased as the validity of
   a Presburger formula of the form  forall (p => exists q)  and decided
   by the tiered portfolio ([Omega.Portfolio]): the O(constraints)
   incomplete screen first, then the paper's efficient route (project the
   existential side with the dark shadow, check the implication with
   gists), and only when both pass does the complete Presburger decision
   procedure run.  Per-tier accounting (attempts / decides / time) lives
   in [Portfolio.Stats]; the driver's structural section-4.5 screens
   count there too, as the [quick] row. *)

open Omega

(* Ablation switch for the benches: when false, the portfolio plan omits
   the dark-shadow + gist fast path (tier 1), so queries the screen
   passes on go straight to the complete Presburger procedure. *)
let use_fast_path = ref true

(* ------------------------------------------------------------------ *)
(* Verdict memoization                                                 *)
(* ------------------------------------------------------------------ *)

(* Repeated kill/cover/refinement queries over a corpus are often
   textually identical problems in fresh variables ([Depctx.instantiate]
   allocates per call, so raw ids never match).  The cache key is a
   canonical serialization: variables renumbered by first occurrence in
   a fixed traversal order (hyp, then LHS problems, then the
   existentials, then RHS problems), tagged with their kind, and the
   existentials listed explicitly.  Alpha-equivalent queries in the same
   allocation order therefore share a key, and validity is invariant
   under renaming, so a hit is always sound.

   Entries carry the budget limits they were computed under.  [Proved]
   and [Disproved] replay at any budget (the solver is deterministic, so
   a completed verdict is a fact).  A [Gave_up] replays only while the
   current budget is no larger than the recorded one: raising the budget
   invalidates cached give-ups, which then recompute.  Fault-injected
   runs bypass the cache entirely (a fault is a property of the run, not
   of the problem).

   Timing benches that reproduce the paper's per-query figures must
   disable the cache ([Memo.enabled := false]) or they would measure
   hash lookups instead of eliminations. *)
module Memo = struct
  type t = {
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
    (* hits attributed to the tier that computed the cached verdict *)
    mutable hits_screen : int;
    mutable hits_fast : int;
    mutable hits_complete : int;
  }

  let make_t () =
    {
      hits = 0;
      misses = 0;
      evictions = 0;
      hits_screen = 0;
      hits_fast = 0;
      hits_complete = 0;
    }

  let enabled = ref true
  let stats = make_t ()

  (* Entries are tagged with the portfolio tier that decided them
     ([None] for a cached give-up), so replays keep the per-tier
     attribution honest. *)
  let table :
      (string, Budget.verdict * Budget.limits * Portfolio.tier option)
      Hashtbl.t =
    Hashtbl.create 4096

  (* The daemon shares one cache across connection threads, so the
     table, the eviction queue, and the counters live behind a mutex.
     The lock covers only lookup and insertion — solver work happens
     outside it — so contention is a hash probe, not an elimination. *)
  let lock = Mutex.create ()

  let locked f =
    Mutex.lock lock;
    match f () with
    | v ->
      Mutex.unlock lock;
      v
    | exception e ->
      Mutex.unlock lock;
      raise e

  (* Attribution of the shared cache's traffic.

     [local]: per-domain hit/miss counters a client may reset and read
     around a request.  The petitd service reports per-request memo
     traffic this way: a request's solver work runs entirely on one
     worker domain, so the domain-local delta is exact even while other
     sessions hammer the shared table (the old scheme — deltas of the
     shared lifetime counters — would misattribute concurrent traffic).

     [by_domain]: lifetime per-domain totals, bumped under the same lock
     as the shared counters; `bench analysis` reports per-domain hit
     rates from it. *)
  type local = { mutable l_hits : int; mutable l_misses : int }

  let local_key = Domain.DLS.new_key (fun () -> { l_hits = 0; l_misses = 0 })

  let local_reset () =
    let l = Domain.DLS.get local_key in
    l.l_hits <- 0;
    l.l_misses <- 0

  let local_counts () =
    let l = Domain.DLS.get local_key in
    (l.l_hits, l.l_misses)

  let by_domain : (int, t) Hashtbl.t = Hashtbl.create 8

  let domain_slot () =
    let id = (Domain.self () :> int) in
    match Hashtbl.find_opt by_domain id with
    | Some s -> s
    | None ->
      let s = make_t () in
      Hashtbl.add by_domain id s;
      s

  let domain_stats () =
    locked (fun () ->
        Hashtbl.fold
          (fun id s acc -> (id, { s with evictions = s.evictions }) :: acc)
          by_domain []
        |> List.sort (fun (a, _) (b, _) -> compare a b))

  (* The cache is bounded: beyond [capacity] entries the oldest keys are
     evicted first-in-first-out.  FIFO (rather than LRU) keeps hits
     O(1) with no bookkeeping on the hot path; corpus-shaped workloads
     re-ask a query soon after first posing it, so recency tracking buys
     little.  [order] may retain keys whose entry was since replaced;
     eviction skips the stale ones. *)
  let capacity = ref 32_768
  let order : string Queue.t = Queue.create ()

  let size () = locked (fun () -> Hashtbl.length table)

  let reset () =
    locked (fun () ->
        Hashtbl.reset table;
        Queue.clear order;
        stats.hits <- 0;
        stats.misses <- 0;
        stats.evictions <- 0;
        stats.hits_screen <- 0;
        stats.hits_fast <- 0;
        stats.hits_complete <- 0;
        Hashtbl.reset by_domain)

  let hit_rate () =
    locked (fun () ->
        let total = stats.hits + stats.misses in
        if total = 0 then 0.
        else float_of_int stats.hits /. float_of_int total)

  let replayable (verdict, lims, _tier) =
    match verdict with
    | Budget.Proved | Budget.Disproved -> true
    | Budget.Gave_up _ -> Budget.le (Budget.current_limits ()) lims

  let add key verdict tier =
    (* Read the ambient limits before taking the lock: the entry
       records the budget the verdict was computed under. *)
    let entry = (verdict, Budget.current_limits (), tier) in
    locked (fun () ->
        let fresh = not (Hashtbl.mem table key) in
        Hashtbl.replace table key entry;
        if fresh then begin
          Queue.push key order;
          while
            Hashtbl.length table > !capacity && not (Queue.is_empty order)
          do
            let victim = Queue.pop order in
            if Hashtbl.mem table victim then begin
              Hashtbl.remove table victim;
              stats.evictions <- stats.evictions + 1
            end
          done
        end)

  let bump_tier s tier =
    match tier with
    | None -> ()
    | Some Portfolio.Tier_screen -> s.hits_screen <- s.hits_screen + 1
    | Some Portfolio.Tier_fast -> s.hits_fast <- s.hits_fast + 1
    | Some Portfolio.Tier_complete -> s.hits_complete <- s.hits_complete + 1

  let find key =
    let l = Domain.DLS.get local_key in
    locked (fun () ->
        match Hashtbl.find_opt table key with
        | Some ((verdict, _, tier) as entry) when replayable entry ->
          stats.hits <- stats.hits + 1;
          bump_tier stats tier;
          let slot = domain_slot () in
          slot.hits <- slot.hits + 1;
          bump_tier slot tier;
          l.l_hits <- l.l_hits + 1;
          Some (verdict, tier)
        | _ ->
          stats.misses <- stats.misses + 1;
          (domain_slot ()).misses <- (domain_slot ()).misses + 1;
          l.l_misses <- l.l_misses + 1;
          None)
end

(* The canonical alpha-renamed serialization lives in [Canon]: it is
   both the memo key (shareable across domains — renumbering by first
   occurrence erases the allocating domain's id slot) and, prefixed with
   the query label, the content-derived fault-injection key. *)
let memo_key ~hyp lhs ~evars rhs = Canon.key ~hyp lhs ~evars rhs

(* The three portfolio tiers for [p => exists vs. q], each a sound
   attempt that may pass with [Unknown]:

   tier 0 — the incomplete O(constraints) screen;
   tier 1 — one RHS disjunct's dark projection implied by the LHS
            disjunct (must hold for EVERY lhs disjunct; proves only);
   tier 2 — the complete Presburger engine (always decides). *)

let screen_tier ~hyp lhs ~evars rhs () = Screen.implies_exists ~hyp lhs ~evars rhs

let fast_tier ~hyp lhs ~evars rhs () =
  let keep v = not (List.exists (Var.equal v) evars) in
  let rhs_dark =
    lazy
      (List.filter_map
         (fun r ->
           match Elim.project_dark ~keep (Problem.add_list hyp r) with
           | `Contra -> None
           | `Ok d -> Some d)
         rhs)
  in
  let ok =
    List.for_all
      (fun l ->
        let l = Problem.add_list hyp l in
        (not (Elim.satisfiable l))
        || List.exists (fun d -> Gist.implies l d) (Lazy.force rhs_dark))
      lhs
  in
  if ok then Screen.Proved else Screen.Unknown

let complete_tier ~hyp lhs ~evars rhs () =
  let open Presburger in
  let f =
    implies_
      (and_ (List.map atom hyp))
      (implies_
         (or_ (List.map of_problem lhs))
         (exists evars (or_ (List.map of_problem rhs))))
  in
  if valid f then Screen.Proved else Screen.Disproved

(* The three-valued query boundary, with tier attribution: any blown
   budget inside a tier surfaces as [Gave_up], never as an exception,
   and an exhausted plan (the screen-only backend passing on a query)
   gives up with [Incomplete]. *)
let implies_exists_decide ?(label = "query") ~hyp lhs ~evars rhs :
    Budget.verdict * Portfolio.tier option =
  (* The fault key is the label-tagged canonical form: computed lazily
     (only when injection is active or the memo needs it), and a pure
     function of the query's content, so a given query faults
     identically in serial and sharded runs. *)
  let canon = lazy (memo_key ~hyp lhs ~evars rhs) in
  let compute () =
    let tiers =
      Portfolio.plan
        ~screen:(screen_tier ~hyp lhs ~evars rhs)
        ?fast:
          (if !use_fast_path then Some (fast_tier ~hyp lhs ~evars rhs)
           else None)
        ~complete:(complete_tier ~hyp lhs ~evars rhs)
        ()
    in
    Portfolio.decide ~label
      ~fault_key:(fun () -> label ^ ":" ^ Lazy.force canon)
      tiers
  in
  if (not !Memo.enabled) || Budget.fault_injection_active () then compute ()
  else begin
    let key = Lazy.force canon in
    match Memo.find key with
    | Some (verdict, tier) -> (verdict, tier)
    | None ->
      (* Two threads racing on a fresh key both compute and both add;
         the solver is deterministic, so the duplicated work is the only
         cost and the second [add] just replaces an equal entry. *)
      let ((verdict, tier) as result) = compute () in
      Memo.add key verdict tier;
      result
  end

let implies_exists_verdict ?label ~hyp lhs ~evars rhs : Budget.verdict =
  fst (implies_exists_decide ?label ~hyp lhs ~evars rhs)

(* Every boolean caller uses a positive answer to eliminate or refine a
   dependence, so [Gave_up] maps to [false]: the dependence stays. *)
let implies_exists ?label ~hyp lhs ~evars rhs : bool =
  match implies_exists_verdict ?label ~hyp lhs ~evars rhs with
  | Budget.Proved -> true
  | Budget.Disproved | Budget.Gave_up _ -> false

(* ------------------------------------------------------------------ *)
(* Shared problem pieces                                               *)
(* ------------------------------------------------------------------ *)

(* The dependence problems (one per ordering level) from instance [a] to
   instance [b]. *)
let dep_problems ?(in_bounds = false) ctx a b : Problem.t list =
  let core =
    Depctx.domain ~in_bounds ctx a
    @ Depctx.domain ~in_bounds ctx b
    @ Depctx.subs_equal ctx a b
  in
  List.map
    (fun (_, order) -> Problem.of_list (core @ order))
    (Depctx.order_before ctx a b)

(* ------------------------------------------------------------------ *)
(* Covering (4.2) and terminating (4.3)                                *)
(* ------------------------------------------------------------------ *)

let proved = function
  | Budget.Proved -> true
  | Budget.Disproved | Budget.Gave_up _ -> false

(* Does the write [src] cover [dst]?  (Every element [dst] accesses was
   written by an earlier instance of [src].) *)
let covers_verdict ?(in_bounds = false) ctx ~(src : Ir.access)
    ~(dst : Ir.access) : Budget.verdict =
  let a = Depctx.instantiate ctx src ~tag:"i" in
  let b = Depctx.instantiate ctx dst ~tag:"j" in
  let hyp = Depctx.assumes ctx in
  let lhs = [ Problem.of_list (Depctx.domain ~in_bounds ctx b) ] in
  let rhs = dep_problems ~in_bounds ctx a b in
  implies_exists_verdict ~label:"cover" ~hyp lhs ~evars:(Depctx.inst_vars a)
    rhs

let covers ?in_bounds ctx ~src ~dst =
  proved (covers_verdict ?in_bounds ctx ~src ~dst)

(* Does the write [dst] terminate [src]?  (Every element [src] accesses is
   later overwritten by [dst].) *)
let terminates_verdict ?(in_bounds = false) ctx ~(src : Ir.access)
    ~(dst : Ir.access) : Budget.verdict =
  let a = Depctx.instantiate ctx src ~tag:"i" in
  let b = Depctx.instantiate ctx dst ~tag:"j" in
  let hyp = Depctx.assumes ctx in
  let lhs = [ Problem.of_list (Depctx.domain ~in_bounds ctx a) ] in
  let rhs = dep_problems ~in_bounds ctx a b in
  implies_exists_verdict ~label:"terminate" ~hyp lhs
    ~evars:(Depctx.inst_vars b) rhs

let terminates ?in_bounds ctx ~src ~dst =
  proved (terminates_verdict ?in_bounds ctx ~src ~dst)

(* ------------------------------------------------------------------ *)
(* Killing (4.1)                                                       *)
(* ------------------------------------------------------------------ *)

(* Is the dependence from [src] to [dst] killed by the write [killer]?
   For every (i,k) instance pair of the dependence there must be a j with
   src(i) << killer(j) << dst(k) and killer(j) writing dst(k)'s element. *)
let kills_verdict ?(in_bounds = false) ctx ~(src : Ir.access)
    ~(killer : Ir.access) ~(dst : Ir.access) : Budget.verdict =
  let a = Depctx.instantiate ctx src ~tag:"i" in
  let b = Depctx.instantiate ctx killer ~tag:"j" in
  let c = Depctx.instantiate ctx dst ~tag:"k" in
  let hyp = Depctx.assumes ctx in
  let lhs = dep_problems ~in_bounds ctx a c in
  let rhs =
    (* j in [B] and A(i) << B(j) << C(k) and B(j) =sub C(k); the two
       ordering disjunctions multiply out *)
    let dom_b = Depctx.domain ~in_bounds ctx b in
    let sub_bc = Depctx.subs_equal ctx b c in
    List.concat_map
      (fun (_, ab) ->
        List.map
          (fun (_, bc) -> Problem.of_list (dom_b @ sub_bc @ ab @ bc))
          (Depctx.order_before ctx b c))
      (Depctx.order_before ctx a b)
  in
  implies_exists_verdict ~label:"kill" ~hyp lhs ~evars:(Depctx.inst_vars b)
    rhs

let kills ?in_bounds ctx ~src ~killer ~dst =
  proved (kills_verdict ?in_bounds ctx ~src ~killer ~dst)

(* ------------------------------------------------------------------ *)
(* Refinement (4.4)                                                    *)
(* ------------------------------------------------------------------ *)

(* A candidate refinement: for each common loop, an optional inclusive
   range of distances ([None] = unconstrained). *)
type candidate = (int option * int option) list

(* Constraints on a (j,k) instance pair expressing "distance within the
   candidate". *)
let candidate_constraints (j : Depctx.inst) (k : Depctx.inst)
    (cand : candidate) : Constr.t list =
  List.concat
    (List.mapi
       (fun l (lo, hi) ->
         let dist =
           Linexpr.sub
             (Linexpr.var k.Depctx.ivars.(l))
             (Linexpr.var j.Depctx.ivars.(l))
         in
         (match lo with
          | Some d -> [ Constr.ge dist (Linexpr.of_int d) ]
          | None -> [])
         @
         match hi with
         | Some d -> [ Constr.le dist (Linexpr.of_int d) ]
         | None -> [])
       cand)

(* Does candidate [cand] refine the dependence from write [src] to [dst]?
   Condition (simplified as in 4.4): every instance of [dst] receiving the
   dependence also receives it from an instance of [src] within the
   candidate distance. *)
let check_refinement ?(in_bounds = false) ctx ~(src : Ir.access)
    ~(dst : Ir.access) (cand : candidate) : bool =
  let i = Depctx.instantiate ctx src ~tag:"i" in
  let j = Depctx.instantiate ctx src ~tag:"j" in
  let k = Depctx.instantiate ctx dst ~tag:"k" in
  let hyp = Depctx.assumes ctx in
  let lhs = dep_problems ~in_bounds ctx i k in
  let rhs =
    let core =
      Depctx.domain ~in_bounds ctx j
      @ Depctx.domain ~in_bounds ctx k
      @ Depctx.subs_equal ctx j k
      @ candidate_constraints j k cand
    in
    List.map
      (fun (_, order) -> Problem.of_list (core @ order))
      (Depctx.order_before ctx j k)
  in
  implies_exists ~label:"refinement" ~hyp lhs ~evars:(Depctx.inst_vars j) rhs

(* Generate and verify refinements the paper's way: walk the common loops
   outermost-first, each time pinning the distance to its minimum possible
   value; stop at the first loop whose pinned candidate fails.  Returns
   the number of pinned levels and their distances. *)
let refine ?(in_bounds = false) ctx ~(src : Ir.access) ~(dst : Ir.access) :
    int list =
  let pair = Deps.make_pair ~in_bounds ctx src dst in
  let c = pair.Deps.common in
  let levels = Depctx.order_before ctx pair.Deps.a pair.Deps.b in
  (* minimum possible distance in loop [l], given the already-fixed
     distances [fixed] (outermost-first) *)
  let min_distance fixed l =
    let fix_constrs =
      List.mapi
        (fun l' d ->
          Constr.eq2 (Linexpr.var pair.Deps.dvars.(l')) (Linexpr.of_int d))
        fixed
    in
    let mins =
      List.filter_map
        (fun (_, order) ->
          let p = Problem.add_list (fix_constrs @ order) pair.Deps.base in
          match
            Budget.run ~label:"refine/minimize"
              ~fault_key:(fun () -> Canon.of_problems ~tag:"min" [ p ])
              (fun () -> Omega.minimize p pair.Deps.dvars.(l))
          with
          | Ok (`Min m) -> Zint.to_int_opt m
          | Ok (`Unbounded | `Unsat) -> None
          (* give-up: cannot bound the distance, stop refining *)
          | Error _ -> None)
        levels
    in
    match mins with [] -> None | m :: rest -> Some (List.fold_left min m rest)
  in
  let rec go fixed l =
    if l >= c then List.rev fixed
    else begin
      match min_distance (List.rev fixed) l with
      | None -> List.rev fixed
      | Some d ->
        (* the candidate's forwardness is enforced by the ordering
           constraints inside check_refinement's right-hand side *)
        let prefix = List.rev (d :: fixed) in
        let cand =
          List.init c (fun l' ->
              if l' < List.length prefix then
                let dd = List.nth prefix l' in
                (Some dd, Some dd)
              else (None, None))
        in
        if check_refinement ~in_bounds ctx ~src ~dst cand then
          go (d :: fixed) (l + 1)
        else List.rev fixed
    end
  in
  go [] 0

(* The refined direction vectors: distances pinned by [refine] plus the
   sign analysis of the remaining levels. *)
let refined_vectors ?(in_bounds = false) ctx ~(src : Ir.access)
    ~(dst : Ir.access) (pinned : int list) : Dirvec.t list =
  let pair = Deps.make_pair ~in_bounds ctx src dst in
  let fix_constrs =
    List.mapi
      (fun l d ->
        Constr.eq2 (Linexpr.var pair.Deps.dvars.(l)) (Linexpr.of_int d))
      pinned
  in
  let levels = Depctx.order_before ctx pair.Deps.a pair.Deps.b in
  List.concat_map
    (fun (lvl, order) ->
      let p = Problem.add_list (fix_constrs @ order) pair.Deps.base in
      match
        Budget.run ~label:"refine/vectors"
          ~fault_key:(fun () -> Canon.of_problems ~tag:"rvec" [ p ])
          (fun () -> Dirvec.vectors_of_level p pair.Deps.dvars ~carried:lvl)
      with
      | Ok vecs -> vecs
      (* give-up: the weakest vectors of the level, never an
         under-approximation of the refined dependence *)
      | Error _ ->
        Dirvec.conservative_of_level (Array.length pair.Deps.dvars)
          ~carried:lvl)
    levels
  |> List.sort_uniq Dirvec.compare

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let set_fault_injection ~seed ~rate = Budget.set_fault_injection ~seed ~rate
let clear_fault_injection () = Budget.clear_fault_injection ()
