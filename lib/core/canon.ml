(* Canonical, allocation-independent serialization of solver queries.

   Variables are renumbered by first occurrence in a fixed traversal
   order (hypotheses, then LHS problems, then the existentials, then RHS
   problems) and tagged with their kind, so two alpha-equivalent queries
   built in the same allocation order — on any domain, from any id slot
   — serialize identically.  This is the key of the verdict memo
   ([Analyses.Memo], which is what lets domains share verdicts) and,
   prefixed with the query label, the fault-injection key that makes the
   injected-fault stream a pure function of query content. *)

open Omega

(* Serializing a coefficient or a canonical id re-enters [string_of_int]
   constantly with the same small values; a precomputed table of the
   common range removes the allocation from the key hot path (gated with
   the other caches on [Tuning.hashcons]). *)
let int_str =
  let cache = Array.init 1024 (fun i -> string_of_int (i - 256)) in
  fun n ->
    if !Tuning.hashcons && n >= -256 && n < 768 then
      Array.unsafe_get cache (n + 256)
    else string_of_int n

let zint_str z =
  match Zint.to_int_opt z with
  | Some n -> int_str n
  | None -> Zint.to_string z

let key ?tag ~(hyp : Constr.t list) (lhs : Problem.t list)
    ~(evars : Var.t list) (rhs : Problem.t list) : string =
  let buf = Buffer.create 256 in
  (match tag with
  | Some t ->
    Buffer.add_string buf t;
    Buffer.add_char buf ':'
  | None -> ());
  let canon : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let cid v =
    let id = Var.id v in
    match Hashtbl.find_opt canon id with
    | Some c -> c
    | None ->
      let c = Hashtbl.length canon in
      Hashtbl.add canon id c;
      c
  in
  let kind_char v =
    match Var.kind v with Var.Input -> 'i' | Var.Sym -> 's' | Var.Wild -> 'w'
  in
  let add_lin le =
    Linexpr.iter_terms
      (fun v c ->
        Buffer.add_string buf (zint_str c);
        Buffer.add_char buf '*';
        Buffer.add_char buf (kind_char v);
        Buffer.add_string buf (int_str (cid v));
        Buffer.add_char buf '+')
      le;
    Buffer.add_string buf (zint_str (Linexpr.constant le))
  in
  let add_constr c =
    Buffer.add_char buf
      (match Constr.kind c with Constr.Eq -> 'E' | Constr.Geq -> 'G');
    add_lin (Constr.expr c);
    Buffer.add_char buf ';'
  in
  let add_problem p =
    Buffer.add_char buf '[';
    List.iter add_constr (Problem.constraints p);
    Buffer.add_char buf ']'
  in
  List.iter add_constr hyp;
  Buffer.add_char buf '|';
  List.iter add_problem lhs;
  Buffer.add_char buf '|';
  List.iter
    (fun v ->
      Buffer.add_string buf (int_str (cid v));
      Buffer.add_char buf ',')
    evars;
  Buffer.add_char buf '|';
  List.iter add_problem rhs;
  Buffer.contents buf

(* Key of a bare problem list (fault keys for queries that are not
   implications, e.g. per-level dependence-vector extraction). *)
let of_problems ?tag (ps : Problem.t list) : string =
  key ?tag ~hyp:[] ps ~evars:[] []
