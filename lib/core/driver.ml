(* The overall section-4 procedure:

   1. compute all output dependences (they gate the kill and refinement
      tests);
   2. for each array read, compute the apparent flow dependences; refine
      each, then check whether it covers the read;
   3. a covering dependence kills every dependence from a write that runs
      completely before the cover (a quick, Omega-free elimination) and is
      tried as a killer for the rest;
   4. remaining flow dependences to the same read are checked pairwise for
      killing, screened by the quick tests of section 4.5.

   The result classifies every apparent flow dependence as live or dead
   (killed/covered), with refinement and covering annotations - the data
   of Figures 3 and 4. *)

type dead_reason = Killed of Ir.access | Covered of Ir.access

type flow_result = {
  dep : Deps.dep;
  refined : Dirvec.t list option; (* refined vectors when they differ *)
  covers : bool; (* does this dependence cover its read? *)
  dead : dead_reason option;
}

type result = {
  ctx : Depctx.t;
  flows : flow_result list;
  antis : Deps.dep list;
  outputs : Deps.dep list;
}

(* Quick screen (4.5): refinement in some loop needs a self-output
   dependence of the source with a possibly-nonzero distance. *)
let refinement_possible outputs (src : Ir.access) =
  List.exists
    (fun (d : Deps.dep) ->
      d.Deps.src.Ir.acc_id = src.Ir.acc_id
      && d.Deps.dst.Ir.acc_id = src.Ir.acc_id)
    outputs

(* Quick screen (4.5): a dependence whose distance cannot be 0 in some
   common loop cannot cover the read the first time through that loop. *)
let cover_possible (vectors : Dirvec.t list) =
  List.exists Dirvec.allows_all_zero vectors

(* Quick screen (4.5): killing the A->C dependence with B->C requires an
   output dependence A->B. *)
let output_exists outputs (a : Ir.access) (b : Ir.access) =
  List.exists
    (fun (d : Deps.dep) ->
      d.Deps.src.Ir.acc_id = a.Ir.acc_id && d.Deps.dst.Ir.acc_id = b.Ir.acc_id)
    outputs

(* Can the covering dependence [a] -> [b] eliminate the dependence from
   write [w] to [b] without a kill test?  Sound when:
   - the cover is loop-independent (its distance is exactly 0 in every
     loop common to [a] and [b]: the covering instance shares those
     counters with the read);
   - [w] is textually before [a]; and
   - every loop [w] shares with [a] or with [b] is also shared by [a] and
     [b] (so the shared counters equal those of the covering instance and
     the textual order decides the rest).
   Then every [w] instance sourcing a dependence to the read precedes the
   covering write of that read, which overwrites the element first. *)
let cover_eliminates ~(cover_vectors : Dirvec.t list) (a : Ir.access)
    (b : Ir.access) (w : Ir.access) =
  List.exists Dirvec.is_loop_independent cover_vectors
  && List.length cover_vectors = 1
  && Ir.textually_before w a
  && Ir.common_loops w a <= Ir.common_loops a b
  && Ir.common_loops w b <= Ir.common_loops a b

(* The section-4.5 structural screens count as the portfolio's [quick]
   row: an attempt per consultation, a decide per short-circuit (a
   solver query avoided).  [quick_screen hit] records both and returns
   [hit] so call sites read as the screen predicate itself. *)
let quick_screen hit =
  let r = (Omega.Portfolio.Stats.current ()).Omega.Portfolio.Stats.quick in
  r.Omega.Portfolio.Stats.attempts <- r.Omega.Portfolio.Stats.attempts + 1;
  if hit then
    r.Omega.Portfolio.Stats.decides <- r.Omega.Portfolio.Stats.decides + 1;
  hit

let analyze ?(in_bounds = false) ?(quick = true) (prog : Ir.program) : result =
  let ctx = Depctx.create prog in
  let outputs = Deps.all ~in_bounds ctx Deps.Output in
  let antis = Deps.all ~in_bounds ctx Deps.Anti in
  let process_dst ~kind ~(srcs : Ir.access list) (b : Ir.access) :
      flow_result list =
    let writers =
      List.filter (fun w -> w.Ir.array = b.Ir.array) srcs
    in
    (* apparent flow dependences to b, with refinement and cover info *)
    let cands =
      List.filter_map
        (fun (a : Ir.access) ->
          if kind = Deps.Output && a.Ir.acc_id = b.Ir.acc_id && Ir.depth a = 0
          then None
          else
          match Deps.compute ~in_bounds ctx ~src:a ~dst:b ~kind with
          | None -> None
          | Some dep ->
            let refined =
              if quick && quick_screen (not (refinement_possible outputs a))
              then None
              else begin
                let pinned = Analyses.refine ~in_bounds ctx ~src:a ~dst:b in
                if pinned = [] then None
                else begin
                  let vecs =
                    Analyses.refined_vectors ~in_bounds ctx ~src:a ~dst:b
                      pinned
                  in
                  if List.compare Dirvec.compare vecs dep.Deps.vectors = 0
                  then None
                  else Some vecs
                end
              end
            in
            let vectors =
              match refined with Some v -> v | None -> dep.Deps.vectors
            in
            let covers =
              if quick && quick_screen (not (cover_possible vectors)) then
                false
              else Analyses.covers ~in_bounds ctx ~src:a ~dst:b
            in
            Some { dep; refined; covers; dead = None })
        writers
    in
    (* cover-based elimination: a covering write kills dependences from
       writes that run completely before it (no Omega call needed) *)
    (* Budget-degraded ("assumed") dependences are exempt from every
       elimination below: a kill/cover proof against a dependence whose
       exact problem may be empty is vacuous, and honoring it would let
       degraded runs eliminate edges precise runs keep. *)
    let cands =
      List.map
        (fun fr ->
          if fr.dead <> None || fr.dep.Deps.assumed then fr
          else begin
            let killed_by_cover =
              List.find_opt
                (fun other ->
                  other.covers
                  && other.dep.Deps.src.Ir.acc_id <> fr.dep.Deps.src.Ir.acc_id
                  &&
                  let vecs =
                    match other.refined with
                    | Some v -> v
                    | None -> other.dep.Deps.vectors
                  in
                  cover_eliminates ~cover_vectors:vecs other.dep.Deps.src b
                    fr.dep.Deps.src)
                cands
            in
            if quick_screen (killed_by_cover <> None) then
              let cov = Option.get killed_by_cover in
              { fr with dead = Some (Covered cov.dep.Deps.src) }
            else fr
          end)
        cands
    in
    (* Pairwise killing among the remaining dependences.  A dead writer
       still writes, so it kills just as well as a live one: admitting
       dead killers is sound, strictly more precise, and makes each
       verdict a pure function of the individual kill queries
       (independent of processing order) - which the fault-injection
       soundness harness relies on. *)
    let arr = Array.of_list cands in
    Array.iteri
      (fun i fr ->
        if fr.dead = None && not fr.dep.Deps.assumed then begin
          let killer =
            Array.to_list arr
            |> List.find_opt (fun other ->
                   other.dep.Deps.src.Ir.acc_id <> fr.dep.Deps.src.Ir.acc_id
                   &&
                   if
                     quick
                     && quick_screen
                          (not
                             (output_exists outputs fr.dep.Deps.src
                                other.dep.Deps.src))
                   then false
                   else
                     Analyses.kills ~in_bounds ctx ~src:fr.dep.Deps.src
                       ~killer:other.dep.Deps.src ~dst:b)
          in
          match killer with
          | Some k ->
            arr.(i) <- { fr with dead = Some (Killed k.dep.Deps.src) }
          | None -> ()
        end)
      arr;
    Array.to_list arr
  in
  (* One destination (with all its candidate writers, refinements,
     covers and kills) is the sharding unit here; concatenating in
     destination order reproduces the serial result list exactly. *)
  let flows =
    Par.map_list
      (process_dst ~kind:Deps.Flow ~srcs:(Ir.writes prog))
      (Ir.reads prog)
    |> List.concat
  in
  { ctx; flows; antis; outputs }

(* The same live/dead classification applied to output or anti
   dependences (the paper notes the techniques "can also be applied to
   output and anti-dependences" though its implementation, like our
   default driver, leaves them untouched).  For output dependences the
   destinations are writes; for anti dependences the sources are reads
   (and the killers remain writes). *)
let classify_kind ?(in_bounds = false) ?(quick = true) (prog : Ir.program)
    (kind : Deps.kind) : flow_result list =
  match kind with
  | Deps.Flow -> (analyze ~in_bounds ~quick prog).flows
  | Deps.Output | Deps.Anti ->
    let ctx = Depctx.create prog in
    let dsts = Ir.writes prog in
    let srcs =
      match kind with Deps.Output -> Ir.writes prog | _ -> Ir.reads prog
    in
    Par.map_list
      (fun (b : Ir.access) ->
        let cands =
          List.filter_map
            (fun (a : Ir.access) ->
              if a.Ir.array <> b.Ir.array then None
              else if
                kind = Deps.Output && a.Ir.acc_id = b.Ir.acc_id
                && Ir.depth a = 0
              then None
              else
                match Deps.compute ~in_bounds ctx ~src:a ~dst:b ~kind with
                | None -> None
                | Some dep -> Some { dep; refined = None; covers = false; dead = None })
            srcs
        in
        (* pairwise killing: an intervening write to the same element makes
           the dependence transitive *)
        let arr = Array.of_list cands in
        Array.iteri
          (fun i fr ->
            if fr.dead = None && not fr.dep.Deps.assumed then begin
              let killer =
                List.find_opt
                  (fun (k : Ir.access) ->
                    k.Ir.acc_id <> fr.dep.Deps.src.Ir.acc_id
                    && k.Ir.acc_id <> b.Ir.acc_id
                    && k.Ir.array = b.Ir.array
                    && ((not quick)
                        || Deps.exists ctx ~src:fr.dep.Deps.src ~dst:k)
                    && Analyses.kills ~in_bounds ctx ~src:fr.dep.Deps.src
                         ~killer:k ~dst:b)
                  (Ir.writes prog)
              in
              match killer with
              | Some k -> arr.(i) <- { fr with dead = Some (Killed k) }
              | None -> ()
            end)
          arr;
        Array.to_list arr)
      dsts
    |> List.concat

(* ------------------------------------------------------------------ *)
(* Report rendering (the Figure 3 / Figure 4 tables)                   *)
(* ------------------------------------------------------------------ *)

let status_string fr =
  let c = if fr.covers then "C" else " " in
  let r = if fr.refined <> None then "r" else " " in
  Printf.sprintf "[%s%s]" c r

let vectors_string fr =
  let vecs =
    match fr.refined with Some v -> v | None -> fr.dep.Deps.vectors
  in
  String.concat " " (List.map Dirvec.to_string vecs)

let live_flows r = List.filter (fun fr -> fr.dead = None) r.flows
let dead_flows r = List.filter (fun fr -> fr.dead <> None) r.flows

let render_flow_table (frs : flow_result list) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-22s %-22s %-14s %s\n" "FROM" "TO" "dir/dist" "status");
  List.iter
    (fun fr ->
      let status =
        let r = if fr.refined <> None then "r" else "" in
        match fr.dead with
        | Some (Killed k) -> Printf.sprintf "[ k%s by %s]" r k.Ir.label
        | Some (Covered c) -> Printf.sprintf "[ c%s by %s]" r c.Ir.label
        | None -> status_string fr
      in
      Buffer.add_string buf
        (Printf.sprintf "%-22s %-22s %-14s %s\n"
           (Ir.access_to_string fr.dep.Deps.src)
           (Ir.access_to_string fr.dep.Deps.dst)
           (vectors_string fr) status))
    frs;
  Buffer.contents buf
