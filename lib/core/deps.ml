(* Standard (memory-based) dependence computation: for an ordered pair of
   accesses to the same array, decide whether a dependence exists and
   summarize it with direction/distance vectors, one analysis per carried
   level. *)

open Omega

type kind = Flow | Anti | Output

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"

type dep = {
  src : Ir.access;
  dst : Ir.access;
  kind : kind;
  vectors : Dirvec.t list; (* forward vectors, one or more per level *)
  levels : int list; (* satisfiable carried levels; 0 = loop-independent *)
  assumed : bool;
      (* some level's analysis blew its budget and the dependence is
         (partly) assumed rather than computed.  Elimination must leave
         assumed dependences alone: a kill/cover "proof" against an
         assumed dependence may be vacuous (the exact problem could be
         empty), and honoring it would make degraded runs eliminate
         edges precise runs keep. *)
}

(* The base problem of a pair: domains, subscript equality, user
   assumptions (and optionally in-bounds assertions), plus distance
   variables d_l = j_l - i_l for the common loops.  Returns the problem
   builder and the distance variables. *)
type pair = {
  ctx : Depctx.t;
  a : Depctx.inst;
  b : Depctx.inst;
  base : Problem.t; (* no ordering constraints *)
  dvars : Var.t array;
  common : int;
}

let make_pair ?(in_bounds = false) ctx (src : Ir.access) (dst : Ir.access) :
    pair =
  let a = Depctx.instantiate ctx src ~tag:"i" in
  let b = Depctx.instantiate ctx dst ~tag:"j" in
  let c = Ir.common_loops src dst in
  let dvars =
    Array.init c (fun l -> Var.fresh (Printf.sprintf "d%d" (l + 1)))
  in
  let dconstrs =
    List.init c (fun l ->
        (* d_l = j_l - i_l *)
        Constr.eq2
          (Linexpr.var dvars.(l))
          (Linexpr.sub (Linexpr.var b.Depctx.ivars.(l))
             (Linexpr.var a.Depctx.ivars.(l))))
  in
  let base =
    Problem.of_list
      (Depctx.domain ~in_bounds ctx a
      @ Depctx.domain ~in_bounds ctx b
      @ Depctx.subs_equal ctx a b
      @ Depctx.assumes ctx
      @ dconstrs)
  in
  { ctx; a; b; base; dvars; common = c }

(* Problem for one ordering level of the pair. *)
let level_problem (p : pair) (level, constrs) =
  ignore level;
  Problem.add_list constrs p.base

(* Compute the dependence (if any) from [src] to [dst]. *)
let compute ?(in_bounds = false) ctx ~(src : Ir.access) ~(dst : Ir.access)
    ~(kind : kind) : dep option =
  let p = make_pair ~in_bounds ctx src dst in
  let levels = Depctx.order_before ctx p.a p.b in
  let gave_up = ref false in
  let results =
    List.filter_map
      (fun (lvl, constrs) ->
        let prob = Problem.add_list constrs p.base in
        let vecs =
          match
            Budget.run ~label:"deps/vectors"
              ~fault_key:(fun () -> Canon.of_problems ~tag:"vec" [ prob ])
              (fun () -> Dirvec.vectors_of_level prob p.dvars ~carried:lvl)
          with
          | Ok vecs -> vecs
          (* give-up: assume the level carries a dependence with the
             weakest possible vectors *)
          | Error _ ->
            gave_up := true;
            Dirvec.conservative_of_level p.common ~carried:lvl
        in
        if vecs = [] then None else Some (lvl, vecs))
      levels
  in
  if results = [] then None
  else begin
    let vectors =
      List.concat_map snd results
      |> List.sort_uniq Dirvec.compare
    in
    Some
      {
        src;
        dst;
        kind;
        vectors;
        levels = List.map fst results;
        assumed = !gave_up;
      }
  end

(* Does any dependence (ignoring direction refinement) exist at all? *)
let exists ctx ~src ~dst : bool =
  let p = make_pair ctx src dst in
  List.exists
    (fun lc ->
      let prob = level_problem p lc in
      match
        Budget.run ~label:"deps/exists"
          ~fault_key:(fun () -> Canon.of_problems ~tag:"ex" [ prob ])
          (fun () -> Elim.satisfiable prob)
      with
      | Ok b -> b
      | Error _ -> true (* cannot refute: assume the dependence *))
    (Depctx.order_before ctx p.a p.b)

(* All dependences of a given kind in a program.  Each surviving access
   pair is an independent solver workload, so the pair population shards
   over the domain pool ([Par.map]; width 1 — the default — runs them
   inline).  The result keeps the serial (src, dst) enumeration order,
   and per-pair verdicts are bit-identical to a serial run (see Par). *)
let all ?(in_bounds = false) ctx (kind : kind) : dep list =
  let prog = ctx.Depctx.prog in
  let writes = Ir.writes prog and reads = Ir.reads prog in
  let srcs, dsts =
    match kind with
    | Flow -> (writes, reads)
    | Anti -> (reads, writes)
    | Output -> (writes, writes)
  in
  let pairs =
    List.concat_map
      (fun src ->
        List.filter_map
          (fun dst ->
            if src.Ir.array <> dst.Ir.array then None
            else if
              kind = Output && src.Ir.acc_id = dst.Ir.acc_id
              && Ir.depth src = 0
            then None (* a single unlooped write cannot depend on itself *)
            else Some (src, dst))
          dsts)
      srcs
    |> Array.of_list
  in
  Par.map (fun (src, dst) -> compute ~in_bounds ctx ~src ~dst ~kind) pairs
  |> Array.to_list
  |> List.filter_map Fun.id

let dep_to_string (d : dep) =
  Printf.sprintf "%s --%s--> %s %s"
    (Ir.access_to_string d.src)
    (kind_to_string d.kind)
    (Ir.access_to_string d.dst)
    (String.concat " " (List.map Dirvec.to_string d.vectors))
