(** Sharding solver work across domains.

    {!map} runs an array of independent items over a process-wide pool
    of worker domains, keeping result order; the calling domain
    participates.  Verdicts are bit-identical to the serial run: each
    item's variables are minted by one domain in the same relative
    order as serially, the shared {!Analyses.Memo} is keyed canonically,
    and per-domain telemetry merges with a commutative combine.  Memo
    hit/miss counts are the one quantity parallelism may change (two
    domains racing a fresh key both compute the same verdict).

    Width defaults to 1, in which case {!map} is exactly [Array.map]
    with no pool and no scoping. *)

val set_domains : int -> unit
(** Number of domains (including the caller) future {!map} calls use;
    clamped to at least 1. *)

val domains : unit -> int

val map : ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map.  Runs inline when width is 1, the
    array is short, or the caller is already a pool worker (nested
    parallelism).  Re-raises the first exception any item raised after
    the batch drains. *)

val map_list : ('a -> 'b) -> 'a list -> 'b list

type wrap = { wrap : 'a. (unit -> 'a) -> 'a }

val register_scope_hook : (unit -> wrap) -> unit
(** Register a scope hook: called once per batch on the submitting
    domain, the returned wrapper runs around each task on its executing
    domain.  Used to ship ambient per-domain state (budgets, stats
    counters) with the work; the Budget and Tuning hooks are built in,
    {!Analyses} registers its own. *)
