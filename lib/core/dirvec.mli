(** Direction / distance vectors (section 2.1).

    A vector has one entry per loop common to the two accesses.  Each
    entry summarizes the possible signs of the dependence distance in that
    loop, refined with an exact distance or a finite range when the
    constraints pin one down.  Sets of vectors are partially compressed:
    signs at a level merge only when the deeper analyses agree, so
    [{(+,+),(0,0)}] is not merged into the lossy [(0+,0+)] (the paper's
    example). *)

open Omega

type sign = Neg | Zero | Pos | NonNeg | NonPos | Any

type entry = {
  sign : sign;
  lo : int option;  (** distance lower bound, when known and finite *)
  hi : int option;
}

type t = entry list

val exact : int -> entry

val entry_to_string : entry -> string
(** ["0"], ["+"], ["0+"], ["*"], ["3"], ["0:1"], ... as in the paper. *)

val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool

val entry_allows_zero : entry -> bool
val allows_all_zero : t -> bool
val is_loop_independent : t -> bool
(** Every entry is exactly zero. *)

val sign_constr : Var.t -> sign -> Constr.t list
(** Constraints pinning the sign of a variable. *)

val range_of : Problem.t -> Var.t -> int option * int option
(** Finite integer (min, max) of a variable subject to a problem. *)

val analyze : Problem.t -> Var.t array -> int -> t list
(** [analyze p dvars d] enumerates the vectors of levels [d..] of the
    distance variables under [p], with partial compression. *)

val conservative_of_level : int -> carried:int -> t list
(** The weakest vectors of one ordering level over [count] common loops:
    zero prefix, strictly positive carried level, [*] deeper.  A
    superset of anything {!vectors_of_level} can return - the sound
    fallback when the exact analysis gives up. *)

val vectors_of_level : Problem.t -> Var.t array -> carried:int -> t list
(** Vectors of one ordering level: levels before [carried] are exactly
    zero, level [carried] is strictly positive (as the per-level ordering
    constraints of the problem force), deeper levels analyzed freely.
    [carried = 0] means loop-independent. *)
