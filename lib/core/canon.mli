(** Canonical, allocation-independent serialization of solver queries.

    Variables are renumbered by first occurrence in a fixed traversal
    order and tagged with their kind, so alpha-equivalent queries built
    in the same allocation order serialize identically no matter which
    domain (hence which id slot) minted their variables.  Used as the
    {!Analyses.Memo} key — which is what makes cached verdicts shareable
    across domains — and as the content-derived fault-injection key. *)

open Omega

val int_str : int -> string
(** [string_of_int] with a small-value cache (gated on
    {!Tuning.hashcons}). *)

val zint_str : Zint.t -> string

val key :
  ?tag:string ->
  hyp:Constr.t list ->
  Problem.t list ->
  evars:Var.t list ->
  Problem.t list ->
  string
(** [key ?tag ~hyp lhs ~evars rhs]: canonical form of the validity query
    [hyp => (lhs => exists evars. rhs)], optionally prefixed by
    [tag ^ ":"]. *)

val of_problems : ?tag:string -> Problem.t list -> string
(** Canonical form of a bare problem list (for fault keys of
    non-implication queries). *)
