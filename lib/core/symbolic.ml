(* Symbolic dependence analysis (section 5).

   A dependence may exist only for particular values of symbolic constants
   (loop-invariant scalars) or of opaque terms (index arrays, non-linear
   expressions).  We compute the exact condition by projecting the
   dependence problem onto those variables, and we compute the *new*
   information relative to what is already known (assumptions, loop
   bounds) with a gist - that is the concise query to put to the user. *)

open Omega

(* A restraint vector (section 2.1.2): per common loop, a constraint on
   the sign of the dependence distance, chosen so the conjunction forces
   lexicographically forward dependences. *)
type restraint = Dirvec.sign list

let restraint_constraints (a : Depctx.inst) (b : Depctx.inst)
    (r : restraint) : Constr.t list =
  List.concat
    (List.mapi
       (fun l s ->
         let dist =
           Linexpr.sub
             (Linexpr.var b.Depctx.ivars.(l))
             (Linexpr.var a.Depctx.ivars.(l))
         in
         match s with
         | Dirvec.Pos -> [ Constr.gt dist (Linexpr.of_int 0) ]
         | Dirvec.Neg -> [ Constr.lt dist (Linexpr.of_int 0) ]
         | Dirvec.Zero -> [ Constr.eq dist ]
         | Dirvec.NonNeg -> [ Constr.ge dist (Linexpr.of_int 0) ]
         | Dirvec.NonPos -> [ Constr.le dist (Linexpr.of_int 0) ]
         | Dirvec.Any -> [])
       r)

(* The condition (over the chosen variables) under which a dependence with
   the given restraint vector exists, as new information relative to what
   is already known. *)
type condition =
  | Always (* the dependence exists whenever p does: gist was a tautology *)
  | Never (* p and q are incompatible *)
  | When of Problem.t
  | Unknown of Budget.reason
    (* the analysis gave up: the dependence must be assumed *)

type analysis = {
  cond : condition;
  (* context: what is already known, projected onto the same variables -
     the "such that" part of a rendered query *)
  known : Problem.t;
  (* instances, to interpret the variables in [cond] *)
  inst_a : Depctx.inst;
  inst_b : Depctx.inst;
  ctx : Depctx.t;
}

(* Variables of interest: symbolic constants (except those in [hide]) plus
   all opaque value/argument variables of the two instances. *)
let focus_vars ctx (a : Depctx.inst) (b : Depctx.inst) ~(hide : string list)
    =
  let syms =
    List.filter_map
      (fun (name, v) -> if List.mem name hide then None else Some v)
      ctx.Depctx.syms
  in
  let opq (i : Depctx.inst) =
    List.map snd i.Depctx.opq_vals @ List.concat_map snd i.Depctx.opq_args
  in
  syms @ opq a @ opq b

(* Project a problem onto [vars]; exact when the projection does not
   splinter, otherwise the dark shadow (the paper notes splintering is
   almost never hit in practice). *)
let project_onto vars (p : Problem.t) : [ `Contra | `Ok of Problem.t ] =
  let keep v = List.exists (Var.equal v) vars in
  match Elim.project ~keep p with
  | [] -> `Contra
  | [ q ] -> `Ok q
  | _ :: _ :: _ -> Elim.project_dark ~keep p

let analyze_exn ?(in_bounds = true) ?(gist_fast = true) ctx
    ~(src : Ir.access) ~(dst : Ir.access) ~(restraint : restraint)
    ?(hide = []) () : analysis =
  let a = Depctx.instantiate ctx src ~tag:"i" in
  let b = Depctx.instantiate ctx dst ~tag:"j" in
  let p_cs =
    Depctx.assumes ctx
    @ Depctx.domain ~in_bounds ctx a
    @ Depctx.domain ~in_bounds ctx b
    @ restraint_constraints a b restraint
  in
  let q_cs = Depctx.subs_equal ctx a b in
  let vars = focus_vars ctx a b ~hide in
  let p = Problem.of_list p_cs in
  let q = Problem.of_list q_cs in
  match project_onto vars p with
  | `Contra ->
    (* the restrained dependence shape is impossible independent of the
       subscripts *)
    {
      cond = Never;
      known = Problem.trivial;
      inst_a = a;
      inst_b = b;
      ctx;
    }
  | `Ok known ->
    let keep v = List.exists (Var.equal v) vars in
    let result =
      if gist_fast then
        (* the red/black combined projection + gist (section 3.3.2) *)
        Gist.gist_project ~keep q ~given:p
      else begin
        (* two separate projections, naive gist (ablation path) *)
        match project_onto vars (Problem.conj p q) with
        | `Contra -> Gist.False
        | `Ok proj_pq -> Gist.gist ~fast:false proj_pq ~given:known
      end
    in
    (match result with
     | Gist.Tautology -> { cond = Always; known; inst_a = a; inst_b = b; ctx }
     | Gist.False -> { cond = Never; known; inst_a = a; inst_b = b; ctx }
     | Gist.Gist g -> { cond = When g; known; inst_a = a; inst_b = b; ctx })

(* Governed entry point: a give-up anywhere in the projections or gists
   degrades to [Unknown], whose reading is "assume the dependence". *)
let analyze ?in_bounds ?gist_fast ctx ~src ~dst ~restraint ?hide () :
    analysis =
  match
    Budget.run ~label:"symbolic/analyze" (fun () ->
        analyze_exn ?in_bounds ?gist_fast ctx ~src ~dst ~restraint ?hide ())
  with
  | Ok an -> an
  | Error r ->
    let a = Depctx.instantiate ctx src ~tag:"i" in
    let b = Depctx.instantiate ctx dst ~tag:"j" in
    { cond = Unknown r; known = Problem.trivial; inst_a = a; inst_b = b; ctx }

(* ------------------------------------------------------------------ *)
(* Query rendering                                                     *)
(* ------------------------------------------------------------------ *)

(* Pretty names for the variables appearing in a symbolic condition:
   symbolic constants keep their names; opaque argument variables become
   a, b, c, ...; opaque value variables render as Q[a] (their array applied
   to their argument names) or as their expression for non-array terms. *)
type naming = { var_name : Var.t -> string; quantified : string list }

let make_naming (an : analysis) : naming =
  let next = ref 0 in
  let letters = [| "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" |] in
  let fresh_letter () =
    let l = letters.(!next mod Array.length letters) in
    incr next;
    l
  in
  let table : (int * string) list ref = ref [] in
  let quantified = ref [] in
  let arg_name (v : Var.t) =
    match List.assoc_opt (Var.id v) !table with
    | Some n -> n
    | None ->
      let n = fresh_letter () in
      table := (Var.id v, n) :: !table;
      quantified := !quantified @ [ n ];
      n
  in
  let render_opaque ~primed (inst : Depctx.inst) (o : Ir.opaque) =
    let args = List.assoc o.Ir.opq_id inst.Depctx.opq_args in
    match o.Ir.base with
    | Some base when args = [] ->
      (* scalar: distinguish the two instances with a prime *)
      if primed then base ^ "'" else base
    | Some base ->
      Printf.sprintf "%s[%s]" base
        (String.concat "," (List.map arg_name args))
    | None -> Format.asprintf "%a" Ast.pp_expr o.Ir.repr
  in
  let var_name v =
    (* symbolic constant? *)
    match
      List.find_opt (fun (_, sv) -> Var.equal sv v) (an.ctx).Depctx.syms
    with
    | Some (name, _) -> name
    | None ->
      let find_in ~primed (inst : Depctx.inst) =
        let value =
          List.find_opt
            (fun (_, vv) -> Var.equal vv v)
            inst.Depctx.opq_vals
        in
        match value with
        | Some (id, _) ->
          let o =
            List.find
              (fun (o : Ir.opaque) -> o.Ir.opq_id = id)
              inst.Depctx.access.Ir.opaques
          in
          Some (render_opaque ~primed inst o)
        | None ->
          if
            List.exists
              (fun (_, args) -> List.exists (Var.equal v) args)
              inst.Depctx.opq_args
          then Some (arg_name v)
          else None
      in
      (match find_in ~primed:false an.inst_a with
       | Some s -> s
       | None -> (
         match find_in ~primed:true an.inst_b with
         | Some s -> s
         | None -> Var.name v))
  in
  { var_name; quantified = !quantified }

let render_constr naming (c : Constr.t) : string =
  (* render [e >= 0] / [e = 0] by moving the negative terms across *)
  let e = Constr.expr c in
  let pos, neg =
    Linexpr.fold_terms
      (fun v coeff (pos, neg) ->
        if Zint.sign coeff > 0 then ((v, coeff) :: pos, neg)
        else (pos, (v, Zint.neg coeff) :: neg))
      e ([], [])
  in
  let const = Linexpr.constant e in
  let side terms k =
    let parts =
      List.map
        (fun (v, c) ->
          if Zint.is_one c then naming.var_name v
          else Printf.sprintf "%s*%s" (Zint.to_string c) (naming.var_name v))
        terms
      @ (if Zint.sign k > 0 then [ Zint.to_string k ] else [])
    in
    match parts with [] -> "0" | _ -> String.concat " + " parts
  in
  let lhs_k = if Zint.sign const > 0 then const else Zint.zero in
  let rhs_k = if Zint.sign const < 0 then Zint.neg const else Zint.zero in
  let lhs = side pos lhs_k and rhs = side neg rhs_k in
  match Constr.kind c with
  | Constr.Eq -> Printf.sprintf "%s = %s" lhs rhs
  | Constr.Geq -> Printf.sprintf "%s >= %s" lhs rhs

(* Render the analysis as a user query in the paper's style. *)
let render_query (an : analysis) : string =
  match an.cond with
  | Always -> "The dependence always exists (no condition to ask about)."
  | Never -> "The dependence never exists."
  | Unknown r ->
    Printf.sprintf
      "The analysis gave up (%s): the dependence must be assumed."
      (Budget.reason_to_string r)
  | When g ->
    let naming = make_naming an in
    let conds = List.map (render_constr naming) (Problem.constraints g) in
    let knowns =
      List.map (render_constr naming) (Problem.constraints an.known)
    in
    if naming.quantified = [] then
      Printf.sprintf
        "Is it the case that the following never happens?\n  %s\n(known: %s)"
        (String.concat " and " conds)
        (String.concat " and " knowns)
    else
      Printf.sprintf
        "Is it the case that for all %s such that\n\
        \  %s,\n\
         the following never happens?\n\
        \  %s"
        (String.concat " & " naming.quantified)
        (String.concat " and " knowns)
        (String.concat " and " conds)

(* ------------------------------------------------------------------ *)
(* Assertions about index arrays                                       *)
(* ------------------------------------------------------------------ *)

(* Properties a user can assert about an (index) array in response to a
   query.  They are instantiated pairwise over the opaque occurrences of
   the array in a dependence problem. *)
type array_property =
  | Injective (* a <> b implies Q[a] <> Q[b] *)
  | Strictly_increasing (* a < b implies Q[a] < Q[b] *)
  | Accumulator of Ir.access
      (* the scalar is only written by [x := x + e] with e >= 1 (the given
         write access); its value never decreases over time and strictly
         increases across any intervening increment (from induction
         recognition, section 5 / Example 11) *)

(* Instantiate [props] for every pair of opaque occurrences in the two
   instances, as Presburger formulas over their value/arg variables. *)
let property_formulas ctx (insts : Depctx.inst list)
    (props : (string * array_property) list) : Presburger.t list =
  ignore ctx;
  let occurrences =
    List.concat_map
      (fun (i : Depctx.inst) ->
        List.filter_map
          (fun (o : Ir.opaque) ->
            match o.Ir.base with
            | Some base ->
              let value = List.assoc o.Ir.opq_id i.Depctx.opq_vals in
              let args = List.assoc o.Ir.opq_id i.Depctx.opq_args in
              (match args with
               | [ arg ] -> Some (base, arg, value)
               | _ -> None)
            | None -> None)
          i.Depctx.access.Ir.opaques)
      insts
  in
  let pairs =
    List.concat_map
      (fun o1 -> List.map (fun o2 -> (o1, o2)) occurrences)
      occurrences
  in
  List.concat_map
    (fun ((b1, a1, v1), (b2, a2, v2)) ->
      if b1 <> b2 then []
      else
        List.filter_map
          (fun (base, prop) ->
            if base <> b1 then None
            else begin
              let ea1 = Linexpr.var a1 and ea2 = Linexpr.var a2 in
              let ev1 = Linexpr.var v1 and ev2 = Linexpr.var v2 in
              match prop with
              | Accumulator _ -> None (* handled per ordering level *)
              | Injective ->
                (* a1 = a2 or Q[a1] <> Q[a2]; as implication: a1 < a2 =>
                   values differ, handled with or_ *)
                Some
                  Presburger.(
                    or_
                      [
                        eq ea1 ea2;
                        lt ev1 ev2;
                        gt ev1 ev2;
                      ])
              | Strictly_increasing ->
                Some
                  Presburger.(
                    or_ [ ge ea1 ea2; lt ev1 ev2 ])
            end)
          props)
    pairs

(* Accumulator monotonicity, per ordering level: for occurrence values
   [va] (in the earlier instance) and [vb], [va <= vb] always; strictly
   [va + 1 <= vb] when an increment provably executes in between - for a
   carried level when the increment shares the nest of both accesses (the
   same-iteration increment intervenes), for the loop-independent level
   when the increment sits textually between the two statements. *)
let accumulator_constraints (a : Depctx.inst) (b : Depctx.inst) ~level
    (props : (string * array_property) list) : Constr.t list =
  let occurrences (i : Depctx.inst) base =
    List.filter_map
      (fun (o : Ir.opaque) ->
        if o.Ir.base = Some base && o.Ir.args = [] then
          Some (List.assoc o.Ir.opq_id i.Depctx.opq_vals)
        else None)
      i.Depctx.access.Ir.opaques
  in
  List.concat_map
    (fun (base, prop) ->
      match prop with
      | Accumulator incr ->
        let same_nest =
          incr.Ir.loop_nodes = a.Depctx.access.Ir.loop_nodes
          && incr.Ir.loop_nodes = b.Depctx.access.Ir.loop_nodes
        in
        let strict =
          if level >= 1 then
            same_nest
            && (Ir.textually_before a.Depctx.access incr
               || Ir.textually_before incr b.Depctx.access)
          else
            same_nest
            && Ir.textually_before a.Depctx.access incr
            && Ir.textually_before incr b.Depctx.access
        in
        List.concat_map
          (fun va ->
            List.map
              (fun vb ->
                let eva = Linexpr.var va and evb = Linexpr.var vb in
                if strict then Constr.lt eva evb else Constr.le eva evb)
              (occurrences b base))
          (occurrences a base)
      | Injective | Strictly_increasing -> [])
    props

(* Does a dependence of the given kind exist from [src] to [dst], given
   user-asserted properties of index arrays? *)
let dependence_exists_with ?(in_bounds = true) ctx ~(src : Ir.access)
    ~(dst : Ir.access) ~(props : (string * array_property) list) : bool =
  let a = Depctx.instantiate ctx src ~tag:"i" in
  let b = Depctx.instantiate ctx dst ~tag:"j" in
  let core =
    Depctx.assumes ctx
    @ Depctx.domain ~in_bounds ctx a
    @ Depctx.domain ~in_bounds ctx b
    @ Depctx.subs_equal ctx a b
  in
  let levels = Depctx.order_before ctx a b in
  let prop_fs = property_formulas ctx [ a; b ] props in
  List.exists
    (fun (level, order) ->
      let acc_cs = accumulator_constraints a b ~level props in
      match
        Budget.run ~label:"symbolic/exists" (fun () ->
            Presburger.satisfiable
              (Presburger.and_
                 (List.map Presburger.atom (core @ order @ acc_cs) @ prop_fs)))
      with
      | Ok b -> b
      | Error _ -> true (* cannot refute: assume it exists *))
    levels
