(* Direction / distance vectors (section 2.1).

   A vector has one entry per loop common to the two accesses.  Each entry
   summarizes the possible signs of the dependence distance in that loop,
   refined with an exact distance or a finite range when the constraints
   pin one down.  Sets of vectors are "partially compressed": signs at a
   level are merged only when the analyses of the deeper levels agree, so
   {(+,+),(0,0)} is NOT merged into the lossy (0+,0+) (the paper's
   example). *)

open Omega

type sign = Neg | Zero | Pos | NonNeg | NonPos | Any

type entry = {
  sign : sign;
  lo : int option; (* distance bounds when known and finite *)
  hi : int option;
}

type t = entry list

let exact n =
  {
    sign = (if n > 0 then Pos else if n < 0 then Neg else Zero);
    lo = Some n;
    hi = Some n;
  }

let entry_to_string e =
  match e.lo, e.hi with
  | Some a, Some b when a = b -> string_of_int a
  | Some a, Some b -> Printf.sprintf "%d:%d" a b
  | _ -> (
    match e.sign with
    | Neg -> "-"
    | Zero -> "0"
    | Pos -> "+"
    | NonNeg -> "0+"
    | NonPos -> "0-"
    | Any -> "*")

let to_string (v : t) =
  "(" ^ String.concat "," (List.map entry_to_string v) ^ ")"

let compare_entry (a : entry) (b : entry) = compare a b
let compare (a : t) (b : t) = List.compare compare_entry a b
let equal a b = compare a b = 0

(* Is the distance 0 possible according to this entry? *)
let entry_allows_zero e =
  match e.sign with
  | Zero | NonNeg | NonPos | Any -> true
  | Pos | Neg -> false

let allows_all_zero (v : t) = List.for_all entry_allows_zero v

(* A vector is loop-independent when every entry is exactly zero. *)
let is_loop_independent (v : t) =
  List.for_all (fun e -> e.lo = Some 0 && e.hi = Some 0) v

(* ------------------------------------------------------------------ *)
(* Computing the vectors of a dependence problem                       *)
(* ------------------------------------------------------------------ *)

(* Sign constraint on a variable. *)
let sign_constr v (s : sign) : Constr.t list =
  let e = Linexpr.var v in
  match s with
  | Neg -> [ Constr.lt e (Linexpr.of_int 0) ]
  | Zero -> [ Constr.eq e ]
  | Pos -> [ Constr.gt e (Linexpr.of_int 0) ]
  | NonNeg -> [ Constr.ge e (Linexpr.of_int 0) ]
  | NonPos -> [ Constr.le e (Linexpr.of_int 0) ]
  | Any -> []

let range_of problem v =
  let lo =
    match Omega.minimize problem v with
    | `Min m -> Zint.to_int_opt m
    | `Unbounded | `Unsat -> None
  in
  let hi =
    match Omega.maximize problem v with
    | `Max m -> Zint.to_int_opt m
    | `Unbounded | `Unsat -> None
  in
  (lo, hi)

(* Analyze levels [d..] of [problem] over the distance variables [dvars];
   returns the list of vector tails. *)
let rec analyze problem (dvars : Var.t array) d : t list =
  if d >= Array.length dvars then [ [] ]
  else begin
    let v = dvars.(d) in
    let lo, hi = range_of problem v in
    match lo, hi with
    | Some a, Some b when a = b ->
      List.map (fun tail -> exact a :: tail) (analyze problem dvars (d + 1))
    | _ ->
      let branches =
        List.filter_map
          (fun s ->
            let p = Problem.add_list (sign_constr v s) problem in
            if Elim.satisfiable p then Some (s, p) else None)
          [ Neg; Zero; Pos ]
      in
      (match branches with
       | [] -> [] (* no satisfiable sign: dead level *)
       | _ ->
         let analyzed =
           List.map (fun (s, p) -> (s, analyze p dvars (d + 1))) branches
         in
         (* merge signs whose deeper analyses agree *)
         let tails_equal t1 t2 = List.compare compare t1 t2 = 0 in
         let merged_sign signs =
           match List.sort Stdlib.compare signs with
           | [ s ] -> s
           | [ Neg; Zero ] -> NonPos
           | [ Zero; Pos ] -> NonNeg
           | [ Neg; Zero; Pos ] -> Any
           | _ -> Any (* [Neg; Pos]: no precise symbol; overapproximate *)
         in
         let rec group = function
           | [] -> []
           | (s, tails) :: rest ->
             let same, diff =
               List.partition (fun (_, t') -> tails_equal tails t') rest
             in
             (List.map fst ((s, tails) :: same), tails) :: group diff
         in
         List.concat_map
           (fun (signs, tails) ->
             let s = merged_sign signs in
             (* distance bounds for the merged sign *)
             let p = Problem.add_list (sign_constr v s) problem in
             let lo, hi = range_of p v in
             let entry = { sign = s; lo; hi } in
             List.map (fun tail -> entry :: tail) tails)
           (group analyzed))
  end

(* All vectors of [problem] (over distance variables), with a forced prefix
   of exact zeros for the first [zeros] levels and a strictly positive
   level after (as produced by the per-level ordering).  [carried = 0]
   means loop-independent: all entries zero. *)
(* The weakest vector set of one ordering level, used when the exact
   analysis gives up: the level's forced shape (zero prefix, positive
   carried level) with every deeper level unconstrained.  A superset of
   anything [vectors_of_level] can return, so decisions made from it are
   conservative. *)
let conservative_of_level count ~carried : t list =
  if carried = 0 then [ List.init count (fun _ -> exact 0) ]
  else
    [
      List.init count (fun l ->
          if l < carried - 1 then exact 0
          else if l = carried - 1 then { sign = Pos; lo = Some 1; hi = None }
          else { sign = Any; lo = None; hi = None });
    ]

let vectors_of_level problem (dvars : Var.t array) ~carried : t list =
  let c = Array.length dvars in
  if carried = 0 then begin
    if Elim.satisfiable problem then [ List.init c (fun _ -> exact 0) ] else []
  end
  else begin
    (* levels 1..carried-1 are zero, level carried is >= 1 *)
    let prefix = List.init (carried - 1) (fun _ -> exact 0) in
    let v = dvars.(carried - 1) in
    if not (Elim.satisfiable problem) then []
    else begin
      let lo, hi = range_of problem v in
      let entry =
        match lo, hi with
        | Some a, Some b when a = b -> exact a
        | _ -> { sign = Pos; lo; hi }
      in
      let tails = analyze problem dvars carried in
      List.map (fun tail -> prefix @ (entry :: tail)) tails
    end
  end
