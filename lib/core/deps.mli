(** Standard (memory-based) dependence computation: for an ordered pair
    of accesses to the same array, decide whether a dependence exists and
    summarize it with direction/distance vectors, one analysis per
    carried level. *)

open Omega

type kind = Flow | Anti | Output

val kind_to_string : kind -> string

type dep = {
  src : Ir.access;
  dst : Ir.access;
  kind : kind;
  vectors : Dirvec.t list;  (** forward vectors (possibly several) *)
  levels : int list;  (** satisfiable carried levels; 0 = loop-independent *)
  assumed : bool;
      (** some level's analysis blew its budget: the dependence is
          (partly) assumed rather than computed, and elimination must
          leave it alone (a kill/cover proof against it may be
          vacuous) *)
}

type pair = {
  ctx : Depctx.t;
  a : Depctx.inst;
  b : Depctx.inst;
  base : Problem.t;  (** domains, subscript equality, assumptions,
                         distance-variable definitions; no ordering *)
  dvars : Var.t array;  (** one distance variable per common loop *)
  common : int;
}

val make_pair : ?in_bounds:bool -> Depctx.t -> Ir.access -> Ir.access -> pair

val level_problem : pair -> int * Constr.t list -> Problem.t

val compute :
  ?in_bounds:bool ->
  Depctx.t ->
  src:Ir.access ->
  dst:Ir.access ->
  kind:kind ->
  dep option
(** The dependence from [src] to [dst], or [None] when none exists. *)

val exists : Depctx.t -> src:Ir.access -> dst:Ir.access -> bool

val all : ?in_bounds:bool -> Depctx.t -> kind -> dep list
(** All dependences of one kind in the program. *)

val dep_to_string : dep -> string
