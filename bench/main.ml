(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (section 4.7 and section 5), plus ablation benches
   for the design choices called out in DESIGN.md, plus Bechamel
   micro-benchmarks (one per table/figure).

   Absolute times differ from the paper's 1992 Sun Sparc IPX; the claims
   under test are the *shapes*: which dependences are live/dead, extended
   analysis within a small constant factor of standard analysis, and most
   kill tests resolved without consulting the Omega test. *)

open Depend
module Portfolio = Omega.Portfolio
module Json = Serve.Json
module Protocol = Serve.Protocol
module Client = Serve.Client
module Server = Serve.Server
module Service = Serve.Service

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* All bench artifacts go through the shared serialization module
   (lib/serve/json.ml) — the same one behind the wire protocol and the
   CLI [--json] modes — so escaping and number formatting are decided
   in exactly one place.  Timing figures keep their historical six
   decimal places. *)
let jf x = Json.Float (Float.round (x *. 1e6) /. 1e6)

let write_json ~out j =
  let oc = open_out out in
  output_string oc (Json.to_string j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out

(* Budget telemetry renders itself to JSON text; lift it into a value
   so it nests in an artifact without double encoding. *)
let telemetry_json tj =
  match Json.parse tj with Ok j -> j | Error _ -> Json.Str tj

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ms t = t *. 1000.

(* ------------------------------------------------------------------ *)
(* Examples 1-6 (the section 4 box)                                    *)
(* ------------------------------------------------------------------ *)

let vec_strings (fr : Driver.flow_result) =
  let vecs =
    match fr.Driver.refined with
    | Some v -> v
    | None -> fr.Driver.dep.Deps.vectors
  in
  String.concat " " (List.map Dirvec.to_string vecs)

let examples_table () =
  section "Table: Examples 1-6 (kills, covers, refinement)";
  Printf.printf "%-10s %-28s %-16s %-10s %s\n" "example" "expectation"
    "result" "status" "ok?";
  let rows =
    [
      ("example1", "A->C killed by B", `Dead ("A", "C"));
      ("example2", "cover refined (0+)->(0)", `Vec ("D", "E", "(0)"));
      ("example3", "refined (0+,1)->(0,1)", `Vec ("s", "s", "(0,1)"));
      ("example4", "trapezoid refined (0,1)", `Vec ("s", "s", "(0,1)"));
      ("example5", "unrefinable by generator", `Unrefined ("s", "s"));
      ("example6", "coupled refined (1,1)", `Vec ("s", "s", "(1,1)"));
    ]
  in
  List.iter
    (fun (name, expect, check) ->
      let prog = Lang.Sema.parse_and_analyze (Corpus.find name) in
      let result = Driver.analyze prog in
      let find src dst =
        List.find_opt
          (fun (fr : Driver.flow_result) ->
            fr.Driver.dep.Deps.src.Lang.Ir.label = src
            && fr.Driver.dep.Deps.dst.Lang.Ir.label = dst)
          result.Driver.flows
      in
      let shown, ok =
        match check with
        | `Dead (s, d) -> (
          match find s d with
          | Some fr ->
            ( (if fr.Driver.dead <> None then "dead" else "live"),
              fr.Driver.dead <> None )
          | None -> ("missing", false))
        | `Vec (s, d, v) -> (
          match find s d with
          | Some fr -> (vec_strings fr, vec_strings fr = v)
          | None -> ("missing", false))
        | `Unrefined (s, d) -> (
          match find s d with
          | Some fr ->
            ( (if fr.Driver.refined = None then "unrefined" else "refined"),
              fr.Driver.refined = None )
          | None -> ("missing", false))
      in
      Printf.printf "%-10s %-28s %-16s %-10s %s\n" name expect shown
        (if ok then "as-paper" else "DIFFERS")
        (if ok then "yes" else "NO"))
    rows

(* ------------------------------------------------------------------ *)
(* Figures 3 and 4: CHOLSKY                                            *)
(* ------------------------------------------------------------------ *)

let cholsky_tables () =
  let prog = Lang.Sema.parse_and_analyze (Corpus.find "cholsky") in
  let result, dt = time (fun () -> Driver.analyze prog) in
  let live = Driver.live_flows result in
  let dead = Driver.dead_flows result in
  section
    (Printf.sprintf
       "Figure 3: live flow dependences for CHOLSKY (%d rows, paper: 21)"
       (List.length live));
  print_string (Driver.render_flow_table live);
  section
    (Printf.sprintf
       "Figure 4: dead flow dependences for CHOLSKY (%d rows, paper: 14)"
       (List.length dead));
  print_string (Driver.render_flow_table dead);
  Printf.printf "\nwhole-program analysis time: %.1f ms\n" (ms dt)

(* ------------------------------------------------------------------ *)
(* Figure 6 / Figure 7: per-pair analysis times                        *)
(* ------------------------------------------------------------------ *)

type pair_timing = {
  prog_name : string;
  src_label : string;
  dst_label : string;
  t_std : float; (* standard dependence analysis *)
  t_ext : float; (* + refinement and cover testing *)
  category : [ `No_test | `General | `Split ];
}

(* Replicates the per-dependence extended work of the driver for one
   write/read pair, so the pair can be timed in isolation.  Returns
   whether a general (Omega) extended test ran and whether the dependence
   splits into several direction vectors. *)
let extended_pair ctx outputs (a : Lang.Ir.access) (b : Lang.Ir.access) =
  match Deps.compute ctx ~src:a ~dst:b ~kind:Deps.Flow with
  | None -> (false, false)
  | Some dep ->
    let ran = ref false in
    let refined =
      if not (Driver.refinement_possible outputs a) then None
      else begin
        ran := true;
        let pinned = Analyses.refine ctx ~src:a ~dst:b in
        if pinned = [] then None
        else Some (Analyses.refined_vectors ctx ~src:a ~dst:b pinned)
      end
    in
    let vectors =
      match refined with Some v -> v | None -> dep.Deps.vectors
    in
    if Driver.cover_possible vectors then begin
      ran := true;
      ignore (Analyses.covers ctx ~src:a ~dst:b)
    end;
    (!ran, List.length dep.Deps.vectors > 1)

let pair_timings () : pair_timing list =
  List.concat_map
    (fun name ->
      let prog = Lang.Sema.parse_and_analyze (Corpus.find name) in
      let ctx = Depctx.create prog in
      let outputs = Deps.all ctx Deps.Output in
      let writes = Lang.Ir.writes prog and reads = Lang.Ir.reads prog in
      List.concat_map
        (fun (a : Lang.Ir.access) ->
          List.filter_map
            (fun (b : Lang.Ir.access) ->
              if a.Lang.Ir.array <> b.Lang.Ir.array then None
              else begin
                (* warm-up pass so neither measurement pays one-time costs *)
                ignore (Deps.compute ctx ~src:a ~dst:b ~kind:Deps.Flow);
                let _, t_std =
                  time (fun () ->
                      Deps.compute ctx ~src:a ~dst:b ~kind:Deps.Flow)
                in
                let (ran, split), t_ext =
                  time (fun () -> extended_pair ctx outputs a b)
                in
                let category =
                  if not ran then `No_test
                  else if split then `Split
                  else `General
                in
                Some
                  {
                    prog_name = name;
                    src_label = a.Lang.Ir.label;
                    dst_label = b.Lang.Ir.label;
                    t_std;
                    t_ext;
                    category;
                  }
              end)
            reads)
        writes)
    Corpus.timing_population

(* The same figure 6/7 pair population, verdicts only (no timings): a
   canonical line per write/read pair — dependence vectors, whether a
   general extended test ran, whether the vectors split.  The --domains
   differential runs this serial and sharded and demands equality.
   Programs are the sharding unit ([Par.map_list] keeps input order, and
   is exactly [List.map] at width 1). *)
let pair_verdicts () : string list =
  Par.map_list
    (fun name ->
      let prog = Lang.Sema.parse_and_analyze (Corpus.find name) in
      let ctx = Depctx.create prog in
      let outputs = Deps.all ctx Deps.Output in
      let writes = Lang.Ir.writes prog and reads = Lang.Ir.reads prog in
      List.concat_map
        (fun (a : Lang.Ir.access) ->
          List.filter_map
            (fun (b : Lang.Ir.access) ->
              if a.Lang.Ir.array <> b.Lang.Ir.array then None
              else begin
                let dep =
                  match Deps.compute ctx ~src:a ~dst:b ~kind:Deps.Flow with
                  | None -> "none"
                  | Some d ->
                    String.concat ","
                      (List.map Dirvec.to_string d.Deps.vectors)
                in
                let ran, split = extended_pair ctx outputs a b in
                Some
                  (Printf.sprintf "%s %s->%s %s ran=%b split=%b" name
                     a.Lang.Ir.label b.Lang.Ir.label dep ran split)
              end)
            reads)
        writes)
    Corpus.timing_population
  |> List.concat

let figure6_left (timings : pair_timing list) =
  section "Figure 6 (left): extended vs standard analysis time per array pair";
  Printf.printf "%d write/read array pairs (paper: 417)\n" (List.length timings);
  let count c =
    List.length (List.filter (fun t -> t.category = c) timings)
  in
  Printf.printf
    "no general test needed: %d   general test: %d   split vectors: %d\n"
    (count `No_test) (count `General) (count `Split);
  Printf.printf "(paper: 264 no-test, 81 general [*], 72 split [<>])\n\n";
  Printf.printf "%-16s %-6s %-6s %10s %10s %7s %s\n" "program" "from" "to"
    "std(ms)" "ext(ms)" "ratio" "class";
  let ratios = ref [] in
  List.iter
    (fun t ->
      let ratio = if t.t_std > 0. then t.t_ext /. t.t_std else 1. in
      ratios := ratio :: !ratios;
      Printf.printf "%-16s %-6s %-6s %10.3f %10.3f %7.2f %s\n" t.prog_name
        t.src_label t.dst_label (ms t.t_std) (ms t.t_ext) ratio
        (match t.category with
         | `No_test -> "."
         | `General -> "*"
         | `Split -> "<>"))
    timings;
  let rs = List.sort compare !ratios in
  let n = List.length rs in
  let nth k = List.nth rs (min (n - 1) k) in
  Printf.printf
    "\nratio ext/std: median %.2f, p90 %.2f, max %.2f (paper: mostly 2x-4x; lines y=x, y=2x, y=4x)\n"
    (nth (n / 2))
    (nth (n * 9 / 10))
    (nth (n - 1))

let figure6_right () =
  section "Figure 6 (right): kill-test time vs generation+refine+cover time";
  let points = ref [] in
  let quick = ref 0 and consulted = ref 0 in
  List.iter
    (fun name ->
      let prog = Lang.Sema.parse_and_analyze (Corpus.find name) in
      let ctx = Depctx.create prog in
      let outputs = Deps.all ctx Deps.Output in
      List.iter
        (fun (b : Lang.Ir.access) ->
          let writers =
            List.filter
              (fun (w : Lang.Ir.access) ->
                w.Lang.Ir.array = b.Lang.Ir.array
                && Deps.exists ctx ~src:w ~dst:b)
              (Lang.Ir.writes prog)
          in
          (* cover information of each candidate killer, computed during its
             own extended analysis (so not charged to the kill test) *)
          let cover_info =
            List.map
              (fun (k : Lang.Ir.access) ->
                let dep = Deps.compute ctx ~src:k ~dst:b ~kind:Deps.Flow in
                let vectors =
                  match dep with Some d -> d.Deps.vectors | None -> []
                in
                let covers =
                  Driver.cover_possible vectors
                  && Analyses.covers ctx ~src:k ~dst:b
                in
                (k.Lang.Ir.acc_id, (covers, vectors)))
              writers
          in
          List.iter
            (fun (a : Lang.Ir.access) ->
              (* time of generating + refining + covering the dependence
                 being killed *)
              let _, t_gen =
                time (fun () -> extended_pair ctx outputs a b)
              in
              List.iter
                (fun (k : Lang.Ir.access) ->
                  if k.Lang.Ir.acc_id <> a.Lang.Ir.acc_id then begin
                    (* quick screens: no output dependence A->K (kill
                       impossible), or K is a loop-independent cover with A
                       completely before it (kill certain) *)
                    let covers, kvecs =
                      List.assoc k.Lang.Ir.acc_id cover_info
                    in
                    let screened =
                      (not (Driver.output_exists outputs a k))
                      || (covers
                          && Driver.cover_eliminates ~cover_vectors:kvecs k b a)
                    in
                    let _, t_kill =
                      time (fun () ->
                          if screened then false
                          else Analyses.kills ctx ~src:a ~killer:k ~dst:b)
                    in
                    if screened then incr quick else incr consulted;
                    points := (name, a, k, b, t_kill, t_gen) :: !points
                  end)
                writers)
            writers)
        (Lang.Ir.reads prog))
    Corpus.timing_population;
  Printf.printf
    "%d potential kills: %d screened without the Omega test, %d consulted it\n"
    (List.length !points) !quick !consulted;
  Printf.printf "(paper: 284 quick [<0.3 msec], 54 consulted)\n\n";
  Printf.printf "%-16s %-22s %12s %16s\n" "program" "kill" "kill(ms)"
    "gen+ref+cov(ms)";
  List.iter
    (fun (name, a, k, b, t_kill, t_gen) ->
      Printf.printf "%-16s %-22s %12.3f %16.3f\n" name
        (Printf.sprintf "%s-|%s|->%s" a.Lang.Ir.label k.Lang.Ir.label
           b.Lang.Ir.label)
        (ms t_kill) (ms t_gen))
    (List.rev !points)

let figure7 (timings : pair_timing list) =
  section "Figure 7: per-pair analysis times, sorted by extended time";
  let sorted = List.sort (fun a b -> compare a.t_ext b.t_ext) timings in
  Printf.printf "%-6s %12s %12s\n" "rank" "std(ms)" "ext(ms)";
  List.iteri
    (fun i t ->
      Printf.printf "%-6d %12.4f %12.4f\n" (i + 1) (ms t.t_std) (ms t.t_ext))
    sorted;
  let total which = List.fold_left (fun acc t -> acc +. which t) 0. sorted in
  Printf.printf "\ntotals: standard %.1f ms, extended %.1f ms over %d pairs\n"
    (ms (total (fun t -> t.t_std)))
    (ms (total (fun t -> t.t_ext)))
    (List.length sorted)

(* ------------------------------------------------------------------ *)
(* Section 5 dialogs                                                   *)
(* ------------------------------------------------------------------ *)

let section5_table () =
  section "Section 5: symbolic analysis (Examples 7 and 8)";
  let prog = Lang.Sema.parse_and_analyze (Corpus.find "example7") in
  let ctx = Depctx.create prog in
  let w = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.writes prog) in
  let r = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.reads prog) in
  List.iter
    (fun (name, restraint, expect) ->
      let an = Symbolic.analyze ctx ~src:w ~dst:r ~restraint ~hide:[ "n" ] () in
      let shown =
        match an.Symbolic.cond with
        | Symbolic.Always -> "always"
        | Symbolic.Never -> "never"
        | Symbolic.When g -> Omega.Problem.to_string g
        | Symbolic.Unknown r -> "gave up (" ^ Omega.Budget.reason_to_string r ^ ")"
      in
      Printf.printf "example7 %-6s: %s\n  (paper: %s)\n" name shown expect)
    [
      ("(+,*)", [ Dirvec.Pos; Dirvec.Any ], "{1 <= x <= 50}");
      ("(0,+)", [ Dirvec.Zero; Dirvec.Pos ], "{x = 0 and y < m}");
    ];
  let prog = Lang.Sema.parse_and_analyze (Corpus.find "example8") in
  let ctx = Depctx.create prog in
  let w = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.writes prog) in
  let rd = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.reads prog) in
  Printf.printf "\nexample8 output-dependence query:\n%s\n"
    (Symbolic.render_query
       (Symbolic.analyze ctx ~src:w ~dst:w ~restraint:[ Dirvec.Pos ] ()));
  Printf.printf "(paper: for all a & b, 1 <= a < b <= n: never Q[a] = Q[b])\n";
  Printf.printf "\nexample8 flow-dependence query:\n%s\n"
    (Symbolic.render_query
       (Symbolic.analyze ctx ~src:w ~dst:rd ~restraint:[ Dirvec.Pos ] ()));
  Printf.printf
    "(paper: for all a & b, 1 <= a < b-1 <= n-1: never Q[a] = Q[b]-1)\n";
  Printf.printf "\nwith asserted properties of q:\n";
  List.iter
    (fun (label, props) ->
      Printf.printf "  output dependence, %-22s: %b\n" label
        (Symbolic.dependence_exists_with ctx ~src:w ~dst:w ~props))
    [
      ("no assertion", []);
      ("q injective", [ ("q", Symbolic.Injective) ]);
      ("q strictly increasing", [ ("q", Symbolic.Strictly_increasing) ]);
    ];
  (* Example 11 (s141): induction recognition eliminates the carried deps *)
  let prog = Lang.Sema.parse_and_analyze (Corpus.find "example11") in
  let ctx = Depctx.create prog in
  let accs = Induction.detect ctx in
  let props =
    List.map
      (fun (a : Induction.accumulator) ->
        (a.Induction.scalar, Symbolic.Accumulator a.Induction.increment))
      accs
  in
  let w = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.writes prog) in
  Printf.printf
    "\nexample11 (s141): accumulators detected: %d; self output dep \
     without facts: %b, with induction: %b\n"
    (List.length accs)
    (Symbolic.dependence_exists_with ctx ~src:w ~dst:w ~props:[])
    (Symbolic.dependence_exists_with ctx ~src:w ~dst:w ~props);
  Printf.printf
    "(paper: s141 could not be handled by any compiler tested by [LCD91])\n"

(* ------------------------------------------------------------------ *)
(* Parallelization: doall counts, standard vs extended                 *)
(* ------------------------------------------------------------------ *)

(* The payoff table for the transformation layer: across the corpus, how
   many loops each analysis can mark doall.  The extended column folds in
   privatization (a carried storage dependence on a privatizable array
   does not serialize the loop), which is the use the paper gives for
   killed and covered dependences. *)
let parallelization_table () =
  section "Table: parallelizable loops, standard vs extended analysis";
  Printf.printf "%-20s %8s %8s %8s   %s\n" "program" "loops" "std" "ext"
    "extended-only wins";
  let tot_loops = ref 0 and tot_std = ref 0 and tot_ext = ref 0 in
  List.iter
    (fun name ->
      let prog = Lang.Sema.parse_and_analyze (Corpus.find name) in
      let g = Xform.Graph.build prog in
      let vs = Xform.Parallel.analyze g in
      let std, ext = Xform.Parallel.count_doall vs in
      let wins =
        List.filter_map
          (fun (v : Xform.Parallel.verdict) ->
            if v.Xform.Parallel.v_ext_doall && not v.Xform.Parallel.v_std_doall
            then Some (Xform.Parallel.loop_path v.Xform.Parallel.v_loop)
            else None)
          vs
      in
      tot_loops := !tot_loops + List.length vs;
      tot_std := !tot_std + std;
      tot_ext := !tot_ext + ext;
      Printf.printf "%-20s %8d %8d %8d   %s\n" name (List.length vs) std ext
        (String.concat " " wins))
    Corpus.timing_population;
  Printf.printf "%-20s %8d %8d %8d\n" "TOTAL" !tot_loops !tot_std !tot_ext

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations (design choices from DESIGN.md)";
  let cholsky = Lang.Sema.parse_and_analyze (Corpus.find "cholsky") in
  (* 1: dark-shadow + gist fast path vs the (pruned, bounded) general
     Presburger procedure.  Without the DNF pruning this configuration
     took minutes on CHOLSKY (~3000x); with it the complete procedure is
     viable and the fast path is "only" a few times faster.  The tier-0
     screen is pinned off (backend [Omega]) so the comparison isolates
     tier 1 against tier 2; the cascade's own win is measured in the
     analysis suite's portfolio section. *)
  let saved_backend = !Omega.Portfolio.backend in
  Omega.Portfolio.backend := Omega.Portfolio.Omega;
  let _, t_fast = time (fun () -> Driver.analyze cholsky) in
  Analyses.use_fast_path := false;
  let _, t_slow = time (fun () -> Driver.analyze cholsky) in
  Analyses.use_fast_path := true;
  Omega.Portfolio.backend := saved_backend;
  Printf.printf
    "ablation-fast-path   : CHOLSKY driver %.1f ms with dark-shadow fast path, %.1f ms general-only (%.2fx)\n"
    (ms t_fast) (ms t_slow)
    (t_slow /. t_fast);
  (* 2: quick screens (4.5) on/off *)
  let _, t_quick = time (fun () -> Driver.analyze ~quick:true cholsky) in
  let _, t_noquick = time (fun () -> Driver.analyze ~quick:false cholsky) in
  Printf.printf
    "ablation-quick-tests : CHOLSKY driver %.1f ms with quick screens, %.1f ms without (%.2fx)\n"
    (ms t_quick) (ms t_noquick)
    (t_noquick /. t_quick);
  (* 3: red/black combined projection+gist vs two separate projections
     with the naive gist, over the section-5 analyses *)
  let prog7 = Lang.Sema.parse_and_analyze (Corpus.find "example7") in
  let ctx = Depctx.create prog7 in
  let w = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.writes prog7) in
  let r = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.reads prog7) in
  let run_sym fast =
    List.iter
      (fun restraint ->
        ignore
          (Symbolic.analyze ~gist_fast:fast ctx ~src:w ~dst:r ~restraint
             ~hide:[ "n" ] ()))
      [ [ Dirvec.Pos; Dirvec.Any ]; [ Dirvec.Zero; Dirvec.Pos ] ]
  in
  let _, t_gfast =
    time (fun () ->
        for _ = 1 to 20 do
          run_sym true
        done)
  in
  let _, t_gnaive =
    time (fun () ->
        for _ = 1 to 20 do
          run_sym false
        done)
  in
  Printf.printf
    "ablation-red-black   : 20x example7 symbolic %.1f ms with combined red/black projection+gist, %.1f ms with two projections + naive gist (%.2fx)\n"
    (ms t_gfast) (ms t_gnaive)
    (t_gnaive /. t_gfast);
  (* 4: verdict memoization across a repeated whole-corpus analysis (the
     analyze-everything-twice pattern of the differential suites) *)
  let population () =
    List.iter
      (fun name ->
        ignore
          (Driver.analyze (Lang.Sema.parse_and_analyze (Corpus.find name))))
      Corpus.timing_population
  in
  let was_enabled = !Analyses.Memo.enabled in
  Analyses.Memo.enabled := false;
  let _, t_nomemo = time (fun () -> population (); population ()) in
  Analyses.Memo.enabled := true;
  Analyses.Memo.reset ();
  let _, t_memo = time (fun () -> population (); population ()) in
  let m = Analyses.Memo.stats in
  Analyses.Memo.enabled := was_enabled;
  Printf.printf
    "ablation-memo        : 2x corpus driver %.1f ms uncached, %.1f ms with verdict memo (%.2fx, %d hits / %d distinct, %.0f%% hit rate)\n"
    (ms t_nomemo) (ms t_memo)
    (t_nomemo /. t_memo)
    m.Analyses.Memo.hits m.Analyses.Memo.misses
    (100. *. Analyses.Memo.hit_rate ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one per table/figure)                    *)
(* ------------------------------------------------------------------ *)

let bechamel_benches () =
  section "Bechamel micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let cholsky = Lang.Sema.parse_and_analyze (Corpus.find "cholsky") in
  let ex3 = Lang.Sema.parse_and_analyze (Corpus.find "example3") in
  let ex7 = Lang.Sema.parse_and_analyze (Corpus.find "example7") in
  let kill_prog = Lang.Sema.parse_and_analyze (Corpus.find "kill_chain") in
  let kill_ctx = Depctx.create kill_prog in
  let find l list = List.find (fun a -> a.Lang.Ir.label = l) list in
  let kw1 = find "w1" (Lang.Ir.writes kill_prog) in
  let kw2 = find "w2" (Lang.Ir.writes kill_prog) in
  let kr = find "r" (Lang.Ir.reads kill_prog) in
  let ctx7 = Depctx.create ex7 in
  let w7 = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.writes ex7) in
  let r7 = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.reads ex7) in
  let tests =
    [
      Test.make ~name:"examples1-6/driver-example3"
        (Staged.stage (fun () -> ignore (Driver.analyze ex3)));
      Test.make ~name:"fig3-fig4/driver-cholsky"
        (Staged.stage (fun () -> ignore (Driver.analyze cholsky)));
      Test.make ~name:"fig6-left/pair-extended"
        (Staged.stage (fun () ->
             ignore (Deps.compute kill_ctx ~src:kw1 ~dst:kr ~kind:Deps.Flow);
             ignore (Analyses.covers kill_ctx ~src:kw1 ~dst:kr)));
      Test.make ~name:"fig6-right/kill-test"
        (Staged.stage (fun () ->
             ignore (Analyses.kills kill_ctx ~src:kw1 ~killer:kw2 ~dst:kr)));
      Test.make ~name:"fig7/pair-standard"
        (Staged.stage (fun () ->
             ignore (Deps.compute kill_ctx ~src:kw1 ~dst:kr ~kind:Deps.Flow)));
      Test.make ~name:"sec5/symbolic-example7"
        (Staged.stage (fun () ->
             ignore
               (Symbolic.analyze ctx7 ~src:w7 ~dst:r7
                  ~restraint:[ Dirvec.Pos; Dirvec.Any ] ~hide:[ "n" ] ())));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"odep" tests)
  in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-36s %14.1f ns/run\n" name est
      | _ -> Printf.printf "%-36s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Speedup suite: execute every kernel serial / std-plan / ext-plan    *)
(* ------------------------------------------------------------------ *)

(* The paper's payoff, measured: each corpus kernel runs three ways at
   scaled trip counts - serially, with the standard analysis's doall
   loops parallelized over domains, and with the extended analysis's
   (privatization included).  Every parallel final state is checked
   bit-identical to the serial one, so a reported speedup is also a
   soundness certificate for the plan that produced it. *)

(* Deterministic nonzero contents so value propagation is observable. *)
let speedup_init _ idx = List.fold_left (fun h i -> (h * 31) + i + 17) 7 idx

type speedup_row = {
  sp_name : string;
  sp_syms : (string * int) list;
  sp_loops : int;
  sp_std_doall : int;
  sp_ext_doall : int;
  sp_serial : float;
  sp_std : float;
  sp_ext : float;
  sp_std_regions : int;
  sp_ext_regions : int;
  sp_identical : bool;
}

let json_of_speedup ~domains ~smoke (rows : speedup_row list) =
  let row r =
    Json.Obj
      [
        ("name", Json.Str r.sp_name);
        ("syms", Json.Obj (List.map (fun (s, v) -> (s, Json.Int v)) r.sp_syms));
        ("loops", Json.Int r.sp_loops);
        ("std_doall", Json.Int r.sp_std_doall);
        ("ext_doall", Json.Int r.sp_ext_doall);
        ("serial_ms", jf (ms r.sp_serial));
        ("std_ms", jf (ms r.sp_std));
        ("ext_ms", jf (ms r.sp_ext));
        ("std_speedup", jf (r.sp_serial /. r.sp_std));
        ("ext_speedup", jf (r.sp_serial /. r.sp_ext));
        ("std_regions", Json.Int r.sp_std_regions);
        ("ext_regions", Json.Int r.sp_ext_regions);
        ("ext_beats_std", Json.Bool (r.sp_ext < r.sp_std));
        ("identical", Json.Bool r.sp_identical);
      ]
  in
  Json.Obj
    [
      ("domains", Json.Int domains);
      ("smoke", Json.Bool smoke);
      ("all_identical", Json.Bool (List.for_all (fun r -> r.sp_identical) rows));
      ( "ext_beats_std",
        Json.List
          (List.filter_map
             (fun r ->
               if r.sp_ext < r.sp_std then Some (Json.Str r.sp_name) else None)
             rows) );
      ("kernels", Json.List (List.map row rows));
    ]

(* Warmup + best-of-N: one untimed run heats caches, allocators and (for
   the VM) branch predictors, then the minimum of [reps] timed runs is
   reported — minima are far less noisy than single shots for
   sub-second kernels. *)
let warm_best ~reps f =
  ignore (f ());
  let rec go best k =
    if k = 0 then best
    else
      let _, t = time f in
      go (min best t) (k - 1)
  in
  go infinity reps

let speedup_suite_interp ~smoke ~domains ~repeat ~out () =
  let pool = Xform.Exec.create_pool ?size:domains () in
  let domains = Xform.Exec.pool_size pool in
  section
    (Printf.sprintf
       "Speedup (interp backend): serial vs std-plan vs ext-plan (%d \
        domain%s%s)"
       domains
       (if domains = 1 then "" else "s")
       (if smoke then ", smoke" else ""));
  let target = if smoke then 8_000 else 150_000 in
  let reps = repeat in
  let best f = warm_best ~reps f in
  Printf.printf "%-18s %-18s %9s %9s %9s %7s %7s %5s %s\n" "kernel" "syms"
    "serial" "std(ms)" "ext(ms)" "std-x" "ext-x" "ident" "regions s/e";
  let rows =
    List.filter_map
      (fun name ->
        let prog = Lang.Sema.parse_and_analyze (Corpus.find name) in
        let g = Xform.Graph.build prog in
        let vs = Xform.Parallel.analyze g in
        let nloops = List.length vs in
        let std_doall, ext_doall = Xform.Parallel.count_doall vs in
        let depth =
          List.fold_left
            (fun d (l : Xform.Graph.loop_info) -> max d l.Xform.Graph.l_depth)
            1 g.Xform.Graph.loops
        in
        let scale =
          max 4 (int_of_float (float_of_int target ** (1. /. float_of_int depth)))
        in
        match
          Xform.Oracle.pick_syms
            ~candidates:[ scale; scale / 2; 100; 50; 10; 8; 6; 5; 4; 3; 2; 1 ]
            prog
        with
        | None -> None
        | Some syms ->
          (match Xform.Exec.run_serial ~init:speedup_init prog ~syms with
          | exception Lang.Interp.Runtime_error _ -> None
          | serial_mem ->
            let t_serial =
              best (fun () ->
                  ignore (Xform.Exec.run_serial ~init:speedup_init prog ~syms))
            in
            let run side =
              let pl = Xform.Exec.plan side vs in
              let mem, stats =
                Xform.Exec.run_parallel ~pool ~init:speedup_init pl prog ~syms
              in
              let t =
                best (fun () ->
                    ignore
                      (Xform.Exec.run_parallel ~pool ~init:speedup_init pl
                         prog ~syms))
              in
              (mem, stats, t)
            in
            let std_mem, std_stats, t_std = run Xform.Exec.Std in
            let ext_mem, ext_stats, t_ext = run Xform.Exec.Ext in
            let identical =
              Xform.Exec.equal_mem serial_mem std_mem
              && Xform.Exec.equal_mem serial_mem ext_mem
            in
            let row =
              {
                sp_name = name;
                sp_syms = syms;
                sp_loops = nloops;
                sp_std_doall = std_doall;
                sp_ext_doall = ext_doall;
                sp_serial = t_serial;
                sp_std = t_std;
                sp_ext = t_ext;
                sp_std_regions = std_stats.Xform.Exec.x_regions;
                sp_ext_regions = ext_stats.Xform.Exec.x_regions;
                sp_identical = identical;
              }
            in
            Printf.printf
              "%-18s %-18s %9.1f %9.1f %9.1f %7.2f %7.2f %5s %d/%d\n" name
              (String.concat ","
                 (List.map (fun (s, v) -> Printf.sprintf "%s=%d" s v) syms))
              (ms t_serial) (ms t_std) (ms t_ext) (t_serial /. t_std)
              (t_serial /. t_ext)
              (if identical then "yes" else "NO")
              std_stats.Xform.Exec.x_regions ext_stats.Xform.Exec.x_regions;
            Some row))
      Corpus.timing_population
  in
  Xform.Exec.shutdown pool;
  let wins = List.filter (fun r -> r.sp_ext < r.sp_std) rows in
  let plan_wins =
    List.filter (fun r -> r.sp_ext_doall > r.sp_std_doall) rows
  in
  Printf.printf
    "\n%d kernels; ext plan beats std plan wall-clock on %d; ext plan \
     parallelizes more loops on %d; all final states identical to serial: %b\n"
    (List.length rows) (List.length wins) (List.length plan_wins)
    (List.for_all (fun r -> r.sp_identical) rows);
  write_json ~out (json_of_speedup ~domains ~smoke rows);
  if not (List.for_all (fun r -> r.sp_identical) rows) then exit 1

(* ------------------------------------------------------------------ *)
(* Speedup suite, compiled backend: 4-way trajectory                   *)
(* ------------------------------------------------------------------ *)

(* serial-interp / serial-VM / std-plan-VM / ext-plan-VM, separating the
   compilation win (interp -> VM, [compile_speedup]) from the
   parallelism win (serial VM -> plan VM, [std_speedup]/[ext_speedup]).
   Compilation itself is hoisted out of the timed region (it happens
   once per program/plan); arena initialization is included, since every
   execution must pay it.  Final states: serial VM is checked
   bit-for-bit against the interpreter (total-memory equality), each
   plan VM against the serial VM's arena — a reported speedup is also a
   soundness certificate. *)

type vm_row = {
  vr_name : string;
  vr_syms : (string * int) list;
  vr_loops : int;
  vr_std_doall : int;
  vr_ext_doall : int;
  vr_iters : int; (* calibrated inner iterations for the serial-VM sample *)
  vr_interp : float;
  vr_vm : float;
  vr_vm_run : float; (* serial VM, run only (arena setup excluded) *)
  vr_std : float;
  vr_ext : float;
  vr_opt : float; (* serial VM, full optimizer pipeline, run only *)
  vr_ablation : (string * float) list; (* config label -> seconds *)
  vr_std_regions : int;
  vr_ext_regions : int;
  vr_std_inline : int;
  vr_ext_inline : int;
  vr_elided : int;
  vr_fused : int;
  vr_loopi : int;
  vr_x_fused : int;
  vr_x_interchanged : int;
  vr_x_killed : int;
  vr_dyn_base : int; (* dynamic instructions, unoptimized serial VM *)
  vr_dyn_opt : int; (* dynamic instructions, optimized serial VM *)
  vr_identical : bool;
  vr_subsets_ok : bool; (* all 16 optimizer-flag subsets bit-identical *)
}

let geomean = function
  | [] -> 1.
  | xs ->
    exp (List.fold_left (fun a x -> a +. log x) 0. xs /. float (List.length xs))

(* Times below the clock's resolution read as 0 at smoke scale; clamp
   both sides to one tick so ratios (and the JSON) stay finite. *)
let ratio num den =
  let tick = 1e-7 in
  Float.max num tick /. Float.max den tick

let dyn_ratio r = float_of_int r.vr_dyn_base /. float_of_int (max 1 r.vr_dyn_opt)

(* The per-pass ablation configurations, as (label, flags) with flags =
   (restructure, superinst, elide, writekill).  Each row switches one
   pass off with the other three on, so its whole-pipeline contribution
   is the gap to the all-on row. *)
let ablation_configs =
  [
    ("no_restructure", (false, true, true, true));
    ("no_superinst", (true, false, true, true));
    ("no_elide", (true, true, false, true));
    ("no_writekill", (true, true, true, false));
  ]

let json_of_vm_speedup ~domains ~smoke ~repeat (rows : vm_row list) =
  let row r =
    Json.Obj
      [
        ("name", Json.Str r.vr_name);
        ("syms", Json.Obj (List.map (fun (s, v) -> (s, Json.Int v)) r.vr_syms));
        ("loops", Json.Int r.vr_loops);
        ("std_doall", Json.Int r.vr_std_doall);
        ("ext_doall", Json.Int r.vr_ext_doall);
        ("iters", Json.Int r.vr_iters);
        ("interp_ms", jf (ms r.vr_interp));
        ("vm_ms", jf (ms r.vr_vm));
        ("vm_run_ms", jf (ms r.vr_vm_run));
        ("std_ms", jf (ms r.vr_std));
        ("ext_ms", jf (ms r.vr_ext));
        ("opt_ms", jf (ms r.vr_opt));
        ("compile_speedup", jf (ratio r.vr_interp r.vr_vm));
        ("std_speedup", jf (ratio r.vr_vm r.vr_std));
        ("ext_speedup", jf (ratio r.vr_vm r.vr_ext));
        ("opt_speedup", jf (ratio r.vr_vm_run r.vr_opt));
        ( "ablation",
          Json.Obj
            (List.map (fun (label, t) -> (label, jf (ms t))) r.vr_ablation) );
        ("elided", Json.Int r.vr_elided);
        ("fused", Json.Int r.vr_fused);
        ("loopi", Json.Int r.vr_loopi);
        ( "restructure",
          Json.Obj
            [
              ("fused", Json.Int r.vr_x_fused);
              ("interchanged", Json.Int r.vr_x_interchanged);
              ("killed", Json.Int r.vr_x_killed);
            ] );
        ("dyn_base", Json.Int r.vr_dyn_base);
        ("dyn_opt", Json.Int r.vr_dyn_opt);
        ("dyn_reduction", jf (dyn_ratio r));
        ("std_regions", Json.Int r.vr_std_regions);
        ("ext_regions", Json.Int r.vr_ext_regions);
        ("std_inline", Json.Int r.vr_std_inline);
        ("ext_inline", Json.Int r.vr_ext_inline);
        ("ext_beats_serial", Json.Bool (r.vr_ext < r.vr_vm));
        ("identical", Json.Bool r.vr_identical);
        ("subsets_identical", Json.Bool r.vr_subsets_ok);
      ]
  in
  let names p =
    Json.List
      (List.filter_map
         (fun r -> if p r then Some (Json.Str r.vr_name) else None)
         rows)
  in
  (* aggregate per-pass ablation: geomean slowdown of switching one
     pass off (vs all-on) and geomean speedup of the crippled pipeline
     over the unoptimized serial VM *)
  let ablation_rows =
    List.map
      (fun (label, _) ->
        let offs =
          List.map (fun r -> (r, List.assoc label r.vr_ablation)) rows
        in
        Json.Obj
          [
            ("pass", Json.Str label);
            ( "geomean_slowdown_off",
              jf (geomean (List.map (fun (r, t) -> ratio t r.vr_opt) offs)) );
            ( "geomean_speedup_vs_baseline",
              jf (geomean (List.map (fun (r, t) -> ratio r.vr_vm_run t) offs))
            );
          ])
      ablation_configs
  in
  Json.Obj
    [
      ("backend", Json.Str "vm");
      ("domains", Json.Int domains);
      ("smoke", Json.Bool smoke);
      ("repeat", Json.Int repeat);
      ("all_identical", Json.Bool (List.for_all (fun r -> r.vr_identical) rows));
      ("flag_subsets", Json.Int 16);
      ( "all_subsets_identical",
        Json.Bool (List.for_all (fun r -> r.vr_subsets_ok) rows) );
      ( "geomean_compile_speedup",
        jf (geomean (List.map (fun r -> ratio r.vr_interp r.vr_vm) rows)) );
      ( "geomean_ext_speedup",
        jf (geomean (List.map (fun r -> ratio r.vr_vm r.vr_ext) rows)) );
      ( "geomean_opt_speedup",
        jf (geomean (List.map (fun r -> ratio r.vr_vm_run r.vr_opt) rows)) );
      ( "geomean_dyn_reduction",
        jf (geomean (List.map dyn_ratio rows)) );
      ("ablation", Json.List ablation_rows);
      ("ext_beats_serial", names (fun r -> r.vr_ext < r.vr_vm));
      ("ext_beats_std", names (fun r -> r.vr_ext < r.vr_std));
      ("kernels", Json.List (List.map row rows));
    ]

let speedup_vm_suite ~smoke ~domains ~repeat ~out () =
  let pool = Xform.Exec.create_pool ?size:domains () in
  let domains = Xform.Exec.pool_size pool in
  section
    (Printf.sprintf
       "Speedup (compiled backend): interp / serial VM / std VM / ext VM / \
        optimized VM (%d domain%s%s, best of %d after warmup)"
       domains
       (if domains = 1 then "" else "s")
       (if smoke then ", smoke" else "")
       repeat);
  let target = if smoke then 8_000 else 150_000 in
  (* Sub-resolution samples: a smoke-scale kernel finishes in a few
     microseconds, under the clock tick, so single-shot samples read 0
     and every ratio saturates at the clamp.  Calibrate an
     inner-iteration count per measurement so each timed sample clears
     [floor_s]; report per-iteration time, and record the count in the
     artifact so a reader can judge the sample quality. *)
  let floor_s = if smoke then 0.002 else 0.01 in
  let calibrated f =
    let _, t1 = time f in
    let iters =
      if t1 >= floor_s then 1
      else
        max 1
          (min 1000
             (int_of_float (Float.ceil (floor_s /. Float.max t1 1e-7))))
    in
    let t =
      if iters = 1 then warm_best ~reps:repeat f
      else
        warm_best ~reps:repeat (fun () ->
            for _ = 1 to iters do
              f ()
            done)
        /. float_of_int iters
    in
    (t, iters)
  in
  let saved_flags = List.map (fun (_, r) -> (r, !r)) (Lang.Opt.flags ()) in
  let gate_failures = ref [] in
  Printf.printf "%-18s %-14s %8s %8s %8s %8s %8s %5s %5s %5s %5s %5s %5s\n"
    "kernel" "syms" "interp" "vm(ms)" "std(ms)" "ext(ms)" "opt(ms)" "c-x"
    "std-x" "ext-x" "opt-x" "dyn-x" "ident";
  let rows =
    List.filter_map
      (fun name ->
        let prog = Lang.Sema.parse_and_analyze (Corpus.find name) in
        let g = Xform.Graph.build prog in
        let vs = Xform.Parallel.analyze g in
        let nloops = List.length vs in
        let std_doall, ext_doall = Xform.Parallel.count_doall vs in
        let depth =
          List.fold_left
            (fun d (l : Xform.Graph.loop_info) -> max d l.Xform.Graph.l_depth)
            1 g.Xform.Graph.loops
        in
        let scale =
          max 4
            (int_of_float (float_of_int target ** (1. /. float_of_int depth)))
        in
        match
          Xform.Oracle.pick_syms
            ~candidates:[ scale; scale / 2; 100; 50; 10; 8; 6; 5; 4; 3; 2; 1 ]
            prog
        with
        | None -> None
        | Some syms -> (
          match Xform.Exec.run_serial ~init:speedup_init prog ~syms with
          | exception Lang.Interp.Runtime_error _ -> None
          | serial_mem -> (
            match Lang.Compile.program prog ~syms with
            | exception Lang.Compile.Unsupported _ -> None
            | u_serial ->
              let u_std =
                Xform.Exec.compile_plan (Xform.Exec.plan Xform.Exec.Std vs)
                  prog ~syms
              in
              let u_ext =
                Xform.Exec.compile_plan (Xform.Exec.plan Xform.Exec.Ext vs)
                  prog ~syms
              in
              (* correctness first: serial VM vs interpreter, plan VMs vs
                 serial VM *)
              let tvm = Lang.Vm.create ~init:speedup_init u_serial in
              Lang.Vm.run tvm;
              let serial_ok =
                Lang.Vm.check_against ~init:speedup_init tvm serial_mem = []
              in
              let run_par u =
                Xform.Exec.run_compiled_vm ~pool ~init:speedup_init u
              in
              let t_std_vm, std_stats = run_par u_std in
              let t_ext_vm, ext_stats = run_par u_ext in
              let identical =
                serial_ok
                && Lang.Vm.equal_state tvm t_std_vm
                && Lang.Vm.equal_state tvm t_ext_vm
              in
              (* --- optimizer pipeline ---
                 The source-level passes (restructure/write-kill) change
                 what gets compiled, so each of the four
                 (restructure, writekill) pairs is restructured and
                 compiled once; the bytecode passes (superinst/elide)
                 then apply to the compiled unit.  Reused by the
                 16-subset identity gate and the ablation rows. *)
              let ast = Lang.Parser.parse_string (Corpus.find name) in
              let flag_pairs =
                [ (false, false); (true, false); (false, true); (true, true) ]
              in
              let rw_units =
                List.map
                  (fun (r, w) ->
                    Lang.Opt.set ~restructure:r ~superinst:false ~elide:false
                      ~writekill:w;
                    let ast', xr = Xform.Restructure.optimize ast in
                    ( (r, w),
                      (Lang.Compile.program (Lang.Sema.analyze ast') ~syms, xr)
                    ))
                  flag_pairs
              in
              let unit_for (r, s, e, w) =
                let u_rw, _ = List.assoc (r, w) rw_units in
                Lang.Opt.set ~restructure:r ~superinst:s ~elide:e ~writekill:w;
                fst (Lang.Opt.optimize u_rw)
              in
              (* bit-identity gate: all 16 optimizer-flag subsets must
                 reproduce the interpreter's final memory exactly (the
                 interp-memory check, since restructuring may change the
                 arena layout), with every elision proof in bounds *)
              let subsets_ok =
                List.for_all
                  (fun ((r, w), (u_rw, _)) ->
                    List.for_all
                      (fun (s, e) ->
                        Lang.Opt.set ~restructure:r ~superinst:s ~elide:e
                          ~writekill:w;
                        let u, rep = Lang.Opt.optimize u_rw in
                        let t = Lang.Vm.create ~init:speedup_init u in
                        Lang.Vm.run t;
                        let ok =
                          Lang.Vm.check_against ~init:speedup_init t serial_mem
                          = []
                          && Lang.Opt.check_proofs u_rw rep = []
                        in
                        if not ok then
                          gate_failures :=
                            Printf.sprintf
                              "%s (restructure=%b superinst=%b elide=%b \
                               writekill=%b)"
                              name r s e w
                            :: !gate_failures;
                        ok)
                      flag_pairs)
                  rw_units
              in
              (* the production configuration: everything on *)
              let u_all_rw, xr = List.assoc (true, true) rw_units in
              Lang.Opt.all_on ();
              let u_opt, orep = Lang.Opt.optimize u_all_rw in
              let dyn u =
                Lang.Vm.run_count (Lang.Vm.create ~init:speedup_init u)
              in
              let dyn_base = dyn u_serial and dyn_opt = dyn u_opt in
              (* timings *)
              let run_vm u =
                let t = Lang.Vm.create ~init:speedup_init u in
                Lang.Vm.run t
              in
              (* single-threaded measurements first: right after a
                 run_par burst the pool's waking workers still steal
                 cycles (one core), inflating whatever is timed next *)
              let t_interp, _ =
                calibrated (fun () ->
                    ignore
                      (Xform.Exec.run_serial ~init:speedup_init prog ~syms))
              in
              let t_vm, iters = calibrated (fun () -> run_vm u_serial) in
              (* The optimizer-flag configurations are timed round-robin
                 inside each repetition, not config-at-a-time: allocator
                 and frequency drift across a kernel's measurement
                 window otherwise dwarfs the per-pass effect (the same
                 lesson measure_subject learned).  One calibration on
                 the unoptimized unit fixes the iteration count for
                 every config, so loop overhead cancels in the ratios.
                 Vm.create (arena allocation + initialization) is
                 hoisted out of the timed window — the optimizer cannot
                 change setup cost, and on big-arena kernels setup is
                 half the wall time, washing out the effect being
                 measured ([vm_ms] above keeps the legacy
                 setup-included number).  Creates are batched so each
                 timed window spans enough runs to clear the clock's
                 resolution without holding more than ~32 MB of
                 arenas. *)
              let run_only u =
                let cells = max 1 u.Lang.Compile.u_arena in
                let batch = max 1 (min iters (min 64 (4_000_000 / cells))) in
                let rounds = (iters + batch - 1) / batch in
                let acc = ref 0. in
                for _ = 1 to rounds do
                  let vms =
                    Array.init batch (fun _ ->
                        Lang.Vm.create ~init:speedup_init u)
                  in
                  let _, t = time (fun () -> Array.iter Lang.Vm.run vms) in
                  acc := !acc +. t
                done;
                !acc /. float_of_int (rounds * batch)
              in
              let vm_configs =
                Array.of_list
                  (("baseline", u_serial) :: ("all_on", u_opt)
                  :: List.map
                       (fun (label, cfg) -> (label, unit_for cfg))
                       ablation_configs)
              in
              let bests = Array.map (fun _ -> infinity) vm_configs in
              Array.iter (fun (_, u) -> run_vm u) vm_configs;
              for _rep = 1 to repeat do
                Array.iteri
                  (fun i (_, u) ->
                    bests.(i) <- Float.min bests.(i) (run_only u))
                  vm_configs
              done;
              let config_time label =
                let rec find i =
                  if fst vm_configs.(i) = label then bests.(i) else find (i + 1)
                in
                find 0
              in
              let t_vm_run = config_time "baseline" in
              let t_opt = config_time "all_on" in
              let ablation =
                List.map
                  (fun (label, _) -> (label, config_time label))
                  ablation_configs
              in
              let t_std, _ = calibrated (fun () -> ignore (run_par u_std)) in
              let t_ext, _ = calibrated (fun () -> ignore (run_par u_ext)) in
              let row =
                {
                  vr_name = name;
                  vr_syms = syms;
                  vr_loops = nloops;
                  vr_std_doall = std_doall;
                  vr_ext_doall = ext_doall;
                  vr_iters = iters;
                  vr_interp = t_interp;
                  vr_vm = t_vm;
                  vr_vm_run = t_vm_run;
                  vr_std = t_std;
                  vr_ext = t_ext;
                  vr_opt = t_opt;
                  vr_ablation = ablation;
                  vr_std_regions = std_stats.Xform.Exec.x_regions;
                  vr_ext_regions = ext_stats.Xform.Exec.x_regions;
                  vr_std_inline = std_stats.Xform.Exec.x_inline;
                  vr_ext_inline = ext_stats.Xform.Exec.x_inline;
                  vr_elided = orep.Lang.Opt.r_elided;
                  vr_fused = orep.Lang.Opt.r_fused;
                  vr_loopi = orep.Lang.Opt.r_loopi;
                  vr_x_fused = xr.Xform.Restructure.x_fused;
                  vr_x_interchanged = xr.Xform.Restructure.x_interchanged;
                  vr_x_killed = xr.Xform.Restructure.x_killed;
                  vr_dyn_base = dyn_base;
                  vr_dyn_opt = dyn_opt;
                  vr_identical = identical;
                  vr_subsets_ok = subsets_ok;
                }
              in
              Printf.printf
                "%-18s %-14s %8.1f %8.2f %8.2f %8.2f %8.2f %5.1f %5.2f %5.2f \
                 %5.2f %5.2f %5s\n"
                name
                (String.concat ","
                   (List.map (fun (s, v) -> Printf.sprintf "%s=%d" s v) syms))
                (ms t_interp) (ms t_vm) (ms t_std) (ms t_ext) (ms t_opt)
                (ratio t_interp t_vm) (ratio t_vm t_std) (ratio t_vm t_ext)
                (ratio t_vm_run t_opt) (dyn_ratio row)
                (if identical && subsets_ok then "yes" else "NO");
              Some row)))
      Corpus.timing_population
  in
  Xform.Exec.shutdown pool;
  List.iter (fun (r, v) -> r := v) saved_flags;
  let all_ok = List.for_all (fun r -> r.vr_identical) rows in
  let subsets_ok = !gate_failures = [] in
  let n p = List.length (List.filter p rows) in
  Printf.printf
    "\n\
     %d kernels; geomean interp->VM speedup %.1fx; geomean optimizer speedup \
     %.2fx (dynamic instructions %.2fx down); ext VM beats serial VM on %d, \
     beats std VM on %d; all final states identical: %b; all 16 flag subsets \
     identical: %b\n"
    (List.length rows)
    (geomean (List.map (fun r -> ratio r.vr_interp r.vr_vm) rows))
    (geomean (List.map (fun r -> ratio r.vr_vm_run r.vr_opt) rows))
    (geomean (List.map dyn_ratio rows))
    (n (fun r -> r.vr_ext < r.vr_vm))
    (n (fun r -> r.vr_ext < r.vr_std))
    all_ok subsets_ok;
  List.iter
    (fun d -> Printf.printf "DIVERGENT SUBSET: %s\n" d)
    (List.rev !gate_failures);
  write_json ~out (json_of_vm_speedup ~domains ~smoke ~repeat rows);
  if not (all_ok && subsets_ok) then exit 1

(* ------------------------------------------------------------------ *)
(* Robustness suite: governance sweep + fault-injection soundness      *)
(* ------------------------------------------------------------------ *)

(* CI's gate for the resource-governed solver core.  Three checks, over
   the whole corpus plus the adversarial stress nests:

   - totality: every budget rung completes without an exception -
     exhaustion surfaces as telemetry, never as a crash;
   - monotone degradation: what the tight rung proves (dead edges,
     doalls) is a subset of what the default rung proves, and the
     default live set is within the tight one;
   - fault soundness: with a deterministic fraction of queries forced
     to give up, every plan stays within the clean plan and degraded
     doall execution still matches serial bit-for-bit.

   Any violation is printed, recorded in the JSON artifact, and turns
   into a nonzero exit. *)

let robust_programs () = Corpus.all @ Corpus.stress

type robust_outcome = {
  ro_dead : string list;
  ro_live : string list;
  ro_std : string list;
  ro_ext : string list;
}

let robust_outcome src : robust_outcome =
  Analyses.Memo.reset ();
  let prog = Lang.Sema.analyze (Lang.Parser.parse_string src) in
  let r = Driver.analyze prog in
  let key (fr : Driver.flow_result) =
    Printf.sprintf "%d->%d" fr.Driver.dep.Deps.src.Lang.Ir.acc_id
      fr.Driver.dep.Deps.dst.Lang.Ir.acc_id
  in
  let vs = Xform.Parallel.analyze (Xform.Graph.build prog) in
  let doalls side =
    List.filter_map
      (fun (v : Xform.Parallel.verdict) ->
        if side v then Some (Xform.Parallel.loop_path v.Xform.Parallel.v_loop)
        else None)
      vs
  in
  {
    ro_dead = List.map key (Driver.dead_flows r);
    ro_live = List.map key (Driver.live_flows r);
    ro_std = doalls (fun v -> v.Xform.Parallel.v_std_doall);
    ro_ext = doalls (fun v -> v.Xform.Parallel.v_ext_doall);
  }

let robustness_suite ~out ~seeds () =
  section "Robustness: governance sweep + fault-injection soundness";
  let programs = robust_programs () in
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf
      (fun s ->
        Printf.printf "VIOLATION: %s\n" s;
        violations := !violations @ [ s ])
      fmt
  in
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  (* --- governance sweep: run every program at each budget rung --- *)
  let tiny =
    { Omega.Budget.fuel = 200; splinters = 4; disjuncts = 8; deadline_ms = None }
  in
  let rungs = [ ("default", Omega.Budget.default); ("tiny", tiny) ] in
  let sweep (rname, lims) =
    Omega.Budget.Telemetry.reset ();
    let outcomes =
      Omega.Budget.with_limits lims (fun () ->
          List.filter_map
            (fun (pname, src) ->
              match robust_outcome src with
              | o -> Some (pname, o)
              | exception e ->
                violate "%s crashed under %s budget: %s" pname rname
                  (Printexc.to_string e);
                None)
            programs)
    in
    Printf.printf "budget %-8s %s\n" rname (Omega.Budget.Telemetry.summary ());
    (rname, outcomes, Omega.Budget.Telemetry.to_json ())
  in
  let rung_rows = List.map sweep rungs in
  let clean =
    match rung_rows with (_, o, _) :: _ -> o | [] -> assert false
  in
  (* --- monotone degradation: tiny proves no more than default --- *)
  (match rung_rows with
  | (_, o_def, _) :: (_, o_tiny, _) :: _ ->
    List.iter
      (fun (pname, (t : robust_outcome)) ->
        match List.assoc_opt pname o_def with
        | None -> ()
        | Some d ->
          let chain label a b =
            if not (subset a b) then
              violate "%s: tiny-budget %s not within default's" pname label
          in
          chain "dead set" t.ro_dead d.ro_dead;
          chain "std doalls" t.ro_std d.ro_std;
          chain "ext doalls" t.ro_ext d.ro_ext;
          chain "live set (default within tiny)" d.ro_live t.ro_live)
      o_tiny
  | _ -> ());
  (* --- fault injection: degraded plans stay within clean plans --- *)
  let rate = 0.10 in
  let pool = Xform.Exec.create_pool () in
  let seed_rows =
    List.map
      (fun seed ->
        Analyses.set_fault_injection ~seed ~rate;
        Omega.Budget.Telemetry.reset ();
        Fun.protect ~finally:Analyses.clear_fault_injection (fun () ->
            List.iter
              (fun (pname, src) ->
                match robust_outcome src with
                | exception e ->
                  violate "%s crashed under fault seed %d: %s" pname seed
                    (Printexc.to_string e)
                | faulty ->
                  (match List.assoc_opt pname clean with
                  | None -> ()
                  | Some cl ->
                    let sub label a b =
                      if not (subset a b) then
                        violate "%s (seed %d): faulty %s not within clean's"
                          pname seed label
                    in
                    sub "dead set" faulty.ro_dead cl.ro_dead;
                    sub "std doalls" faulty.ro_std cl.ro_std;
                    sub "ext doalls" faulty.ro_ext cl.ro_ext;
                    sub "live set (clean within faulty)" cl.ro_live
                      faulty.ro_live))
              programs;
            let injected =
              (Omega.Budget.Telemetry.current ())
                .Omega.Budget.Telemetry.gave_up_injected
            in
            if injected = 0 then
              violate "seed %d: fault injection never fired" seed;
            (* degraded plans must still execute soundly *)
            List.iter
              (fun pname ->
                let prog =
                  Lang.Sema.analyze (Lang.Parser.parse_string (Corpus.find pname))
                in
                let vs = Xform.Parallel.analyze (Xform.Graph.build prog) in
                let pl = Xform.Exec.plan Xform.Exec.Ext vs in
                let syms =
                  match
                    Xform.Oracle.pick_syms ~candidates:[ 8; 4; 2; 5; 50; 100 ]
                      prog
                  with
                  | Some s -> s
                  | None -> []
                in
                let serial =
                  Xform.Exec.run_serial ~init:speedup_init prog ~syms
                in
                let mem, _ =
                  Xform.Exec.run_parallel ~pool ~init:speedup_init pl prog
                    ~syms
                in
                if not (Xform.Exec.equal_mem serial mem) then
                  violate "%s (seed %d): degraded plan diverges from serial"
                    pname seed)
              [ "temp_reuse"; "copyin"; "kill_chain" ];
            Printf.printf "fault seed %-6d rate %.2f: %s\n" seed rate
              (Omega.Budget.Telemetry.summary ());
            (seed, injected, Omega.Budget.Telemetry.to_json ())))
      seeds
  in
  Analyses.Memo.reset ();
  let sound = !violations = [] in
  Printf.printf
    "\n%d programs (%d stress); %d budget rungs; %d fault seeds; sound: %b\n"
    (List.length programs)
    (List.length (robust_programs ()) - List.length Corpus.all)
    (List.length rungs) (List.length seeds) sound;
  write_json ~out
    (Json.Obj
       [
         ("programs", Json.Int (List.length programs));
         ("rate", Json.Float rate);
         ( "budgets",
           Json.List
             (List.map
                (fun (rname, _, tj) ->
                  Json.Obj
                    [
                      ("budget", Json.Str rname);
                      ("telemetry", telemetry_json tj);
                    ])
                rung_rows) );
         ( "seeds",
           Json.List
             (List.map
                (fun (seed, injected, tj) ->
                  Json.Obj
                    [
                      ("seed", Json.Int seed);
                      ("injected", Json.Int injected);
                      ("telemetry", telemetry_json tj);
                    ])
                seed_rows) );
         ("violations", Json.List (List.map (fun v -> Json.Str v) !violations));
         ("sound", Json.Bool sound);
       ]);
  if not sound then exit 1

(* ------------------------------------------------------------------ *)
(* Analysis-time suite: solver-core throughput                         *)
(* ------------------------------------------------------------------ *)

(* CI's gate for the solver hot-path work (DESIGN.md section 9): the
   whole-corpus standard+extended analysis, the figure 6/7 per-pair
   population, and the section-5 symbolic probes, each timed twice -
   once with the elimination ordering / redundancy pruning / hash-consing
   optimizations on, once fully ablated.  Both configurations run under
   a deliberately generous budget so neither gives up, which lets the
   suite demand *identical* results: a reported speedup is also an
   equivalence certificate for the optimizations that produced it. *)

let analysis_budget =
  {
    Omega.Budget.fuel = 10_000_000;
    splinters = 1_000_000;
    disjuncts = 65_536;
    deadline_ms = None;
  }

let with_tuning ~order ~redundancy ~hashcons f =
  let saved =
    (!Omega.Tuning.order, !Omega.Tuning.redundancy, !Omega.Tuning.hashcons)
  in
  Omega.Tuning.set ~order ~redundancy ~hashcons;
  Fun.protect
    ~finally:(fun () ->
      let o, r, h = saved in
      Omega.Tuning.set ~order:o ~redundancy:r ~hashcons:h)
    f

(* The section-5 symbolic conditions, captured for cross-checking.  The
   contexts are built once and shared by both configurations, so the
   captured [When] problems talk about the same variables and can be
   compared by mutual implication (their rendered text may still name
   wildcards differently, so string equality would be too strict). *)
type sym_probe = unit -> Symbolic.condition

let symbolic_probes () : sym_probe list =
  let arr_acc which arr prog =
    List.find (fun (a : Lang.Ir.access) -> a.Lang.Ir.array = arr) (which prog)
  in
  let prog7 = Lang.Sema.parse_and_analyze (Corpus.find "example7") in
  let ctx7 = Depctx.create prog7 in
  let w7 = arr_acc Lang.Ir.writes "a" prog7 in
  let r7 = arr_acc Lang.Ir.reads "a" prog7 in
  let c7 =
    List.map
      (fun restraint () ->
        (Symbolic.analyze ctx7 ~src:w7 ~dst:r7 ~restraint ~hide:[ "n" ] ())
          .Symbolic.cond)
      [ [ Dirvec.Pos; Dirvec.Any ]; [ Dirvec.Zero; Dirvec.Pos ] ]
  in
  let prog8 = Lang.Sema.parse_and_analyze (Corpus.find "example8") in
  let ctx8 = Depctx.create prog8 in
  let w8 = arr_acc Lang.Ir.writes "a" prog8 in
  let r8 = arr_acc Lang.Ir.reads "a" prog8 in
  let c8 =
    List.map
      (fun (src, dst) () ->
        (Symbolic.analyze ctx8 ~src ~dst ~restraint:[ Dirvec.Pos ] ())
          .Symbolic.cond)
      [ (w8, w8); (w8, r8) ]
  in
  c7 @ c8

(* Conditions may mention symbolic variables minted fresh per analyze
   call; align the two runs' variables by creation order (program
   variables are shared and map to themselves) before asking for mutual
   implication. *)
let cond_equiv a b =
  match (a, b) with
  | Symbolic.Always, Symbolic.Always | Symbolic.Never, Symbolic.Never -> true
  | Symbolic.When p, Symbolic.When q ->
    let vp = Omega.Var.Set.elements (Omega.Problem.vars p) in
    let vq = Omega.Var.Set.elements (Omega.Problem.vars q) in
    List.length vp = List.length vq
    &&
    let q' =
      List.fold_left2
        (fun acc v v' ->
          if Omega.Var.equal v v' then acc
          else Omega.Problem.subst v (Omega.Linexpr.var v') acc)
        q vq vp
    in
    Omega.implies p q' && Omega.implies q' p
  | Symbolic.Unknown _, Symbolic.Unknown _ -> true
  | _ -> false

(* One parsed program of the timed population.  Parsing and IR building
   are hoisted out of the timed region (the suite measures the analyses,
   not the front end) and shared by every configuration, which also pins
   variable and access identities so results can be compared directly. *)
type analysis_subject = { as_name : string; as_prog : Lang.Ir.program }

(* The whole corpus plus the adversarial stress nests (the robustness
   suite's population): the stress programs are where Fourier-Motzkin
   growth actually bites, so they are exactly where the ordering and
   pruning work is expected to show.  stress_coupled is left out: under
   the no-give-up budget a single analysis of it runs ~30 seconds, and
   it exercises the same blowup paths stress_splinter covers at a
   fraction of the cost. *)
let analysis_subjects () : analysis_subject list =
  List.map
    (fun (name, src) ->
      { as_name = name; as_prog = Lang.Sema.analyze (Lang.Parser.parse_string src) })
    (Corpus.all
    @ List.filter (fun (n, _) -> n <> "stress_coupled") Corpus.stress)

(* The full standard + extended analysis of one program: dead/live flow
   classification plus the doall verdicts of the transformation layer.
   The verdict memo is reset first, so a repetition re-solves every
   query instead of replaying the previous run's cache. *)
let analysis_outcome (prog : Lang.Ir.program) : robust_outcome =
  Analyses.Memo.reset ();
  let r = Driver.analyze prog in
  let key (fr : Driver.flow_result) =
    Printf.sprintf "%d->%d" fr.Driver.dep.Deps.src.Lang.Ir.acc_id
      fr.Driver.dep.Deps.dst.Lang.Ir.acc_id
  in
  let vs = Xform.Parallel.analyze (Xform.Graph.build prog) in
  let doalls side =
    List.filter_map
      (fun (v : Xform.Parallel.verdict) ->
        if side v then Some (Xform.Parallel.loop_path v.Xform.Parallel.v_loop)
        else None)
      vs
  in
  {
    ro_dead = List.map key (Driver.dead_flows r);
    ro_live = List.map key (Driver.live_flows r);
    ro_std = doalls (fun v -> v.Xform.Parallel.v_std_doall);
    ro_ext = doalls (fun v -> v.Xform.Parallel.v_ext_doall);
  }

type analysis_cfg = { cf_order : bool; cf_redundancy : bool; cf_hashcons : bool }

let cfg_ablated = { cf_order = false; cf_redundancy = false; cf_hashcons = false }

(* Every measured call runs under the no-give-up budget, so differing
   configurations are required to produce identical results. *)
let under cfg f =
  with_tuning ~order:cfg.cf_order ~redundancy:cfg.cf_redundancy
    ~hashcons:cfg.cf_hashcons (fun () ->
      Omega.Budget.with_limits analysis_budget f)

(* Time one subject under [cfg].  One analysis of a small kernel is
   microseconds, so [iters] batches enough of them that a timed sample
   clears ~10ms, or clock jitter swamps the comparison; the caller
   passes the same [iters] to every configuration so the loop overhead
   cancels.  Subjects slow enough to carry their own signal (the stress
   nests) are timed as single runs. *)
let time_subject ~reps ~iters cfg s =
  under cfg @@ fun () ->
  if iters = 1 then
    snd (time (fun () -> ignore (analysis_outcome s.as_prog)))
  else
    warm_best ~reps (fun () ->
        for _ = 1 to iters do
          ignore (analysis_outcome s.as_prog)
        done)
    /. float_of_int iters

(* Measure one subject under the optimized and the ablated configuration
   back-to-back — config-at-a-time passes turned out to be unfair, with
   allocator and frequency drift between the two passes dwarfing the
   effect being measured. *)
let measure_subject ~reps cfg_opt s =
  let o_opt = under cfg_opt (fun () -> analysis_outcome s.as_prog) in
  let o_abl = under cfg_ablated (fun () -> analysis_outcome s.as_prog) in
  let t1 =
    under cfg_ablated
      (fun () -> snd (time (fun () -> ignore (analysis_outcome s.as_prog))))
  in
  let iters =
    if t1 >= 0.25 then 1 else max 1 (int_of_float (0.01 /. Float.max t1 1e-6))
  in
  let t_opt = time_subject ~reps ~iters cfg_opt s in
  let t_abl = time_subject ~reps ~iters cfg_ablated s in
  (s.as_name, t_opt, t_abl, o_opt, o_abl)

let json_of_analysis ~smoke ~repeat ~flags ~geo ~corpus ~pairs_speedup
    ~geo_programs ~divergences ~rows ~ablation_rows ~parallel ~portfolio =
  let order, redundancy, hashcons = flags in
  let corpus_abl, corpus_opt, corpus_speedup = corpus in
  Json.Obj
    (parallel
    @ [
      ("portfolio", portfolio);
      ("smoke", Json.Bool smoke);
      ("repeat", Json.Int repeat);
      ( "flags",
        Json.Obj
          [
            ("order", Json.Bool order);
            ("redundancy", Json.Bool redundancy);
            ("hashcons", Json.Bool hashcons);
          ] );
      ("geomean_speedup", jf geo);
      ("corpus_ablated_ms", jf (ms corpus_abl));
      ("corpus_optimized_ms", jf (ms corpus_opt));
      ("corpus_speedup", jf corpus_speedup);
      ("pairs_speedup", jf pairs_speedup);
      ("per_program_geomean", jf geo_programs);
      ("identical", Json.Bool (divergences = []));
      ("divergences", Json.List (List.map (fun d -> Json.Str d) divergences));
      ( "programs",
        Json.List
          (List.map
             (fun (name, t_abl, t_opt) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ("ablated_ms", jf (ms t_abl));
                   ("optimized_ms", jf (ms t_opt));
                   ("speedup", jf (ratio t_abl t_opt));
                 ])
             rows) );
      ( "ablations",
        Json.List
          (List.map
             (fun (flag, t_off, t_on) ->
               Json.Obj
                 [
                   ("disabled", Json.Str flag);
                   ("off_ms", jf (ms t_off));
                   ("on_ms", jf (ms t_on));
                   ("slowdown", jf (ratio t_off t_on));
                 ])
             ablation_rows) );
    ])

let analysis_suite ~smoke ~repeat ~out ~order ~redundancy ~hashcons ~domains
    () =
  section
    (Printf.sprintf
       "Analysis time: solver core (order=%b redundancy=%b hashcons=%b) vs \
        fully-ablated baseline%s, best of %d after warmup"
       order redundancy hashcons
       (if smoke then ", smoke" else "")
       repeat);
  let reps = repeat in
  let subjects = analysis_subjects () in
  let probes = symbolic_probes () in
  let cfg_opt =
    { cf_order = order; cf_redundancy = redundancy; cf_hashcons = hashcons }
  in
  let measured = List.map (measure_subject ~reps cfg_opt) subjects in
  let pairs_opt =
    under cfg_opt (fun () -> warm_best ~reps (fun () -> ignore (pair_timings ())))
  in
  let pairs_abl =
    under cfg_ablated
      (fun () -> warm_best ~reps (fun () -> ignore (pair_timings ())))
  in
  let probes_opt = under cfg_opt (fun () -> List.map (fun p -> p ()) probes) in
  let probes_abl =
    under cfg_ablated (fun () -> List.map (fun p -> p ()) probes)
  in
  (* --- correctness cross-check: identical analysis results --- *)
  let divergences = ref [] in
  List.iter
    (fun (name, _, _, (o : robust_outcome), (a : robust_outcome)) ->
      if o <> a then
        divergences :=
          !divergences
          @ [
              Printf.sprintf
                "%s: optimized and ablated analyses disagree (dead %d/%d, \
                 live %d/%d, std doall %d/%d, ext doall %d/%d)"
                name
                (List.length o.ro_dead) (List.length a.ro_dead)
                (List.length o.ro_live) (List.length a.ro_live)
                (List.length o.ro_std) (List.length a.ro_std)
                (List.length o.ro_ext) (List.length a.ro_ext);
            ])
    measured;
  let cond_str = function
    | Symbolic.Always -> "always"
    | Symbolic.Never -> "never"
    | Symbolic.When p -> "when " ^ Omega.Problem.to_string p
    | Symbolic.Unknown r -> "unknown (" ^ Omega.Budget.reason_to_string r ^ ")"
  in
  under { cf_order = true; cf_redundancy = true; cf_hashcons = true }
    (fun () ->
      List.iteri
        (fun i (a, b) ->
          if not (cond_equiv a b) then
            divergences :=
              !divergences
              @ [
                  Printf.sprintf
                    "symbolic probe %d: conditions differ (optimized: %s; \
                     ablated: %s)"
                    i (cond_str a) (cond_str b);
                ])
        (List.combine probes_opt probes_abl));
  (* --- report --- *)
  Printf.printf "%-20s %12s %12s %8s\n" "program" "ablated(ms)" "optimized"
    "speedup";
  let rows =
    List.map (fun (name, t_opt, t_abl, _, _) -> (name, t_abl, t_opt)) measured
  in
  List.iter
    (fun (name, t_abl, t_opt) ->
      Printf.printf "%-20s %12.2f %12.2f %8.2f\n" name (ms t_abl) (ms t_opt)
        (ratio t_abl t_opt))
    rows;
  Printf.printf "%-20s %12.2f %12.2f %8.2f\n" "fig6/7 pairs" (ms pairs_abl)
    (ms pairs_opt)
    (ratio pairs_abl pairs_opt);
  (* The suite times two top-level populations: the whole corpus
     (standard + extended analysis of every program) and the figure 6/7
     per-pair dependence queries.  The headline geomean is over those two
     suite-level speedups; the per-program geomean weights every kernel
     equally (including sub-millisecond ones dominated by parsing and
     front-end plumbing) and is reported as a secondary figure. *)
  let corpus_abl = List.fold_left (fun acc (_, a, _) -> acc +. a) 0. rows in
  let corpus_opt = List.fold_left (fun acc (_, _, o) -> acc +. o) 0. rows in
  let corpus_speedup = ratio corpus_abl corpus_opt in
  let geo_programs = geomean (List.map (fun (_, a, o) -> ratio a o) rows) in
  let geo = geomean [ corpus_speedup; ratio pairs_abl pairs_opt ] in
  Printf.printf "%-20s %12.2f %12.2f %8.2f\n" "whole corpus" (ms corpus_abl)
    (ms corpus_opt) corpus_speedup;
  (* solver counters for one optimized corpus pass, reported for context *)
  Omega.Tuning.Stats.reset ();
  under cfg_opt (fun () ->
      List.iter (fun s -> ignore (analysis_outcome s.as_prog)) subjects);
  let stats_line = Omega.Tuning.Stats.summary () in
  Printf.printf
    "\ngeomean whole-corpus analysis speedup: %.2fx over the fully-ablated \
     baseline\n(per-program geomean: %.2fx)\nsolver (optimized corpus pass): \
     %s\nidentical results: %b\n"
    geo geo_programs stats_line (!divergences = []);
  List.iter (fun d -> Printf.printf "VIOLATION: %s\n" d) !divergences;
  (* --- decision portfolio: the tiered cascade (DESIGN.md section 12).
     Three gates in one sub-suite, all of which also run in smoke mode:
     (1) the cross-backend oracle replays every query an incomplete tier
     decides through the complete procedure and demands agreement;
     (2) cascade-on vs cascade-off (tier 2 alone: no screen, no fast
     path) must produce byte-identical analyze and parallelize payloads
     — dependence sets, direction vectors, kill/cover attribution, and
     doall verdicts all ride in those payloads; (3) the cascade must pay
     for itself on the corpus, with the per-tier traffic reported. *)
  let with_backend b f =
    let saved = !Portfolio.backend in
    Portfolio.backend := b;
    Fun.protect ~finally:(fun () -> Portfolio.backend := saved) f
  in
  let with_fast on f =
    let saved = !Analyses.use_fast_path in
    Analyses.use_fast_path := on;
    Fun.protect ~finally:(fun () -> Analyses.use_fast_path := saved) f
  in
  let cascade f = with_backend Portfolio.Cascade f in
  let tier2_only f =
    with_backend Portfolio.Omega (fun () -> with_fast false f)
  in
  (* (1) the oracle corpus replay *)
  Portfolio.Oracle.enable ();
  cascade (fun () ->
      under cfg_opt (fun () ->
          List.iter (fun s -> ignore (analysis_outcome s.as_prog)) subjects));
  Portfolio.Oracle.disable ();
  let oracle_checks = Portfolio.Oracle.checks () in
  let oracle_bad = Portfolio.Oracle.divergences () in
  List.iter
    (fun (d : Portfolio.Oracle.divergence) ->
      let s =
        Printf.sprintf
          "oracle: tier %s decided %s as %b but the complete procedure says \
           %b"
          (Portfolio.tier_to_string d.Portfolio.Oracle.tier)
          d.Portfolio.Oracle.label d.Portfolio.Oracle.got
          d.Portfolio.Oracle.want
      in
      Printf.printf "VIOLATION: %s\n" s;
      divergences := !divergences @ [ s ])
    oracle_bad;
  (* (2) payload bit-identity *)
  let payloads () =
    under cfg_opt (fun () ->
        List.map
          (fun s ->
            Analyses.Memo.reset ();
            ( s.as_name,
              Json.to_string (Service.analyze_payload ~in_bounds:true s.as_prog)
              ^ Json.to_string
                  (Service.parallelize_payload ~in_bounds:true s.as_prog) ))
          subjects)
  in
  let pay_cascade = cascade payloads in
  let pay_tier2 = tier2_only payloads in
  let payloads_identical = ref true in
  List.iter2
    (fun (name, a) (_, b) ->
      if a <> b then begin
        payloads_identical := false;
        let d =
          Printf.sprintf
            "%s: cascade and tier-2-only analysis payloads differ" name
        in
        Printf.printf "VIOLATION: %s\n" d;
        divergences := !divergences @ [ d ]
      end)
    pay_cascade pay_tier2;
  (* (3) throughput and tier traffic *)
  let portfolio_corpus_time wrap =
    List.fold_left2
      (fun acc s (_, _, t_abl, _, _) ->
        let iters =
          if t_abl >= 0.25 then 1
          else max 1 (int_of_float (0.01 /. Float.max t_abl 1e-6))
        in
        acc +. wrap (fun () -> time_subject ~reps ~iters cfg_opt s))
      0. subjects measured
  in
  let t_cascade = portfolio_corpus_time cascade in
  let t_tier2 = portfolio_corpus_time tier2_only in
  Portfolio.Stats.reset ();
  cascade (fun () ->
      under cfg_opt (fun () ->
          List.iter (fun s -> ignore (analysis_outcome s.as_prog)) subjects));
  let tiers = Portfolio.Stats.current () in
  let trate (r : Portfolio.Stats.row) =
    if r.Portfolio.Stats.attempts = 0 then 0.
    else
      float_of_int r.Portfolio.Stats.decides
      /. float_of_int r.Portfolio.Stats.attempts
  in
  let tier0_decide_fraction = trate tiers.Portfolio.Stats.screen in
  Printf.printf
    "\nportfolio: cascade corpus %8.1f ms vs tier-2-only %8.1f ms (%.2fx \
     speedup)\noracle: %d cross-backend checks, %d contradictions; payloads \
     identical: %b\ntiers (attempts/decided): %s\ntier-0 screen decides \
     %.1f%% of the solver queries it sees\n"
    (ms t_cascade) (ms t_tier2)
    (ratio t_tier2 t_cascade)
    oracle_checks
    (List.length oracle_bad)
    !payloads_identical
    (Portfolio.Stats.summary ())
    (100. *. tier0_decide_fraction);
  let tier_json (r : Portfolio.Stats.row) =
    Json.Obj
      [
        ("attempts", Json.Int r.Portfolio.Stats.attempts);
        ("decides", Json.Int r.Portfolio.Stats.decides);
        ("decide_rate", jf (trate r));
        ("ms", jf (ms r.Portfolio.Stats.elapsed));
      ]
  in
  let portfolio_json =
    Json.Obj
      [
        ("cascade_ms", jf (ms t_cascade));
        ("tier2_only_ms", jf (ms t_tier2));
        ("cascade_speedup", jf (ratio t_tier2 t_cascade));
        ("oracle_checks", Json.Int oracle_checks);
        ("oracle_divergences", Json.Int (List.length oracle_bad));
        ("payloads_identical", Json.Bool !payloads_identical);
        ("tier0_decide_fraction", jf tier0_decide_fraction);
        ( "tiers",
          Json.Obj
            [
              ("quick", tier_json tiers.Portfolio.Stats.quick);
              ("screen", tier_json tiers.Portfolio.Stats.screen);
              ("fast", tier_json tiers.Portfolio.Stats.fast);
              ("complete", tier_json tiers.Portfolio.Stats.complete);
            ] );
      ]
  in
  (* --- per-flag ablation rows: each optimization off on its own --- *)
  let ablation_rows =
    if smoke then []
    else begin
      let corpus_time cfg =
        List.fold_left2
          (fun acc s (_, _, t_abl, _, _) ->
            let iters =
              if t_abl >= 0.25 then 1
              else max 1 (int_of_float (0.01 /. Float.max t_abl 1e-6))
            in
            acc +. time_subject ~reps ~iters cfg s)
          0. subjects measured
      in
      let t_all_on = corpus_time cfg_opt in
      List.map
        (fun (flag, cfg) ->
          let t_off = corpus_time cfg in
          Printf.printf
            "ablation --no-%-10s: corpus %8.1f ms (all-on %8.1f ms, %.2fx \
             slower)\n"
            flag (ms t_off) (ms t_all_on) (ratio t_off t_all_on);
          (flag, t_off, t_all_on))
        [
          ("order", { cfg_opt with cf_order = false });
          ("redundancy", { cfg_opt with cf_redundancy = false });
          ("hashcons", { cfg_opt with cf_hashcons = false });
        ]
    end
  in
  (* --- serial vs domain-sharded differential (the --domains gate):
     the same corpus pass and the same fig 6/7 pair population, once at
     width 1 and once sharded, must produce structurally identical
     outcomes — dependence sets, direction vectors, doall verdicts.
     Only the clock may change. *)
  let parallel_fields =
    match domains with
    | None -> []
    | Some n ->
      let n = max 2 n in
      (* Whole programs are the sharding unit: one task re-analyzes one
         subject, so the expensive stress nests run concurrently with
         the rest of the corpus, and the per-destination sharding inside
         [Driver.analyze] stays inline on the worker ([Par.map] nests
         without re-entering the pool).  At width 1 [Par.map_list] is
         exactly [List.map], so the serial pass is untouched. *)
      let corpus_pass () =
        Par.map_list (fun s -> (s.as_name, analysis_outcome s.as_prog)) subjects
      in
      let pass () =
        time (fun () ->
            under cfg_opt (fun () -> (corpus_pass (), pair_verdicts ())))
      in
      Par.set_domains 1;
      let (serial_out, serial_pairs), t_serial = pass () in
      Par.set_domains n;
      let (par_out, par_pairs), t_par = pass () in
      (* per-domain memo traffic over one sharded corpus pass *)
      Analyses.Memo.reset ();
      under cfg_opt (fun () ->
          ignore
            (Par.map_list
               (fun s -> ignore (Driver.analyze s.as_prog))
               subjects));
      let by_domain = Analyses.Memo.domain_stats () in
      Par.set_domains 1;
      List.iter2
        (fun (name, (o : robust_outcome)) (_, (p : robust_outcome)) ->
          if o <> p then begin
            let d =
              Printf.sprintf
                "%s: %d-domain analysis diverges from serial (dead %d/%d, \
                 live %d/%d, std doall %d/%d, ext doall %d/%d)"
                name n
                (List.length p.ro_dead) (List.length o.ro_dead)
                (List.length p.ro_live) (List.length o.ro_live)
                (List.length p.ro_std) (List.length o.ro_std)
                (List.length p.ro_ext) (List.length o.ro_ext)
            in
            Printf.printf "VIOLATION: %s\n" d;
            divergences := !divergences @ [ d ]
          end)
        serial_out par_out;
      if serial_pairs <> par_pairs then begin
        let d =
          Printf.sprintf
            "fig6/7 pair verdicts diverge between serial and %d-domain runs"
            n
        in
        Printf.printf "VIOLATION: %s\n" d;
        divergences := !divergences @ [ d ]
      end;
      let cores = Domain.recommended_domain_count () in
      Printf.printf
        "\nserial vs %d domains: corpus+pairs %8.1f ms -> %8.1f ms (x%.2f), \
         identical verdicts: %b\n"
        n (ms t_serial) (ms t_par) (ratio t_serial t_par)
        (not
           (List.exists2
              (fun (_, o) (_, p) -> o <> p)
              serial_out par_out)
        && serial_pairs = par_pairs);
      if cores < n then
        Printf.printf
          "  (host has %d core(s) for %d domains: the sharded pass \
           time-slices and pays cross-domain GC sync, so the timing is \
           not meaningful here — the gate is identity, not speed)\n"
          cores n;
      List.iter
        (fun (d, (m : Analyses.Memo.t)) ->
          let tot = m.Analyses.Memo.hits + m.Analyses.Memo.misses in
          Printf.printf
            "  domain %d: %d memo hits, %d misses (%.0f%%); hits by tier: %d \
             screen, %d fast, %d complete\n"
            d m.Analyses.Memo.hits m.Analyses.Memo.misses
            (if tot = 0 then 0.
             else 100. *. float_of_int m.Analyses.Memo.hits /. float_of_int tot)
            m.Analyses.Memo.hits_screen m.Analyses.Memo.hits_fast
            m.Analyses.Memo.hits_complete)
        by_domain;
      [
        ("domains", Json.Int n);
        ("host_cores", Json.Int cores);
        ("serial_ms", jf (ms t_serial));
        ("parallel_ms", jf (ms t_par));
        ("parallel_speedup", jf (ratio t_serial t_par));
        ( "parallel_identical",
          Json.Bool
            (not
               (List.exists2
                  (fun (_, o) (_, p) -> o <> p)
                  serial_out par_out)
            && serial_pairs = par_pairs) );
        ( "memo_by_domain",
          Json.List
            (List.map
               (fun (d, (m : Analyses.Memo.t)) ->
                 let tot = m.Analyses.Memo.hits + m.Analyses.Memo.misses in
                 Json.Obj
                   [
                     ("domain", Json.Int d);
                     ("hits", Json.Int m.Analyses.Memo.hits);
                     ("misses", Json.Int m.Analyses.Memo.misses);
                     ( "hit_rate",
                       jf
                         (if tot = 0 then 0.
                          else
                            float_of_int m.Analyses.Memo.hits
                            /. float_of_int tot) );
                     ("hits_screen", Json.Int m.Analyses.Memo.hits_screen);
                     ("hits_fast", Json.Int m.Analyses.Memo.hits_fast);
                     ( "hits_complete",
                       Json.Int m.Analyses.Memo.hits_complete );
                   ])
               by_domain) );
      ]
  in
  write_json ~out
    (json_of_analysis ~smoke ~repeat ~flags:(order, redundancy, hashcons)
       ~geo
       ~corpus:(corpus_abl, corpus_opt, corpus_speedup)
       ~pairs_speedup:(ratio pairs_abl pairs_opt)
       ~geo_programs ~divergences:!divergences ~rows ~ablation_rows
       ~parallel:parallel_fields ~portfolio:portfolio_json);
  if !divergences <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* Serving suite: petitd under concurrent load                         *)
(* ------------------------------------------------------------------ *)

(* The daemon's two claims, measured.  (1) Serving changes nothing:
   every payload that comes back over the socket is compared
   byte-for-byte against a fresh in-process run through the very
   payload builders the daemon uses.  (2) The shared verdict cache
   pays: the warm pass must report per-request memo hits on every
   request that does solver work at all.  [clients] threads each
   replay the corpus (analyze + parallelize per program) against an
   in-process server on a private Unix socket, twice - a cold pass on
   a fresh cache, then a warm pass on the heated one - and every
   request's latency lands in a per-client slot, aggregated to
   p50/p99 and throughput per pass. *)

type serve_sample = {
  sv_name : string;
  sv_op : string; (* "analyze" | "parallelize" *)
  sv_latency : float; (* seconds *)
  sv_payload : string; (* canonical rendering of the result payload *)
  sv_req_hits : int;
  sv_req_misses : int;
}

(* Nearest-rank percentile over an unsorted sample. *)
let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    List.nth sorted (max 0 (min (n - 1) rank))

let serve_programs ~smoke =
  if smoke then
    List.filter
      (fun (n, _) ->
        List.mem n [ "example1"; "example2"; "example4"; "temp_reuse"; "copyin" ])
      Corpus.all
  else Corpus.all

(* One pass: every client replays every program over its own
   connection.  Returns the per-client samples and the pass wall time;
   any transport error fails the bench. *)
let serve_pass path ~clients ~programs =
  let results = Array.make clients ([] : serve_sample list) in
  let errors = Array.make clients "" in
  let worker k () =
    match Client.connect (Protocol.Unix_path path) with
    | Error e -> errors.(k) <- "connect: " ^ e
    | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          try
            List.iter
              (fun (name, src) ->
                List.iter
                  (fun (op, req) ->
                    let t0 = Unix.gettimeofday () in
                    match Client.request c req with
                    | Error e -> failwith (Printf.sprintf "%s %s: %s" op name e)
                    | Ok resp -> (
                      let latency = Unix.gettimeofday () -. t0 in
                      match Client.result_payload resp with
                      | Error e ->
                        failwith (Printf.sprintf "%s %s: %s" op name e)
                      | Ok (payload, memo) ->
                        let hits, misses =
                          match memo with
                          | Some m ->
                            (m.Protocol.mr_req_hits, m.Protocol.mr_req_misses)
                          | None -> (0, 0)
                        in
                        results.(k) <-
                          {
                            sv_name = name;
                            sv_op = op;
                            sv_latency = latency;
                            sv_payload = Json.to_string payload;
                            sv_req_hits = hits;
                            sv_req_misses = misses;
                          }
                          :: results.(k)))
                  [
                    ( "analyze",
                      Protocol.Analyze
                        {
                          program = src;
                          in_bounds = false;
                          budget = Protocol.no_budget;
                          deadline_ms = None;
                        } );
                    ( "parallelize",
                      Protocol.Parallelize
                        {
                          program = src;
                          in_bounds = false;
                          budget = Protocol.no_budget;
                          deadline_ms = None;
                        } );
                  ])
              programs
          with Failure e -> errors.(k) <- e)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  Array.iteri
    (fun k e ->
      if e <> "" then (
        Printf.eprintf "serve bench: client %d: %s\n" k e;
        exit 1))
    errors;
  (Array.to_list results, wall)

let serve_pass_json ~samples ~wall =
  let lats = List.map (fun s -> s.sv_latency) samples in
  let n = List.length samples in
  Json.Obj
    [
      ("requests", Json.Int n);
      ("wall_ms", jf (ms wall));
      ("throughput_rps", jf (float_of_int n /. Float.max wall 1e-9));
      ("p50_ms", jf (ms (percentile 50. lats)));
      ("p99_ms", jf (ms (percentile 99. lats)));
      ( "mean_ms",
        jf (ms (List.fold_left ( +. ) 0. lats /. float_of_int (max 1 n))) );
      ( "req_memo_hits",
        Json.Int (List.fold_left (fun a s -> a + s.sv_req_hits) 0 samples) );
      ( "req_memo_misses",
        Json.Int (List.fold_left (fun a s -> a + s.sv_req_misses) 0 samples) );
    ]

let serve_suite ~smoke ~clients ~domains ~out () =
  section
    (Printf.sprintf
       "Serving: petitd, %d concurrent client%s replaying the corpus, cold \
        and warm%s%s"
       clients
       (if clients = 1 then "" else "s")
       (match domains with
       | Some n -> Printf.sprintf ", %d solver domain(s)" (max 1 n)
       | None -> "")
       (if smoke then ", smoke" else ""));
  let programs = serve_programs ~smoke in
  (* Fresh in-process expectations first: the server shares this
     process's verdict cache, so the baseline is computed before the
     daemon resets it, through the same payload builders. *)
  Analyses.Memo.reset ();
  let expected =
    List.concat_map
      (fun (name, src) ->
        let prog = Lang.Sema.analyze (Lang.Parser.parse_string src) in
        [
          ( (name, "analyze"),
            Json.to_string (Service.analyze_payload ~in_bounds:false prog) );
          ( (name, "parallelize"),
            Json.to_string (Service.parallelize_payload ~in_bounds:false prog)
          );
        ])
      programs
  in
  let path = Printf.sprintf "/tmp/petitd-bench-%d.sock" (Unix.getpid ()) in
  let config =
    let base = Server.default_config (Protocol.Unix_path path) in
    match domains with
    | Some n -> { base with Server.c_domains = max 1 n }
    | None -> base
  in
  let server = Server.start config in
  let sdomains = Service.domains (Server.service server) in
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf
      (fun s ->
        Printf.printf "VIOLATION: %s\n" s;
        violations := !violations @ [ s ])
      fmt
  in
  let check_payloads pass per_client =
    List.iteri
      (fun k samples ->
        List.iter
          (fun s ->
            match List.assoc_opt (s.sv_name, s.sv_op) expected with
            | Some e when e = s.sv_payload -> ()
            | Some _ ->
              violate "%s pass, client %d: %s %s diverges from in-process run"
                pass k s.sv_op s.sv_name
            | None -> assert false)
          samples)
      per_client
  in
  let stats_payload, cold_json, warm_json, cold_summary, warm_summary =
    Fun.protect
      ~finally:(fun () ->
        Server.stop server;
        Server.wait server;
        try Unix.unlink path with Unix.Unix_error _ -> ())
      (fun () ->
        let cold, cold_wall = serve_pass path ~clients ~programs in
        let warm, warm_wall = serve_pass path ~clients ~programs in
        check_payloads "cold" cold;
        check_payloads "warm" warm;
        (* Requests that did solver work cold must replay from the
           shared cache warm: hits > 0 on the matching warm request. *)
        let cold_traffic =
          List.filter_map
            (fun s ->
              if s.sv_req_hits + s.sv_req_misses > 0 then
                Some (s.sv_name, s.sv_op)
              else None)
            (List.concat cold)
        in
        List.iteri
          (fun k samples ->
            List.iter
              (fun s ->
                if
                  List.mem (s.sv_name, s.sv_op) cold_traffic
                  && s.sv_req_hits = 0
                then
                  violate "warm pass, client %d: %s %s reports no memo hits" k
                    s.sv_op s.sv_name)
              samples)
          warm;
        let stats =
          match Client.connect (Protocol.Unix_path path) with
          | Error e ->
            Printf.eprintf "serve bench: stats connect: %s\n" e;
            exit 1
          | Ok c ->
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                match Client.request c Protocol.Stats with
                | Ok resp -> (
                  match Client.result_payload resp with
                  | Ok (payload, _) -> payload
                  | Error e ->
                    Printf.eprintf "serve bench: stats: %s\n" e;
                    exit 1)
                | Error e ->
                  Printf.eprintf "serve bench: stats: %s\n" e;
                  exit 1)
        in
        let summary label samples wall =
          let lats = List.map (fun s -> s.sv_latency) samples in
          Printf.sprintf
            "%-5s %5d requests in %8.1f ms: %8.1f req/s, p50 %6.2f ms, p99 \
             %6.2f ms"
            label (List.length samples) (ms wall)
            (float_of_int (List.length samples) /. Float.max wall 1e-9)
            (ms (percentile 50. lats))
            (ms (percentile 99. lats))
        in
        let cold_all = List.concat cold and warm_all = List.concat warm in
        ( stats,
          serve_pass_json ~samples:cold_all ~wall:cold_wall,
          serve_pass_json ~samples:warm_all ~wall:warm_wall,
          summary "cold" cold_all cold_wall,
          summary "warm" warm_all warm_wall ))
  in
  print_endline cold_summary;
  print_endline warm_summary;
  let sound = !violations = [] in
  Printf.printf
    "%d programs x %d clients x 2 ops over %d solver domain(s); daemon \
     identical to in-process: %b\n"
    (List.length programs) clients sdomains sound;
  write_json ~out
    (Json.Obj
       [
         ("smoke", Json.Bool smoke);
         ("clients", Json.Int clients);
         ("domains", Json.Int sdomains);
         ("host_cores", Json.Int (Domain.recommended_domain_count ()));
         ("programs", Json.Int (List.length programs));
         ("cold", cold_json);
         ("warm", warm_json);
         ("daemon_stats", stats_payload);
         ("identical", Json.Bool sound);
         ("divergences", Json.List (List.map (fun v -> Json.Str v) !violations));
       ]);
  if not sound then exit 1

(* ------------------------------------------------------------------ *)
(* bench chaos: the daemon under a hostile client mix                  *)
(* ------------------------------------------------------------------ *)

(* A live petitd (tight caps, short read deadlines) serves a pool of
   well-behaved retrying clients while five hostile injectors run
   concurrently — slowloris trickles, mid-frame disconnects, malformed-
   frame floods, oversized frames, connection churn — on top of PR 4's
   deterministic solver fault injection.  The gates: well-behaved
   clients keep 100% request success with byte-identical payloads and a
   bounded p99, the daemon's health endpoint proves the protections
   actually fired (nonzero shed + reaped counts), every stalled
   connection is reaped, and shutdown drains an in-flight request while
   force-closing a stalled one.  Everything lands in BENCH_chaos.json;
   any violation exits 1. *)

(* Moderate-service-time programs only: the suite studies overload
   control, so service times must stay within the retry window — a
   multi-second outlier (cholsky under fault injection, with the memo
   bypassed) would turn the admission gate into legitimate starvation
   no polite retry schedule can ride out. *)
let chaos_programs ~smoke =
  let names =
    if smoke then [ "example1"; "example2"; "temp_reuse" ]
    else [ "example1"; "example2"; "example4"; "temp_reuse"; "copyin"; "lu" ]
  in
  List.filter (fun (n, _) -> List.mem n names) Corpus.all

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Wait for the server to close [fd]: EOF within [timeout] seconds.
   Any bytes that arrive first (e.g. an unsolicited Overloaded shed)
   are drained. *)
let rec wait_eof fd timeout =
  let t0 = Unix.gettimeofday () in
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> `Still_open
  | _ -> (
    match Unix.read fd (Bytes.create 256) 0 256 with
    | 0 -> `Reaped
    | _ -> wait_eof fd (Float.max 0.01 (timeout -. (Unix.gettimeofday () -. t0)))
    | exception Unix.Unix_error _ -> `Reaped)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_eof fd timeout

type chaos_injector = {
  ci_name : string;
  mutable ci_iterations : int;
  mutable ci_observed : int; (* injector-specific: reaps or sheds seen *)
  mutable ci_violations : string list;
}

(* slowloris: start a frame, trickle nothing, and demand the read
   deadline reaps us.  A connection still open after 6x the deadline is
   an unreaped stalled connection — a violation in its own right. *)
let run_slowloris path ~read_timeout_ms stop inj =
  while not (Atomic.get stop) do
    (match raw_connect path with
    | None -> Thread.delay 0.05
    | Some fd ->
      (try ignore (Unix.write_substring fd "\x00\x00" 0 2)
       with Unix.Unix_error _ -> ());
      (match wait_eof fd (6. *. read_timeout_ms /. 1000.) with
      | `Reaped -> inj.ci_observed <- inj.ci_observed + 1
      | `Still_open ->
        inj.ci_violations <-
          "slowloris connection not reaped by the read deadline"
          :: inj.ci_violations);
      close_quietly fd);
    inj.ci_iterations <- inj.ci_iterations + 1
  done

(* mid-frame disconnect: announce a frame, send a prefix, vanish. *)
let run_midframe path stop inj =
  while not (Atomic.get stop) do
    (match raw_connect path with
    | None -> ()
    | Some fd ->
      (try
         ignore (Unix.write_substring fd "\x00\x00\x03\xe8" 0 4);
         ignore (Unix.write_substring fd "0123456789" 0 10)
       with Unix.Unix_error _ -> ());
      close_quietly fd;
      inj.ci_iterations <- inj.ci_iterations + 1);
    Thread.delay 0.01
  done

(* malformed flood: syntactically valid frames of garbage JSON.  Paced
   to a few hundred per second — an unthrottled flood on a small host
   turns the bench into a CPU-starvation test of the harness itself
   rather than of the daemon's input handling. *)
let run_malformed path stop inj =
  while not (Atomic.get stop) do
    (match raw_connect path with
    | None -> Thread.delay 0.05
    | Some fd ->
      (try
         for _ = 1 to 20 do
           if not (Atomic.get stop) then begin
             Protocol.write_frame fd "this is not json {{{";
             (match Protocol.read_frame ~deadline:(Unix.gettimeofday () +. 1.)
                      ~max:Protocol.default_max_frame fd
              with
             | Ok _ -> inj.ci_iterations <- inj.ci_iterations + 1
             | Error _ -> raise Exit);
             Thread.delay 0.003
           end
         done
       with Exit | Unix.Unix_error _ -> ());
      close_quietly fd);
    Thread.delay 0.005
  done

(* oversized frames: over the server's cap but under the drain cap, so
   the server answers Frame_too_large and keeps the stream in sync. *)
let run_oversized path ~max_frame stop inj =
  let body = String.make (2 * max_frame) 'x' in
  while not (Atomic.get stop) do
    (match raw_connect path with
    | None -> Thread.delay 0.05
    | Some fd ->
      (try
         for _ = 1 to 3 do
           if not (Atomic.get stop) then begin
             Protocol.write_frame fd body;
             (match Protocol.read_frame ~deadline:(Unix.gettimeofday () +. 2.)
                      ~max:Protocol.default_max_frame fd
              with
             | Ok _ -> inj.ci_iterations <- inj.ci_iterations + 1
             | Error _ -> raise Exit);
             Thread.delay 0.005
           end
         done
       with Exit | Unix.Unix_error _ -> ());
      close_quietly fd);
    Thread.delay 0.01
  done

(* connection churn: bursts of simultaneous connections that push the
   daemon over its connection cap; sheds come back as unsolicited
   Overloaded responses, which we count.  Each connection is released
   right after its read so saturation stays a burst, not a blockade —
   well-behaved clients must be able to win a slot between bursts. *)
let run_churn path stop inj =
  while not (Atomic.get stop) do
    let fds = List.filter_map (fun _ -> raw_connect path) (List.init 12 Fun.id) in
    List.iter
      (fun fd ->
        inj.ci_iterations <- inj.ci_iterations + 1;
        (match
           Protocol.read_frame ~deadline:(Unix.gettimeofday () +. 0.02)
             ~max:Protocol.default_max_frame fd
         with
        | Ok payload -> (
          match Json.parse payload with
          | Ok j -> (
            match Protocol.decode_response j with
            | Ok (Protocol.Error_ { code = Protocol.Overloaded; _ }) ->
              inj.ci_observed <- inj.ci_observed + 1
            | _ -> ())
          | Error _ -> ())
        | Error _ -> ());
        close_quietly fd)
      fds;
    Thread.delay 0.3
  done

type chaos_client = {
  mutable cc_ok : int;
  mutable cc_failed : int;
  mutable cc_retries : int;
  mutable cc_injected : int; (* solver faults drawn inside our requests *)
  mutable cc_latencies : float list;
  mutable cc_violations : string list;
}

(* One well-behaved client: a retrying session replaying the corpus
   until the storm ends.  Every call must succeed (retries included)
   and every payload must match the in-process expectation byte for
   byte — overloads, reaps of its idle connection, and injected solver
   faults are all survivable by design. *)
let run_well_behaved path ~expected ~programs ~seed ~until cc =
  (* patient by design: under sustained genuine overload (demand above
     the admission gate, not just injector noise) a well-behaved client
     keeps backing off rather than giving up *)
  let policy =
    {
      Client.default_policy with
      Client.p_attempts = 24;
      p_base_ms = 10.;
      p_max_ms = 500.;
      p_retry_budget_ms = 60_000.;
      p_connect_timeout_ms = Some 2_000.;
      p_request_timeout_ms = Some 30_000.;
      p_seed = seed;
    }
  in
  let s = Client.open_session ~policy (Protocol.Unix_path path) in
  let govern_injected g =
    match Option.bind (Json.member "gave_up" g) (Json.member "injected") with
    | Some j -> Option.value (Json.to_int_opt j) ~default:0
    | None -> 0
  in
  while Unix.gettimeofday () < until do
    List.iter
      (fun (name, src) ->
        List.iter
          (fun (op, req) ->
            if Unix.gettimeofday () < until then begin
              (* a little think time: four zero-think closed loops
                 against a gate of two is sustained infeasible demand,
                 under which starving someone is correct shedding, not
                 a robustness bug *)
              Thread.delay 0.003;
              let t0 = Unix.gettimeofday () in
              match Client.call s req with
              | Error e ->
                cc.cc_failed <- cc.cc_failed + 1;
                cc.cc_violations <-
                  Printf.sprintf "well-behaved %s %s failed: %s" op name e
                  :: cc.cc_violations
              | Ok resp -> (
                cc.cc_latencies <-
                  (Unix.gettimeofday () -. t0) :: cc.cc_latencies;
                match resp with
                | Protocol.Result { payload; governance; _ } ->
                  cc.cc_ok <- cc.cc_ok + 1;
                  (match governance with
                  | Some g -> cc.cc_injected <- cc.cc_injected + govern_injected g
                  | None -> ());
                  let got = Json.to_string payload in
                  if List.assoc (name, op) expected <> got then
                    cc.cc_violations <-
                      Printf.sprintf
                        "well-behaved %s %s diverges from in-process run" op
                        name
                      :: cc.cc_violations
                | Protocol.Error_ e ->
                  cc.cc_failed <- cc.cc_failed + 1;
                  cc.cc_violations <-
                    Printf.sprintf "well-behaved %s %s refused: %s: %s" op
                      name
                      (Protocol.error_code_to_string e.code)
                      e.message
                    :: cc.cc_violations)
            end)
          [
            ( "analyze",
              Protocol.Analyze
                { program = src; in_bounds = false;
                  budget = Protocol.no_budget; deadline_ms = None } );
            ( "parallelize",
              Protocol.Parallelize
                { program = src; in_bounds = false;
                  budget = Protocol.no_budget; deadline_ms = None } );
          ])
      programs
  done;
  cc.cc_retries <- Client.session_retries s;
  Client.close_session s

let chaos_suite ~smoke ~out () =
  let duration = if smoke then 2.5 else 10. in
  let read_timeout_ms = 250. in
  let max_frame = 64 * 1024 in
  let drain_ms = 2_000. in
  let clients = 4 in
  let fault_seed = 1 and fault_rate = 0.05 in
  section
    (Printf.sprintf
       "Chaos: petitd under a hostile client mix for %.1f s (%d well-behaved \
        clients; slowloris / mid-frame / malformed / oversized / churn \
        injectors; solver faults seed %d rate %.2f)%s"
       duration clients fault_seed fault_rate
       (if smoke then ", smoke" else ""));
  let programs = chaos_programs ~smoke in
  (* Deterministic solver fault injection runs for the whole suite —
     faults are a pure function of (seed, query key), so the in-process
     expectations computed here under the same configuration match the
     daemon's answers byte for byte. *)
  Omega.Budget.set_fault_injection ~seed:fault_seed ~rate:fault_rate;
  Fun.protect ~finally:Omega.Budget.clear_fault_injection @@ fun () ->
  Analyses.Memo.reset ();
  let expected =
    List.concat_map
      (fun (name, src) ->
        let prog = Lang.Sema.analyze (Lang.Parser.parse_string src) in
        [
          ( (name, "analyze"),
            Json.to_string (Service.analyze_payload ~in_bounds:false prog) );
          ( (name, "parallelize"),
            Json.to_string (Service.parallelize_payload ~in_bounds:false prog)
          );
        ])
      programs
  in
  let path = Printf.sprintf "/tmp/petitd-chaos-%d.sock" (Unix.getpid ()) in
  let config =
    {
      (Server.default_config (Protocol.Unix_path path)) with
      Server.c_max_frame = max_frame;
      c_domains = 2;
      c_max_connections = 16;
      c_max_inflight = Some 2;
      c_read_timeout_ms = Some read_timeout_ms;
      c_drain_ms = drain_ms;
    }
  in
  let server = Server.start config in
  let stop = Atomic.make false in
  let injector name = { ci_name = name; ci_iterations = 0; ci_observed = 0;
                        ci_violations = [] } in
  let slowloris = injector "slowloris" in
  let midframe = injector "midframe_disconnect" in
  let malformed = injector "malformed_flood" in
  let oversized = injector "oversized_frames" in
  let churn = injector "connection_churn" in
  let injector_threads =
    [
      Thread.create (fun () -> run_slowloris path ~read_timeout_ms stop slowloris) ();
      Thread.create (fun () -> run_midframe path stop midframe) ();
      Thread.create (fun () -> run_malformed path stop malformed) ();
      Thread.create (fun () -> run_oversized path ~max_frame stop oversized) ();
      Thread.create (fun () -> run_churn path stop churn) ();
    ]
  in
  let until = Unix.gettimeofday () +. duration in
  let ccs =
    Array.init clients (fun _ ->
        { cc_ok = 0; cc_failed = 0; cc_retries = 0; cc_injected = 0;
          cc_latencies = []; cc_violations = [] })
  in
  let client_threads =
    List.init clients (fun k ->
        Thread.create
          (fun () ->
            run_well_behaved path ~expected ~programs ~seed:(100 + k) ~until
              ccs.(k))
          ())
  in
  List.iter Thread.join client_threads;
  Atomic.set stop true;
  List.iter Thread.join injector_threads;
  (* The storm is over; read the daemon's overload posture before
     shutting it down. *)
  let health =
    let s = Client.open_session (Protocol.Unix_path path) in
    Fun.protect
      ~finally:(fun () -> Client.close_session s)
      (fun () ->
        match Client.call s Protocol.Health with
        | Ok (Protocol.Result { payload; _ }) -> payload
        | Ok (Protocol.Error_ e) ->
          Printf.eprintf "chaos: health refused: %s\n" e.message;
          exit 1
        | Error e ->
          Printf.eprintf "chaos: health: %s\n" e;
          exit 1)
  in
  (* Graceful drain: one request in flight when shutdown lands must
     finish; one stalled raw connection must be force-closed; wait must
     return within the drain window (plus scheduling slack). *)
  let stalled = raw_connect path in
  let inflight_result = ref (Error "never ran") in
  let name, src = List.hd (List.rev programs) in
  let inflight_thread =
    Thread.create
      (fun () ->
        let s = Client.open_session (Protocol.Unix_path path) in
        inflight_result :=
          (match
             Client.call s
               (Protocol.Analyze
                  { program = src; in_bounds = false;
                    budget = Protocol.no_budget; deadline_ms = None })
           with
          | Ok (Protocol.Result { payload; _ }) -> Ok (Json.to_string payload)
          | Ok (Protocol.Error_ e) -> Error e.message
          | Error e -> Error e);
        Client.close_session s)
      ()
  in
  (* Wait until the daemon reports the request in flight (or solved:
     ok count moves) before pulling the plug. *)
  let rec await_inflight tries =
    if tries = 0 then ()
    else
      let s = Client.open_session (Protocol.Unix_path path) in
      let inflight =
        match Client.call s Protocol.Health with
        | Ok (Protocol.Result { payload; _ }) ->
          Option.value ~default:0
            (Option.bind (Json.member "in_flight" payload) Json.to_int_opt)
        | _ -> 0
      in
      Client.close_session s;
      if inflight = 0 && !inflight_result = Error "never ran" then begin
        Thread.delay 0.01;
        await_inflight (tries - 1)
      end
  in
  await_inflight 100;
  (let s = Client.open_session (Protocol.Unix_path path) in
   ignore (Client.call s Protocol.Shutdown);
   Client.close_session s);
  let wait_ms =
    let t0 = Unix.gettimeofday () in
    Server.wait server;
    ms (Unix.gettimeofday () -. t0)
  in
  Thread.join inflight_thread;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let stalled_closed =
    match stalled with
    | None -> false
    | Some fd ->
      let r = wait_eof fd 2. in
      close_quietly fd;
      r = `Reaped
  in
  (* ---- verdicts ---------------------------------------------------- *)
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf
      (fun s ->
        Printf.printf "VIOLATION: %s\n" s;
        violations := !violations @ [ s ])
      fmt
  in
  Array.iteri
    (fun k cc ->
      List.iter (fun v -> violate "client %d: %s" k v)
        (List.rev cc.cc_violations))
    ccs;
  List.iter
    (fun inj ->
      List.iter (fun v -> violate "%s: %s" inj.ci_name v)
        (List.rev inj.ci_violations))
    [ slowloris; midframe; malformed; oversized; churn ];
  let total_ok = Array.fold_left (fun a c -> a + c.cc_ok) 0 ccs in
  let total_failed = Array.fold_left (fun a c -> a + c.cc_failed) 0 ccs in
  let total_retries = Array.fold_left (fun a c -> a + c.cc_retries) 0 ccs in
  let total_injected = Array.fold_left (fun a c -> a + c.cc_injected) 0 ccs in
  let lats =
    Array.to_list ccs |> List.concat_map (fun c -> c.cc_latencies)
  in
  let p50 = ms (percentile 50. lats) and p99 = ms (percentile 99. lats) in
  if total_ok = 0 then violate "no well-behaved request completed";
  if total_failed > 0 then
    violate "%d well-behaved request(s) failed" total_failed;
  let health_int path_ =
    let rec go j = function
      | [] -> Option.value ~default:0 (Json.to_int_opt j)
      | k :: rest -> (
        match Json.member k j with Some j' -> go j' rest | None -> 0)
    in
    go health path_
  in
  let shed_requests = health_int [ "shed"; "requests" ] in
  let shed_conns = health_int [ "shed"; "connections" ] in
  let reaped = health_int [ "reaped" ] in
  if shed_requests + shed_conns = 0 then
    violate "no load was shed — the admission gate never fired";
  if reaped = 0 then
    violate "no connection was reaped — the read deadline never fired";
  if slowloris.ci_observed = 0 then
    violate "slowloris never observed a reap";
  let p99_bound = 10_000. in
  if p99 > p99_bound then
    violate "well-behaved p99 %.1f ms exceeds the %.0f ms bound" p99 p99_bound;
  (match !inflight_result with
  | Ok payload ->
    if List.assoc (name, "analyze") expected <> payload then
      violate "drain: in-flight analyze diverged from the in-process run"
  | Error e -> violate "drain: in-flight request failed: %s" e);
  if not stalled_closed then
    violate "drain: stalled connection was not force-closed";
  if wait_ms > drain_ms +. 3_000. then
    violate "drain took %.0f ms (budget %.0f + slack)" wait_ms drain_ms;
  let injector_json inj =
    ( inj.ci_name,
      Json.Obj
        [
          ("iterations", Json.Int inj.ci_iterations);
          ("observed", Json.Int inj.ci_observed);
        ] )
  in
  Printf.printf
    "well-behaved: %d ok, %d failed, %d retries, p50 %.2f ms, p99 %.2f ms\n"
    total_ok total_failed total_retries p50 p99;
  Printf.printf
    "daemon: shed %d requests + %d connections, reaped %d; injected solver \
     faults seen: %d\n"
    shed_requests shed_conns reaped total_injected;
  Printf.printf "drain: wait %.0f ms, in-flight ok: %b, stalled closed: %b\n"
    wait_ms
    (match !inflight_result with Ok _ -> true | Error _ -> false)
    stalled_closed;
  let sound = !violations = [] in
  Printf.printf "chaos verdict: %s\n"
    (if sound then "sound" else "VIOLATIONS");
  write_json ~out
    (Json.Obj
       [
         ("smoke", Json.Bool smoke);
         ("duration_s", jf duration);
         ("clients", Json.Int clients);
         ("programs", Json.Int (List.length programs));
         ("host_cores", Json.Int (Domain.recommended_domain_count ()));
         ( "config",
           Json.Obj
             [
               ("domains", Json.Int config.Server.c_domains);
               ("max_connections", Json.Int config.Server.c_max_connections);
               ( "max_inflight",
                 match config.Server.c_max_inflight with
                 | Some n -> Json.Int n
                 | None -> Json.Null );
               ("read_timeout_ms", jf read_timeout_ms);
               ("drain_ms", jf drain_ms);
               ("max_frame", Json.Int max_frame);
               ("fault_seed", Json.Int fault_seed);
               ("fault_rate", jf fault_rate);
             ] );
         ( "well_behaved",
           Json.Obj
             [
               ("ok", Json.Int total_ok);
               ("failed", Json.Int total_failed);
               ("retries", Json.Int total_retries);
               ("injected_gave_ups", Json.Int total_injected);
               ("p50_ms", jf p50);
               ("p99_ms", jf p99);
             ] );
         ( "injectors",
           Json.Obj
             (List.map injector_json
                [ slowloris; midframe; malformed; oversized; churn ]) );
         ("health", health);
         ( "drain",
           Json.Obj
             [
               ("wait_ms", jf wait_ms);
               ( "inflight_completed",
                 Json.Bool
                   (match !inflight_result with
                   | Ok _ -> true
                   | Error _ -> false) );
               ("stalled_closed", Json.Bool stalled_closed);
             ] );
         ("sound", Json.Bool sound);
         ("violations", Json.List (List.map (fun v -> Json.Str v) !violations));
       ]);
  if not sound then exit 1

(* ------------------------------------------------------------------ *)

let full_run () =
  (* the per-query timing figures must measure eliminations, not cache
     lookups — verdict memoization stays off except in its own ablation *)
  Analyses.Memo.enabled := false;
  let t0 = Unix.gettimeofday () in
  examples_table ();
  cholsky_tables ();
  let timings = pair_timings () in
  figure6_left timings;
  figure6_right ();
  figure7 timings;
  section5_table ();
  parallelization_table ();
  ablations ();
  bechamel_benches ();
  Printf.printf "\ntotal bench time: %.1f s\n" (Unix.gettimeofday () -. t0)

let () =
  match Array.to_list Sys.argv with
  | _ :: "speedup" :: rest ->
    let smoke = List.mem "--smoke" rest in
    let rec opt key = function
      | k :: v :: _ when k = key -> Some v
      | _ :: rest -> opt key rest
      | [] -> None
    in
    let domains = Option.map int_of_string (opt "--domains" rest) in
    let out = Option.value (opt "--out" rest) ~default:"BENCH_speedup.json" in
    let repeat =
      match Option.map int_of_string (opt "--repeat" rest) with
      | Some n -> max 1 n
      | None -> if smoke then 1 else 3
    in
    (match Option.value (opt "--backend" rest) ~default:"vm" with
    | "vm" -> speedup_vm_suite ~smoke ~domains ~repeat ~out ()
    | "interp" -> speedup_suite_interp ~smoke ~domains ~repeat ~out ()
    | b ->
      Printf.eprintf "unknown --backend %s (vm|interp)\n" b;
      exit 2)
  | _ :: "robustness" :: rest ->
    let rec opt key = function
      | k :: v :: _ when k = key -> Some v
      | _ :: rest -> opt key rest
      | [] -> None
    in
    let out =
      Option.value (opt "--out" rest) ~default:"BENCH_robustness.json"
    in
    let seeds =
      match opt "--seeds" rest with
      | None -> [ 1; 42 ]
      | Some s -> String.split_on_char ',' s |> List.map int_of_string
    in
    robustness_suite ~out ~seeds ()
  | _ :: "analysis" :: rest ->
    let smoke = List.mem "--smoke" rest in
    let rec opt key = function
      | k :: v :: _ when k = key -> Some v
      | _ :: rest -> opt key rest
      | [] -> None
    in
    let out = Option.value (opt "--out" rest) ~default:"BENCH_analysis.json" in
    let repeat =
      match Option.map int_of_string (opt "--repeat" rest) with
      | Some n -> max 1 n
      | None -> if smoke then 1 else 3
    in
    analysis_suite ~smoke ~repeat ~out
      ~order:(not (List.mem "--no-order" rest))
      ~redundancy:(not (List.mem "--no-redundancy" rest))
      ~hashcons:(not (List.mem "--no-hashcons" rest))
      ~domains:(Option.map int_of_string (opt "--domains" rest))
      ()
  | _ :: "serve" :: rest ->
    let smoke = List.mem "--smoke" rest in
    let rec opt key = function
      | k :: v :: _ when k = key -> Some v
      | _ :: rest -> opt key rest
      | [] -> None
    in
    let out = Option.value (opt "--out" rest) ~default:"BENCH_serve.json" in
    let clients =
      match Option.map int_of_string (opt "--clients" rest) with
      | Some n -> max 1 n
      | None -> 8
    in
    serve_suite ~smoke ~clients
      ~domains:(Option.map int_of_string (opt "--domains" rest))
      ~out ()
  | _ :: "chaos" :: rest ->
    let smoke = List.mem "--smoke" rest in
    let rec opt key = function
      | k :: v :: _ when k = key -> Some v
      | _ :: rest -> opt key rest
      | [] -> None
    in
    let out = Option.value (opt "--out" rest) ~default:"BENCH_chaos.json" in
    chaos_suite ~smoke ~out ()
  | _ :: [] | [] -> full_run ()
  | _ ->
    prerr_endline
      "usage: main.exe [speedup [--smoke] [--domains N] [--out FILE] \
       [--repeat N] [--backend vm|interp] | robustness [--out FILE] \
       [--seeds S1,S2] | analysis [--smoke] [--out FILE] [--repeat N] \
       [--domains N] [--no-order] [--no-redundancy] [--no-hashcons] | \
       serve [--smoke] [--clients N] [--domains N] [--out FILE] | \
       chaos [--smoke] [--out FILE]]";
    exit 2
