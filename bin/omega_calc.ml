(* omega_calc: a small constraint calculator over the Omega test, in the
   spirit of the calculator shipped with the original Omega library.

   Problems are conjunctions of (possibly chained) linear comparisons over
   named integer variables, e.g. "0 <= x <= 5 and y < x and x <= 5*y".

   Every subcommand evaluates through Serve.Calc — the same path the
   petitd daemon uses for omega_calc requests — so an answer here and an
   answer over the wire are structurally identical.  [--json] prints the
   daemon's result payload instead of the classic one-line rendering.

   Subcommands:
     sat "P"                       integer satisfiability
     project --onto x,y "P"        exact projection (may print a union)
     dark --onto x,y "P"           dark-shadow projection
     real --onto x,y "P"           real-shadow projection
     gist --given "Q" "P"          gist P given Q
     implies "P" "Q"               is P => Q a tautology?
     min --var x "P" / max --var x "P"                                  *)

open Cmdliner
open Omega

let with_errors f =
  try f () with
  | Budget.Exhausted r ->
    (* the calculator talks to the solver without a query boundary, so a
       blown budget surfaces here: report it as a structured give-up *)
    Printf.eprintf "gave up (%s)\n" (Budget.reason_to_string r);
    exit 2

(* Evaluate one calculator operation and print it, plain or as the
   daemon's JSON payload. *)
let emit json op =
  with_errors @@ fun () ->
  match Serve.Calc.eval op with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Ok r ->
    print_endline
      (if json then Serve.Json.to_string (Serve.Calc.result_json r)
       else Serve.Calc.result_plain r)

let problem_arg pos_idx docv =
  Arg.(required & pos pos_idx (some string) None & info [] ~docv)

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Print the result as JSON (the same payload a petitd daemon \
           returns for this query).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print solver statistics (eliminations, pruned constraints, \
           intern hits, portfolio-tier traffic) to stderr after the \
           query.")

let backend_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("omega", Portfolio.Omega);
             ("screen", Portfolio.Screen);
             ("cascade", Portfolio.Cascade);
           ])
        Portfolio.Cascade
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Decision-portfolio backend for sat/implies: $(b,cascade) \
           (incomplete screen first, then the complete procedure; the \
           default), $(b,omega) (complete only), or $(b,screen) (the \
           screen alone — undecided queries report [gave up]).")

(* Run [f] with fresh solver counters; report them on stderr when asked,
   so golden stdout output is untouched. *)
let with_stats stats f =
  Tuning.Stats.reset ();
  Portfolio.Stats.reset ();
  let r = f () in
  if stats then begin
    Printf.eprintf "solver: %s\n" (Tuning.Stats.summary ());
    Printf.eprintf "tiers (%s backend, attempts/decided): %s\n"
      (Portfolio.backend_to_string !Portfolio.backend)
      (Portfolio.Stats.summary ())
  end;
  r

let onto_arg =
  Arg.(
    required
    & opt (some (list string)) None
    & info [ "onto" ] ~docv:"VARS" ~doc:"Comma-separated variables to keep.")

let var_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "var" ] ~docv:"VAR" ~doc:"Objective variable.")

let sat_cmd =
  let run stats json backend src =
    Portfolio.backend := backend;
    with_stats stats @@ fun () -> emit json (Serve.Protocol.Sat src)
  in
  Cmd.v
    (Cmd.info "sat" ~doc:"Integer satisfiability of a conjunction.")
    Term.(
      const run $ stats_arg $ json_arg $ backend_arg
      $ problem_arg 0 "PROBLEM")

let projection_cmd name doc mode =
  let run stats json onto src =
    with_stats stats @@ fun () ->
    emit json (Serve.Protocol.Project { mode; onto; problem = src })
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ stats_arg $ json_arg $ onto_arg $ problem_arg 0 "PROBLEM")

let gist_cmd =
  let given_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "given" ] ~docv:"PROBLEM" ~doc:"What is already known.")
  in
  let run stats json given src =
    with_stats stats @@ fun () ->
    emit json (Serve.Protocol.Gist { problem = src; given })
  in
  Cmd.v
    (Cmd.info "gist"
       ~doc:"The new information in PROBLEM relative to --given.")
    Term.(const run $ stats_arg $ json_arg $ given_arg $ problem_arg 0 "PROBLEM")

let implies_cmd =
  let run stats json backend src1 src2 =
    Portfolio.backend := backend;
    with_stats stats @@ fun () ->
    emit json (Serve.Protocol.Implies (src1, src2))
  in
  Cmd.v
    (Cmd.info "implies" ~doc:"Is P => Q a tautology?")
    Term.(
      const run $ stats_arg $ json_arg $ backend_arg $ problem_arg 0 "P"
      $ problem_arg 1 "Q")

let opt_cmd name doc which =
  let run json var src =
    emit json (Serve.Protocol.Optimize { dir = which; var; problem = src })
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ json_arg $ var_arg $ problem_arg 0 "PROBLEM")

(* Quantified Presburger formulas (section 3.2), via Depend.Fparse. *)
let formula_cmd name doc which =
  let run src =
    with_errors @@ fun () ->
    match Depend.Fparse.formula_of_string src with
    | exception Depend.Fparse.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | f -> (
      match which with
      | `Valid ->
        print_endline (if Omega.Presburger.valid f then "valid" else "invalid")
      | `Sat ->
        print_endline
          (if Omega.Presburger.satisfiable f then "satisfiable"
           else "unsatisfiable"))
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ problem_arg 0 "FORMULA")

(* ------------------------------------------------------------------ *)
(* Interactive mode                                                     *)
(* ------------------------------------------------------------------ *)

(* A tiny command loop in the spirit of the calculator shipped with the
   original Omega library:

     > sat 0 <= x <= 5 and 2*x = 3
     > project x: 0 <= x <= 5 and y < x and x <= 5*y
     > gist x >= 0 and x <= 5 given x >= 3
     > implies 2 <= x <= 5 => x >= 0
     > min x: 2*x >= 3 and x <= 9                                      *)
let repl_eval (line : string) : unit =
  let line = String.trim line in
  if line = "" then ()
  else begin
    let split_kw kw str =
      (* split [str] at the first occurrence of the word [kw] *)
      let klen = String.length kw in
      let n = String.length str in
      let rec find i =
        if i + klen > n then None
        else if String.sub str i klen = kw then Some i
        else find (i + 1)
      in
      match find 0 with
      | Some i ->
        Some
          ( String.trim (String.sub str 0 i),
            String.trim (String.sub str (i + klen) (n - i - klen)) )
      | None -> None
    in
    let cmd, rest =
      match String.index_opt line ' ' with
      | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line i (String.length line - i)) )
      | None -> (line, "")
    in
    let show op =
      match Serve.Calc.eval op with
      | Ok r -> print_endline (Serve.Calc.result_plain r)
      | Error msg -> Printf.printf "error: %s\n" msg
    in
    let split_colon usage k =
      match String.index_opt rest ':' with
      | None -> print_endline usage
      | Some i ->
        k
          (String.trim (String.sub rest 0 i))
          (String.sub rest (i + 1) (String.length rest - i - 1))
    in
    match cmd with
    | "sat" -> show (Serve.Protocol.Sat rest)
    | "project" | "dark" | "real" ->
      split_colon "usage: project x,y: <constraints>" (fun names src ->
          let onto =
            String.split_on_char ',' names |> List.map String.trim
          in
          let mode =
            match cmd with
            | "project" -> `Exact
            | "dark" -> `Dark
            | _ -> `Real
          in
          show (Serve.Protocol.Project { mode; onto; problem = src }))
    | "gist" -> (
      match split_kw " given " rest with
      | None -> print_endline "usage: gist <constraints> given <constraints>"
      | Some (psrc, qsrc) ->
        show (Serve.Protocol.Gist { problem = psrc; given = qsrc }))
    | "implies" -> (
      match split_kw " => " rest with
      | None -> print_endline "usage: implies <constraints> => <constraints>"
      | Some (psrc, qsrc) -> show (Serve.Protocol.Implies (psrc, qsrc)))
    | "min" | "max" ->
      split_colon "usage: min x: <constraints>" (fun name src ->
          let dir = if cmd = "min" then `Min else `Max in
          show (Serve.Protocol.Optimize { dir; var = name; problem = src }))
    | "help" ->
      print_endline
        "commands: sat P | project VARS: P | dark VARS: P | real VARS: P |
        \          gist P given Q | implies P => Q | min VAR: P | max VAR: P |
        \          help | quit"
    | "quit" | "exit" -> raise Exit
    | other -> Printf.printf "unknown command %s (try 'help')\n" other
  end

let repl_cmd =
  let run backend =
    Portfolio.backend := backend;
    print_endline
      "omega_calc interactive mode; 'help' for commands, 'quit' to leave.";
    (try
       while true do
         print_string "> ";
         flush stdout;
         match In_channel.input_line stdin with
         | None -> raise Exit
         | Some line -> (
           try repl_eval line with
           | Budget.Exhausted r ->
             Printf.printf "gave up (%s)\n" (Budget.reason_to_string r))
       done
     with Exit -> ());
    print_endline "bye"
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive calculator loop.")
    Term.(const run $ backend_arg)

let () =
  let info =
    Cmd.info "omega_calc" ~version:"1.0"
      ~doc:"Constraint calculator over the extended Omega test."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            sat_cmd;
            projection_cmd "project" "Exact projection (may be a union)." `Exact;
            projection_cmd "dark" "Dark-shadow projection (under-approx)." `Dark;
            projection_cmd "real" "Real-shadow projection (over-approx)." `Real;
            gist_cmd;
            implies_cmd;
            opt_cmd "min" "Minimum of --var subject to the constraints." `Min;
            opt_cmd "max" "Maximum of --var subject to the constraints." `Max;
            formula_cmd "valid"
              "Validity of a quantified Presburger formula (free variables \
               universal)." `Valid;
            formula_cmd "psat"
              "Satisfiability of a quantified Presburger formula (free \
               variables existential)." `Sat;
            repl_cmd;
          ]))
