(* omega_calc: a small constraint calculator over the Omega test, in the
   spirit of the calculator shipped with the original Omega library.

   Problems are conjunctions of (possibly chained) linear comparisons over
   named integer variables, e.g. "0 <= x <= 5 and y < x and x <= 5*y".

   Subcommands:
     sat "P"                       integer satisfiability
     project --onto x,y "P"        exact projection (may print a union)
     dark --onto x,y "P"           dark-shadow projection
     real --onto x,y "P"           real-shadow projection
     gist --given "Q" "P"          gist P given Q
     implies "P" "Q"               is P => Q a tautology?
     min --var x "P" / max --var x "P"                                  *)

open Cmdliner
open Omega

(* Translate parsed conditions to a Problem, creating a variable per
   name. *)
let build_problem (conds : Lang.Ast.cond list list) :
    Problem.t list * (string * Var.t) list =
  let env : (string * Var.t) list ref = ref [] in
  let var name =
    match List.assoc_opt name !env with
    | Some v -> v
    | None ->
      let v = Var.fresh name in
      env := (name, v) :: !env;
      v
  in
  let rec expr (e : Lang.Ast.expr) : Linexpr.t =
    match e with
    | Lang.Ast.Int n -> Linexpr.of_int n
    | Lang.Ast.Name s -> Linexpr.var (var s)
    | Lang.Ast.Neg a -> Linexpr.neg (expr a)
    | Lang.Ast.Add (a, b) -> Linexpr.add (expr a) (expr b)
    | Lang.Ast.Sub (a, b) -> Linexpr.sub (expr a) (expr b)
    | Lang.Ast.Mul (a, b) -> (
      let ea = expr a and eb = expr b in
      if Linexpr.is_const ea then Linexpr.scale (Linexpr.constant ea) eb
      else if Linexpr.is_const eb then
        Linexpr.scale (Linexpr.constant eb) ea
      else failwith "non-linear product")
    | Lang.Ast.Max _ | Lang.Ast.Min _ | Lang.Ast.Ref _ ->
      failwith "max/min/array references are not allowed here"
  in
  let constr (c : Lang.Ast.cond) : Constr.t =
    let l = expr c.Lang.Ast.left and r = expr c.Lang.Ast.right in
    match c.Lang.Ast.op with
    | Lang.Ast.Eq -> Constr.eq2 l r
    | Lang.Ast.Le -> Constr.le l r
    | Lang.Ast.Lt -> Constr.lt l r
    | Lang.Ast.Ge -> Constr.ge l r
    | Lang.Ast.Gt -> Constr.gt l r
    | Lang.Ast.Ne -> failwith "!= is a disjunction; not allowed here"
  in
  let problems =
    List.map (fun cs -> Problem.of_list (List.map constr cs)) conds
  in
  (problems, !env)

let parse_problems (srcs : string list) =
  build_problem (List.map Lang.Parser.parse_conds_string srcs)

let with_errors f =
  try f () with
  | Lang.Parser.Error (msg, pos) ->
    Printf.eprintf "parse error at column %d: %s\n" pos.Lang.Ast.col msg;
    exit 1
  | Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Budget.Exhausted r ->
    (* the calculator talks to the solver without a query boundary, so a
       blown budget surfaces here: report it as a structured give-up *)
    Printf.eprintf "gave up (%s)\n" (Budget.reason_to_string r);
    exit 2

let problem_arg pos_idx docv =
  Arg.(required & pos pos_idx (some string) None & info [] ~docv)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print solver statistics (eliminations, pruned constraints, \
           intern hits) to stderr after the query.")

(* Run [f] with fresh solver counters; report them on stderr when asked,
   so golden stdout output is untouched. *)
let with_stats stats f =
  Tuning.Stats.reset ();
  let r = f () in
  if stats then Printf.eprintf "solver: %s\n" (Tuning.Stats.summary ());
  r

let onto_arg =
  Arg.(
    required
    & opt (some (list string)) None
    & info [ "onto" ] ~docv:"VARS" ~doc:"Comma-separated variables to keep.")

let var_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "var" ] ~docv:"VAR" ~doc:"Objective variable.")

let sat_cmd =
  let run stats src =
    with_errors @@ fun () ->
    with_stats stats @@ fun () ->
    let ps, _ = parse_problems [ src ] in
    let p = List.hd ps in
    print_endline (if Elim.satisfiable p then "satisfiable" else "unsatisfiable")
  in
  Cmd.v
    (Cmd.info "sat" ~doc:"Integer satisfiability of a conjunction.")
    Term.(const run $ stats_arg $ problem_arg 0 "PROBLEM")

let lookup_vars env names =
  List.map
    (fun n ->
      match List.assoc_opt n env with
      | Some v -> v
      | None -> failwith (Printf.sprintf "variable %s not in the problem" n))
    names

let projection_cmd name doc mode =
  let run stats onto src =
    with_errors @@ fun () ->
    with_stats stats @@ fun () ->
    let ps, env = parse_problems [ src ] in
    let p = List.hd ps in
    let vars = lookup_vars env onto in
    let keep v = List.exists (Var.equal v) vars in
    match mode with
    | `Exact ->
      let pieces = Elim.project ~keep p in
      if pieces = [] then print_endline "FALSE"
      else
        List.iteri
          (fun i q ->
            Printf.printf "%s%s\n"
              (if i > 0 then "union " else "")
              (Problem.to_string q))
          pieces
    | (`Dark | `Real) as m ->
      let f = match m with `Dark -> Elim.project_dark | `Real -> Elim.project_real in
      (match f ~keep p with
       | `Contra -> print_endline "FALSE"
       | `Ok q -> print_endline (Problem.to_string q))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ stats_arg $ onto_arg $ problem_arg 0 "PROBLEM")

let gist_cmd =
  let given_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "given" ] ~docv:"PROBLEM" ~doc:"What is already known.")
  in
  let run stats given src =
    with_errors @@ fun () ->
    with_stats stats @@ fun () ->
    let ps, _ = parse_problems [ src; given ] in
    match ps with
    | [ p; q ] -> (
      match Gist.gist p ~given:q with
      | Gist.Tautology -> print_endline "TRUE (implied by the given)"
      | Gist.False -> print_endline "FALSE (inconsistent with the given)"
      | Gist.Gist g -> print_endline (Problem.to_string g))
    | _ -> assert false
  in
  Cmd.v
    (Cmd.info "gist"
       ~doc:"The new information in PROBLEM relative to --given.")
    Term.(const run $ stats_arg $ given_arg $ problem_arg 0 "PROBLEM")

let implies_cmd =
  let run stats src1 src2 =
    with_errors @@ fun () ->
    with_stats stats @@ fun () ->
    let ps, _ = parse_problems [ src1; src2 ] in
    match ps with
    | [ p; q ] ->
      print_endline (if Gist.implies p q then "tautology" else "not a tautology")
    | _ -> assert false
  in
  Cmd.v
    (Cmd.info "implies" ~doc:"Is P => Q a tautology?")
    Term.(const run $ stats_arg $ problem_arg 0 "P" $ problem_arg 1 "Q")

let opt_cmd name doc which =
  let run var src =
    with_errors @@ fun () ->
    let ps, env = parse_problems [ src ] in
    let p = List.hd ps in
    let v = List.hd (lookup_vars env [ var ]) in
    let show = function
      | `Unsat -> print_endline "unsatisfiable"
      | `Unbounded -> print_endline "unbounded"
      | `Val x -> print_endline (Zint.to_string x)
    in
    match which with
    | `Min ->
      show
        (match Omega.minimize p v with
         | `Min x -> `Val x
         | `Unsat -> `Unsat
         | `Unbounded -> `Unbounded)
    | `Max ->
      show
        (match Omega.maximize p v with
         | `Max x -> `Val x
         | `Unsat -> `Unsat
         | `Unbounded -> `Unbounded)
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ var_arg $ problem_arg 0 "PROBLEM")

(* Quantified Presburger formulas (section 3.2), via Depend.Fparse. *)
let formula_cmd name doc which =
  let run src =
    with_errors @@ fun () ->
    match Depend.Fparse.formula_of_string src with
    | exception Depend.Fparse.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | f -> (
      match which with
      | `Valid ->
        print_endline (if Omega.Presburger.valid f then "valid" else "invalid")
      | `Sat ->
        print_endline
          (if Omega.Presburger.satisfiable f then "satisfiable"
           else "unsatisfiable"))
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ problem_arg 0 "FORMULA")

(* ------------------------------------------------------------------ *)
(* Interactive mode                                                     *)
(* ------------------------------------------------------------------ *)

(* A tiny command loop in the spirit of the calculator shipped with the
   original Omega library:

     > sat 0 <= x <= 5 and 2*x = 3
     > project x: 0 <= x <= 5 and y < x and x <= 5*y
     > gist x >= 0 and x <= 5 given x >= 3
     > implies 2 <= x <= 5 => x >= 0
     > min x: 2*x >= 3 and x <= 9                                      *)
let repl_eval (line : string) : unit =
  let line = String.trim line in
  if line = "" then ()
  else begin
    let split_kw kw str =
      (* split [str] at the first occurrence of the word [kw] *)
      let klen = String.length kw in
      let n = String.length str in
      let rec find i =
        if i + klen > n then None
        else if String.sub str i klen = kw then Some i
        else find (i + 1)
      in
      match find 0 with
      | Some i ->
        Some
          ( String.trim (String.sub str 0 i),
            String.trim (String.sub str (i + klen) (n - i - klen)) )
      | None -> None
    in
    let cmd, rest =
      match String.index_opt line ' ' with
      | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line i (String.length line - i)) )
      | None -> (line, "")
    in
    let parse1 src =
      let ps, env = parse_problems [ src ] in
      (List.hd ps, env)
    in
    match cmd with
    | "sat" ->
      let p, _ = parse1 rest in
      print_endline
        (if Elim.satisfiable p then "satisfiable" else "unsatisfiable")
    | "project" | "dark" | "real" -> (
      match String.index_opt rest ':' with
      | None -> print_endline "usage: project x,y: <constraints>"
      | Some i ->
        let names =
          String.sub rest 0 i |> String.split_on_char ','
          |> List.map String.trim
        in
        let src = String.sub rest (i + 1) (String.length rest - i - 1) in
        let p, env = parse1 src in
        let vars = lookup_vars env names in
        let keep v = List.exists (Var.equal v) vars in
        (match cmd with
         | "project" ->
           let pieces = Elim.project ~keep p in
           if pieces = [] then print_endline "FALSE"
           else
             List.iteri
               (fun i q ->
                 Printf.printf "%s%s
"
                   (if i > 0 then "union " else "")
                   (Problem.to_string q))
               pieces
         | _ ->
           let f = if cmd = "dark" then Elim.project_dark else Elim.project_real in
           (match f ~keep p with
            | `Contra -> print_endline "FALSE"
            | `Ok q -> print_endline (Problem.to_string q))))
    | "gist" -> (
      match split_kw " given " rest with
      | None -> print_endline "usage: gist <constraints> given <constraints>"
      | Some (psrc, qsrc) -> (
        let ps, _ = parse_problems [ psrc; qsrc ] in
        match ps with
        | [ p; q ] -> (
          match Gist.gist p ~given:q with
          | Gist.Tautology -> print_endline "TRUE (implied by the given)"
          | Gist.False -> print_endline "FALSE (inconsistent with the given)"
          | Gist.Gist g -> print_endline (Problem.to_string g))
        | _ -> assert false))
    | "implies" -> (
      match split_kw " => " rest with
      | None -> print_endline "usage: implies <constraints> => <constraints>"
      | Some (psrc, qsrc) -> (
        let ps, _ = parse_problems [ psrc; qsrc ] in
        match ps with
        | [ p; q ] ->
          print_endline
            (if Gist.implies p q then "tautology" else "not a tautology")
        | _ -> assert false))
    | "min" | "max" -> (
      match String.index_opt rest ':' with
      | None -> print_endline "usage: min x: <constraints>"
      | Some i ->
        let name = String.trim (String.sub rest 0 i) in
        let src = String.sub rest (i + 1) (String.length rest - i - 1) in
        let p, env = parse1 src in
        let v = List.hd (lookup_vars env [ name ]) in
        let show = function
          | `Unsat -> print_endline "unsatisfiable"
          | `Unbounded -> print_endline "unbounded"
          | `Val x -> print_endline (Zint.to_string x)
        in
        if cmd = "min" then
          show
            (match Omega.minimize p v with
             | `Min x -> `Val x
             | `Unsat -> `Unsat
             | `Unbounded -> `Unbounded)
        else
          show
            (match Omega.maximize p v with
             | `Max x -> `Val x
             | `Unsat -> `Unsat
             | `Unbounded -> `Unbounded))
    | "help" ->
      print_endline
        "commands: sat P | project VARS: P | dark VARS: P | real VARS: P |
        \          gist P given Q | implies P => Q | min VAR: P | max VAR: P |
        \          help | quit"
    | "quit" | "exit" -> raise Exit
    | other -> Printf.printf "unknown command %s (try 'help')
" other
  end

let repl_cmd =
  let run () =
    print_endline
      "omega_calc interactive mode; 'help' for commands, 'quit' to leave.";
    (try
       while true do
         print_string "> ";
         flush stdout;
         match In_channel.input_line stdin with
         | None -> raise Exit
         | Some line -> (
           try repl_eval line with
           | Lang.Parser.Error (msg, _) -> Printf.printf "parse error: %s
" msg
           | Failure msg -> Printf.printf "error: %s
" msg
           | Budget.Exhausted r ->
             Printf.printf "gave up (%s)
" (Budget.reason_to_string r))
       done
     with Exit -> ());
    print_endline "bye"
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive calculator loop.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "omega_calc" ~version:"1.0"
      ~doc:"Constraint calculator over the extended Omega test."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            sat_cmd;
            projection_cmd "project" "Exact projection (may be a union)." `Exact;
            projection_cmd "dark" "Dark-shadow projection (under-approx)." `Dark;
            projection_cmd "real" "Real-shadow projection (over-approx)." `Real;
            gist_cmd;
            implies_cmd;
            opt_cmd "min" "Minimum of --var subject to the constraints." `Min;
            opt_cmd "max" "Maximum of --var subject to the constraints." `Max;
            formula_cmd "valid"
              "Validity of a quantified Presburger formula (free variables \
               universal)." `Valid;
            formula_cmd "psat"
              "Satisfiability of a quantified Presburger formula (free \
               variables existential)." `Sat;
            repl_cmd;
          ]))
