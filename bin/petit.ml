(* petit: the analyzer CLI, our stand-in for Wolfe's tiny tool augmented
   with the extended Omega test.

   Subcommands:
     analyze FILE      full dependence analysis (Figures 3/4 style tables)
     deps FILE         standard dependences only (flow/anti/output)
     parallelize FILE  doall legality per loop, standard vs extended
     graph FILE        statement dependence graph (DOT or JSON)
     run FILE -s n=4   execute the program and print dynamic dependences
     corpus [NAME]     list bundled corpus programs / print one *)

open Cmdliner
open Depend

let load path =
  if Sys.file_exists path then Lang.Parser.parse_file path
  else
    (* convenience: corpus programs can be named directly *)
    Lang.Parser.parse_string (Corpus.find path)

let with_errors f =
  try f () with
  | Lang.Parser.Error (msg, pos) ->
    Printf.eprintf "parse error at line %d, column %d: %s\n" pos.Lang.Ast.line
      pos.Lang.Ast.col msg;
    exit 1
  | Lang.Sema.Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Program to analyze (a path or a corpus name).")

let in_bounds_arg =
  Arg.(
    value & flag
    & info [ "in-bounds" ]
        ~doc:"Assume all array references are within declared bounds.")

(* Per-query resource budgets (see DESIGN.md, "Resource governance").
   Exhaustion never aborts the analysis: the affected query reports
   [gave up] and its client falls back to the sound conservative
   answer.  The flags build a Protocol.budget_spec so the same values
   can ride a --connect request unchanged. *)
let budget_spec_term =
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Elimination-step budget per solver query.")
  in
  let splinters_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "splinters" ] ~docv:"N"
          ~doc:"Splinter-problem budget per solver query.")
  in
  let disjuncts_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "disjuncts" ] ~docv:"N"
          ~doc:"DNF-disjunct budget per Presburger formula.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Wall-clock deadline per solver query, in milliseconds.")
  in
  let make b_fuel b_splinters b_disjuncts b_deadline_ms =
    { Serve.Protocol.b_fuel; b_splinters; b_disjuncts; b_deadline_ms }
  in
  Term.(
    const make $ fuel_arg $ splinters_arg $ disjuncts_arg $ deadline_arg)

(* A local run honors the flags verbatim (they may exceed the default,
   unlike a daemon request, which is clamped to the daemon's quota). *)
let limits_of_spec (s : Serve.Protocol.budget_spec) =
  let d = Omega.Budget.default in
  {
    Omega.Budget.fuel =
      Option.value s.Serve.Protocol.b_fuel ~default:d.Omega.Budget.fuel;
    splinters =
      Option.value s.Serve.Protocol.b_splinters
        ~default:d.Omega.Budget.splinters;
    disjuncts =
      Option.value s.Serve.Protocol.b_disjuncts
        ~default:d.Omega.Budget.disjuncts;
    deadline_ms =
      (match s.Serve.Protocol.b_deadline_ms with
      | Some _ as d -> d
      | None -> d.Omega.Budget.deadline_ms);
  }

let with_budget limits f =
  Omega.Budget.Telemetry.reset ();
  Omega.Budget.with_limits limits f

(* The whole-request wall deadline (distinct from the per-query budget
   deadline): locally it is installed in the solver's budget world, so
   every query's meter enforces the remaining time; over --connect it
   rides the request for the daemon to do the same. *)
let with_wall deadline_ms f =
  match deadline_ms with
  | None -> f ()
  | Some ms ->
    Omega.Budget.with_wall_deadline
      (Some (Unix.gettimeofday () +. (ms /. 1000.)))
      f

let print_governance () =
  Printf.printf "governance: %s\n" (Omega.Budget.Telemetry.summary ())

(* ------------------------------------------------------------------ *)
(* Daemon client mode                                                  *)
(* ------------------------------------------------------------------ *)

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Print the result as JSON — the same payload a petitd daemon \
           returns for this request.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:
          "Send the request to a running petitd at ADDR (a Unix-socket \
           path or host:port) instead of analyzing in-process.  Implies \
           JSON output.")

let request_deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "request-deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock deadline for the whole request (all queries \
           together), distinct from $(b,--deadline-ms)'s per-query bound.  \
           Queries started late degrade to [gave up] under the remaining \
           time; with $(b,--connect) the daemon enforces it server-side.")

let source file =
  if Sys.file_exists file then
    In_channel.with_open_bin file In_channel.input_all
  else Corpus.find file

(* Daemon calls go through a retrying session: connect/request
   timeouts, reconnect, and jittered backoff on idempotent failures
   (overload sheds, connect errors, clean closes before any response
   byte).  The policy is tunable from the environment so scripts can
   harden or soften retries without new flags:
     PETIT_RETRIES             total attempts       (default 5)
     PETIT_RETRY_BASE_MS       backoff base         (default 25)
     PETIT_CONNECT_TIMEOUT_MS  TCP connect bound    (default 5000)
     PETIT_REQUEST_TIMEOUT_MS  per-request bound    (default 60000) *)
let client_policy () =
  let env_int name =
    Option.bind (Sys.getenv_opt name) int_of_string_opt
  in
  let env_float name =
    Option.bind (Sys.getenv_opt name) float_of_string_opt
  in
  let d = Serve.Client.default_policy in
  {
    d with
    Serve.Client.p_attempts =
      (match env_int "PETIT_RETRIES" with
      | Some n -> max 1 n
      | None -> d.Serve.Client.p_attempts);
    p_base_ms =
      Option.value
        (env_float "PETIT_RETRY_BASE_MS")
        ~default:d.Serve.Client.p_base_ms;
    p_connect_timeout_ms =
      (match env_float "PETIT_CONNECT_TIMEOUT_MS" with
      | Some ms when ms > 0. -> Some ms
      | Some _ -> None
      | None -> d.Serve.Client.p_connect_timeout_ms);
    p_request_timeout_ms =
      (match env_float "PETIT_REQUEST_TIMEOUT_MS" with
      | Some ms when ms > 0. -> Some ms
      | Some _ -> None
      | None -> d.Serve.Client.p_request_timeout_ms);
  }

let daemon_request addr req =
  let fail msg =
    Printf.eprintf "error: %s\n" msg;
    exit 1
  in
  match Serve.Protocol.addr_of_string addr with
  | Error msg -> fail msg
  | Ok a ->
    let s = Serve.Client.open_session ~policy:(client_policy ()) a in
    let r = Serve.Client.call s req in
    Serve.Client.close_session s;
    (match r with Error msg -> fail msg | Ok resp -> resp)

(* Payload on stdout (diffable against a local --json run), cache
   telemetry on stderr. *)
let print_daemon_result resp =
  let open Serve.Protocol in
  match Serve.Client.result_payload resp with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Ok (payload, memo) ->
    print_endline (Serve.Json.pretty payload);
    (match memo with
    | Some m ->
      Printf.eprintf
        "memo: this request %d hit(s), %d miss(es); daemon lifetime %d \
         hit(s), %d miss(es), %d/%d entries, %d evicted\n"
        m.mr_req_hits m.mr_req_misses m.mr_hits m.mr_misses m.mr_size
        m.mr_capacity m.mr_evictions
    | None -> ())

let analyze_domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Shard the dependence analysis across $(docv) OCaml domains \
           (default 1: serial).  Verdicts are bit-identical to a serial \
           run; only wall-clock changes.")

let solver_backend_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("omega", Omega.Portfolio.Omega);
             ("screen", Omega.Portfolio.Screen);
             ("cascade", Omega.Portfolio.Cascade);
           ])
        Omega.Portfolio.Cascade
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Decision-portfolio backend: $(b,cascade) (incomplete screen, \
           then dark-shadow fast path, then complete Presburger; the \
           default), $(b,omega) (fast path + complete, no screen), or \
           $(b,screen) (the O(constraints) screen alone — undecided \
           queries give up, conservatively).  Verdict-preserving except \
           for $(b,screen)'s extra give-ups.")

let analyze_cmd =
  let run file in_bounds spec deadline json connect domains backend =
    Omega.Portfolio.backend := backend;
    (match domains with
    | Some n -> Par.set_domains n
    | None -> ());
    match connect with
    | Some addr ->
      print_daemon_result
        (daemon_request addr
           (Serve.Protocol.Analyze
              { program = source file; in_bounds; budget = spec;
                deadline_ms = deadline }))
    | None when json ->
      with_errors @@ fun () ->
      with_budget (limits_of_spec spec) @@ fun () ->
      with_wall deadline @@ fun () ->
      let prog = Lang.Sema.analyze (load file) in
      Analyses.Memo.reset ();
      print_endline
        (Serve.Json.pretty (Serve.Service.analyze_payload ~in_bounds prog))
    | None ->
    with_errors @@ fun () ->
    with_budget (limits_of_spec spec) @@ fun () ->
    with_wall deadline @@ fun () ->
    let prog = Lang.Sema.analyze (load file) in
    Omega.Portfolio.Stats.reset ();
    Analyses.Memo.reset ();
    Omega.Tuning.Stats.reset ();
    let result = Driver.analyze ~in_bounds prog in
    print_string "Live flow dependences:\n";
    print_string (Driver.render_flow_table (Driver.live_flows result));
    print_string "\nDead flow dependences:\n";
    print_string (Driver.render_flow_table (Driver.dead_flows result));
    Printf.printf "\nOutput dependences:\n";
    List.iter
      (fun d -> Printf.printf "  %s\n" (Deps.dep_to_string d))
      result.Driver.outputs;
    Printf.printf "\nAnti dependences:\n";
    List.iter
      (fun d -> Printf.printf "  %s\n" (Deps.dep_to_string d))
      result.Driver.antis;
    (* the section 4.5 / 4.7 claim, visible on every run: most kill, cover
       and refinement questions are settled by the cheap tiers without
       consulting the complete Omega test *)
    Printf.printf "\ntiers (%s backend, attempts/decided): %s\n"
      (Omega.Portfolio.backend_to_string !Omega.Portfolio.backend)
      (Omega.Portfolio.Stats.summary ());
    let m = Analyses.Memo.stats in
    Printf.printf
      "memo: %d distinct problems, %d cache hits (%.0f%% hit rate; by \
       tier: %d screen, %d fast, %d complete), %d/%d entries held, %d \
       evicted\n"
      m.Analyses.Memo.misses m.Analyses.Memo.hits
      (100. *. Analyses.Memo.hit_rate ())
      m.Analyses.Memo.hits_screen m.Analyses.Memo.hits_fast
      m.Analyses.Memo.hits_complete
      (Analyses.Memo.size ()) !Analyses.Memo.capacity
      m.Analyses.Memo.evictions;
    Printf.printf "solver: %s\n" (Omega.Tuning.Stats.summary ());
    print_governance ()
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Full analysis: flow dependences classified live/dead with \
          refinement, covering and killing.")
    Term.(
      const run $ file_arg $ in_bounds_arg $ budget_spec_term
      $ request_deadline_arg $ json_arg $ connect_arg $ analyze_domains_arg
      $ solver_backend_arg)

let parallelize_cmd =
  let oracle_arg =
    Arg.(
      value & flag
      & info [ "oracle" ]
          ~doc:
            "Execute the program and confirm every extended-analysis doall \
             claim against the dynamic dependences.")
  in
  let syms_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string int) []
      & info [ "s"; "sym" ] ~docv:"NAME=VALUE"
          ~doc:
            "Symbolic-constant value for the oracle run (repeatable; \
             defaults to an automatic search).")
  in
  let exec_arg =
    Arg.(
      value & flag
      & info [ "exec" ]
          ~doc:
            "Execute the program three ways (serial, standard-plan parallel, \
             extended-plan parallel over OCaml domains), check the final \
             array states are identical, and report wall-clock speedups.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Domain-pool size for --exec (default: \
             Domain.recommended_domain_count).")
  in
  let backend_arg =
    Arg.(
      value
      & opt (enum [ ("interp", `Interp); ("vm", `Vm) ]) `Interp
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Execution backend for --exec: the tracing interpreter with \
             overlay stores ($(b,interp)), or compiled bytecode over a flat \
             arena with slab privatization ($(b,vm)).")
  in
  let run file in_bounds spec deadline json connect oracle exec backend
      domains syms =
    (match connect with
    | Some addr ->
      if oracle || exec then begin
        prerr_endline
          "error: --oracle and --exec run programs locally and cannot be \
           combined with --connect";
        exit 1
      end;
      print_daemon_result
        (daemon_request addr
           (Serve.Protocol.Parallelize
              { program = source file; in_bounds; budget = spec;
                deadline_ms = deadline }));
      exit 0
    | None -> ());
    if json then begin
      if oracle || exec then begin
        prerr_endline "error: --json covers the analysis report only; drop \
                       --oracle/--exec";
        exit 1
      end;
      with_errors (fun () ->
          with_budget (limits_of_spec spec) @@ fun () ->
          with_wall deadline @@ fun () ->
          let prog = Lang.Sema.analyze (load file) in
          Analyses.Memo.reset ();
          print_endline
            (Serve.Json.pretty
               (Serve.Service.parallelize_payload ~in_bounds prog)));
      exit 0
    end;
    with_errors @@ fun () ->
    with_budget (limits_of_spec spec) @@ fun () ->
    with_wall deadline @@ fun () ->
    let prog = Lang.Sema.analyze (load file) in
    let g = Xform.Graph.build ~in_bounds prog in
    let vs = Xform.Parallel.analyze g in
    print_string (Xform.Parallel.render_report vs);
    print_newline ();
    print_string (Xform.Emit.annotate g vs);
    print_governance ();
    if exec then begin
      let syms =
        if syms <> [] then Some syms
        else Xform.Oracle.pick_syms ~candidates:[ 60; 30; 10; 5; 4; 3; 2; 1 ] prog
      in
      match syms with
      | None ->
        prerr_endline
          "exec: no symbolic-constant assignment satisfies the assumptions";
        exit 1
      | Some syms -> (
        let init _ idx =
          List.fold_left (fun h i -> (h * 31) + i + 17) 7 idx
        in
        let time f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (r, (Unix.gettimeofday () -. t0) *. 1000.)
        in
        match time (fun () -> Xform.Exec.run_serial ~init prog ~syms) with
        | exception Lang.Interp.Runtime_error msg ->
          Printf.printf "\nexec: program not executable (%s)\n" msg
        | serial, t_serial ->
          Xform.Exec.with_pool ?size:domains @@ fun pool ->
          Printf.printf "\nexec (%s; %d domain%s; %s backend):\n"
            (String.concat ", "
               (List.map (fun (s, v) -> Printf.sprintf "%s=%d" s v) syms))
            (Xform.Exec.pool_size pool)
            (if Xform.Exec.pool_size pool = 1 then "" else "s")
            (match backend with `Interp -> "interpreter" | `Vm -> "vm");
          Printf.printf "  serial    %8.2f ms  (interpreter)\n" t_serial;
          let mismatch = ref false in
          (match backend with
          | `Interp ->
            List.iter
              (fun (label, side) ->
                let pl = Xform.Exec.plan side vs in
                let (mem, stats), t =
                  time (fun () ->
                      Xform.Exec.run_parallel ~pool ~init pl prog ~syms)
                in
                let ok = Xform.Exec.equal_mem serial mem in
                if not ok then mismatch := true;
                Printf.printf
                  "  %-9s %8.2f ms  (x%.2f, %d doall loop(s), %d region(s), \
                   final state %s)\n"
                  label t
                  (t_serial /. t)
                  (Xform.Exec.doall_count pl)
                  stats.Xform.Exec.x_regions
                  (if ok then "identical" else "DIFFERS");
                if not ok then
                  Printf.printf "    %s\n"
                    (Xform.Exec.diff_string
                       (Xform.Exec.diff_mem serial mem)))
              [ ("std plan", Xform.Exec.Std); ("ext plan", Xform.Exec.Ext) ]
          | `Vm -> (
            match
              time (fun () -> Xform.Exec.run_serial_vm ~init prog ~syms)
            with
            | exception Lang.Compile.Unsupported what ->
              Printf.printf
                "  vm: not compilable (%s is opaque) — use the interpreter \
                 backend\n"
                what
            | tvm, t_vm ->
              let ok = Lang.Vm.check_against ~init tvm serial = [] in
              if not ok then mismatch := true;
              Printf.printf
                "  serial vm %8.2f ms  (x%.2f vs interpreter, %d-cell arena, \
                 final state %s)\n"
                t_vm (t_serial /. t_vm)
                (Lang.Vm.unit_ tvm).Lang.Compile.u_arena
                (if ok then "identical" else "DIFFERS");
              List.iter
                (fun (label, side) ->
                  let pl = Xform.Exec.plan side vs in
                  let u = Xform.Exec.compile_plan pl prog ~syms in
                  let (tpar, stats), t =
                    time (fun () ->
                        Xform.Exec.run_compiled_vm ~pool ~init u)
                  in
                  let ok = Lang.Vm.equal_state tvm tpar in
                  if not ok then mismatch := true;
                  Printf.printf
                    "  %-9s %8.2f ms  (x%.2f, %d doall loop(s), %d region(s), \
                     %d inlined, final state %s)\n"
                    label t (t_vm /. t)
                    (Xform.Exec.doall_count pl)
                    stats.Xform.Exec.x_regions stats.Xform.Exec.x_inline
                    (if ok then "identical" else "DIFFERS");
                  if not ok then
                    Printf.printf "    %s\n"
                      (Lang.Vm.diff_string
                         (Lang.Vm.check_against ~init tpar serial)))
                [ ("std plan", Xform.Exec.Std); ("ext plan", Xform.Exec.Ext) ]));
          if !mismatch then exit 1)
    end;
    if oracle then begin
      let syms = if syms = [] then None else Some syms in
      match Xform.Oracle.check ?syms g vs with
      | Xform.Oracle.No_assignment ->
        prerr_endline
          "oracle: no symbolic-constant assignment satisfies the assumptions";
        exit 1
      | Xform.Oracle.Not_executable msg ->
        Printf.printf "\noracle: program not executable (%s)\n" msg
      | Xform.Oracle.Report r ->
        Printf.printf
          "\noracle: %d doall claim(s) checked against %d events (%s): %s\n"
          r.Xform.Oracle.o_checked r.Xform.Oracle.o_events
          (if r.Xform.Oracle.o_syms = [] then "no symbolics"
           else
             String.concat ", "
               (List.map
                  (fun (s, v) -> Printf.sprintf "%s=%d" s v)
                  r.Xform.Oracle.o_syms))
          (if r.Xform.Oracle.o_violations = [] then "confirmed"
           else "VIOLATED");
        List.iter
          (fun (v : Xform.Oracle.violation) ->
            Printf.printf "  loop %s: %s\n"
              (Xform.Parallel.loop_path v.Xform.Oracle.o_loop)
              v.Xform.Oracle.o_what)
          r.Xform.Oracle.o_violations;
        if r.Xform.Oracle.o_violations <> [] then exit 1
    end
  in
  Cmd.v
    (Cmd.info "parallelize"
       ~doc:
         "Per-loop doall legality, standard vs extended analysis, with the \
          annotated program.")
    Term.(
      const run $ file_arg $ in_bounds_arg $ budget_spec_term
      $ request_deadline_arg $ json_arg
      $ connect_arg $ oracle_arg $ exec_arg $ backend_arg $ domains_arg
      $ syms_arg)

let graph_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("dot", `Dot); ("json", `Json) ]) `Dot
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: dot or json.")
  in
  let run file in_bounds format =
    with_errors @@ fun () ->
    let prog = Lang.Sema.analyze (load file) in
    let g = Xform.Graph.build ~in_bounds prog in
    print_string
      (match format with
      | `Dot -> Xform.Graph.to_dot g
      | `Json -> Xform.Graph.to_json g)
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Statement-level dependence graph with live/dead edges, as DOT or \
          JSON.")
    Term.(const run $ file_arg $ in_bounds_arg $ format_arg)

let deps_cmd =
  let run file in_bounds =
    with_errors @@ fun () ->
    let prog = Lang.Sema.analyze (load file) in
    let ctx = Depctx.create prog in
    List.iter
      (fun kind ->
        Printf.printf "%s dependences:\n" (Deps.kind_to_string kind);
        List.iter
          (fun d -> Printf.printf "  %s\n" (Deps.dep_to_string d))
          (Deps.all ~in_bounds ctx kind))
      [ Deps.Flow; Deps.Anti; Deps.Output ]
  in
  Cmd.v
    (Cmd.info "deps" ~doc:"Standard dependence analysis only (no kills).")
    Term.(const run $ file_arg $ in_bounds_arg)

let syms_arg =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string int) []
    & info [ "s"; "sym" ] ~docv:"NAME=VALUE"
        ~doc:"Value for a symbolic constant (repeatable).")

let run_cmd =
  let run file syms =
    with_errors @@ fun () ->
    let prog = Lang.Sema.analyze (load file) in
    let trace = Lang.Interp.run prog ~syms in
    Printf.printf "%d events\n" (List.length trace.Lang.Interp.events);
    let show title deps =
      Printf.printf "%s (%d):\n" title (List.length deps);
      List.iter
        (fun d -> Format.printf "  %a@." Lang.Interp.pp_dep d)
        deps
    in
    show "dynamic value-based flow dependences"
      (Lang.Interp.value_flow_deps trace);
    show "dynamic memory-based flow dependences"
      (Lang.Interp.memory_deps trace `Flow)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute the program and print its dynamic dependences.")
    Term.(const run $ file_arg $ syms_arg)

let disasm_cmd =
  let run file syms paranoid =
    with_errors @@ fun () ->
    let ast = load file in
    Lang.Opt.all_on ();
    let ast', xr = Xform.Restructure.optimize ast in
    let prog = Lang.Sema.analyze ast' in
    let syms =
      match syms with
      | [] -> (
        (* no -s given: search for workable symbol values *)
        match
          Xform.Oracle.pick_syms ~candidates:[ 10; 8; 6; 5; 4; 3; 2; 1 ] prog
        with
        | Some s -> s
        | None -> [])
      | s -> s
    in
    List.iter (fun (n, v) -> Printf.printf ";; sym %s = %d\n" n v) syms;
    Printf.printf
      ";; restructuring: %d loop pair(s) fused, %d nest(s) interchanged, %d \
       dead store(s) deleted\n"
      xr.Xform.Restructure.x_fused xr.Xform.Restructure.x_interchanged
      xr.Xform.Restructure.x_killed;
    if
      xr.Xform.Restructure.x_fused > 0
      || xr.Xform.Restructure.x_interchanged > 0
      || xr.Xform.Restructure.x_killed > 0
    then begin
      print_endline ";; restructured source:";
      print_string (Lang.Ast.program_to_string ast')
    end;
    let u0 = Lang.Compile.program prog ~syms in
    let u, rep = Lang.Opt.optimize ~paranoid u0 in
    let size u =
      Array.fold_left
        (fun n (r : Lang.Compile.region) ->
          n + Array.length r.rg_serial + Array.length r.rg_par)
        (Array.length u.Lang.Compile.u_main)
        u.Lang.Compile.u_regions
    in
    let counts u =
      List.iter
        (fun (m, c) -> Printf.printf ";;   %-8s %4d\n" m c)
        (Lang.Opt.static_counts u)
    in
    Printf.printf "\n;; unoptimized bytecode (%d instructions)\n" (size u0);
    print_string (Lang.Compile.disasm u0);
    print_endline ";; static opcode counts:";
    counts u0;
    Printf.printf
      "\n\
       ;; optimized bytecode (%d instructions): %d bounds check(s) elided, %d \
       instruction(s) fused away, %d immediate back-edge(s)%s\n"
      (size u) rep.Lang.Opt.r_elided rep.Lang.Opt.r_fused rep.Lang.Opt.r_loopi
      (if paranoid then ", paranoid re-checks planted" else "");
    print_string (Lang.Compile.disasm u);
    print_endline ";; static opcode counts:";
    counts u;
    if rep.Lang.Opt.r_proofs <> [] then begin
      print_endline ";; elision proofs:";
      List.iter
        (fun p -> Printf.printf ";;   %s\n" (Lang.Opt.proof_string p))
        rep.Lang.Opt.r_proofs;
      match Lang.Opt.check_proofs u0 rep with
      | [] -> ()
      | viols ->
        List.iter (Printf.printf ";; PROOF VIOLATION: %s\n") viols;
        exit 1
    end
  in
  let paranoid_arg =
    Arg.(
      value & flag
      & info [ "paranoid" ]
          ~doc:
            "Plant an assertion in front of every register-addressed \
             unchecked access (the elision debug mode).")
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:
         "Compile through the optimizer and print the unoptimized and \
          optimized bytecode with per-opcode static counts and elision \
          proofs.")
    Term.(const run $ file_arg $ syms_arg $ paranoid_arg)

let restraint_conv : Depend.Symbolic.restraint Arg.conv =
  let parse s =
    try
      Ok
        (String.split_on_char ',' s
        |> List.map (fun tok ->
               match String.trim tok with
               | "+" -> Dirvec.Pos
               | "-" -> Dirvec.Neg
               | "0" -> Dirvec.Zero
               | "0+" -> Dirvec.NonNeg
               | "0-" -> Dirvec.NonPos
               | "*" -> Dirvec.Any
               | t -> failwith t))
    with Failure t -> Error (`Msg (Printf.sprintf "bad restraint sign %S" t))
  in
  let print fmt r =
    Format.pp_print_string fmt
      (String.concat ","
         (List.map
            (fun s -> Dirvec.entry_to_string { Dirvec.sign = s; lo = None; hi = None })
            r))
  in
  Arg.conv (parse, print)

let symbolic_cmd =
  let src_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "src" ] ~docv:"LABEL" ~doc:"Label of the source (write) statement.")
  in
  let dst_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "dst" ] ~docv:"LABEL" ~doc:"Label of the destination statement.")
  in
  let restraint_arg =
    Arg.(
      value
      & opt (some restraint_conv) None
      & info [ "restraint" ] ~docv:"SIGNS"
          ~doc:"Restraint vector, e.g. '+,*' or '0,+'. Defaults to all '*'.")
  in
  let hide_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "hide" ] ~docv:"SYMS"
          ~doc:"Symbolic constants to project away from the condition.")
  in
  let induction_arg =
    Arg.(
      value & flag
      & info [ "induction" ]
          ~doc:"Run induction recognition and report whether the dependence \
                survives the detected accumulator facts.")
  in
  let run file src dst restraint hide induction =
    with_errors @@ fun () ->
    let prog = Lang.Sema.analyze (load file) in
    let ctx = Depctx.create prog in
    let find ?array label kind =
      List.find_opt
        (fun (a : Lang.Ir.access) ->
          a.Lang.Ir.label = label
          && a.Lang.Ir.kind = kind
          && match array with Some arr -> a.Lang.Ir.array = arr | None -> true)
        (Array.to_list prog.Lang.Ir.accesses)
    in
    let w =
      match find src Lang.Ir.Write with
      | Some a -> a
      | None -> failwith (Printf.sprintf "no write labeled %s" src)
    in
    (* the destination must touch the same array *)
    let r =
      match
        ( find ~array:w.Lang.Ir.array dst Lang.Ir.Read,
          find ~array:w.Lang.Ir.array dst Lang.Ir.Write )
      with
      | Some a, _ | None, Some a -> a
      | None, None ->
        failwith
          (Printf.sprintf "no access of array %s labeled %s" w.Lang.Ir.array
             dst)
    in
    let c = Lang.Ir.common_loops w r in
    let restraint =
      match restraint with
      | Some rv -> rv
      | None -> List.init c (fun _ -> Dirvec.Any)
    in
    let an = Symbolic.analyze ctx ~src:w ~dst:r ~restraint ~hide () in
    print_endline (Symbolic.render_query an);
    if induction then begin
      let accs = Induction.detect ctx in
      List.iter
        (fun (a : Induction.accumulator) ->
          Printf.printf "accumulator: %s (increment at %s)\n"
            a.Induction.scalar a.Induction.increment.Lang.Ir.label)
        accs;
      let props =
        List.map
          (fun (a : Induction.accumulator) ->
            (a.Induction.scalar, Symbolic.Accumulator a.Induction.increment))
          accs
      in
      Printf.printf "dependence exists with induction facts: %b\n"
        (Symbolic.dependence_exists_with ctx ~src:w ~dst:r ~props)
    end
  in
  Cmd.v
    (Cmd.info "symbolic"
       ~doc:
         "Section-5 symbolic analysis: the condition under which a \
          dependence with a given restraint vector exists.")
    Term.(
      const run $ file_arg $ src_arg $ dst_arg $ restraint_arg $ hide_arg
      $ induction_arg)

let connect_required =
  Arg.(
    required
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:"Address of the running petitd (Unix-socket path or host:port).")

let serve_stats_cmd =
  let run addr =
    print_daemon_result (daemon_request addr Serve.Protocol.Stats)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Request counters, verdict-cache telemetry and the budget quota \
          of a running petitd.")
    Term.(const run $ connect_required)

let health_cmd =
  let run addr =
    print_daemon_result (daemon_request addr Serve.Protocol.Health)
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Overload posture of a running petitd: uptime, in-flight \
          requests, shed/reaped counts, connection accounting.  Served \
          off the solver path, so it answers even under full load.")
    Term.(const run $ connect_required)

let shutdown_cmd =
  let run addr =
    print_daemon_result (daemon_request addr Serve.Protocol.Shutdown)
  in
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:
         "Ask a running petitd to shut down (graceful drain: in-flight \
          requests finish under the daemon's --drain-ms, laggards are \
          force-closed).")
    Term.(const run $ connect_required)

let corpus_cmd =
  let run name =
    match name with
    | None ->
      List.iter (fun (n, _) -> print_endline n) Corpus.all
    | Some n -> print_string (Corpus.find n)
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"List bundled corpus programs, or print one.")
    Term.(const run $ Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME"))

let () =
  let info =
    Cmd.info "petit" ~version:"1.0"
      ~doc:
        "Array dependence analysis with the extended Omega test \
         (Pugh-Wonnacott, PLDI'92)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            analyze_cmd;
            parallelize_cmd;
            graph_cmd;
            deps_cmd;
            run_cmd;
            disasm_cmd;
            symbolic_cmd;
            corpus_cmd;
            serve_stats_cmd;
            health_cmd;
            shutdown_cmd;
          ]))
