(* petitd: the analysis daemon.  Binds a Unix-domain or TCP socket,
   keeps one verdict cache warm across every connection, and serves
   analyze / parallelize / omega_calc / stats requests over the
   length-prefixed JSON protocol (lib/serve).  Per-request budgets are
   clamped to the quota set here, so one pathological client degrades
   its own queries to [gave up] instead of starving the rest. *)

open Cmdliner

let addr_term =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv) (the default, at \
                $(b,/tmp/petitd.sock)).")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Listen on TCP $(docv) instead.")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST"
          ~doc:"Interface to bind with $(b,--port).")
  in
  let make socket port host =
    match (socket, port) with
    | Some _, Some _ ->
      `Error (false, "--socket and --port are mutually exclusive")
    | None, Some p -> `Ok (Serve.Protocol.Tcp (host, p))
    | Some s, None -> `Ok (Serve.Protocol.Unix_path s)
    | None, None -> `Ok (Serve.Protocol.Unix_path "/tmp/petitd.sock")
  in
  Term.(ret (const make $ socket_arg $ port_arg $ host_arg))

let memo_capacity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "memo-capacity" ] ~docv:"N"
        ~doc:"Bound on the shared verdict cache (entries; FIFO eviction \
              beyond it).")

let max_frame_arg =
  Arg.(
    value
    & opt int Serve.Protocol.default_max_frame
    & info [ "max-frame" ] ~docv:"BYTES"
        ~doc:"Largest accepted request frame.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains running solver work; concurrent sessions analyze \
           in parallel up to $(docv) (default: the machine's recommended \
           domain count minus one).")

let max_connections_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-connections" ] ~docv:"N"
        ~doc:
          "Open-connection cap: connections beyond $(docv) receive one \
           $(b,overloaded) response (with a retry_after_ms hint) and are \
           closed (default 64).")

let max_inflight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "Admission gate: at most $(docv) work-bearing requests solving \
           or queued at once; beyond it requests are shed with \
           $(b,overloaded) instead of queueing unboundedly (default \
           2*domains, min 4).  0 disables shedding.")

let read_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "read-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Per-frame I/O deadline: a request frame must arrive (and a \
           response frame drain) within $(docv) ms or the connection is \
           reaped (default 10000).  0 disables.")

let drain_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "drain-ms" ] ~docv:"MS"
        ~doc:
          "Shutdown grace: in-flight requests get $(docv) ms to finish \
           before their connections are force-closed (default 5000).")

let backend_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("omega", Omega.Portfolio.Omega);
             ("screen", Omega.Portfolio.Screen);
             ("cascade", Omega.Portfolio.Cascade);
           ])
        Omega.Portfolio.Cascade
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Decision-portfolio backend for every request: $(b,cascade) \
           (screen, then fast path, then complete; the default), \
           $(b,omega), or $(b,screen) (incomplete: undecided queries \
           report [gave up]).  Set once at startup — worker domains read \
           it concurrently.")

(* The daemon-wide budget ceiling: per-request budgets are clamped to
   it (Protocol.clamp_budget), never raised above it. *)
let quota_term =
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Elimination-step quota per solver query.")
  in
  let splinters_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "splinters" ] ~docv:"N"
          ~doc:"Splinter-problem quota per solver query.")
  in
  let disjuncts_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "disjuncts" ] ~docv:"N"
          ~doc:"DNF-disjunct quota per Presburger formula.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Wall-clock quota per solver query, in milliseconds.")
  in
  let make fuel splinters disjuncts deadline_ms =
    let d = Omega.Budget.default in
    {
      Omega.Budget.fuel = Option.value fuel ~default:d.Omega.Budget.fuel;
      splinters = Option.value splinters ~default:d.Omega.Budget.splinters;
      disjuncts = Option.value disjuncts ~default:d.Omega.Budget.disjuncts;
      deadline_ms =
        (match deadline_ms with
        | Some _ as d -> d
        | None -> d.Omega.Budget.deadline_ms);
    }
  in
  Term.(const make $ fuel_arg $ splinters_arg $ disjuncts_arg $ deadline_arg)

let () =
  let run addr memo_capacity max_frame quota domains backend max_connections
      max_inflight read_timeout_ms drain_ms =
    Omega.Portfolio.backend := backend;
    let base = Serve.Server.default_config addr in
    let c_domains =
      match domains with
      | Some n -> max 1 n
      | None -> base.Serve.Server.c_domains
    in
    let config =
      {
        base with
        Serve.Server.c_max_frame = max_frame;
        c_memo_capacity = memo_capacity;
        c_quota = quota;
        c_domains;
        c_max_connections =
          (match max_connections with
          | Some n -> max 1 n
          | None -> base.Serve.Server.c_max_connections);
        c_max_inflight =
          (match max_inflight with
          | Some 0 -> None
          | Some n -> Some (max 1 n)
          | None -> Some (max 4 (2 * c_domains)));
        c_read_timeout_ms =
          (match read_timeout_ms with
          | Some ms when ms <= 0. -> None
          | Some ms -> Some ms
          | None -> base.Serve.Server.c_read_timeout_ms);
        c_drain_ms =
          (match drain_ms with
          | Some ms -> Float.max 0. ms
          | None -> base.Serve.Server.c_drain_ms);
      }
    in
    (match addr with
    | Serve.Protocol.Unix_path p ->
      Printf.eprintf "petitd: listening on %s\n%!" p
    | Serve.Protocol.Tcp (h, p) ->
      Printf.eprintf "petitd: listening on %s:%d\n%!" h p);
    match Serve.Server.run config with
    | () -> ()
    | exception Unix.Unix_error (e, _, arg) ->
      Printf.eprintf "petitd: %s%s\n" (Unix.error_message e)
        (if arg = "" then "" else ": " ^ arg);
      exit 1
  in
  let info =
    Cmd.info "petitd" ~version:"1.0"
      ~doc:
        "Dependence-analysis daemon: petit's analyses as a service over a \
         Unix or TCP socket, with a shared verdict cache and per-client \
         budget quotas."
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const run $ addr_term $ memo_capacity_arg $ max_frame_arg
            $ quota_term $ domains_arg $ backend_arg $ max_connections_arg
            $ max_inflight_arg $ read_timeout_arg $ drain_arg)))
