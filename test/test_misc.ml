(* Assorted unit tests: direction-vector rendering, Presburger work
   budget, lexer details. *)

open Omega
open Depend

let unit_tests =
  [
    Alcotest.test_case "dirvec entry rendering" `Quick (fun () ->
        let e sign lo hi = { Dirvec.sign; lo; hi } in
        Alcotest.(check string) "exact" "3"
          (Dirvec.entry_to_string (e Dirvec.Pos (Some 3) (Some 3)));
        Alcotest.(check string) "range" "0:1"
          (Dirvec.entry_to_string (e Dirvec.NonNeg (Some 0) (Some 1)));
        Alcotest.(check string) "plus" "+"
          (Dirvec.entry_to_string (e Dirvec.Pos (Some 1) None));
        Alcotest.(check string) "star" "*"
          (Dirvec.entry_to_string (e Dirvec.Any None None));
        Alcotest.(check string) "nonneg" "0+"
          (Dirvec.entry_to_string (e Dirvec.NonNeg None None));
        Alcotest.(check string) "vector" "(0,1,-1,0)"
          (Dirvec.to_string
             [ Dirvec.exact 0; Dirvec.exact 1; Dirvec.exact (-1); Dirvec.exact 0 ]));
    Alcotest.test_case "dirvec zero predicates" `Quick (fun () ->
        Alcotest.(check bool) "loop independent" true
          (Dirvec.is_loop_independent [ Dirvec.exact 0; Dirvec.exact 0 ]);
        Alcotest.(check bool) "not loop independent" false
          (Dirvec.is_loop_independent [ Dirvec.exact 0; Dirvec.exact 1 ]);
        Alcotest.(check bool) "allows all zero" true
          (Dirvec.allows_all_zero
             [
               Dirvec.exact 0;
               { Dirvec.sign = Dirvec.NonNeg; lo = Some 0; hi = None };
             ]);
        Alcotest.(check bool) "plus excludes zero" false
          (Dirvec.allows_all_zero
             [ { Dirvec.sign = Dirvec.Pos; lo = Some 1; hi = None } ]));
    Alcotest.test_case "presburger budget exhausts disjuncts" `Quick
      (fun () ->
        (* a conjunction of many 2-way disjunctions: 2^k disjuncts *)
        let vars = Array.init 14 (fun i -> Var.fresh (Printf.sprintf "b%d" i)) in
        let f =
          Presburger.and_
            (Array.to_list
               (Array.map
                  (fun v ->
                    Presburger.or_
                      [
                        Presburger.eq (Linexpr.var v) (Linexpr.of_int 0);
                        Presburger.eq (Linexpr.var v) (Linexpr.of_int 1);
                      ])
                  vars))
        in
        match Presburger.dnf f with
        | exception Budget.Exhausted Budget.Disjuncts -> ()
        | ds ->
          (* acceptable if pruning kept it under budget, but with 2^14
             satisfiable disjuncts it cannot *)
          Alcotest.fail
            (Printf.sprintf "expected Exhausted Disjuncts, got %d disjuncts"
               (List.length ds)));
    Alcotest.test_case "kill test survives a blown disjunct budget" `Quick
      (fun () ->
        (* a program whose kill test needs the general procedure with
           coefficient-2 subscripts: must terminate and stay conservative *)
        let prog =
          Lang.Sema.parse_and_analyze
            {|
symbolic n;
real a[-300:300], x[-300:300, -300:300];
for i0 := 1 to n do
  for i1 := 2 to n do
    s0: a(-2 - i1) := a(-2 + 2*i0) + 1;
    s1: a(1 - i0 + 2*i1) := a(-i1) + 1;
  endfor
endfor
|}
        in
        let result = Driver.analyze prog in
        (* no hang, and flows classified one way or the other *)
        Alcotest.(check bool) "has flows" true (result.Driver.flows <> []));
    Alcotest.test_case "lexer: comments and operators" `Quick (fun () ->
        let p =
          Lang.Parser.parse_string
            "// a comment line\nreal a[0:3];\ns: a(0) := 1; // trailing\n"
        in
        Alcotest.(check int) "one stmt" 1 (List.length p.Lang.Ast.stmts));
    Alcotest.test_case "lexer: double negation is not a comment" `Quick
      (fun () ->
        let p = Lang.Parser.parse_string "real a[0:3];\ns: a(0) := - -3;\n" in
        match p.Lang.Ast.stmts with
        | [ Lang.Ast.Assign { rhs = Lang.Ast.Neg (Lang.Ast.Neg (Lang.Ast.Int 3)); _ } ] -> ()
        | _ -> Alcotest.fail "expected Neg (Neg 3)");
    Alcotest.test_case "constraint colors combine" `Quick (fun () ->
        Alcotest.(check bool) "red wins" true
          (Constr.combine_colors Constr.Red Constr.Black = Constr.Red);
        Alcotest.(check bool) "black stays" true
          (Constr.combine_colors Constr.Black Constr.Black = Constr.Black));
    Alcotest.test_case "restraint constraints match signs" `Quick (fun () ->
        let prog = Lang.Sema.parse_and_analyze (Corpus.find "example3") in
        let ctx = Depctx.create prog in
        let w = List.hd (Lang.Ir.writes prog) in
        let a = Depctx.instantiate ctx w ~tag:"i" in
        let b = Depctx.instantiate ctx w ~tag:"j" in
        Alcotest.(check int) "(+,0) gives two constraints" 2
          (List.length
             (Symbolic.restraint_constraints a b [ Dirvec.Pos; Dirvec.Zero ]));
        Alcotest.(check int) "(*,*) gives none" 0
          (List.length
             (Symbolic.restraint_constraints a b [ Dirvec.Any; Dirvec.Any ])));
  ]

let fparse_tests =
  [
    Alcotest.test_case "fparse: section 3.2 formulas" `Quick (fun () ->
        let valid s = Presburger.valid (Fparse.formula_of_string s) in
        let sat s = Presburger.satisfiable (Fparse.formula_of_string s) in
        Alcotest.(check bool) "parity cover" true
          (valid
             "forall x: 0 <= x and x <= 10 => exists y: x = 2*y or x = 2*y + 1");
        Alcotest.(check bool) "evens only" false
          (valid "forall x: 0 <= x and x <= 10 => exists y: x = 2*y");
        Alcotest.(check bool) "forall-exists" true
          (valid "forall x: exists y: y >= x and y <= x");
        Alcotest.(check bool) "contradictory conj" false
          (sat "exists y: x = 2*y and x = 2*y + 1");
        Alcotest.(check bool) "free vars existential in sat" true
          (sat "x >= 3 and x <= 5");
        (* shadowing: the inner x is a different variable *)
        Alcotest.(check bool) "quantifier shadowing" true
          (valid "forall x: x <= 0 or exists x: x >= 1"));
    Alcotest.test_case "fparse: errors" `Quick (fun () ->
        (match Fparse.formula_of_string "forall : x >= 0" with
         | exception Fparse.Error _ -> ()
         | _ -> Alcotest.fail "expected an error");
        match Fparse.formula_of_string "exists y: x*y = 3" with
        | exception Fparse.Error _ -> ()
        | _ -> Alcotest.fail "expected non-linear error");
  ]

let suite = ("misc", unit_tests @ fparse_tests)
