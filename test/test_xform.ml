(* Tests for the transformation layer: dependence graph construction,
   doall legality (standard vs extended), privatization, the DOT/JSON
   emitters, and the interpreter oracle over the whole corpus plus
   random programs. *)

open Lang

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let build name =
  let prog = Sema.analyze (Parser.parse_string (Corpus.find name)) in
  Xform.Graph.build prog

let verdicts name =
  let g = build name in
  (g, Xform.Parallel.analyze g)

(* ------------------------------------------------------------------ *)
(* Graph construction                                                   *)
(* ------------------------------------------------------------------ *)

let test_graph_example1 () =
  let g = build "example1" in
  check int_t "three statements" 3 (List.length g.Xform.Graph.nodes);
  check int_t "two loops" 2 (List.length g.Xform.Graph.loops);
  let flows = Xform.Graph.kind_edges g Depend.Deps.Flow in
  let antis = Xform.Graph.kind_edges g Depend.Deps.Anti in
  let outputs = Xform.Graph.kind_edges g Depend.Deps.Output in
  check int_t "two flow edges" 2 (List.length flows);
  check int_t "no anti edges" 0 (List.length antis);
  check int_t "one output edge" 1 (List.length outputs);
  let dead, live = List.partition (fun e -> not (Xform.Graph.live e)) flows in
  check int_t "one dead flow (A killed by B)" 1 (List.length dead);
  check int_t "one live flow (B -> C)" 1 (List.length live);
  (match dead with
  | [ e ] ->
    check Alcotest.string "killed edge source" "A" e.Xform.Graph.e_src.Ir.label;
    (match e.Xform.Graph.e_status with
    | Xform.Graph.Dead (Depend.Driver.Killed k) ->
      check Alcotest.string "killer" "B" k.Ir.label
    | _ -> Alcotest.fail "expected a Killed status")
  | _ -> ());
  match live with
  | [ e ] ->
    check Alcotest.string "live edge source" "B" e.Xform.Graph.e_src.Ir.label;
    check Alcotest.string "live edge dest" "C" e.Xform.Graph.e_dst.Ir.label
  | _ -> ()

let test_graph_levels () =
  (* wavefront1: s reads a(i-1,j) and a(i,j-1); the (1,0) flow is carried
     at level 1, the (0,1) flow at level 2 *)
  let g = build "wavefront1" in
  let flows =
    List.filter Xform.Graph.live (Xform.Graph.kind_edges g Depend.Deps.Flow)
  in
  let levels =
    List.sort compare
      (List.concat_map (fun e -> e.Xform.Graph.e_levels) flows)
  in
  check (Alcotest.list int_t) "carried levels" [ 1; 2 ] levels;
  List.iter
    (fun e ->
      check int_t "two common loops" 2 (List.length e.Xform.Graph.e_loops))
    flows

(* ------------------------------------------------------------------ *)
(* Doall legality                                                       *)
(* ------------------------------------------------------------------ *)

(* (loop path, standard doall, extended doall), in textual order *)
let legality_cases =
  [
    ("example1", [ ("L1", true, true); ("L1", true, true) ]);
    ( "example2",
      [ ("L1", false, true); ("L1/L2", false, true); ("L1/L2", true, true) ]
    );
    ("example3", [ ("L1", false, true); ("L1/L2", false, false) ]);
    ("example4", [ ("L1", false, true); ("L1/L2", false, false) ]);
    ("example5", [ ("L1", false, false); ("L1/L2", false, false) ]);
    ("example6", [ ("L1", false, false); ("L1/L2", true, true) ]);
    ( "temp_reuse",
      [ ("i", false, true); ("i/j", true, true); ("i/j", true, true) ] );
    ( "triangle_cover",
      [ ("i", false, true); ("i/j", true, true); ("i/j", true, true) ] );
    ("wavefront1", [ ("i", false, false); ("i/j", false, false) ]);
    ( "matmul",
      [ ("i", true, true); ("i/j", true, true); ("i/j/k", false, false) ] );
  ]

let test_legality name expected () =
  let _, vs = verdicts name in
  check int_t "number of loops" (List.length expected) (List.length vs);
  List.iter2
    (fun (path, std, ext) (v : Xform.Parallel.verdict) ->
      check Alcotest.string "loop path" path (Xform.Parallel.loop_path v.Xform.Parallel.v_loop);
      check bool_t (path ^ " standard") std v.Xform.Parallel.v_std_doall;
      check bool_t (path ^ " extended") ext v.Xform.Parallel.v_ext_doall;
      if not std then
        check bool_t (path ^ " has std blockers") true
          (v.Xform.Parallel.v_std_blockers <> []);
      if not ext then
        check bool_t (path ^ " has ext blockers") true
          (v.Xform.Parallel.v_ext_blockers <> []))
    expected vs

let test_privatization () =
  let _, vs = verdicts "temp_reuse" in
  (match vs with
  | v :: _ ->
    let privs =
      List.map (fun p -> p.Xform.Privatize.p_array) v.Xform.Parallel.v_private
    in
    check (Alcotest.list Alcotest.string) "temp_reuse privatizes t" [ "t" ]
      privs
  | [] -> Alcotest.fail "no loops in temp_reuse");
  let _, vs = verdicts "example2" in
  match vs with
  | v :: _ ->
    let privs =
      List.sort compare
        (List.map
           (fun p -> p.Xform.Privatize.p_array)
           v.Xform.Parallel.v_private)
    in
    check (Alcotest.list Alcotest.string) "example2 L1 privatizes a and x"
      [ "a"; "x" ] privs
  | [] -> Alcotest.fail "no loops in example2"

let test_extended_wins () =
  (* the acceptance claim: somewhere in the corpus the extended analysis
     parallelizes a loop the standard analysis cannot *)
  let wins =
    List.filter
      (fun (name, _) ->
        let _, vs = verdicts name in
        let std, ext = Xform.Parallel.count_doall vs in
        ext > std)
      Corpus.all
  in
  check bool_t "extended analysis beats standard somewhere" true
    (List.length wins >= 3);
  check bool_t "temp_reuse is one of the wins" true
    (List.mem_assoc "temp_reuse" (List.map (fun (n, _) -> (n, ())) wins))

(* ------------------------------------------------------------------ *)
(* DOT / JSON emitters                                                  *)
(* ------------------------------------------------------------------ *)

let trim = String.trim

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A small structural validator: brace balance, every edge endpoint
   declared, dead/live styling distinguished. *)
let check_dot dot =
  check bool_t "starts with digraph" true
    (String.length dot > 8 && String.sub dot 0 8 = "digraph ");
  let balance =
    String.fold_left
      (fun n c -> if c = '{' then n + 1 else if c = '}' then n - 1 else n)
      0 dot
  in
  check int_t "braces balanced" 0 balance;
  let lines = List.map trim (String.split_on_char '\n' dot) in
  let declared =
    List.filter_map
      (fun l ->
        if
          String.length l > 1
          && l.[0] = 's'
          && contains l "[label="
          && not (contains l "->")
        then Some (List.hd (String.split_on_char ' ' l))
        else None)
      lines
  in
  let edges = List.filter (fun l -> contains l "->") lines in
  List.iter
    (fun l ->
      match String.split_on_char ' ' l with
      | src :: "->" :: dst :: _ ->
        check bool_t ("declared src " ^ src) true (List.mem src declared);
        check bool_t ("declared dst " ^ dst) true (List.mem dst declared)
      | _ -> Alcotest.fail ("unparseable edge line: " ^ l))
    edges;
  edges

let test_dot_valid () =
  List.iter
    (fun (name, _) -> ignore (check_dot (Xform.Graph.to_dot (build name))))
    Corpus.all

let test_dot_live_dead () =
  let edges = check_dot (Xform.Graph.to_dot (build "example1")) in
  check bool_t "a dead edge is gray and labeled with its killer" true
    (List.exists
       (fun l -> contains l "gray60" && contains l "killed by B")
       edges);
  check bool_t "a live edge is black" true
    (List.exists (fun l -> contains l "color=black") edges)

let test_json_valid () =
  List.iter
    (fun (name, _) ->
      let js = Xform.Graph.to_json (build name) in
      let bal open_c close_c =
        String.fold_left
          (fun n c ->
            if c = open_c then n + 1 else if c = close_c then n - 1 else n)
          0 js
      in
      check int_t (name ^ ": objects balanced") 0 (bal '{' '}');
      check int_t (name ^ ": arrays balanced") 0 (bal '[' ']');
      check bool_t (name ^ ": has nodes") true (contains js "\"nodes\":"))
    Corpus.all;
  let js = Xform.Graph.to_json (build "example1") in
  check bool_t "dead edge serialized" true
    (contains js "\"status\":\"killed\"");
  check bool_t "live edge serialized" true (contains js "\"status\":\"live\"")

(* ------------------------------------------------------------------ *)
(* Emit                                                                 *)
(* ------------------------------------------------------------------ *)

let test_emit () =
  let g, vs = verdicts "temp_reuse" in
  let out = Xform.Emit.annotate g vs in
  check bool_t "outer loop becomes doall" true
    (contains out "doall i := 1 to n do");
  check bool_t "private annotation present" true (contains out "private(t");
  let g, vs = verdicts "wavefront1" in
  let out = Xform.Emit.annotate g vs in
  check bool_t "serial loop keeps for" true (contains out "for i := 1 to n do");
  check bool_t "blocker comment present" true (contains out "// serial:");
  (* the executor's plan round-trips as a machine-readable directive
     comment: per privatized array private(..), copyin(..) when copy-in
     is needed, lastprivate(..) when the last write must survive *)
  let g, vs = verdicts "copyin" in
  let out = Xform.Emit.annotate g vs in
  check bool_t "directive comment present" true
    (contains out "// !$ doall private(t) copyin(t) lastprivate(t)");
  let reparsed = Parser.parse_string out in
  check bool_t "annotated program still parses" true
    (reparsed.Ast.stmts <> [])

(* ------------------------------------------------------------------ *)
(* Copy-in semantics and the example9 regression                        *)
(* ------------------------------------------------------------------ *)

(* The copyin kernel reads t(0) in every iteration but writes it only
   before the loop: privatizing t is legal solely because the executor
   copies unwritten elements in from the outer state.  Finalizing to the
   serial result must therefore require copy-in - with it disabled, the
   same plan must diverge. *)
let test_copy_in_semantics () =
  let g, vs = verdicts "copyin" in
  let outer =
    match vs with v :: _ -> v | [] -> Alcotest.fail "no loops in copyin"
  in
  check bool_t "outer loop is ext doall" true outer.Xform.Parallel.v_ext_doall;
  check bool_t "outer loop is not std doall" false
    outer.Xform.Parallel.v_std_doall;
  (match outer.Xform.Parallel.v_private with
  | [ p ] ->
    check Alcotest.string "privatized array" "t" p.Xform.Privatize.p_array;
    check bool_t "copy-in required" true p.Xform.Privatize.p_copy_in;
    check bool_t "finalization required" true p.Xform.Privatize.p_finalize
  | ps ->
    Alcotest.failf "expected exactly one privatization, got %d"
      (List.length ps));
  let prog = g.Xform.Graph.prog in
  let syms = [ ("n", 6); ("m", 5) ] in
  let init = Test_exec.init in
  let serial = Xform.Exec.run_serial ~init prog ~syms in
  let pl = Xform.Exec.plan Xform.Exec.Ext vs in
  let pool = Test_exec.pool () in
  let with_copy_in, _ = Xform.Exec.run_parallel ~pool ~init pl prog ~syms in
  check bool_t "with copy-in: parallel equals serial" true
    (Xform.Exec.equal_mem serial with_copy_in);
  let without, _ =
    Xform.Exec.run_parallel ~pool ~init ~no_copy_in:true pl prog ~syms
  in
  check bool_t "without copy-in: parallel diverges" false
    (Xform.Exec.equal_mem serial without)

(* PR 1 made index-array reads in loop bounds (example9's [b(i)] /
   [b(i+1)-1]) analyzable as opaque terms instead of crashing the
   front end; lock that in. *)
let test_example9_opaque_bounds () =
  let g, vs = verdicts "example9" in
  let s =
    match
      List.find_opt
        (fun (a : Ir.access) -> a.Ir.label = "s" && a.Ir.kind = Ir.Write)
        (Array.to_list g.Xform.Graph.prog.Ir.accesses)
    with
    | Some a -> a
    | None -> Alcotest.fail "no write labeled s in example9"
  in
  check int_t "both opaque bound terms recorded" 2 (List.length s.Ir.opaques);
  check int_t "two loops analyzed" 2 (List.length vs);
  List.iter
    (fun (v : Xform.Parallel.verdict) ->
      check bool_t
        (Xform.Parallel.loop_path v.Xform.Parallel.v_loop ^ " std doall")
        true v.Xform.Parallel.v_std_doall;
      check bool_t
        (Xform.Parallel.loop_path v.Xform.Parallel.v_loop ^ " ext doall")
        true v.Xform.Parallel.v_ext_doall)
    vs

(* ------------------------------------------------------------------ *)
(* The interpreter oracle                                               *)
(* ------------------------------------------------------------------ *)

let test_oracle_corpus () =
  let checked = ref 0 and claims = ref 0 in
  List.iter
    (fun (name, _) ->
      let g, vs = verdicts name in
      match Xform.Oracle.check g vs with
      | Xform.Oracle.Report r ->
        incr checked;
        claims := !claims + r.Xform.Oracle.o_checked;
        check (Alcotest.list Alcotest.string)
          (name ^ ": oracle violations")
          []
          (List.map
             (fun v -> v.Xform.Oracle.o_what)
             r.Xform.Oracle.o_violations)
      | Xform.Oracle.No_assignment ->
        Alcotest.fail (name ^ ": no symbolic assignment found")
      | Xform.Oracle.Not_executable _ ->
        (* index-array bounds (example 9) cannot be interpreted *)
        ())
    Corpus.all;
  check bool_t "almost all corpus programs executable" true (!checked >= 40);
  check bool_t "oracle exercised real claims" true (!claims >= 50)

(* Random programs: every extended doall claim must survive execution. *)
let prop_doall_sound (ast : Ast.program) : bool =
  let prog = Sema.analyze ast in
  let g = Xform.Graph.build prog in
  let vs = Xform.Parallel.analyze g in
  List.for_all
    (fun nval ->
      match Xform.Oracle.check ~syms:[ ("n", nval) ] g vs with
      | Xform.Oracle.Report r -> r.Xform.Oracle.o_violations = []
      | Xform.Oracle.No_assignment | Xform.Oracle.Not_executable _ -> true)
    [ 3; 4 ]

let prop_tests =
  [
    QCheck.Test.make ~name:"doall claims confirmed by the interpreter"
      ~count:60 Test_e2e.arb_program prop_doall_sound;
  ]

let suite =
  ( "xform",
    [
      Alcotest.test_case "graph: example 1 nodes and edges" `Quick
        test_graph_example1;
      Alcotest.test_case "graph: wavefront carried levels" `Quick
        test_graph_levels;
    ]
    @ List.map
        (fun (name, expected) ->
          Alcotest.test_case
            (Printf.sprintf "doall legality: %s" name)
            `Quick
            (test_legality name expected))
        legality_cases
    @ [
        Alcotest.test_case "privatization sets" `Quick test_privatization;
        Alcotest.test_case "extended-only doall wins exist" `Quick
          test_extended_wins;
        Alcotest.test_case "dot output is well formed" `Quick test_dot_valid;
        Alcotest.test_case "dot distinguishes live from dead" `Quick
          test_dot_live_dead;
        Alcotest.test_case "json output is well formed" `Quick test_json_valid;
        Alcotest.test_case "emit annotates doall and serial" `Quick test_emit;
        Alcotest.test_case "copy-in is load-bearing for privatization" `Quick
          test_copy_in_semantics;
        Alcotest.test_case "example9: opaque loop bounds analyzed" `Quick
          test_example9_opaque_bounds;
        Alcotest.test_case "oracle confirms the corpus" `Quick
          test_oracle_corpus;
      ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) prop_tests )
