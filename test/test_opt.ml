(* Tests for the optimizer stage: the dependence-licensed source
   restructuring (Xform.Restructure) and the bytecode passes (Lang.Opt).

   The contract under test is the one the speedup bench enforces over
   the whole corpus: every subset of the four optimizer flags yields a
   bit-identical final store; illegal interchange and fusion are
   refused; every bounds-check elision carries a proof that the
   paranoid re-checker accepts at run time. *)

open Lang

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* Same deterministic nonzero fill as test_exec/test_vm. *)
let init _ idx = List.fold_left (fun h i -> (h * 31) + i + 17) 7 idx

let with_flags (r, s, e, w) f =
  let saved = (!Opt.restructure, !Opt.superinst, !Opt.elide, !Opt.writekill) in
  Opt.set ~restructure:r ~superinst:s ~elide:e ~writekill:w;
  Fun.protect
    ~finally:(fun () ->
      let r, s, e, w = saved in
      Opt.set ~restructure:r ~superinst:s ~elide:e ~writekill:w)
    f

let analyze src = Sema.analyze (Parser.parse_string src)

(* ------------------------------------------------------------------ *)
(* Interchange legality                                                *)
(* ------------------------------------------------------------------ *)

let loop_node (g : Xform.Graph.t) var =
  match
    List.find_opt (fun (l : Xform.Graph.loop_info) -> l.l_var = var) g.loops
  with
  | Some l -> l.Xform.Graph.l_node
  | None -> Alcotest.failf "no loop %s in graph" var

let test_interchange_hazard () =
  (* carried (+, -): the classic forbidden pattern *)
  let g_bad =
    Xform.Graph.build
      (analyze
         "symbolic n; real a[0:101, 0:101];\n\
          for i := 1 to 100 do for j := 1 to 100 do\n\
          a(j, i) := a(j + 1, i - 1) + 1; endfor endfor")
  in
  check bool_t "(+,-) nest hazards" true
    (Xform.Restructure.interchange_hazard g_bad ~outer:(loop_node g_bad "i")
       ~inner:(loop_node g_bad "j"));
  (* carried (+, +): permutable *)
  let g_ok =
    Xform.Graph.build
      (analyze
         "symbolic n; real a[0:101, 0:101];\n\
          for i := 1 to 100 do for j := 1 to 100 do\n\
          a(j, i) := a(j + 1, i + 1) + 1; endfor endfor")
  in
  check bool_t "(+,+) nest permutable" false
    (Xform.Restructure.interchange_hazard g_ok ~outer:(loop_node g_ok "i")
       ~inner:(loop_node g_ok "j"))

let test_interchange_refusal () =
  with_flags (true, false, false, false) (fun () ->
      (* profitable by locality (last subscript tracks the outer loop)
         but licensed by nothing: the (+,-) vector must refuse it *)
      let ast =
        Parser.parse_string
          "symbolic n; real a[0:101, 0:101];\n\
           for i := 1 to 100 do for j := 1 to 100 do\n\
           a(j, i) := a(j + 1, i - 1) + 1; endfor endfor"
      in
      let _, rep = Xform.Restructure.optimize ast in
      check int_t "illegal interchange refused" 0
        rep.Xform.Restructure.x_interchanged;
      (* the same shape with a (+,+) dependence interchanges *)
      let ast_ok =
        Parser.parse_string
          "symbolic n; real a[0:101, 0:101];\n\
           for i := 1 to 100 do for j := 1 to 100 do\n\
           a(j, i) := a(j + 1, i + 1) + 1; endfor endfor"
      in
      let ast', rep_ok = Xform.Restructure.optimize ast_ok in
      check int_t "legal interchange applied" 1
        rep_ok.Xform.Restructure.x_interchanged;
      (* and it is still the same computation *)
      let syms = [ ("n", 5) ] in
      let serial = Xform.Exec.run_serial ~init (analyze
        "symbolic n; real a[0:101, 0:101];\n\
         for i := 1 to 100 do for j := 1 to 100 do\n\
         a(j, i) := a(j + 1, i + 1) + 1; endfor endfor") ~syms in
      let u = Compile.program (Sema.analyze ast') ~syms in
      let t = Vm.create ~init u in
      Vm.run t;
      match Vm.check_against ~init t serial with
      | [] -> ()
      | diffs ->
        Alcotest.failf "interchanged nest diverges: %s" (Vm.diff_string diffs))

(* ------------------------------------------------------------------ *)
(* Fusion legality                                                     *)
(* ------------------------------------------------------------------ *)

let test_fusion () =
  with_flags (true, false, false, false) (fun () ->
      (* loop 2 reads loop 1's array backwards: fusing would feed
         iteration i the value of iteration 100-i before it is written *)
      let bad =
        Parser.parse_string
          "symbolic n; real a[0:100], b[0:100];\n\
           for i := 0 to 100 do a(i) := i; endfor\n\
           for i := 0 to 100 do b(i) := a(100 - i) + 1; endfor"
      in
      let _, rep = Xform.Restructure.optimize bad in
      check int_t "backward-reading fusion refused" 0
        rep.Xform.Restructure.x_fused;
      (* aligned reads fuse, and the result matches the interpreter *)
      let good_src =
        "symbolic n; real a[0:100], b[0:100];\n\
         for i := 0 to 100 do a(i) := i; endfor\n\
         for j := 0 to 100 do b(j) := a(j) + 1; endfor"
      in
      let good = Parser.parse_string good_src in
      let ast', rep_ok = Xform.Restructure.optimize good in
      check int_t "aligned fusion applied" 1 rep_ok.Xform.Restructure.x_fused;
      let syms = [ ("n", 3) ] in
      let serial = Xform.Exec.run_serial ~init (analyze good_src) ~syms in
      let u = Compile.program (Sema.analyze ast') ~syms in
      let t = Vm.create ~init u in
      Vm.run t;
      match Vm.check_against ~init t serial with
      | [] -> ()
      | diffs ->
        Alcotest.failf "fused loops diverge: %s" (Vm.diff_string diffs))

(* ------------------------------------------------------------------ *)
(* Write-kill deletion                                                 *)
(* ------------------------------------------------------------------ *)

let test_writekill () =
  with_flags (false, false, false, true) (fun () ->
      let src =
        "symbolic n; real a[0:100];\n\
         for i := 0 to 100 do a(i) := 1; endfor\n\
         for i := 0 to 100 do a(i) := i + 2; endfor"
      in
      let ast', rep = Xform.Restructure.optimize (Parser.parse_string src) in
      check int_t "fully overwritten store deleted" 1
        rep.Xform.Restructure.x_killed;
      let syms = [ ("n", 3) ] in
      let serial = Xform.Exec.run_serial ~init (analyze src) ~syms in
      let u = Compile.program (Sema.analyze ast') ~syms in
      let t = Vm.create ~init u in
      Vm.run t;
      (match Vm.check_against ~init t serial with
      | [] -> ()
      | diffs ->
        Alcotest.failf "write-killed program diverges: %s"
          (Vm.diff_string diffs));
      (* an observed store must survive, and so must a final store *)
      let observed =
        "symbolic n; real a[0:100], b[0:100];\n\
         for i := 0 to 100 do a(i) := 1; endfor\n\
         for i := 0 to 100 do b(i) := a(i); endfor\n\
         for i := 0 to 100 do a(i) := 2; endfor"
      in
      let _, rep2 =
        Xform.Restructure.optimize (Parser.parse_string observed)
      in
      check int_t "observed store survives" 0 rep2.Xform.Restructure.x_killed)

(* ------------------------------------------------------------------ *)
(* Bytecode passes on a simple kernel                                  *)
(* ------------------------------------------------------------------ *)

let test_bytecode_passes () =
  with_flags (false, true, true, false) (fun () ->
      let prog =
        analyze
          "symbolic n; real a[0:100], b[0:100];\n\
           for i := 0 to 99 do a(i) := b(i) + 1; endfor"
      in
      let syms = [ ("n", 5) ] in
      let u0 = Compile.program prog ~syms in
      let u, rep = Opt.optimize u0 in
      check bool_t "some accesses elided" true (rep.Opt.r_elided > 0);
      check bool_t "some instructions fused" true (rep.Opt.r_fused > 0);
      check bool_t "constant limit took the immediate back-edge" true
        (Array.exists
           (function Compile.LoopUpi _ -> true | _ -> false)
           u.Compile.u_main);
      check bool_t "no proof violations" true (Opt.check_proofs u0 rep = []);
      (* identical final state, fewer dynamic instructions *)
      let t0 = Vm.create ~init u0 and t1 = Vm.create ~init u in
      let n0 = Vm.run_count t0 and n1 = Vm.run_count t1 in
      check bool_t "optimized state identical" true (Vm.equal_state t0 t1);
      check bool_t
        (Printf.sprintf "dynamic count shrank (%d -> %d)" n0 n1)
        true (n1 < n0);
      (* static counts name the new opcodes *)
      let names = List.map fst (Opt.static_counts u) in
      check bool_t "unchecked or fused opcodes in the listing" true
        (List.exists
           (fun m ->
             List.mem m names)
           [ "ld.u"; "st.u"; "mald.u"; "mast.u"; "aild.u"; "aist.u" ]))

let test_paranoid_corpus () =
  with_flags (true, true, true, true) (fun () ->
      let total_elided = ref 0 and total_fused = ref 0 in
      let executed = ref 0 in
      List.iter
        (fun (name, src) ->
          let ast, _ = (Parser.parse_string src, ()) in
          let ast', _rep = Xform.Restructure.optimize ast in
          let prog' = Sema.analyze ast' in
          match
            Xform.Oracle.pick_syms ~candidates:[ 6; 5; 4; 3; 2; 1 ]
              (Sema.analyze ast)
          with
          | None -> ()
          | Some syms -> (
            match Xform.Exec.run_serial ~init (Sema.analyze ast) ~syms with
            | exception Interp.Runtime_error _ -> ()
            | serial -> (
              match Compile.program prog' ~syms with
              | exception Compile.Unsupported _ -> ()
              | u0 ->
                incr executed;
                let u, rep = Opt.optimize ~paranoid:true u0 in
                total_elided := !total_elided + rep.Opt.r_elided;
                check bool_t
                  (Printf.sprintf "%s: proofs verify" name)
                  true
                  (Opt.check_proofs u0 rep = []);
                let t = Vm.create ~init u in
                (match Vm.run t with
                | () -> ()
                | exception Vm.Proof_failure msg ->
                  Alcotest.failf "%s: paranoid re-check tripped: %s" name msg);
                (match Vm.check_against ~init t serial with
                | [] -> ()
                | diffs ->
                  Alcotest.failf "%s: optimized pipeline diverges: %s" name
                    (Vm.diff_string diffs));
                (* paranoid and production modes agree bit for bit
                   (fusion only fully applies in production, where no
                   assert interposes between producer and consumer) *)
                let up, repp = Opt.optimize u0 in
                total_fused := !total_fused + repp.Opt.r_fused;
                let tp = Vm.create ~init up in
                Vm.run tp;
                check bool_t
                  (Printf.sprintf "%s: paranoid == production" name)
                  true (Vm.equal_state t tp))))
        Corpus.all;
      check bool_t "enough corpus kernels optimized" true (!executed >= 8);
      check bool_t "corpus-wide elisions happened" true (!total_elided > 0);
      check bool_t "corpus-wide fusions happened" true (!total_fused > 0))

(* ------------------------------------------------------------------ *)
(* QCheck: every flag subset is bit-identical on random nests          *)
(* ------------------------------------------------------------------ *)

let arb_nest =
  QCheck.make ~print:Ast.program_to_string ~shrink:Test_exec.shrink_program
    (QCheck.gen Test_e2e.arb_program)

let prop_flag_subsets (ast : Ast.program) : bool =
  let prog = Sema.analyze ast in
  List.for_all
    (fun nval ->
      let syms = [ ("n", nval) ] in
      match Xform.Exec.run_serial ~init prog ~syms with
      | exception Interp.Runtime_error _ -> true
      | serial ->
        (* source passes depend only on the restructure/writekill bits *)
        List.for_all
          (fun (r, w) ->
            with_flags (r, true, true, w) (fun () ->
                let ast', _ = Xform.Restructure.optimize ast in
                match Compile.program (Sema.analyze ast') ~syms with
                | exception Compile.Unsupported _ -> true
                | u0 ->
                  List.for_all
                    (fun (s, e) ->
                      with_flags (r, s, e, w) (fun () ->
                          let u, rep = Opt.optimize ~paranoid:(s && e) u0 in
                          let t = Vm.create ~init u in
                          Vm.run t;
                          Vm.check_against ~init t serial = []
                          && Opt.check_proofs u0 rep = []))
                    [ (false, false); (false, true); (true, false);
                      (true, true) ]))
          [ (false, false); (false, true); (true, false); (true, true) ])
    [ 4; 7 ]

let qcheck_subsets =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20 ~name:"optimizer flag subsets bit-identical"
       arb_nest prop_flag_subsets)

let suite =
  ( "opt",
    [
      Alcotest.test_case "interchange hazard test" `Quick
        test_interchange_hazard;
      Alcotest.test_case "interchange licensing" `Quick
        test_interchange_refusal;
      Alcotest.test_case "fusion licensing" `Quick test_fusion;
      Alcotest.test_case "write-kill deletion" `Quick test_writekill;
      Alcotest.test_case "bytecode elision + fusion" `Quick
        test_bytecode_passes;
      Alcotest.test_case "paranoid re-checks over the corpus" `Slow
        test_paranoid_corpus;
      qcheck_subsets;
    ] )
