(* Robustness of the resource-governed solver core.

   Three properties, over the whole corpus plus the adversarial stress
   nests:

   - totality: no budget, however tight, makes the analysis crash -
     exhaustion surfaces as [Gave_up] telemetry and conservative
     results, never as an exception;
   - monotone degradation: tightening the (deadline-free) budget can
     only shrink what the analysis proves - dead-dependence sets and
     doall plans under a tight budget are subsets of those under a
     looser one, so Proved/Disproved verdicts never flip;
   - fault soundness: with a deterministic fraction of queries forced
     to [Gave_up Injected], every plan is a subset of the clean plan
     and parallel execution still matches serial bit-for-bit. *)

open Omega
open Depend

let check = Alcotest.check
let bool_t = Alcotest.bool

let programs = Corpus.all @ Corpus.stress

let parse src = Lang.Sema.analyze (Lang.Parser.parse_string src)

(* The observable outcome of the full analysis stack on one program:
   which flow dependences were proved dead, and which loops each side
   may run as doalls.  Every Proved the analysis reaches is visible
   here as a dead edge or a doall; every Gave_up as its absence. *)
type outcome = {
  dead : string list;
  live : string list;
  std_doalls : string list;
  ext_doalls : string list;
}

let pair_key (fr : Driver.flow_result) =
  Printf.sprintf "%d->%d (%s->%s)" fr.Driver.dep.Deps.src.Lang.Ir.acc_id
    fr.Driver.dep.Deps.dst.Lang.Ir.acc_id
    fr.Driver.dep.Deps.src.Lang.Ir.label fr.Driver.dep.Deps.dst.Lang.Ir.label

let outcome_of src : outcome =
  Analyses.Memo.reset ();
  let prog = parse src in
  let r = Driver.analyze prog in
  let dead =
    Driver.dead_flows r |> List.map pair_key |> List.sort compare
  in
  let live =
    Driver.live_flows r |> List.map pair_key |> List.sort compare
  in
  let vs = Xform.Parallel.analyze (Xform.Graph.build prog) in
  let doalls side =
    List.filter_map
      (fun (v : Xform.Parallel.verdict) ->
        if side v then Some (Xform.Parallel.loop_path v.Xform.Parallel.v_loop)
        else None)
      vs
    |> List.sort compare
  in
  {
    dead;
    live;
    std_doalls = doalls (fun v -> v.Xform.Parallel.v_std_doall);
    ext_doalls = doalls (fun v -> v.Xform.Parallel.v_ext_doall);
  }

let subset a b = List.for_all (fun x -> List.mem x b) a

(* ------------------------------------------------------------------ *)
(* Totality                                                            *)
(* ------------------------------------------------------------------ *)

let tiny =
  { Budget.fuel = 200; splinters = 4; disjuncts = 8; deadline_ms = None }

let mid =
  { Budget.fuel = 5_000; splinters = 64; disjuncts = 256; deadline_ms = None }

let test_totality_default () =
  Budget.Telemetry.reset ();
  List.iter (fun (name, src) ->
      match outcome_of src with
      | _ -> ()
      | exception e ->
        Alcotest.failf "%s crashed under the default budget: %s" name
          (Printexc.to_string e))
    programs

let test_totality_tiny () =
  Budget.Telemetry.reset ();
  Budget.with_limits tiny (fun () ->
      List.iter (fun (name, src) ->
          match outcome_of src with
          | _ -> ()
          | exception e ->
            Alcotest.failf "%s crashed under the tiny budget: %s" name
              (Printexc.to_string e))
        programs);
  (* the tiny budget must actually bind somewhere, or this test proves
     nothing about exhaustion handling *)
  check bool_t "tiny budget caused give-ups" true
    (Budget.Telemetry.gave_up_total () > 0);
  Analyses.Memo.reset ()

(* ------------------------------------------------------------------ *)
(* Monotone degradation                                                *)
(* ------------------------------------------------------------------ *)

let test_budget_monotonicity () =
  List.iter
    (fun (name, src) ->
      let at lims = Budget.with_limits lims (fun () -> outcome_of src) in
      let o_tiny = at tiny and o_mid = at mid and o_def = at Budget.default in
      let chain label sel =
        check bool_t
          (Printf.sprintf "%s: %s tiny <= mid" name label)
          true
          (subset (sel o_tiny) (sel o_mid));
        check bool_t
          (Printf.sprintf "%s: %s mid <= default" name label)
          true
          (subset (sel o_mid) (sel o_def))
      in
      chain "dead set" (fun o -> o.dead);
      chain "std doalls" (fun o -> o.std_doalls);
      chain "ext doalls" (fun o -> o.ext_doalls);
      (* live dependences go the other way: loosening the budget can
         only remove conservative edges, never add real ones *)
      check bool_t
        (Printf.sprintf "%s: live mid <= tiny" name)
        true
        (subset o_mid.live o_tiny.live);
      check bool_t
        (Printf.sprintf "%s: live default <= mid" name)
        true
        (subset o_def.live o_mid.live))
    programs;
  Analyses.Memo.reset ()

(* ------------------------------------------------------------------ *)
(* Fault-injection soundness                                           *)
(* ------------------------------------------------------------------ *)

let init _ idx = List.fold_left (fun h i -> (h * 31) + i + 17) 7 idx

let test_fault_injection_soundness () =
  let clean = List.map (fun (name, src) -> (name, outcome_of src)) programs in
  List.iter
    (fun seed ->
      Analyses.set_fault_injection ~seed ~rate:0.10;
      Budget.Telemetry.reset ();
      Fun.protect ~finally:Analyses.clear_fault_injection (fun () ->
          List.iter
            (fun (name, src) ->
              let faulty = outcome_of src in
              let cl = List.assoc name clean in
              let sub label a b =
                if not (subset a b) then
                  Alcotest.failf
                    "%s (seed %d): faulty %s [%s] not a subset of clean [%s]"
                    name seed label (String.concat "; " a)
                    (String.concat "; " b)
              in
              sub "dead set" faulty.dead cl.dead;
              sub "std doalls" faulty.std_doalls cl.std_doalls;
              sub "ext doalls" faulty.ext_doalls cl.ext_doalls;
              sub "live set (clean within faulty)" cl.live faulty.live)
            programs;
          check bool_t
            (Printf.sprintf "seed %d: faults actually fired" seed)
            true
            ((Budget.Telemetry.current ()).Budget.Telemetry.gave_up_injected
            > 0);
          (* a degraded plan must still execute soundly *)
          List.iter
            (fun name ->
              let prog = parse (Corpus.find name) in
              let vs = Xform.Parallel.analyze (Xform.Graph.build prog) in
              let pl = Xform.Exec.plan Xform.Exec.Ext vs in
              let syms =
                match
                  Xform.Oracle.pick_syms ~candidates:[ 8; 4; 2; 5; 50; 100 ]
                    prog
                with
                | Some s -> s
                | None -> []
              in
              let serial = Xform.Exec.run_serial ~init prog ~syms in
              let mem, _ =
                Xform.Exec.run_parallel ~pool:(Test_exec.pool ()) ~init pl
                  prog ~syms
              in
              if not (Xform.Exec.equal_mem serial mem) then
                Alcotest.failf
                  "%s (seed %d): degraded plan diverges from serial: %s" name
                  seed
                  (Xform.Exec.diff_string (Xform.Exec.diff_mem serial mem)))
            [ "temp_reuse"; "copyin"; "kill_chain" ]))
    [ 1; 42 ];
  Analyses.Memo.reset ()

(* The fault stream is a pure function of (seed, canonical query key),
   never of execution order, so a domain-sharded analysis faults exactly
   the queries a serial one does: the assumed-dependence sets come out
   identical — not merely conservative — at any width.  (Conservatism
   w.r.t. the clean run is asserted again on the sharded outcomes, so a
   regression to order-dependent faulting fails loudly here.) *)
let test_fault_injection_parallel () =
  let clean = List.map (fun (name, src) -> (name, outcome_of src)) programs in
  Analyses.set_fault_injection ~seed:42 ~rate:0.10;
  Fun.protect
    ~finally:(fun () ->
      Analyses.clear_fault_injection ();
      Par.set_domains 1)
    (fun () ->
      let run () =
        List.map (fun (name, src) -> (name, outcome_of src)) programs
      in
      let serial = run () in
      Par.set_domains 3;
      let sharded = run () in
      Par.set_domains 1;
      List.iter2
        (fun (name, (s : outcome)) (_, (p : outcome)) ->
          if s <> p then
            Alcotest.failf
              "%s: 3-domain faulty outcome differs from serial faulty \
               outcome (dead %d/%d, live %d/%d)"
              name
              (List.length p.dead) (List.length s.dead)
              (List.length p.live) (List.length s.live))
        serial sharded;
      List.iter
        (fun (name, (f : outcome)) ->
          let cl = List.assoc name clean in
          let sub label a b =
            if not (subset a b) then
              Alcotest.failf
                "%s: sharded faulty %s not a subset of clean's" name label
          in
          sub "dead set" f.dead cl.dead;
          sub "std doalls" f.std_doalls cl.std_doalls;
          sub "ext doalls" f.ext_doalls cl.ext_doalls;
          sub "live set (clean within faulty)" cl.live f.live)
        sharded);
  Analyses.Memo.reset ()

let suite =
  ( "robust",
    [
      Alcotest.test_case "totality: corpus + stress, default budget" `Quick
        test_totality_default;
      Alcotest.test_case "totality: corpus + stress, tiny budget" `Quick
        test_totality_tiny;
      Alcotest.test_case "tightening budgets only shrinks what is proved"
        `Quick test_budget_monotonicity;
      Alcotest.test_case "fault injection: plans degrade soundly" `Quick
        test_fault_injection_soundness;
      Alcotest.test_case
        "fault injection: serial and sharded runs fault identically" `Quick
        test_fault_injection_parallel;
    ] )
