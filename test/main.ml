let () =
  Alcotest.run "odep"
    [
      Test_zint.suite;
      Test_omega.suite;
      Test_lang.suite;
      Test_depend.suite;
      Test_e2e.suite;
      Test_xform.suite;
      Test_exec.suite;
      Test_vm.suite;
      Test_opt.suite;
      Test_misc.suite;
      Test_robust.suite;
      Test_perf.suite;
      Test_par_analysis.suite;
      Test_serve.suite;
      Test_portfolio.suite;
    ]
