(* The tiered decision portfolio (DESIGN.md section 12).

   - soundness: a screen verdict, when not Unknown, must agree with the
     complete procedure (QCheck, over the boxed random problems of the
     brute-force oracle);
   - the GCD/divisibility and interval screens on hand-built problems
     and on the figure 6/7 write/read pair corpus, where the cascade
     must reproduce the Omega-only dependence vectors exactly;
   - degradation: an exhausted plan gives up instead of answering, and
     tightening the budget can only turn Proved into Gave_up — never
     flip a verdict. *)

open Omega
open Depend

let check = Alcotest.check
let bool_t = Alcotest.bool

let with_backend b f =
  let saved = !Portfolio.backend in
  Portfolio.backend := b;
  Fun.protect ~finally:(fun () -> Portfolio.backend := saved) f

(* ------------------------------------------------------------------ *)
(* Hand-built screen instances                                         *)
(* ------------------------------------------------------------------ *)

let v name = Var.fresh name
let i n = Linexpr.of_int n
let t c x = Linexpr.scale (Zint.of_int c) (Linexpr.var x)

let decide_str = function
  | `Sat -> "sat"
  | `Unsat -> "unsat"
  | `Unknown -> "unknown"

let str_t = Alcotest.string

let unit_tests =
  [
    ( "screen: GCD refutes 2x = 3",
      `Quick,
      fun () ->
        let x = v "x" in
        let p = Problem.of_list [ Constr.eq2 (t 2 x) (i 3) ] in
        check str_t "gcd contra" "unsat" (decide_str (Screen.decide p)) );
    ( "screen: witness accepts 2x = 4 in a box",
      `Quick,
      fun () ->
        let x = v "x" in
        let p =
          Problem.of_list
            [
              Constr.eq2 (t 2 x) (i 4);
              Constr.ge (Linexpr.var x) (i 0);
              Constr.le (Linexpr.var x) (i 3);
            ]
        in
        check str_t "witnessed" "sat" (decide_str (Screen.decide p)) );
    ( "screen: crossed interval is empty",
      `Quick,
      fun () ->
        let x = v "x" in
        let p =
          Problem.of_list
            [ Constr.ge (Linexpr.var x) (i 7); Constr.le (Linexpr.var x) (i 5) ]
        in
        check str_t "empty box" "unsat" (decide_str (Screen.decide p)) );
    ( "screen: Banerjee bound refutes x - y >= 20 on [1,10]^2",
      `Quick,
      fun () ->
        let x = v "x" and y = v "y" in
        let box w =
          [
            Constr.ge (Linexpr.var w) (i 1); Constr.le (Linexpr.var w) (i 10);
          ]
        in
        let p =
          Problem.of_list
            (Constr.ge (Linexpr.sub (Linexpr.var x) (Linexpr.var y)) (i 20)
            :: (box x @ box y))
        in
        check str_t "bound check" "unsat" (decide_str (Screen.decide p)) );
    ( "screen: box witness accepts a satisfiable square",
      `Quick,
      fun () ->
        let x = v "x" and y = v "y" in
        let box w =
          [
            Constr.ge (Linexpr.var w) (i 0); Constr.le (Linexpr.var w) (i 5);
          ]
        in
        let p =
          Problem.of_list
            (Constr.ge (Linexpr.add (Linexpr.var x) (Linexpr.var y)) (i 0)
            :: (box x @ box y))
        in
        check str_t "witnessed" "sat" (decide_str (Screen.decide p)) );
    ( "portfolio: first definite tier wins and is attributed",
      `Quick,
      fun () ->
        with_backend Portfolio.Cascade @@ fun () ->
        let tiers =
          Portfolio.plan
            ~screen:(fun () -> Screen.Proved)
            ~complete:(fun () -> Screen.Disproved)
            ()
        in
        match Portfolio.decide ~label:"test/first-wins" tiers with
        | Budget.Proved, Some Portfolio.Tier_screen -> ()
        | v, _ ->
          Alcotest.failf "expected screen-tier Proved, got %s"
            (Budget.verdict_to_string v) );
    ( "portfolio: exhausted plan gives up as Incomplete",
      `Quick,
      fun () ->
        with_backend Portfolio.Screen @@ fun () ->
        let tiers =
          Portfolio.plan
            ~screen:(fun () -> Screen.Unknown)
            ~complete:(fun () -> Screen.Proved)
            ()
        in
        match Portfolio.decide ~label:"test/incomplete" tiers with
        | Budget.Gave_up Budget.Incomplete, None -> ()
        | v, _ ->
          Alcotest.failf "expected Gave_up incomplete, got %s"
            (Budget.verdict_to_string v) );
    ( "portfolio: cascade degrades monotonically under fuel",
      `Quick,
      fun () ->
        with_backend Portfolio.Cascade @@ fun () ->
        let burn n =
          Budget.with_meter (fun m ->
              for _ = 1 to n do
                Budget.tick m
              done)
        in
        let verdict_at fuel =
          Budget.with_limits { Budget.default with Budget.fuel } (fun () ->
              fst
                (Portfolio.decide ~label:"test/degrade"
                   (Portfolio.plan
                      ~screen:(fun () -> Screen.Unknown)
                      ~complete:(fun () ->
                        burn 50;
                        Screen.Proved)
                      ())))
        in
        (match verdict_at 1 with
        | Budget.Gave_up Budget.Fuel -> ()
        | v ->
          Alcotest.failf "tight budget: expected Gave_up fuel, got %s"
            (Budget.verdict_to_string v));
        check bool_t "loose budget proves" true (verdict_at 10_000 = Budget.Proved);
        (* once the budget is large enough to prove, every larger budget
           still proves: no flip back to Gave_up as fuel grows *)
        let proved = ref false in
        List.iter
          (fun fuel ->
            match verdict_at fuel with
            | Budget.Proved -> proved := true
            | Budget.Gave_up _ ->
              check bool_t
                (Printf.sprintf "no flip back at fuel %d" fuel)
                false !proved
            | Budget.Disproved -> Alcotest.fail "verdict flipped to Disproved")
          [ 1; 2; 5; 10; 25; 60; 100; 1_000; 10_000 ] );
  ]

(* ------------------------------------------------------------------ *)
(* Figure 6/7 pair corpus: cascade = Omega-only, screens exercised      *)
(* ------------------------------------------------------------------ *)

let pair_lines () =
  List.concat_map
    (fun name ->
      Analyses.Memo.reset ();
      let prog = Lang.Sema.parse_and_analyze (Corpus.find name) in
      let ctx = Depctx.create prog in
      let outputs = Deps.all ctx Deps.Output in
      let writes = Lang.Ir.writes prog and reads = Lang.Ir.reads prog in
      List.concat_map
        (fun (a : Lang.Ir.access) ->
          List.filter_map
            (fun (b : Lang.Ir.access) ->
              if a.Lang.Ir.array <> b.Lang.Ir.array then None
              else
                match Deps.compute ctx ~src:a ~dst:b ~kind:Deps.Flow with
                | None ->
                  Some
                    (Printf.sprintf "%s %s->%s none" name a.Lang.Ir.label
                       b.Lang.Ir.label)
                | Some dep ->
                  (* the extended per-pair machinery — refinement and
                     cover tests are the section-4 analyses that route
                     through the portfolio *)
                  let refined =
                    if not (Driver.refinement_possible outputs a) then None
                    else
                      let pinned = Analyses.refine ctx ~src:a ~dst:b in
                      if pinned = [] then None
                      else
                        Some (Analyses.refined_vectors ctx ~src:a ~dst:b pinned)
                  in
                  let vectors =
                    match refined with
                    | Some vs -> vs
                    | None -> dep.Deps.vectors
                  in
                  let covers =
                    Driver.cover_possible vectors
                    && Analyses.covers ctx ~src:a ~dst:b
                  in
                  Some
                    (Printf.sprintf "%s %s->%s %s covers=%b" name
                       a.Lang.Ir.label b.Lang.Ir.label
                       (String.concat ","
                          (List.map Dirvec.to_string vectors))
                       covers))
            reads)
        writes)
    Corpus.timing_population

let corpus_tests =
  [
    ( "pair corpus: cascade vectors = Omega-only vectors",
      `Quick,
      fun () ->
        let omega_only = with_backend Portfolio.Omega pair_lines in
        Portfolio.Stats.reset ();
        let cascaded = with_backend Portfolio.Cascade pair_lines in
        let tiers = Portfolio.Stats.current () in
        check bool_t "pair corpus is non-trivial" true (omega_only <> []);
        check (Alcotest.list str_t) "identical dependence vectors" omega_only
          cascaded;
        check bool_t "screen tier consulted" true
          (tiers.Portfolio.Stats.screen.Portfolio.Stats.attempts > 0);
        check bool_t "screen tier decided some queries" true
          (tiers.Portfolio.Stats.screen.Portfolio.Stats.decides > 0) );
  ]

(* ------------------------------------------------------------------ *)
(* QCheck: screens never contradict the complete procedure             *)
(* ------------------------------------------------------------------ *)

let prop_tests =
  [
    QCheck.Test.make ~name:"screen decide agrees with Elim.satisfiable"
      ~count:500 (Oracle.arb_problem ()) (fun (p, _, _, _) ->
        match Screen.decide p with
        | `Sat -> Elim.satisfiable p
        | `Unsat -> not (Elim.satisfiable p)
        | `Unknown -> true);
    QCheck.Test.make ~name:"screen implies agrees with Gist.implies"
      ~count:300
      (QCheck.pair (Oracle.arb_problem ()) (Oracle.arb_problem ()))
      (fun ((p, _, _, _), (q, _, _, _)) ->
        match Screen.implies_problem p q with
        | Screen.Proved -> Gist.implies p q
        | Screen.Disproved -> not (Gist.implies p q)
        | Screen.Unknown -> true);
    QCheck.Test.make
      ~name:"screen implies_exists agrees with the complete procedure"
      ~count:300
      (QCheck.pair (Oracle.arb_problem ()) (Oracle.arb_problem ()))
      (fun ((p, _, _, _), (q, _, _, _)) ->
        match Screen.implies_exists ~hyp:[] [ p ] ~evars:[] [ q ] with
        | Screen.Proved -> Gist.implies p q
        | Screen.Disproved -> not (Gist.implies p q)
        | Screen.Unknown -> true);
  ]

let suite =
  ( "portfolio",
    unit_tests @ corpus_tests
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) prop_tests )
