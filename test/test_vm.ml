(* Differential testing of the bytecode compiler + VM (Lang.Compile /
   Lang.Vm) against the tracing interpreter.

   The contract: for every program the compiler accepts, the VM's final
   arena must be bit-identical to interpreter execution — serially, and
   under parallel plans (std and ext) chunked over a 4-domain pool.
   Total-memory equality is checked both ways: every location the
   interpreter wrote matches the arena, and every arena cell it never
   wrote still holds its initial value.

   Programs with opaque subscripts or bounds (index arrays) are outside
   the compiler's domain and must raise Compile.Unsupported — also
   checked, so a silently mis-compiled opaque kernel can't hide. *)

open Lang

let check = Alcotest.check
let bool_t = Alcotest.bool

(* Same deterministic nonzero fill as test_exec. *)
let init _ idx = List.fold_left (fun h i -> (h * 31) + i + 17) 7 idx

let pool () = Test_exec.pool ()

let analyze_src src =
  let prog = Sema.analyze (Parser.parse_string src) in
  (prog, Xform.Parallel.analyze (Xform.Graph.build prog))

let sym_settings =
  [ [ 3; 4; 2; 5; 6; 1; 10; 50; 100 ]; [ 7; 5; 2; 10; 1; 50; 100 ] ]

(* ------------------------------------------------------------------ *)
(* Corpus differential                                                 *)
(* ------------------------------------------------------------------ *)

let test_corpus_differential () =
  let executed = ref 0 in
  let unsupported = ref [] in
  List.iter
    (fun (name, src) ->
      let prog, vs = analyze_src src in
      List.iteri
        (fun si candidates ->
          match Xform.Oracle.pick_syms ~candidates prog with
          | None -> ()
          | Some syms -> (
            match Xform.Exec.run_serial ~init prog ~syms with
            | exception Interp.Runtime_error _ -> ()
            | serial -> (
              match Xform.Exec.run_serial_vm ~init prog ~syms with
              | exception Compile.Unsupported _ ->
                unsupported := name :: !unsupported
              | tvm ->
                incr executed;
                (match Vm.check_against ~init tvm serial with
                | [] -> ()
                | diffs ->
                  Alcotest.failf "%s (setting %d, serial VM) diverges: %s" name
                    si
                    (Vm.diff_string diffs));
                List.iter
                  (fun (label, side) ->
                    let pl = Xform.Exec.plan side vs in
                    (* par_threshold 0: force even tiny regions through
                       the parallel path so it actually gets exercised *)
                    let tpar, stats =
                      Xform.Exec.run_parallel_vm ~pool:(pool ())
                        ~par_threshold:0 ~init pl prog ~syms
                    in
                    check Alcotest.int
                      (Printf.sprintf "%s: pool of 4" name)
                      4 stats.Xform.Exec.x_domains;
                    if not (Vm.equal_state tvm tpar) then
                      Alcotest.failf
                        "%s (setting %d, %s plan, %d regions) parallel VM \
                         diverges: %s"
                        name si label stats.Xform.Exec.x_regions
                        (Vm.diff_string (Vm.check_against ~init tpar serial)))
                  [ ("std", Xform.Exec.Std); ("ext", Xform.Exec.Ext) ])))
        sym_settings)
    Corpus.all;
  check bool_t "at least 60 program/setting runs executed" true
    (!executed >= 60);
  (* opacity must be the only reason for rejection *)
  List.iter
    (fun n ->
      check bool_t
        (Printf.sprintf "%s rejected only for opacity" n)
        true
        (List.mem n [ "example8"; "example9"; "example10"; "example11" ]))
    (List.sort_uniq compare !unsupported)

(* ------------------------------------------------------------------ *)
(* Threshold fallback and copy-in are both load-bearing                *)
(* ------------------------------------------------------------------ *)

(* Under the default threshold, tiny regions are inlined (x_inline > 0,
   no chunks); with threshold 0 they dispatch.  Final state identical
   either way. *)
let test_threshold_inlines_small_regions () =
  let prog, vs = analyze_src (Corpus.find "example6") in
  let syms = [ ("n", 10); ("m", 10) ] in
  let pl = Xform.Exec.plan Xform.Exec.Ext vs in
  let serial = Xform.Exec.run_serial ~init prog ~syms in
  let t_thr, s_thr =
    Xform.Exec.run_parallel_vm ~pool:(pool ()) ~init pl prog ~syms
  in
  let t_par, s_par =
    Xform.Exec.run_parallel_vm ~pool:(pool ()) ~par_threshold:0 ~init pl prog
      ~syms
  in
  check bool_t "small regions inlined under default threshold" true
    (s_thr.Xform.Exec.x_inline > 0 && s_thr.Xform.Exec.x_regions = 0);
  check bool_t "threshold 0 dispatches them" true
    (s_par.Xform.Exec.x_regions > 0);
  check bool_t "inlined result matches interpreter" true
    (Vm.check_against ~init t_thr serial = []);
  check bool_t "dispatched result matches interpreter" true
    (Vm.check_against ~init t_par serial = [])

(* Slab copy-in is what feeds first-read-before-write iterations of a
   privatized array; disabling it must diverge on the copyin kernel. *)
let test_copy_in_load_bearing () =
  let prog, vs = analyze_src (Corpus.find "copyin") in
  let syms = [ ("n", 30); ("m", 30) ] in
  let pl = Xform.Exec.plan Xform.Exec.Ext vs in
  check bool_t "copyin kernel has an ext doall" true
    (Xform.Exec.doall_count pl > 0);
  let serial = Xform.Exec.run_serial ~init prog ~syms in
  let t_ok, _ =
    Xform.Exec.run_parallel_vm ~pool:(pool ()) ~par_threshold:0 ~init pl prog
      ~syms
  in
  let t_bad, _ =
    Xform.Exec.run_parallel_vm ~pool:(pool ()) ~par_threshold:0 ~init
      ~no_copy_in:true pl prog ~syms
  in
  check bool_t "with copy-in: matches serial" true
    (Vm.check_against ~init t_ok serial = []);
  check bool_t "without copy-in: diverges" false
    (Vm.check_against ~init t_bad serial = [])

(* ------------------------------------------------------------------ *)
(* Random nests: compilation matches interpretation bit-for-bit        *)
(* ------------------------------------------------------------------ *)

let prop_vm_matches_interp (ast : Ast.program) : bool =
  let prog = Sema.analyze ast in
  let vs = Xform.Parallel.analyze (Xform.Graph.build prog) in
  List.for_all
    (fun nval ->
      let syms = [ ("n", nval) ] in
      match Xform.Exec.run_serial ~init prog ~syms with
      | exception Interp.Runtime_error _ -> true
      | serial ->
        let tvm = Xform.Exec.run_serial_vm ~init prog ~syms in
        Vm.check_against ~init tvm serial = []
        && List.for_all
             (fun side ->
               let pl = Xform.Exec.plan side vs in
               let tpar, _ =
                 Xform.Exec.run_parallel_vm ~pool:(pool ()) ~par_threshold:0
                   ~init pl prog ~syms
               in
               Vm.equal_state tvm tpar)
             [ Xform.Exec.Std; Xform.Exec.Ext ])
    [ 3; 4 ]

let prop_tests =
  [
    QCheck.Test.make
      ~name:"random nests: compiled VM (serial + parallel) matches interpreter"
      ~count:60 Test_exec.arb_nest prop_vm_matches_interp;
  ]

let suite =
  ( "vm",
    [
      Alcotest.test_case "corpus: VM serial + parallel match interpreter"
        `Quick test_corpus_differential;
      Alcotest.test_case "tiny regions inline below par threshold" `Quick
        test_threshold_inlines_small_regions;
      Alcotest.test_case "slab copy-in is load-bearing" `Quick
        test_copy_in_load_bearing;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) prop_tests )
