(* Differential testing of the parallel doall executor (Xform.Exec).

   The single property everything here instantiates: executing a program
   with its analysis-derived plan (std or ext side) over a multi-domain
   pool must leave the final array state bit-identical to serial
   execution.  Any divergence is a soundness bug somewhere in the
   analysis chain - a dependence wrongly killed, a privatization wrongly
   granted, a doall wrongly legal - caught here automatically.

   Also checked: the harness itself can detect illegality (an injected
   bogus plan on a wavefront diverges), so a green corpus run means
   something. *)

open Lang

let check = Alcotest.check
let bool_t = Alcotest.bool

(* Deterministic nonzero initial contents so wrong values propagate
   (all-zero arrays make many stale reads coincidentally correct). *)
let init _ idx = List.fold_left (fun h i -> (h * 31) + i + 17) 7 idx

(* One pool for the whole test binary, sized past the single-CPU
   container so regions really run on several domains.  Shut down at
   exit so the spawned domains are joined before the runtime tears
   down. *)
let shared_pool =
  lazy
    (let p = Xform.Exec.create_pool ~size:4 () in
     at_exit (fun () -> Xform.Exec.shutdown p);
     p)

let pool () = Lazy.force shared_pool

let analyze_src src =
  let prog = Sema.analyze (Parser.parse_string src) in
  let g = Xform.Graph.build prog in
  (prog, g, Xform.Parallel.analyze g)

(* ------------------------------------------------------------------ *)
(* Corpus differential: every program, two symbolic settings            *)
(* ------------------------------------------------------------------ *)

(* Two different candidate grids for Oracle.pick_syms give two different
   symbolic-constant settings per program (both grids include the large
   values needed by assumptions like example7's [50 <= n <= 100]). *)
let sym_settings =
  [ [ 3; 4; 2; 5; 6; 1; 10; 50; 100 ]; [ 7; 5; 2; 10; 1; 50; 100 ] ]

let test_corpus_differential () =
  let executed = ref 0 in
  List.iter
    (fun (name, src) ->
      let prog, _, vs = analyze_src src in
      List.iteri
        (fun si candidates ->
          match Xform.Oracle.pick_syms ~candidates prog with
          | None -> ()
          | Some syms -> (
            match Xform.Exec.run_serial ~init prog ~syms with
            | exception Interp.Runtime_error _ ->
              (* index-array opacity etc.: skipped on every side alike *)
              ()
            | serial ->
              incr executed;
              List.iter
                (fun (label, side) ->
                  let pl = Xform.Exec.plan side vs in
                  let mem, stats =
                    Xform.Exec.run_parallel ~pool:(pool ()) ~init pl prog
                      ~syms
                  in
                  check Alcotest.int
                    (Printf.sprintf "%s: pool of 4" name)
                    4 stats.Xform.Exec.x_domains;
                  if not (Xform.Exec.equal_mem serial mem) then
                    Alcotest.failf
                      "%s (setting %d, %s plan, %d regions) diverges: %s"
                      name si label stats.Xform.Exec.x_regions
                      (Xform.Exec.diff_string
                         (Xform.Exec.diff_mem serial mem)))
                [ ("std", Xform.Exec.Std); ("ext", Xform.Exec.Ext) ]))
        sym_settings)
    Corpus.all;
  (* the harness must not silently skip its way to green *)
  check bool_t "at least 60 program/setting runs executed" true
    (!executed >= 60)

(* ------------------------------------------------------------------ *)
(* The harness can detect illegality                                    *)
(* ------------------------------------------------------------------ *)

let test_illegal_plan_diverges () =
  let prog, g, vs = analyze_src (Corpus.find "wavefront1") in
  (* sanity: no analysis side actually parallelizes the wavefront *)
  List.iter
    (fun side ->
      check Alcotest.int "wavefront1 has no legal doall" 0
        (Xform.Exec.doall_count (Xform.Exec.plan side vs)))
    [ Xform.Exec.Std; Xform.Exec.Ext ];
  let outer =
    List.find (fun (l : Xform.Graph.loop_info) -> l.Xform.Graph.l_depth = 1)
      g.Xform.Graph.loops
  in
  let bogus =
    {
      Xform.Exec.pl_side = Xform.Exec.Ext;
      pl_doall = [ (outer.Xform.Graph.l_node, []) ];
    }
  in
  let syms = [ ("n", 12); ("m", 12) ] in
  let serial = Xform.Exec.run_serial ~init prog ~syms in
  let mem, stats =
    Xform.Exec.run_parallel ~pool:(pool ()) ~init bogus prog ~syms
  in
  check bool_t "bogus plan actually split the loop" true
    (stats.Xform.Exec.x_chunks > 1);
  check bool_t
    "parallelizing a loop with live carried flow diverges from serial" false
    (Xform.Exec.equal_mem serial mem)

(* ------------------------------------------------------------------ *)
(* Worker faults: no deadlock, serial fallback, pool stays healthy      *)
(* ------------------------------------------------------------------ *)

exception Injected_chunk_fault

let test_worker_fault_falls_back () =
  let prog, _, vs = analyze_src (Corpus.find "temp_reuse") in
  let syms =
    match
      Xform.Oracle.pick_syms ~candidates:[ 8; 4; 2; 5; 10; 50; 100 ] prog
    with
    | Some s -> s
    | None -> Alcotest.fail "no symbolic setting for temp_reuse"
  in
  let pl = Xform.Exec.plan Xform.Exec.Ext vs in
  check bool_t "temp_reuse has an ext doall" true
    (Xform.Exec.doall_count pl > 0);
  let serial = Xform.Exec.run_serial ~init prog ~syms in
  (* chunk 1 of every region faults: the pool must drain rather than
     deadlock, and the region must fall back to serial execution *)
  let chunk_fault c = if c = 1 then raise Injected_chunk_fault in
  let mem, stats =
    Xform.Exec.run_parallel ~pool:(pool ()) ~init ~chunk_fault pl prog ~syms
  in
  check bool_t "interp backend took the serial fallback" true
    (stats.Xform.Exec.x_fallbacks > 0);
  if not (Xform.Exec.equal_mem serial mem) then
    Alcotest.failf "interp fault fallback diverges: %s"
      (Xform.Exec.diff_string (Xform.Exec.diff_mem serial mem));
  let tvm, vstats =
    Xform.Exec.run_parallel_vm ~pool:(pool ()) ~par_threshold:0 ~init
      ~chunk_fault pl prog ~syms
  in
  check bool_t "VM backend took the serial fallback" true
    (vstats.Xform.Exec.x_fallbacks > 0);
  (match Vm.check_against ~init tvm serial with
  | [] -> ()
  | diffs ->
    Alcotest.failf "VM fault fallback diverges: %s" (Vm.diff_string diffs));
  (* a clean run on the same pool right after: nothing wedged *)
  let mem2, stats2 =
    Xform.Exec.run_parallel ~pool:(pool ()) ~init pl prog ~syms
  in
  check bool_t "pool healthy after faulted regions" true
    (stats2.Xform.Exec.x_fallbacks = 0 && Xform.Exec.equal_mem serial mem2)

(* ------------------------------------------------------------------ *)
(* Random nests: QCheck property with a shrinking counterexample        *)
(* ------------------------------------------------------------------ *)

(* Statement-list shrinker: drop any one statement, anywhere in the
   tree (a loop whose body empties is dropped whole).  Paired with the
   e2e generator this turns a failing random nest into a minimal
   counterexample report. *)
let rec drop_one (stmts : Ast.stmt list) : Ast.stmt list QCheck.Iter.t =
  let open QCheck.Iter in
  match stmts with
  | [] -> empty
  | s :: rest ->
    return rest
    <+> (match s with
        | Ast.Assign _ -> empty
        | Ast.For ({ body; _ } as f) ->
          drop_one body
          |> QCheck.Iter.filter (fun b -> b <> [])
          >|= fun body -> Ast.For { f with body } :: rest)
    <+> (drop_one rest >|= fun rest' -> s :: rest')

let shrink_program (p : Ast.program) : Ast.program QCheck.Iter.t =
  QCheck.Iter.map (fun stmts -> { p with Ast.stmts }) (drop_one p.Ast.stmts)

let arb_nest =
  QCheck.make ~print:Ast.program_to_string ~shrink:shrink_program
    (QCheck.gen Test_e2e.arb_program)

let prop_parallel_matches_serial (ast : Ast.program) : bool =
  let prog = Sema.analyze ast in
  let g = Xform.Graph.build prog in
  let vs = Xform.Parallel.analyze g in
  List.for_all
    (fun nval ->
      let syms = [ ("n", nval) ] in
      match Xform.Exec.run_serial ~init prog ~syms with
      | exception Interp.Runtime_error _ -> true
      | serial ->
        List.for_all
          (fun side ->
            let pl = Xform.Exec.plan side vs in
            let mem, _ =
              Xform.Exec.run_parallel ~pool:(pool ()) ~init pl prog ~syms
            in
            Xform.Exec.equal_mem serial mem)
          [ Xform.Exec.Std; Xform.Exec.Ext ])
    [ 3; 4 ]

let prop_tests =
  [
    QCheck.Test.make
      ~name:"random nests: parallel execution matches serial" ~count:60
      arb_nest prop_parallel_matches_serial;
  ]

(* The shrinker really shrinks: every candidate it proposes is one
   statement smaller, so a failing nest cannot loop forever and the
   reported counterexample is minimal. *)
let test_shrinker_shrinks () =
  let count_stmts stmts =
    let rec go n = function
      | [] -> n
      | Ast.Assign _ :: rest -> go (n + 1) rest
      | Ast.For { body; _ } :: rest -> go (go (n + 1) body) rest
    in
    go 0 stmts
  in
  let ast =
    Parser.parse_string (Corpus.find "temp_reuse") |> fun p ->
    { p with Ast.decls = p.Ast.decls }
  in
  let n0 = count_stmts ast.Ast.stmts in
  let candidates = ref 0 in
  shrink_program ast (fun smaller ->
      incr candidates;
      check bool_t "candidate is strictly smaller" true
        (count_stmts smaller.Ast.stmts < n0));
  check bool_t "shrinker proposes candidates" true (!candidates > 0)

let suite =
  ( "exec",
    [
      Alcotest.test_case "corpus: parallel plans match serial (2 settings)"
        `Quick test_corpus_differential;
      Alcotest.test_case "injected illegal plan diverges" `Quick
        test_illegal_plan_diverges;
      Alcotest.test_case "worker fault: no deadlock, serial fallback" `Quick
        test_worker_fault_falls_back;
      Alcotest.test_case "program shrinker strictly shrinks" `Quick
        test_shrinker_shrinks;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) prop_tests )
