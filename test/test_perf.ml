(* Regression tests for the solver's performance work (DESIGN.md
   section 9): every hot-path optimization is equivalence-preserving
   and the analysis is deterministic.

   - determinism: the full analysis yields identical dead/live sets and
     doall plans across repeated runs, and across a shift of the global
     Var-id space (fresh variables allocated between runs), so nothing
     in the optimized solver depends on allocation order or on values
     of internal ids;
   - elimination order: [Elim.satisfiable] answers the same with the
     ordering heuristic on or off (any elimination order is
     equisatisfiable), and both agree with brute-force enumeration;
   - redundancy pruning: [Problem.simplify] preserves the exact integer
     solution set with pruning on or off, pointwise over the box;
   - memo bound: the verdict cache never exceeds its capacity, evicts
     FIFO under pressure, and a tiny capacity changes no results. *)

open Omega
open Depend

let check = Alcotest.check
let slist = Alcotest.(list string)

type outcome = {
  dead : string list;
  live : string list;
  std_doalls : string list;
  ext_doalls : string list;
}

let pair_key (fr : Driver.flow_result) =
  Printf.sprintf "%d->%d (%s->%s)" fr.Driver.dep.Deps.src.Lang.Ir.acc_id
    fr.Driver.dep.Deps.dst.Lang.Ir.acc_id
    fr.Driver.dep.Deps.src.Lang.Ir.label fr.Driver.dep.Deps.dst.Lang.Ir.label

(* Parse anew on every call: each run allocates fresh [Var]s for the
   program's loop indices and symbolic constants, so comparing two runs
   also compares analyses over distinct id spaces. *)
let outcome_of src : outcome =
  Analyses.Memo.reset ();
  let prog = Lang.Sema.analyze (Lang.Parser.parse_string src) in
  let r = Driver.analyze prog in
  let dead = Driver.dead_flows r |> List.map pair_key |> List.sort compare in
  let live = Driver.live_flows r |> List.map pair_key |> List.sort compare in
  let vs = Xform.Parallel.analyze (Xform.Graph.build prog) in
  let doalls side =
    List.filter_map
      (fun (v : Xform.Parallel.verdict) ->
        if side v then Some (Xform.Parallel.loop_path v.Xform.Parallel.v_loop)
        else None)
      vs
    |> List.sort compare
  in
  {
    dead;
    live;
    std_doalls = doalls (fun v -> v.Xform.Parallel.v_std_doall);
    ext_doalls = doalls (fun v -> v.Xform.Parallel.v_ext_doall);
  }

let check_outcome name (a : outcome) (b : outcome) =
  check slist (name ^ ": dead") a.dead b.dead;
  check slist (name ^ ": live") a.live b.live;
  check slist (name ^ ": std doalls") a.std_doalls b.std_doalls;
  check slist (name ^ ": ext doalls") a.ext_doalls b.ext_doalls

let test_determinism_reruns () =
  List.iter
    (fun (name, src) -> check_outcome name (outcome_of src) (outcome_of src))
    Corpus.all

let test_determinism_var_ids () =
  List.iter
    (fun (name, src) ->
      let a = outcome_of src in
      (* shift the global id space by a prime stride so the second run's
         variables land on unrelated ids (and unrelated hash buckets) *)
      for _ = 1 to 997 do
        ignore (Var.fresh "pad")
      done;
      let b = outcome_of src in
      check_outcome name a b)
    Corpus.all

(* ------------------------------------------------------------------ *)
(* Ablation equivalence properties                                     *)
(* ------------------------------------------------------------------ *)

let with_flags ~order ~redundancy ~hashcons f =
  Tuning.set ~order ~redundancy ~hashcons;
  Fun.protect ~finally:Tuning.all_on f

let prop_order_equisatisfiable =
  QCheck.Test.make ~count:200 ~name:"heuristic order is equisatisfiable"
    (Oracle.arb_problem ())
    (fun (p, vars, lo, hi) ->
      let sat_heuristic =
        with_flags ~order:true ~redundancy:true ~hashcons:true (fun () ->
            Elim.satisfiable p)
      in
      let sat_rescan =
        with_flags ~order:false ~redundancy:true ~hashcons:true (fun () ->
            Elim.satisfiable p)
      in
      sat_heuristic = sat_rescan
      && sat_heuristic = Oracle.exists_solution vars lo hi p)

let prop_redundancy_preserves_solutions =
  QCheck.Test.make ~count:200
    ~name:"redundancy pruning preserves the solution set"
    (Oracle.arb_problem ())
    (fun (p, vars, lo, hi) ->
      let simplify_under redundancy =
        with_flags ~order:true ~redundancy ~hashcons:true (fun () ->
            Problem.simplify p)
      in
      let holds s env =
        match s with
        | Problem.Contra -> false
        | Problem.Ok q -> Oracle.holds_at env q
      in
      let pruned = simplify_under true in
      let plain = simplify_under false in
      Seq.for_all
        (fun env ->
          let reference = Oracle.holds_at env p in
          holds pruned env = reference && holds plain env = reference)
        (Oracle.assignments vars lo hi))

(* ------------------------------------------------------------------ *)
(* Domain-local id spaces                                              *)
(* ------------------------------------------------------------------ *)

(* Each domain draws Var ids from its own slot of the id space, so
   allocations on concurrently spawned domains can never collide with
   each other or with the main domain's. *)
let prop_var_ids_disjoint =
  QCheck.Test.make ~count:20 ~name:"per-domain Var ids are disjoint"
    QCheck.(pair (int_range 1 4) (int_range 1 128))
    (fun (doms, n) ->
      let ids_of () = List.init n (fun _ -> Var.id (Var.fresh "q")) in
      let spawned = List.init doms (fun _ -> Domain.spawn ids_of) in
      let mine = ids_of () in
      let all = List.concat (mine :: List.map Domain.join spawned) in
      List.length (List.sort_uniq compare all) = List.length all)

(* The canonical (alpha-renamed) memo key erases variable identity
   entirely, so the same query construction performed on different
   domains — whose Var ids live in unrelated slots — produces
   byte-identical keys, and a verdict cached by one domain replays for
   all of them. *)
let prop_canon_key_domain_invariant =
  QCheck.Test.make ~count:30
    ~name:"canonical memo keys are domain-invariant"
    QCheck.(pair (int_range 1 5) (int_range 0 7))
    (fun (n, c) ->
      let build () =
        let xs =
          Array.init n (fun i -> Var.fresh (Printf.sprintf "x%d" i))
        in
        let w = Var.fresh_wild () in
        let cs =
          Constr.eq2 (Linexpr.var w) (Linexpr.var xs.(0))
          :: List.init n (fun i ->
                 Constr.ge (Linexpr.var xs.(i)) (Linexpr.of_int (i + c)))
        in
        Canon.of_problems [ Problem.of_list cs ]
      in
      let here = build () in
      let there = Domain.join (Domain.spawn build) in
      here = there)

(* ------------------------------------------------------------------ *)
(* Memo bound                                                          *)
(* ------------------------------------------------------------------ *)

let test_memo_bound () =
  let saved = !Analyses.Memo.capacity in
  Fun.protect
    ~finally:(fun () ->
      Analyses.Memo.capacity := saved;
      Analyses.Memo.reset ())
    (fun () ->
      let unbounded = outcome_of Corpus.cholsky in
      Analyses.Memo.capacity := 4;
      let bounded = outcome_of Corpus.cholsky in
      check Alcotest.bool "size stays within capacity" true
        (Analyses.Memo.size () <= 4);
      check Alcotest.bool "pressure causes evictions" true
        (Analyses.Memo.stats.Analyses.Memo.evictions > 0);
      check_outcome "cholsky under tiny memo" unbounded bounded)

let unit_tests =
  [
    Alcotest.test_case "determinism across reruns" `Quick
      test_determinism_reruns;
    Alcotest.test_case "determinism across Var-id shifts" `Quick
      test_determinism_var_ids;
    Alcotest.test_case "memo bound and eviction" `Quick test_memo_bound;
  ]

let suite =
  ( "perf",
    unit_tests
    @ List.map
        (QCheck_alcotest.to_alcotest ~long:false)
        [
          prop_order_equisatisfiable;
          prop_redundancy_preserves_solutions;
          prop_var_ids_disjoint;
          prop_canon_key_domain_invariant;
        ] )
