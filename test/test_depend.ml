(* Golden tests for the dependence analyses: the paper's Examples 1-8 and
   the CHOLSKY tables of Figures 3 and 4. *)

open Depend

let analyze name = Driver.analyze (Lang.Sema.parse_and_analyze (Corpus.find name))

let find_flow result ~src ~dst =
  List.find_opt
    (fun (fr : Driver.flow_result) ->
      fr.Driver.dep.Deps.src.Lang.Ir.label = src
      && fr.Driver.dep.Deps.dst.Lang.Ir.label = dst)
    result.Driver.flows

let vec_strings (fr : Driver.flow_result) =
  let vecs =
    match fr.Driver.refined with
    | Some v -> v
    | None -> fr.Driver.dep.Deps.vectors
  in
  List.map Dirvec.to_string vecs

let check_flow result ~src ~dst ~vectors ~dead ~refined ~covers msg =
  match find_flow result ~src ~dst with
  | None -> Alcotest.fail (msg ^ ": dependence not found")
  | Some fr ->
    Alcotest.(check (list string)) (msg ^ ": vectors") vectors (vec_strings fr);
    Alcotest.(check bool) (msg ^ ": dead") dead (fr.Driver.dead <> None);
    Alcotest.(check bool) (msg ^ ": refined") refined (fr.Driver.refined <> None);
    Alcotest.(check bool) (msg ^ ": covers") covers fr.Driver.covers

let unit_tests =
  [
    Alcotest.test_case "example 1: killed flow dependence" `Quick (fun () ->
        let r = analyze "example1" in
        check_flow r ~src:"A" ~dst:"C" ~vectors:[ "()" ] ~dead:true
          ~refined:false ~covers:false "A->C";
        check_flow r ~src:"B" ~dst:"C" ~vectors:[ "()" ] ~dead:false
          ~refined:false ~covers:false "B->C");
    Alcotest.test_case "example 1 variant: kill needs the assertion" `Quick
      (fun () ->
        let r = analyze "example1m" in
        (match find_flow r ~src:"A" ~dst:"C" with
         | Some fr ->
           Alcotest.(check bool) "live without assertion" true
             (fr.Driver.dead = None)
         | None -> Alcotest.fail "dep missing");
        let r = analyze "example1m_assert" in
        match find_flow r ~src:"A" ~dst:"C" with
        | Some fr ->
          Alcotest.(check bool) "killed with assertion" true
            (fr.Driver.dead <> None)
        | None -> Alcotest.fail "dep missing");
    Alcotest.test_case "example 2: covering and killed deps" `Quick (fun () ->
        let r = analyze "example2" in
        (* D: a(L2-1) covers the read and is refined to loop-independent *)
        check_flow r ~src:"D" ~dst:"E" ~vectors:[ "(0)" ] ~dead:false
          ~refined:true ~covers:true "D->E";
        (* B and C flows are dead *)
        (match find_flow r ~src:"B" ~dst:"E" with
         | Some fr -> Alcotest.(check bool) "B->E dead" true (fr.Driver.dead <> None)
         | None -> Alcotest.fail "B->E missing");
        match find_flow r ~src:"C" ~dst:"E" with
        | Some fr -> Alcotest.(check bool) "C->E dead" true (fr.Driver.dead <> None)
        | None -> Alcotest.fail "C->E missing");
    Alcotest.test_case "example 3: refinement (0+,1) -> (0,1)" `Quick
      (fun () ->
        let r = analyze "example3" in
        check_flow r ~src:"s" ~dst:"s" ~vectors:[ "(0,1)" ] ~dead:false
          ~refined:true ~covers:false "s->s");
    Alcotest.test_case "section 4.4: refinement pins distance vectors"
      `Quick (fun () ->
        (* The paper's refinement examples, asserted structurally rather
           than through rendered strings: the apparent dependence admits
           both a loop-independent and an outer-carried form; refinement
           proves every realized dependence has distance exactly (0,1) -
           zero on the outer loop (hence outer doall-able), one on the
           inner.  Same shape for the trapezoidal example 4. *)
        List.iter
          (fun name ->
            let r = analyze name in
            match find_flow r ~src:"s" ~dst:"s" with
            | None -> Alcotest.fail (name ^ ": s->s missing")
            | Some fr ->
              Alcotest.(check int)
                (name ^ ": two apparent vectors before refinement") 2
                (List.length fr.Driver.dep.Deps.vectors);
              Alcotest.(check bool)
                (name ^ ": an outer-carried form is apparent") true
                (List.exists
                   (fun v ->
                     match v with
                     | e :: _ -> e.Dirvec.sign = Dirvec.Pos
                     | [] -> false)
                   fr.Driver.dep.Deps.vectors);
              let refined =
                match fr.Driver.refined with
                | Some vs -> vs
                | None -> Alcotest.fail (name ^ ": not refined")
              in
              (match refined with
              | [ v ] ->
                Alcotest.(check bool)
                  (name ^ ": refined to the distance vector (0,1)") true
                  (Dirvec.equal v [ Dirvec.exact 0; Dirvec.exact 1 ]);
                List.iter2
                  (fun (e : Dirvec.entry) (sign, d) ->
                    Alcotest.(check bool) (name ^ ": entry sign") true
                      (e.Dirvec.sign = sign);
                    Alcotest.(check (option int)) (name ^ ": distance lo")
                      (Some d) e.Dirvec.lo;
                    Alcotest.(check (option int)) (name ^ ": distance hi")
                      (Some d) e.Dirvec.hi)
                  v
                  [ (Dirvec.Zero, 0); (Dirvec.Pos, 1) ]
              | vs ->
                Alcotest.failf "%s: expected one refined vector, got %d" name
                  (List.length vs));
              Alcotest.(check bool)
                (name ^ ": refined vector is not loop-independent") false
                (Dirvec.is_loop_independent (List.hd refined)))
          [ "example3"; "example4" ]);
    Alcotest.test_case "example 4: trapezoidal refinement" `Quick (fun () ->
        let r = analyze "example4" in
        check_flow r ~src:"s" ~dst:"s" ~vectors:[ "(0,1)" ] ~dead:false
          ~refined:true ~covers:false "s->s");
    Alcotest.test_case "example 5: refinement fails, general check passes"
      `Quick (fun () ->
        let r = analyze "example5" in
        (* the generator cannot refine this dependence... *)
        (match find_flow r ~src:"s" ~dst:"s" with
         | Some fr ->
           Alcotest.(check bool) "not refined" true (fr.Driver.refined = None)
         | None -> Alcotest.fail "dep missing");
        (* ...but the general test verifies the paper's (0:1,1) candidate *)
        let prog = Lang.Sema.parse_and_analyze (Corpus.find "example5") in
        let ctx = Depctx.create prog in
        let w = List.hd (Lang.Ir.writes prog) in
        let rd = List.hd (Lang.Ir.reads prog) in
        Alcotest.(check bool) "(0:1,1) verifies" true
          (Analyses.check_refinement ctx ~src:w ~dst:rd
             [ (Some 0, Some 1); (Some 1, Some 1) ]);
        Alcotest.(check bool) "(0,1) does not verify" false
          (Analyses.check_refinement ctx ~src:w ~dst:rd
             [ (Some 0, Some 0); (Some 1, Some 1) ]));
    Alcotest.test_case "example 6: coupled refinement to (1,1)" `Quick
      (fun () ->
        let r = analyze "example6" in
        check_flow r ~src:"s" ~dst:"s" ~vectors:[ "(1,1)" ] ~dead:false
          ~refined:true ~covers:false "s->s");
    Alcotest.test_case "figure 3: CHOLSKY live dependences" `Quick (fun () ->
        let r = analyze "cholsky" in
        let live = Driver.live_flows r in
        let dead = Driver.dead_flows r in
        Alcotest.(check int) "21 live" 21 (List.length live);
        Alcotest.(check int) "14 dead" 14 (List.length dead);
        (* spot-check famous rows *)
        let row src dst =
          List.find_opt
            (fun (fr : Driver.flow_result) ->
              fr.Driver.dep.Deps.src.Lang.Ir.label = src
              && fr.Driver.dep.Deps.dst.Lang.Ir.label = dst)
        in
        (match row "3" "3" live with
         | Some fr ->
           Alcotest.(check (list string)) "3->3 refined vector"
             [ "(0,0,1,0)" ] (vec_strings fr)
         | None -> Alcotest.fail "3->3 live missing");
        (match row "4" "1" live with
         | Some fr ->
           Alcotest.(check bool) "4->1 covers" true fr.Driver.covers;
           Alcotest.(check bool) "4->1 refined" true
             (fr.Driver.refined <> None);
           Alcotest.(check (list string)) "4->1 vector" [ "(0)" ]
             (vec_strings fr)
         | None -> Alcotest.fail "4->1 missing");
        (* counts by status, as in the paper's figures *)
        let covers =
          List.length (List.filter (fun fr -> fr.Driver.covers) live)
        in
        let refined =
          List.length
            (List.filter (fun fr -> fr.Driver.refined <> None) live)
        in
        Alcotest.(check int) "10 live cover tags" 10 covers;
        Alcotest.(check int) "7 live refined tags" 7 refined;
        let covered_dead =
          List.length
            (List.filter
               (fun fr ->
                 match fr.Driver.dead with
                 | Some (Driver.Covered _) -> true
                 | _ -> false)
               dead)
        in
        Alcotest.(check int) "2 covered dead" 2 covered_dead);
    Alcotest.test_case "terminating dependences" `Quick (fun () ->
        (* kill_chain: w2 terminates w1 (every element w1 writes is later
           overwritten by w2) *)
        let prog = Lang.Sema.parse_and_analyze (Corpus.find "kill_chain") in
        let ctx = Depctx.create prog in
        let w1 =
          List.find (fun a -> a.Lang.Ir.label = "w1") (Lang.Ir.writes prog)
        in
        let w2 =
          List.find (fun a -> a.Lang.Ir.label = "w2") (Lang.Ir.writes prog)
        in
        Alcotest.(check bool) "w2 terminates w1" true
          (Analyses.terminates ctx ~src:w1 ~dst:w2);
        Alcotest.(check bool) "w1 does not terminate w2" false
          (Analyses.terminates ctx ~src:w2 ~dst:w1));
    Alcotest.test_case "partial kill leaves the dependence live" `Quick
      (fun () ->
        let r = analyze "partial_kill" in
        match find_flow r ~src:"w1" ~dst:"r" with
        | Some fr ->
          Alcotest.(check bool) "w1->r live" true (fr.Driver.dead = None)
        | None -> Alcotest.fail "w1->r missing");
    Alcotest.test_case "kill chain: w1->r dead, w2->r live" `Quick (fun () ->
        let r = analyze "kill_chain" in
        (match find_flow r ~src:"w1" ~dst:"r" with
         | Some fr ->
           Alcotest.(check bool) "w1->r dead" true (fr.Driver.dead <> None)
         | None -> Alcotest.fail "w1->r missing");
        match find_flow r ~src:"w2" ~dst:"r" with
        | Some fr ->
          Alcotest.(check bool) "w2->r live" true (fr.Driver.dead = None)
        | None -> Alcotest.fail "w2->r missing");
    Alcotest.test_case "independent kill within an iteration" `Quick
      (fun () ->
        let r = analyze "independent_kill" in
        (match find_flow r ~src:"w1" ~dst:"r" with
         | Some fr ->
           Alcotest.(check bool) "w1->r dead" true (fr.Driver.dead <> None)
         | None -> Alcotest.fail "w1->r missing");
        match find_flow r ~src:"w2" ~dst:"r" with
        | Some fr ->
          Alcotest.(check bool) "w2->r live" true (fr.Driver.dead = None)
        | None -> Alcotest.fail "w2->r missing");
    Alcotest.test_case "example 7: symbolic conditions" `Quick (fun () ->
        let prog = Lang.Sema.parse_and_analyze (Corpus.find "example7") in
        let ctx = Depctx.create prog in
        let w = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.writes prog) in
        let rd = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.reads prog) in
        let outer =
          Symbolic.analyze ctx ~src:w ~dst:rd
            ~restraint:[ Dirvec.Pos; Dirvec.Any ] ~hide:[ "n" ] ()
        in
        (match outer.Symbolic.cond with
         | Symbolic.When g ->
           (* condition must be exactly 1 <= x <= 50 *)
           let x = Depctx.sym_var ctx "x" in
           (match Omega.minimize g x, Omega.maximize g x with
            | `Min lo, `Max hi ->
              Alcotest.(check int) "x min" 1 (Zint.to_int lo);
              Alcotest.(check int) "x max" 50 (Zint.to_int hi)
            | _ -> Alcotest.fail "x not bounded")
         | _ -> Alcotest.fail "expected a condition for (+,*)");
        let inner =
          Symbolic.analyze ctx ~src:w ~dst:rd
            ~restraint:[ Dirvec.Zero; Dirvec.Pos ] ~hide:[ "n" ] ()
        in
        match inner.Symbolic.cond with
        | Symbolic.When g ->
          let x = Depctx.sym_var ctx "x" in
          (match Omega.minimize g x, Omega.maximize g x with
           | `Min lo, `Max hi ->
             Alcotest.(check int) "x = 0" 0 (Zint.to_int lo);
             Alcotest.(check int) "x = 0 (max)" 0 (Zint.to_int hi)
           | _ -> Alcotest.fail "x not pinned")
        | _ -> Alcotest.fail "expected a condition for (0,+)");
    Alcotest.test_case "example 8: index array queries and assertions" `Quick
      (fun () ->
        let prog = Lang.Sema.parse_and_analyze (Corpus.find "example8") in
        let ctx = Depctx.create prog in
        let w = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.writes prog) in
        let an =
          Symbolic.analyze ctx ~src:w ~dst:w ~restraint:[ Dirvec.Pos ] ()
        in
        (match an.Symbolic.cond with
         | Symbolic.When g ->
           (* the new information is exactly one equality: Q[a] = Q[b] *)
           (match Omega.Problem.constraints g with
            | [ c ] ->
              Alcotest.(check bool) "is equality" true
                (Omega.Constr.kind c = Omega.Constr.Eq)
            | _ -> Alcotest.fail "expected exactly one condition")
         | _ -> Alcotest.fail "expected a condition");
        Alcotest.(check bool) "output dep without assertion" true
          (Symbolic.dependence_exists_with ctx ~src:w ~dst:w ~props:[]);
        Alcotest.(check bool) "no output dep when injective" false
          (Symbolic.dependence_exists_with ctx ~src:w ~dst:w
             ~props:[ ("q", Symbolic.Injective) ]));
    Alcotest.test_case "example 11: induction kills the s141 dependences"
      `Quick (fun () ->
        let prog = Lang.Sema.parse_and_analyze (Corpus.find "example11") in
        let ctx = Depctx.create prog in
        let accs = Induction.detect ctx in
        (match accs with
         | [ { Induction.scalar = "k"; _ } ] -> ()
         | _ -> Alcotest.fail "expected to detect the accumulator k");
        let props =
          List.map
            (fun (a : Induction.accumulator) ->
              (a.Induction.scalar, Symbolic.Accumulator a.Induction.increment))
            accs
        in
        let w = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.writes prog) in
        let r = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.reads prog) in
        Alcotest.(check bool) "output dep without facts" true
          (Symbolic.dependence_exists_with ctx ~src:w ~dst:w ~props:[]);
        Alcotest.(check bool) "output dep with induction" false
          (Symbolic.dependence_exists_with ctx ~src:w ~dst:w ~props);
        Alcotest.(check bool) "carried flow dep with induction" false
          (Symbolic.dependence_exists_with ctx ~src:w ~dst:r ~props));
    Alcotest.test_case "induction rejects non-accumulators" `Quick (fun () ->
        (* decreasing increment: not recognized *)
        let prog =
          Lang.Sema.parse_and_analyze
            {|
symbolic n;
real k, a[1:100];
for i := 1 to n do
  t: k := k - 1;
  s: a(i) := k;
endfor
|}
        in
        let ctx = Depctx.create prog in
        Alcotest.(check int) "no accumulators" 0
          (List.length (Induction.detect ctx));
        (* increment positive only thanks to the loop bound *)
        let prog2 =
          Lang.Sema.parse_and_analyze
            {|
symbolic n;
real k, a[1:10000];
for i := 1 to n do
  t: k := k + i;
  s: a(i) := k;
endfor
|}
        in
        let ctx2 = Depctx.create prog2 in
        Alcotest.(check int) "i >= 1 proves the increment" 1
          (List.length (Induction.detect ctx2)));
    Alcotest.test_case "stepped loops analyze correctly" `Quick (fun () ->
        (* writes to even elements never reach odd reads *)
        let prog =
          Lang.Sema.parse_and_analyze
            {|
symbolic n;
real a[0:400], o[0:400];
for i := 0 to 2*n by 2 do
  w: a(i) := 0;
endfor
for i := 1 to 2*n+1 by 2 do
  r: o(i) := a(i);
endfor
|}
        in
        let ctx = Depctx.create prog in
        let w = List.find (fun a -> a.Lang.Ir.label = "w") (Lang.Ir.writes prog) in
        let r = List.find (fun a -> a.Lang.Ir.label = "r") (Lang.Ir.reads prog) in
        Alcotest.(check bool) "no even-to-odd flow" false
          (Deps.exists ctx ~src:w ~dst:r));
    Alcotest.test_case "output/anti dependence elimination (extension)"
      `Quick (fun () ->
        (* three sequential full overwrites: w1->w3 is transitive via w2 *)
        let prog =
          Lang.Sema.parse_and_analyze
            {|
symbolic n;
real a[0:300];
for i := 1 to n do
  w1: a(i) := 1;
endfor
for i := 1 to n do
  w2: a(i) := 2;
endfor
for i := 1 to n do
  w3: a(i) := 3;
endfor
|}
        in
        let outs = Driver.classify_kind prog Deps.Output in
        let find src dst =
          List.find_opt
            (fun (fr : Driver.flow_result) ->
              fr.Driver.dep.Deps.src.Lang.Ir.label = src
              && fr.Driver.dep.Deps.dst.Lang.Ir.label = dst)
            outs
        in
        (match find "w1" "w3" with
         | Some fr ->
           Alcotest.(check bool) "w1->w3 dead" true (fr.Driver.dead <> None)
         | None -> Alcotest.fail "w1->w3 missing");
        (match find "w1" "w2" with
         | Some fr ->
           Alcotest.(check bool) "w1->w2 live" true (fr.Driver.dead = None)
         | None -> Alcotest.fail "w1->w2 missing");
        (* anti dependences: r -> w2 is transitive via w1 *)
        let prog =
          Lang.Sema.parse_and_analyze
            {|
symbolic n;
real a[0:300], x[0:300];
for i := 1 to n do
  r: x(i) := a(i);
endfor
for i := 1 to n do
  w1: a(i) := 1;
endfor
for i := 1 to n do
  w2: a(i) := 2;
endfor
|}
        in
        let antis = Driver.classify_kind prog Deps.Anti in
        let find src dst =
          List.find_opt
            (fun (fr : Driver.flow_result) ->
              fr.Driver.dep.Deps.src.Lang.Ir.label = src
              && fr.Driver.dep.Deps.dst.Lang.Ir.label = dst)
            antis
        in
        (match find "r" "w2" with
         | Some fr ->
           Alcotest.(check bool) "r->w2 dead" true (fr.Driver.dead <> None)
         | None -> Alcotest.fail "r->w2 missing");
        match find "r" "w1" with
        | Some fr ->
          Alcotest.(check bool) "r->w1 live" true (fr.Driver.dead = None)
        | None -> Alcotest.fail "r->w1 missing");
    Alcotest.test_case "anti and output dependences reported" `Quick
      (fun () ->
        let r = analyze "example3" in
        Alcotest.(check int) "one output dep" 1 (List.length r.Driver.outputs);
        Alcotest.(check int) "one anti dep" 1 (List.length r.Driver.antis));
  ]

let suite = ("depend", unit_tests)
