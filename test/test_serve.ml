(* The serving subsystem: JSON round-trips, wire-protocol framing,
   server survival under malformed input, concurrent-client determinism
   and the thread safety of the shared verdict cache.

   Server tests run a real petitd core on a Unix socket under /tmp and
   talk to it with the typed client; every test that wounds a
   connection (oversized frame, truncated frame) then proves the server
   still answers — failures must be contained to the connection that
   caused them. *)

open Serve

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let json_roundtrip j =
  match Json.parse (Json.to_string j) with
  | Ok j' -> Json.equal j j'
  | Error _ -> false

let test_json_basic () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.1;
      Json.Float (-1e300);
      Json.Float 3.0;
      Json.Str "";
      Json.Str "a\"b\\c\nd\te\x01f";
      Json.Str "héllo – ωmega";
      Json.List [];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.List [ Json.Int 1; Json.Null; Json.Str "x" ]);
          ("b", Json.Obj [ ("nested", Json.Bool false) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      check bool_t ("roundtrip " ^ Json.to_string j) true (json_roundtrip j))
    samples;
  (* pretty output parses back to the same value too *)
  let j =
    Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Float 2.5 ]) ]
  in
  (match Json.parse (Json.pretty j) with
  | Ok j' -> check bool_t "pretty roundtrip" true (Json.equal j j')
  | Error e -> Alcotest.failf "pretty did not parse: %s" e);
  (* escapes decode *)
  (match Json.parse {|"Aé😀\n"|} with
  | Ok (Json.Str s) -> check string_t "unicode escapes" "Aé😀\n" s
  | _ -> Alcotest.fail "unicode escape parse failed");
  (* garbage is an error, not an exception *)
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parsed garbage %S" s)
    [ ""; "{"; "[1,"; "tru"; "1 2"; "\"unterminated"; "{\"a\":}"; "nan" ]

let json_gen : Json.t QCheck.arbitrary =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) (float_bound_inclusive 1e15);
        map (fun s -> Json.Str s) string_printable;
      ]
  in
  let rec sized n =
    if n <= 0 then scalar
    else
      frequency
        [
          (2, scalar);
          (1, map (fun xs -> Json.List xs) (list_size (0 -- 4) (sized (n / 2))));
          ( 1,
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (0 -- 4)
                 (pair string_printable (sized (n / 2)))) );
        ]
  in
  QCheck.make ~print:Json.to_string (sized 4)

let qcheck_json_roundtrip =
  QCheck.Test.make ~name:"serialize/parse is the identity" ~count:500
    json_gen json_roundtrip

let qcheck_parse_total =
  QCheck.Test.make ~name:"parse never raises on random bytes" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_bound 64))
    (fun s ->
      match Json.parse s with
      | Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Protocol round-trips                                                *)
(* ------------------------------------------------------------------ *)

let some_budget =
  {
    Protocol.b_fuel = Some 1000;
    b_splinters = None;
    b_disjuncts = Some 64;
    b_deadline_ms = Some 12.5;
  }

let all_requests : Protocol.request list =
  [
    Protocol.Analyze
      { program = "for i := 1 to n do\na(i) := 0\nendfor";
        in_bounds = true; budget = Protocol.no_budget; deadline_ms = None };
    Protocol.Analyze
      { program = ""; in_bounds = false; budget = some_budget;
        deadline_ms = Some 1500. };
    Protocol.Parallelize
      { program = "x := 1"; in_bounds = false; budget = some_budget;
        deadline_ms = Some 0.25 };
    Protocol.Omega_calc
      { op = Protocol.Sat "0 <= x <= 5"; budget = Protocol.no_budget;
        deadline_ms = None };
    Protocol.Omega_calc
      { op = Protocol.Implies ("x >= 1", "x >= 0"); budget = some_budget;
        deadline_ms = Some 100. };
    Protocol.Omega_calc
      {
        op =
          Protocol.Project
            { mode = `Exact; onto = [ "x"; "y" ]; problem = "x = 2*y" };
        budget = Protocol.no_budget;
        deadline_ms = None;
      };
    Protocol.Omega_calc
      {
        op = Protocol.Project { mode = `Dark; onto = []; problem = "x = 1" };
        budget = Protocol.no_budget;
        deadline_ms = None;
      };
    Protocol.Omega_calc
      {
        op = Protocol.Project { mode = `Real; onto = [ "z" ]; problem = "z < 9" };
        budget = Protocol.no_budget;
        deadline_ms = None;
      };
    Protocol.Omega_calc
      {
        op = Protocol.Gist { problem = "x >= 0 and x <= 5"; given = "x >= 3" };
        budget = Protocol.no_budget;
        deadline_ms = None;
      };
    Protocol.Omega_calc
      {
        op = Protocol.Optimize { dir = `Min; var = "x"; problem = "x >= 7" };
        budget = Protocol.no_budget;
        deadline_ms = None;
      };
    Protocol.Omega_calc
      {
        op = Protocol.Optimize { dir = `Max; var = "x"; problem = "x <= -3" };
        budget = some_budget;
        deadline_ms = None;
      };
    Protocol.Stats;
    Protocol.Health;
    Protocol.Shutdown;
  ]

let memo_sample =
  {
    Protocol.mr_req_hits = 3;
    mr_req_misses = 1;
    mr_hits = 10;
    mr_misses = 7;
    mr_size = 7;
    mr_capacity = 64;
    mr_evictions = 0;
  }

let all_responses : Protocol.response list =
  [
    Protocol.Result
      { id = 1; payload = Json.Obj [ ("sat", Json.Bool true) ];
        memo = None; governance = None };
    Protocol.Result
      {
        id = 42;
        payload = Json.List [ Json.Int 1; Json.Str "x" ];
        memo = Some memo_sample;
        governance = Some (Json.Obj [ ("queries", Json.Int 9) ]);
      };
    Protocol.Error_
      { id = 7; code = Protocol.Parse_error; message = "line 1: nope";
        retry_after_ms = None };
    Protocol.Error_
      { id = 0; code = Protocol.Frame_too_large; message = "too big";
        retry_after_ms = None };
    Protocol.Error_
      { id = 3; code = Protocol.Gave_up; message = "fuel";
        retry_after_ms = None };
    Protocol.Error_
      { id = 3; code = Protocol.Bad_request; message = "?";
        retry_after_ms = None };
    Protocol.Error_
      { id = 3; code = Protocol.Semantic_error; message = "s";
        retry_after_ms = None };
    Protocol.Error_
      { id = 3; code = Protocol.Server_error; message = "e";
        retry_after_ms = None };
    Protocol.Error_
      { id = 0; code = Protocol.Overloaded; message = "connection limit";
        retry_after_ms = Some 100. };
    Protocol.Error_
      { id = 9; code = Protocol.Overloaded; message = "in-flight limit";
        retry_after_ms = Some 62.5 };
  ]

(* Round-trips are checked on the canonical encoded string: decode of
   the encoding must re-encode to the same bytes. *)
let test_protocol_roundtrip () =
  List.iteri
    (fun i req ->
      let j = Protocol.encode_request ~id:(i + 1) req in
      let s = Json.to_string j in
      match Protocol.decode_request j with
      | Error e -> Alcotest.failf "request %d did not decode: %s" i e
      | Ok (id, req') ->
        check int_t "id" (i + 1) id;
        check string_t
          (Printf.sprintf "request %d" i)
          s
          (Json.to_string (Protocol.encode_request ~id req')))
    all_requests;
  List.iteri
    (fun i resp ->
      let j = Protocol.encode_response resp in
      let s = Json.to_string j in
      match Protocol.decode_response j with
      | Error e -> Alcotest.failf "response %d did not decode: %s" i e
      | Ok resp' ->
        check string_t
          (Printf.sprintf "response %d" i)
          s
          (Json.to_string (Protocol.encode_response resp')))
    all_responses

let test_decode_rejects () =
  List.iter
    (fun j ->
      match Protocol.decode_request j with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "decoded bad request %s" (Json.to_string j))
    [
      Json.Null;
      Json.Obj [];
      Json.Obj [ ("id", Json.Int 1) ];
      Json.Obj [ ("id", Json.Int 1); ("op", Json.Str "frobnicate") ];
      Json.Obj [ ("id", Json.Str "one"); ("op", Json.Str "stats") ];
      Json.Obj [ ("id", Json.Int 1); ("op", Json.Str "analyze") ];
    ]

(* ------------------------------------------------------------------ *)
(* A live server on a Unix socket                                      *)
(* ------------------------------------------------------------------ *)

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "/tmp/petitd-test-%d-%d.sock" (Unix.getpid ()) !n

(* Tests default to one worker domain (the deterministic baseline);
   the multi-domain stress opts in with [domains], and the overload
   tests pin their own caps and deadlines. *)
let with_server ?max_frame ?(domains = 1) ?max_connections ?max_inflight
    ?read_timeout_ms ?drain_ms f =
  let path = fresh_path () in
  let config =
    let base = Server.default_config (Protocol.Unix_path path) in
    let base =
      match max_frame with
      | None -> base
      | Some m -> { base with Server.c_max_frame = m }
    in
    let base =
      match max_connections with
      | None -> base
      | Some n -> { base with Server.c_max_connections = n }
    in
    let base =
      match max_inflight with
      | None -> base
      | Some _ as v -> { base with Server.c_max_inflight = v }
    in
    let base =
      match read_timeout_ms with
      | None -> base
      | Some _ as v -> { base with Server.c_read_timeout_ms = v }
    in
    let base =
      match drain_ms with
      | None -> base
      | Some ms -> { base with Server.c_drain_ms = ms }
    in
    { base with Server.c_domains = domains }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Server.wait server;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f path)

let connect_exn path =
  match Client.connect (Protocol.Unix_path path) with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let request_exn c req =
  match Client.request c req with
  | Ok r -> r
  | Error e -> Alcotest.failf "request: %s" e

let expect_error code resp =
  match resp with
  | Protocol.Error_ e ->
    check string_t "error code"
      (Protocol.error_code_to_string code)
      (Protocol.error_code_to_string e.code)
  | Protocol.Result _ -> Alcotest.fail "expected an error response"

let test_server_calc () =
  with_server @@ fun path ->
  let c = connect_exn path in
  (match
     request_exn c
       (Protocol.Omega_calc
          { op = Protocol.Sat "0 <= x <= 5 and 2*x = 3";
            budget = Protocol.no_budget; deadline_ms = None })
   with
  | Protocol.Result { payload; _ } ->
    check bool_t "unsat"
      true
      (Json.equal payload (Json.Obj [ ("sat", Json.Bool false) ]))
  | Protocol.Error_ e -> Alcotest.failf "calc failed: %s" e.message);
  (* an unparsable problem is an error response, not a dead server *)
  expect_error Protocol.Parse_error
    (request_exn c
       (Protocol.Omega_calc
          { op = Protocol.Sat "0 <= <="; budget = Protocol.no_budget;
            deadline_ms = None }));
  (* and the connection still answers *)
  (match
     request_exn c
       (Protocol.Omega_calc
          { op = Protocol.Implies ("x >= 1", "x >= 0");
            budget = Protocol.no_budget; deadline_ms = None })
   with
  | Protocol.Result { payload; _ } ->
    check bool_t "implies" true
      (Json.equal payload (Json.Obj [ ("implies", Json.Bool true) ]))
  | Protocol.Error_ e -> Alcotest.failf "implies failed: %s" e.message);
  Client.close c

let test_server_malformed_frame () =
  with_server @@ fun path ->
  let c = connect_exn path in
  (* raw socket next to the typed client: a frame of garbage bytes *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Protocol.write_frame fd "this is not json {";
  (match Protocol.read_frame ~max:Protocol.default_max_frame fd with
  | Ok payload -> (
    match Json.parse payload with
    | Ok j -> (
      match Protocol.decode_response j with
      | Ok resp -> expect_error Protocol.Bad_request resp
      | Error e -> Alcotest.failf "undecodable error response: %s" e)
    | Error e -> Alcotest.failf "error response is not JSON: %s" e)
  | Error _ -> Alcotest.fail "no response to the malformed frame");
  (* a valid request on the same wounded connection still works *)
  Protocol.write_frame fd
    (Json.to_string (Protocol.encode_request ~id:9 Protocol.Stats));
  (match Protocol.read_frame ~max:Protocol.default_max_frame fd with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "connection died after a malformed frame");
  Unix.close fd;
  (* and so do other clients *)
  (match request_exn c Protocol.Stats with
  | Protocol.Result _ -> ()
  | Protocol.Error_ _ -> Alcotest.fail "stats failed after malformed frame");
  Client.close c

let test_server_oversized_frame () =
  with_server ~max_frame:256 @@ fun path ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Protocol.write_frame fd (String.make 1024 'x');
  (match Protocol.read_frame ~max:Protocol.default_max_frame fd with
  | Ok payload -> (
    match Json.parse payload with
    | Ok j -> (
      match Protocol.decode_response j with
      | Ok resp -> expect_error Protocol.Frame_too_large resp
      | Error e -> Alcotest.failf "undecodable error response: %s" e)
    | Error e -> Alcotest.failf "error response is not JSON: %s" e)
  | Error _ -> Alcotest.fail "no response to the oversized frame");
  (* the oversized payload was drained: the stream is still in sync *)
  Protocol.write_frame fd
    (Json.to_string (Protocol.encode_request ~id:2 Protocol.Stats));
  (match Protocol.read_frame ~max:Protocol.default_max_frame fd with
  | Ok payload -> (
    match Json.parse payload with
    | Ok j -> (
      match Protocol.decode_response j with
      | Ok (Protocol.Result { id; _ }) -> check int_t "id" 2 id
      | Ok (Protocol.Error_ e) ->
        Alcotest.failf "stats errored: %s" e.message
      | Error e -> Alcotest.failf "undecodable response: %s" e)
    | Error e -> Alcotest.failf "response is not JSON: %s" e)
  | Error _ -> Alcotest.fail "connection died after an oversized frame");
  Unix.close fd

let test_server_truncated_frame () =
  with_server @@ fun path ->
  (* announce 100 bytes, send 10, hang up mid-frame *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let header = Bytes.create 4 in
  Bytes.set_uint8 header 0 0;
  Bytes.set_uint8 header 1 0;
  Bytes.set_uint8 header 2 0;
  Bytes.set_uint8 header 3 100;
  ignore (Unix.write fd header 0 4);
  ignore (Unix.write_substring fd "0123456789" 0 10);
  Unix.close fd;
  (* the server dropped that session only: new connections answer *)
  let c = connect_exn path in
  (match request_exn c Protocol.Stats with
  | Protocol.Result _ -> ()
  | Protocol.Error_ _ -> Alcotest.fail "stats failed after truncated frame");
  Client.close c

(* ------------------------------------------------------------------ *)
(* Concurrent clients: same corpus, 1 vs 8 clients, verdicts identical *)
(* ------------------------------------------------------------------ *)

let determinism_programs =
  [
    "example1"; "example2"; "example3"; "example4"; "example5"; "example9";
    "temp_reuse"; "cholsky";
  ]
  |> List.filter_map (fun n ->
         match Corpus.find n with
         | src -> Some (n, src)
         | exception Invalid_argument _ -> None)

(* Fresh in-process expectations, through the very payload builders the
   daemon uses. *)
let expected_payloads () =
  Depend.Analyses.Memo.reset ();
  List.map
    (fun (name, src) ->
      let prog = Lang.Sema.analyze (Lang.Parser.parse_string src) in
      ( name,
        Json.to_string (Service.analyze_payload ~in_bounds:false prog),
        Json.to_string (Service.parallelize_payload ~in_bounds:false prog) ))
    determinism_programs

let run_clients path ~clients ~programs =
  (* Each client replays the whole corpus; results land in a per-client
     slot, compared after the joins. *)
  let results =
    Array.make clients ([] : (string * string * string) list)
  in
  let errors = Array.make clients "" in
  let worker k () =
    match Client.connect (Protocol.Unix_path path) with
    | Error e -> errors.(k) <- e
    | Ok c ->
      let rs =
        List.map
          (fun (name, src) ->
            let payload req =
              match Client.request c req with
              | Error e -> Printf.sprintf "<transport error: %s>" e
              | Ok resp -> (
                match Client.result_payload resp with
                | Ok (p, _) -> Json.to_string p
                | Error e -> Printf.sprintf "<error: %s>" e)
            in
            ( name,
              payload
                (Protocol.Analyze
                   { program = src; in_bounds = false;
                     budget = Protocol.no_budget; deadline_ms = None }),
              payload
                (Protocol.Parallelize
                   { program = src; in_bounds = false;
                     budget = Protocol.no_budget; deadline_ms = None }) ))
          programs
      in
      Client.close c;
      results.(k) <- rs
  in
  let threads =
    List.init clients (fun k -> Thread.create (worker k) ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun k e -> if e <> "" then Alcotest.failf "client %d: %s" k e)
    errors;
  Array.to_list results

let check_against expected client (name, an, par) =
  let _, ean, epar = List.find (fun (n, _, _) -> n = name) expected in
  check string_t (Printf.sprintf "%s analyze (client %d)" name client) ean an;
  check string_t
    (Printf.sprintf "%s parallelize (client %d)" name client)
    epar par

let test_concurrent_determinism () =
  let expected = expected_payloads () in
  let check_result = check_against expected in
  (* one client, cold daemon *)
  with_server (fun path ->
      List.iteri
        (fun _ rs -> List.iter (check_result 0) rs)
        (run_clients path ~clients:1 ~programs:determinism_programs));
  (* eight clients hammering a fresh daemon concurrently *)
  with_server (fun path ->
      let per_client =
        run_clients path ~clients:8 ~programs:determinism_programs
      in
      List.iteri
        (fun k rs -> List.iter (check_result k) rs)
        per_client;
      (* the shared cache was actually shared: lifetime hits observed *)
      let c = connect_exn path in
      (match request_exn c Protocol.Stats with
      | Protocol.Result { payload; _ } ->
        let hits =
          match Json.member "memo" payload with
          | Some m ->
            Option.value ~default:0
              (Option.bind (Json.member "hits" m) Json.to_int_opt)
          | None -> 0
        in
        check bool_t "memo hits > 0 across clients" true (hits > 0)
      | Protocol.Error_ _ -> Alcotest.fail "stats failed");
      Client.close c)

(* The same 8-client corpus replay against a daemon whose solver work is
   sharded over two worker domains.  Every payload must stay
   byte-identical to the in-process expectation (and hence to the
   single-domain daemon's, pinned to the same expectation above):
   worker-domain Var slots must never leak into responses, and the
   verdict cache is shared across both domains. *)
let test_concurrent_determinism_domains () =
  let expected = expected_payloads () in
  with_server ~domains:2 (fun path ->
      let per_client =
        run_clients path ~clients:8 ~programs:determinism_programs
      in
      List.iteri
        (fun k rs -> List.iter (check_against expected k) rs)
        per_client;
      (* the cache was shared across sessions and worker domains *)
      let c = connect_exn path in
      (match request_exn c Protocol.Stats with
      | Protocol.Result { payload; _ } ->
        let hits =
          match Json.member "memo" payload with
          | Some m ->
            Option.value ~default:0
              (Option.bind (Json.member "hits" m) Json.to_int_opt)
          | None -> 0
        in
        check bool_t "memo hits > 0 across domains" true (hits > 0)
      | Protocol.Error_ _ -> Alcotest.fail "stats failed");
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Overload control, deadlines, drain, retry policy                    *)
(* ------------------------------------------------------------------ *)

let health_int payload path =
  let rec go j = function
    | [] -> Option.value ~default:(-1) (Json.to_int_opt j)
    | k :: rest -> (
      match Json.member k j with Some j' -> go j' rest | None -> -1)
  in
  go payload path

let test_health () =
  with_server @@ fun path ->
  let c = connect_exn path in
  (match request_exn c Protocol.Health with
  | Protocol.Result { payload; _ } ->
    check bool_t "in_flight present" true
      (health_int payload [ "in_flight" ] >= 0);
    check bool_t "shed counters present" true
      (health_int payload [ "shed"; "requests" ] >= 0
      && health_int payload [ "shed"; "connections" ] >= 0);
    check bool_t "reaped present" true (health_int payload [ "reaped" ] >= 0);
    check bool_t "one connection open" true
      (health_int payload [ "connections"; "open" ] = 1)
  | Protocol.Error_ e -> Alcotest.failf "health failed: %s" e.message);
  Client.close c

(* A request whose wall deadline has already passed is refused with
   [Gave_up] without burning a worker; the same request with a generous
   deadline succeeds on the same connection. *)
let test_request_deadline () =
  with_server @@ fun path ->
  let c = connect_exn path in
  let analyze deadline_ms =
    request_exn c
      (Protocol.Analyze
         { program = Corpus.find "example1"; in_bounds = false;
           budget = Protocol.no_budget; deadline_ms })
  in
  (match analyze (Some 0.001) with
  | Protocol.Error_ e ->
    check string_t "refused as gave_up"
      (Protocol.error_code_to_string Protocol.Gave_up)
      (Protocol.error_code_to_string e.code);
    check bool_t "mentions the deadline" true
      (String.length e.message > 0)
  | Protocol.Result _ -> Alcotest.fail "expired deadline was not refused");
  (match analyze (Some 60_000.) with
  | Protocol.Result _ -> ()
  | Protocol.Error_ e ->
    Alcotest.failf "generous deadline failed: %s" e.message);
  Client.close c

(* A peer that starts a frame and stalls is reaped by the read deadline:
   it sees EOF within a few deadlines, the daemon counts the reap, and
   other clients are unaffected. *)
let test_slowloris_reaped () =
  with_server ~read_timeout_ms:150. @@ fun path ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (* two bytes of a four-byte header, then silence *)
  ignore (Unix.write_substring fd "\x00\x00" 0 2);
  let deadline = Unix.gettimeofday () +. 3. in
  let rec await_eof () =
    if Unix.gettimeofday () > deadline then `Still_open
    else
      match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ -> await_eof ()
      | _ -> (
        match Unix.read fd (Bytes.create 64) 0 64 with
        | 0 -> `Reaped
        | _ -> await_eof ()
        | exception Unix.Unix_error _ -> `Reaped)
  in
  check bool_t "stalled connection reaped" true (await_eof () = `Reaped);
  Unix.close fd;
  (* the daemon still serves, and accounted for the reap *)
  let c = connect_exn path in
  (match request_exn c Protocol.Health with
  | Protocol.Result { payload; _ } ->
    check bool_t "reap counted" true (health_int payload [ "reaped" ] >= 1)
  | Protocol.Error_ e -> Alcotest.failf "health failed: %s" e.message);
  Client.close c

(* Over the connection cap: the surplus connection receives a typed
   [Overloaded] shed carrying a retry hint, and once the cap frees up a
   retrying session gets through. *)
let test_overcap_shed_then_retry () =
  with_server ~max_connections:1 @@ fun path ->
  let c1 = connect_exn path in
  (* the cap is occupied: a second connection is shed with a hint *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (match Protocol.read_frame ~deadline:(Unix.gettimeofday () +. 5.)
           ~max:Protocol.default_max_frame fd
   with
  | Ok payload -> (
    match Json.parse payload with
    | Ok j -> (
      match Protocol.decode_response j with
      | Ok (Protocol.Error_ e) ->
        check string_t "overloaded"
          (Protocol.error_code_to_string Protocol.Overloaded)
          (Protocol.error_code_to_string e.code);
        check bool_t "carries a retry hint" true (e.retry_after_ms <> None)
      | Ok (Protocol.Result _) -> Alcotest.fail "expected a shed, got a result"
      | Error e -> Alcotest.failf "undecodable shed: %s" e)
    | Error e -> Alcotest.failf "shed is not JSON: %s" e)
  | Error _ -> Alcotest.fail "no shed response on the over-cap connection");
  Unix.close fd;
  (* free the slot; a retrying session must eventually be admitted *)
  Client.close c1;
  let policy =
    {
      Client.default_policy with
      Client.p_attempts = 20;
      p_base_ms = 10.;
      p_max_ms = 100.;
    }
  in
  let s = Client.open_session ~policy (Protocol.Unix_path path) in
  (match Client.call s Protocol.Stats with
  | Ok (Protocol.Result _) -> ()
  | Ok (Protocol.Error_ e) -> Alcotest.failf "retry landed on: %s" e.message
  | Error e -> Alcotest.failf "retrying session failed: %s" e);
  Client.close_session s

(* Graceful drain: a request in flight when shutdown lands still gets
   its response; an idle connection is force-closed; [wait] returns
   within the drain budget plus slack.  The server is managed by hand
   here because the assertions straddle [Server.wait]. *)
let test_graceful_drain () =
  let path = fresh_path () in
  let config =
    {
      (Server.default_config (Protocol.Unix_path path)) with
      Server.c_domains = 1;
      c_drain_ms = 3_000.;
    }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () -> try Unix.unlink path with Unix.Unix_error _ -> ())
  @@ fun () ->
  let idle = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect idle (Unix.ADDR_UNIX path);
  let inflight = ref (Error "never ran") in
  let a =
    Thread.create
      (fun () ->
        let c = connect_exn path in
        inflight :=
          (match
             Client.request c
               (Protocol.Analyze
                  { program = Corpus.find "cholsky"; in_bounds = false;
                    budget = Protocol.no_budget; deadline_ms = None })
           with
          | Ok (Protocol.Result _) -> Ok ()
          | Ok (Protocol.Error_ e) -> Error e.message
          | Error e -> Error e);
        Client.close c)
      ()
  in
  (* wait for the analyze to be in flight (or already done) *)
  let rec await tries =
    if tries = 0 || !inflight <> Error "never ran" then ()
    else
      let c = connect_exn path in
      let busy =
        match Client.request c Protocol.Health with
        | Ok (Protocol.Result { payload; _ }) ->
          health_int payload [ "in_flight" ] >= 1
        | _ -> false
      in
      Client.close c;
      if not busy then begin
        Thread.delay 0.002;
        await (tries - 1)
      end
  in
  await 500;
  (let c = connect_exn path in
   ignore (Client.request c Protocol.Shutdown);
   Client.close c);
  let t0 = Unix.gettimeofday () in
  Server.wait server;
  let wait_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Thread.join a;
  (match !inflight with
  | Ok () -> ()
  | Error e -> Alcotest.failf "in-flight request lost in drain: %s" e);
  check bool_t "drain bounded" true (wait_ms < 6_000.);
  (* the idle connection was force-closed by the drain *)
  (match Unix.select [ idle ] [] [] 2. with
  | [], _, _ -> Alcotest.fail "idle connection not closed by drain"
  | _ -> (
    match Unix.read idle (Bytes.create 64) 0 64 with
    | 0 -> ()
    | _ -> Alcotest.fail "unexpected bytes on the idle connection"
    | exception Unix.Unix_error _ -> ()));
  Unix.close idle

(* The client's backoff schedule is a pure function of the policy seed:
   same seed, same delays; a different seed diverges; every delay is
   within the jitter envelope of its nominal step. *)
let test_retry_backoff_deterministic () =
  let no_server = fresh_path () in
  let run seed =
    let delays = ref [] in
    let policy =
      {
        Client.default_policy with
        Client.p_attempts = 6;
        p_base_ms = 10.;
        p_max_ms = 40.;
        p_retry_budget_ms = 1e9;
        p_connect_timeout_ms = Some 200.;
        p_seed = seed;
        p_sleep = (fun d -> delays := d :: !delays);
      }
    in
    let s = Client.open_session ~policy (Protocol.Unix_path no_server) in
    (match Client.call s Protocol.Stats with
    | Ok _ -> Alcotest.fail "a call with no server succeeded"
    | Error _ -> ());
    let retries = Client.session_retries s in
    Client.close_session s;
    (List.rev !delays, retries)
  in
  let d1, retries = run 11 in
  let d2, _ = run 11 in
  let d3, _ = run 12 in
  check int_t "one sleep per retry" 5 (List.length d1);
  check int_t "session_retries counts them" 5 retries;
  check bool_t "same seed, same schedule" true (d1 = d2);
  check bool_t "different seed diverges" true (d1 <> d3);
  List.iteri
    (fun i d ->
      let nominal = Float.min 40. (10. *. (2. ** float_of_int i)) in
      check bool_t
        (Printf.sprintf "delay %d within jitter envelope" i)
        true
        (d >= 0.5 *. nominal && d < 1.5 *. nominal))
    d1

(* ------------------------------------------------------------------ *)
(* Memo thread safety                                                  *)
(* ------------------------------------------------------------------ *)

let test_memo_stress () =
  let open Depend.Analyses in
  let saved_capacity = !Memo.capacity in
  Fun.protect
    ~finally:(fun () ->
      Memo.capacity := saved_capacity;
      Memo.reset ())
    (fun () ->
      Memo.capacity := 64;
      Memo.reset ();
      let threads = 8 and rounds = 2000 in
      let worker k () =
        for i = 0 to rounds - 1 do
          (* overlapping key ranges: plenty of sharing and eviction *)
          let key = Printf.sprintf "k%d" ((i + (k * 37)) mod 512) in
          (match Memo.find key with
          | Some _ -> ()
          | None ->
            Memo.add key
              (if i land 1 = 0 then Omega.Budget.Proved
               else Omega.Budget.Disproved)
              (if i land 1 = 0 then Some Omega.Portfolio.Tier_screen
               else Some Omega.Portfolio.Tier_complete));
          let size = Memo.size () in
          if size > 64 then
            Alcotest.failf "cache exceeded capacity: %d > 64" size
        done
      in
      let ts = List.init threads (fun k -> Thread.create (worker k) ()) in
      List.iter Thread.join ts;
      let m = Memo.stats in
      let total = m.Memo.hits + m.Memo.misses in
      check int_t "every probe accounted" (threads * rounds) total;
      check bool_t "bounded" true (Memo.size () <= 64))

let suite =
  ( "serve",
    [
      Alcotest.test_case "json round-trips" `Quick test_json_basic;
      QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_parse_total;
      Alcotest.test_case "protocol round-trips" `Quick
        test_protocol_roundtrip;
      Alcotest.test_case "bad requests rejected" `Quick test_decode_rejects;
      Alcotest.test_case "server: calc requests" `Quick test_server_calc;
      Alcotest.test_case "server: malformed frame survives" `Quick
        test_server_malformed_frame;
      Alcotest.test_case "server: oversized frame survives" `Quick
        test_server_oversized_frame;
      Alcotest.test_case "server: truncated frame contained" `Quick
        test_server_truncated_frame;
      Alcotest.test_case "server: health endpoint" `Quick test_health;
      Alcotest.test_case "server: expired deadline refused" `Quick
        test_request_deadline;
      Alcotest.test_case "server: slowloris reaped" `Quick
        test_slowloris_reaped;
      Alcotest.test_case "server: over-cap shed then retry" `Quick
        test_overcap_shed_then_retry;
      Alcotest.test_case "server: graceful drain" `Quick test_graceful_drain;
      Alcotest.test_case "client: deterministic retry backoff" `Quick
        test_retry_backoff_deterministic;
      Alcotest.test_case "1 vs 8 clients, identical verdicts" `Slow
        test_concurrent_determinism;
      Alcotest.test_case "8 clients over 2 solver domains, identical verdicts"
        `Slow test_concurrent_determinism_domains;
      Alcotest.test_case "memo: concurrent stress" `Quick test_memo_stress;
    ] )
