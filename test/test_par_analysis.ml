(* Differential suite for domain-sharded analysis (the domain-local
   solver worlds work): a serial run and an N-domain run of the full
   analysis stack must be bit-identical — dependence sets, direction
   vectors, carried levels, assumed-edge flags, refinement/cover/kill
   verdicts, and the exact JSON payloads petit --json and petitd emit —
   across the whole corpus plus the adversarial stress nests, at more
   than one domain count, at more than one budget rung, under fault
   injection, and across repeated runs.

   Why this can be demanded at all: variable ids are allocated
   per-domain but every co-occurring group of variables for one solver
   query is minted by a single domain in serial order, and every
   id-sensitive choice in the solver (elimination tie-breaks, canonical
   memo keys) depends only on that relative order; budget metering is
   per-query; and injected faults are a pure function of the query's
   canonical key, never of execution order.  So sharding may only change
   the clock, and this suite fails loudly if any of those invariants
   regresses. *)

open Omega
open Depend

let check = Alcotest.check
let string_t = Alcotest.string

let programs = Corpus.all @ Corpus.stress

let tiny =
  { Budget.fuel = 200; splinters = 4; disjuncts = 8; deadline_ms = None }

(* A canonical, exhaustive rendering of everything the analysis stack
   decides about one program: every dependence with its direction
   vectors, carried levels and assumed flag; every flow result with its
   refinement, cover and live/dead verdict; and the exact JSON payloads
   the CLI's --json mode and the petitd daemon serve. *)
let signature src : string =
  Analyses.Memo.reset ();
  let prog = Lang.Sema.analyze (Lang.Parser.parse_string src) in
  let buf = Buffer.create 4096 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let dep (d : Deps.dep) =
    Printf.sprintf "%s->%s[%s] %s vec=[%s] lvl=[%s] assumed=%b"
      d.Deps.src.Lang.Ir.label d.Deps.dst.Lang.Ir.label
      d.Deps.src.Lang.Ir.array
      (Deps.kind_to_string d.Deps.kind)
      (String.concat " " (List.map Dirvec.to_string d.Deps.vectors))
      (String.concat "," (List.map string_of_int d.Deps.levels))
      d.Deps.assumed
  in
  let r = Driver.analyze prog in
  List.iter
    (fun (fr : Driver.flow_result) ->
      add "flow %s refined=[%s] covers=%b %s" (dep fr.Driver.dep)
        (match fr.Driver.refined with
        | None -> "-"
        | Some vs -> String.concat " " (List.map Dirvec.to_string vs))
        fr.Driver.covers
        (match fr.Driver.dead with
        | None -> "live"
        | Some (Driver.Killed k) -> "killed:" ^ k.Lang.Ir.label
        | Some (Driver.Covered c) -> "covered:" ^ c.Lang.Ir.label))
    r.Driver.flows;
  List.iter (fun d -> add "anti %s" (dep d)) r.Driver.antis;
  List.iter (fun d -> add "output %s" (dep d)) r.Driver.outputs;
  add "analyze %s"
    (Serve.Json.to_string
       (Serve.Service.analyze_payload ~in_bounds:false prog));
  add "parallelize %s"
    (Serve.Json.to_string
       (Serve.Service.parallelize_payload ~in_bounds:false prog));
  Buffer.contents buf

let corpus_pass lims =
  Budget.with_limits lims (fun () ->
      List.map (fun (name, src) -> (name, signature src)) programs)

(* Width is process-global state shared with every other test in this
   binary: always restore 1. *)
let with_width n f =
  Par.set_domains n;
  Fun.protect ~finally:(fun () -> Par.set_domains 1) f

let diff_check label serial sharded =
  List.iter2
    (fun (name, s) (_, p) ->
      check string_t (Printf.sprintf "%s: %s" name label) s p)
    serial sharded

let test_widths_and_budgets () =
  List.iter
    (fun (bname, lims) ->
      let serial = corpus_pass lims in
      List.iter
        (fun n ->
          let sharded = with_width n (fun () -> corpus_pass lims) in
          diff_check
            (Printf.sprintf "%d domains, %s budget" n bname)
            serial sharded)
        [ 2; 3 ])
    [ ("default", Budget.default); ("tiny", tiny) ];
  (* the tiny rung must actually bind, or it proves nothing about
     degraded-path determinism *)
  let tiny_pass = corpus_pass tiny in
  check Alcotest.bool "tiny budget produced assumed edges" true
    (List.exists
       (fun (_, s) ->
         (* substring search: any dependence carrying assumed=true *)
         let needle = "assumed=true" in
         let n = String.length needle and m = String.length s in
         let rec at i = i + n <= m && (String.sub s i n = needle || at (i + 1)) in
         at 0)
       tiny_pass);
  Analyses.Memo.reset ()

let test_fault_injection_config () =
  Analyses.set_fault_injection ~seed:7 ~rate:0.10;
  Fun.protect
    ~finally:(fun () ->
      Analyses.clear_fault_injection ();
      Par.set_domains 1)
    (fun () ->
      let serial = corpus_pass Budget.default in
      let sharded = with_width 2 (fun () -> corpus_pass Budget.default) in
      diff_check "2 domains, 10% injected faults" serial sharded);
  Analyses.Memo.reset ()

let test_repeated_runs () =
  let a = with_width 3 (fun () -> corpus_pass Budget.default) in
  let b = with_width 3 (fun () -> corpus_pass Budget.default) in
  diff_check "3 domains, repeated run" a b;
  Analyses.Memo.reset ()

let suite =
  ( "par_analysis",
    [
      Alcotest.test_case
        "serial = sharded at 2 and 3 domains, default and tiny budgets"
        `Slow test_widths_and_budgets;
      Alcotest.test_case "serial = sharded under fault injection" `Slow
        test_fault_injection_config;
      Alcotest.test_case "sharded runs are stable across repeats" `Slow
        test_repeated_runs;
    ] )
