(* End-to-end soundness: on random small programs, compare the static
   analysis against the tracing interpreter.

   - Soundness of elimination: a statically *dead* flow dependence carries
     no dynamic value-based flow (no read ever takes its value from that
     write).
   - Coverage: every dynamic value-based flow is matched by a live static
     flow dependence between the same accesses whose vectors admit the
     observed distance.
   - Completeness of the standard analysis: every dynamic memory-based
     flow pair is reported as an apparent dependence (live or dead). *)

open Depend
open Lang

(* ------------------------------------------------------------------ *)
(* Random program generation                                           *)
(* ------------------------------------------------------------------ *)

(* Programs over one shared array [a] and a sink [x], loops bounded by the
   symbolic [n], subscripts affine in the loop variables. *)
let gen_subscript ~vars =
  QCheck.Gen.(
    let* c0 = int_range (-2) 2 in
    let* coeffs = flatten_l (List.map (fun _ -> int_range (-1) 2) vars) in
    let expr =
      List.fold_left2
        (fun e v c ->
          if c = 0 then e
          else
            Ast.Add (e, Ast.Mul (Ast.Int c, Ast.Name v)))
        (Ast.Int c0) vars coeffs
    in
    return expr)

let gen_stmt ~vars ~idx =
  QCheck.Gen.(
    let* wsub = gen_subscript ~vars in
    let* rsub = gen_subscript ~vars in
    let* to_sink = bool in
    let label = Printf.sprintf "s%d" idx in
    if to_sink && vars <> [] then
      (* read a, write the sink (keeps some reads alive) *)
      return
        (Ast.Assign
           {
             label = Some label;
             lhs = ("x", [ Ast.Name (List.hd vars); wsub ]);
             rhs = Ast.Ref ("a", [ rsub ]);
             pos = { Ast.line = 0; col = 0 };
           })
    else
      return
        (Ast.Assign
           {
             label = Some label;
             lhs = ("a", [ wsub ]);
             rhs = Ast.Add (Ast.Ref ("a", [ rsub ]), Ast.Int 1);
             pos = { Ast.line = 0; col = 0 };
           }))

(* A random loop tree of depth <= 3 with 2-4 assignment statements. *)
let gen_program : Ast.program QCheck.Gen.t =
  QCheck.Gen.(
    let pos = { Ast.line = 0; col = 0 } in
    let rec gen_body ~vars ~depth ~budget idx =
      if budget <= 0 then return ([], idx)
      else
        let* make_loop = if depth >= 2 then return false else bool in
        if make_loop then begin
          let v = Printf.sprintf "i%d" depth in
          let* lo = int_range 1 2 in
          let* body, idx' =
            gen_body ~vars:(vars @ [ v ]) ~depth:(depth + 1)
              ~budget:(budget - 1) idx
          in
          let* rest, idx'' =
            gen_body ~vars ~depth ~budget:(budget - 1 - List.length body) idx'
          in
          if body = [] then return (rest, idx'')
          else
            return
              ( Ast.For
                  {
                    var = v;
                    lo = Ast.Int lo;
                    hi = Ast.Name "n";
                    step = 1;
                    body;
                    pos;
                  }
                :: rest,
                idx'' )
        end
        else begin
          let* s = gen_stmt ~vars ~idx in
          let* rest, idx' =
            gen_body ~vars ~depth ~budget:(budget - 1) (idx + 1)
          in
          return (s :: rest, idx')
        end
    in
    let* nstmts = int_range 2 4 in
    let* stmts, _ = gen_body ~vars:[] ~depth:0 ~budget:nstmts 0 in
    (* ensure at least one statement *)
    let* stmts =
      if stmts = [] then
        let* s = gen_stmt ~vars:[] ~idx:99 in
        return [ s ]
      else return stmts
    in
    return
      {
        Ast.decls =
          [
            Ast.Symbolic [ "n" ];
            Ast.Array
              [
                ("a", [ (Ast.Int (-60), Ast.Int 60) ]);
                ( "x",
                  [ (Ast.Int (-60), Ast.Int 60); (Ast.Int (-60), Ast.Int 60) ]
                );
              ];
          ];
        stmts;
      })

let arb_program =
  QCheck.make ~print:Ast.program_to_string gen_program

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

let key (i : Interp.instance) = i.Interp.acc.Ir.acc_id

(* Does the static vector set admit the dynamic distance vector? *)
let vector_admits (v : Dirvec.t) (dist : int list) =
  List.length v = List.length dist
  && List.for_all2
       (fun (e : Dirvec.entry) d ->
         (match e.Dirvec.lo with Some lo -> d >= lo | None -> true)
         && (match e.Dirvec.hi with Some hi -> d <= hi | None -> true)
         &&
         match e.Dirvec.sign with
         | Dirvec.Pos -> d > 0
         | Dirvec.Neg -> d < 0
         | Dirvec.Zero -> d = 0
         | Dirvec.NonNeg -> d >= 0
         | Dirvec.NonPos -> d <= 0
         | Dirvec.Any -> true)
       v dist

let check_program (ast : Ast.program) : bool =
  let prog = Sema.analyze ast in
  let result = Driver.analyze prog in
  let ok = ref true in
  let fail _msg = ok := false in
  List.iter
    (fun nval ->
      let trace = Interp.run prog ~syms:[ ("n", nval) ] in
      let vflows = Interp.value_flow_deps trace in
      let mflows = Interp.memory_deps trace `Flow in
      (* 1: dead dependences carry no value flow *)
      List.iter
        (fun (fr : Driver.flow_result) ->
          if fr.Driver.dead <> None then
            if
              List.exists
                (fun (d : Interp.dep) ->
                  key d.Interp.src = fr.Driver.dep.Deps.src.Ir.acc_id
                  && key d.Interp.dst
                     = fr.Driver.dep.Deps.dst.Ir.acc_id)
                vflows
            then fail "dead dependence carries a value flow")
        result.Driver.flows;
      (* 2: every value flow is covered by a live dependence admitting the
         observed distance *)
      List.iter
        (fun (d : Interp.dep) ->
          let dist = Interp.distance d in
          let covered =
            List.exists
              (fun (fr : Driver.flow_result) ->
                fr.Driver.dead = None
                && fr.Driver.dep.Deps.src.Ir.acc_id = key d.Interp.src
                && fr.Driver.dep.Deps.dst.Ir.acc_id = key d.Interp.dst
                &&
                let vecs =
                  match fr.Driver.refined with
                  | Some v -> v
                  | None -> fr.Driver.dep.Deps.vectors
                in
                List.exists (fun v -> vector_admits v dist) vecs)
              result.Driver.flows
          in
          if not covered then fail "value flow not covered by live deps")
        vflows;
      (* 3: every memory flow appears among the apparent dependences *)
      List.iter
        (fun (d : Interp.dep) ->
          let found =
            List.exists
              (fun (fr : Driver.flow_result) ->
                fr.Driver.dep.Deps.src.Ir.acc_id = key d.Interp.src
                && fr.Driver.dep.Deps.dst.Ir.acc_id
                   = key d.Interp.dst)
              result.Driver.flows
          in
          if not found then fail "memory flow not reported")
        mflows;
      (* 4: every dynamic anti / output pair appears among the standard
         dependences of that kind, with an admitted distance *)
      List.iter
        (fun (kind, deps, dyn) ->
          ignore kind;
          List.iter
            (fun (d : Interp.dep) ->
              let dist = Interp.distance d in
              let found =
                List.exists
                  (fun (sd : Deps.dep) ->
                    sd.Deps.src.Ir.acc_id = key d.Interp.src
                    && sd.Deps.dst.Ir.acc_id = key d.Interp.dst
                    && List.exists (fun v -> vector_admits v dist) sd.Deps.vectors)
                  deps
              in
              if not found then fail "dynamic anti/output dep not covered")
            dyn)
        [
          (`Anti, result.Driver.antis, Interp.memory_deps trace `Anti);
          (`Output, result.Driver.outputs, Interp.memory_deps trace `Output);
        ])
    [ 3; 4 ];
  !ok

let prop_tests =
  [
    QCheck.Test.make ~name:"static analysis sound vs interpreter" ~count:60
      arb_program check_program;
  ]

let suite =
  ("e2e", List.map (QCheck_alcotest.to_alcotest ~long:false) prop_tests)
