(* An independent brute-force oracle for small Omega problems.

   Problems are evaluated over an explicit box of integer assignments.  The
   generators below always conjoin the box constraints into the problems
   they build, so "satisfiable anywhere" and "satisfiable in the box"
   coincide and the Omega test can be checked exactly against enumeration.

   Wildcard variables are handled only in the inert-congruence position
   that projection outputs guarantee (each wildcard in exactly one
   equality): such an equality holds for some integer wildcard value iff
   the gcd of the wildcard coefficients divides the rest. *)

open Omega

let holds_at (env : Zint.t Var.Map.t) (p : Problem.t) : bool =
  List.for_all
    (fun c ->
      let e = Constr.expr c in
      let wilds = Var.Set.filter Var.is_wild (Linexpr.vars e) in
      if Var.Set.is_empty wilds then
        Constr.eval (fun v -> Var.Map.find v env) c
      else begin
        assert (Constr.kind c = Constr.Eq);
        let g =
          Var.Set.fold
            (fun w acc -> Zint.gcd acc (Linexpr.coeff e w))
            wilds Zint.zero
        in
        let residual =
          Linexpr.fold_terms
            (fun v cv acc ->
              if Var.is_wild v then acc
              else Zint.add acc (Zint.mul cv (Var.Map.find v env)))
            e (Linexpr.constant e)
        in
        Zint.divisible residual g
      end)
    (Problem.constraints p)

(* All assignments of [vars] to values in [lo..hi]. *)
let rec assignments vars lo hi : Zint.t Var.Map.t Seq.t =
  match vars with
  | [] -> Seq.return Var.Map.empty
  | v :: rest ->
    Seq.concat_map
      (fun env ->
        Seq.map
          (fun x -> Var.Map.add v (Zint.of_int x) env)
          (Seq.init (hi - lo + 1) (fun i -> lo + i)))
      (assignments rest lo hi)

let exists_solution vars lo hi p =
  Seq.exists (fun env -> holds_at env p) (assignments vars lo hi)

(* ------------------------------------------------------------------ *)
(* Random problem generation                                           *)
(* ------------------------------------------------------------------ *)

(* A fixed pool of variables reused across generated problems. *)
let pool = Array.init 4 (fun i -> Var.fresh (Printf.sprintf "v%d" i))

let box_constraints vars lo hi =
  List.concat_map
    (fun v ->
      [
        Constr.ge (Linexpr.var v) (Linexpr.of_int lo);
        Constr.le (Linexpr.var v) (Linexpr.of_int hi);
      ])
    vars

let gen_linexpr ~nvars ~max_coeff ~max_const =
  QCheck.Gen.(
    let* const = int_range (-max_const) max_const in
    let* coeffs =
      array_size (return nvars) (int_range (-max_coeff) max_coeff)
    in
    return
      (Array.to_seqi coeffs
      |> Seq.fold_left
           (fun e (i, c) -> Linexpr.add_term e (Zint.of_int c) pool.(i))
           (Linexpr.of_int const)))

let gen_constr ~nvars ~max_coeff ~max_const =
  QCheck.Gen.(
    let* e = gen_linexpr ~nvars ~max_coeff ~max_const in
    let* k = int_range 0 4 in
    return (if k = 0 then Constr.eq e else Constr.geq e))

(* A random problem over the first [nvars] pool variables, boxed to
   [lo..hi]. *)
let gen_problem ?(nvars = 3) ?(ncons = 3) ?(lo = -5) ?(hi = 5)
    ?(max_coeff = 3) ?(max_const = 8) () =
  QCheck.Gen.(
    let* cs = list_size (int_range 1 ncons) (gen_constr ~nvars ~max_coeff ~max_const) in
    let vars = Array.to_list (Array.sub pool 0 nvars) in
    return (Problem.of_list (cs @ box_constraints vars lo hi), vars, lo, hi))

let problem_print (p, _, _, _) = Problem.to_string p

let arb_problem ?nvars ?ncons ?lo ?hi ?max_coeff ?max_const () =
  QCheck.make
    ~print:problem_print
    (gen_problem ?nvars ?ncons ?lo ?hi ?max_coeff ?max_const ())
