(* Tests for the Omega test core: satisfiability, projection (real/dark
   shadows, splintering), gists, implication, Presburger decisions. *)

open Omega

let v name = Var.fresh name
let x = v "x"
let y = v "y"
let z = v "z"

let i n = Linexpr.of_int n
let vx = Linexpr.var x
let vy = Linexpr.var y
let vz = Linexpr.var z

(* c1 * var + c0 *)
let lin c1 var c0 = Linexpr.add_term (i c0) (Zint.of_int c1) var

let sat cs = Elim.satisfiable (Problem.of_list cs)

let unit_tests =
  [
    Alcotest.test_case "trivial problems" `Quick (fun () ->
        Alcotest.(check bool) "empty sat" true (sat []);
        Alcotest.(check bool) "0 >= 0" true (sat [ Constr.geq (i 0) ]);
        Alcotest.(check bool) "-1 >= 0" false (sat [ Constr.geq (i (-1)) ]);
        Alcotest.(check bool) "1 = 0" false (sat [ Constr.eq (i 1) ]));
    Alcotest.test_case "single variable intervals" `Quick (fun () ->
        (* 5x >= 6 and 5x <= 9: no integer *)
        Alcotest.(check bool) "5x in [6,9]" false
          (sat [ Constr.ge (lin 5 x 0) (i 6); Constr.le (lin 5 x 0) (i 9) ]);
        (* 5x >= 6 and 5x <= 10: x = 2 *)
        Alcotest.(check bool) "5x in [6,10]" true
          (sat [ Constr.ge (lin 5 x 0) (i 6); Constr.le (lin 5 x 0) (i 10) ]));
    Alcotest.test_case "equality elimination with gcd" `Quick (fun () ->
        (* 2x + 4y = 5 has no integer solutions *)
        Alcotest.(check bool) "2x+4y=5" false
          (sat [ Constr.eq2 (Linexpr.add (lin 2 x 0) (lin 4 y 0)) (i 5) ]);
        (* 2x + 3y = 5 does *)
        Alcotest.(check bool) "2x+3y=5" true
          (sat [ Constr.eq2 (Linexpr.add (lin 2 x 0) (lin 3 y 0)) (i 5) ]));
    Alcotest.test_case "mod-hat elimination (non-unit equality)" `Quick
      (fun () ->
        (* 7x + 12y = 1, 0 <= x <= 100, 0 <= y: solvable? 7*7+12*(-4)=1;
           force positivity: 7x + 12y = 1 with x,y >= 0 has no small...
           7x = 1 - 12y; y=0 -> 7x=1 no; need x = 7+12k, y = -4-7k <= ...
           y >= 0 requires k <= -1 -> x = 7-12 < 0.  So unsat. *)
        Alcotest.(check bool) "7x+12y=1, x,y>=0" false
          (sat
             [
               Constr.eq2 (Linexpr.add (lin 7 x 0) (lin 12 y 0)) (i 1);
               Constr.ge vx (i 0);
               Constr.ge vy (i 0);
             ]);
        Alcotest.(check bool) "7x+12y=1 free" true
          (sat [ Constr.eq2 (Linexpr.add (lin 7 x 0) (lin 12 y 0)) (i 1) ]));
    Alcotest.test_case "paper projection example" `Quick (fun () ->
        (* projecting {0 <= a <= 5; b < a <= 5b} onto a gives {2 <= a <= 5} *)
        let p =
          Problem.of_list
            [
              Constr.ge vx (i 0);
              Constr.le vx (i 5);
              Constr.lt vy vx;
              Constr.le vx (lin 5 y 0);
            ]
        in
        let keep u = Var.equal u x in
        let pieces = Elim.project ~keep p in
        (* membership for a = 0..6 must be exactly {2,3,4,5} *)
        for a = 0 to 6 do
          let member =
            List.exists
              (fun q ->
                Oracle.holds_at (Var.Map.singleton x (Zint.of_int a)) q)
              pieces
          in
          Alcotest.(check bool)
            (Printf.sprintf "a=%d" a)
            (a >= 2 && a <= 5) member
        done);
    Alcotest.test_case "projection produces congruences" `Quick (fun () ->
        (* project {x = 2y} onto x: x must be even *)
        let p = Problem.of_list [ Constr.eq2 vx (lin 2 y 0) ] in
        let keep u = Var.equal u x in
        let pieces = Elim.project ~keep p in
        List.iter
          (fun a ->
            let member =
              List.exists
                (fun q ->
                  Oracle.holds_at (Var.Map.singleton x (Zint.of_int a)) q)
                pieces
            in
            Alcotest.(check bool)
              (Printf.sprintf "x=%d" a)
              (a mod 2 = 0) member)
          [ -3; -2; -1; 0; 1; 2; 3; 4 ]);
    Alcotest.test_case "dark shadow misses, splinter catches" `Quick
      (fun () ->
        (* 2y <= x, x <= 2y + 1, 3 <= x <= 3: x=3 needs y=1 (2<=3<=3). *)
        Alcotest.(check bool) "splinter case sat" true
          (sat
             [
               Constr.le (lin 2 y 0) vx;
               Constr.le vx (lin 2 y 1);
               Constr.eq2 vx (i 3);
             ]);
        (* Classic: 2 <= 3y - 2x and 3y - 2x <= 3 and ... craft unsat via
           parity: x = 2y and x = 2z + 1 *)
        Alcotest.(check bool) "parity conflict" false
          (sat [ Constr.eq2 vx (lin 2 y 0); Constr.eq2 vx (lin 2 z 1) ]));
    Alcotest.test_case "implies" `Quick (fun () ->
        let p =
          Problem.of_list [ Constr.ge vx (i 2); Constr.le vx (i 5) ]
        in
        let q1 = Problem.of_list [ Constr.ge vx (i 0) ] in
        let q2 = Problem.of_list [ Constr.ge vx (i 3) ] in
        Alcotest.(check bool) "2<=x<=5 => x>=0" true (Gist.implies p q1);
        Alcotest.(check bool) "2<=x<=5 => x>=3" false (Gist.implies p q2));
    Alcotest.test_case "gist basics" `Quick (fun () ->
        (* gist {x >= 0 && x <= 5} given {x >= 3} = {x <= 5} *)
        let p = Problem.of_list [ Constr.ge vx (i 0); Constr.le vx (i 5) ] in
        let q = Problem.of_list [ Constr.ge vx (i 3) ] in
        (match Gist.gist p ~given:q with
         | Gist.Gist g ->
           Alcotest.(check int) "one constraint" 1
             (List.length (Problem.constraints g));
           (* the surviving constraint is x <= 5 *)
           let c = List.hd (Problem.constraints g) in
           Alcotest.(check bool) "is x<=5" true
             (Constr.equal c
                (match Constr.normalize (Constr.le vx (i 5)) with
                 | Constr.Ok c -> c
                 | _ -> assert false))
         | Gist.Tautology -> Alcotest.fail "expected a gist, got tautology"
         | Gist.False -> Alcotest.fail "expected a gist, got false");
        (* gist of implied constraints is True *)
        (match
           Gist.gist
             (Problem.of_list [ Constr.ge vx (i 1) ])
             ~given:(Problem.of_list [ Constr.ge vx (i 4) ])
         with
         | Gist.Tautology -> ()
         | _ -> Alcotest.fail "expected tautology"));
    Alcotest.test_case "paper kill example as implication" `Quick (fun () ->
        (* Example 1: k = n  =>  n <= k <= n+10 *)
        let n = v "n" in
        let k = v "k" in
        let vk = Linexpr.var k and vn = Linexpr.var n in
        let p = Problem.of_list [ Constr.eq2 vk vn ] in
        let q =
          Problem.of_list
            [ Constr.ge vk vn; Constr.le vk (Linexpr.add_const vn (Zint.of_int 10)) ]
        in
        Alcotest.(check bool) "kill verified" true (Gist.implies p q);
        (* with k = m instead, and n <= k <= n+20, the kill fails *)
        let m = v "m" in
        let p' =
          Problem.of_list
            [
              Constr.eq2 vk (Linexpr.var m);
              Constr.ge vk vn;
              Constr.le vk (Linexpr.add_const vn (Zint.of_int 20));
            ]
        in
        Alcotest.(check bool) "kill not verified" false (Gist.implies p' q);
        (* asserting n <= m <= n+10 restores it *)
        let p'' =
          Problem.add_list
            [
              Constr.ge (Linexpr.var m) vn;
              Constr.le (Linexpr.var m) (Linexpr.add_const vn (Zint.of_int 10));
            ]
            p'
        in
        Alcotest.(check bool) "kill with assertion" true (Gist.implies p'' q));
    Alcotest.test_case "minimize/maximize" `Quick (fun () ->
        let p =
          Problem.of_list
            [
              Constr.ge (lin 2 x 0) (i 3) (* x >= 1.5 -> x >= 2 *);
              Constr.le vx (i 9);
            ]
        in
        (match Omega.minimize p x with
         | `Min m -> Alcotest.(check int) "min" 2 (Zint.to_int m)
         | _ -> Alcotest.fail "expected min");
        (match Omega.maximize p x with
         | `Max m -> Alcotest.(check int) "max" 9 (Zint.to_int m)
         | _ -> Alcotest.fail "expected max");
        (match
           Omega.minimize (Problem.of_list [ Constr.le vx (i 9) ]) x
         with
         | `Unbounded -> ()
         | _ -> Alcotest.fail "expected unbounded");
        (match Omega.minimize (Problem.of_list [ Constr.eq (i 1) ]) x with
         | `Unsat -> ()
         | _ -> Alcotest.fail "expected unsat"));
    Alcotest.test_case "minimize with congruence" `Quick (fun () ->
        (* x = 3y, x >= 4: minimum is 6 *)
        let p =
          Problem.of_list [ Constr.eq2 vx (lin 3 y 0); Constr.ge vx (i 4) ]
        in
        match Omega.minimize p x with
        | `Min m -> Alcotest.(check int) "min" 6 (Zint.to_int m)
        | _ -> Alcotest.fail "expected min");
    Alcotest.test_case "presburger: forall-exists" `Quick (fun () ->
        let open Presburger in
        (* forall x, 0 <= x <= 10 => exists y. x = 2y or x = 2y+1 *)
        let f =
          forall [ x ]
            (implies_
               (and_ [ ge vx (i 0); le vx (i 10) ])
               (exists [ y ] (or_ [ eq vx (lin 2 y 0); eq vx (lin 2 y 1) ])))
        in
        Alcotest.(check bool) "parity cover" true (valid f);
        (* forall x, 0 <= x <= 10 => exists y. x = 2y : false *)
        let g =
          forall [ x ]
            (implies_
               (and_ [ ge vx (i 0); le vx (i 10) ])
               (exists [ y ] (eq vx (lin 2 y 0))))
        in
        Alcotest.(check bool) "evens only" false (valid g));
    Alcotest.test_case "presburger: congruence negation" `Quick (fun () ->
        let open Presburger in
        (* not (2 | x) and not (2 | x + 1) is unsatisfiable *)
        let f =
          and_
            [
              not_ (cong Zint.two vx);
              not_ (cong Zint.two (Linexpr.add_const vx Zint.one));
            ]
        in
        Alcotest.(check bool) "both parities excluded" false (satisfiable f));
  ]

(* -------------------------------------------------------------------- *)
(* Property tests against the brute-force oracle                         *)
(* -------------------------------------------------------------------- *)

let prop_tests =
  [
    QCheck.Test.make ~name:"satisfiable matches brute force" ~count:300
      (Oracle.arb_problem ())
      (fun (p, vars, lo, hi) ->
        Elim.satisfiable p = Oracle.exists_solution vars lo hi p);
    QCheck.Test.make ~name:"satisfiable matches brute force (harder)"
      ~count:150
      (Oracle.arb_problem ~nvars:3 ~ncons:4 ~max_coeff:5 ~max_const:12 ())
      (fun (p, vars, lo, hi) ->
        Elim.satisfiable p = Oracle.exists_solution vars lo hi p);
    QCheck.Test.make ~name:"exact projection = brute-force projection"
      ~count:200
      (Oracle.arb_problem ~nvars:3 ())
      (fun (p, vars, lo, hi) ->
        match vars with
        | vx :: rest ->
          let keep u = Var.equal u vx in
          let pieces = Elim.project ~keep p in
          let ok = ref true in
          for a = lo to hi do
            let env = Var.Map.singleton vx (Zint.of_int a) in
            let projected =
              List.exists (fun q -> Oracle.holds_at env q) pieces
            in
            let actual =
              Oracle.exists_solution rest lo hi
                (Problem.subst vx (Linexpr.const (Zint.of_int a)) p)
            in
            if projected <> actual then ok := false
          done;
          !ok
        | [] -> true);
    QCheck.Test.make ~name:"dark subset exact subset real" ~count:200
      (Oracle.arb_problem ~nvars:3 ())
      (fun (p, vars, lo, hi) ->
        match vars with
        | vx :: _ ->
          let keep u = Var.equal u vx in
          let pieces = Elim.project ~keep p in
          let dark = Elim.project_dark ~keep p in
          let real = Elim.project_real ~keep p in
          let ok = ref true in
          for a = lo to hi do
            let env = Var.Map.singleton vx (Zint.of_int a) in
            let in_exact =
              List.exists (fun q -> Oracle.holds_at env q) pieces
            in
            let in_dark =
              match dark with
              | `Contra -> false
              | `Ok d -> Oracle.holds_at env d
            in
            let in_real =
              match real with
              | `Contra -> false
              | `Ok r -> Oracle.holds_at env r
            in
            if in_dark && not in_exact then ok := false;
            if in_exact && not in_real then ok := false
          done;
          !ok
        | [] -> true);
    QCheck.Test.make ~name:"implies matches brute force" ~count:200
      (QCheck.pair (Oracle.arb_problem ()) (Oracle.arb_problem ()))
      (fun ((p, vars, lo, hi), (q, _, _, _)) ->
        let imp = Gist.implies p q in
        let brute =
          Seq.for_all
            (fun env ->
              (not (Oracle.holds_at env p)) || Oracle.holds_at env q)
            (Oracle.assignments vars lo hi)
        in
        imp = brute);
    QCheck.Test.make ~name:"gist defining property" ~count:150
      (QCheck.pair (Oracle.arb_problem ()) (Oracle.arb_problem ()))
      (fun ((p, vars, lo, hi), (q, _, _, _)) ->
        match Gist.gist p ~given:q with
        | Gist.False ->
          (* p && q must be unsatisfiable *)
          not (Elim.satisfiable (Problem.conj p q))
        | Gist.Tautology ->
          (* gist = True means q => p *)
          Seq.for_all
            (fun env ->
              (not (Oracle.holds_at env q)) || Oracle.holds_at env p)
            (Oracle.assignments vars lo hi)
        | Gist.Gist g ->
          Seq.for_all
            (fun env ->
              let lhs = Oracle.holds_at env g && Oracle.holds_at env q in
              let rhs = Oracle.holds_at env p && Oracle.holds_at env q in
              lhs = rhs)
            (Oracle.assignments vars lo hi));
    QCheck.Test.make ~name:"gist fast checks agree with naive" ~count:100
      (QCheck.pair (Oracle.arb_problem ()) (Oracle.arb_problem ()))
      (fun ((p, vars, lo, hi), (q, _, _, _)) ->
        (* both must satisfy the defining property; they may differ in which
           minimal subset they choose *)
        let check = function
          | Gist.False -> not (Elim.satisfiable (Problem.conj p q))
          | Gist.Tautology ->
            Seq.for_all
              (fun env ->
                (not (Oracle.holds_at env q)) || Oracle.holds_at env p)
              (Oracle.assignments vars lo hi)
          | Gist.Gist g ->
            Seq.for_all
              (fun env ->
                (Oracle.holds_at env g && Oracle.holds_at env q)
                = (Oracle.holds_at env p && Oracle.holds_at env q))
              (Oracle.assignments vars lo hi)
        in
        check (Gist.gist ~fast:true p ~given:q)
        && check (Gist.gist ~fast:false p ~given:q));
    QCheck.Test.make ~name:"red/black gist_project defining property"
      ~count:60
      (QCheck.pair
         (Oracle.arb_problem ~max_coeff:2 ~ncons:2 ())
         (Oracle.arb_problem ~max_coeff:2 ~ncons:2 ()))
      (fun ((p, vars, lo, hi), (q, _, _, _)) ->
        match vars with
        | v0 :: v1 :: rest ->
          let keep v = Var.equal v v0 || Var.equal v v1 in
          (* the defining property is exact only when the joint projection
             does not splinter (the paper's own proviso); the splintered
             fallback is a dark-shadow approximation *)
          let splintered = ref false in
          ignore (Elim.project ~splintered ~keep (Problem.conj p q));
          QCheck.assume (not !splintered);
          let r = Gist.gist_project ~keep p ~given:q in
          (* brute-force projections over the box *)
          let proj pb x0 x1 =
            Oracle.exists_solution rest lo hi
              (Problem.subst v0 (Linexpr.const (Zint.of_int x0))
                 (Problem.subst v1 (Linexpr.const (Zint.of_int x1)) pb))
          in
          let ok = ref true in
          for x0 = lo to hi do
            for x1 = lo to hi do
              let env =
                Var.Map.add v0 (Zint.of_int x0)
                  (Var.Map.singleton v1 (Zint.of_int x1))
              in
              let r_holds =
                match r with
                | Gist.Tautology -> true
                | Gist.False -> false
                | Gist.Gist g -> Oracle.holds_at env g
              in
              let lhs = r_holds && proj q x0 x1 in
              let rhs = proj (Problem.conj p q) x0 x1 in
              if lhs <> rhs then ok := false
            done
          done;
          !ok
        | _ -> true);
    QCheck.Test.make ~name:"minimize matches brute force" ~count:200
      (Oracle.arb_problem ~nvars:2 ())
      (fun (p, vars, lo, hi) ->
        match vars with
        | vx :: _ ->
          let brute =
            Seq.fold_left
              (fun acc env ->
                if Oracle.holds_at env p then
                  let x = Var.Map.find vx env in
                  Some (match acc with None -> x | Some m -> Zint.min m x)
                else acc)
              None
              (Oracle.assignments vars lo hi)
          in
          (match Omega.minimize p vx, brute with
           | `Min m, Some b -> Zint.equal m b
           | `Unsat, None -> true
           | _ -> false)
        | [] -> true);
  ]

let presburger_tests =
  [
    QCheck.Test.make ~name:"presburger satisfiable matches brute force"
      ~count:100
      (QCheck.pair (Oracle.arb_problem ~ncons:2 ()) (Oracle.arb_problem ~ncons:2 ()))
      (fun ((p, vars, lo, hi), (q, _, _, _)) ->
        (* f = p or (not q): free vars existential *)
        let open Presburger in
        let f = or_ [ of_problem p; not_ (of_problem q) ] in
        let brute =
          Seq.exists
            (fun env ->
              Oracle.holds_at env p || not (Oracle.holds_at env q))
            (Oracle.assignments vars lo hi)
        in
        (* the formula is unconstrained outside the box for the (not q)
           branch, which the brute force cannot see; restrict to the box by
           conjoining p's box... instead check only the implication
           direction that is box-complete: if brute finds a witness, the
           decision procedure must agree *)
        (not brute) || satisfiable f);
    QCheck.Test.make ~name:"presburger qe preserves truth" ~count:60
      (Oracle.arb_problem ~ncons:2 ())
      (fun (p, vars, lo, hi) ->
        match vars with
        | vz :: rest ->
          (* f = exists vz. p;  qe f must hold exactly where a witness is *)
          let open Presburger in
          let f = exists [ vz ] (of_problem p) in
          let g = qe f in
          let disjuncts = problems_of_qf g in
          Seq.for_all
            (fun env ->
              let lhs =
                List.exists (fun pb -> Oracle.holds_at env pb) disjuncts
              in
              let rhs =
                Seq.exists
                  (fun vzval ->
                    Oracle.holds_at (Var.Map.add vz (Var.Map.find vz vzval) env) p)
                  (Oracle.assignments [ vz ] lo hi)
              in
              lhs = rhs)
            (Oracle.assignments rest lo hi)
        | [] -> true);
    QCheck.Test.make ~name:"presburger validity of implication is sound"
      ~count:80
      (QCheck.pair (Oracle.arb_problem ~ncons:2 ()) (Oracle.arb_problem ~ncons:2 ()))
      (fun ((p, vars, lo, hi), (q, _, _, _)) ->
        let open Presburger in
        let imp = valid (implies_ (of_problem p) (of_problem q)) in
        let brute =
          Seq.for_all
            (fun env ->
              (not (Oracle.holds_at env p)) || Oracle.holds_at env q)
            (Oracle.assignments vars lo hi)
        in
        imp = brute);
    QCheck.Test.make ~name:"problem simplify preserves solutions" ~count:200
      (Oracle.arb_problem ())
      (fun (p, vars, lo, hi) ->
        match Problem.simplify p with
        | Problem.Contra ->
          not (Oracle.exists_solution vars lo hi p)
        | Problem.Ok p' ->
          Seq.for_all
            (fun env -> Oracle.holds_at env p = Oracle.holds_at env p')
            (Oracle.assignments vars lo hi));
    QCheck.Test.make ~name:"constraint normalize preserves solutions"
      ~count:300
      (Oracle.arb_problem ~ncons:1 ())
      (fun (p, vars, lo, hi) ->
        List.for_all
          (fun c ->
            match Constr.normalize c with
            | Constr.Tauto ->
              Seq.for_all
                (fun env -> Oracle.holds_at env (Problem.of_list [ c ]))
                (Oracle.assignments vars lo hi)
            | Constr.Contra ->
              Seq.for_all
                (fun env ->
                  not (Oracle.holds_at env (Problem.of_list [ c ])))
                (Oracle.assignments vars lo hi)
            | Constr.Ok c' ->
              Seq.for_all
                (fun env ->
                  Oracle.holds_at env (Problem.of_list [ c ])
                  = Oracle.holds_at env (Problem.of_list [ c' ]))
                (Oracle.assignments vars lo hi))
          (Problem.constraints p));
  ]

let suite =
  ( "omega",
    unit_tests
    @ List.map (QCheck_alcotest.to_alcotest ~long:false)
        (prop_tests @ presburger_tests) )
