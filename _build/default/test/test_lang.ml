(* Tests for the petit mini-language: lexer, parser, semantic analysis and
   the tracing interpreter. *)

open Lang

let parse = Parser.parse_string
let analyze = Sema.parse_and_analyze

let unit_tests =
  [
    Alcotest.test_case "parse simple program" `Quick (fun () ->
        let p =
          parse
            {|
symbolic n;
real a[0:100];
for i := 1 to n do
  s: a(i) := a(i-1) + 1;
endfor
|}
        in
        Alcotest.(check int) "one stmt" 1 (List.length p.Ast.stmts);
        match p.Ast.stmts with
        | [ Ast.For { var; body = [ Ast.Assign { label; _ } ]; _ } ] ->
          Alcotest.(check string) "loop var" "i" var;
          Alcotest.(check (option string)) "label" (Some "s") label
        | _ -> Alcotest.fail "unexpected shape");
    Alcotest.test_case "parse numeric labels and brackets" `Quick (fun () ->
        let p =
          parse
            {|
real a[0:10];
3: a[0] := 1;
|}
        in
        match p.Ast.stmts with
        | [ Ast.Assign { label = Some "3"; _ } ] -> ()
        | _ -> Alcotest.fail "numeric label not parsed");
    Alcotest.test_case "parser error reporting" `Quick (fun () ->
        (match parse "for := 1 to" with
         | exception Parser.Error (_, pos) ->
           Alcotest.(check int) "line" 1 pos.Ast.line
         | _ -> Alcotest.fail "expected a parse error"));
    Alcotest.test_case "pretty-print roundtrip" `Quick (fun () ->
        let src =
          {|
symbolic n, m;
real a[0:100, -5:5];
assume n >= 1, m >= 2;
for i := 1 to n do
  for j := max(1, i - 3) to min(m, i + 3) do
    s: a(i, j) := a(i - 1, j) + 2*a(i, j - 1);
  endfor
endfor
|}
        in
        let p1 = parse src in
        let p2 = parse (Ast.program_to_string p1) in
        Alcotest.(check string) "stable"
          (Ast.program_to_string p1) (Ast.program_to_string p2));
    Alcotest.test_case "sema: affine extraction" `Quick (fun () ->
        let prog = analyze (Corpus.find "example3") in
        let w = List.hd (Ir.writes prog) in
        Alcotest.(check int) "depth 2" 2 (Ir.depth w);
        (match w.Ir.subs with
         | [ s ] ->
           Alcotest.(check int) "coeff L2" 1 (Ir.aff_coeff s (Ir.Loop 1));
           Alcotest.(check int) "const" 0 s.Ir.const
         | _ -> Alcotest.fail "one subscript expected");
        let r = List.hd (Ir.reads prog) in
        match r.Ir.subs with
        | [ s ] -> Alcotest.(check int) "const -1" (-1) s.Ir.const
        | _ -> Alcotest.fail "one subscript expected");
    Alcotest.test_case "sema: max/min bound arms" `Quick (fun () ->
        let prog =
          analyze
            {|
symbolic n, m;
real a[0:100];
for i := max(1, n - 3) - m to min(n, m) do
  s: a(i) := 0;
endfor
|}
        in
        let w = List.hd (Ir.writes prog) in
        match w.Ir.loops with
        | [ { Ir.lo; hi; _ } ] ->
          Alcotest.(check int) "two lower arms" 2 (List.length lo);
          Alcotest.(check int) "two upper arms" 2 (List.length hi)
        | _ -> Alcotest.fail "one loop expected");
    Alcotest.test_case "sema: opaque terms" `Quick (fun () ->
        let prog = analyze (Corpus.find "example10") in
        let w = List.hd (Ir.writes prog) in
        Alcotest.(check int) "one opaque" 1 (List.length w.Ir.opaques);
        let prog8 = analyze (Corpus.find "example8") in
        let w8 =
          List.find (fun a -> a.Ir.array = "a") (Ir.writes prog8)
        in
        (* a(q(L1)): the q-read is opaque with one affine arg *)
        match w8.Ir.opaques with
        | [ o ] ->
          Alcotest.(check (option string)) "base" (Some "q") o.Ir.base;
          Alcotest.(check int) "one arg" 1 (List.length o.Ir.args)
        | _ -> Alcotest.fail "one opaque expected");
    Alcotest.test_case "sema: undeclared name error" `Quick (fun () ->
        match analyze "real a[0:3];\ns: a(zz) := 0;" with
        | exception Sema.Error _ -> ()
        | _ -> Alcotest.fail "expected a sema error");
    Alcotest.test_case "common loops and textual order" `Quick (fun () ->
        let prog = analyze (Corpus.find "example1") in
        let accs = Array.to_list prog.Ir.accesses in
        let find label kind =
          List.find (fun a -> a.Ir.label = label && a.Ir.kind = kind) accs
        in
        let a = find "A" Ir.Write in
        let b = find "B" Ir.Write in
        let c = find "C" Ir.Read in
        Alcotest.(check int) "A,B share no loop" 0 (Ir.common_loops a b);
        Alcotest.(check int) "B,C share no loop" 0 (Ir.common_loops b c);
        Alcotest.(check bool) "A before B" true (Ir.textually_before a b);
        Alcotest.(check bool) "B before C" true (Ir.textually_before b c);
        Alcotest.(check bool) "C not before B" false (Ir.textually_before c b));
    Alcotest.test_case "same-statement reads precede the write" `Quick
      (fun () ->
        let prog = analyze (Corpus.find "example3") in
        let w = List.hd (Ir.writes prog) in
        let r = List.hd (Ir.reads prog) in
        Alcotest.(check bool) "read before write" true
          (Ir.textually_before r w);
        Alcotest.(check int) "two shared loops" 2 (Ir.common_loops r w));
    Alcotest.test_case "interp: example3 value flows" `Quick (fun () ->
        let prog = analyze (Corpus.find "example3") in
        let trace = Interp.run prog ~syms:[ ("n", 3); ("m", 4) ] in
        let flows = Interp.value_flow_deps trace in
        (* a(L2) := a(L2-1): within one L1 iteration, L2 chain flows; all
           value flows have distance (0,1) *)
        Alcotest.(check bool) "some flows" true (flows <> []);
        List.iter
          (fun d ->
            Alcotest.(check (list int)) "distance (0,1)" [ 0; 1 ]
              (Interp.distance d))
          flows);
    Alcotest.test_case "interp: memory flows superset of value flows" `Quick
      (fun () ->
        let prog = analyze (Corpus.find "example5") in
        let trace = Interp.run prog ~syms:[ ("n", 4); ("m", 5) ] in
        let vflows = Interp.value_flow_deps trace in
        let mflows = Interp.memory_deps trace `Flow in
        Alcotest.(check bool) "value subset memory" true
          (List.for_all
             (fun (v : Interp.dep) ->
               List.exists
                 (fun (m : Interp.dep) ->
                   m.Interp.src.Interp.acc.Ir.acc_id
                   = v.Interp.src.Interp.acc.Ir.acc_id
                   && m.Interp.src.Interp.iters = v.Interp.src.Interp.iters
                   && m.Interp.dst.Interp.acc.Ir.acc_id
                      = v.Interp.dst.Interp.acc.Ir.acc_id
                   && m.Interp.dst.Interp.iters = v.Interp.dst.Interp.iters)
                 mflows)
             vflows));
    Alcotest.test_case "interp: empty loops execute nothing" `Quick (fun () ->
        let prog = analyze (Corpus.find "example3") in
        let trace = Interp.run prog ~syms:[ ("n", 0); ("m", 4) ] in
        Alcotest.(check int) "no events" 0 (List.length trace.Interp.events));
    Alcotest.test_case "interp: index arrays via init" `Quick (fun () ->
        let prog = analyze (Corpus.find "example8") in
        let init name idx =
          match name, idx with "q", [ i ] -> i | _ -> 0
        in
        let trace = Interp.run ~init prog ~syms:[ ("n", 4) ] in
        (* with q = identity, a(q(L1)) := a(q(L1+1)-1): writes a(i), reads
           a(i): same-iteration locations; check event counts: 4 iterations
           x (3 reads + 1 write) *)
        Alcotest.(check int) "events" 20 (List.length trace.Interp.events));
    Alcotest.test_case "stepped loops: bounds and interpretation" `Quick
      (fun () ->
        let prog =
          analyze
            {|
symbolic n;
real a[0:100], o[0:100];
for i := 0 to 2*n by 2 do
  w: a(i) := i;
endfor
for i := 10 to 1 by -3 do
  r: o(i) := a(i);
endfor
|}
        in
        let w = List.find (fun a -> a.Ir.label = "w") (Ir.writes prog) in
        (match w.Ir.loops with
         | [ l ] -> Alcotest.(check int) "step 2" 2 l.Ir.step
         | _ -> Alcotest.fail "one loop");
        (* subscripts are in terms of the normalized counter: i = 0 + 2*c *)
        (match w.Ir.subs with
         | [ s ] ->
           Alcotest.(check int) "coeff" 2 (Ir.aff_coeff s (Ir.Loop 0));
           Alcotest.(check int) "const" 0 s.Ir.const
         | _ -> Alcotest.fail "one subscript");
        let trace = Interp.run prog ~syms:[ ("n", 3) ] in
        (* first loop: i = 0,2,4,6 -> 4 writes; second: 10,7,4,1 -> 4 reads
           + 4 writes *)
        Alcotest.(check int) "events" 12 (List.length trace.Interp.events);
        (* dynamic value flows land on even locations 4 (i=4) only:
           reads at 10,7,4,1; writes covered 0,2,4,6 -> flow at loc 4 *)
        let flows = Interp.value_flow_deps trace in
        Alcotest.(check int) "one flow" 1 (List.length flows));
    Alcotest.test_case "negative-step loop matches normalized semantics"
      `Quick (fun () ->
        let prog =
          analyze
            {|
real a[0:20], o[0:20];
for i := 5 to 1 by -1 do
  w: a(i) := i;
endfor
for i := 1 to 5 do
  r: o(i) := a(i);
endfor
|}
        in
        let trace = Interp.run prog ~syms:[] in
        Alcotest.(check int) "5 flows" 5
          (List.length (Interp.value_flow_deps trace)));
    Alcotest.test_case "scalars parse, read and write" `Quick (fun () ->
        let prog =
          analyze
            {|
symbolic n;
real s, a[0:100];
s := 0;
for i := 1 to n do
  t: s := s + i;
  u: a(i) := s;
endfor
|}
        in
        (* s reads appear as accesses with no subscripts *)
        let s_reads =
          List.filter (fun a -> a.Ir.array = "s") (Ir.reads prog)
        in
        Alcotest.(check int) "two scalar reads" 2 (List.length s_reads);
        let trace = Interp.run prog ~syms:[ ("n", 4) ] in
        (* a(i) = sum 1..i *)
        let mem =
          List.filter_map
            (fun (ev : Interp.event) ->
              if ev.Interp.ev_write && fst ev.Interp.ev_loc = "a" then
                Some ev.Interp.ev_loc
              else None)
            trace.Interp.events
        in
        Alcotest.(check int) "4 writes to a" 4 (List.length mem));
    Alcotest.test_case "cholsky parses and analyzes" `Quick (fun () ->
        let prog = analyze (Corpus.find "cholsky") in
        Alcotest.(check int) "access count" 29 (Ir.access_count prog));
  ]

(* -------------------------------------------------------------------- *)
(* Property tests                                                        *)
(* -------------------------------------------------------------------- *)

(* Random expression/program generator for parser fuzzing. *)
let gen_expr : Ast.expr QCheck.Gen.t =
  QCheck.Gen.(
    sized_size (int_range 0 5) @@ fix (fun self n ->
        if n = 0 then
          oneof
            [
              map (fun i -> Ast.Int i) (int_range (-9) 9);
              oneofl [ Ast.Name "i"; Ast.Name "n" ];
            ]
        else
          oneof
            [
              map2 (fun a b -> Ast.Add (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Ast.Sub (a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Ast.Neg a) (self (n - 1));
              map2
                (fun k a -> Ast.Mul (Ast.Int k, a))
                (int_range (-3) 3) (self (n - 1));
              map (fun a -> Ast.Ref ("a", [ a ])) (self (n - 1));
            ]))

let gen_fuzz_program : Ast.program QCheck.Gen.t =
  QCheck.Gen.(
    let pos = { Ast.line = 0; col = 0 } in
    let* rhs = gen_expr in
    let* sub = gen_expr in
    return
      {
        Ast.decls =
          [ Ast.Symbolic [ "n" ]; Ast.Array [ ("a", [ (Ast.Int (-500), Ast.Int 500) ]) ] ];
        stmts =
          [
            Ast.For
              {
                var = "i";
                lo = Ast.Int 1;
                hi = Ast.Name "n";
                step = 1;
                body = [ Ast.Assign { label = Some "s"; lhs = ("a", [ sub ]); rhs; pos } ];
                pos;
              };
          ];
      })

let prop_tests =
  [
    QCheck.Test.make ~name:"pretty-print / parse roundtrip" ~count:300
      (QCheck.make ~print:Ast.program_to_string gen_fuzz_program)
      (fun p ->
        (* one cycle may normalize (e.g. a negative literal reparses as a
           negation); after that, print/parse must be a fixpoint *)
        let p1 = Parser.parse_string (Ast.program_to_string p) in
        let s1 = Ast.program_to_string p1 in
        let s2 = Ast.program_to_string (Parser.parse_string s1) in
        s1 = s2);
    QCheck.Test.make ~name:"interpreter is deterministic" ~count:50
      (QCheck.make ~print:Ast.program_to_string gen_fuzz_program)
      (fun p ->
        let prog = Sema.analyze p in
        let t1 = Interp.run prog ~syms:[ ("n", 4) ] in
        let t2 = Interp.run prog ~syms:[ ("n", 4) ] in
        t1 = t2);
  ]

(* every corpus program parses, analyzes and (where affine) drives the
   full analysis without error *)
let corpus_tests =
  [
    Alcotest.test_case "all corpus programs parse and analyze" `Quick
      (fun () ->
        List.iter
          (fun (name, src) ->
            match Sema.parse_and_analyze src with
            | exception e ->
              Alcotest.fail
                (Printf.sprintf "%s failed: %s" name (Printexc.to_string e))
            | prog ->
              Alcotest.(check bool)
                (name ^ " has accesses")
                true
                (Ir.access_count prog > 0))
          Corpus.all);
    Alcotest.test_case "corpus timing population runs the driver" `Quick
      (fun () ->
        List.iter
          (fun name ->
            let prog = Sema.parse_and_analyze (Corpus.find name) in
            ignore (Depend.Driver.analyze prog))
          Corpus.timing_population);
  ]

let suite =
  ( "lang",
    unit_tests @ corpus_tests
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) prop_tests )
