test/test_misc.ml: Alcotest Array Constr Corpus Depctx Depend Dirvec Driver Fparse Lang Linexpr List Omega Presburger Printf Symbolic Var
