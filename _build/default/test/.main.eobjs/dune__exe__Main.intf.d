test/main.mli:
