test/test_zint.ml: Alcotest List Printf QCheck QCheck_alcotest Zint
