test/test_lang.ml: Alcotest Array Ast Corpus Depend Interp Ir Lang List Parser Printexc Printf QCheck QCheck_alcotest Sema
