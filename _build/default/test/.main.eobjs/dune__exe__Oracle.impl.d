test/oracle.ml: Array Constr Linexpr List Omega Printf Problem QCheck Seq Var Zint
