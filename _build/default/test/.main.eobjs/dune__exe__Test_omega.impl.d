test/test_omega.ml: Alcotest Constr Elim Gist Linexpr List Omega Oracle Presburger Printf Problem QCheck QCheck_alcotest Seq Var Zint
