test/test_e2e.ml: Ast Depend Deps Dirvec Driver Interp Ir Lang List Printf QCheck QCheck_alcotest Sema
