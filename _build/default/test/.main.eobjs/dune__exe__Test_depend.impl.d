test/test_depend.ml: Alcotest Analyses Corpus Depctx Depend Deps Dirvec Driver Induction Lang List Omega Symbolic Zint
