test/main.ml: Alcotest Test_depend Test_e2e Test_lang Test_misc Test_omega Test_zint
