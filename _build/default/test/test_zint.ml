(* Tests for the arbitrary-precision integer substrate. *)

let z = Zint.of_int
let zs = Zint.of_string

let check_z msg expected actual =
  Alcotest.(check string) msg (Zint.to_string expected) (Zint.to_string actual)

let unit_tests =
  [
    Alcotest.test_case "of_int/to_int roundtrip" `Quick (fun () ->
        List.iter
          (fun n -> Alcotest.(check int) "roundtrip" n (Zint.to_int (z n)))
          [ 0; 1; -1; 42; max_int; min_int; max_int - 1; min_int + 1 ]);
    Alcotest.test_case "add promotes on overflow" `Quick (fun () ->
        let s = Zint.add (z max_int) (z max_int) in
        Alcotest.(check bool) "not small" false (Zint.is_small s);
        check_z "value" (zs "9223372036854775806") s;
        check_z "back down" (z max_int) (Zint.sub s (z max_int)));
    Alcotest.test_case "sub promotes on overflow" `Quick (fun () ->
        let s = Zint.sub (z min_int) Zint.one in
        check_z "value" (zs "-4611686018427387905") s);
    Alcotest.test_case "neg min_int" `Quick (fun () ->
        let m = Zint.neg (z min_int) in
        check_z "value" (zs "4611686018427387904") m;
        check_z "double neg" (z min_int) (Zint.neg m));
    Alcotest.test_case "mul promotes" `Quick (fun () ->
        let p = Zint.mul (z max_int) (z max_int) in
        (* (2^62 - 1)^2 = 2^124 - 2^63 + 1 *)
        check_z "value" (zs "21267647932558653957237540927630737409") p);
    Alcotest.test_case "string roundtrip big" `Quick (fun () ->
        let s = "123456789012345678901234567890123456789" in
        Alcotest.(check string) "roundtrip" s (Zint.to_string (zs s));
        Alcotest.(check string) "neg roundtrip" ("-" ^ s)
          (Zint.to_string (zs ("-" ^ s))));
    Alcotest.test_case "big division" `Quick (fun () ->
        let a = zs "123456789012345678901234567890" in
        let b = zs "9876543210" in
        let q = Zint.tdiv a b and r = Zint.trem a b in
        check_z "reconstruct" a (Zint.add (Zint.mul q b) r);
        Alcotest.(check bool) "0 <= r" true Zint.(zero <= r);
        Alcotest.(check bool) "r < b" true Zint.(r < b));
    Alcotest.test_case "fdiv/cdiv signs" `Quick (fun () ->
        check_z "fdiv 7 2" (z 3) (Zint.fdiv (z 7) (z 2));
        check_z "fdiv -7 2" (z (-4)) (Zint.fdiv (z (-7)) (z 2));
        check_z "fdiv 7 -2" (z (-4)) (Zint.fdiv (z 7) (z (-2)));
        check_z "fdiv -7 -2" (z 3) (Zint.fdiv (z (-7)) (z (-2)));
        check_z "cdiv 7 2" (z 4) (Zint.cdiv (z 7) (z 2));
        check_z "cdiv -7 2" (z (-3)) (Zint.cdiv (z (-7)) (z 2));
        check_z "cdiv 7 -2" (z (-3)) (Zint.cdiv (z 7) (z (-2)));
        check_z "cdiv -7 -2" (z 4) (Zint.cdiv (z (-7)) (z (-2))));
    Alcotest.test_case "gcd/lcm" `Quick (fun () ->
        check_z "gcd 12 18" (z 6) (Zint.gcd (z 12) (z 18));
        check_z "gcd -12 18" (z 6) (Zint.gcd (z (-12)) (z 18));
        check_z "gcd 0 5" (z 5) (Zint.gcd Zint.zero (z 5));
        check_z "gcd 0 0" Zint.zero (Zint.gcd Zint.zero Zint.zero);
        check_z "lcm 4 6" (z 12) (Zint.lcm (z 4) (z 6));
        check_z "lcm 0 6" Zint.zero (Zint.lcm Zint.zero (z 6)));
    Alcotest.test_case "mod_hat" `Quick (fun () ->
        (* mod_hat a b lies in (-b/2, b/2] and is congruent to a mod b *)
        for a = -20 to 20 do
          for b = 1 to 7 do
            let m = Zint.mod_hat (z a) (z b) in
            let mi = Zint.to_int m in
            Alcotest.(check bool)
              (Printf.sprintf "range %d mod^ %d = %d" a b mi)
              true
              (2 * mi <= b && 2 * mi > -b);
            Alcotest.(check int)
              (Printf.sprintf "congruent %d mod^ %d" a b)
              (((a - mi) mod b + b) mod b)
              0
          done
        done);
    Alcotest.test_case "compare mixed sizes" `Quick (fun () ->
        let big = zs "99999999999999999999999999" in
        Alcotest.(check bool) "small < big" true Zint.(z 5 < big);
        Alcotest.(check bool) "-big < small" true Zint.(Zint.neg big < z (-5));
        Alcotest.(check bool) "big = big" true Zint.(big = zs "99999999999999999999999999"));
    Alcotest.test_case "divisible/divexact" `Quick (fun () ->
        Alcotest.(check bool) "12/3" true (Zint.divisible (z 12) (z 3));
        Alcotest.(check bool) "12/5" false (Zint.divisible (z 12) (z 5));
        Alcotest.(check bool) "0/0" true (Zint.divisible Zint.zero Zint.zero);
        Alcotest.(check bool) "5/0" false (Zint.divisible (z 5) Zint.zero);
        check_z "divexact" (z (-4)) (Zint.divexact (z 12) (z (-3))));
  ]

(* -------------------------------------------------------------------- *)
(* Property tests: cross-check against native int arithmetic on ranges  *)
(* where it cannot overflow, and cross-check the Small and Big paths.   *)
(* -------------------------------------------------------------------- *)

let small_int = QCheck.int_range (-1_000_000) 1_000_000

(* Build the same mathematical value through the bignum path by splitting
   into two halves, so Small-path results can be checked against Big-path
   machinery. *)
let via_big n =
  let h = n / 2 in
  let sq x = Zint.mul (z x) (z x) in
  (* (h + (n-h)) computed after bouncing through values too big for ints *)
  let bump = Zint.mul (sq max_int) (z 4) in
  Zint.sub (Zint.add (Zint.add (z h) bump) (z (n - h))) bump

let prop_tests =
  [
    QCheck.Test.make ~name:"add matches int" ~count:1000
      QCheck.(pair small_int small_int)
      (fun (a, b) -> Zint.to_int (Zint.add (z a) (z b)) = a + b);
    QCheck.Test.make ~name:"mul matches int" ~count:1000
      QCheck.(pair small_int small_int)
      (fun (a, b) -> Zint.to_int (Zint.mul (z a) (z b)) = a * b);
    QCheck.Test.make ~name:"fdiv matches floor" ~count:1000
      QCheck.(pair small_int small_int)
      (fun (a, b) ->
        QCheck.assume (b <> 0);
        let q = Zint.to_int (Zint.fdiv (z a) (z b)) in
        let f = int_of_float (floor (float_of_int a /. float_of_int b)) in
        q = f);
    QCheck.Test.make ~name:"f/c/t div-rem laws" ~count:1000
      QCheck.(pair small_int small_int)
      (fun (a, b) ->
        QCheck.assume (b <> 0);
        let za = z a and zb = z b in
        let fq = Zint.fdiv za zb and fr = Zint.frem za zb in
        let tq = Zint.tdiv za zb and tr = Zint.trem za zb in
        Zint.(equal za (add (mul fq zb) fr))
        && Zint.(equal za (add (mul tq zb) tr))
        && (Zint.is_zero fr || Zint.sign fr = Zint.sign zb)
        && (Zint.is_zero tr || Zint.sign tr = Zint.sign za)
        && Zint.(abs fr < abs zb));
    QCheck.Test.make ~name:"big path agrees with small path" ~count:500
      QCheck.(pair small_int small_int)
      (fun (a, b) ->
        Zint.equal (via_big a) (z a)
        && Zint.equal (Zint.add (via_big a) (via_big b)) (z (a + b))
        && Zint.equal (Zint.mul (via_big a) (z b)) (Zint.mul (z a) (z b)));
    QCheck.Test.make ~name:"gcd divides and is maximal" ~count:500
      QCheck.(pair (int_range (-10000) 10000) (int_range (-10000) 10000))
      (fun (a, b) ->
        let g = Zint.gcd (z a) (z b) in
        if a = 0 && b = 0 then Zint.is_zero g
        else
          Zint.sign g > 0
          && Zint.divisible (z a) g
          && Zint.divisible (z b) g
          &&
          (* g is the largest divisor: check against the int gcd *)
          let rec ig a b = if b = 0 then abs a else ig b (a mod b) in
          Zint.to_int g = ig a b);
    QCheck.Test.make ~name:"string roundtrip" ~count:500
      QCheck.(pair small_int small_int)
      (fun (a, b) ->
        let v = Zint.mul (Zint.mul (z a) (z b)) (Zint.mul (z max_int) (z a)) in
        Zint.equal v (Zint.of_string (Zint.to_string v)));
    QCheck.Test.make ~name:"compare is a total order consistent with sub" ~count:500
      QCheck.(pair small_int small_int)
      (fun (a, b) ->
        let c = Zint.compare (via_big a) (via_big b) in
        let s = Zint.sign (Zint.sub (z a) (z b)) in
        (c > 0) = (s > 0) && (c < 0) = (s < 0) && (c = 0) = (s = 0));
  ]

let suite =
  ( "zint",
    unit_tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) prop_tests )
