(* Surface syntax of the "petit" mini-language, our stand-in for Michael
   Wolfe's tiny tool: nested for-loops over arrays with affine subscripts,
   symbolic constants, and user assertions.

   Grammar sketch:

     program  := decl* stmt*
     decl     := "symbolic" id ("," id)* ";"
               | "real" id "[" range ("," range)* "]" ("," ...)* ";"
               | "assume" cond ("," cond)* ";"
     range    := expr ":" expr
     stmt     := [label ":"] access ":=" expr ";"
               | "for" id ":=" expr "to" expr "do" stmt* "endfor"
     access   := id "(" expr ("," expr)* ")"  |  id "[" ... "]"
     expr     := affine arithmetic over ids and literals, plus
                 max(e,e) / min(e,e) in loop bounds and array reads
     cond     := expr relop expr ("and" ...)                               *)

type pos = { line : int; col : int }

type expr =
  | Int of int
  | Name of string
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Max of expr * expr
  | Min of expr * expr
  | Ref of string * expr list (* array read: a(i), a(i,j), Q[i] *)

type relop = Eq | Ne | Le | Lt | Ge | Gt

type cond = { left : expr; op : relop; right : expr }

type stmt =
  | Assign of { label : string option; lhs : string * expr list; rhs : expr; pos : pos }
  | For of {
      var : string;
      lo : expr;
      hi : expr;
      step : int; (* non-zero; negative counts down (normalized by sema) *)
      body : stmt list;
      pos : pos;
    }

type decl =
  | Symbolic of string list
  | Array of (string * (expr * expr) list) list
  | Assume of cond list

type program = { decls : decl list; stmts : stmt list }

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let rec pp_expr fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Name s -> Format.pp_print_string fmt s
  | Neg e -> Format.fprintf fmt "-%a" pp_atom e
  | Add (a, b) -> Format.fprintf fmt "%a + %a" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf fmt "%a - %a" pp_expr a pp_atom b
  | Mul (a, b) -> Format.fprintf fmt "%a*%a" pp_atom a pp_atom b
  | Max (a, b) -> Format.fprintf fmt "max(%a, %a)" pp_expr a pp_expr b
  | Min (a, b) -> Format.fprintf fmt "min(%a, %a)" pp_expr a pp_expr b
  | Ref (a, []) -> Format.pp_print_string fmt a
  | Ref (a, subs) ->
    Format.fprintf fmt "%s(%a)" a
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
         pp_expr)
      subs

and pp_atom fmt e =
  match e with
  | Int n when n < 0 -> Format.fprintf fmt "(%d)" n
  | Int _ | Name _ | Ref _ | Max _ | Min _ -> pp_expr fmt e
  | Neg _ | Add _ | Sub _ | Mul _ -> Format.fprintf fmt "(%a)" pp_expr e

let string_of_relop = function
  | Eq -> "="
  | Ne -> "!="
  | Le -> "<="
  | Lt -> "<"
  | Ge -> ">="
  | Gt -> ">"

let pp_cond fmt c =
  Format.fprintf fmt "%a %s %a" pp_expr c.left (string_of_relop c.op) pp_expr
    c.right

let rec pp_stmt ~indent fmt s =
  let pad = String.make indent ' ' in
  match s with
  | Assign { label; lhs = a, subs; rhs; _ } ->
    Format.fprintf fmt "%s%s%a := %a;@." pad
      (match label with Some l -> l ^ ": " | None -> "")
      pp_expr (Ref (a, subs)) pp_expr rhs
  | For { var; lo; hi; step; body; _ } ->
    if step = 1 then
      Format.fprintf fmt "%sfor %s := %a to %a do@." pad var pp_expr lo
        pp_expr hi
    else
      Format.fprintf fmt "%sfor %s := %a to %a by %d do@." pad var pp_expr lo
        pp_expr hi step;
    List.iter (pp_stmt ~indent:(indent + 2) fmt) body;
    Format.fprintf fmt "%sendfor@." pad

let pp_program fmt p =
  List.iter
    (function
      | Symbolic names ->
        Format.fprintf fmt "symbolic %s;@." (String.concat ", " names)
      | Array arrays ->
        Format.fprintf fmt "real %s;@."
          (String.concat ", "
             (List.map
                (fun (name, ranges) ->
                  Format.asprintf "%s[%s]" name
                    (String.concat ", "
                       (List.map
                          (fun (lo, hi) ->
                            Format.asprintf "%a:%a" pp_expr lo pp_expr hi)
                          ranges)))
                arrays))
      | Assume conds ->
        Format.fprintf fmt "assume %s;@."
          (String.concat ", "
             (List.map (Format.asprintf "%a" pp_cond) conds)))
    p.decls;
  List.iter (pp_stmt ~indent:0 fmt) p.stmts

let program_to_string p = Format.asprintf "%a" pp_program p
