(** Normalized intermediate representation of a petit program: the input
    to dependence analysis.

    Every array access is flattened into an {!access} record carrying its
    subscripts as affine functions of the enclosing (normalized) loop
    counters, symbolic constants and opaque terms; its loop nest with
    max/min bound arms; and tree coordinates deciding execution order. *)

(** A variable reference inside an affine form. *)
type varref =
  | Loop of int  (** nest position of the access, 0 = outermost *)
  | Symc of string  (** symbolic constant *)
  | Opq of int  (** opaque (non-affine) term, by id *)

val compare_varref : varref -> varref -> int

(** Affine form: constant + sorted coefficient list, no zero
    coefficients. *)
type affine = { const : int; terms : (varref * int) list }

val aff_const : int -> affine
val aff_var : varref -> affine
val aff_add : affine -> affine -> affine
val aff_scale : int -> affine -> affine
val aff_neg : affine -> affine
val aff_sub : affine -> affine -> affine
val aff_is_const : affine -> bool
val aff_coeff : affine -> varref -> int
val aff_vars : affine -> varref list
val aff_compare : affine -> affine -> int
val aff_equal : affine -> affine -> bool

val aff_shift_loops : int -> affine -> affine
(** Shift the [Loop] indices by an offset (relate inner and outer
    nests). *)

val aff_norm : (varref * int) list -> (varref * int) list

(** An opaque term: a non-affine subexpression (index-array read, scalar
    read, product of variables) kept for the section-5 symbolic
    analysis. *)
type opaque = {
  opq_id : int;
  repr : Ast.expr;  (** original syntax *)
  base : string option;  (** array name when the term is an array read *)
  args : affine list;  (** affine arguments, over the same nest *)
}

type bound = affine list
(** lower bound: max of the arms; upper bound: min of the arms *)

type loop = {
  lvar : string;
  lo : bound;
  hi : bound;
  step : int;
      (** The IR loop counter is normalized: it counts 0,1,2,... in
          execution order regardless of the surface step.  For [step = 1]
          the counter is the surface variable, bounded by [lo]/[hi]
          directly.  For [step <> 1] (single bound arms) the surface value
          is [lo + step*counter]. *)
}

type acc_kind = Read | Write

type access = {
  acc_id : int;
  stmt_id : int;
  label : string;
  array : string;
  kind : acc_kind;
  subs : affine list;
  loops : loop list;  (** outermost first *)
  loop_nodes : int list;  (** ids of the enclosing loop AST nodes *)
  path : int list;  (** sibling-index coordinates for textual order *)
  opaques : opaque list;
}

type sym_cond = { sc_left : affine; sc_op : Ast.relop; sc_right : affine }

(** IR statement tree (used by the interpreter and induction
    recognition). *)
type istmt =
  | IFor of {
      node_id : int;
      var : string;
      lo : Ast.expr;
      hi : Ast.expr;
      step : int;
      body : istmt list;
    }
  | IAssign of {
      stmt_id : int;
      label : string;
      write : access;
      reads : access list;  (** in evaluation order *)
      lhs : string * Ast.expr list;
      rhs : Ast.expr;
    }

type program = {
  source : Ast.program;
  symbolics : string list;
  arrays : (string * (affine * affine) list) list;
      (** declared ranges over symbolic constants; empty = scalar *)
  assumes : sym_cond list;
  accesses : access array;  (** indexed by [acc_id] *)
  stmts : istmt list;
}

val access_count : program -> int
val access : program -> int -> access
val writes : program -> access list
val reads : program -> access list
val depth : access -> int

val common_loops : access -> access -> int
(** Number of loops common to two accesses (shared ancestor loop
    nodes). *)

val textually_before : access -> access -> bool
(** Is the first access textually before the second (at the point where
    their nests diverge)?  Reads of a statement precede its write. *)

val pp_varref : Format.formatter -> varref -> unit
val pp_affine : Format.formatter -> affine -> unit
val access_to_string : access -> string
