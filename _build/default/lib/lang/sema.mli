(** Semantic analysis: surface AST -> IR.

    Resolves names to loop variables (by nest position) or declared
    symbolic constants; extracts affine forms of subscripts and loop
    bounds (distributing [max]/[min] into lower/upper bound arms);
    demotes non-affine subexpressions (products of variables, index-array
    reads) to opaque terms; flattens every array access into the
    program-wide access table. *)

exception Error of string

val analyze : Ast.program -> Ir.program
(** @raise Error on undeclared names, misplaced [max]/[min], etc. *)

val parse_and_analyze : string -> Ir.program
(** Parse then analyze.  @raise Parser.Error @raise Error *)

val collect_reads : Ast.expr -> (string * Ast.expr list) list -> (string * Ast.expr list) list
(** Every array read inside an expression, accumulated in reverse
    evaluation order (exposed so the interpreter splits read queues the
    same way). *)
