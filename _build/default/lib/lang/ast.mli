(** Surface syntax of the "petit" mini-language, our stand-in for Michael
    Wolfe's tiny tool: nested for-loops over arrays with affine
    subscripts, scalar variables, symbolic constants and user assertions.

    Grammar sketch:
    {v
     program  := decl* stmt*
     decl     := "symbolic" id ("," id)* ";"
               | "real" id ["[" range ("," range)* "]"] ("," ...)* ";"
               | "assume" cond ("," cond)* ";"
     range    := expr ":" expr
     stmt     := [label ":"] access ":=" expr ";"
               | id ":=" expr ";"                       (scalar assignment)
               | "for" id ":=" expr "to" expr ["by" int] "do" stmt* "endfor"
     access   := id "(" expr ("," expr)* ")"  |  id "[" ... "]"
     cond     := expr relop expr [relop expr]  ("and" | "," chains)
    v} *)

type pos = { line : int; col : int }

type expr =
  | Int of int
  | Name of string
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Max of expr * expr  (** only in lower loop bounds *)
  | Min of expr * expr  (** only in upper loop bounds *)
  | Ref of string * expr list
      (** array read [a(i,j)] / [Q\[i\]]; empty subscripts = scalar read *)

type relop = Eq | Ne | Le | Lt | Ge | Gt

type cond = { left : expr; op : relop; right : expr }

type stmt =
  | Assign of {
      label : string option;
      lhs : string * expr list;
      rhs : expr;
      pos : pos;
    }
  | For of {
      var : string;
      lo : expr;
      hi : expr;
      step : int;  (** non-zero; negative counts down *)
      body : stmt list;
      pos : pos;
    }

type decl =
  | Symbolic of string list
  | Array of (string * (expr * expr) list) list
      (** declared index ranges; an empty range list declares a scalar *)
  | Assume of cond list

type program = { decls : decl list; stmts : stmt list }

val pp_expr : Format.formatter -> expr -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp_stmt : indent:int -> Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit
val string_of_relop : relop -> string

val program_to_string : program -> string
(** Re-parseable rendering: [parse (program_to_string p)] pretty-prints
    to the same string (after one normalization cycle). *)
