(** Reference interpreter for petit programs.

    Executes the loop nest with concrete symbolic-constant values and
    records every array read and write, instance by instance.  From the
    trace come the {e dynamic} dependences used as a testing oracle:
    value-based flow dependences (each read paired with its last writer -
    the dependences along which data actually flows) and memory-based
    dependences (what standard dependence analysis reports).  Their
    difference is exactly the set of dead dependences the paper
    eliminates. *)

type loc = string * int list

type instance = {
  acc : Ir.access;
  iters : int list;  (** enclosing loop variable values, outermost first *)
}

type event = { ev_instance : instance; ev_loc : loc; ev_write : bool }
type trace = { events : event list (** in execution order *) }

exception Runtime_error of string

val run :
  ?init:(string -> int list -> int) -> Ir.program -> syms:(string * int) list -> trace
(** Execute with the given symbolic-constant values; [init] supplies the
    initial array contents (default all zero) - used to seed index
    arrays. *)

type dep = { src : instance; dst : instance }

val value_flow_deps : trace -> dep list
val memory_deps : trace -> [ `Flow | `Anti | `Output ] -> dep list

val distance : dep -> int list
(** Dependence distance on the common loops of the two accesses. *)

val pp_instance : Format.formatter -> instance -> unit
val pp_dep : Format.formatter -> dep -> unit
