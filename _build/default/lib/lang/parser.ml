(* Recursive-descent parser for the petit language. *)

open Ast

exception Error of string * Ast.pos

let error pos msg = raise (Error (msg, pos))

let expect lx tok =
  let t, p = Lexer.next lx in
  if t <> tok then
    error p
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string t))

let expect_ident lx =
  match Lexer.next lx with
  | Lexer.IDENT s, _ -> s
  | t, p ->
    error p
      (Printf.sprintf "expected an identifier but found %s"
         (Lexer.token_to_string t))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr lx =
  let lhs = parse_term lx in
  parse_expr_rest lx lhs

and parse_expr_rest lx lhs =
  match Lexer.peek lx with
  | Lexer.PLUS, _ ->
    ignore (Lexer.next lx);
    let rhs = parse_term lx in
    parse_expr_rest lx (Add (lhs, rhs))
  | Lexer.MINUS, _ ->
    ignore (Lexer.next lx);
    let rhs = parse_term lx in
    parse_expr_rest lx (Sub (lhs, rhs))
  | _ -> lhs

and parse_term lx =
  let lhs = parse_factor lx in
  parse_term_rest lx lhs

and parse_term_rest lx lhs =
  match Lexer.peek lx with
  | Lexer.STAR, _ ->
    ignore (Lexer.next lx);
    let rhs = parse_factor lx in
    parse_term_rest lx (Mul (lhs, rhs))
  | _ -> lhs

and parse_factor lx =
  match Lexer.next lx with
  | Lexer.INT n, _ -> Int n
  | Lexer.MINUS, _ -> Neg (parse_factor lx)
  | Lexer.LPAREN, _ ->
    let e = parse_expr lx in
    expect lx Lexer.RPAREN;
    e
  | Lexer.KW_MAX, _ ->
    expect lx Lexer.LPAREN;
    let a = parse_expr lx in
    expect lx Lexer.COMMA;
    let b = parse_expr lx in
    expect lx Lexer.RPAREN;
    Max (a, b)
  | Lexer.KW_MIN, _ ->
    expect lx Lexer.LPAREN;
    let a = parse_expr lx in
    expect lx Lexer.COMMA;
    let b = parse_expr lx in
    expect lx Lexer.RPAREN;
    Min (a, b)
  | Lexer.IDENT name, _ -> (
    match Lexer.peek lx with
    | Lexer.LPAREN, _ ->
      ignore (Lexer.next lx);
      let subs = parse_args lx Lexer.RPAREN in
      Ref (name, subs)
    | Lexer.LBRACK, _ ->
      ignore (Lexer.next lx);
      let subs = parse_args lx Lexer.RBRACK in
      Ref (name, subs)
    | _ -> Name name)
  | t, p ->
    error p
      (Printf.sprintf "expected an expression but found %s"
         (Lexer.token_to_string t))

and parse_args lx closing =
  let rec go acc =
    let e = parse_expr lx in
    match Lexer.next lx with
    | Lexer.COMMA, _ -> go (e :: acc)
    | t, p ->
      if t = closing then List.rev (e :: acc)
      else
        error p
          (Printf.sprintf "expected ',' or %s but found %s"
             (Lexer.token_to_string closing)
             (Lexer.token_to_string t))
  in
  go []

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

let relop_of_token = function
  | Lexer.EQ -> Some Eq
  | Lexer.NE -> Some Ne
  | Lexer.LE -> Some Le
  | Lexer.LT -> Some Lt
  | Lexer.GE -> Some Ge
  | Lexer.GT -> Some Gt
  | _ -> None

(* A condition, allowing chained comparisons: 1 <= x <= 50 becomes two
   conjoined conditions. *)
let parse_cond_chain lx =
  let first = parse_expr lx in
  let rec go left acc =
    match Lexer.peek lx with
    | tok, p -> (
      match relop_of_token tok with
      | Some op ->
        ignore (Lexer.next lx);
        let right = parse_expr lx in
        go right ({ left; op; right } :: acc)
      | None ->
        if acc = [] then error p "expected a comparison operator"
        else List.rev acc)
  in
  go first []

let parse_conds lx =
  let rec go acc =
    let cs = parse_cond_chain lx in
    match Lexer.peek lx with
    | Lexer.KW_AND, _ | Lexer.COMMA, _ ->
      ignore (Lexer.next lx);
      go (List.rev_append cs acc)
    | _ -> List.rev (List.rev_append cs acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Statements and declarations                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt lx : stmt =
  match Lexer.peek lx with
  | Lexer.KW_FOR, pos ->
    ignore (Lexer.next lx);
    let var = expect_ident lx in
    expect lx Lexer.ASSIGN;
    let lo = parse_expr lx in
    expect lx Lexer.KW_TO;
    let hi = parse_expr lx in
    let step =
      match Lexer.peek lx with
      | Lexer.KW_BY, _ -> (
        ignore (Lexer.next lx);
        let negate, p =
          match Lexer.peek lx with
          | Lexer.MINUS, p ->
            ignore (Lexer.next lx);
            (true, p)
          | _, p -> (false, p)
        in
        match Lexer.next lx with
        | Lexer.INT 0, _ -> error p "loop step cannot be 0"
        | Lexer.INT n, _ -> if negate then -n else n
        | t, p ->
          error p
            (Printf.sprintf "expected an integer step but found %s"
               (Lexer.token_to_string t)))
      | _ -> 1
    in
    expect lx Lexer.KW_DO;
    let body = parse_stmts lx in
    expect lx Lexer.KW_ENDFOR;
    (match Lexer.peek lx with
     | Lexer.SEMI, _ -> ignore (Lexer.next lx)
     | _ -> ());
    For { var; lo; hi; step; body; pos }
  | Lexer.INT n, pos ->
    (* numeric statement label, as in the CHOLSKY listing *)
    ignore (Lexer.next lx);
    expect lx Lexer.COLON;
    parse_assign lx ~label:(Some (string_of_int n)) ~pos
  | Lexer.IDENT _, pos -> (
    (* could be "label : lhs := ..." or "lhs := ..." *)
    let name = expect_ident lx in
    match Lexer.peek lx with
    | Lexer.COLON, _ ->
      ignore (Lexer.next lx);
      parse_assign lx ~label:(Some name) ~pos
    | Lexer.LPAREN, _ | Lexer.LBRACK, _ ->
      parse_assign_with_array lx ~label:None ~pos name
    | Lexer.ASSIGN, _ ->
      (* scalar assignment: k := e *)
      ignore (Lexer.next lx);
      let rhs = parse_expr lx in
      expect lx Lexer.SEMI;
      Assign { label = None; lhs = (name, []); rhs; pos }
    | t, p ->
      error p
        (Printf.sprintf "expected ':', ':=', '(' or '[' after %s but found %s"
           name
           (Lexer.token_to_string t)))
  | t, p ->
    error p
      (Printf.sprintf "expected a statement but found %s"
         (Lexer.token_to_string t))

and parse_assign lx ~label ~pos =
  let name = expect_ident lx in
  parse_assign_with_array lx ~label ~pos name

and parse_assign_with_array lx ~label ~pos name =
  let subs =
    match Lexer.peek lx with
    | Lexer.LPAREN, _ ->
      ignore (Lexer.next lx);
      parse_args lx Lexer.RPAREN
    | Lexer.LBRACK, _ ->
      ignore (Lexer.next lx);
      parse_args lx Lexer.RBRACK
    | Lexer.ASSIGN, _ -> [] (* scalar assignment *)
    | t, p ->
      error p
        (Printf.sprintf "expected array subscripts or ':=' but found %s"
           (Lexer.token_to_string t))
  in
  expect lx Lexer.ASSIGN;
  let rhs = parse_expr lx in
  expect lx Lexer.SEMI;
  Assign { label; lhs = (name, subs); rhs; pos }

and parse_stmts lx : stmt list =
  let rec go acc =
    match Lexer.peek lx with
    | Lexer.KW_FOR, _ | Lexer.IDENT _, _ | Lexer.INT _, _ ->
      go (parse_stmt lx :: acc)
    | _ -> List.rev acc
  in
  go []

let parse_decl lx : decl option =
  match Lexer.peek lx with
  | Lexer.KW_SYMBOLIC, _ ->
    ignore (Lexer.next lx);
    let rec names acc =
      let n = expect_ident lx in
      match Lexer.next lx with
      | Lexer.COMMA, _ -> names (n :: acc)
      | Lexer.SEMI, _ -> List.rev (n :: acc)
      | t, p ->
        error p
          (Printf.sprintf "expected ',' or ';' but found %s"
             (Lexer.token_to_string t))
    in
    Some (Symbolic (names []))
  | Lexer.KW_REAL, _ ->
    ignore (Lexer.next lx);
    let parse_array () =
      let name = expect_ident lx in
      let ranges =
        match Lexer.peek lx with
        | Lexer.LBRACK, _ | Lexer.LPAREN, _ ->
          let closing =
            match Lexer.next lx with
            | Lexer.LBRACK, _ -> Lexer.RBRACK
            | _ -> Lexer.RPAREN
          in
          let rec go acc =
            let lo = parse_expr lx in
            expect lx Lexer.COLON;
            let hi = parse_expr lx in
            match Lexer.next lx with
            | Lexer.COMMA, _ -> go ((lo, hi) :: acc)
            | t, p ->
              if t = closing then List.rev ((lo, hi) :: acc)
              else
                error p
                  (Printf.sprintf "expected ',' or closing bracket, found %s"
                     (Lexer.token_to_string t))
          in
          go []
        | _ -> []
      in
      (name, ranges)
    in
    let rec arrays acc =
      let a = parse_array () in
      match Lexer.next lx with
      | Lexer.COMMA, _ -> arrays (a :: acc)
      | Lexer.SEMI, _ -> List.rev (a :: acc)
      | t, p ->
        error p
          (Printf.sprintf "expected ',' or ';' but found %s"
             (Lexer.token_to_string t))
    in
    Some (Array (arrays []))
  | Lexer.KW_ASSUME, _ ->
    ignore (Lexer.next lx);
    let conds = parse_conds lx in
    expect lx Lexer.SEMI;
    Some (Assume conds)
  | _ -> None

let parse_program_lx lx : program =
  let rec decls acc =
    match parse_decl lx with None -> List.rev acc | Some d -> decls (d :: acc)
  in
  let decls = decls [] in
  let stmts = parse_stmts lx in
  (* trailing assumes are also allowed *)
  let rec trailing acc =
    match parse_decl lx with
    | None -> List.rev acc
    | Some d -> trailing (d :: acc)
  in
  let decls = decls @ trailing [] in
  (match Lexer.peek lx with
   | Lexer.EOF, _ -> ()
   | t, p ->
     error p
       (Printf.sprintf "unexpected %s at top level" (Lexer.token_to_string t)));
  { decls; stmts }

let parse_string src : program =
  let lx = Lexer.create src in
  try parse_program_lx lx
  with Lexer.Error (msg, pos) -> raise (Error (msg, pos))

(* Parse a bare conjunction of (possibly chained) comparisons, e.g.
   "0 <= x <= 5 and y < x": used by the omega_calc front end. *)
let parse_conds_string src : cond list =
  let lx = Lexer.create src in
  try
    let conds = parse_conds lx in
    (match Lexer.peek lx with
     | Lexer.EOF, _ -> ()
     | t, p ->
       error p
         (Printf.sprintf "unexpected %s after conditions"
            (Lexer.token_to_string t)));
    conds
  with Lexer.Error (msg, pos) -> raise (Error (msg, pos))

let parse_file path : program =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_string src
