(* Reference interpreter for petit programs.

   Executes the loop nest with concrete symbolic-constant values and
   records every array read and write, instance by instance.  From the
   trace we derive the *dynamic* dependences:

   - value-based flow dependences (read <- its last writer): the ground
     truth that the paper's live flow dependences must cover;
   - memory-based flow/anti/output dependences (all ordered pairs touching
     the same location): what standard dependence analysis reports.

   The difference between memory-based and value-based flow dependences is
   exactly the set of dead dependences the paper's techniques eliminate. *)

type loc = string * int list

type instance = {
  acc : Ir.access;
  iters : int list; (* values of the enclosing loop variables, outermost first *)
}

type event = { ev_instance : instance; ev_loc : loc; ev_write : bool }

type trace = { events : event list (* in execution order *) }

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

type state = {
  syms : (string * int) list;
  (* innermost first: variable -> (surface value, normalized counter) *)
  mutable loops : (string * (int * int)) list;
  memory : (loc, int) Hashtbl.t;
  init : string -> int list -> int;
  mutable rev_events : event list;
  (* read accesses of the current statement, queued in evaluation order *)
  mutable pending_reads : Ir.access list;
}

let lookup st name =
  match List.assoc_opt name st.loops with
  | Some (v, _) -> v
  | None -> (
    match List.assoc_opt name st.syms with
    | Some v -> v
    | None -> error "unbound variable %s at run time" name)

let read_mem st loc =
  match Hashtbl.find_opt st.memory loc with
  | Some v -> v
  | None -> st.init (fst loc) (snd loc)

let current_iters st (a : Ir.access) =
  (* normalized counters of a's enclosing loops, outermost first (these are
     what the static analysis's iteration variables denote) *)
  List.map
    (fun (l : Ir.loop) ->
      match List.assoc_opt l.Ir.lvar st.loops with
      | Some (_, k) -> k
      | None -> error "loop variable %s not active" l.Ir.lvar)
    a.Ir.loops

(* Binary nodes evaluate left before right (explicit lets: OCaml's operator
   argument order is right-to-left, which would desynchronize the queued
   read accesses). *)
let rec eval st (e : Ast.expr) : int =
  match e with
  | Ast.Int n -> n
  | Ast.Name s -> lookup st s
  | Ast.Neg a -> -eval st a
  | Ast.Add (a, b) ->
    let x = eval st a in
    let y = eval st b in
    x + y
  | Ast.Sub (a, b) ->
    let x = eval st a in
    let y = eval st b in
    x - y
  | Ast.Mul (a, b) ->
    let x = eval st a in
    let y = eval st b in
    x * y
  | Ast.Max (a, b) ->
    let x = eval st a in
    let y = eval st b in
    max x y
  | Ast.Min (a, b) ->
    let x = eval st a in
    let y = eval st b in
    min x y
  | Ast.Ref (name, subs) ->
    let idx =
      List.fold_left (fun acc s -> eval st s :: acc) [] subs |> List.rev
    in
    let loc = (name, idx) in
    let v = read_mem st loc in
    (* pop the matching queued read access and log the event *)
    (match st.pending_reads with
     | acc :: rest ->
       assert (acc.Ir.array = name);
       st.pending_reads <- rest;
       st.rev_events <-
         { ev_instance = { acc; iters = current_iters st acc }; ev_loc = loc;
           ev_write = false }
         :: st.rev_events
     | [] -> error "interpreter out of sync: unexpected read of %s" name);
    v

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

let rec exec st (s : Ir.istmt) =
  match s with
  | Ir.IFor { var; lo; hi; step; body; _ } ->
    let l = eval st lo and h = eval st hi in
    let continue_ v = if step > 0 then v <= h else v >= h in
    let rec iterate v k =
      if continue_ v then begin
        st.loops <- (var, (v, k)) :: st.loops;
        List.iter (exec st) body;
        st.loops <- List.tl st.loops;
        iterate (v + step) (k + 1)
      end
    in
    iterate l 0
  | Ir.IAssign { write; reads; lhs = array, subs_ast; rhs; _ } ->
    (* reads fire in evaluation order: RHS first, then LHS subscripts *)
    let rhs_read_count =
      List.length (List.rev (Sema.collect_reads rhs []))
    in
    let rhs_reads, lhs_reads =
      let rec split n l =
        if n = 0 then ([], l)
        else
          match l with
          | x :: r ->
            let a, b = split (n - 1) r in
            (x :: a, b)
          | [] -> ([], [])
      in
      split rhs_read_count reads
    in
    st.pending_reads <- rhs_reads;
    let value = eval st rhs in
    (if st.pending_reads <> [] then
       error "interpreter out of sync: leftover RHS reads");
    st.pending_reads <- lhs_reads;
    let idx =
      List.fold_left (fun acc s -> eval st s :: acc) [] subs_ast |> List.rev
    in
    (if st.pending_reads <> [] then
       error "interpreter out of sync: leftover LHS reads");
    let loc = (array, idx) in
    Hashtbl.replace st.memory loc value;
    st.rev_events <-
      { ev_instance = { acc = write; iters = current_iters st write };
        ev_loc = loc; ev_write = true }
      :: st.rev_events

let run ?(init = fun _ _ -> 0) (p : Ir.program) ~syms : trace =
  let st =
    {
      syms;
      loops = [];
      memory = Hashtbl.create 64;
      init;
      rev_events = [];
      pending_reads = [];
    }
  in
  List.iter (exec st) p.Ir.stmts;
  { events = List.rev st.rev_events }

(* ------------------------------------------------------------------ *)
(* Dynamic dependences                                                 *)
(* ------------------------------------------------------------------ *)

type dep = { src : instance; dst : instance }

(* Value-based flow dependences: each read paired with its most recent
   writer.  These are the dependences along which data actually flows. *)
let value_flow_deps (t : trace) : dep list =
  let last_writer : (loc, instance) Hashtbl.t = Hashtbl.create 64 in
  List.fold_left
    (fun acc ev ->
      if ev.ev_write then begin
        Hashtbl.replace last_writer ev.ev_loc ev.ev_instance;
        acc
      end
      else
        match Hashtbl.find_opt last_writer ev.ev_loc with
        | Some w -> { src = w; dst = ev.ev_instance } :: acc
        | None -> acc)
    [] t.events
  |> List.rev

(* Memory-based dependences: every ordered pair of accesses to the same
   location where at least one is a write.  [`Flow]: write then read;
   [`Anti]: read then write; [`Output]: write then write. *)
let memory_deps (t : trace) (kind : [ `Flow | `Anti | `Output ]) : dep list =
  let writers : (loc, instance list) Hashtbl.t = Hashtbl.create 64 in
  let readers : (loc, instance list) Hashtbl.t = Hashtbl.create 64 in
  let get tbl loc = Option.value (Hashtbl.find_opt tbl loc) ~default:[] in
  List.fold_left
    (fun acc ev ->
      let loc = ev.ev_loc and me = ev.ev_instance in
      let acc =
        if ev.ev_write then begin
          let acc =
            match kind with
            | `Output ->
              List.fold_left
                (fun acc w -> { src = w; dst = me } :: acc)
                acc (get writers loc)
            | `Anti ->
              List.fold_left
                (fun acc r -> { src = r; dst = me } :: acc)
                acc (get readers loc)
            | `Flow -> acc
          in
          Hashtbl.replace writers loc (me :: get writers loc);
          acc
        end
        else begin
          let acc =
            match kind with
            | `Flow ->
              List.fold_left
                (fun acc w -> { src = w; dst = me } :: acc)
                acc (get writers loc)
            | `Anti | `Output -> acc
          in
          Hashtbl.replace readers loc (me :: get readers loc);
          acc
        end
      in
      acc)
    [] t.events
  |> List.rev

(* Dependence distance on the common loops of the two accesses. *)
let distance (d : dep) : int list =
  let c = Ir.common_loops d.src.acc d.dst.acc in
  let rec take n l = if n = 0 then [] else match l with [] -> [] | x :: r -> x :: take (n - 1) r in
  let a = take c d.src.iters and b = take c d.dst.iters in
  List.map2 (fun x y -> y - x) a b

let pp_instance fmt i =
  Format.fprintf fmt "%s@@(%s)" (Ir.access_to_string i.acc)
    (String.concat "," (List.map string_of_int i.iters))

let pp_dep fmt d =
  Format.fprintf fmt "%a -> %a" pp_instance d.src pp_instance d.dst
