(** Recursive-descent parser for the petit language (grammar in
    {!Ast}). *)

exception Error of string * Ast.pos

val parse_string : string -> Ast.program
(** @raise Error with a position on malformed input. *)

val parse_file : string -> Ast.program

val parse_conds_string : string -> Ast.cond list
(** A bare conjunction of (possibly chained) comparisons, e.g.
    ["0 <= x <= 5 and y < x"]: the omega_calc input language. *)
