lib/lang/interp.ml: Ast Format Hashtbl Ir List Option Sema String
