lib/lang/ir.mli: Ast Format
