lib/lang/ir.ml: Array Ast Format List String
