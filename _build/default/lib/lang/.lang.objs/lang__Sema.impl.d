lib/lang/sema.ml: Array Ast Format Ir List Parser Printf
