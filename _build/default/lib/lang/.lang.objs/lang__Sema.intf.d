lib/lang/sema.mli: Ast Ir
