lib/lang/lexer.ml: Ast Printf String
