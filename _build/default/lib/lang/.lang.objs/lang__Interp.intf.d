lib/lang/interp.mli: Format Ir
